#!/usr/bin/env bash
# Tier-1 gate: hermetic build + full test suite, no network, no crates.io,
# plus formatting, lint, and a benchmark smoke run.
#
# The workspace has zero external dependencies (see crates/testkit), so
# `--offline` must always succeed from a clean checkout. Treat any attempt
# to reach a registry as a regression.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== fmt check =="
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --all --check
else
    echo "rustfmt not installed; skipping"
fi

echo "== build (release, offline, all targets) =="
cargo build --release --offline --all-targets

echo "== test (offline) =="
cargo test -q --offline

echo "== parallel stress (oversubscribed, 16 workers) =="
# The steal_stress suite widens the schedule space with randomized per-task
# delays; 16 workers oversubscribe the runner so parking/stealing paths get
# exercised under real preemption.
NUFFT_THREADS=16 cargo test -q --offline -p nufft-parallel

echo "== multi-tenant job isolation stress (oversubscribed, 16 workers) =="
# Concurrently submitted DAG/graph jobs on one shared pool: exactly-once
# execution, no cross-job tag leakage, and per-job stats harvested at
# per-job quiescence, all under randomized seed-replayable delays.
NUFFT_THREADS=16 cargo test -q --offline -p nufft-parallel --test job_isolation_stress

echo "== fused-DAG stress (oversubscribed, 16 workers) =="
# scheduler_consistency includes the fused-vs-phased bitwise equality
# matrix (backend x ISA x threads) and the fused-DAG sim dominance check;
# 16 workers oversubscribe the runner so the single-dispatch DAG path runs
# under real preemption.
NUFFT_THREADS=16 cargo test -q --offline --test scheduler_consistency

echo "== four-step FFT strategy stress (oversubscribed, 16 workers) =="
# fourstep_modes pins forced-four-step == recursive bitwise across ISA
# levels, thread counts, exec modes and mixed-radix/Bluestein axis lengths;
# 16 workers oversubscribe the runner so the sub-FFT/transpose shard nodes
# of the fused DAG race for real.
NUFFT_THREADS=16 cargo test -q --offline --test fourstep_modes

echo "== sort-mode equality stress (oversubscribed, 16 workers) =="
# sorted-vs-unsorted bitwise equality across ISA levels, thread counts,
# all four operators and both exec modes; 16 workers oversubscribe the
# runner so the canonical-visit-order rule holds under real preemption.
NUFFT_THREADS=16 cargo test -q --offline -p nufft-core --test sort_modes

echo "== type-3 consistency stress (oversubscribed, 16 workers) =="
# type3_modes pins fused-vs-phased bitwise equality, pinned-layout
# cross-thread determinism and repeated-run stability for the type-3
# pipeline (outer spread -> inner type-2 -> postscale); 16 workers
# oversubscribe the runner so both stage drivers race for real.
NUFFT_THREADS=16 cargo test -q --offline --test type3_modes

echo "== stage-graph composition contracts =="
# stage_ops pins that the public SpreadOp/InterpOp/FftOp/DeconvOp stages
# compose bitwise into the monolithic forward/adjoint operators, and that
# the standalone spread_only/interp_only entry points match the fused DAG.
cargo test -q --offline --test stage_ops

echo "== examples smoke (spread-only deposition pipeline) =="
# density_estimation drives spread_only/interp_only directly and asserts
# the fused-vs-phased deposition bitwise check plus the transpose dot-test.
cargo run --release --offline --example density_estimation >/dev/null

echo "== kernel-family determinism matrix (ES Horner vs KB LUT) =="
# kernel_families pins per-ISA fused-vs-phased bitwise equality for both
# families, cross-ISA bitwise identity of Part 1 windows (the ES Horner
# evaluator's own contract), and the ES 3D cross-worker-count guarantee.
cargo test -q --offline -p nufft-core --test kernel_families

echo "== tolerance-driven planning accuracy =="
# tolerance checks eps -> (family, W, sigma) plans against the direct DTFT
# oracle at eps in {1e-2, 1e-4, 1e-6} for ES and KB in 1D/2D/3D, plus the
# type-3 tolerance entry point.
cargo test -q --offline -p nufft --test tolerance

echo "== tolerance stress (oversubscribed, 16 workers) =="
# The same accuracy sweep with 16 workers oversubscribing the runner: the
# tolerance-planned ES Horner path must hold its budgets under real
# preemption and arbitrary work interleavings.
NUFFT_THREADS=16 cargo test -q --offline -p nufft --test tolerance

echo "== convolution-engine contracts (allocation-free applies, window modes) =="
# Named runs so a regression names the broken contract, not just "a test".
# window_modes covers bitwise table-vs-fly equality across ISA levels and
# thread counts plus the oversized-W construction-time validation;
# alloc_steady_state pins the zero-allocation apply path with a counting
# global allocator.
cargo test -q --offline -p nufft-core --test window_modes
cargo test -q --offline -p nufft --test alloc_steady_state

echo "== clippy (deny warnings) =="
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets --offline -- -D warnings
else
    echo "clippy not installed; skipping"
fi

echo "== bench smoke (fft + operators + pool + windows, fast mode) =="
scripts/bench.sh --quick

echo "CI OK"
