#!/usr/bin/env bash
# Tier-1 gate: hermetic build + full test suite, no network, no crates.io.
#
# The workspace has zero external dependencies (see crates/testkit), so
# `--offline` must always succeed from a clean checkout. Treat any attempt
# to reach a registry as a regression.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, offline, all targets) =="
cargo build --release --offline --all-targets

echo "== test (offline) =="
cargo test -q --offline

# Lint is advisory: run it when the toolchain ships clippy, but don't let
# a missing component or a new lint break the gate.
if cargo clippy --version >/dev/null 2>&1; then
    echo "== clippy (advisory) =="
    cargo clippy --offline --all-targets 2>&1 | tail -n 20 || true
else
    echo "== clippy not installed; skipping =="
fi

echo "CI OK"
