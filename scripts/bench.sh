#!/usr/bin/env bash
# Runs the FFT, operator, and runtime benchmarks. JSON summaries land at
# the repo root, each written by its bench binary:
#   BENCH_fft.json     — FFT execution-path sweep (crates/bench/benches/fft.rs)
#   BENCH_fourstep.json— four-step vs recursive FFT decomposition: 1D
#                        axis-length crossover sweep + strategy-forced A/B
#                        on 256²/512²/64³/128³ grids with an Auto arm
#                        (crates/bench/benches/fourstep.rs)
#   BENCH_pool.json    — persistent-pool vs spawn-per-call operator applies
#                        (crates/bench/benches/pool.rs)
#   BENCH_windows.json — precomputed window table vs on-the-fly Part 1
#                        (crates/bench/benches/windows.rs)
#   BENCH_fused.json   — fused single-DAG vs phased join-per-phase applies
#                        (crates/bench/benches/fused.rs)
#   BENCH_service.json — multi-tenant registry/service throughput and
#                        request-latency quantiles at 1–16 tenants
#                        (crates/bench/benches/service.rs)
#   BENCH_sort.json    — plan-time bin sort vs unsorted sample layout over
#                        clustered/random/shuffled/radial trajectories
#                        (crates/bench/benches/sort.rs)
#   BENCH_type3.json   — native type-3 apply vs the composed type-2∘type-1
#                        baseline on shared fine grids (~32²/192²/64³)
#                        (crates/bench/benches/type3.rs)
#   BENCH_kernels.json — matched-accuracy ES-vs-KB kernel A/B at
#                        eps ∈ {1e-2, 1e-4, 1e-6}: per-apply medians,
#                        planned half-widths, hot-table bytes
#                        (crates/bench/benches/kernels.rs)
#
# Usage: scripts/bench.sh [--quick]
#   --quick   smoke mode (NUFFT_BENCH_FAST=1): minimal warmup and samples,
#             for CI; the numbers are not meaningful, only that every arm
#             runs and the summary is produced.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--quick" ]]; then
    export NUFFT_BENCH_FAST=1
    echo "== quick (smoke) mode: NUFFT_BENCH_FAST=1 =="
fi

echo "== bench: fft (1D lengths + strided-axis per-line vs batched sweep) =="
cargo bench --offline --bench fft

echo "== bench: fourstep (recursive→four-step crossover + forced A/B) =="
cargo bench --offline --bench fourstep

echo "== bench: operators =="
cargo bench --offline --bench operators

echo "== bench: pool (persistent runtime vs spawn-per-call baseline) =="
cargo bench --offline --bench pool

echo "== bench: windows (precomputed table vs on-the-fly Part 1) =="
cargo bench --offline --bench windows

echo "== bench: fused (single-DAG dispatch vs join-per-phase pipeline) =="
cargo bench --offline --bench fused

echo "== bench: service (multi-tenant req/s + p50/p99 at 1-16 tenants) =="
cargo bench --offline --bench service

echo "== bench: sort (bin-sorted vs unsorted sample layout) =="
cargo bench --offline --bench sort

echo "== bench: type3 (native vs composed type-2∘type-1 baseline) =="
cargo bench --offline --bench type3

echo "== bench: kernels (matched-accuracy ES vs Kaiser-Bessel A/B) =="
cargo bench --offline --bench kernels

echo "== BENCH_fft.json =="
cat BENCH_fft.json

echo "== BENCH_fourstep.json =="
cat BENCH_fourstep.json

echo "== BENCH_pool.json =="
cat BENCH_pool.json

echo "== BENCH_windows.json =="
cat BENCH_windows.json

echo "== BENCH_fused.json =="
cat BENCH_fused.json

echo "== BENCH_service.json =="
cat BENCH_service.json

echo "== BENCH_sort.json =="
cat BENCH_sort.json

echo "== BENCH_type3.json =="
cat BENCH_type3.json

echo "== BENCH_kernels.json =="
cat BENCH_kernels.json
