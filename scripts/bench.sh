#!/usr/bin/env bash
# Runs the FFT and operator benchmarks and summarizes the FFT execution-path
# sweep into BENCH_fft.json at the repo root (medians per {case}/{isa}/{path}
# arm plus the batched-AVX2 vs per-line-scalar speedups; written by the fft
# bench itself — see crates/bench/benches/fft.rs).
#
# Usage: scripts/bench.sh [--quick]
#   --quick   smoke mode (NUFFT_BENCH_FAST=1): minimal warmup and samples,
#             for CI; the numbers are not meaningful, only that every arm
#             runs and the summary is produced.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--quick" ]]; then
    export NUFFT_BENCH_FAST=1
    echo "== quick (smoke) mode: NUFFT_BENCH_FAST=1 =="
fi

echo "== bench: fft (1D lengths + strided-axis per-line vs batched sweep) =="
cargo bench --offline --bench fft

echo "== bench: operators =="
cargo bench --offline --bench operators

echo "== BENCH_fft.json =="
cat BENCH_fft.json
