//! Kernel density estimation by direct particle deposition: the spread
//! stage as a standalone operator, no FFT anywhere.
//!
//! A clustered 2D particle cloud is deposited onto a grid with
//! `NufftPlan::spread_only` — each particle scatters its mass through the
//! same Kaiser–Bessel window the NUFFT gridder uses, which is exactly a
//! KDE with the KB kernel as the smoother. The density field is then read
//! back *at the particle positions* with `interp_only` (the gather
//! transpose), giving a per-particle local-density estimate — the
//! neighbour-weighting step of SPH-style codes.
//!
//! ```text
//! cargo run --release --example density_estimation
//! ```

use nufft::core::plan::ExecMode;
use nufft::core::{NufftConfig, NufftPlan, PlanRegistry};
use nufft::math::{Complex32, Complex64};
use nufft::traj::generators::clustered_cloud;

fn main() {
    // 50k particles in 6 clusters over a [-0.5, 0.5)² box (the plan's
    // trajectory domain), deposited onto a 128² estimation grid.
    let n = [128usize, 128];
    let particles: Vec<[f64; 2]> = clustered_cloud::<2>(50_000, 6, 0.46, 0.05, 42)
        .into_iter()
        .map(|p| [p[0].clamp(-0.5, 0.4999), p[1].clamp(-0.5, 0.4999)])
        .collect();
    // Unit masses; the imaginary lane rides along for free (a second
    // scalar field — e.g. charge — deposited in the same pass).
    let mass = vec![Complex32::new(1.0, 0.0); particles.len()];

    let cfg = NufftConfig { w: 4.0, ..NufftConfig::default() };
    let mut plan = NufftPlan::new(n, &particles, cfg);
    let mut density = vec![Complex32::ZERO; plan.grid_len()];

    let t0 = std::time::Instant::now();
    plan.spread_only(&mass, &mut density);
    let dt = t0.elapsed().as_secs_f64();
    println!(
        "deposited {} particles onto {:?} grid in {:.2} ms ({:.1} Mpart/s)",
        particles.len(),
        plan.geometry().m,
        dt * 1e3,
        particles.len() as f64 / dt / 1e6
    );

    // Field statistics. Total deposited mass is Σ_j m_j · Σ(window), so
    // normalizing by the per-particle window sum recovers the count.
    let total: f64 = density.iter().map(|c| c.re as f64).sum();
    let window_sum = total / particles.len() as f64;
    let peak = density.iter().map(|c| c.re).fold(0.0f32, f32::max);
    let occupied = density.iter().filter(|c| c.re != 0.0).count();
    println!(
        "field   : peak {:.1}, {}/{} cells occupied, per-particle window sum {:.4}",
        peak,
        occupied,
        density.len(),
        window_sum
    );

    // Gather the estimate back at the particle positions: each particle's
    // local density, KB-smoothed — min/max expose the cluster contrast.
    let mut local = vec![Complex32::ZERO; particles.len()];
    plan.interp_only(&density, &mut local);
    let (lo, hi) =
        local.iter().fold((f32::INFINITY, 0.0f32), |(lo, hi), c| (lo.min(c.re), hi.max(c.re)));
    println!("local   : per-particle density in [{lo:.1}, {hi:.1}]");

    // Cross-check 1: the fused spread DAG deposits the identical field.
    let fused_cfg = NufftConfig { w: 4.0, exec_mode: ExecMode::Fused, ..NufftConfig::default() };
    let mut fused = NufftPlan::new(n, &particles, fused_cfg);
    let mut density_fused = vec![Complex32::ZERO; fused.grid_len()];
    fused.spread_only(&mass, &mut density_fused);
    let bitwise = density
        .iter()
        .zip(&density_fused)
        .all(|(a, b)| a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits());
    println!("check   : fused-DAG deposition bitwise-identical: {bitwise}");
    assert!(bitwise, "fused and phased deposition diverged");

    // Cross-check 2: scatter and gather are exact transposes,
    // ⟨spread(m), g⟩ == ⟨m, interp(g)⟩.
    let probe: Vec<Complex32> = (0..density.len())
        .map(|i| Complex32::new((i as f32 * 0.013).sin(), (i as f32 * 0.007).cos()))
        .collect();
    let mut probe_at = vec![Complex32::ZERO; particles.len()];
    plan.interp_only(&probe, &mut probe_at);
    let lhs: Complex64 =
        density.iter().zip(&probe).map(|(&a, &b)| a.to_f64().conj() * b.to_f64()).sum();
    let rhs: Complex64 =
        mass.iter().zip(&probe_at).map(|(&a, &b)| a.to_f64().conj() * b.to_f64()).sum();
    let rel = (lhs - rhs).abs() / lhs.abs().max(1e-9);
    println!("check   : transpose dot-test relative error {rel:.2e}");
    assert!(rel < 1e-4, "spread/interp transpose dot-test failed: {rel}");

    // Registry-pooled variant: repeated depositions (a particle code's
    // per-timestep loop) check out the same cached spread-only plan.
    let registry = PlanRegistry::<2>::new(cfg);
    for _step in 0..3 {
        let mut lease = registry.checkout_spread(n, &particles);
        lease.spread_only(&mass, &mut density);
    }
    let stats = registry.stats();
    println!(
        "registry: {} deposition steps -> {} build, {} cache hits",
        3, stats.misses, stats.hits
    );
}
