//! Quickstart: build a 3D NUFFT plan, run forward and adjoint, sanity-check
//! accuracy and adjointness.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use nufft::core::{NufftConfig, NufftPlan};
use nufft::math::{Complex32, Complex64};
use nufft::traj::generators::radial;

fn main() {
    // A 48³ image observed along 64 radial spokes of 96 samples each.
    let n = 48usize;
    let traj = radial(96, 64, 7);
    println!("trajectory: {} samples ({} spokes × {})", traj.len(), 64, 96);

    let cfg = NufftConfig::default(); // α=2, W=4, priority queue, all optimizations on
    let mut plan = NufftPlan::new([n; 3], &traj.points, cfg);
    println!(
        "plan: grid {:?}, {} tasks ({} privatized), preprocessing {:.1} ms",
        plan.geometry().m,
        plan.graph().len(),
        plan.graph().num_privatized(),
        plan.preprocess_seconds() * 1e3
    );

    // Forward: image -> non-uniform spectral samples.
    let image: Vec<Complex32> = (0..n * n * n)
        .map(|i| Complex32::new(((i % 29) as f32) / 29.0, ((i % 17) as f32) / 17.0 - 0.5))
        .collect();
    let mut kspace = vec![Complex32::ZERO; traj.len()];
    plan.forward(&image, &mut kspace);
    let ft = plan.forward_timers();
    println!(
        "forward : {:6.1} ms  (scale {:.1} ms | fft {:.1} ms | conv {:.1} ms)",
        ft.total * 1e3,
        ft.scale * 1e3,
        ft.fft * 1e3,
        ft.conv * 1e3
    );

    // Adjoint: samples -> image (exact conjugate transpose).
    let mut back = vec![Complex32::ZERO; n * n * n];
    plan.adjoint(&kspace, &mut back);
    let at = plan.adjoint_timers();
    println!(
        "adjoint : {:6.1} ms  (conv {:.1} ms | fft {:.1} ms | scale {:.1} ms)",
        at.total * 1e3,
        at.conv * 1e3,
        at.fft * 1e3,
        at.scale * 1e3
    );

    // Adjointness check: ⟨Ax, y⟩ == ⟨x, A†y⟩.
    let y: Vec<Complex32> = (0..traj.len())
        .map(|i| Complex32::new((i as f32 * 0.37).sin(), (i as f32 * 0.11).cos()))
        .collect();
    let mut aty = vec![Complex32::ZERO; n * n * n];
    plan.adjoint(&y, &mut aty);
    let dot = |a: &[Complex32], b: &[Complex32]| -> Complex64 {
        a.iter().zip(b).map(|(&p, &q)| p.to_f64().conj() * q.to_f64()).sum()
    };
    let lhs = dot(&kspace, &y);
    let rhs = dot(&image, &aty);
    let rel = (lhs - rhs).abs() / lhs.abs();
    println!("adjointness ⟨Ax,y⟩ vs ⟨x,A†y⟩: relative difference {rel:.2e}");
    assert!(rel < 1e-4, "adjointness violated");

    // Accuracy at the DC sample: F(0) must equal the image sum.
    let mut plan_dc = NufftPlan::new([n; 3], &[[0.0f64; 3]], NufftConfig::default());
    let mut dc = vec![Complex32::ZERO; 1];
    plan_dc.forward(&image, &mut dc);
    let want: Complex64 = image.iter().map(|z| z.to_f64()).sum();
    let err = (dc[0].to_f64() - want).abs() / want.abs();
    println!("DC-sample accuracy: relative error {err:.2e}");
    assert!(err < 1e-3);

    println!("ok");
}
