//! Undersampled (compressive-sensing-style) reconstruction with the
//! variable-density random trajectory of §II-C.
//!
//! Acquires a 2D phantom at a fraction of Nyquist with center-weighted
//! Gaussian random sampling and compares gridding vs regularized CG
//! reconstruction as the undersampling factor grows.
//!
//! ```text
//! cargo run --release --example undersampled_recon
//! ```

use nufft::core::{NufftConfig, NufftPlan};
use nufft::math::error::rel_l2_c32;
use nufft::math::Complex32;
use nufft::mri::phantom::phantom_2d;
use nufft::mri::recon::{gridding_recon, IterativeRecon};
use nufft_testkit::rng::Rng;

/// 2D variable-density Gaussian sampling (truncated to the band).
fn vd_random_2d(count: usize, sigma: f64, seed: u64) -> Vec<[f64; 2]> {
    let mut rng = Rng::seed_from_u64(seed);
    let gauss = |rng: &mut Rng| -> f64 {
        loop {
            let u1: f64 = rng.gen_f64(1e-12..1.0);
            let u2: f64 = rng.gen_f64(0.0..core::f64::consts::TAU);
            let g = (-2.0 * u1.ln()).sqrt() * u2.cos() * sigma;
            if (-0.5..0.5).contains(&g) {
                return g;
            }
        }
    };
    (0..count).map(|_| [gauss(&mut rng), gauss(&mut rng)]).collect()
}

fn main() {
    let n = 64usize;
    let truth = phantom_2d(n);
    let nyquist = n * n;
    println!("2D phantom N={n}² ({nyquist} Nyquist samples)\n");
    println!(
        "{:>12} {:>10} {:>14} {:>14}",
        "sampling", "samples", "gridding err", "CG err (30 it)"
    );

    for frac in [2.0f64, 1.0, 0.5, 0.25] {
        let count = (nyquist as f64 * frac) as usize;
        let traj = vd_random_2d(count, 0.22, 9);
        let cfg = NufftConfig { w: 3.0, ..NufftConfig::default() };
        let mut plan = NufftPlan::new([n; 2], &traj, cfg);

        let mut y = vec![Complex32::ZERO; count];
        plan.forward(&truth, &mut y);

        let dcf = vec![1.0f32; count];
        let grid_img = gridding_recon(&mut plan, &y, &dcf);
        let e_grid = rel_l2_c32(&grid_img, &truth);

        let mut it = IterativeRecon::new(&mut plan, vec![], dcf, 1e-3);
        let rep = it.reconstruct(&[y], 30, 1e-8);
        let e_iter = rel_l2_c32(&rep.image, &truth);

        println!("{:>11.2}x {:>10} {:>14.4} {:>14.4}", frac, count, e_grid, e_iter);
    }
    println!("\n(iterative reconstruction degrades gracefully below Nyquist, the CS");
    println!(" regime the random trajectory targets; gridding falls apart faster)");
}
