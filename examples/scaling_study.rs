//! Scheduler scaling study: replay this machine's real task graph on 1–64
//! virtual cores and compare scheduling policies — a miniature of the
//! paper's Figures 10–12 you can run anywhere.
//!
//! ```text
//! cargo run --release --example scaling_study
//! cargo run --release --example scaling_study -- spiral 128
//! ```

use nufft::core::{NufftConfig, NufftPlan};
use nufft::math::Complex32;
use nufft::parallel::QueuePolicy;
use nufft::sim::{simulate, LinearCost};
use nufft::traj::{dataset, DatasetKind, DatasetParams};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let kind = match args.first().map(|s| s.as_str()) {
        Some("random") => DatasetKind::Random,
        Some("spiral") => DatasetKind::Spiral,
        _ => DatasetKind::Radial,
    };
    let n: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(96);
    let params = DatasetParams {
        n,
        k: 2 * n,
        s: (n * n) / 2,
        sr: (2 * n * (n * n) / 2) as f64 / (n as f64).powi(3),
    };
    println!(
        "{} dataset: N={n}, {} samples; building plans...",
        kind.name(),
        params.total_samples()
    );
    let traj = dataset::generate(kind, &params, 3);

    // Build one plan per configuration under study.
    let variants: [(&str, bool, QueuePolicy); 3] = [
        ("no privatization + FIFO ", false, QueuePolicy::Fifo),
        ("selective privatization ", true, QueuePolicy::Fifo),
        ("privatization + priority", true, QueuePolicy::Priority),
    ];

    println!("\n  simulated adjoint-convolution speedup vs 1 core");
    print!("{:<26}", "configuration");
    let cores = [1usize, 4, 10, 20, 40, 64];
    for c in &cores {
        print!("{:>8}", format!("{c}c"));
    }
    println!();

    for (name, privatize, policy) in variants {
        let cfg = NufftConfig {
            // Partitioning and the Eq. 6 privatization threshold are sized
            // for the largest *simulated* machine (64 virtual cores); the
            // single calibration run just executes oversubscribed.
            threads: 64,
            w: 4.0,
            privatization: privatize,
            policy,
            partitions_per_dim: Some(8),
            ..NufftConfig::default()
        };
        let mut plan = NufftPlan::new([n; 3], &traj.points, cfg);
        // Calibrate the cost model from one measured convolution.
        let samples: Vec<Complex32> =
            (0..traj.len()).map(|i| Complex32::new(1.0, i as f32 * 1e-4)).collect();
        let conv_s = plan.adjoint_convolution_only(&samples);
        let per_sample = conv_s / traj.len() as f64;
        let model = LinearCost {
            per_task: per_sample * 50.0,
            per_sample,
            reduce_per_sample: per_sample * 0.12,
            queue_cost: 2e-6,
        };
        let base = simulate(plan.graph(), policy, 1, &model).makespan;
        print!("{name:<26}");
        for &c in &cores {
            let r = simulate(plan.graph(), policy, c, &model);
            print!("{:>8}", format!("{:.1}x", base / r.makespan));
        }
        println!();
    }
    println!("\n(expected: privatization rescues the dense-center serial chain; the");
    println!(" priority queue adds its margin at high core counts — Figures 11/12)");
}
