//! Iterative multichannel 3D MRI reconstruction — the paper's headline
//! application (abstract: "iterative multichannel reconstruction of a
//! 240×240×240 image could execute in just over 3 minutes").
//!
//! Simulates an 8-coil radial acquisition of a 3D Shepp–Logan phantom and
//! reconstructs it with CG-SENSE. Pass a size to scale up:
//!
//! ```text
//! cargo run --release --example mri_recon            # N = 32 (seconds)
//! cargo run --release --example mri_recon -- 64      # larger
//! cargo run --release --example mri_recon -- 240 8   # the paper's setting
//! ```

use nufft::core::{NufftConfig, NufftPlan};
use nufft::math::error::rel_l2_c32;
use nufft::math::Complex32;
use nufft::mri::coils::synthetic_coils;
use nufft::mri::dcf::radial_dcf;
use nufft::mri::phantom::phantom_3d;
use nufft::mri::recon::{gridding_recon, IterativeRecon};
use nufft::traj::generators::radial;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = args.first().and_then(|a| a.parse().ok()).unwrap_or(32);
    let num_coils: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(8);
    let cg_iters = 10;

    // Acquisition: radial spokes at ~Nyquist for the sphere.
    let k = 2 * n;
    let spokes = (n * n) / 2;
    println!("N = {n}³, {num_coils} coils, {spokes} spokes × {k} samples");

    let t0 = Instant::now();
    let truth = phantom_3d(n);
    let traj = radial(k, spokes, 11);
    println!("phantom + trajectory: {:.1}s ({} samples)", t0.elapsed().as_secs_f64(), traj.len());

    let t0 = Instant::now();
    let mut plan = NufftPlan::new([n; 3], &traj.points, NufftConfig::default());
    println!(
        "plan built in {:.1}s (preprocessing {:.2}s, {} tasks, {} privatized)",
        t0.elapsed().as_secs_f64(),
        plan.preprocess_seconds(),
        plan.graph().len(),
        plan.graph().num_privatized()
    );

    // Simulate the multichannel acquisition.
    let t0 = Instant::now();
    let coils = synthetic_coils::<3>(n, num_coils);
    let mut data = Vec::with_capacity(num_coils);
    for coil in &coils {
        let weighted: Vec<Complex32> = truth.iter().zip(coil).map(|(&x, &s)| x * s).collect();
        let mut y = vec![Complex32::ZERO; traj.len()];
        plan.forward(&weighted, &mut y);
        data.push(y);
    }
    println!("simulated {} coil acquisitions in {:.1}s", num_coils, t0.elapsed().as_secs_f64());

    // Non-iterative gridding baseline (single combined channel for speed).
    let dcf = radial_dcf(&traj.points);
    let t0 = Instant::now();
    let grid_img = gridding_recon(&mut plan, &data[0], &dcf);
    let grid_time = t0.elapsed().as_secs_f64();
    // Compare against the coil-weighted truth it actually observes.
    let coil_truth: Vec<Complex32> = truth.iter().zip(&coils[0]).map(|(&x, &s)| x * s).collect();
    let e_grid = rel_l2_c32(&grid_img, &coil_truth);

    // Iterative CG-SENSE.
    let t0 = Instant::now();
    let mut recon = IterativeRecon::new(&mut plan, coils, dcf, 1e-4);
    let report = recon.reconstruct(&data, cg_iters, 1e-6);
    let iter_time = t0.elapsed().as_secs_f64();
    let e_iter = rel_l2_c32(&report.image, &truth);

    println!();
    println!("gridding  (1 NUFFT)    : {grid_time:6.1}s   rel. error {e_grid:.3} (single coil)");
    println!(
        "CG-SENSE  ({} NUFFTs)  : {iter_time:6.1}s   rel. error {e_iter:.3} ({} CG iters, converged: {})",
        report.nufft_calls,
        report.cg.iterations,
        report.cg.converged
    );
    println!("per-NUFFT amortized    : {:.2}s", iter_time / report.nufft_calls.max(1) as f64);
}
