//! Golden-value accuracy tests: forward/adjoint NUFFT against the
//! brute-force direct DTFT oracle (`nufft-baselines::direct`) on small
//! seeded 1D/2D/3D problems.
//!
//! The error budget is not an arbitrary tolerance: for the Kaiser–Bessel
//! kernel with Beatty's β (see `crates/core/src/kernel.rs`), the aliasing
//! error of the gridding approximation decays like `e^{-β}`. We assert the
//! measured relative L2 error stays below a small safety multiple of that
//! theoretical bound plus the single-precision floor of the f32 pipeline —
//! so the test fails if either the kernel parameters or the convolution
//! regress, yet never flakes on FP round-off.
//!
//! All inputs (trajectories, images, sample vectors) are generated from
//! named seeds via `nufft-testkit`, so a failure is replayable bit-exactly.

use nufft::baselines::direct;
use nufft::core::kernel::beatty_beta;
use nufft::core::{NufftConfig, NufftPlan};
use nufft::math::error::rel_l2_mixed;
use nufft::math::{Complex32, Complex64};
use nufft_testkit::Rng;

/// Theoretical relative-error budget for a KB kernel of radius `w` at
/// oversampling `alpha`, in an f32 pipeline: `10·e^{-β}` headroom on the
/// asymptotic aliasing decay, floored by accumulated f32 round-off.
fn kb_error_budget(w: f64, alpha: f64) -> f64 {
    let beta = beatty_beta(w, alpha);
    (10.0 * (-beta).exp()).max(5e-5)
}

fn cfg(threads: usize, w: f64) -> NufftConfig {
    NufftConfig { threads, w, ..NufftConfig::default() }
}

/// Center-dense seeded trajectory: averages two uniforms per component
/// (triangular density), mimicking the radially-weighted datasets.
fn seeded_traj<const D: usize>(count: usize, seed: u64) -> Vec<[f64; D]> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            core::array::from_fn(|_| (rng.gen_f64(0.0..1.0) + rng.gen_f64(0.0..1.0)) / 2.0 - 0.5)
        })
        .collect()
}

fn seeded_image(len: usize, seed: u64) -> Vec<Complex32> {
    Rng::seed_from_u64(seed).gen_c32_vec(len, 1.0)
}

fn forward_case<const D: usize>(n: [usize; D], count: usize, w: f64, seed: u64) -> (f64, f64) {
    let len: usize = n.iter().product();
    let traj = seeded_traj::<D>(count, seed);
    let image = seeded_image(len, seed ^ 0xABCD);
    let mut plan = NufftPlan::new(n, &traj, cfg(2, w));
    let mut got = vec![Complex32::ZERO; count];
    plan.forward(&image, &mut got);
    let want = direct::forward(&image, n, &traj);
    (rel_l2_mixed(&got, &want), kb_error_budget(w, 2.0))
}

#[test]
fn golden_forward_1d_beats_kernel_bound() {
    let (err, budget) = forward_case::<1>([64], 150, 4.0, 101);
    assert!(err < budget, "1D forward err {err} exceeds KB budget {budget}");
}

#[test]
fn golden_forward_2d_beats_kernel_bound() {
    let (err, budget) = forward_case::<2>([20, 20], 250, 4.0, 202);
    assert!(err < budget, "2D forward err {err} exceeds KB budget {budget}");
}

#[test]
fn golden_forward_3d_beats_kernel_bound() {
    let (err, budget) = forward_case::<3>([10, 10, 10], 300, 4.0, 303);
    assert!(err < budget, "3D forward err {err} exceeds KB budget {budget}");
}

/// The narrower W=3 kernel has a looser theoretical bound; the measured
/// error must still respect it (this is the bound/measurement cross-check
/// at a second operating point).
#[test]
fn golden_forward_2d_w3_beats_its_own_bound() {
    let (err, budget) = forward_case::<2>([16, 16], 200, 3.0, 404);
    assert!(err < budget, "2D W=3 forward err {err} exceeds KB budget {budget}");
    // And the theoretical aliasing decay is meaningfully weaker at W=3
    // (both budgets may hit the shared f32 round-off floor, so compare β).
    assert!(beatty_beta(3.0, 2.0) < beatty_beta(4.0, 2.0));
}

/// Oversampled-grid lengths exercising the mixed-radix FFT paths (M = 192,
/// 240, 252 — radices 2/3/5/7) and the Bluestein path (M = 62 = 2·31)
/// end-to-end through the forward operator, against the same KB budget.
#[test]
fn golden_forward_mixed_radix_and_bluestein_beats_kernel_bound() {
    for (n, seed) in [(96usize, 1101), (120, 1102), (126, 1103), (31, 1104)] {
        let (err, budget) = forward_case::<1>([n], 150, 4.0, seed);
        assert!(err < budget, "1D n={n} forward err {err} exceeds KB budget {budget}");
    }
}

fn adjoint_case<const D: usize>(n: [usize; D], count: usize, w: f64, seed: u64) -> (f64, f64) {
    let len: usize = n.iter().product();
    let traj = seeded_traj::<D>(count, seed);
    let samples = Rng::seed_from_u64(seed ^ 0x5A5A).gen_c32_vec(count, 1.0);
    let mut plan = NufftPlan::new(n, &traj, cfg(2, w));
    let mut got = vec![Complex32::ZERO; len];
    plan.adjoint(&samples, &mut got);
    let want: Vec<Complex64> = direct::adjoint(&samples, n, &traj);
    (rel_l2_mixed(&got, &want), kb_error_budget(w, 2.0))
}

#[test]
fn golden_adjoint_1d_beats_kernel_bound() {
    let (err, budget) = adjoint_case::<1>([64], 150, 4.0, 505);
    assert!(err < budget, "1D adjoint err {err} exceeds KB budget {budget}");
}

#[test]
fn golden_adjoint_2d_beats_kernel_bound() {
    let (err, budget) = adjoint_case::<2>([20, 20], 250, 4.0, 606);
    assert!(err < budget, "2D adjoint err {err} exceeds KB budget {budget}");
}

#[test]
fn golden_adjoint_3d_beats_kernel_bound() {
    let (err, budget) = adjoint_case::<3>([10, 10, 10], 300, 4.0, 707);
    assert!(err < budget, "3D adjoint err {err} exceeds KB budget {budget}");
}

/// Adjoint counterpart of the mixed-radix/Bluestein length sweep.
#[test]
fn golden_adjoint_mixed_radix_and_bluestein_beats_kernel_bound() {
    for (n, seed) in [(96usize, 1201), (120, 1202), (126, 1203), (31, 1204)] {
        let (err, budget) = adjoint_case::<1>([n], 150, 4.0, seed);
        assert!(err < budget, "1D n={n} adjoint err {err} exceeds KB budget {budget}");
    }
}

/// Forward and adjoint against the oracle on the *same* seeded problem must
/// also satisfy the dot-test through the oracle's numbers: ⟨Ax, y⟩ computed
/// with the fast forward equals ⟨x, A†y⟩ computed with the oracle adjoint,
/// within the kernel budget. This couples the two golden checks so a
/// matched pair of sign/centering bugs cannot cancel silently.
#[test]
fn golden_cross_dot_test_2d() {
    let n = [18usize, 18];
    let count = 200;
    let traj = seeded_traj::<2>(count, 808);
    let x = seeded_image(324, 809);
    let y = Rng::seed_from_u64(810).gen_c32_vec(count, 1.0);
    let mut plan = NufftPlan::new(n, &traj, cfg(2, 4.0));

    let mut ax = vec![Complex32::ZERO; count];
    plan.forward(&x, &mut ax);
    let aty_oracle = direct::adjoint(&y, n, &traj);

    let lhs: Complex64 = ax.iter().zip(&y).map(|(&a, &b)| a.to_f64().conj() * b.to_f64()).sum();
    let rhs: Complex64 = x.iter().zip(&aty_oracle).map(|(&a, &b)| a.to_f64().conj() * b).sum();
    let scale = lhs.abs().max(rhs.abs()).max(1e-9);
    let budget = kb_error_budget(4.0, 2.0);
    assert!(
        (lhs - rhs).abs() / scale < budget,
        "cross dot-test mismatch: {lhs:?} vs {rhs:?} (budget {budget})"
    );
}

/// Seeded inputs are reproducible: the same seeds produce the same NUFFT
/// output bits in two independent runs (plans built twice from scratch).
#[test]
fn golden_problem_is_reproducible() {
    let run = || {
        let traj = seeded_traj::<2>(120, 911);
        let image = seeded_image(256, 912);
        let mut plan = NufftPlan::new([16, 16], &traj, cfg(2, 4.0));
        let mut out = vec![Complex32::ZERO; 120];
        plan.forward(&image, &mut out);
        out
    };
    let a = run();
    let b = run();
    assert!(
        a.iter()
            .zip(&b)
            .all(|(p, q)| p.re.to_bits() == q.re.to_bits() && p.im.to_bits() == q.im.to_bits()),
        "same-seed forward runs differ"
    );
}
