//! Type-3 execution-matrix consistency: Fused vs Phased inner execution
//! and 1/2/4/16-thread runs must all produce bitwise-identical output —
//! the type-3 analogue of `tests/scheduler_consistency.rs`, and the
//! backing for the `NUFFT_THREADS=16` stress step in `scripts/ci.sh`.
//!
//! Every constituent stage is individually deterministic (canonical
//! tile-major scatter ordering, pure gathers, exclusion-edge-ordered
//! fused DAGs), so their composition must be too; this pins it.

use nufft::core::plan::ExecMode;
use nufft::core::{NufftConfig, NufftPlan, Type3Plan};
use nufft::math::Complex32;
use nufft::traj::generators::{cloud, clustered_cloud};
use nufft_testkit::Rng;

fn threads_env_or(default: usize) -> usize {
    std::env::var("NUFFT_THREADS").ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn assert_bitwise(a: &[Complex32], b: &[Complex32], what: &str) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.re.to_bits(), y.re.to_bits(), "{what}: re bits differ at {i}");
        assert_eq!(x.im.to_bits(), y.im.to_bits(), "{what}: im bits differ at {i}");
    }
}

#[allow(clippy::type_complexity)]
fn problem(
    num_sources: usize,
    num_targets: usize,
    seed: u64,
) -> (Vec<[f64; 2]>, Vec<[f64; 2]>, Vec<Complex32>, Vec<Complex32>) {
    let sources: Vec<[f64; 2]> = clustered_cloud(num_sources, 4, 3.5, 0.3, seed);
    let targets: Vec<[f64; 2]> = cloud(num_targets, 2.2, seed ^ 0x1234);
    let strengths = Rng::seed_from_u64(seed ^ 0xAA).gen_c32_vec(num_sources, 1.0);
    let samples = Rng::seed_from_u64(seed ^ 0xBB).gen_c32_vec(num_targets, 1.0);
    (sources, targets, strengths, samples)
}

fn run_both(
    sources: &[[f64; 2]],
    targets: &[[f64; 2]],
    strengths: &[Complex32],
    samples: &[Complex32],
    threads: usize,
    mode: ExecMode,
    privatization: bool,
) -> (Vec<Complex32>, Vec<Complex32>) {
    // Pin the task decomposition (as `tests/determinism.rs` does) so only
    // the schedule varies with the worker count, not the partition layout.
    let cfg = NufftConfig {
        threads,
        w: 3.0,
        exec_mode: mode,
        partitions_per_dim: Some(4),
        privatization,
        ..NufftConfig::default()
    };
    let mut plan = Type3Plan::new(sources, targets, cfg);
    let mut fwd = vec![Complex32::ZERO; targets.len()];
    let mut adj = vec![Complex32::ZERO; sources.len()];
    // Two rounds so warm-path (post-first-apply) output is covered too.
    for _ in 0..2 {
        plan.forward(strengths, &mut fwd);
        plan.adjoint(samples, &mut adj);
    }
    (fwd, adj)
}

/// Fused and Phased inner execution agree bitwise, at several thread
/// counts (including the CI stress count via `NUFFT_THREADS`).
#[test]
fn type3_fused_matches_phased_bitwise() {
    let (sources, targets, strengths, samples) = problem(300, 200, 42);
    for threads in [1usize, 2, threads_env_or(4)] {
        let (ff, fa) =
            run_both(&sources, &targets, &strengths, &samples, threads, ExecMode::Fused, true);
        let (pf, pa) =
            run_both(&sources, &targets, &strengths, &samples, threads, ExecMode::Phased, true);
        assert_bitwise(&ff, &pf, &format!("forward fused-vs-phased at {threads} threads"));
        assert_bitwise(&fa, &pa, &format!("adjoint fused-vs-phased at {threads} threads"));
    }
}

/// Output is invariant across thread counts (1 vs 2 vs 4 vs the
/// `NUFFT_THREADS` stress count), in both exec modes.
///
/// Like `tests/determinism.rs`, the *layout* must be pinned for bitwise
/// cross-thread identity: partitions via `partitions_per_dim`, and
/// privatization off — the selective-privatization threshold (Eq. 6,
/// `M/(P·2^{d+1})`) scales with the worker count by design, so leaving it
/// on changes which tasks pre-accumulate into private tiles and thereby
/// the rounding of per-cell segment sums. With the layout pinned, only the
/// schedule varies, and the exclusion-edge ordering makes that invisible.
#[test]
fn type3_is_deterministic_across_thread_counts() {
    let (sources, targets, strengths, samples) = problem(280, 190, 77);
    for mode in [ExecMode::Fused, ExecMode::Phased] {
        let (f1, a1) = run_both(&sources, &targets, &strengths, &samples, 1, mode, false);
        for threads in [2usize, 4, threads_env_or(4)] {
            let (ft, at) = run_both(&sources, &targets, &strengths, &samples, threads, mode, false);
            assert_bitwise(&f1, &ft, &format!("forward {mode:?} {threads} threads vs 1"));
            assert_bitwise(&a1, &at, &format!("adjoint {mode:?} {threads} threads vs 1"));
        }
    }
}

/// Re-running the same multi-worker configuration (privatization on, the
/// default layout) must be stable run-to-run — schedule-independence at a
/// fixed thread count, the property the `NUFFT_THREADS=16` CI stress
/// oversubscribes.
#[test]
fn type3_is_stable_across_repeated_runs() {
    let (sources, targets, strengths, samples) = problem(260, 180, 55);
    let threads = threads_env_or(4);
    for mode in [ExecMode::Fused, ExecMode::Phased] {
        let (f0, a0) = run_both(&sources, &targets, &strengths, &samples, threads, mode, true);
        for rep in 0..3 {
            let (f, a) = run_both(&sources, &targets, &strengths, &samples, threads, mode, true);
            assert_bitwise(&f0, &f, &format!("forward {mode:?} repeat {rep}"));
            assert_bitwise(&a0, &a, &format!("adjoint {mode:?} repeat {rep}"));
        }
    }
}

/// Flipping exec mode on a *live* plan (the registry lease pattern)
/// keeps output identical to a plan born in that mode.
#[test]
fn type3_exec_mode_flips_on_live_plan() {
    let (sources, targets, strengths, _) = problem(220, 150, 99);
    let cfg = NufftConfig { threads: 2, w: 3.0, ..NufftConfig::default() };
    let mut plan = NufftPlan::type3(&sources, &targets, cfg);
    let mut a = vec![Complex32::ZERO; targets.len()];
    let mut b = vec![Complex32::ZERO; targets.len()];
    plan.set_exec_mode(ExecMode::Fused);
    plan.forward(&strengths, &mut a);
    plan.set_exec_mode(ExecMode::Phased);
    plan.forward(&strengths, &mut b);
    assert_bitwise(&a, &b, "live exec-mode flip");
}
