//! Tolerance-driven planning accuracy: plans built from a requested
//! relative accuracy `eps` (no kernel parameters in sight) against the
//! brute-force direct DTFT oracle, at eps ∈ {1e-2, 1e-4, 1e-6} for both
//! the ES and Kaiser–Bessel families, in 1D/2D/3D.
//!
//! The asserted budget is `2·√D·eps`, floored by the single-precision
//! pipeline round-off (the same 5e-5 floor `golden_accuracy.rs` uses).
//! The 2× headroom is the honest reading of the width rules: FINUFFT's
//! `ns = ⌈log₁₀(1/eps)⌉ + 1` targets the *order* of the request and is
//! documented (Barnett et al.) to land within a small constant of it —
//! measured here at worst 1.35·eps — and the f32 floor is the one thing
//! no kernel choice can plan away. Note this is far tighter than the 10×
//! model headroom `kb_error_budget` grants the explicit-parameter tests.
//!
//! All inputs are generated from named seeds via `nufft-testkit`, so a
//! failure is replayable bit-exactly.

use nufft::baselines::direct;
use nufft::core::{KernelChoice, NufftConfig, NufftPlan, Type3Plan};
use nufft::math::error::rel_l2_mixed;
use nufft::math::{Complex32, Complex64};
use nufft::traj::generators::cloud;
use nufft_testkit::Rng;

/// Accuracy budget for a `D`-dimensional tolerance-planned transform in
/// an f32 pipeline (see the module docs for the 2× headroom and the 5e-5
/// floor). Per-dimension kernel errors accumulate roughly in quadrature
/// across the separable window product, hence the √D factor.
fn budget<const D: usize>(eps: f64) -> f64 {
    (2.0 * (D as f64).sqrt() * eps).max(5e-5)
}

/// Center-dense seeded trajectory (triangular density per component).
fn seeded_traj<const D: usize>(count: usize, seed: u64) -> Vec<[f64; D]> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            core::array::from_fn(|_| (rng.gen_f64(0.0..1.0) + rng.gen_f64(0.0..1.0)) / 2.0 - 0.5)
        })
        .collect()
}

fn seeded_image(len: usize, seed: u64) -> Vec<Complex32> {
    Rng::seed_from_u64(seed).gen_c32_vec(len, 1.0)
}

fn forward_err<const D: usize>(
    n: [usize; D],
    count: usize,
    eps: f64,
    family: KernelChoice,
    seed: u64,
) -> f64 {
    let len: usize = n.iter().product();
    let traj = seeded_traj::<D>(count, seed);
    let image = seeded_image(len, seed ^ 0xABCD);
    let cfg =
        NufftConfig { threads: 2, ..NufftConfig::default() }.with_tolerance_family(eps, family);
    let mut plan = NufftPlan::new(n, &traj, cfg);
    let mut got = vec![Complex32::ZERO; count];
    plan.forward(&image, &mut got);
    let want = direct::forward(&image, n, &traj);
    rel_l2_mixed(&got, &want)
}

fn adjoint_err<const D: usize>(
    n: [usize; D],
    count: usize,
    eps: f64,
    family: KernelChoice,
    seed: u64,
) -> f64 {
    let len: usize = n.iter().product();
    let traj = seeded_traj::<D>(count, seed);
    let samples = Rng::seed_from_u64(seed ^ 0x5A5A).gen_c32_vec(count, 1.0);
    let cfg =
        NufftConfig { threads: 2, ..NufftConfig::default() }.with_tolerance_family(eps, family);
    let mut plan = NufftPlan::new(n, &traj, cfg);
    let mut got = vec![Complex32::ZERO; len];
    plan.adjoint(&samples, &mut got);
    let want: Vec<Complex64> = direct::adjoint(&samples, n, &traj);
    rel_l2_mixed(&got, &want)
}

const SWEEP: [f64; 3] = [1e-2, 1e-4, 1e-6];
const FAMILIES: [KernelChoice; 2] = [KernelChoice::EsKernel, KernelChoice::KaiserBessel];

#[test]
fn tolerance_sweep_forward_2d_meets_budget() {
    for family in FAMILIES {
        for eps in SWEEP {
            let err = forward_err::<2>([20, 20], 250, eps, family, 7001);
            assert!(
                err < budget::<2>(eps),
                "{family:?} eps={eps}: 2D forward err {err} exceeds budget {}",
                budget::<2>(eps)
            );
        }
    }
}

#[test]
fn tolerance_sweep_adjoint_2d_meets_budget() {
    for family in FAMILIES {
        for eps in SWEEP {
            let err = adjoint_err::<2>([20, 20], 250, eps, family, 7002);
            assert!(
                err < budget::<2>(eps),
                "{family:?} eps={eps}: 2D adjoint err {err} exceeds budget {}",
                budget::<2>(eps)
            );
        }
    }
}

#[test]
fn tolerance_sweep_forward_1d_meets_budget() {
    for family in FAMILIES {
        for eps in SWEEP {
            let err = forward_err::<1>([64], 150, eps, family, 7003);
            assert!(
                err < budget::<1>(eps),
                "{family:?} eps={eps}: 1D forward err {err} exceeds budget {}",
                budget::<1>(eps)
            );
        }
    }
}

#[test]
fn tolerance_sweep_forward_3d_meets_budget() {
    for family in FAMILIES {
        for eps in SWEEP {
            let err = forward_err::<3>([10, 10, 10], 300, eps, family, 7004);
            assert!(
                err < budget::<3>(eps),
                "{family:?} eps={eps}: 3D forward err {err} exceeds budget {}",
                budget::<3>(eps)
            );
        }
    }
}

/// The headline acceptance point: `NufftPlan::with_tolerance(1e-6)` — the
/// one-argument public entry, ES family, default knobs — matches the DTFT
/// oracle within budget in every dimensionality, forward and adjoint.
#[test]
fn with_tolerance_1e6_matches_oracle_in_all_dims() {
    let eps = 1e-6;

    let t1 = seeded_traj::<1>(150, 7101);
    let img1 = seeded_image(64, 7102);
    let mut p1 = NufftPlan::with_tolerance([64], &t1, eps);
    let mut got1 = vec![Complex32::ZERO; 150];
    p1.forward(&img1, &mut got1);
    let err1 = rel_l2_mixed(&got1, &direct::forward(&img1, [64], &t1));
    assert!(err1 < budget::<1>(eps), "1D forward err {err1}");

    let t2 = seeded_traj::<2>(250, 7103);
    let img2 = seeded_image(400, 7104);
    let mut p2 = NufftPlan::with_tolerance([20, 20], &t2, eps);
    let mut got2 = vec![Complex32::ZERO; 250];
    p2.forward(&img2, &mut got2);
    let err2 = rel_l2_mixed(&got2, &direct::forward(&img2, [20, 20], &t2));
    assert!(err2 < budget::<2>(eps), "2D forward err {err2}");
    let samples2 = Rng::seed_from_u64(7105).gen_c32_vec(250, 1.0);
    let mut adj2 = vec![Complex32::ZERO; 400];
    p2.adjoint(&samples2, &mut adj2);
    let werr2: Vec<Complex64> = direct::adjoint(&samples2, [20, 20], &t2);
    assert!(rel_l2_mixed(&adj2, &werr2) < budget::<2>(eps), "2D adjoint err");

    let t3 = seeded_traj::<3>(300, 7106);
    let img3 = seeded_image(1000, 7107);
    let mut p3 = NufftPlan::with_tolerance([10, 10, 10], &t3, eps);
    let mut got3 = vec![Complex32::ZERO; 300];
    p3.forward(&img3, &mut got3);
    let err3 = rel_l2_mixed(&got3, &direct::forward(&img3, [10, 10, 10], &t3));
    assert!(err3 < budget::<3>(eps), "3D forward err {err3}");
}

/// Tightening the tolerance must actually tighten the observed error —
/// the loose plan's kernel error (≈1e-2 regime) dwarfs the tight plan's
/// (floored at f32 round-off), so this holds with a wide margin.
#[test]
fn tighter_tolerance_is_more_accurate() {
    for family in FAMILIES {
        let loose = forward_err::<2>([20, 20], 250, 1e-2, family, 7201);
        let tight = forward_err::<2>([20, 20], 250, 1e-6, family, 7201);
        assert!(tight < loose, "{family:?}: tight err {tight} not below loose err {loose}");
    }
}

/// Type-3 tolerance planning against the type-3 direct oracle.
#[test]
fn type3_with_tolerance_meets_budget() {
    let sources: Vec<[f64; 2]> = cloud(160, 3.0, 7301);
    let targets: Vec<[f64; 2]> = cloud(140, 2.5, 7302);
    let strengths = Rng::seed_from_u64(7303).gen_c32_vec(160, 1.0);
    for eps in [1e-2, 1e-4] {
        let mut plan = Type3Plan::with_tolerance(&sources, &targets, eps);
        let mut got = vec![Complex32::ZERO; 140];
        plan.forward(&strengths, &mut got);
        let want = direct::type3(&strengths, &sources, &targets);
        let err = rel_l2_mixed(&got, &want);
        // Type-3 runs two gridding passes, so allow the budget twice.
        assert!(err < 2.0 * budget::<2>(eps), "type-3 eps={eps}: err {err}");
    }
}
