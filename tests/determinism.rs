//! Scheduler-determinism: the adjoint convolution must produce the same
//! grid no matter how many workers run it or how the OS interleaves them.
//!
//! This is the paper's §III-B correctness story made testable: the
//! task-dependency graph serializes every pair of halo-sharing (adjacent)
//! tasks in a fixed order, and selective privatization defers a task's
//! shared-grid reduction behind the same edges — so floating-point sums at
//! every grid cell accumulate in a schedule-independent order. With the
//! partition layout pinned (`partitions_per_dim`), the grid must be
//! **bit-identical** across 1, 2 and 4 workers, both queue policies, and
//! privatization on/off.

use nufft::core::{NufftConfig, NufftPlan};
use nufft::math::Complex32;
use nufft::parallel::graph::QueuePolicy;
use nufft_testkit::Rng;

fn seeded_problem(count: usize, seed: u64) -> (Vec<[f64; 3]>, Vec<Complex32>) {
    let mut rng = Rng::seed_from_u64(seed);
    let traj = rng.gen_points::<3>(count, -0.5..0.4999);
    let samples = rng.gen_c32_vec(count, 1.0);
    (traj, samples)
}

fn adjoint_grid(
    traj: &[[f64; 3]],
    samples: &[Complex32],
    threads: usize,
    policy: QueuePolicy,
    privatization: bool,
) -> Vec<Complex32> {
    let n = [12usize, 12, 12];
    let cfg = NufftConfig {
        threads,
        w: 3.0,
        policy,
        privatization,
        // Pin the task decomposition so only the *schedule* varies with the
        // worker count, not the partition layout.
        partitions_per_dim: Some(4),
        ..NufftConfig::default()
    };
    let mut plan = NufftPlan::new(n, traj, cfg);
    let mut grid = vec![Complex32::ZERO; 12 * 12 * 12];
    plan.adjoint(samples, &mut grid);
    grid
}

fn assert_bit_identical(a: &[Complex32], b: &[Complex32], what: &str) {
    for (i, (p, q)) in a.iter().zip(b).enumerate() {
        assert!(
            p.re.to_bits() == q.re.to_bits() && p.im.to_bits() == q.im.to_bits(),
            "{what}: grid cell {i} differs: {p:?} vs {q:?}"
        );
    }
}

#[test]
fn adjoint_grid_is_bitwise_stable_across_worker_counts() {
    let (traj, samples) = seeded_problem(900, 0xDE7E_0001);
    for policy in [QueuePolicy::Priority, QueuePolicy::Fifo] {
        for privatization in [true, false] {
            let reference = adjoint_grid(&traj, &samples, 1, policy, privatization);
            for threads in [2usize, 4] {
                let got = adjoint_grid(&traj, &samples, threads, policy, privatization);
                assert_bit_identical(
                    &reference,
                    &got,
                    &format!("{policy:?}/privatization={privatization}/threads={threads}"),
                );
            }
        }
    }
}

/// Re-running the *same* multi-worker configuration several times must also
/// be stable: this catches schedule-dependent summation that a single
/// 1-vs-N comparison could miss by luck.
#[test]
fn adjoint_grid_is_stable_across_repeated_racy_runs() {
    let (traj, samples) = seeded_problem(1200, 0xDE7E_0002);
    let reference = adjoint_grid(&traj, &samples, 4, QueuePolicy::Priority, true);
    for run in 0..4 {
        let got = adjoint_grid(&traj, &samples, 4, QueuePolicy::Priority, true);
        assert_bit_identical(&reference, &got, &format!("repeat run {run}"));
    }
}

/// Repeated applies on a *reused* plan — and hence a reused persistent
/// worker pool — must match a fresh plan bit-for-bit: the pool carries no
/// state across applies (grids are re-zeroed, private buffers refilled,
/// shards drained to empty at quiescence).
#[test]
fn repeated_applies_on_a_reused_pool_match_a_fresh_plan() {
    let (traj, samples) = seeded_problem(1000, 0xDE7E_0004);
    let n = [12usize, 12, 12];
    for threads in [1usize, 2, 4] {
        let cfg = NufftConfig {
            threads,
            w: 3.0,
            policy: QueuePolicy::Priority,
            privatization: true,
            partitions_per_dim: Some(4),
            ..NufftConfig::default()
        };
        let fresh = adjoint_grid(&traj, &samples, threads, QueuePolicy::Priority, true);
        let mut reused = NufftPlan::new(n, &traj, cfg);
        for apply in 0..3 {
            let mut grid = vec![Complex32::ZERO; 12 * 12 * 12];
            reused.adjoint(&samples, &mut grid);
            assert_bit_identical(
                &fresh,
                &grid,
                &format!("threads={threads}, reused-pool apply {apply}"),
            );
        }
    }
}

/// The persistent pool and the retained spawn-per-call baseline must agree
/// to the bit: the TDG fixes the summation order, not the scheduler. This
/// is what makes the `pool` benchmark an apples-to-apples comparison.
#[test]
fn persistent_and_spawn_backends_agree_bitwise() {
    use nufft::parallel::ExecBackend;
    let (traj, samples) = seeded_problem(900, 0xDE7E_0005);
    let n = [12usize, 12, 12];
    let grid_for = |backend: ExecBackend| {
        let cfg = NufftConfig {
            threads: 4,
            w: 3.0,
            policy: QueuePolicy::Priority,
            privatization: true,
            partitions_per_dim: Some(4),
            backend,
            ..NufftConfig::default()
        };
        let mut plan = NufftPlan::new(n, &traj, cfg);
        let mut grid = vec![Complex32::ZERO; 12 * 12 * 12];
        plan.adjoint(&samples, &mut grid);
        grid
    };
    assert_bit_identical(
        &grid_for(ExecBackend::Persistent),
        &grid_for(ExecBackend::SpawnPerCall),
        "persistent vs spawn-per-call backend",
    );
}

/// The privatized-convolution partial results (per-task private buffers)
/// must reduce into the same grid the non-privatized path writes — the
/// privatization protocol only changes *when* work happens, never *what*
/// is summed. f32 summation order differs between the two paths, so this
/// comparison uses a tight relative tolerance rather than bits.
#[test]
fn privatization_changes_schedule_not_result() {
    let (traj, samples) = seeded_problem(800, 0xDE7E_0003);
    let with = adjoint_grid(&traj, &samples, 4, QueuePolicy::Priority, true);
    let without = adjoint_grid(&traj, &samples, 4, QueuePolicy::Priority, false);
    let err = nufft::math::error::rel_l2_c32(&with, &without);
    assert!(err < 1e-5, "privatized vs direct adjoint diverged by {err}");
}
