//! Golden-value accuracy tests for the type-3 transform against the
//! brute-force direct DTFT oracle (`nufft-baselines::direct::type3`),
//! mirroring `tests/golden_accuracy.rs`.
//!
//! A type-3 apply traverses **two** gridding kernels (the outer spread
//! onto the fine grid, then the inner type-2's kernel), so its aliasing
//! budget is a slightly larger safety multiple of the same `e^{-β}` decay
//! the type-1/2 tests use, with the same f32 round-off floor scaled for
//! the doubled pipeline depth. Several `(W, σ)` operating points are
//! checked so a regression in either kernel's parameters or the fine-grid
//! geometry (spacing `h`, extents `nf`) cannot hide under one setting.
//!
//! All inputs are generated from named seeds via `nufft-testkit`, so a
//! failure is replayable bit-exactly.

use nufft::baselines::direct;
use nufft::core::kernel::beatty_beta;
use nufft::core::{NufftConfig, NufftPlan, Type3Plan};
use nufft::math::error::rel_l2_mixed;
use nufft::math::{Complex32, Complex64};
use nufft::traj::generators::{cloud, clustered_cloud};
use nufft_testkit::Rng;

/// Type-3 error budget at `(w, alpha)`: two KB kernels in series — `50·e^{-β}`
/// headroom on the aliasing decay, floored by the f32 round-off of the
/// doubled pipeline.
fn type3_error_budget(w: f64, alpha: f64) -> f64 {
    let beta = beatty_beta(w, alpha);
    (50.0 * (-beta).exp()).max(1e-4)
}

fn cfg(threads: usize, w: f64, alpha: f64) -> NufftConfig {
    NufftConfig { threads, w, alpha, ..NufftConfig::default() }
}

fn forward_case<const D: usize>(
    num_sources: usize,
    num_targets: usize,
    w: f64,
    alpha: f64,
    seed: u64,
) -> (f64, f64) {
    let sources: Vec<[f64; D]> = cloud(num_sources, 3.0, seed);
    let targets: Vec<[f64; D]> = cloud(num_targets, 2.5, seed ^ 0x7777);
    let strengths = Rng::seed_from_u64(seed ^ 0xABCD).gen_c32_vec(num_sources, 1.0);
    let mut plan = NufftPlan::type3(&sources, &targets, cfg(2, w, alpha));
    let mut got = vec![Complex32::ZERO; num_targets];
    plan.forward(&strengths, &mut got);
    let want = direct::type3(&strengths, &sources, &targets);
    (rel_l2_mixed(&got, &want), type3_error_budget(w, alpha))
}

#[test]
fn type3_forward_1d_beats_kernel_bound() {
    let (err, budget) = forward_case::<1>(150, 120, 4.0, 2.0, 11);
    assert!(err < budget, "1D type-3 forward err {err} exceeds budget {budget}");
}

#[test]
fn type3_forward_2d_beats_kernel_bound() {
    let (err, budget) = forward_case::<2>(200, 150, 4.0, 2.0, 22);
    assert!(err < budget, "2D type-3 forward err {err} exceeds budget {budget}");
}

#[test]
fn type3_forward_3d_beats_kernel_bound() {
    let (err, budget) = forward_case::<3>(250, 120, 4.0, 2.0, 33);
    assert!(err < budget, "3D type-3 forward err {err} exceeds budget {budget}");
}

/// Second and third `(W, σ)` operating points: the narrower W=3 kernel and
/// a tighter σ=1.5 oversampling both weaken the aliasing decay — the
/// measured error must track each setting's own (looser) budget.
#[test]
fn type3_forward_2d_other_operating_points() {
    for (w, alpha, seed) in [(3.0, 2.0, 44u64), (4.0, 1.5, 55), (5.0, 2.0, 66)] {
        let (err, budget) = forward_case::<2>(180, 140, w, alpha, seed);
        assert!(err < budget, "2D type-3 (W={w}, sigma={alpha}) err {err} exceeds budget {budget}");
    }
    assert!(beatty_beta(3.0, 2.0) < beatty_beta(4.0, 2.0));
    assert!(beatty_beta(4.0, 1.5) < beatty_beta(4.0, 2.0));
}

fn adjoint_case<const D: usize>(
    num_sources: usize,
    num_targets: usize,
    w: f64,
    alpha: f64,
    seed: u64,
) -> (f64, f64) {
    let sources: Vec<[f64; D]> = cloud(num_sources, 3.0, seed);
    let targets: Vec<[f64; D]> = cloud(num_targets, 2.5, seed ^ 0x7777);
    let samples = Rng::seed_from_u64(seed ^ 0x5A5A).gen_c32_vec(num_targets, 1.0);
    let mut plan = Type3Plan::new(&sources, &targets, cfg(2, w, alpha));
    let mut got = vec![Complex32::ZERO; num_sources];
    plan.adjoint(&samples, &mut got);
    let want: Vec<Complex64> = direct::type3_adjoint(&samples, &sources, &targets);
    (rel_l2_mixed(&got, &want), type3_error_budget(w, alpha))
}

#[test]
fn type3_adjoint_1d_beats_kernel_bound() {
    let (err, budget) = adjoint_case::<1>(150, 120, 4.0, 2.0, 77);
    assert!(err < budget, "1D type-3 adjoint err {err} exceeds budget {budget}");
}

#[test]
fn type3_adjoint_2d_beats_kernel_bound() {
    let (err, budget) = adjoint_case::<2>(200, 150, 4.0, 2.0, 88);
    assert!(err < budget, "2D type-3 adjoint err {err} exceeds budget {budget}");
}

#[test]
fn type3_adjoint_3d_beats_kernel_bound() {
    let (err, budget) = adjoint_case::<3>(250, 120, 4.0, 2.0, 99);
    assert!(err < budget, "3D type-3 adjoint err {err} exceeds budget {budget}");
}

/// Clustered sources (the particle-deposition shape, heavy local density
/// contrast) must hit the same budget as the uniform cloud — spreading
/// load imbalance may cost time, never accuracy.
#[test]
fn type3_forward_2d_clustered_sources() {
    let sources: Vec<[f64; 2]> = clustered_cloud(240, 5, 4.0, 0.2, 123);
    let targets: Vec<[f64; 2]> = cloud(160, 2.0, 124);
    let strengths = Rng::seed_from_u64(125).gen_c32_vec(sources.len(), 1.0);
    let mut plan = NufftPlan::type3(&sources, &targets, cfg(2, 4.0, 2.0));
    let mut got = vec![Complex32::ZERO; targets.len()];
    plan.forward(&strengths, &mut got);
    let want = direct::type3(&strengths, &sources, &targets);
    let err = rel_l2_mixed(&got, &want);
    let budget = type3_error_budget(4.0, 2.0);
    assert!(err < budget, "clustered type-3 err {err} exceeds budget {budget}");
}

/// Forward against the fast path, adjoint against the oracle: the dot
/// test ⟨Ax, y⟩ == ⟨x, A†y⟩ through the oracle's numbers couples the two
/// directions so matched sign/centering bugs cannot cancel.
#[test]
fn type3_cross_dot_test_2d() {
    let sources: Vec<[f64; 2]> = cloud(150, 3.0, 200);
    let targets: Vec<[f64; 2]> = cloud(110, 2.5, 201);
    let x = Rng::seed_from_u64(202).gen_c32_vec(sources.len(), 1.0);
    let y = Rng::seed_from_u64(203).gen_c32_vec(targets.len(), 1.0);
    let mut plan = NufftPlan::type3(&sources, &targets, cfg(2, 4.0, 2.0));

    let mut ax = vec![Complex32::ZERO; targets.len()];
    plan.forward(&x, &mut ax);
    let aty_oracle = direct::type3_adjoint(&y, &sources, &targets);

    let lhs: Complex64 = ax.iter().zip(&y).map(|(&a, &b)| a.to_f64().conj() * b.to_f64()).sum();
    let rhs: Complex64 = x.iter().zip(&aty_oracle).map(|(&a, &b)| a.to_f64().conj() * b).sum();
    let scale = lhs.abs().max(rhs.abs()).max(1e-9);
    let budget = type3_error_budget(4.0, 2.0);
    assert!(
        (lhs - rhs).abs() / scale < budget,
        "type-3 cross dot-test mismatch: {lhs:?} vs {rhs:?} (budget {budget})"
    );
}

/// A dimension with zero target bandwidth (all `s_d = 0`) degenerates to
/// spacing `h = 1`; the transform must still match the oracle.
#[test]
fn type3_degenerate_flat_dimension() {
    let sources: Vec<[f64; 2]> =
        cloud::<1>(80, 3.0, 300).into_iter().map(|p| [p[0], 0.7 * p[0].sin()]).collect();
    let targets: Vec<[f64; 2]> =
        cloud::<1>(60, 2.0, 301).into_iter().map(|p| [p[0], 0.0]).collect();
    let strengths = Rng::seed_from_u64(302).gen_c32_vec(sources.len(), 1.0);
    let mut plan = NufftPlan::type3(&sources, &targets, cfg(2, 4.0, 2.0));
    let mut got = vec![Complex32::ZERO; targets.len()];
    plan.forward(&strengths, &mut got);
    let want = direct::type3(&strengths, &sources, &targets);
    let err = rel_l2_mixed(&got, &want);
    let budget = type3_error_budget(4.0, 2.0);
    assert!(err < budget, "degenerate-dim type-3 err {err} exceeds budget {budget}");
}
