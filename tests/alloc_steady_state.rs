//! Steady-state operator applies must perform **zero heap allocations**.
//!
//! An iterative solver applies the same forward/adjoint operators hundreds
//! of times; the plan hoists every per-apply allocation into construction
//! or first-use warmup (task-graph run state in `GraphScratch`, FFT tile
//! scratch in a `WorkerLocal` arena, pointer staging in reusable plan
//! vectors, lazily-built FFT twiddle tables). This test pins that contract
//! with a counting global allocator: after a warmup apply of each
//! operator, further applies must not touch the allocator at all — in both
//! window modes, with the parallel persistent-pool executor running.
//!
//! One test function only: the global allocator counts process-wide, so
//! concurrent tests would bleed counts into each other.

use nufft::core::{ExecMode, NufftConfig, NufftPlan, SortMode, WindowMode};
use nufft::fft::FftStrategy;
use nufft::math::Complex32;
use nufft_testkit::alloc::CountingAlloc;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

fn traj3(count: usize) -> Vec<[f64; 3]> {
    (0..count)
        .map(|i| {
            [
                ((i as f64 * 0.618) % 1.0) - 0.5,
                ((i as f64 * 0.414) % 1.0) - 0.5,
                ((i as f64 * 0.732) % 1.0) - 0.5,
            ]
        })
        .collect()
}

fn signal(n: usize, phase: f32) -> Vec<Complex32> {
    (0..n)
        .map(|i| Complex32::new((i as f32 * 0.11 + phase).sin(), (i as f32 * 0.05).cos()))
        .collect()
}

/// Applies every operator once (the warmup fills lazily-built FFT tables,
/// grows scratch vectors to capacity, and spins up pool workers).
#[allow(clippy::too_many_arguments)]
fn apply_all(
    plan: &mut NufftPlan<3>,
    image: &[Complex32],
    samples: &[Complex32],
    images: &[Vec<Complex32>],
    datas: &[Vec<Complex32>],
    out_samples: &mut [Complex32],
    out_image: &mut [Complex32],
    bout_samples: &mut [Vec<Complex32>],
    bout_images: &mut [Vec<Complex32>],
) {
    plan.forward(image, out_samples);
    plan.adjoint(samples, out_image);
    // Stack-array channel refs: the harness itself must not allocate in
    // the measured region.
    {
        let image_refs: [&[Complex32]; 2] = [&images[0], &images[1]];
        let (s0, rest) = bout_samples.split_first_mut().unwrap();
        let mut refs: [&mut [Complex32]; 2] = [s0.as_mut_slice(), rest[0].as_mut_slice()];
        plan.forward_batch(&image_refs, &mut refs);
    }
    {
        let data_refs: [&[Complex32]; 2] = [&datas[0], &datas[1]];
        let (i0, rest) = bout_images.split_first_mut().unwrap();
        let mut refs: [&mut [Complex32]; 2] = [i0.as_mut_slice(), rest[0].as_mut_slice()];
        plan.adjoint_batch(&data_refs, &mut refs);
    }
}

#[test]
fn steady_state_applies_are_allocation_free() {
    let n = [12usize, 12, 12];
    let img_len = 12 * 12 * 12;
    let traj = traj3(600);
    let k = traj.len();
    let channels = 2usize;

    let image = signal(img_len, 0.0);
    let samples = signal(k, 1.0);
    let images: Vec<Vec<Complex32>> = (0..channels).map(|c| signal(img_len, c as f32)).collect();
    let datas: Vec<Vec<Complex32>> = (0..channels).map(|c| signal(k, 2.0 + c as f32)).collect();
    let mut out_samples = vec![Complex32::ZERO; k];
    let mut out_image = vec![Complex32::ZERO; img_len];
    let mut bout_samples = vec![vec![Complex32::ZERO; k]; channels];
    let mut bout_images = vec![vec![Complex32::ZERO; img_len]; channels];

    // Both execution modes must hold the contract: the fused path's DAG
    // scratch (ready-queue shards, pred counters, span records) is
    // plan-owned and sized for the worst case in `prepare`, exactly like
    // the phased path's `GraphScratch`.
    // The sort dimension rides along: the bin-sort permutation (and the
    // unsorted mode's canonical-scan indirection) are built entirely at
    // plan time, so both layouts must be invisible to the allocator at
    // apply time.
    // The FFT-strategy dimension too: a forced-four-step plan owns its
    // transpose scratch (`fs`, one grid-sized slot per four-step axis,
    // grown once per channel count in `ensure_fused`'s warmup), so the
    // two-pass sub-FFT/combine applies must be exactly as allocation-free
    // as the recursive path.
    for exec_mode in [ExecMode::Fused, ExecMode::Phased] {
        for mode in [WindowMode::OnTheFly, WindowMode::Precomputed] {
            for sort in [SortMode::TileMajor, SortMode::None] {
                // Strategy paired with the sort axis (not a fourth nested
                // loop) keeps the combination count at 8 while still
                // exercising four-step under both exec modes and window
                // modes.
                let strategy = if sort == SortMode::TileMajor {
                    FftStrategy::FourStep
                } else {
                    FftStrategy::Recursive
                };
                let cfg = NufftConfig {
                    threads: 2,
                    w: 3.0,
                    partitions_per_dim: Some(4),
                    window_mode: mode,
                    exec_mode,
                    sort,
                    fft_strategy: strategy,
                    ..NufftConfig::default()
                };
                let mut plan = NufftPlan::new(n, &traj, cfg);

                // Warmup: note-taking allocations (FFT tables via OnceLock,
                // scratch capacity growth, pool worker spawn, batch grids)
                // happen here. The batch calls run twice so every reusable
                // vector reaches its steady-state capacity before measurement.
                for _ in 0..2 {
                    apply_all(
                        &mut plan,
                        &image,
                        &samples,
                        &images,
                        &datas,
                        &mut out_samples,
                        &mut out_image,
                        &mut bout_samples,
                        &mut bout_images,
                    );
                }

                let before = ALLOC.snapshot();
                for _ in 0..3 {
                    apply_all(
                        &mut plan,
                        &image,
                        &samples,
                        &images,
                        &datas,
                        &mut out_samples,
                        &mut out_image,
                        &mut bout_samples,
                        &mut bout_images,
                    );
                }
                let delta = ALLOC.snapshot().since(&before);
                assert_eq!(
                delta.allocs, 0,
                "{exec_mode:?}/{mode:?}/{sort:?}: steady-state applies allocated {} times ({} bytes, {} frees)",
                delta.allocs, delta.bytes, delta.deallocs
            );
                assert_eq!(
                    delta.deallocs, 0,
                    "{exec_mode:?}/{mode:?}/{sort:?}: steady-state applies freed memory"
                );
            }
        }
    }

    // Registry cache hits must hold the same contract: a checkout that
    // reuses a pooled instance (hash the key, pop the idle vector, apply,
    // push it back on drop) may not touch the allocator either — the
    // multi-tenant service sits on this path for every warm request.
    let cfg = NufftConfig {
        threads: 2,
        w: 3.0,
        partitions_per_dim: Some(4),
        window_mode: WindowMode::Precomputed,
        ..NufftConfig::default()
    };
    let registry = nufft::core::PlanRegistry::<3>::new(cfg);
    // Warmup: the miss builds the plan, the first check-in grows the idle
    // vector and the key's map entry, and two full rounds bring every
    // plan-internal scratch vector to steady-state capacity.
    for _ in 0..2 {
        let mut lease = registry.checkout(n, &traj);
        lease.forward(&image, &mut out_samples);
        lease.adjoint(&samples, &mut out_image);
    }

    let before = ALLOC.snapshot();
    for _ in 0..3 {
        let mut lease = registry.checkout(n, &traj);
        lease.forward(&image, &mut out_samples);
        lease.adjoint(&samples, &mut out_image);
    }
    let delta = ALLOC.snapshot().since(&before);
    assert_eq!(
        delta.allocs, 0,
        "registry cache-hit applies allocated {} times ({} bytes, {} frees)",
        delta.allocs, delta.bytes, delta.deallocs
    );
    assert_eq!(delta.deallocs, 0, "registry cache-hit applies freed memory");
    let stats = registry.stats();
    assert_eq!(stats.misses, 1, "one cold build only");
    assert_eq!(stats.hits, 4, "warm checkouts all hit the cache");

    // The standalone stage entry points hold the same contract: after the
    // fused spread DAG is built lazily on the first `spread_only` (Fused)
    // and the phased scatter's pointer staging reaches capacity, both
    // spread-only and interp-only applies are allocation-free.
    let mut grid = vec![Complex32::ZERO; 0];
    for exec_mode in [ExecMode::Fused, ExecMode::Phased] {
        let cfg = NufftConfig {
            threads: 2,
            w: 3.0,
            partitions_per_dim: Some(4),
            exec_mode,
            ..NufftConfig::default()
        };
        let mut plan = NufftPlan::new(n, &traj, cfg);
        grid.resize(plan.grid_len(), Complex32::ZERO);
        for _ in 0..2 {
            plan.spread_only(&samples, &mut grid);
            plan.interp_only(&grid, &mut out_samples);
        }
        let before = ALLOC.snapshot();
        for _ in 0..3 {
            plan.spread_only(&samples, &mut grid);
            plan.interp_only(&grid, &mut out_samples);
        }
        let delta = ALLOC.snapshot().since(&before);
        assert_eq!(
            delta.allocs, 0,
            "{exec_mode:?}: steady-state spread/interp-only applies allocated {} times",
            delta.allocs
        );
        assert_eq!(delta.deallocs, 0, "{exec_mode:?}: spread/interp-only applies freed memory");
    }

    // A tolerance-built ES plan holds the same contract: the Horner
    // coefficient table and the Fourier-transform quadrature tabulation
    // are fitted once at plan-build time, so tolerance-driven applies are
    // exactly as allocation-free as explicit-parameter ones. (Plain plan,
    // not a registry checkout, so the registry stats assertions above and
    // below keep their exact miss/hit counts.)
    {
        let cfg = NufftConfig { threads: 2, partitions_per_dim: Some(4), ..NufftConfig::default() };
        let mut plan = NufftPlan::new(n, &traj, cfg.with_tolerance(1e-6));
        for _ in 0..2 {
            plan.forward(&image, &mut out_samples);
            plan.adjoint(&samples, &mut out_image);
        }
        let before = ALLOC.snapshot();
        for _ in 0..3 {
            plan.forward(&image, &mut out_samples);
            plan.adjoint(&samples, &mut out_image);
        }
        let delta = ALLOC.snapshot().since(&before);
        assert_eq!(
            delta.allocs, 0,
            "ES tolerance-plan applies allocated {} times ({} bytes)",
            delta.allocs, delta.bytes
        );
        assert_eq!(delta.deallocs, 0, "ES tolerance-plan applies freed memory");
    }

    // Type-3 applies: the fine grid, the inner type-2's buffers, the
    // adjoint staging vector and the postscale table are all plan-owned,
    // so forward and adjoint must go quiet after one warmup round — for a
    // directly-built plan and through the registry's type-3 pool alike.
    let sources: Vec<[f64; 3]> =
        traj3(200).into_iter().map(|p| [p[0] * 4.0, p[1] * 4.0, p[2] * 4.0]).collect();
    let targets: Vec<[f64; 3]> =
        traj3(150).into_iter().map(|p| [p[0] * 3.0, p[1] * 3.0, p[2] * 3.0]).collect();
    let strengths = signal(sources.len(), 4.0);
    let t3_samples = signal(targets.len(), 5.0);
    let mut t3_fwd = vec![Complex32::ZERO; targets.len()];
    let mut t3_adj = vec![Complex32::ZERO; sources.len()];

    let t3_cfg =
        NufftConfig { threads: 2, w: 3.0, partitions_per_dim: Some(4), ..NufftConfig::default() };
    let mut t3 = nufft::core::Type3Plan::new(&sources, &targets, t3_cfg);
    for _ in 0..2 {
        t3.forward(&strengths, &mut t3_fwd);
        t3.adjoint(&t3_samples, &mut t3_adj);
    }
    let before = ALLOC.snapshot();
    for _ in 0..3 {
        t3.forward(&strengths, &mut t3_fwd);
        t3.adjoint(&t3_samples, &mut t3_adj);
    }
    let delta = ALLOC.snapshot().since(&before);
    assert_eq!(
        delta.allocs, 0,
        "steady-state type-3 applies allocated {} times ({} bytes)",
        delta.allocs, delta.bytes
    );
    assert_eq!(delta.deallocs, 0, "steady-state type-3 applies freed memory");

    // Warm type-3 registry checkouts: hash the key (stack FNV over the
    // coordinate slices), pop the pool, apply, push back on drop.
    for _ in 0..2 {
        let mut lease = registry.checkout_type3(&sources, &targets);
        lease.forward(&strengths, &mut t3_fwd);
        lease.adjoint(&t3_samples, &mut t3_adj);
    }
    let before = ALLOC.snapshot();
    for _ in 0..3 {
        let mut lease = registry.checkout_type3(&sources, &targets);
        lease.forward(&strengths, &mut t3_fwd);
        lease.adjoint(&t3_samples, &mut t3_adj);
    }
    let delta = ALLOC.snapshot().since(&before);
    assert_eq!(
        delta.allocs, 0,
        "type-3 registry cache-hit applies allocated {} times ({} bytes)",
        delta.allocs, delta.bytes
    );
    assert_eq!(delta.deallocs, 0, "type-3 registry cache-hit applies freed memory");
    let stats = registry.stats();
    assert_eq!(stats.misses, 2, "one type-1/2 build plus one type-3 build");
    assert_eq!(stats.hits, 8, "all warm checkouts of both kinds hit");
}
