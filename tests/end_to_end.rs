//! Cross-crate integration: trajectory generators → NUFFT plan → accuracy
//! against the exact DTFT oracle, plus baseline agreement.

use nufft::baselines::direct;
use nufft::baselines::sequential::SequentialNufft;
use nufft::core::{NufftConfig, NufftPlan, SortMode};
use nufft::math::error::{rel_l2_c32, rel_l2_mixed};
use nufft::math::Complex32;
use nufft::traj::{dataset, generators, DatasetKind, DatasetParams, TABLE1};

fn tiny_params() -> DatasetParams {
    DatasetParams { n: 16, k: 32, s: 24, sr: (32.0 * 24.0) / (16.0f64.powi(3)) }
}

fn demo_image(len: usize) -> Vec<Complex32> {
    (0..len).map(|i| Complex32::new((i as f32 * 0.11).sin(), (i as f32 * 0.07).cos())).collect()
}

#[test]
fn every_dataset_kind_matches_the_direct_dtft() {
    let p = tiny_params();
    let image = demo_image(p.n.pow(3));
    for kind in DatasetKind::ALL {
        let traj = dataset::generate(kind, &p, 5);
        let cfg = NufftConfig { threads: 2, w: 4.0, ..NufftConfig::default() };
        let mut plan = NufftPlan::new([p.n; 3], &traj.points, cfg);
        let mut got = vec![Complex32::ZERO; traj.len()];
        plan.forward(&image, &mut got);
        let want = direct::forward(&image, [p.n; 3], &traj.points);
        let err = rel_l2_mixed(&got, &want);
        assert!(err < 5e-4, "{kind:?}: forward error {err}");
    }
}

#[test]
fn adjoint_matches_direct_adjoint() {
    let p = tiny_params();
    let traj = dataset::generate(DatasetKind::Radial, &p, 9);
    let samples: Vec<Complex32> =
        (0..traj.len()).map(|i| Complex32::new(1.0 / (1.0 + i as f32), 0.2)).collect();
    let cfg = NufftConfig { threads: 2, w: 4.0, ..NufftConfig::default() };
    let mut plan = NufftPlan::new([p.n; 3], &traj.points, cfg);
    let mut got = vec![Complex32::ZERO; p.n.pow(3)];
    plan.adjoint(&samples, &mut got);
    let want = direct::adjoint(&samples, [p.n; 3], &traj.points);
    let err = rel_l2_mixed(&got, &want);
    assert!(err < 5e-4, "adjoint error {err}");
}

#[test]
fn optimized_and_sequential_agree_on_real_datasets() {
    let p = tiny_params();
    for kind in DatasetKind::ALL {
        let traj = dataset::generate(kind, &p, 3);
        let image = demo_image(p.n.pow(3));
        let samples: Vec<Complex32> =
            (0..traj.len()).map(|i| Complex32::new(0.5, (i as f32 * 0.13).sin())).collect();

        let mut seq = SequentialNufft::new([p.n; 3], &traj.points, 2.0, 3.0);
        let mut core_plan = NufftPlan::new(
            [p.n; 3],
            &traj.points,
            NufftConfig { threads: 3, w: 3.0, ..NufftConfig::default() },
        );

        let mut f_seq = vec![Complex32::ZERO; traj.len()];
        let mut f_core = vec![Complex32::ZERO; traj.len()];
        seq.forward(&image, &mut f_seq);
        core_plan.forward(&image, &mut f_core);
        assert!(rel_l2_c32(&f_core, &f_seq) < 1e-5, "{kind:?} forward mismatch");

        let mut a_seq = vec![Complex32::ZERO; p.n.pow(3)];
        let mut a_core = vec![Complex32::ZERO; p.n.pow(3)];
        seq.adjoint(&samples, &mut a_seq);
        core_plan.adjoint(&samples, &mut a_core);
        assert!(rel_l2_c32(&a_core, &a_seq) < 1e-5, "{kind:?} adjoint mismatch");
    }
}

#[test]
fn spectral_wraparound_samples_are_handled() {
    // Samples hugging the band edge wrap their convolution windows through
    // the grid boundary; the cyclic task graph must still produce the same
    // numbers as the sequential reference.
    let n = 16usize;
    let edge_traj: Vec<[f64; 3]> = (0..100)
        .map(|i| {
            let t = i as f64 / 100.0;
            [
                -0.5 + 0.004 * t,  // left edge
                0.499 - 0.004 * t, // right edge
                (t - 0.5) * 0.99,  // sweep
            ]
        })
        .collect();
    let samples: Vec<Complex32> = (0..100).map(|i| Complex32::new(1.0, i as f32 * 0.01)).collect();
    let mut seq = SequentialNufft::new([n; 3], &edge_traj, 2.0, 4.0);
    let mut plan = NufftPlan::new(
        [n; 3],
        &edge_traj,
        NufftConfig { threads: 4, w: 4.0, ..NufftConfig::default() },
    );
    let mut a = vec![Complex32::ZERO; n * n * n];
    let mut b = vec![Complex32::ZERO; n * n * n];
    seq.adjoint(&samples, &mut a);
    plan.adjoint(&samples, &mut b);
    assert!(rel_l2_c32(&b, &a) < 1e-5, "edge wrap mismatch");
}

#[test]
fn interleave_structure_survives_the_pipeline() {
    // S×K layout: generators emit interleave-major, plan results must be in
    // the caller's original order regardless of internal reordering.
    let t1 = generators::radial(16, 8, 2);
    assert_eq!(t1.len(), 128);
    let cfg =
        NufftConfig { threads: 2, w: 2.0, sort: SortMode::TileMajor, ..NufftConfig::default() };
    let mut plan = NufftPlan::new([12; 3], &t1.points, cfg);
    let image = demo_image(12usize.pow(3));
    let mut out_a = vec![Complex32::ZERO; 128];
    plan.forward(&image, &mut out_a);
    // Same trajectory, bin sort disabled: identical per-sample results.
    let cfg = NufftConfig { threads: 1, w: 2.0, sort: SortMode::None, ..NufftConfig::default() };
    let mut plan2 = NufftPlan::new([12; 3], &t1.points, cfg);
    let mut out_b = vec![Complex32::ZERO; 128];
    plan2.forward(&image, &mut out_b);
    for (i, (a, b)) in out_a.iter().zip(&out_b).enumerate() {
        assert!(
            (a.re - b.re).abs() < 1e-4 && (a.im - b.im).abs() < 1e-4,
            "sample {i} moved: {a:?} vs {b:?}"
        );
    }
}

#[test]
fn table1_rows_round_trip_through_generation() {
    // Scaled-down Table I rows generate, preprocess and transform cleanly.
    let row = TABLE1[0];
    let small = DatasetParams { n: 16, k: 32, s: 8, sr: row.sr };
    let traj = dataset::generate(DatasetKind::Spiral, &small, 1);
    assert_eq!(traj.len(), small.total_samples());
    let mut plan = NufftPlan::new(
        [small.n; 3],
        &traj.points,
        NufftConfig { threads: 1, w: 2.0, ..NufftConfig::default() },
    );
    assert_eq!(plan.num_samples(), traj.len());
    let samples = vec![Complex32::ONE; traj.len()];
    let mut out = vec![Complex32::ZERO; small.n.pow(3)];
    plan.adjoint(&samples, &mut out);
    // Mass lands somewhere: the image cannot be all zeros.
    assert!(out.iter().any(|z| z.abs() > 1e-3));
}
