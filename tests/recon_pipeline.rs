//! Full reconstruction pipeline: phantom → trajectory → simulated
//! acquisition → iterative reconstruction, across the workspace crates.

use nufft::core::{NufftConfig, NufftPlan};
use nufft::fft::{shift, FftNd};
use nufft::math::error::rel_l2_c32;
use nufft::math::Complex32;
use nufft::mri::coils::{sos_combine, synthetic_coils};
use nufft::mri::dcf::{pipe_menon, radial_dcf};
use nufft::mri::phantom::phantom_3d;
use nufft::mri::recon::{gridding_recon, IterativeRecon};
use nufft::traj::generators::radial;

/// Projects an image onto the spectral ball `|ν| ≤ 1/2` — the best any
/// reconstruction from *radial* data can do, since radial spokes never
/// sample the corner frequencies of the cube band.
fn ball_limit(img: &[Complex32], n: usize) -> Vec<Complex32> {
    let plan = FftNd::new(&[n, n, n]);
    let mut f = img.to_vec();
    plan.forward(&mut f);
    shift::fftshift(&mut f, &[n, n, n]);
    let c = n as f64 / 2.0;
    for ix in 0..n {
        for iy in 0..n {
            for iz in 0..n {
                let r =
                    ((ix as f64 - c).powi(2) + (iy as f64 - c).powi(2) + (iz as f64 - c).powi(2))
                        .sqrt();
                if r > c {
                    f[(ix * n + iy) * n + iz] = Complex32::ZERO;
                }
            }
        }
    }
    shift::ifftshift(&mut f, &[n, n, n]);
    plan.inverse(&mut f);
    f
}

#[test]
fn three_d_radial_cg_recon_reaches_the_ball_limited_optimum() {
    let n = 16usize;
    let truth = phantom_3d(n);
    // Radial at ~1.5x angular Nyquist for a small volume.
    let traj = radial(2 * n, n * n, 3);
    let cfg = NufftConfig { threads: 2, w: 3.0, ..NufftConfig::default() };
    let mut plan = NufftPlan::new([n; 3], &traj.points, cfg);

    let mut y = vec![Complex32::ZERO; traj.len()];
    plan.forward(&truth, &mut y);

    let dcf = radial_dcf(&traj.points);
    let grid_img = gridding_recon(&mut plan, &y, &dcf);
    // The achievable target: the truth restricted to the sampled ball.
    let target = ball_limit(&truth, n);
    let e_grid = rel_l2_c32(&grid_img, &target);

    let mut it = IterativeRecon::new(&mut plan, vec![], dcf, 1e-5);
    let rep = it.reconstruct(&[y], 20, 1e-9);
    let e_iter = rel_l2_c32(&rep.image, &target);

    assert!(e_iter < e_grid, "iterative ({e_iter}) must beat gridding ({e_grid})");
    // Within the sampled subspace the solve should be accurate; the ball
    // projection is an idealization (kernel roll-off blurs the boundary
    // shell), so the bound is loose.
    assert!(e_iter < 0.35, "3D radial CG error vs ball-limited target: {e_iter}");
    // And against the raw truth, the error must sit at (not above) the
    // null-space floor.
    let floor = rel_l2_c32(&target, &truth);
    let e_raw = rel_l2_c32(&rep.image, &truth);
    assert!(e_raw < floor * 1.15, "recon error {e_raw} should approach the sampling floor {floor}");
    assert!(rep.cg.iterations > 1);
}

#[test]
fn multicoil_3d_recon_and_sos() {
    let n = 12usize;
    let truth = phantom_3d(n);
    let traj = radial(2 * n, n * n, 7);
    let cfg = NufftConfig { threads: 2, w: 2.0, ..NufftConfig::default() };
    let mut plan = NufftPlan::new([n; 3], &traj.points, cfg);
    let coils = synthetic_coils::<3>(n, 4);

    let mut data = Vec::new();
    let mut coil_imgs = Vec::new();
    for coil in &coils {
        let weighted: Vec<Complex32> = truth.iter().zip(coil).map(|(&x, &s)| x * s).collect();
        coil_imgs.push(weighted.clone());
        let mut y = vec![Complex32::ZERO; traj.len()];
        plan.forward(&weighted, &mut y);
        data.push(y);
    }
    // SoS of the per-coil truths reproduces |truth| (maps are normalized).
    let sos = sos_combine(&coil_imgs);
    for (s, t) in sos.iter().zip(&truth) {
        assert!((s - t.abs()).abs() < 1e-4);
    }

    let dcf = radial_dcf(&traj.points);
    let mut it = IterativeRecon::new(&mut plan, coils, dcf, 1e-4);
    let rep = it.reconstruct(&data, 12, 1e-9);
    // Radial data cannot recover the spectral corners: compare against the
    // ball-limited truth.
    let target = ball_limit(&truth, n);
    let e = rel_l2_c32(&rep.image, &target);
    assert!(e < 0.35, "multicoil recon error vs ball-limited target: {e}");
    // Against the raw truth the error must approach the sampling floor.
    let floor = rel_l2_c32(&target, &truth);
    let e_raw = rel_l2_c32(&rep.image, &truth);
    assert!(e_raw < floor * 1.2, "raw error {e_raw} vs floor {floor}");
}

#[test]
fn pipe_menon_weights_improve_gridding() {
    let n = 16usize;
    let truth = phantom_3d(n);
    let traj = radial(2 * n, n * n, 5);
    let cfg = NufftConfig { threads: 1, w: 3.0, ..NufftConfig::default() };
    let mut plan = NufftPlan::new([n; 3], &traj.points, cfg);
    let mut y = vec![Complex32::ZERO; traj.len()];
    plan.forward(&truth, &mut y);

    let uniform = vec![1.0f32; traj.len()];
    let e_unweighted = rel_l2_c32(&gridding_recon(&mut plan, &y, &uniform), &truth);
    let w = pipe_menon(&mut plan, 8);
    // Normalize the gridding gain to compare fairly: scale output to best
    // match the truth (gridding has an arbitrary global factor per DCF).
    let img = gridding_recon(&mut plan, &y, &w);
    let num: f64 = img.iter().zip(&truth).map(|(&a, &b)| (a.to_f64().conj() * b.to_f64()).re).sum();
    let den: f64 = img.iter().map(|z| z.to_f64().norm_sqr()).sum();
    let alpha = (num / den.max(1e-30)) as f32;
    let scaled: Vec<Complex32> = img.iter().map(|&z| z.scale(alpha)).collect();
    let e_pm = rel_l2_c32(&scaled, &truth);
    assert!(
        e_pm < e_unweighted,
        "Pipe–Menon ({e_pm}) should beat unweighted gridding ({e_unweighted})"
    );
}
