//! The executor and the discrete-event simulator must implement the same
//! scheduling semantics: same (task, phase) multiset, same dependency and
//! exclusion guarantees. This is what makes simulated core-scaling results
//! transferable statements about the real runtime.

use nufft::parallel::exec::{Executor, TaskPhase};
use nufft::parallel::graph::{QueuePolicy, TaskGraph};
use nufft::sim::{simulate, LinearCost};
use std::sync::atomic::{AtomicU32, Ordering};

fn weighted_graph(dims: &[usize], privatize_center: bool) -> TaskGraph {
    let mut g = TaskGraph::new_cyclic(dims, &vec![true; dims.len()]);
    for t in 0..g.len() {
        let idx = g.unflatten(t);
        let d: usize = idx.iter().zip(dims).map(|(&i, &n)| i.abs_diff(n / 2)).sum();
        g.set_weight(t, 1000 / (d as u64 + 1));
        if privatize_center && d == 0 {
            g.set_privatized(t, true);
        }
    }
    g
}

#[test]
fn executor_and_simulator_run_the_same_phase_multiset() {
    for privatize in [false, true] {
        let g = weighted_graph(&[4, 4], privatize);
        // Count (task, phase) units executed by the real executor.
        let counts: Vec<[AtomicU32; 3]> = (0..g.len()).map(|_| Default::default()).collect();
        Executor::new(3).run_graph(&g, QueuePolicy::Priority, |t, phase, _w| {
            let slot = match phase {
                TaskPhase::Normal => 0,
                TaskPhase::PrivateConvolve => 1,
                TaskPhase::Reduce => 2,
            };
            counts[t][slot].fetch_add(1, Ordering::SeqCst);
        });
        // Simulator timeline for the same graph.
        let sim = simulate(&g, QueuePolicy::Priority, 3, &LinearCost::per_sample(0.01));
        let mut sim_counts = vec![[0u32; 3]; g.len()];
        for r in &sim.timeline {
            let slot = match r.phase {
                TaskPhase::Normal => 0,
                TaskPhase::PrivateConvolve => 1,
                TaskPhase::Reduce => 2,
            };
            sim_counts[r.task][slot] += 1;
        }
        for t in 0..g.len() {
            let exec_c: Vec<u32> = (0..3).map(|s| counts[t][s].load(Ordering::SeqCst)).collect();
            assert_eq!(
                exec_c, sim_counts[t],
                "task {t} phase multiset differs (privatize={privatize})"
            );
            if g.privatized(t) {
                assert_eq!(exec_c, vec![0, 1, 1]);
            } else {
                assert_eq!(exec_c, vec![1, 0, 0]);
            }
        }
    }
}

#[test]
fn simulated_speedup_is_monotone_and_bounded() {
    let g = weighted_graph(&[8, 8], true);
    let model =
        LinearCost { per_task: 0.5, per_sample: 0.01, reduce_per_sample: 0.001, queue_cost: 0.02 };
    let base = simulate(&g, QueuePolicy::Priority, 1, &model).makespan;
    let mut prev = 0.0;
    for p in [1usize, 2, 4, 8, 16, 32] {
        let s = base / simulate(&g, QueuePolicy::Priority, p, &model).makespan;
        assert!(s <= p as f64 + 1e-9, "superlinear at {p}: {s}");
        assert!(s + 1e-9 >= prev, "speedup regressed at {p}: {s} < {prev}");
        prev = s;
    }
}

#[test]
fn priority_queue_never_loses_to_fifo_at_scale() {
    // On a center-heavy graph (the radial signature), PQ ≥ FIFO at high
    // worker counts — the Figure 12 B-vs-C property as a hard invariant of
    // our scheduler pair.
    let g = weighted_graph(&[10, 10], false);
    let model =
        LinearCost { per_task: 0.2, per_sample: 0.01, reduce_per_sample: 0.001, queue_cost: 0.01 };
    for p in [16usize, 32] {
        let fifo = simulate(&g, QueuePolicy::Fifo, p, &model).makespan;
        let prio = simulate(&g, QueuePolicy::Priority, p, &model).makespan;
        assert!(prio <= fifo * 1.01, "priority queue lost at {p} workers: {prio} vs {fifo}");
    }
}

#[test]
fn real_executor_respects_privatized_reduce_ordering_under_load() {
    // Stress the two-phase protocol with many privatized tasks and more
    // threads than cores.
    let mut g = TaskGraph::new_cyclic(&[6, 6], &[true, true]);
    for t in 0..g.len() {
        g.set_weight(t, (t as u64 % 7) + 1);
        g.set_privatized(t, t % 3 == 0);
    }
    let conv_done: Vec<AtomicU32> = (0..g.len()).map(|_| AtomicU32::new(0)).collect();
    Executor::new(8).run_graph(&g, QueuePolicy::Priority, |t, phase, _w| match phase {
        TaskPhase::PrivateConvolve => {
            conv_done[t].store(1, Ordering::SeqCst);
        }
        TaskPhase::Reduce => {
            assert_eq!(conv_done[t].load(Ordering::SeqCst), 1, "reduce before convolve");
            for p in g.preds(t) {
                // All predecessors' shared-grid work must be complete; for
                // privatized preds that means their reduce ran (flag 2).
                if g.privatized(p) {
                    assert_eq!(conv_done[p].load(Ordering::SeqCst), 2, "pred {p} not reduced");
                }
            }
            conv_done[t].store(2, Ordering::SeqCst);
        }
        TaskPhase::Normal => {
            for p in g.preds(t) {
                if g.privatized(p) {
                    assert_eq!(conv_done[p].load(Ordering::SeqCst), 2, "pred {p} not reduced");
                }
            }
        }
    });
}

// ---------------------------------------------------------------------------
// Fused (single-DAG) vs phased (join-per-phase) execution.
//
// The fused path must be a pure *scheduling* change: every operator output
// is required to be bitwise-identical to the phased pipeline at every ISA
// level, thread count, and executor backend. The per-element arithmetic is
// schedule-independent by construction (the Gray-code exclusion edges fix
// the adjoint summation order, and every other node writes disjoint
// elements); these tests are the tripwire that keeps it that way.
// ---------------------------------------------------------------------------

use nufft::core::{fused, ExecMode, NufftConfig, NufftPlan};
use nufft::math::Complex32;
use nufft::parallel::exec::ExecBackend;
use nufft::sim::{simulate_dag, simulate_dag_phased, DagLinearCost};
use nufft::simd::{detect_isa, set_isa_override, IsaLevel};
use std::sync::Mutex;

/// Serializes the ISA-override tests: the override is process-global.
static ISA_LOCK: Mutex<()> = Mutex::new(());

fn traj2(count: usize) -> Vec<[f64; 2]> {
    (0..count)
        .map(|i| [((i as f64 * 0.618) % 1.0) - 0.5, ((i as f64 * 0.414) % 1.0) - 0.5])
        .collect()
}

fn signal(n: usize, phase: f32) -> Vec<Complex32> {
    (0..n)
        .map(|i| Complex32::new((i as f32 * 0.13 + phase).sin(), (i as f32 * 0.07).cos()))
        .collect()
}

fn assert_bits_eq(a: &[Complex32], b: &[Complex32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (p, q)) in a.iter().zip(b).enumerate() {
        assert!(
            p.re.to_bits() == q.re.to_bits() && p.im.to_bits() == q.im.to_bits(),
            "{what}: element {i} differs: {p:?} vs {q:?}"
        );
    }
}

fn plan_cfg(threads: usize, backend: ExecBackend, mode: ExecMode) -> NufftConfig {
    NufftConfig {
        threads,
        w: 3.0,
        // Pin the decomposition so only the schedule varies.
        partitions_per_dim: Some(4),
        backend,
        exec_mode: mode,
        ..NufftConfig::default()
    }
}

/// Runs all four operators under both exec modes on identical inputs and
/// asserts exact bit equality of every output buffer.
fn check_fused_matches_phased(threads: usize, backend: ExecBackend, label: &str) {
    let n = [16usize, 16];
    let traj = traj2(350);
    let img_len = 256;
    let k = traj.len();
    let channels = 2usize;

    let mut fus = NufftPlan::new(n, &traj, plan_cfg(threads, backend, ExecMode::Fused));
    let mut pha = NufftPlan::new(n, &traj, plan_cfg(threads, backend, ExecMode::Phased));
    assert_eq!(fus.exec_mode(), ExecMode::Fused, "{label}");
    assert_eq!(pha.exec_mode(), ExecMode::Phased, "{label}");

    let image = signal(img_len, 0.0);
    let samples = signal(k, 1.3);

    // forward
    let mut out_f = vec![Complex32::ZERO; k];
    let mut out_p = vec![Complex32::ZERO; k];
    fus.forward(&image, &mut out_f);
    pha.forward(&image, &mut out_p);
    assert_bits_eq(&out_f, &out_p, &format!("{label}: forward"));

    // adjoint
    let mut img_f = vec![Complex32::ZERO; img_len];
    let mut img_p = vec![Complex32::ZERO; img_len];
    fus.adjoint(&samples, &mut img_f);
    pha.adjoint(&samples, &mut img_p);
    assert_bits_eq(&img_f, &img_p, &format!("{label}: adjoint"));

    // forward_batch
    let images: Vec<Vec<Complex32>> = (0..channels).map(|c| signal(img_len, c as f32)).collect();
    let image_refs: Vec<&[Complex32]> = images.iter().map(|v| v.as_slice()).collect();
    let mut bout_f = vec![vec![Complex32::ZERO; k]; channels];
    let mut bout_p = vec![vec![Complex32::ZERO; k]; channels];
    {
        let mut refs: Vec<&mut [Complex32]> = bout_f.iter_mut().map(|v| v.as_mut_slice()).collect();
        fus.forward_batch(&image_refs, &mut refs);
    }
    {
        let mut refs: Vec<&mut [Complex32]> = bout_p.iter_mut().map(|v| v.as_mut_slice()).collect();
        pha.forward_batch(&image_refs, &mut refs);
    }
    for c in 0..channels {
        assert_bits_eq(&bout_f[c], &bout_p[c], &format!("{label}: forward_batch ch{c}"));
    }

    // adjoint_batch
    let datas: Vec<Vec<Complex32>> = (0..channels).map(|c| signal(k, 2.0 + c as f32)).collect();
    let data_refs: Vec<&[Complex32]> = datas.iter().map(|v| v.as_slice()).collect();
    let mut bimg_f = vec![vec![Complex32::ZERO; img_len]; channels];
    let mut bimg_p = vec![vec![Complex32::ZERO; img_len]; channels];
    {
        let mut refs: Vec<&mut [Complex32]> = bimg_f.iter_mut().map(|v| v.as_mut_slice()).collect();
        fus.adjoint_batch(&data_refs, &mut refs);
    }
    {
        let mut refs: Vec<&mut [Complex32]> = bimg_p.iter_mut().map(|v| v.as_mut_slice()).collect();
        pha.adjoint_batch(&data_refs, &mut refs);
    }
    for c in 0..channels {
        assert_bits_eq(&bimg_f[c], &bimg_p[c], &format!("{label}: adjoint_batch ch{c}"));
    }
}

#[test]
fn fused_matches_phased_bitwise_across_backend_isa_and_threads() {
    let _guard = ISA_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let detected = detect_isa();
    for backend in [ExecBackend::Persistent, ExecBackend::SpawnPerCall] {
        for isa in [IsaLevel::StrictScalar, IsaLevel::Scalar, IsaLevel::Sse2, IsaLevel::Avx2Fma] {
            if isa > detected {
                continue;
            }
            set_isa_override(isa).unwrap();
            for threads in [1usize, 2, 4] {
                check_fused_matches_phased(
                    threads,
                    backend,
                    &format!("backend={backend:?} isa={isa:?} threads={threads}"),
                );
            }
        }
    }
    set_isa_override(detected).unwrap();
}

#[test]
fn exec_mode_switch_on_one_plan_stays_bitwise() {
    let _guard = ISA_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let n = [16usize, 16];
    let traj = traj2(300);
    let mut plan = NufftPlan::new(n, &traj, plan_cfg(2, ExecBackend::Persistent, ExecMode::Fused));
    let samples = signal(traj.len(), 0.7);

    let mut img_fused = vec![Complex32::ZERO; 256];
    plan.adjoint(&samples, &mut img_fused);

    plan.set_exec_mode(ExecMode::Phased);
    assert_eq!(plan.exec_mode(), ExecMode::Phased);
    let mut img_phased = vec![Complex32::ZERO; 256];
    plan.adjoint(&samples, &mut img_phased);
    assert_bits_eq(&img_fused, &img_phased, "adjoint after switching to phased");

    plan.set_exec_mode(ExecMode::Fused);
    let mut img_back = vec![Complex32::ZERO; 256];
    plan.adjoint(&samples, &mut img_back);
    assert_bits_eq(&img_fused, &img_back, "adjoint after switching back to fused");
}

/// Center-heavy radial trajectory: most samples land near the origin, so
/// the central partition cells carry far more convolution work than the
/// periphery — the skewed-density regime the paper's scheduler targets.
fn clustered_traj2(count: usize) -> Vec<[f64; 2]> {
    (0..count)
        .map(|i| {
            let r = 0.5 * (i as f64 / count as f64).powi(3);
            let th = i as f64 * 2.399963;
            [r * th.cos(), r * th.sin()]
        })
        .collect()
}

#[test]
fn fused_dag_simulated_speedup_dominates_phased_on_real_plans() {
    // Replay the plan's own fused graphs through the discrete-event
    // simulator, comparing the barrier-free schedule against the same node
    // set executed as a join-per-phase pipeline (sum of per-phase
    // makespans).
    //
    // Fusion pays exactly where a phase straggles while later-phase work
    // is already runnable. The clustered trajectory skews the convolution
    // cells, so at P=4 the phased adjoint idles every worker behind the
    // heavy center cells at the conv→FFT join while the fused DAG runs FFT
    // chunks whose inputs are settled (~1.13× here); the forward's
    // quantization waste (chunks per phase not divisible by P) shows the
    // same effect at P=8 (~1.29×). At the remaining P the phases either
    // balance perfectly or both schedules sit on the same critical path —
    // there fused must simply stay within a few percent (greedy cross-
    // phase scheduling admits small ordering anomalies; the executor-side
    // guarantee of bitwise identity is exercised above, this test is about
    // virtual time).
    let _guard = ISA_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let n = [16usize, 16];
    let traj = clustered_traj2(2000);
    let mut plan = NufftPlan::new(n, &traj, plan_cfg(2, ExecBackend::Persistent, ExecMode::Fused));
    let model = DagLinearCost::per_unit(0.001);
    for adjoint in [false, true] {
        let dag = plan.fused_dag(adjoint, 1);
        let phases: Vec<usize> =
            (0..dag.len()).map(|v| fused::node_phase(dag.tag(v as u32), adjoint, 2)).collect();
        for p in [4usize, 8, 16] {
            let fus = simulate_dag(dag, QueuePolicy::Priority, p, &model).makespan;
            let pha = simulate_dag_phased(dag, &phases, QueuePolicy::Priority, p, &model);
            assert!(
                fus <= pha * 1.05,
                "adjoint={adjoint} P={p}: fused {fus:.3} far behind phased {pha:.3}"
            );
            if (adjoint && p == 4) || (!adjoint && p == 8) {
                assert!(
                    fus * 1.05 < pha,
                    "adjoint={adjoint} P={p}: fused {fus:.3} should clearly beat phased {pha:.3}"
                );
            }
        }
    }
}
