//! The executor and the discrete-event simulator must implement the same
//! scheduling semantics: same (task, phase) multiset, same dependency and
//! exclusion guarantees. This is what makes simulated core-scaling results
//! transferable statements about the real runtime.

use nufft::parallel::exec::{Executor, TaskPhase};
use nufft::parallel::graph::{QueuePolicy, TaskGraph};
use nufft::sim::{simulate, LinearCost};
use std::sync::atomic::{AtomicU32, Ordering};

fn weighted_graph(dims: &[usize], privatize_center: bool) -> TaskGraph {
    let mut g = TaskGraph::new_cyclic(dims, &vec![true; dims.len()]);
    for t in 0..g.len() {
        let idx = g.unflatten(t);
        let d: usize = idx.iter().zip(dims).map(|(&i, &n)| i.abs_diff(n / 2)).sum();
        g.set_weight(t, 1000 / (d as u64 + 1));
        if privatize_center && d == 0 {
            g.set_privatized(t, true);
        }
    }
    g
}

#[test]
fn executor_and_simulator_run_the_same_phase_multiset() {
    for privatize in [false, true] {
        let g = weighted_graph(&[4, 4], privatize);
        // Count (task, phase) units executed by the real executor.
        let counts: Vec<[AtomicU32; 3]> = (0..g.len()).map(|_| Default::default()).collect();
        Executor::new(3).run_graph(&g, QueuePolicy::Priority, |t, phase, _w| {
            let slot = match phase {
                TaskPhase::Normal => 0,
                TaskPhase::PrivateConvolve => 1,
                TaskPhase::Reduce => 2,
            };
            counts[t][slot].fetch_add(1, Ordering::SeqCst);
        });
        // Simulator timeline for the same graph.
        let sim = simulate(&g, QueuePolicy::Priority, 3, &LinearCost::per_sample(0.01));
        let mut sim_counts = vec![[0u32; 3]; g.len()];
        for r in &sim.timeline {
            let slot = match r.phase {
                TaskPhase::Normal => 0,
                TaskPhase::PrivateConvolve => 1,
                TaskPhase::Reduce => 2,
            };
            sim_counts[r.task][slot] += 1;
        }
        for t in 0..g.len() {
            let exec_c: Vec<u32> = (0..3).map(|s| counts[t][s].load(Ordering::SeqCst)).collect();
            assert_eq!(
                exec_c, sim_counts[t],
                "task {t} phase multiset differs (privatize={privatize})"
            );
            if g.privatized(t) {
                assert_eq!(exec_c, vec![0, 1, 1]);
            } else {
                assert_eq!(exec_c, vec![1, 0, 0]);
            }
        }
    }
}

#[test]
fn simulated_speedup_is_monotone_and_bounded() {
    let g = weighted_graph(&[8, 8], true);
    let model =
        LinearCost { per_task: 0.5, per_sample: 0.01, reduce_per_sample: 0.001, queue_cost: 0.02 };
    let base = simulate(&g, QueuePolicy::Priority, 1, &model).makespan;
    let mut prev = 0.0;
    for p in [1usize, 2, 4, 8, 16, 32] {
        let s = base / simulate(&g, QueuePolicy::Priority, p, &model).makespan;
        assert!(s <= p as f64 + 1e-9, "superlinear at {p}: {s}");
        assert!(s + 1e-9 >= prev, "speedup regressed at {p}: {s} < {prev}");
        prev = s;
    }
}

#[test]
fn priority_queue_never_loses_to_fifo_at_scale() {
    // On a center-heavy graph (the radial signature), PQ ≥ FIFO at high
    // worker counts — the Figure 12 B-vs-C property as a hard invariant of
    // our scheduler pair.
    let g = weighted_graph(&[10, 10], false);
    let model =
        LinearCost { per_task: 0.2, per_sample: 0.01, reduce_per_sample: 0.001, queue_cost: 0.01 };
    for p in [16usize, 32] {
        let fifo = simulate(&g, QueuePolicy::Fifo, p, &model).makespan;
        let prio = simulate(&g, QueuePolicy::Priority, p, &model).makespan;
        assert!(prio <= fifo * 1.01, "priority queue lost at {p} workers: {prio} vs {fifo}");
    }
}

#[test]
fn real_executor_respects_privatized_reduce_ordering_under_load() {
    // Stress the two-phase protocol with many privatized tasks and more
    // threads than cores.
    let mut g = TaskGraph::new_cyclic(&[6, 6], &[true, true]);
    for t in 0..g.len() {
        g.set_weight(t, (t as u64 % 7) + 1);
        g.set_privatized(t, t % 3 == 0);
    }
    let conv_done: Vec<AtomicU32> = (0..g.len()).map(|_| AtomicU32::new(0)).collect();
    Executor::new(8).run_graph(&g, QueuePolicy::Priority, |t, phase, _w| match phase {
        TaskPhase::PrivateConvolve => {
            conv_done[t].store(1, Ordering::SeqCst);
        }
        TaskPhase::Reduce => {
            assert_eq!(conv_done[t].load(Ordering::SeqCst), 1, "reduce before convolve");
            for p in g.preds(t) {
                // All predecessors' shared-grid work must be complete; for
                // privatized preds that means their reduce ran (flag 2).
                if g.privatized(p) {
                    assert_eq!(conv_done[p].load(Ordering::SeqCst), 2, "pred {p} not reduced");
                }
            }
            conv_done[t].store(2, Ordering::SeqCst);
        }
        TaskPhase::Normal => {
            for p in g.preds(t) {
                if g.privatized(p) {
                    assert_eq!(conv_done[p].load(Ordering::SeqCst), 2, "pred {p} not reduced");
                }
            }
        }
    });
}
