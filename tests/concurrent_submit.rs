//! Concurrent submission must not change a single bit of any result.
//!
//! The multi-tenant pool interleaves DAGs from many plans on shared
//! workers, but each plan's output is schedule-independent by construction
//! (the Gray-code exclusion edges fix every accumulation order), and
//! tenants share no mutable state (per-job pending counters, scratch and
//! output buffers). So an apply submitted concurrently with arbitrary
//! other applies — against the same registry key or a different one —
//! must be **bitwise-identical** to the same apply run alone. This file
//! pins that across the ISA × worker-count matrix.

use nufft::core::{
    ApplyOp, ApplyRequest, JobPriority, NufftConfig, NufftPlan, NufftService, PlanRegistry,
    WindowMode,
};
use nufft::math::Complex32;
use nufft::simd::{detect_isa, set_isa_override, IsaLevel};
use std::sync::{Arc, Mutex};

/// The ISA override is process-global; serialize every test that compares
/// applies bitwise.
static ISA_LOCK: Mutex<()> = Mutex::new(());

fn isa_guard() -> std::sync::MutexGuard<'static, ()> {
    ISA_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn traj2(count: usize, salt: f64) -> Vec<[f64; 2]> {
    (0..count)
        .map(|i| {
            [((i as f64 * 0.618 + salt) % 1.0) - 0.5, ((i as f64 * 0.414 + 2.0 * salt) % 1.0) - 0.5]
        })
        .collect()
}

fn signal(n: usize, phase: f32) -> Vec<Complex32> {
    (0..n)
        .map(|i| Complex32::new((i as f32 * 0.13 + phase).sin(), (i as f32 * 0.07).cos()))
        .collect()
}

fn assert_bits_eq(a: &[Complex32], b: &[Complex32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (p, q)) in a.iter().zip(b).enumerate() {
        assert!(
            p.re.to_bits() == q.re.to_bits() && p.im.to_bits() == q.im.to_bits(),
            "{what}: element {i} differs: {p:?} vs {q:?}"
        );
    }
}

fn cfg(threads: usize) -> NufftConfig {
    NufftConfig {
        threads,
        w: 3.0,
        // Pin the task decomposition so only scheduling varies.
        partitions_per_dim: Some(4),
        window_mode: WindowMode::Precomputed,
        ..NufftConfig::default()
    }
}

/// One (trajectory, inputs, expected outputs) workload.
struct Workload {
    traj: Vec<[f64; 2]>,
    image: Vec<Complex32>,
    samples: Vec<Complex32>,
    want_fwd: Vec<Complex32>,
    want_adj: Vec<Complex32>,
}

const N: [usize; 2] = [16, 16];
const IMG_LEN: usize = 256;

fn workload(count: usize, salt: f64, threads: usize) -> Workload {
    let traj = traj2(count, salt);
    let image = signal(IMG_LEN, salt as f32);
    let samples = signal(count, 1.0 + salt as f32);
    // Solo references on a fresh plan: nothing else runs while these do.
    let mut plan = NufftPlan::new(N, &traj, cfg(threads));
    let mut want_fwd = vec![Complex32::ZERO; count];
    let mut want_adj = vec![Complex32::ZERO; IMG_LEN];
    plan.forward(&image, &mut want_fwd);
    plan.adjoint(&samples, &mut want_adj);
    Workload { traj, image, samples, want_fwd, want_adj }
}

/// N submitter threads fire mixed forward/adjoint applies against shared
/// and distinct registry keys; every result must equal its solo run.
fn check_concurrent_matches_solo(threads: usize, label: &str) {
    // Two distinct keys: submitters 0,2,4 share workload A's plans,
    // 1,3,5 share workload B's.
    let wl = [workload(350, 0.0, threads), workload(280, 0.137, threads)];
    let registry = PlanRegistry::<2>::new(cfg(threads));

    std::thread::scope(|scope| {
        for s in 0..6usize {
            let wl = &wl[s % 2];
            let registry = &registry;
            let label = &label;
            scope.spawn(move || {
                // Each submitter alternates operators across rounds so
                // forwards and adjoints of both keys overlap in time.
                for round in 0..3 {
                    let mut lease = registry.checkout(N, &wl.traj);
                    if (s + round) % 2 == 0 {
                        let mut out = vec![Complex32::ZERO; wl.traj.len()];
                        lease.forward(&wl.image, &mut out);
                        assert_bits_eq(
                            &out,
                            &wl.want_fwd,
                            &format!("{label}: submitter {s} round {round} forward"),
                        );
                    } else {
                        let mut out = vec![Complex32::ZERO; IMG_LEN];
                        lease.adjoint(&wl.samples, &mut out);
                        assert_bits_eq(
                            &out,
                            &wl.want_adj,
                            &format!("{label}: submitter {s} round {round} adjoint"),
                        );
                    }
                }
            });
        }
    });

    // Both keys were exercised; instances were pooled and reused.
    let stats = registry.stats();
    assert_eq!(stats.keys, 2, "{label}: expected two registry keys");
    assert!(stats.hits + stats.misses >= 18, "{label}: all checkouts counted");
}

#[test]
fn concurrent_applies_are_bitwise_identical_across_isa_and_threads() {
    let _guard = isa_guard();
    let detected = detect_isa();
    for isa in [IsaLevel::StrictScalar, IsaLevel::Scalar, IsaLevel::Sse2, IsaLevel::Avx2Fma] {
        if isa > detected {
            continue;
        }
        set_isa_override(isa).unwrap();
        for threads in [1usize, 2, 4] {
            check_concurrent_matches_solo(threads, &format!("isa={isa:?} threads={threads}"));
        }
    }
    set_isa_override(detected).unwrap();
}

#[test]
fn service_handles_resolve_bitwise_under_mixed_priorities() {
    let _guard = isa_guard();
    let detected = detect_isa();
    set_isa_override(detected).unwrap();

    let threads = 4usize;
    let wl = [workload(320, 0.05, threads), workload(260, 0.21, threads)];
    let trajs: Vec<Arc<Vec<[f64; 2]>>> = wl.iter().map(|w| Arc::new(w.traj.clone())).collect();
    let svc = NufftService::<2>::new(cfg(threads));

    // A Low-priority flood of adjoints plus High-priority forwards, all in
    // flight together; every handle must still resolve to the solo bits.
    let mut handles = Vec::new();
    for round in 0..4usize {
        for (k, w) in wl.iter().enumerate() {
            let (op, input, priority) = if (round + k) % 2 == 0 {
                (ApplyOp::Adjoint, w.samples.clone(), JobPriority::Low)
            } else {
                (ApplyOp::Forward, w.image.clone(), JobPriority::High)
            };
            handles.push((
                k,
                op,
                svc.submit(ApplyRequest { n: N, traj: Arc::clone(&trajs[k]), op, input, priority }),
            ));
        }
    }
    for (k, op, handle) in handles {
        let got = handle.wait();
        match op {
            ApplyOp::Forward => assert_bits_eq(&got, &wl[k].want_fwd, "service forward"),
            ApplyOp::Adjoint => assert_bits_eq(&got, &wl[k].want_adj, "service adjoint"),
        }
    }
}
