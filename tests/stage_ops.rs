//! The stage-graph contract: the public `SpreadOp` / `InterpOp` / `FftOp`
//! / `DeconvOp` operators compose — through their documented buffer
//! contracts alone — into the exact monolithic operators, and the
//! standalone `spread_only` / `interp_only` entry points agree across
//! execution modes.
//!
//! These tests are what lets downstream users build custom pipelines
//! (density estimation, gridding-only recon steps) out of stages without
//! losing the plan paths' determinism guarantees.

use nufft::core::plan::ExecMode;
use nufft::core::{FftOp, InterpOp, NufftConfig, NufftPlan, SpreadOp};
use nufft::fft::Direction;
use nufft::math::{Complex32, Complex64};
use nufft::parallel::exec::Executor;
use nufft_testkit::Rng;

fn assert_bitwise(a: &[Complex32], b: &[Complex32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
            "{what}: element {i} differs: {x:?} vs {y:?}"
        );
    }
}

fn traj2(count: usize) -> Vec<[f64; 2]> {
    (0..count)
        .map(|i| [((i as f64 * 0.618) % 1.0) - 0.5, ((i as f64 * 0.414) % 1.0) - 0.5])
        .collect()
}

fn cfg(threads: usize, mode: ExecMode) -> NufftConfig {
    NufftConfig {
        threads,
        w: 3.0,
        partitions_per_dim: Some(4),
        exec_mode: mode,
        ..NufftConfig::default()
    }
}

/// `spread_only` under the fused spread DAG and the phased scatter driver
/// produce bitwise-identical grids — the spread fragment emitted by
/// `build_spread` is the same graph slice the full adjoint uses.
#[test]
fn spread_only_fused_matches_phased_bitwise() {
    let traj = traj2(400);
    let samples = Rng::seed_from_u64(31).gen_c32_vec(traj.len(), 1.0);
    for threads in [1usize, 2, 4] {
        let mut phased = NufftPlan::new([24, 24], &traj, cfg(threads, ExecMode::Phased));
        let mut fused = NufftPlan::new([24, 24], &traj, cfg(threads, ExecMode::Fused));
        let mut gp = vec![Complex32::ZERO; phased.grid_len()];
        let mut gf = vec![Complex32::ZERO; fused.grid_len()];
        // Two rounds: the first builds the fused spread DAG lazily, the
        // second runs it warm.
        for round in 0..2 {
            phased.spread_only(&samples, &mut gp);
            fused.spread_only(&samples, &mut gf);
            assert_bitwise(&gp, &gf, &format!("spread_only at {threads} threads round {round}"));
        }
    }
}

/// Manually composing the plan's public stages — `spread_only`, then a
/// freshly planned `FftOp` (same shape/strategy), then
/// `DeconvOp::extract` — reproduces `NufftPlan::adjoint` bitwise.
#[test]
fn stages_compose_to_adjoint_bitwise() {
    let traj = traj2(500);
    let samples = Rng::seed_from_u64(47).gen_c32_vec(traj.len(), 1.0);
    let c = cfg(2, ExecMode::Phased);
    let mut plan = NufftPlan::new([20, 20], &traj, c);

    let mut want = vec![Complex32::ZERO; 20 * 20];
    plan.adjoint(&samples, &mut want);

    let geo = *plan.deconv_op().geometry();
    let exec = Executor::new(c.threads);
    let mut fft = FftOp::plan(&geo.m, c.fft_strategy, c.fft_llc_budget, c.threads);
    let mut grid = vec![Complex32::ZERO; plan.grid_len()];
    plan.spread_only(&samples, &mut grid);
    fft.apply(&exec, &mut grid, Direction::Backward);
    let mut got = vec![Complex32::ZERO; 20 * 20];
    plan.deconv_op().extract(&grid, &mut got);

    assert_bitwise(&want, &got, "stage-composed adjoint");
}

/// The forward direction composes the same way: `DeconvOp::embed`, a
/// forward `FftOp`, then `interp_only` equals `NufftPlan::forward`.
#[test]
fn stages_compose_to_forward_bitwise() {
    let traj = traj2(500);
    let image = Rng::seed_from_u64(53).gen_c32_vec(20 * 20, 1.0);
    let c = cfg(2, ExecMode::Phased);
    let mut plan = NufftPlan::new([20, 20], &traj, c);

    let mut want = vec![Complex32::ZERO; traj.len()];
    plan.forward(&image, &mut want);

    let geo = *plan.deconv_op().geometry();
    let exec = Executor::new(c.threads);
    let mut fft = FftOp::plan(&geo.m, c.fft_strategy, c.fft_llc_budget, c.threads);
    let mut grid = vec![Complex32::ZERO; plan.grid_len()];
    plan.deconv_op().embed(&image, &mut grid);
    fft.apply(&exec, &mut grid, Direction::Forward);
    let mut got = vec![Complex32::ZERO; traj.len()];
    plan.interp_only(&grid, &mut got);

    assert_bitwise(&want, &got, "stage-composed forward");
}

/// Standalone `SpreadOp` / `InterpOp` planned directly from grid-unit
/// coordinates (no `NufftPlan`) are exact transposes: the dot test
/// ⟨S·x, g⟩ == ⟨x, Sᵀ·g⟩ holds to f32 round-off, because both sides
/// gather/scatter through the identical per-sample windows.
#[test]
fn standalone_spread_interp_are_transposes() {
    let m = [28usize, 28];
    let coords: Vec<[f32; 2]> = (0..350)
        .map(|i| [((i as f32 * 0.618) % 1.0) * 28.0, ((i as f32 * 0.414) % 1.0) * 28.0])
        .collect();
    let c = NufftConfig { threads: 2, w: 3.0, ..NufftConfig::default() };
    let exec = Executor::new(c.threads);
    let mut spread = SpreadOp::plan(m, coords.clone(), &c, &exec);
    let interp = InterpOp::from_spread(&spread, c.grain);
    assert_eq!(spread.grid_extents(), m);
    assert_eq!(spread.grid_len(), interp.grid_len());

    let x = Rng::seed_from_u64(61).gen_c32_vec(coords.len(), 1.0);
    let g = Rng::seed_from_u64(62).gen_c32_vec(spread.grid_len(), 1.0);

    let mut sx = vec![Complex32::ZERO; spread.grid_len()];
    spread.apply(&exec, nufft::parallel::exec::JobPriority::Normal, &x, &mut sx);
    let mut stg = vec![Complex32::ZERO; coords.len()];
    interp.apply(&exec, &g, &mut stg);

    let lhs: Complex64 = sx.iter().zip(&g).map(|(&a, &b)| a.to_f64().conj() * b.to_f64()).sum();
    let rhs: Complex64 = x.iter().zip(&stg).map(|(&a, &b)| a.to_f64().conj() * b.to_f64()).sum();
    let scale = lhs.abs().max(rhs.abs()).max(1e-9);
    assert!(
        (lhs - rhs).abs() / scale < 1e-4,
        "spread/interp transpose dot test: {lhs:?} vs {rhs:?}"
    );
}

/// `interp_only` agrees with the plan's own interp stage applied by hand,
/// and is a pure gather: the input grid is untouched.
#[test]
fn interp_only_matches_stage_apply() {
    let traj = traj2(300);
    let c = cfg(2, ExecMode::Phased);
    let plan = NufftPlan::new([16, 16], &traj, c);
    let exec = Executor::new(c.threads);
    let grid = Rng::seed_from_u64(71).gen_c32_vec(plan.grid_len(), 1.0);
    let grid_before = grid.clone();

    let mut a = vec![Complex32::ZERO; traj.len()];
    plan.interp_only(&grid, &mut a);
    let mut b = vec![Complex32::ZERO; traj.len()];
    plan.interp_op().apply(&exec, &grid, &mut b);

    assert_bitwise(&a, &b, "interp_only vs InterpOp::apply");
    assert_bitwise(&grid, &grid_before, "interp input grid must be untouched");
}

/// The standalone scatter is bitwise-stable across worker counts once the
/// layout is pinned (partitions fixed, privatization off) — same contract
/// as `tests/determinism.rs` for the in-plan path.
#[test]
fn standalone_spread_is_deterministic_across_threads() {
    let m = [24usize, 24];
    let coords: Vec<[f32; 2]> = (0..320)
        .map(|i| [((i as f32 * 0.377) % 1.0) * 24.0, ((i as f32 * 0.709) % 1.0) * 24.0])
        .collect();
    let x = Rng::seed_from_u64(83).gen_c32_vec(coords.len(), 1.0);
    let mut grids = Vec::new();
    for threads in [1usize, 2, 4] {
        let c = NufftConfig {
            threads,
            w: 3.0,
            partitions_per_dim: Some(4),
            privatization: false,
            ..NufftConfig::default()
        };
        let exec = Executor::new(threads);
        let mut spread = SpreadOp::plan(m, coords.clone(), &c, &exec);
        let mut g = vec![Complex32::ZERO; spread.grid_len()];
        spread.apply(&exec, nufft::parallel::exec::JobPriority::Normal, &x, &mut g);
        grids.push(g);
    }
    assert_bitwise(&grids[0], &grids[1], "standalone spread 2 threads vs 1");
    assert_bitwise(&grids[0], &grids[2], "standalone spread 4 threads vs 1");
}
