//! Four-step vs recursive FFT strategy at the full-operator level.
//!
//! The `nufft-fft` unit tests pin per-transform bit identity; this matrix
//! pins the end-to-end contract the scheduler relies on: a plan forced to
//! `FftStrategy::FourStep` produces **bitwise-identical** output to the
//! recursive plan for all four operators, at every ISA level the host
//! supports, at 1/2/4 threads, in both execution modes (the fused DAG's
//! sub-FFT/transpose shard nodes and the phased two-pass driver are both
//! exercised). Geometries cover a mixed-radix power-of-two-times-three
//! axis (96), a three-prime axis (120), and a Bluestein axis (31 — the
//! four-step plan must fall back to recursive there and still agree).
//!
//! The CI stress step re-runs this binary with `NUFFT_THREADS=16` to
//! oversubscribe the shard scheduling.

use nufft::core::{ExecMode, NufftConfig, NufftPlan, PlanRegistry};
use nufft::fft::{FftStrategy, DEFAULT_LLC_BUDGET};
use nufft::math::Complex32;
use nufft::simd::{detect_isa, set_isa_override, IsaLevel};
use std::sync::Mutex;

/// Serializes tests: the ISA override is process-global.
static ISA_LOCK: Mutex<()> = Mutex::new(());

fn traj2(count: usize) -> Vec<[f64; 2]> {
    (0..count)
        .map(|i| [((i as f64 * 0.618) % 1.0) - 0.5, ((i as f64 * 0.414) % 1.0) - 0.5])
        .collect()
}

fn signal(n: usize, phase: f32) -> Vec<Complex32> {
    (0..n)
        .map(|i| Complex32::new((i as f32 * 0.13 + phase).sin(), (i as f32 * 0.07).cos()))
        .collect()
}

fn assert_bits_eq(a: &[Complex32], b: &[Complex32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (p, q)) in a.iter().zip(b).enumerate() {
        assert!(
            p.re.to_bits() == q.re.to_bits() && p.im.to_bits() == q.im.to_bits(),
            "{what}: element {i} differs: {p:?} vs {q:?}"
        );
    }
}

fn plan_cfg(threads: usize, mode: ExecMode, strategy: FftStrategy, alpha: f64) -> NufftConfig {
    NufftConfig {
        threads,
        w: 3.0,
        alpha,
        partitions_per_dim: Some(4),
        exec_mode: mode,
        fft_strategy: strategy,
        ..NufftConfig::default()
    }
}

/// All four operators, forced four-step vs recursive, bitwise.
fn check_fourstep_matches_recursive(
    n: [usize; 2],
    alpha: f64,
    threads: usize,
    mode: ExecMode,
    label: &str,
) {
    let traj = traj2(350);
    let img_len = n[0] * n[1];
    let k = traj.len();
    let channels = 2usize;

    let mut four = NufftPlan::new(n, &traj, plan_cfg(threads, mode, FftStrategy::FourStep, alpha));
    let mut rec = NufftPlan::new(n, &traj, plan_cfg(threads, mode, FftStrategy::Recursive, alpha));

    let image = signal(img_len, 0.0);
    let samples = signal(k, 1.3);

    // forward
    let mut out_f = vec![Complex32::ZERO; k];
    let mut out_r = vec![Complex32::ZERO; k];
    four.forward(&image, &mut out_f);
    rec.forward(&image, &mut out_r);
    assert_bits_eq(&out_f, &out_r, &format!("{label}: forward"));

    // adjoint
    let mut img_f = vec![Complex32::ZERO; img_len];
    let mut img_r = vec![Complex32::ZERO; img_len];
    four.adjoint(&samples, &mut img_f);
    rec.adjoint(&samples, &mut img_r);
    assert_bits_eq(&img_f, &img_r, &format!("{label}: adjoint"));

    // forward_batch
    let images: Vec<Vec<Complex32>> = (0..channels).map(|c| signal(img_len, c as f32)).collect();
    let image_refs: Vec<&[Complex32]> = images.iter().map(|v| v.as_slice()).collect();
    let mut bout_f = vec![vec![Complex32::ZERO; k]; channels];
    let mut bout_r = vec![vec![Complex32::ZERO; k]; channels];
    {
        let mut refs: Vec<&mut [Complex32]> = bout_f.iter_mut().map(|v| v.as_mut_slice()).collect();
        four.forward_batch(&image_refs, &mut refs);
    }
    {
        let mut refs: Vec<&mut [Complex32]> = bout_r.iter_mut().map(|v| v.as_mut_slice()).collect();
        rec.forward_batch(&image_refs, &mut refs);
    }
    for c in 0..channels {
        assert_bits_eq(&bout_f[c], &bout_r[c], &format!("{label}: forward_batch ch{c}"));
    }

    // adjoint_batch
    let datas: Vec<Vec<Complex32>> = (0..channels).map(|c| signal(k, 2.0 + c as f32)).collect();
    let data_refs: Vec<&[Complex32]> = datas.iter().map(|v| v.as_slice()).collect();
    let mut bimg_f = vec![vec![Complex32::ZERO; img_len]; channels];
    let mut bimg_r = vec![vec![Complex32::ZERO; img_len]; channels];
    {
        let mut refs: Vec<&mut [Complex32]> = bimg_f.iter_mut().map(|v| v.as_mut_slice()).collect();
        four.adjoint_batch(&data_refs, &mut refs);
    }
    {
        let mut refs: Vec<&mut [Complex32]> = bimg_r.iter_mut().map(|v| v.as_mut_slice()).collect();
        rec.adjoint_batch(&data_refs, &mut refs);
    }
    for c in 0..channels {
        assert_bits_eq(&bimg_f[c], &bimg_r[c], &format!("{label}: adjoint_batch ch{c}"));
    }
}

/// Grid-axis regimes: `(n, alpha)` pairs whose oversampled extents hit the
/// lengths named in the plan-selection design — 96 = 2⁵·3 (mixed radix),
/// 120 = 2³·3·5 (three primes), 31 (prime → Bluestein, four-step falls
/// back to recursive on that axis and must still match): `round(1.25·25)`
/// = 31 keeps the oversampling above the Kaiser–Bessel β's `α > 1` floor.
const GEOMETRIES: [([usize; 2], f64); 3] = [([48, 8], 2.0), ([60, 5], 2.0), ([25, 13], 1.25)];

#[test]
fn fourstep_matches_recursive_bitwise_across_isa_threads_and_modes() {
    let _guard = ISA_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let detected = detect_isa();
    for isa in [IsaLevel::StrictScalar, IsaLevel::Scalar, IsaLevel::Sse2, IsaLevel::Avx2Fma] {
        if isa > detected {
            continue;
        }
        set_isa_override(isa).unwrap();
        for (n, alpha) in GEOMETRIES {
            for threads in [1usize, 2, 4] {
                for mode in [ExecMode::Fused, ExecMode::Phased] {
                    check_fourstep_matches_recursive(
                        n,
                        alpha,
                        threads,
                        mode,
                        &format!("n={n:?} alpha={alpha} isa={isa:?} threads={threads} {mode:?}"),
                    );
                }
            }
        }
    }
    set_isa_override(detected).unwrap();
}

/// Worker count for the oversubscription stress: `NUFFT_THREADS` override
/// (CI runs 16), else 8.
fn env_threads() -> usize {
    std::env::var("NUFFT_THREADS").ok().and_then(|s| s.parse().ok()).unwrap_or(8)
}

/// Oversubscribed fused four-step: many more workers than shard-level
/// parallelism per chunk, repeated applies on one plan — the schedule
/// varies run to run, the bits may not.
#[test]
fn fourstep_fused_stress_oversubscribed() {
    let _guard = ISA_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let threads = env_threads();
    let n = [48usize, 8];
    let traj = traj2(500);
    let img_len = n[0] * n[1];
    let image = signal(img_len, 0.4);
    let samples = signal(traj.len(), 2.2);

    let mut four =
        NufftPlan::new(n, &traj, plan_cfg(threads, ExecMode::Fused, FftStrategy::FourStep, 2.0));
    let mut rec =
        NufftPlan::new(n, &traj, plan_cfg(threads, ExecMode::Phased, FftStrategy::Recursive, 2.0));

    let mut out_r = vec![Complex32::ZERO; traj.len()];
    let mut img_r = vec![Complex32::ZERO; img_len];
    rec.forward(&image, &mut out_r);
    rec.adjoint(&samples, &mut img_r);

    let mut out_f = vec![Complex32::ZERO; traj.len()];
    let mut img_f = vec![Complex32::ZERO; img_len];
    for round in 0..10 {
        four.forward(&image, &mut out_f);
        assert_bits_eq(&out_f, &out_r, &format!("round {round}: forward"));
        four.adjoint(&samples, &mut img_f);
        assert_bits_eq(&img_f, &img_r, &format!("round {round}: adjoint"));
    }
}

/// Forced-strategy plans must never alias in the registry: a four-step
/// instance owns an `fs` transpose buffer and a differently sharded fused
/// DAG, so `PlanKey` keeps strategy (and the Auto budget) apart even
/// though outputs are bitwise-identical.
#[test]
fn forced_strategy_plans_never_alias_in_registry() {
    let _guard = ISA_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let n = [16usize, 16];
    let traj = traj2(120);
    let mk = |strategy, budget| {
        let cfg = NufftConfig {
            threads: 1,
            w: 3.0,
            fft_strategy: strategy,
            fft_llc_budget: budget,
            ..NufftConfig::default()
        };
        PlanRegistry::<2>::new(cfg)
    };
    let auto = mk(FftStrategy::Auto, DEFAULT_LLC_BUDGET);
    let rec = mk(FftStrategy::Recursive, DEFAULT_LLC_BUDGET);
    let four = mk(FftStrategy::FourStep, DEFAULT_LLC_BUDGET);
    let tight = mk(FftStrategy::Auto, 0);

    let keys = [
        auto.key_of(n, &traj),
        rec.key_of(n, &traj),
        four.key_of(n, &traj),
        tight.key_of(n, &traj),
    ];
    for i in 0..keys.len() {
        for j in i + 1..keys.len() {
            assert_ne!(keys[i], keys[j], "registry keys {i} and {j} alias");
        }
    }

    // Sanity: the differently keyed plans still agree bitwise.
    let samples = signal(traj.len(), 0.9);
    let mut img_a = vec![Complex32::ZERO; 256];
    let mut img_b = vec![Complex32::ZERO; 256];
    rec.checkout(n, &traj).adjoint(&samples, &mut img_a);
    four.checkout(n, &traj).adjoint(&samples, &mut img_b);
    assert_bits_eq(&img_a, &img_b, "registry-held strategies");
}
