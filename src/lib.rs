//! Umbrella crate for the NUFFT suite — a from-scratch Rust reproduction of
//! *High Performance Non-uniform FFT on Modern x86-based Multi-core Systems*
//! (Kalamkar et al., IPDPS 2012).
//!
//! Re-exports every workspace crate under one roof so examples and downstream
//! users can depend on a single crate:
//!
//! ```
//! use nufft::math::Complex32;
//! let z = Complex32::new(1.0, -1.0);
//! assert_eq!((z * z.conj()).im, 0.0);
//! ```
//!
//! See the individual crates for the substance:
//!
//! * [`core`] (`nufft-core`) — the paper's contribution: the parallel NUFFT
//!   with variable-width partitioning, Gray-code TDG scheduling, priority
//!   queues and selective privatization;
//! * [`fft`] — from-scratch mixed-radix/Bluestein FFT substrate;
//! * [`simd`] — runtime-dispatched SSE/AVX2 convolution kernels;
//! * [`parallel`] — the task-dependency-graph runtime;
//! * [`sim`] — discrete-event scheduler simulator for core-scaling studies;
//! * [`traj`] — radial / random / stack-of-spirals trajectory generators;
//! * [`baselines`] — every comparator the paper evaluates against;
//! * [`mri`] — iterative multichannel MRI reconstruction on top of the NUFFT.

pub use nufft_baselines as baselines;
pub use nufft_core as core;
pub use nufft_fft as fft;
pub use nufft_math as math;
pub use nufft_mri as mri;
pub use nufft_parallel as parallel;
pub use nufft_sim as sim;
pub use nufft_simd as simd;
pub use nufft_traj as traj;
