//! Scalar, sequential gridding NUFFT — the paper's baseline code.
//!
//! This is a faithful rendering of Figure 2's pseudo-code: per sample, look
//! up the per-dimension kernel windows (Part 1), then run the separable
//! convolution as plain scalar loops with a `mod M` on every neighbor index
//! (Part 2). No threads, no SIMD row kernels, no sample reordering, no task
//! system. Figure 3's breakdown and Figure 9's "Base" bar come from here,
//! and it doubles as an independent differential oracle for `nufft-core`
//! (same kernel and scale, different convolution code).

use nufft_core::conv::Window;
use nufft_core::grid::{embed_scaled, extract_scaled, Geometry};
use nufft_core::kernel::{beatty_beta, InterpKernel};
use nufft_core::scale::build_scale;
use nufft_core::OpTimers;
use nufft_fft::FftNd;
use nufft_math::Complex32;
use std::time::Instant;

/// A sequential scalar NUFFT plan.
pub struct SequentialNufft<const D: usize> {
    geo: Geometry<D>,
    kernel: InterpKernel,
    scale: Vec<f32>,
    fft: FftNd,
    coords: Vec<[f32; D]>,
    w: f32,
    grid: Vec<Complex32>,
    last_forward: OpTimers,
    last_adjoint: OpTimers,
}

impl<const D: usize> SequentialNufft<D> {
    /// Builds the baseline plan (trajectory in ν ∈ `[-1/2, 1/2)`).
    pub fn new(n: [usize; D], traj: &[[f64; D]], alpha: f64, w: f64) -> Self {
        let geo = Geometry::new(n, alpha);
        let kernel = InterpKernel::with_density(
            w,
            beatty_beta(w, alpha),
            nufft_core::kernel::DEFAULT_LUT_DENSITY,
        );
        let scale = build_scale(&geo, &kernel);
        let fft = FftNd::new(&geo.m);
        let coords: Vec<[f32; D]> = traj
            .iter()
            .map(|p| {
                core::array::from_fn(|d| {
                    assert!((-0.5..0.5).contains(&p[d]), "ν out of range");
                    let mut u = ((p[d] + 0.5) * geo.m[d] as f64) as f32;
                    if u >= geo.m[d] as f32 {
                        u -= geo.m[d] as f32;
                    }
                    u
                })
            })
            .collect();
        let grid = vec![Complex32::ZERO; geo.grid_len()];
        SequentialNufft {
            geo,
            kernel,
            scale,
            fft,
            coords,
            w: w as f32,
            grid,
            last_forward: OpTimers::default(),
            last_adjoint: OpTimers::default(),
        }
    }

    /// Number of non-uniform samples.
    pub fn num_samples(&self) -> usize {
        self.coords.len()
    }

    /// Phase breakdown of the last forward call.
    pub fn forward_timers(&self) -> OpTimers {
        self.last_forward
    }

    /// Phase breakdown of the last adjoint call.
    pub fn adjoint_timers(&self) -> OpTimers {
        self.last_adjoint
    }

    /// Forward NUFFT (scale → FFT → gather), everything sequential scalar.
    pub fn forward(&mut self, image: &[Complex32], out: &mut [Complex32]) {
        assert_eq!(out.len(), self.coords.len(), "sample buffer length mismatch");
        let t_start = Instant::now();
        let t0 = Instant::now();
        self.grid.fill(Complex32::ZERO);
        embed_scaled(&self.geo, image, &self.scale, &mut self.grid);
        let scale_t = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        self.fft.forward(&mut self.grid);
        let fft_t = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        for (p, c) in self.coords.iter().enumerate() {
            let win: [Window; D] =
                core::array::from_fn(|d| Window::compute(c[d], self.w, &self.kernel));
            out[p] = gather_scalar(&self.grid, &self.geo.m, &win);
        }
        let conv_t = t0.elapsed().as_secs_f64();
        self.last_forward = OpTimers {
            scale: scale_t,
            fft: fft_t,
            conv: conv_t,
            total: t_start.elapsed().as_secs_f64(),
            ..OpTimers::default()
        };
    }

    /// Adjoint NUFFT (scatter → iFFT → scale), everything sequential scalar.
    pub fn adjoint(&mut self, samples: &[Complex32], out: &mut [Complex32]) {
        assert_eq!(samples.len(), self.coords.len(), "sample buffer length mismatch");
        let t_start = Instant::now();
        let t0 = Instant::now();
        self.grid.fill(Complex32::ZERO);
        for (p, c) in self.coords.iter().enumerate() {
            let win: [Window; D] =
                core::array::from_fn(|d| Window::compute(c[d], self.w, &self.kernel));
            scatter_scalar(&mut self.grid, &self.geo.m, &win, samples[p]);
        }
        let conv_t = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        self.fft.backward(&mut self.grid);
        let fft_t = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        extract_scaled(&self.geo, &self.grid, &self.scale, out);
        let scale_t = t0.elapsed().as_secs_f64();
        self.last_adjoint = OpTimers {
            scale: scale_t,
            fft: fft_t,
            conv: conv_t,
            total: t_start.elapsed().as_secs_f64(),
            ..OpTimers::default()
        };
    }
}

#[inline(always)]
fn wrap(x: i32, m: usize) -> usize {
    x.rem_euclid(m as i32) as usize
}

/// Plain scalar gather, `mod M` on every tap (Figure 2, Part 2a).
pub fn gather_scalar<const D: usize>(
    grid: &[Complex32],
    m: &[usize; D],
    win: &[Window; D],
) -> Complex32 {
    let mut acc = Complex32::ZERO;
    match D {
        1 => {
            for i in 0..win[0].len {
                let g = wrap(win[0].start + i as i32, m[0]);
                acc += grid[g].scale(win[0].w[i]);
            }
        }
        2 => {
            for i in 0..win[0].len {
                let gx = wrap(win[0].start + i as i32, m[0]);
                for j in 0..win[1].len {
                    let gy = wrap(win[1].start + j as i32, m[1]);
                    acc += grid[gx * m[1] + gy].scale(win[0].w[i] * win[1].w[j]);
                }
            }
        }
        3 => {
            for i in 0..win[0].len {
                let gx = wrap(win[0].start + i as i32, m[0]);
                for j in 0..win[1].len {
                    let gy = wrap(win[1].start + j as i32, m[1]);
                    let wxy = win[0].w[i] * win[1].w[j];
                    for k in 0..win[2].len {
                        let gz = wrap(win[2].start + k as i32, m[2]);
                        acc += grid[(gx * m[1] + gy) * m[2] + gz].scale(wxy * win[2].w[k]);
                    }
                }
            }
        }
        _ => unimplemented!("dimensions above 3 are not supported"),
    }
    acc
}

/// Plain scalar scatter, `mod M` on every tap (Figure 2, Part 2b).
pub fn scatter_scalar<const D: usize>(
    grid: &mut [Complex32],
    m: &[usize; D],
    win: &[Window; D],
    val: Complex32,
) {
    match D {
        1 => {
            for i in 0..win[0].len {
                let g = wrap(win[0].start + i as i32, m[0]);
                grid[g] += val.scale(win[0].w[i]);
            }
        }
        2 => {
            for i in 0..win[0].len {
                let gx = wrap(win[0].start + i as i32, m[0]);
                for j in 0..win[1].len {
                    let gy = wrap(win[1].start + j as i32, m[1]);
                    grid[gx * m[1] + gy] += val.scale(win[0].w[i] * win[1].w[j]);
                }
            }
        }
        3 => {
            for i in 0..win[0].len {
                let gx = wrap(win[0].start + i as i32, m[0]);
                for j in 0..win[1].len {
                    let gy = wrap(win[1].start + j as i32, m[1]);
                    let wxy = win[0].w[i] * win[1].w[j];
                    for k in 0..win[2].len {
                        let gz = wrap(win[2].start + k as i32, m[2]);
                        grid[(gx * m[1] + gy) * m[2] + gz] += val.scale(wxy * win[2].w[k]);
                    }
                }
            }
        }
        _ => unimplemented!("dimensions above 3 are not supported"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nufft_core::{NufftConfig, NufftPlan};
    use nufft_math::error::rel_l2_c32;

    fn traj2(count: usize) -> Vec<[f64; 2]> {
        (0..count)
            .map(|i| [((i as f64 * 0.618) % 1.0) - 0.5, ((i as f64 * 0.414) % 1.0) - 0.5])
            .collect()
    }

    #[test]
    fn sequential_matches_optimized_core() {
        let n = [20usize, 20];
        let traj = traj2(250);
        let image: Vec<Complex32> =
            (0..400).map(|i| Complex32::new((i as f32 * 0.1).sin(), 0.2)).collect();
        let samples: Vec<Complex32> =
            (0..250).map(|i| Complex32::new(1.0, i as f32 * 0.01)).collect();

        let mut seq = SequentialNufft::new(n, &traj, 2.0, 3.0);
        let mut core_plan =
            NufftPlan::new(n, &traj, NufftConfig { threads: 3, w: 3.0, ..NufftConfig::default() });

        let mut f_seq = vec![Complex32::ZERO; 250];
        let mut f_core = vec![Complex32::ZERO; 250];
        seq.forward(&image, &mut f_seq);
        core_plan.forward(&image, &mut f_core);
        let ef = rel_l2_c32(&f_core, &f_seq);
        assert!(ef < 1e-5, "forward differs from sequential oracle by {ef}");

        let mut a_seq = vec![Complex32::ZERO; 400];
        let mut a_core = vec![Complex32::ZERO; 400];
        seq.adjoint(&samples, &mut a_seq);
        core_plan.adjoint(&samples, &mut a_core);
        let ea = rel_l2_c32(&a_core, &a_seq);
        assert!(ea < 1e-5, "adjoint differs from sequential oracle by {ea}");
    }

    #[test]
    fn timers_populate() {
        let mut seq = SequentialNufft::new([16usize, 16], &traj2(50), 2.0, 2.0);
        let image = vec![Complex32::ONE; 256];
        let mut s = vec![Complex32::ZERO; 50];
        seq.forward(&image, &mut s);
        assert!(seq.forward_timers().total > 0.0);
        let mut img = vec![Complex32::ZERO; 256];
        seq.adjoint(&s, &mut img);
        assert!(seq.adjoint_timers().conv > 0.0);
        assert_eq!(seq.num_samples(), 50);
    }
}
