//! Baseline and comparator NUFFT implementations.
//!
//! Everything the paper measures its contribution against, built on the
//! same kernel / scale / FFT substrates so differences are purely
//! algorithmic:
//!
//! * [`direct`] — the `O(N^d·K)` DTFT evaluated exactly in `f64`: the
//!   accuracy oracle for every experiment;
//! * [`sequential`] — the scalar, sequential gridding NUFFT of Figure 3's
//!   baseline breakdown ("Base" in Figure 9): one straightforward loop per
//!   sample, no task system, no SIMD rows, no reordering;
//! * [`privatized`] — the full-grid thread-privatization adjoint of Shu et
//!   al. (Table IV's comparator): every thread owns a complete grid copy,
//!   samples are split evenly, and a final reduction folds all copies —
//!   memory cost `T × grid`, reduction cost independent of sample sparsity;
//! * [`gather`] — the gather-based (output-driven) adjoint of Obeid et al.
//!   (§VI): race-free by construction but every sample is revisited by all
//!   `(2W)³` grid points it touches, so it loses badly at large `W`;
//! * [`sparse`] — the precomputed-coefficient ("sparse matrix") operator
//!   of Fessler's toolbox: no kernel evaluation at apply time, at the cost
//!   of storing every tap explicitly — the trade-off the paper's LUT
//!   design avoids;
//! * [`atomics`] — the lock-free atomic-update adjoint (the "hardware
//!   mutual exclusion" alternative discussed in §III-B): correct at any
//!   thread count but pays a compare-exchange on *every* grid update and
//!   cannot use the SIMD row kernels.
//!
//! The remaining paper baselines (fixed-width partitions, FIFO queue, no
//! privatization, no reorder, scalar SIMD) are *configuration toggles* of
//! `nufft-core` — see [`nufft_core::NufftConfig`] — so they exercise the
//! identical code path modulo the one optimization under study, exactly as
//! an ablation should.

pub mod atomics;
pub mod direct;
pub mod gather;
pub mod privatized;
pub mod sequential;
pub mod sparse;
