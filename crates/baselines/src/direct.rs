//! Direct `O(N^d·K)` DTFT — the exact oracle.
//!
//! Evaluates `F(ν_p) = Σ_{n ∈ [-N/2,N/2)^D} f[n]·e^{-2πi ν_p·n}` and its
//! adjoint with `f64` phase accumulation. Quadratic cost: use for accuracy
//! measurement only.

use nufft_math::{Complex32, Complex64};

fn strides<const D: usize>(n: &[usize; D]) -> [usize; D] {
    let mut s = [1usize; D];
    for d in (0..D.saturating_sub(1)).rev() {
        s[d] = s[d + 1] * n[d + 1];
    }
    s
}

/// Exact forward DTFT at the trajectory points (ν in `[-1/2, 1/2)`).
pub fn forward<const D: usize>(
    image: &[Complex32],
    n: [usize; D],
    traj: &[[f64; D]],
) -> Vec<Complex64> {
    let len: usize = n.iter().product();
    assert_eq!(image.len(), len, "image length mismatch");
    let st = strides(&n);
    traj.iter()
        .map(|nu| {
            let mut acc = Complex64::ZERO;
            for (flat, &v) in image.iter().enumerate() {
                let mut phase = 0.0;
                let mut rem = flat;
                for d in 0..D {
                    let pos = rem / st[d];
                    rem %= st[d];
                    phase += nu[d] * (pos as f64 - (n[d] / 2) as f64);
                }
                acc += v.to_f64() * Complex64::cis(-core::f64::consts::TAU * phase);
            }
            acc
        })
        .collect()
}

/// Exact adjoint DTFT: `H[n] = Σ_p y_p·e^{+2πi ν_p·n}`.
pub fn adjoint<const D: usize>(
    samples: &[Complex32],
    n: [usize; D],
    traj: &[[f64; D]],
) -> Vec<Complex64> {
    assert_eq!(samples.len(), traj.len(), "sample/trajectory length mismatch");
    let len: usize = n.iter().product();
    let st = strides(&n);
    let mut out = vec![Complex64::ZERO; len];
    for (flat, o) in out.iter_mut().enumerate() {
        let mut idx = [0f64; D];
        let mut rem = flat;
        for d in 0..D {
            idx[d] = (rem / st[d]) as f64 - (n[d] / 2) as f64;
            rem %= st[d];
        }
        let mut acc = Complex64::ZERO;
        for (p, &y) in samples.iter().enumerate() {
            let mut phase = 0.0;
            for d in 0..D {
                phase += traj[p][d] * idx[d];
            }
            acc += y.to_f64() * Complex64::cis(core::f64::consts::TAU * phase);
        }
        *o = acc;
    }
    out
}

/// Exact type-3 forward: `F(s_k) = Σ_j c_j·e^{-2πi s_k·x_j}` for arbitrary
/// real source positions and target frequencies (no grid, no band limit).
/// `O(J·K)` — the oracle for `tests/type3_accuracy.rs`.
pub fn type3<const D: usize>(
    strengths: &[Complex32],
    sources: &[[f64; D]],
    targets: &[[f64; D]],
) -> Vec<Complex64> {
    assert_eq!(strengths.len(), sources.len(), "strength/source length mismatch");
    targets
        .iter()
        .map(|s| {
            let mut acc = Complex64::ZERO;
            for (x, &c) in sources.iter().zip(strengths) {
                let mut phase = 0.0;
                for d in 0..D {
                    phase += s[d] * x[d];
                }
                acc += c.to_f64() * Complex64::cis(-core::f64::consts::TAU * phase);
            }
            acc
        })
        .collect()
}

/// Exact type-3 adjoint: `G(x_j) = Σ_k y_k·e^{+2πi s_k·x_j}` — the
/// conjugate transpose of [`type3`].
pub fn type3_adjoint<const D: usize>(
    samples: &[Complex32],
    sources: &[[f64; D]],
    targets: &[[f64; D]],
) -> Vec<Complex64> {
    assert_eq!(samples.len(), targets.len(), "sample/target length mismatch");
    sources
        .iter()
        .map(|x| {
            let mut acc = Complex64::ZERO;
            for (s, &y) in targets.iter().zip(samples) {
                let mut phase = 0.0;
                for d in 0..D {
                    phase += s[d] * x[d];
                }
                acc += y.to_f64() * Complex64::cis(core::f64::consts::TAU * phase);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_point_sums_the_image() {
        let image = vec![Complex32::new(2.0, -1.0); 9];
        let got = forward(&image, [3, 3], &[[0.0, 0.0]]);
        assert!((got[0] - Complex64::new(18.0, -9.0)).abs() < 1e-10);
    }

    #[test]
    fn adjoint_of_unit_sample_is_phase_ramp() {
        let got = adjoint(&[Complex32::ONE], [4], &[[0.25]]);
        for (pos, z) in got.iter().enumerate() {
            let n = pos as f64 - 2.0;
            let want = Complex64::cis(core::f64::consts::TAU * 0.25 * n);
            assert!((*z - want).abs() < 1e-12, "pos {pos}");
        }
    }

    #[test]
    fn type3_reduces_to_forward_on_grid_sources() {
        // Sources placed exactly on the centered integer grid with
        // normalized targets must reproduce the on-grid forward DTFT.
        let n = [4usize];
        let image: Vec<Complex32> =
            (0..4).map(|i| Complex32::new(i as f32 + 1.0, -(i as f32))).collect();
        let sources: Vec<[f64; 1]> = (0..4).map(|i| [i as f64 - 2.0]).collect();
        let targets = [[0.17], [-0.42], [0.0]];
        let want = forward(&image, n, &targets);
        let got = type3(&image, &sources, &targets);
        for (g, w) in got.iter().zip(&want) {
            assert!((*g - *w).abs() < 1e-10, "{g:?} vs {w:?}");
        }
    }

    #[test]
    fn type3_forward_adjoint_dot_test() {
        let sources = [[1.7, -0.3], [0.2, 2.4], [-1.1, 0.8]];
        let targets = [[0.9, 0.4], [-1.3, 0.6]];
        let x = [Complex32::new(1.0, -0.5), Complex32::new(0.3, 0.7), Complex32::new(-0.2, 0.1)];
        let y = [Complex32::new(0.6, 0.2), Complex32::new(-0.4, 0.9)];
        let ax = type3(&x, &sources, &targets);
        let aty = type3_adjoint(&y, &sources, &targets);
        let lhs: Complex64 = ax.iter().zip(&y).map(|(&a, &b)| a.conj() * b.to_f64()).sum();
        let rhs: Complex64 = x.iter().zip(&aty).map(|(&a, &b)| a.to_f64().conj() * b).sum();
        assert!((lhs - rhs).abs() < 1e-10, "{lhs:?} vs {rhs:?}");
    }

    #[test]
    fn forward_adjoint_dot_test() {
        let n = [4usize, 4];
        let traj = [[0.1, -0.2], [0.31, 0.05], [-0.45, 0.4]];
        let x: Vec<Complex32> =
            (0..16).map(|i| Complex32::new(i as f32 * 0.1, -(i as f32) * 0.2)).collect();
        let y = [Complex32::new(1.0, 0.5), Complex32::new(-0.5, 1.0), Complex32::new(0.25, -0.75)];
        let ax = forward(&x, n, &traj);
        let aty = adjoint(&y, n, &traj);
        let lhs: Complex64 = ax.iter().zip(&y).map(|(&a, &b)| a.conj() * b.to_f64()).sum();
        let rhs: Complex64 = x.iter().zip(&aty).map(|(&a, &b)| a.to_f64().conj() * b).sum();
        assert!((lhs - rhs).abs() < 1e-10, "{lhs:?} vs {rhs:?}");
    }
}
