//! Direct `O(N^d·K)` DTFT — the exact oracle.
//!
//! Evaluates `F(ν_p) = Σ_{n ∈ [-N/2,N/2)^D} f[n]·e^{-2πi ν_p·n}` and its
//! adjoint with `f64` phase accumulation. Quadratic cost: use for accuracy
//! measurement only.

use nufft_math::{Complex32, Complex64};

fn strides<const D: usize>(n: &[usize; D]) -> [usize; D] {
    let mut s = [1usize; D];
    for d in (0..D.saturating_sub(1)).rev() {
        s[d] = s[d + 1] * n[d + 1];
    }
    s
}

/// Exact forward DTFT at the trajectory points (ν in `[-1/2, 1/2)`).
pub fn forward<const D: usize>(
    image: &[Complex32],
    n: [usize; D],
    traj: &[[f64; D]],
) -> Vec<Complex64> {
    let len: usize = n.iter().product();
    assert_eq!(image.len(), len, "image length mismatch");
    let st = strides(&n);
    traj.iter()
        .map(|nu| {
            let mut acc = Complex64::ZERO;
            for (flat, &v) in image.iter().enumerate() {
                let mut phase = 0.0;
                let mut rem = flat;
                for d in 0..D {
                    let pos = rem / st[d];
                    rem %= st[d];
                    phase += nu[d] * (pos as f64 - (n[d] / 2) as f64);
                }
                acc += v.to_f64() * Complex64::cis(-core::f64::consts::TAU * phase);
            }
            acc
        })
        .collect()
}

/// Exact adjoint DTFT: `H[n] = Σ_p y_p·e^{+2πi ν_p·n}`.
pub fn adjoint<const D: usize>(
    samples: &[Complex32],
    n: [usize; D],
    traj: &[[f64; D]],
) -> Vec<Complex64> {
    assert_eq!(samples.len(), traj.len(), "sample/trajectory length mismatch");
    let len: usize = n.iter().product();
    let st = strides(&n);
    let mut out = vec![Complex64::ZERO; len];
    for (flat, o) in out.iter_mut().enumerate() {
        let mut idx = [0f64; D];
        let mut rem = flat;
        for d in 0..D {
            idx[d] = (rem / st[d]) as f64 - (n[d] / 2) as f64;
            rem %= st[d];
        }
        let mut acc = Complex64::ZERO;
        for (p, &y) in samples.iter().enumerate() {
            let mut phase = 0.0;
            for d in 0..D {
                phase += traj[p][d] * idx[d];
            }
            acc += y.to_f64() * Complex64::cis(core::f64::consts::TAU * phase);
        }
        *o = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_point_sums_the_image() {
        let image = vec![Complex32::new(2.0, -1.0); 9];
        let got = forward(&image, [3, 3], &[[0.0, 0.0]]);
        assert!((got[0] - Complex64::new(18.0, -9.0)).abs() < 1e-10);
    }

    #[test]
    fn adjoint_of_unit_sample_is_phase_ramp() {
        let got = adjoint(&[Complex32::ONE], [4], &[[0.25]]);
        for (pos, z) in got.iter().enumerate() {
            let n = pos as f64 - 2.0;
            let want = Complex64::cis(core::f64::consts::TAU * 0.25 * n);
            assert!((*z - want).abs() < 1e-12, "pos {pos}");
        }
    }

    #[test]
    fn forward_adjoint_dot_test() {
        let n = [4usize, 4];
        let traj = [[0.1, -0.2], [0.31, 0.05], [-0.45, 0.4]];
        let x: Vec<Complex32> =
            (0..16).map(|i| Complex32::new(i as f32 * 0.1, -(i as f32) * 0.2)).collect();
        let y = [Complex32::new(1.0, 0.5), Complex32::new(-0.5, 1.0), Complex32::new(0.25, -0.75)];
        let ax = forward(&x, n, &traj);
        let aty = adjoint(&y, n, &traj);
        let lhs: Complex64 = ax.iter().zip(&y).map(|(&a, &b)| a.conj() * b.to_f64()).sum();
        let rhs: Complex64 = x.iter().zip(&aty).map(|(&a, &b)| a.to_f64().conj() * b).sum();
        assert!((lhs - rhs).abs() < 1e-10, "{lhs:?} vs {rhs:?}");
    }
}
