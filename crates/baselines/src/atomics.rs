//! Atomic-update adjoint convolution (the §III-B "hardware support"
//! alternative).
//!
//! Every grid update becomes a compare-exchange loop on the bit pattern of
//! an `f32`. Any thread may scatter any sample — no partitioning, no task
//! graph, no privatization — at the price of an atomic RMW per tap and the
//! loss of SIMD rows. The paper dismisses this approach as "high overhead,
//! will not scale"; the Figure 12-adjacent ablation quantifies that on this
//! implementation.

use nufft_core::conv::Window;
use nufft_core::grid::{extract_scaled, Geometry};
use nufft_core::kernel::{beatty_beta, InterpKernel};
use nufft_core::scale::build_scale;
use nufft_core::OpTimers;
use nufft_fft::FftNd;
use nufft_math::Complex32;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::time::Instant;

/// Adjoint NUFFT whose scatter uses lock-free atomic float adds.
pub struct AtomicAdjoint<const D: usize> {
    geo: Geometry<D>,
    kernel: InterpKernel,
    scale: Vec<f32>,
    fft: FftNd,
    coords: Vec<[f32; D]>,
    w: f32,
    threads: usize,
    grid: Vec<Complex32>,
    last_adjoint: OpTimers,
}

/// `target += add` via CAS loop on the f32 bit pattern.
#[inline]
fn atomic_add_f32(target: &AtomicU32, add: f32) {
    let mut cur = target.load(Ordering::Relaxed);
    loop {
        let new = (f32::from_bits(cur) + add).to_bits();
        match target.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

impl<const D: usize> AtomicAdjoint<D> {
    /// Builds the plan (trajectory in ν ∈ `[-1/2, 1/2)`).
    pub fn new(n: [usize; D], traj: &[[f64; D]], alpha: f64, w: f64, threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        let geo = Geometry::new(n, alpha);
        let kernel = InterpKernel::with_density(
            w,
            beatty_beta(w, alpha),
            nufft_core::kernel::DEFAULT_LUT_DENSITY,
        );
        let scale = build_scale(&geo, &kernel);
        let fft = FftNd::new(&geo.m);
        let coords: Vec<[f32; D]> = traj
            .iter()
            .map(|p| {
                core::array::from_fn(|d| {
                    assert!((-0.5..0.5).contains(&p[d]), "ν out of range");
                    let mut u = ((p[d] + 0.5) * geo.m[d] as f64) as f32;
                    if u >= geo.m[d] as f32 {
                        u -= geo.m[d] as f32;
                    }
                    u
                })
            })
            .collect();
        let grid = vec![Complex32::ZERO; geo.grid_len()];
        AtomicAdjoint {
            geo,
            kernel,
            scale,
            fft,
            coords,
            w: w as f32,
            threads,
            grid,
            last_adjoint: OpTimers::default(),
        }
    }

    /// Phase breakdown of the last adjoint call.
    pub fn adjoint_timers(&self) -> OpTimers {
        self.last_adjoint
    }

    /// Adjoint NUFFT: atomic scatter → iFFT → scale.
    pub fn adjoint(&mut self, samples: &[Complex32], out: &mut [Complex32]) {
        assert_eq!(samples.len(), self.coords.len(), "sample buffer length mismatch");
        assert_eq!(out.len(), self.geo.image_len(), "image length mismatch");
        let t_start = Instant::now();

        let t0 = Instant::now();
        self.grid.fill(Complex32::ZERO);
        {
            // View the complex grid as interleaved atomics. AtomicU32 and
            // f32 share size/alignment; we hold the only reference.
            let flat = Complex32::as_interleaved_mut(&mut self.grid);
            // SAFETY: AtomicU32 has the same layout as u32/f32 and the
            // exclusive borrow is handed to the atomic view for the scope.
            let atoms: &[AtomicU32] = unsafe {
                core::slice::from_raw_parts(flat.as_ptr() as *const AtomicU32, flat.len())
            };
            let coords = &self.coords;
            let kernel = &self.kernel;
            let m = &self.geo.m;
            let w = self.w;
            let next = AtomicUsize::new(0);
            let grain = 64;
            std::thread::scope(|scope| {
                for _ in 0..self.threads {
                    let next = &next;
                    scope.spawn(move || loop {
                        let start = next.fetch_add(grain, Ordering::Relaxed);
                        if start >= coords.len() {
                            break;
                        }
                        let end = (start + grain).min(coords.len());
                        for p in start..end {
                            let win: [Window; D] =
                                core::array::from_fn(|d| Window::compute(coords[p][d], w, kernel));
                            scatter_atomic(atoms, m, &win, samples[p]);
                        }
                    });
                }
            });
        }
        let conv_t = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        self.fft.backward(&mut self.grid);
        let fft_t = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        extract_scaled(&self.geo, &self.grid, &self.scale, out);
        let scale_t = t0.elapsed().as_secs_f64();

        self.last_adjoint = OpTimers {
            scale: scale_t,
            fft: fft_t,
            conv: conv_t,
            total: t_start.elapsed().as_secs_f64(),
            ..OpTimers::default()
        };
    }
}

#[inline(always)]
fn wrap(x: i32, m: usize) -> usize {
    x.rem_euclid(m as i32) as usize
}

fn scatter_atomic<const D: usize>(
    atoms: &[AtomicU32],
    m: &[usize; D],
    win: &[Window; D],
    val: Complex32,
) {
    let tap = |flat: usize, weight: f32| {
        atomic_add_f32(&atoms[2 * flat], val.re * weight);
        atomic_add_f32(&atoms[2 * flat + 1], val.im * weight);
    };
    match D {
        1 => {
            for i in 0..win[0].len {
                tap(wrap(win[0].start + i as i32, m[0]), win[0].w[i]);
            }
        }
        2 => {
            for i in 0..win[0].len {
                let gx = wrap(win[0].start + i as i32, m[0]);
                for j in 0..win[1].len {
                    let gy = wrap(win[1].start + j as i32, m[1]);
                    tap(gx * m[1] + gy, win[0].w[i] * win[1].w[j]);
                }
            }
        }
        3 => {
            for i in 0..win[0].len {
                let gx = wrap(win[0].start + i as i32, m[0]);
                for j in 0..win[1].len {
                    let gy = wrap(win[1].start + j as i32, m[1]);
                    let wxy = win[0].w[i] * win[1].w[j];
                    for k in 0..win[2].len {
                        let gz = wrap(win[2].start + k as i32, m[2]);
                        tap((gx * m[1] + gy) * m[2] + gz, wxy * win[2].w[k]);
                    }
                }
            }
        }
        _ => unimplemented!("dimensions above 3 are not supported"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nufft_core::{NufftConfig, NufftPlan};
    use nufft_math::error::rel_l2_c32;

    #[test]
    fn matches_core_adjoint() {
        let n = [12usize, 12];
        let traj: Vec<[f64; 2]> = (0..150)
            .map(|i| [((i as f64 * 0.618) % 1.0) - 0.5, ((i as f64 * 0.414) % 1.0) - 0.5])
            .collect();
        let samples: Vec<Complex32> =
            (0..150).map(|i| Complex32::new(0.5, (i as f32 * 0.11).cos())).collect();

        let mut base = AtomicAdjoint::new(n, &traj, 2.0, 2.0, 4);
        let mut want = vec![Complex32::ZERO; 144];
        base.adjoint(&samples, &mut want);

        let mut core_plan =
            NufftPlan::new(n, &traj, NufftConfig { threads: 2, w: 2.0, ..NufftConfig::default() });
        let mut got = vec![Complex32::ZERO; 144];
        core_plan.adjoint(&samples, &mut got);

        let e = rel_l2_c32(&got, &want);
        assert!(e < 1e-4, "atomic baseline and core disagree: {e}");
    }

    #[test]
    fn atomic_add_accumulates_concurrently() {
        let target = AtomicU32::new(0.0f32.to_bits());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        atomic_add_f32(&target, 0.5);
                    }
                });
            }
        });
        assert_eq!(f32::from_bits(target.load(Ordering::Relaxed)), 2000.0);
    }
}
