//! Full-grid thread privatization — the Shu et al. comparator (Table IV).
//!
//! The straightforward way to parallelize the adjoint scatter: give every
//! thread its own complete copy of the oversampled grid, split the samples
//! evenly, scatter without any coordination, then reduce all `T` copies
//! into one. Correct and simple, but:
//!
//! * memory grows as `T × grid` (the paper: "impractical for massive
//!   parallelization of large numerical problems");
//! * the reduction touches `T × grid` elements regardless of how sparse the
//!   sample coverage is, so it dominates as `T` grows.
//!
//! The convolution itself reuses the optimized SIMD row kernels, so the
//! Table IV comparison isolates the *parallelization strategy*, not scalar
//! vs vector code.

use nufft_core::conv::{adjoint_scatter, win_refs, Window};
use nufft_core::grid::{extract_scaled, Geometry};
use nufft_core::kernel::{beatty_beta, InterpKernel};
use nufft_core::scale::build_scale;
use nufft_core::OpTimers;
use nufft_fft::FftNd;
use nufft_math::Complex32;
use nufft_parallel::exec::Executor;
use std::time::Instant;

/// Adjoint NUFFT with full-grid-per-thread privatization.
pub struct PrivatizedAdjoint<const D: usize> {
    geo: Geometry<D>,
    kernel: InterpKernel,
    scale: Vec<f32>,
    fft: FftNd,
    coords: Vec<[f32; D]>,
    w: f32,
    threads: usize,
    exec: Executor,
    /// One full grid per thread (the whole point of this baseline).
    grids: Vec<Vec<Complex32>>,
    last_adjoint: OpTimers,
}

impl<const D: usize> PrivatizedAdjoint<D> {
    /// Builds the plan (trajectory in ν ∈ `[-1/2, 1/2)`).
    pub fn new(n: [usize; D], traj: &[[f64; D]], alpha: f64, w: f64, threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        let geo = Geometry::new(n, alpha);
        let kernel = InterpKernel::with_density(
            w,
            beatty_beta(w, alpha),
            nufft_core::kernel::DEFAULT_LUT_DENSITY,
        );
        let scale = build_scale(&geo, &kernel);
        let fft = FftNd::new(&geo.m);
        let coords: Vec<[f32; D]> = traj
            .iter()
            .map(|p| {
                core::array::from_fn(|d| {
                    assert!((-0.5..0.5).contains(&p[d]), "ν out of range");
                    let mut u = ((p[d] + 0.5) * geo.m[d] as f64) as f32;
                    if u >= geo.m[d] as f32 {
                        u -= geo.m[d] as f32;
                    }
                    u
                })
            })
            .collect();
        let grids = (0..threads).map(|_| vec![Complex32::ZERO; geo.grid_len()]).collect();
        PrivatizedAdjoint {
            geo,
            kernel,
            scale,
            fft,
            coords,
            w: w as f32,
            threads,
            exec: Executor::new(threads),
            grids,
            last_adjoint: OpTimers::default(),
        }
    }

    /// Memory held in grid copies (elements) — `T × Π M_d`.
    pub fn privatized_elements(&self) -> usize {
        self.threads * self.geo.grid_len()
    }

    /// Phase breakdown of the last adjoint (the reduction is folded into
    /// `conv`).
    pub fn adjoint_timers(&self) -> OpTimers {
        self.last_adjoint
    }

    /// Adjoint NUFFT: scatter into per-thread grids → reduce → iFFT → scale.
    pub fn adjoint(&mut self, samples: &[Complex32], out: &mut [Complex32]) {
        assert_eq!(samples.len(), self.coords.len(), "sample buffer length mismatch");
        assert_eq!(out.len(), self.geo.image_len(), "image length mismatch");
        let t_start = Instant::now();

        let t0 = Instant::now();
        for g in &mut self.grids {
            g.fill(Complex32::ZERO);
        }
        // Scatter: even static split of samples, one private grid each.
        {
            let coords = &self.coords;
            let kernel = &self.kernel;
            let m = &self.geo.m;
            let w = self.w;
            let n_samples = coords.len();
            let threads = self.threads;
            let chunk = n_samples.div_ceil(threads);
            std::thread::scope(|scope| {
                for (tid, grid) in self.grids.iter_mut().enumerate() {
                    scope.spawn(move || {
                        let start = (tid * chunk).min(n_samples);
                        let end = ((tid + 1) * chunk).min(n_samples);
                        for p in start..end {
                            let win: [Window; D] =
                                core::array::from_fn(|d| Window::compute(coords[p][d], w, kernel));
                            adjoint_scatter(grid, m, &win_refs(&win), samples[p]);
                        }
                    });
                }
            });
        }
        // Global reduction: fold grids 1..T into grid 0, parallel over
        // disjoint chunks of the grid.
        {
            let (first, rest) = self.grids.split_at_mut(1);
            let dst = &mut first[0][..];
            let grain = (dst.len() / (4 * self.threads)).max(1024);
            let rest_refs: Vec<&[Complex32]> = rest.iter().map(|g| g.as_slice()).collect();
            let dst_ptr = dst.as_mut_ptr() as usize;
            // 8 = complex elements per cache line: chunk boundaries of this
            // contiguous accumulate never split a line between workers.
            self.exec.parallel_for_aligned(dst.len(), grain, 8, |range, _w| {
                // SAFETY: ranges from parallel_for are disjoint; dst outlives
                // the scope.
                let dst = unsafe {
                    core::slice::from_raw_parts_mut(
                        (dst_ptr as *mut Complex32).add(range.start),
                        range.len(),
                    )
                };
                for src in &rest_refs {
                    nufft_simd::accumulate(dst, &src[range.clone()]);
                }
            });
        }
        let conv_t = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        self.fft.backward(&mut self.grids[0]);
        let fft_t = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        extract_scaled(&self.geo, &self.grids[0], &self.scale, out);
        let scale_t = t0.elapsed().as_secs_f64();

        self.last_adjoint = OpTimers {
            scale: scale_t,
            fft: fft_t,
            conv: conv_t,
            total: t_start.elapsed().as_secs_f64(),
            ..OpTimers::default()
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nufft_core::{NufftConfig, NufftPlan};
    use nufft_math::error::rel_l2_c32;

    #[test]
    fn matches_core_adjoint() {
        let n = [16usize, 16];
        let traj: Vec<[f64; 2]> = (0..200)
            .map(|i| [((i as f64 * 0.618) % 1.0) - 0.5, ((i as f64 * 0.414) % 1.0) - 0.5])
            .collect();
        let samples: Vec<Complex32> =
            (0..200).map(|i| Complex32::new((i as f32 * 0.2).sin(), 0.3)).collect();

        let mut base = PrivatizedAdjoint::new(n, &traj, 2.0, 3.0, 4);
        let mut want = vec![Complex32::ZERO; 256];
        base.adjoint(&samples, &mut want);

        let mut core_plan =
            NufftPlan::new(n, &traj, NufftConfig { threads: 2, w: 3.0, ..NufftConfig::default() });
        let mut got = vec![Complex32::ZERO; 256];
        core_plan.adjoint(&samples, &mut got);

        let e = rel_l2_c32(&got, &want);
        assert!(e < 1e-5, "privatized baseline and core disagree: {e}");
    }

    #[test]
    fn memory_footprint_scales_with_threads() {
        let traj: Vec<[f64; 2]> = vec![[0.0, 0.0]];
        let a = PrivatizedAdjoint::new([16usize, 16], &traj, 2.0, 2.0, 1);
        let b = PrivatizedAdjoint::new([16usize, 16], &traj, 2.0, 2.0, 8);
        assert_eq!(b.privatized_elements(), 8 * a.privatized_elements());
    }
}
