//! Precomputed-coefficient ("sparse matrix") NUFFT convolution.
//!
//! The classic alternative (Fessler's NUFFT toolbox) to the paper's
//! on-the-fly LUT interpolation: during preprocessing, evaluate *every*
//! kernel tap of every sample once and store the interpolation operator
//! explicitly as a CSR-like sparse matrix (per sample: `(2W)^d` flattened
//! grid indices + weights). Applying the forward/adjoint convolution is
//! then a pure sparse gather / scatter with no kernel evaluation at all.
//!
//! Trade-off the paper implicitly makes by choosing the LUT instead:
//!
//! * memory — the matrix stores `K·(2W)³` index+weight pairs (a Table I
//!   dataset at W=4 needs ~50 GB; the LUT needs a few KiB);
//! * bandwidth — streaming precomputed taps displaces the grid from cache,
//!   so past small problems the LUT wins on speed too;
//! * flexibility — the matrix is frozen per trajectory, the LUT is not.
//!
//! Provided as a baseline so the trade-off is measurable (`operators`
//! bench) rather than asserted.

use nufft_core::conv::Window;
use nufft_core::grid::Geometry;
use nufft_core::kernel::{beatty_beta, InterpKernel};
use nufft_math::Complex32;

/// Explicit sparse interpolation operator for one trajectory.
pub struct SparseConv<const D: usize> {
    geo: Geometry<D>,
    /// Per-sample tap ranges into `idx`/`weight` (CSR row pointers).
    row_start: Vec<u32>,
    /// Flattened (wrapped) grid indices of every tap.
    idx: Vec<u32>,
    /// Kernel weight of every tap (product across dimensions).
    weight: Vec<f32>,
}

impl<const D: usize> SparseConv<D> {
    /// Precomputes the operator (trajectory in ν ∈ [-1/2, 1/2)).
    pub fn new(n: [usize; D], traj: &[[f64; D]], alpha: f64, w: f64) -> Self {
        let geo = Geometry::new(n, alpha);
        let kernel = InterpKernel::with_density(
            w,
            beatty_beta(w, alpha),
            nufft_core::kernel::DEFAULT_LUT_DENSITY,
        );
        let strides = geo.grid_strides();
        let mut row_start = Vec::with_capacity(traj.len() + 1);
        row_start.push(0u32);
        let mut idx = Vec::new();
        let mut weight = Vec::new();
        for p in traj {
            let win: [Window; D] = core::array::from_fn(|d| {
                let mf = geo.m[d] as f64;
                let mut u = ((p[d] + 0.5) * mf) as f32;
                if u >= geo.m[d] as f32 {
                    u -= geo.m[d] as f32;
                }
                Window::compute(u, w as f32, &kernel)
            });
            // Cartesian product of the per-dimension taps: decompose a
            // linear tap counter into per-dimension indices.
            let total: usize = win.iter().map(|w| w.len).product();
            for t in 0..total {
                let mut rem = t;
                let mut flat = 0usize;
                let mut wgt = 1.0f32;
                for d in (0..D).rev() {
                    let tap = rem % win[d].len;
                    rem /= win[d].len;
                    let g = (win[d].start + tap as i32).rem_euclid(geo.m[d] as i32) as usize;
                    flat += g * strides[d];
                    wgt *= win[d].w[tap];
                }
                idx.push(flat as u32);
                weight.push(wgt);
            }
            row_start.push(idx.len() as u32);
        }
        SparseConv { geo, row_start, idx, weight }
    }

    /// Stored taps (nonzeros of the interpolation matrix).
    pub fn nnz(&self) -> usize {
        self.idx.len()
    }

    /// Bytes held by the precomputed operator.
    pub fn memory_bytes(&self) -> usize {
        self.idx.len() * (4 + 4) + self.row_start.len() * 4
    }

    /// Grid geometry.
    pub fn geometry(&self) -> &Geometry<D> {
        &self.geo
    }

    /// Forward (gather) convolution: `out[p] = Σ_taps w·grid[idx]`.
    ///
    /// # Panics
    /// Panics on length mismatches.
    pub fn forward(&self, grid: &[Complex32], out: &mut [Complex32]) {
        assert_eq!(grid.len(), self.geo.grid_len(), "grid length mismatch");
        assert_eq!(out.len(), self.row_start.len() - 1, "sample length mismatch");
        for (p, o) in out.iter_mut().enumerate() {
            let lo = self.row_start[p] as usize;
            let hi = self.row_start[p + 1] as usize;
            let mut acc = Complex32::ZERO;
            for t in lo..hi {
                acc += grid[self.idx[t] as usize].scale(self.weight[t]);
            }
            *o = acc;
        }
    }

    /// Adjoint (scatter) convolution: `grid[idx] += w·samples[p]`.
    ///
    /// # Panics
    /// Panics on length mismatches.
    pub fn adjoint(&self, samples: &[Complex32], grid: &mut [Complex32]) {
        assert_eq!(grid.len(), self.geo.grid_len(), "grid length mismatch");
        assert_eq!(samples.len(), self.row_start.len() - 1, "sample length mismatch");
        for (p, &s) in samples.iter().enumerate() {
            let lo = self.row_start[p] as usize;
            let hi = self.row_start[p + 1] as usize;
            for t in lo..hi {
                grid[self.idx[t] as usize] += s.scale(self.weight[t]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nufft_core::{NufftConfig, NufftPlan};
    use nufft_math::error::rel_l2_c32;

    fn traj3(count: usize) -> Vec<[f64; 3]> {
        (0..count)
            .map(|i| {
                [
                    ((i as f64 * 0.618) % 1.0) - 0.5,
                    ((i as f64 * 0.414) % 1.0) - 0.5,
                    ((i as f64 * 0.259) % 1.0) - 0.5,
                ]
            })
            .collect()
    }

    #[test]
    fn sparse_adjoint_matches_lut_scatter() {
        let n = [10usize, 10, 10];
        let traj = traj3(200);
        let samples: Vec<Complex32> =
            (0..200).map(|i| Complex32::new((i as f32 * 0.17).sin(), 0.3)).collect();
        let sp = SparseConv::new(n, &traj, 2.0, 2.0);
        let mut grid_sp = vec![Complex32::ZERO; sp.geometry().grid_len()];
        sp.adjoint(&samples, &mut grid_sp);

        // LUT path through the sequential scalar reference.
        let kernel = InterpKernel::with_density(
            2.0,
            beatty_beta(2.0, 2.0),
            nufft_core::kernel::DEFAULT_LUT_DENSITY,
        );
        let mut grid_lut = vec![Complex32::ZERO; 8000];
        for (p, nu) in traj.iter().enumerate() {
            let win: [Window; 3] = core::array::from_fn(|d| {
                let mut u = ((nu[d] + 0.5) * 20.0) as f32;
                if u >= 20.0 {
                    u -= 20.0;
                }
                Window::compute(u, 2.0, &kernel)
            });
            crate::sequential::scatter_scalar(&mut grid_lut, &[20, 20, 20], &win, samples[p]);
        }
        let e = rel_l2_c32(&grid_sp, &grid_lut);
        assert!(e < 1e-6, "sparse vs LUT scatter: {e}");
    }

    #[test]
    fn sparse_forward_adjoint_dot_test() {
        let n = [8usize, 8, 8];
        let traj = traj3(100);
        let sp = SparseConv::new(n, &traj, 2.0, 2.0);
        let glen = sp.geometry().grid_len();
        let g: Vec<Complex32> =
            (0..glen).map(|i| Complex32::new((i as f32 * 0.01).sin(), 0.1)).collect();
        let y: Vec<Complex32> =
            (0..100).map(|i| Complex32::new(0.5, (i as f32 * 0.2).cos())).collect();
        let mut fy = vec![Complex32::ZERO; 100];
        sp.forward(&g, &mut fy);
        let mut aty = vec![Complex32::ZERO; glen];
        sp.adjoint(&y, &mut aty);
        let dot = |a: &[Complex32], b: &[Complex32]| -> nufft_math::Complex64 {
            a.iter().zip(b).map(|(&p, &q)| p.to_f64().conj() * q.to_f64()).sum()
        };
        let lhs = dot(&fy, &y);
        let rhs = dot(&g, &aty);
        assert!((lhs - rhs).abs() / lhs.abs().max(1e-9) < 1e-5, "{lhs:?} vs {rhs:?}");
    }

    #[test]
    fn nnz_and_memory_accounting() {
        let n = [8usize, 8, 8];
        let traj = traj3(50);
        let sp = SparseConv::new(n, &traj, 2.0, 2.0);
        // W=2: between (2W)³=64 and (2W+1)³=125 taps per sample.
        assert!(sp.nnz() >= 50 * 64 && sp.nnz() <= 50 * 125, "nnz {}", sp.nnz());
        assert_eq!(sp.memory_bytes(), sp.nnz() * 8 + (50 + 1) * 4);
    }

    #[test]
    fn matches_full_plan_convolution() {
        // End to end: plug the sparse conv into grid→iFFT→scale manually
        // and compare against the optimized plan's adjoint.
        let n = [8usize, 8, 8];
        let traj = traj3(120);
        let samples: Vec<Complex32> =
            (0..120).map(|i| Complex32::new(1.0, (i as f32 * 0.31).sin())).collect();
        let mut plan =
            NufftPlan::new(n, &traj, NufftConfig { threads: 2, w: 2.0, ..NufftConfig::default() });
        let mut want = vec![Complex32::ZERO; 512];
        plan.adjoint(&samples, &mut want);

        let sp = SparseConv::new(n, &traj, 2.0, 2.0);
        let mut grid = vec![Complex32::ZERO; sp.geometry().grid_len()];
        sp.adjoint(&samples, &mut grid);
        let fft = nufft_fft::FftNd::new(&sp.geometry().m);
        fft.backward(&mut grid);
        let kernel = InterpKernel::with_density(
            2.0,
            beatty_beta(2.0, 2.0),
            nufft_core::kernel::DEFAULT_LUT_DENSITY,
        );
        let scale = nufft_core::scale::build_scale(sp.geometry(), &kernel);
        let mut got = vec![Complex32::ZERO; 512];
        nufft_core::grid::extract_scaled(sp.geometry(), &grid, &scale, &mut got);
        let e = rel_l2_c32(&got, &want);
        assert!(e < 1e-5, "sparse pipeline vs plan: {e}");
    }
}
