//! Gather-based adjoint convolution — the Obeid et al. approach (§VI).
//!
//! Instead of scattering samples into the grid (races!), invert the loop:
//! every grid point *gathers* from the samples near it, using preprocessed
//! proximal bins. There are no write conflicts at all — each output point
//! is owned by exactly one thread — which is why it suits GPUs. The costs
//! the paper calls out, reproduced here by construction:
//!
//! * every sample is visited by all `(2W)^d` grid points it touches, so
//!   Part 1 work (distance/kernel evaluation) is multiplied by the window
//!   volume rather than amortized per sample — "does not scale with large
//!   convolution window sizes";
//! * sparse grid regions still pay the neighborhood scan.
//!
//! Preprocessing bins samples by their integer grid cell (CSR layout);
//! each output point scans the `(2W+2)^d` surrounding cells.

use nufft_core::grid::Geometry;
use nufft_core::kernel::{beatty_beta, InterpKernel};
use nufft_math::Complex32;
use nufft_parallel::exec::Executor;
use std::time::Instant;

/// Gather-based adjoint convolution for 3D problems.
pub struct GatherAdjoint {
    geo: Geometry<3>,
    kernel: InterpKernel,
    w: f32,
    /// Sample coordinates in grid units.
    coords: Vec<[f32; 3]>,
    /// CSR cell index: `cell_start[c]..cell_start[c+1]` indexes
    /// `cell_samples` for flattened cell `c`.
    cell_start: Vec<u32>,
    cell_samples: Vec<u32>,
    exec: Executor,
    last_conv_seconds: f64,
}

impl GatherAdjoint {
    /// Builds the gather plan (trajectory in ν ∈ [-1/2, 1/2)).
    pub fn new(n: [usize; 3], traj: &[[f64; 3]], alpha: f64, w: f64, threads: usize) -> Self {
        let geo = Geometry::new(n, alpha);
        let kernel = InterpKernel::with_density(
            w,
            beatty_beta(w, alpha),
            nufft_core::kernel::DEFAULT_LUT_DENSITY,
        );
        let coords: Vec<[f32; 3]> = traj
            .iter()
            .map(|p| {
                core::array::from_fn(|d| {
                    assert!((-0.5..0.5).contains(&p[d]), "ν out of range");
                    let mut u = ((p[d] + 0.5) * geo.m[d] as f64) as f32;
                    if u >= geo.m[d] as f32 {
                        u -= geo.m[d] as f32;
                    }
                    u
                })
            })
            .collect();
        // CSR binning by integer cell (counting sort).
        let n_cells = geo.grid_len();
        let cell_of = |c: &[f32; 3]| -> usize {
            let x = (c[0] as usize).min(geo.m[0] - 1);
            let y = (c[1] as usize).min(geo.m[1] - 1);
            let z = (c[2] as usize).min(geo.m[2] - 1);
            (x * geo.m[1] + y) * geo.m[2] + z
        };
        let mut counts = vec![0u32; n_cells + 1];
        for c in &coords {
            counts[cell_of(c) + 1] += 1;
        }
        for i in 0..n_cells {
            counts[i + 1] += counts[i];
        }
        let cell_start = counts;
        let mut fill = cell_start.clone();
        let mut cell_samples = vec![0u32; coords.len()];
        for (p, c) in coords.iter().enumerate() {
            let cell = cell_of(c);
            cell_samples[fill[cell] as usize] = p as u32;
            fill[cell] += 1;
        }
        GatherAdjoint {
            geo,
            kernel,
            w: w as f32,
            coords,
            cell_start,
            cell_samples,
            exec: Executor::new(threads.max(1)),
            last_conv_seconds: 0.0,
        }
    }

    /// Wall time of the last [`GatherAdjoint::convolve`].
    pub fn last_conv_seconds(&self) -> f64 {
        self.last_conv_seconds
    }

    /// Adjoint convolution only: fills `grid` (length `Π M_d`) from the
    /// samples by gathering at every grid point. Race-free by construction.
    ///
    /// # Panics
    /// Panics on length mismatches.
    pub fn convolve(&mut self, samples: &[Complex32], grid: &mut [Complex32]) {
        assert_eq!(samples.len(), self.coords.len(), "sample length mismatch");
        assert_eq!(grid.len(), self.geo.grid_len(), "grid length mismatch");
        let t0 = Instant::now();
        let m = self.geo.m;
        let wrad = self.w;
        let reach = wrad.ceil() as i64 + 1;
        let kernel = &self.kernel;
        let coords = &self.coords;
        let cell_start = &self.cell_start;
        let cell_samples = &self.cell_samples;
        let grid_ptr = grid.as_mut_ptr() as usize;
        let grain = (grid.len() / (8 * self.exec.threads())).max(512);
        // 8 = complex elements per cache line: each worker writes a
        // contiguous `out` block, so aligned boundaries prevent two workers
        // sharing the line at a chunk edge.
        self.exec.parallel_for_aligned(grid.len(), grain, 8, |range, _w| {
            // SAFETY: parallel_for ranges are disjoint.
            let out = unsafe {
                core::slice::from_raw_parts_mut(
                    (grid_ptr as *mut Complex32).add(range.start),
                    range.len(),
                )
            };
            for (slot, flat) in out.iter_mut().zip(range) {
                let gx = (flat / (m[1] * m[2])) as i64;
                let gy = ((flat / m[2]) % m[1]) as i64;
                let gz = (flat % m[2]) as i64;
                let mut acc = Complex32::ZERO;
                // Scan the (2·reach+1)^3 neighborhood of cells (cyclic).
                for cx in -reach..=reach {
                    let nx = (gx + cx).rem_euclid(m[0] as i64) as usize;
                    for cy in -reach..=reach {
                        let ny = (gy + cy).rem_euclid(m[1] as i64) as usize;
                        for cz in -reach..=reach {
                            let nz = (gz + cz).rem_euclid(m[2] as i64) as usize;
                            let cell = (nx * m[1] + ny) * m[2] + nz;
                            let lo = cell_start[cell] as usize;
                            let hi = cell_start[cell + 1] as usize;
                            for &p in &cell_samples[lo..hi] {
                                let c = &coords[p as usize];
                                // Cyclic distances from sample to this
                                // grid point per dimension.
                                let dxw = cyc_dist(c[0], gx as f32, m[0]);
                                if dxw.abs() > wrad {
                                    continue;
                                }
                                let dyw = cyc_dist(c[1], gy as f32, m[1]);
                                if dyw.abs() > wrad {
                                    continue;
                                }
                                let dzw = cyc_dist(c[2], gz as f32, m[2]);
                                if dzw.abs() > wrad {
                                    continue;
                                }
                                let wgt = kernel.eval_lut(dxw)
                                    * kernel.eval_lut(dyw)
                                    * kernel.eval_lut(dzw);
                                acc += samples[p as usize].scale(wgt);
                            }
                        }
                    }
                }
                *slot = acc;
            }
        });
        self.last_conv_seconds = t0.elapsed().as_secs_f64();
    }
}

/// Signed cyclic distance `u − g` wrapped into `(−M/2, M/2]`.
#[inline(always)]
fn cyc_dist(u: f32, g: f32, m: usize) -> f32 {
    let mf = m as f32;
    let mut d = u - g;
    if d > mf * 0.5 {
        d -= mf;
    } else if d < -mf * 0.5 {
        d += mf;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use nufft_core::{NufftConfig, NufftPlan};
    use nufft_math::error::rel_l2_c32;

    #[test]
    fn gather_matches_scatter_convolution() {
        let n = [10usize, 10, 10];
        let traj: Vec<[f64; 3]> = (0..150)
            .map(|i| {
                [
                    ((i as f64 * 0.618) % 1.0) - 0.5,
                    ((i as f64 * 0.414) % 1.0) - 0.5,
                    ((i as f64 * 0.259) % 1.0) - 0.5,
                ]
            })
            .collect();
        let samples: Vec<Complex32> =
            (0..150).map(|i| Complex32::new((i as f32 * 0.3).sin(), 0.4)).collect();

        // Reference: the scatter convolution through the plan's grid.
        // Compare end-to-end adjoint outputs instead of raw grids to share
        // the FFT/scale code: run both adjoints and compare.
        let mut gather = GatherAdjoint::new(n, &traj, 2.0, 2.0, 2);
        let mut grid_g = vec![Complex32::ZERO; 20 * 20 * 20];
        gather.convolve(&samples, &mut grid_g);
        assert!(gather.last_conv_seconds() > 0.0);

        let mut plan =
            NufftPlan::new(n, &traj, NufftConfig { threads: 2, w: 2.0, ..NufftConfig::default() });
        plan.adjoint_convolution_only(&samples);
        // Access the scattered grid indirectly: run the same iFFT+scale on
        // the gather grid by comparing through a fresh adjoint.
        // Simpler: compare the grids directly by re-scattering with the
        // sequential reference.
        let seq_kernel = InterpKernel::with_density(
            2.0,
            beatty_beta(2.0, 2.0),
            nufft_core::kernel::DEFAULT_LUT_DENSITY,
        );
        let mut grid_s = vec![Complex32::ZERO; 20 * 20 * 20];
        for (p, nu) in traj.iter().enumerate() {
            let win: [nufft_core::conv::Window; 3] = core::array::from_fn(|d| {
                let mut u = ((nu[d] + 0.5) * 20.0) as f32;
                if u >= 20.0 {
                    u -= 20.0;
                }
                nufft_core::conv::Window::compute(u, 2.0, &seq_kernel)
            });
            crate::sequential::scatter_scalar(&mut grid_s, &[20, 20, 20], &win, samples[p]);
        }
        let err = rel_l2_c32(&grid_g, &grid_s);
        assert!(err < 1e-4, "gather vs scatter grids differ: {err}");
    }

    #[test]
    fn gather_work_grows_faster_with_w_than_scatter() {
        // The paper's §VI critique, measured: gather time divided by
        // scatter time grows with W.
        let n = [12usize, 12, 12];
        let traj: Vec<[f64; 3]> = (0..2000)
            .map(|i| {
                [
                    ((i as f64 * 0.618) % 1.0) - 0.5,
                    ((i as f64 * 0.414) % 1.0) - 0.5,
                    ((i as f64 * 0.259) % 1.0) - 0.5,
                ]
            })
            .collect();
        let samples = vec![Complex32::ONE; 2000];
        let mut ratios = Vec::new();
        for w in [2.0f64, 4.0] {
            let mut gather = GatherAdjoint::new(n, &traj, 2.0, w, 1);
            let mut grid = vec![Complex32::ZERO; 24 * 24 * 24];
            gather.convolve(&samples, &mut grid);
            let tg = gather.last_conv_seconds();
            let mut plan =
                NufftPlan::new(n, &traj, NufftConfig { threads: 1, w, ..NufftConfig::default() });
            let ts = plan.adjoint_convolution_only(&samples);
            ratios.push(tg / ts);
        }
        // Not asserting exact factors (timing), only that gather is the
        // slower approach at the larger width.
        assert!(ratios[1] > 1.0, "gather should lose to scatter at W=4: ratios {ratios:?}");
    }
}
