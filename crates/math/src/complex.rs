//! Complex number type used across the workspace.
//!
//! The layout is `#[repr(C)]` `(re, im)`, so a `&[Complex32]` can be viewed as
//! an interleaved `&[f32]` of twice the length (and vice versa) — exactly the
//! layout the SIMD convolution kernels and the FFT butterflies operate on.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number over `f32` or `f64`.
///
/// Interleaved-layout compatible: `[Complex<T>; N]` has the same memory layout
/// as `[T; 2*N]` with alternating real and imaginary parts.
#[derive(Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex<T> {
    /// Real part.
    pub re: T,
    /// Imaginary part.
    pub im: T,
}

/// Single-precision complex number, the grid element type of the NUFFT.
pub type Complex32 = Complex<f32>;
/// Double-precision complex number, used in precomputation and oracles.
pub type Complex64 = Complex<f64>;

impl<T: fmt::Debug> fmt::Debug for Complex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?}{:+?}i)", self.re, self.im)
    }
}

impl<T: fmt::Display> fmt::Display for Complex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}+{}i)", self.re, self.im)
    }
}

macro_rules! impl_complex {
    ($t:ty) => {
        impl Complex<$t> {
            /// The additive identity.
            pub const ZERO: Self = Self { re: 0.0, im: 0.0 };
            /// The multiplicative identity.
            pub const ONE: Self = Self { re: 1.0, im: 0.0 };
            /// The imaginary unit.
            pub const I: Self = Self { re: 0.0, im: 1.0 };

            /// Creates a complex number from its rectangular parts.
            #[inline(always)]
            pub const fn new(re: $t, im: $t) -> Self {
                Self { re, im }
            }

            /// Creates a purely real complex number.
            #[inline(always)]
            pub const fn from_re(re: $t) -> Self {
                Self { re, im: 0.0 }
            }

            /// Creates a complex number from polar form `r · e^{iθ}`.
            #[inline]
            pub fn from_polar(r: $t, theta: $t) -> Self {
                let (s, c) = theta.sin_cos();
                Self { re: r * c, im: r * s }
            }

            /// `e^{iθ}` — a unit phasor; the workhorse of DFT twiddles.
            #[inline]
            pub fn cis(theta: $t) -> Self {
                Self::from_polar(1.0, theta)
            }

            /// Complex conjugate.
            #[inline(always)]
            pub fn conj(self) -> Self {
                Self { re: self.re, im: -self.im }
            }

            /// Squared magnitude `re² + im²`.
            #[inline(always)]
            pub fn norm_sqr(self) -> $t {
                self.re * self.re + self.im * self.im
            }

            /// Magnitude `|z|`.
            #[inline]
            pub fn abs(self) -> $t {
                self.norm_sqr().sqrt()
            }

            /// Argument (phase) in `(-π, π]`.
            #[inline]
            pub fn arg(self) -> $t {
                self.im.atan2(self.re)
            }

            /// Multiplication by `i` (a quarter-turn), cheaper than a full mul.
            #[inline(always)]
            pub fn mul_i(self) -> Self {
                Self { re: -self.im, im: self.re }
            }

            /// Multiplication by `-i`.
            #[inline(always)]
            pub fn mul_neg_i(self) -> Self {
                Self { re: self.im, im: -self.re }
            }

            /// Scales both parts by a real factor.
            #[inline(always)]
            pub fn scale(self, s: $t) -> Self {
                Self { re: self.re * s, im: self.im * s }
            }

            /// Reciprocal `1/z`; `z` must be nonzero.
            #[inline]
            pub fn recip(self) -> Self {
                let d = self.norm_sqr();
                Self { re: self.re / d, im: -self.im / d }
            }

            /// Fused multiply-accumulate `self + a*b` written to encourage FMA
            /// contraction by the optimizer.
            #[inline(always)]
            pub fn mul_add(self, a: Self, b: Self) -> Self {
                Self {
                    re: a.re.mul_add(b.re, (-a.im).mul_add(b.im, self.re)),
                    im: a.re.mul_add(b.im, a.im.mul_add(b.re, self.im)),
                }
            }

            /// Complex exponential `e^z`.
            #[inline]
            pub fn exp(self) -> Self {
                Self::from_polar(self.re.exp(), self.im)
            }

            /// Reinterprets a complex slice as its interleaved scalar parts.
            #[inline]
            pub fn as_interleaved(slice: &[Self]) -> &[$t] {
                // SAFETY: Complex<T> is #[repr(C)] { re: T, im: T }, so the
                // layouts of [Complex<T>; n] and [T; 2n] coincide exactly.
                unsafe { core::slice::from_raw_parts(slice.as_ptr().cast(), slice.len() * 2) }
            }

            /// Reinterprets a mutable complex slice as interleaved scalars.
            #[inline]
            pub fn as_interleaved_mut(slice: &mut [Self]) -> &mut [$t] {
                // SAFETY: see `as_interleaved`.
                unsafe {
                    core::slice::from_raw_parts_mut(slice.as_mut_ptr().cast(), slice.len() * 2)
                }
            }

            /// Reinterprets an interleaved scalar slice as complex numbers.
            ///
            /// # Panics
            /// Panics if the length is odd.
            #[inline]
            pub fn from_interleaved(slice: &[$t]) -> &[Self] {
                assert!(slice.len() % 2 == 0, "interleaved slice must have even length");
                // SAFETY: layout equivalence as above; alignment of Complex<T>
                // equals the alignment of T.
                unsafe { core::slice::from_raw_parts(slice.as_ptr().cast(), slice.len() / 2) }
            }
        }

        impl From<$t> for Complex<$t> {
            #[inline]
            fn from(re: $t) -> Self {
                Self::from_re(re)
            }
        }

        impl Add for Complex<$t> {
            type Output = Self;
            #[inline(always)]
            fn add(self, rhs: Self) -> Self {
                Self { re: self.re + rhs.re, im: self.im + rhs.im }
            }
        }

        impl Sub for Complex<$t> {
            type Output = Self;
            #[inline(always)]
            fn sub(self, rhs: Self) -> Self {
                Self { re: self.re - rhs.re, im: self.im - rhs.im }
            }
        }

        impl Mul for Complex<$t> {
            type Output = Self;
            #[inline(always)]
            fn mul(self, rhs: Self) -> Self {
                Self {
                    re: self.re * rhs.re - self.im * rhs.im,
                    im: self.re * rhs.im + self.im * rhs.re,
                }
            }
        }

        impl Mul<$t> for Complex<$t> {
            type Output = Self;
            #[inline(always)]
            fn mul(self, rhs: $t) -> Self {
                self.scale(rhs)
            }
        }

        impl Div for Complex<$t> {
            type Output = Self;
            #[inline]
            // Complex division genuinely is multiplication by the
            // reciprocal; the lint targets copy-paste operator mistakes.
            #[allow(clippy::suspicious_arithmetic_impl)]
            fn div(self, rhs: Self) -> Self {
                self * rhs.recip()
            }
        }

        impl Div<$t> for Complex<$t> {
            type Output = Self;
            #[inline]
            fn div(self, rhs: $t) -> Self {
                Self { re: self.re / rhs, im: self.im / rhs }
            }
        }

        impl Neg for Complex<$t> {
            type Output = Self;
            #[inline(always)]
            fn neg(self) -> Self {
                Self { re: -self.re, im: -self.im }
            }
        }

        impl AddAssign for Complex<$t> {
            #[inline(always)]
            fn add_assign(&mut self, rhs: Self) {
                self.re += rhs.re;
                self.im += rhs.im;
            }
        }

        impl SubAssign for Complex<$t> {
            #[inline(always)]
            fn sub_assign(&mut self, rhs: Self) {
                self.re -= rhs.re;
                self.im -= rhs.im;
            }
        }

        impl MulAssign for Complex<$t> {
            #[inline(always)]
            fn mul_assign(&mut self, rhs: Self) {
                *self = *self * rhs;
            }
        }

        impl MulAssign<$t> for Complex<$t> {
            #[inline(always)]
            fn mul_assign(&mut self, rhs: $t) {
                self.re *= rhs;
                self.im *= rhs;
            }
        }

        impl DivAssign<$t> for Complex<$t> {
            #[inline(always)]
            fn div_assign(&mut self, rhs: $t) {
                self.re /= rhs;
                self.im /= rhs;
            }
        }

        impl Sum for Complex<$t> {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                iter.fold(Self::ZERO, |a, b| a + b)
            }
        }
    };
}

impl_complex!(f32);
impl_complex!(f64);

impl Complex32 {
    /// Widens to double precision.
    #[inline(always)]
    pub fn to_f64(self) -> Complex64 {
        Complex64 { re: self.re as f64, im: self.im as f64 }
    }
}

impl Complex64 {
    /// Narrows to single precision.
    #[inline(always)]
    pub fn to_f32(self) -> Complex32 {
        Complex32 { re: self.re as f32, im: self.im as f32 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(3.0, -4.0);
        assert_eq!(z + Complex64::ZERO, z);
        assert_eq!(z * Complex64::ONE, z);
        assert_eq!(z - z, Complex64::ZERO);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(-z, Complex64::new(-3.0, 4.0));
    }

    #[test]
    fn mul_matches_definition() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-3.0, 0.5);
        let p = a * b;
        assert_eq!(p.re, 1.0 * -3.0 - 2.0 * 0.5);
        assert_eq!(p.im, 1.0 * 0.5 + 2.0 * -3.0);
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex64::new(0.7, -1.3);
        let b = Complex64::new(2.5, 4.0);
        assert!(close(a * b / b, a, 1e-12));
        assert!(close(b.recip() * b, Complex64::ONE, 1e-12));
    }

    #[test]
    fn mul_i_is_quarter_turn() {
        let z = Complex64::new(2.0, 5.0);
        assert_eq!(z.mul_i(), z * Complex64::I);
        assert_eq!(z.mul_neg_i(), z * -Complex64::I);
        assert_eq!(z.mul_i().mul_i(), -z);
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex64::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn cis_is_unit_circle() {
        for k in 0..16 {
            let th = k as f64 * core::f64::consts::TAU / 16.0;
            assert!((Complex64::cis(th).abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn conj_properties() {
        let a = Complex64::new(1.5, -2.5);
        let b = Complex64::new(-0.25, 8.0);
        assert_eq!((a * b).conj(), a.conj() * b.conj());
        assert_eq!((a + b).conj(), a.conj() + b.conj());
        assert_eq!((a * a.conj()).im, 0.0);
    }

    #[test]
    fn exp_matches_euler() {
        let z = Complex64::new(0.0, core::f64::consts::PI);
        assert!(close(z.exp(), Complex64::new(-1.0, 0.0), 1e-12));
        let w = Complex64::new(1.0, 0.0);
        assert!(close(w.exp(), Complex64::from_re(core::f64::consts::E), 1e-12));
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let acc = Complex64::new(0.1, 0.2);
        let a = Complex64::new(-1.0, 3.0);
        let b = Complex64::new(2.0, -0.5);
        assert!(close(acc.mul_add(a, b), acc + a * b, 1e-12));
    }

    #[test]
    fn interleaved_views_round_trip() {
        let v = vec![Complex32::new(1.0, 2.0), Complex32::new(3.0, 4.0)];
        let flat = Complex32::as_interleaved(&v);
        assert_eq!(flat, &[1.0, 2.0, 3.0, 4.0]);
        let back = Complex32::from_interleaved(flat);
        assert_eq!(back, &v[..]);
    }

    #[test]
    fn interleaved_mut_writes_through() {
        let mut v = vec![Complex32::ZERO; 2];
        Complex32::as_interleaved_mut(&mut v)[3] = 7.0;
        assert_eq!(v[1].im, 7.0);
    }

    #[test]
    #[should_panic(expected = "even length")]
    fn from_interleaved_rejects_odd() {
        let _ = Complex32::from_interleaved(&[1.0, 2.0, 3.0]);
    }

    #[test]
    fn sum_folds() {
        let v = [Complex64::new(1.0, 1.0), Complex64::new(2.0, -3.0)];
        let s: Complex64 = v.iter().copied().sum();
        assert_eq!(s, Complex64::new(3.0, -2.0));
    }

    #[test]
    fn precision_conversions() {
        let z = Complex32::new(1.5, -2.5);
        assert_eq!(z.to_f64().to_f32(), z);
    }
}
