//! Small statistics helpers for benchmark reporting.

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// Numerically stable for long benchmark runs; used by the repro harness to
/// summarize per-iteration timings.
#[derive(Clone, Copy, Debug, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean; 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance; 0 for fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; +∞ if empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; −∞ if empty.
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Returns the `q`-quantile (0 ≤ q ≤ 1) of `data` by linear interpolation.
///
/// Sorts a copy; intended for small benchmark sample sets, not hot paths.
///
/// # Panics
/// Panics if `data` is empty or `q` is outside `[0, 1]`.
pub fn quantile(data: &[f64], q: f64) -> f64 {
    assert!(!data.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile fraction out of range");
    let mut v = data.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    v[lo] + (v[hi] - v[lo]) * frac
}

/// Median shorthand for [`quantile`] at 0.5.
pub fn median(data: &[f64]) -> f64 {
    quantile(data, 0.5)
}

/// Geometric mean of strictly positive data (used for "average speedup over
/// datasets" summaries, as in the paper's cross-dataset averages).
///
/// # Panics
/// Panics if `data` is empty or any element is not strictly positive.
pub fn geomean(data: &[f64]) -> f64 {
    assert!(!data.is_empty(), "geomean of empty slice");
    let mut acc = 0.0;
    for &x in data {
        assert!(x > 0.0, "geomean requires positive data, got {x}");
        acc += x.ln();
    }
    (acc / data.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_closed_form() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Sum of squared deviations = 32, unbiased variance = 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn welford_empty_and_single() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        w.push(3.5);
        assert_eq!(w.mean(), 3.5);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.stddev(), 0.0);
    }

    #[test]
    fn quantile_interpolates() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&data, 0.0), 1.0);
        assert_eq!(quantile(&data, 1.0), 4.0);
        assert_eq!(median(&data), 2.5);
        assert_eq!(quantile(&data, 1.0 / 3.0), 2.0);
    }

    #[test]
    fn quantile_handles_unsorted_input() {
        let data = [9.0, 1.0, 5.0];
        assert_eq!(median(&data), 5.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_empty_panics() {
        let _ = quantile(&[], 0.5);
    }

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        let _ = geomean(&[1.0, 0.0]);
    }
}
