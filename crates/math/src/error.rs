//! Error metrics between complex signals.
//!
//! Every accuracy experiment in the suite (NUFFT vs direct DTFT, SIMD vs
//! scalar kernels, FFT vs naive DFT) reports errors through these functions so
//! that tolerances are comparable across crates.

use crate::complex::{Complex32, Complex64};

/// Relative L2 error `‖a − b‖₂ / ‖b‖₂` between two complex signals, where `b`
/// is the reference. Returns the absolute L2 norm of `a` if `b` is all zeros.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn rel_l2_c64(a: &[Complex64], b: &[Complex64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let mut num = 0.0;
    let mut den = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        num += (x - y).norm_sqr();
        den += y.norm_sqr();
    }
    if den == 0.0 {
        num.sqrt()
    } else {
        (num / den).sqrt()
    }
}

/// Single-precision variant of [`rel_l2_c64`]; accumulation is in `f64`.
pub fn rel_l2_c32(a: &[Complex32], b: &[Complex32]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        num += (x.to_f64() - y.to_f64()).norm_sqr();
        den += y.to_f64().norm_sqr();
    }
    if den == 0.0 {
        num.sqrt()
    } else {
        (num / den).sqrt()
    }
}

/// Mixed-precision relative L2 error: single-precision result `a` against a
/// double-precision oracle `b`.
pub fn rel_l2_mixed(a: &[Complex32], b: &[Complex64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let mut num = 0.0;
    let mut den = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        num += (x.to_f64() - y).norm_sqr();
        den += y.norm_sqr();
    }
    if den == 0.0 {
        num.sqrt()
    } else {
        (num / den).sqrt()
    }
}

/// Maximum pointwise magnitude error `max |aᵢ − bᵢ|` (absolute L∞).
pub fn linf_c64(a: &[Complex64], b: &[Complex64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter().zip(b).map(|(&x, &y)| (x - y).abs()).fold(0.0, f64::max)
}

/// Maximum pointwise magnitude error for single-precision signals.
pub fn linf_c32(a: &[Complex32], b: &[Complex32]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter().zip(b).map(|(&x, &y)| (x.to_f64() - y.to_f64()).abs()).fold(0.0, f64::max)
}

/// Relative L2 error between real slices (used for grids of weights).
pub fn rel_l2_f64(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    let mut num = 0.0;
    let mut den = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        num += (x - y) * (x - y);
        den += y * y;
    }
    if den == 0.0 {
        num.sqrt()
    } else {
        (num / den).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_signals_have_zero_error() {
        let a = vec![Complex64::new(1.0, -2.0); 16];
        assert_eq!(rel_l2_c64(&a, &a), 0.0);
        assert_eq!(linf_c64(&a, &a), 0.0);
    }

    #[test]
    fn scaled_signal_has_expected_rel_error() {
        let b: Vec<Complex64> = (0..32).map(|i| Complex64::new(i as f64, -(i as f64))).collect();
        let a: Vec<Complex64> = b.iter().map(|&z| z.scale(1.01)).collect();
        let e = rel_l2_c64(&a, &b);
        assert!((e - 0.01).abs() < 1e-12, "expected 1% error, got {e}");
    }

    #[test]
    fn zero_reference_falls_back_to_absolute() {
        let b = vec![Complex64::ZERO; 4];
        let a = vec![Complex64::new(3.0, 4.0); 4];
        assert!((rel_l2_c64(&a, &b) - 10.0).abs() < 1e-12); // sqrt(4·25)
    }

    #[test]
    fn linf_picks_worst_point() {
        let b = vec![Complex64::ZERO; 3];
        let a = vec![Complex64::new(0.1, 0.0), Complex64::new(0.0, -0.5), Complex64::new(0.2, 0.0)];
        assert_eq!(linf_c64(&a, &b), 0.5);
    }

    #[test]
    fn mixed_precision_consistency() {
        let b64: Vec<Complex64> =
            (1..9).map(|i| Complex64::new(i as f64, 0.5 * i as f64)).collect();
        let a32: Vec<Complex32> = b64.iter().map(|z| z.to_f32()).collect();
        // Round-tripping through f32 should give ~1e-8 relative error, not more.
        let e = rel_l2_mixed(&a32, &b64);
        assert!(e < 1e-6, "unexpected mixed-precision error {e}");
    }

    #[test]
    fn real_metric_matches_complex_metric() {
        let b = [1.0, 2.0, 3.0];
        let a = [1.1, 2.0, 3.0];
        let want = (0.01f64 / 14.0).sqrt();
        assert!((rel_l2_f64(&a, &b) - want).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = rel_l2_c64(&[Complex64::ZERO], &[]);
    }
}
