//! Numeric substrate for the NUFFT suite.
//!
//! This crate provides the small set of numerical building blocks the rest of
//! the workspace is written against:
//!
//! * [`Complex`] — a `#[repr(C)]` complex number usable directly over
//!   interleaved `(re, im)` buffers, with [`Complex32`]/[`Complex64`] aliases;
//! * [`bessel`] — modified Bessel functions `I0`/`I1` needed by the
//!   Kaiser–Bessel interpolation kernel;
//! * [`special`] — `sinh(x)/x`-style shape functions used by the closed-form
//!   Fourier transform of the Kaiser–Bessel window, plus `sinc`;
//! * [`quad`] — Gauss–Legendre quadrature rules for kernels whose continuous
//!   Fourier transform has no closed form (the ES kernel layer);
//! * [`stats`] — streaming mean/variance and percentiles for benchmark
//!   reporting;
//! * [`error`] — relative L2/L∞ error metrics between complex signals.
//!
//! Everything here is dependency-free and deliberately boring: correctness of
//! the NUFFT accuracy experiments rests on these primitives.

pub mod bessel;
pub mod complex;
pub mod error;
pub mod quad;
pub mod special;
pub mod stats;

pub use complex::{Complex, Complex32, Complex64};
