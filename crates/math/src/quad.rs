//! Gauss–Legendre quadrature nodes and weights.
//!
//! The "exponential of semicircle" kernel has no closed-form continuous
//! Fourier transform, so the kernel layer tabulates `Â(ξ)` by numeric
//! quadrature at plan-build time (the same approach FINUFFT takes). An
//! `n`-node Gauss–Legendre rule integrates polynomials up to degree
//! `2n − 1` exactly and converges geometrically for analytic integrands;
//! the ES kernel's square-root derivative singularity at the support edge
//! is damped by the kernel value there (`e^{−β}`, i.e. at the accuracy
//! floor already), so a fixed modest node count serves every operating
//! point.
//!
//! Nodes are the roots of the Legendre polynomial `P_n`, found by Newton
//! iteration from the Chebyshev-root initial guesses; weights are
//! `2 / ((1 − x²)·P_n'(x)²)`. Everything is `f64` and dependency-free.

/// Returns the `n` Gauss–Legendre `(node, weight)` pairs on `[-1, 1]`,
/// nodes in ascending order.
///
/// # Panics
/// Panics if `n == 0`.
pub fn gauss_legendre(n: usize) -> Vec<(f64, f64)> {
    assert!(n > 0, "quadrature rule needs at least one node");
    let mut out = vec![(0.0f64, 0.0f64); n];
    let nf = n as f64;
    for i in 0..n.div_ceil(2) {
        // Chebyshev-root initial guess for the i-th root from the top.
        let mut x = (core::f64::consts::PI * (i as f64 + 0.75) / (nf + 0.5)).cos();
        let mut dp = 0.0;
        for _ in 0..100 {
            let (p, d) = legendre_pd(n, x);
            dp = d;
            let dx = p / d;
            x -= dx;
            if dx.abs() < 1e-15 {
                let (p2, d2) = legendre_pd(n, x);
                dp = d2;
                x -= p2 / d2; // one polishing step at convergence
                break;
            }
        }
        let w = 2.0 / ((1.0 - x * x) * dp * dp);
        out[n - 1 - i] = (x, w);
        out[i] = (-x, w);
    }
    // Odd n: the middle node is exactly 0 (set by the symmetric write);
    // enforce the sign bit so callers see +0.0.
    if n % 2 == 1 {
        out[n / 2].0 = 0.0;
    }
    out
}

/// Returns the `n` Gauss–Legendre `(node, weight)` pairs mapped to `[a, b]`.
///
/// # Panics
/// Panics if `n == 0` or `b ≤ a`.
pub fn gauss_legendre_on(n: usize, a: f64, b: f64) -> Vec<(f64, f64)> {
    assert!(b > a, "integration interval must be nonempty");
    let half = 0.5 * (b - a);
    let mid = 0.5 * (a + b);
    gauss_legendre(n).into_iter().map(|(x, w)| (mid + half * x, half * w)).collect()
}

/// `(P_n(x), P_n'(x))` by the three-term recurrence.
fn legendre_pd(n: usize, x: f64) -> (f64, f64) {
    let mut p0 = 1.0f64; // P_{k-1}
    let mut p1 = x; // P_k
    for k in 1..n {
        let kf = k as f64;
        let p2 = ((2.0 * kf + 1.0) * x * p1 - kf * p0) / (kf + 1.0);
        p0 = p1;
        p1 = p2;
    }
    // (x² − 1)·P_n'(x) = n·(x·P_n(x) − P_{n−1}(x)).
    let d = n as f64 * (p0 - x * p1) / (1.0 - x * x);
    (p1, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn integrate(rule: &[(f64, f64)], f: impl Fn(f64) -> f64) -> f64 {
        rule.iter().map(|&(x, w)| w * f(x)).sum()
    }

    #[test]
    fn weights_sum_to_interval_length() {
        for n in [1, 2, 3, 8, 33, 64] {
            let s: f64 = gauss_legendre(n).iter().map(|&(_, w)| w).sum();
            assert!((s - 2.0).abs() < 1e-13, "n={n}: Σw = {s}");
        }
    }

    #[test]
    fn exact_for_polynomials_up_to_2n_minus_1() {
        let rule = gauss_legendre(5);
        // x^9 integrates to 0 by symmetry, x^8 to 2/9.
        assert!(integrate(&rule, |x| x.powi(9)).abs() < 1e-14);
        assert!((integrate(&rule, |x| x.powi(8)) - 2.0 / 9.0).abs() < 1e-14);
        // Degree 2n = 10 is the first non-exact degree: the rule has a
        // definite (positive) error there.
        let e10 = integrate(&rule, |x| x.powi(10)) - 2.0 / 11.0;
        assert!(e10.abs() > 1e-9, "degree-2n error unexpectedly small: {e10}");
    }

    #[test]
    fn oscillatory_integrand_on_mapped_interval() {
        // ∫₀^8 cos(4x) dx = sin(32)/4.
        let rule = gauss_legendre_on(64, 0.0, 8.0);
        let got = integrate(&rule, |x| (4.0 * x).cos());
        let want = (32.0f64).sin() / 4.0;
        assert!((got - want).abs() < 1e-12, "{got} vs {want}");
    }

    #[test]
    fn nodes_are_sorted_and_interior() {
        let rule = gauss_legendre(33);
        for pair in rule.windows(2) {
            assert!(pair[0].0 < pair[1].0, "nodes out of order");
        }
        assert!(rule[0].0 > -1.0 && rule[32].0 < 1.0);
        assert_eq!(rule[16].0, 0.0, "odd rule has an exact center node");
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = gauss_legendre(0);
    }
}
