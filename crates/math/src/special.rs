//! Shape functions appearing in NUFFT analysis.
//!
//! The Fourier transform of the Kaiser–Bessel window of half-width `W`
//! and shape `β` evaluated at (normalized angular) position `t` is
//! proportional to `sinhc(√(β² − t²))`, where the argument turns imaginary
//! for `|t| > β` and the hyperbolic sine becomes a circular sine. The
//! roll-off correction in `nufft-core::scale` is built on [`kb_ft_shape`].

/// `sinh(x)/x`, continuous at zero (`sinhc(0) = 1`).
pub fn sinhc(x: f64) -> f64 {
    if x.abs() < 1e-5 {
        // Taylor: 1 + x²/6 + x⁴/120.
        let x2 = x * x;
        1.0 + x2 / 6.0 + x2 * x2 / 120.0
    } else {
        x.sinh() / x
    }
}

/// `sin(x)/x`, continuous at zero (`sinc(0) = 1`). Unnormalized sinc.
pub fn sinc(x: f64) -> f64 {
    if x.abs() < 1e-5 {
        let x2 = x * x;
        1.0 - x2 / 6.0 + x2 * x2 / 120.0
    } else {
        x.sin() / x
    }
}

/// Normalized sinc `sin(πx)/(πx)`, the Fourier transform of a unit box.
pub fn sinc_pi(x: f64) -> f64 {
    sinc(core::f64::consts::PI * x)
}

/// The Kaiser–Bessel Fourier-transform shape: `sinhc(√(β² − t²))`.
///
/// Analytically continued across `|t| = β`: for `t² > β²` the square root is
/// imaginary and `sinh(iy)/(iy) = sin(y)/y`, so the function transitions
/// smoothly into a decaying oscillation. `t` is the kernel's conjugate-domain
/// coordinate `2πWx/M` (see `nufft-core::scale`).
pub fn kb_ft_shape(beta: f64, t: f64) -> f64 {
    let d = beta * beta - t * t;
    if d >= 0.0 {
        sinhc(d.sqrt())
    } else {
        sinc((-d).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::f64::consts::PI;

    #[test]
    fn sinhc_at_zero_and_small() {
        assert_eq!(sinhc(0.0), 1.0);
        // Near the Taylor/direct switch the two branches must agree.
        let a = sinhc(9.99e-6);
        let b = sinhc(1.01e-5);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn sinhc_matches_direct_formula() {
        for &x in &[0.1, 1.0, 3.0, 10.0] {
            assert!((sinhc(x) - x.sinh() / x).abs() < 1e-14 * x.sinh().abs());
        }
    }

    #[test]
    fn sinhc_is_even() {
        for &x in &[0.3, 2.0, 7.0] {
            assert_eq!(sinhc(x), sinhc(-x));
        }
    }

    #[test]
    fn sinc_zeros_at_multiples_of_pi() {
        for k in 1..5 {
            assert!(sinc(k as f64 * PI).abs() < 1e-15);
        }
        assert_eq!(sinc(0.0), 1.0);
    }

    #[test]
    fn sinc_pi_is_one_at_zero_and_zero_at_integers() {
        assert_eq!(sinc_pi(0.0), 1.0);
        for k in 1..6 {
            assert!(sinc_pi(k as f64).abs() < 1e-14);
        }
    }

    #[test]
    fn kb_ft_shape_continuous_across_beta() {
        let beta = 11.5;
        // Around |t| = β the function behaves like 1 + (β²−t²)/6, so moving t
        // by 1e-7 changes the value by ~β·1e-7/3; the branches themselves
        // must agree to that order (no jump).
        let lo = kb_ft_shape(beta, beta - 1e-7);
        let hi = kb_ft_shape(beta, beta + 1e-7);
        assert!((lo - hi).abs() < 1e-6, "discontinuity at |t| = beta: {lo} vs {hi}");
        assert!((kb_ft_shape(beta, beta) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kb_ft_shape_peaks_at_center() {
        let beta = 13.9;
        let center = kb_ft_shape(beta, 0.0);
        for &t in &[1.0, 5.0, beta, beta * 1.5, beta * 3.0] {
            assert!(kb_ft_shape(beta, t) < center);
        }
    }

    #[test]
    fn kb_ft_shape_decays_past_beta() {
        // In the oscillatory regime the envelope decays like 1/t.
        let beta = 6.0;
        let near = kb_ft_shape(beta, beta + 2.0).abs();
        assert!(near < 1.0);
    }
}
