//! `nufft-testkit` — the workspace's hermetic test substrate.
//!
//! The tier-1 gate (`cargo build --release --offline && cargo test -q
//! --offline`) must pass with **zero external dependencies**, so the three
//! things the workspace used to pull from crates.io live here instead:
//!
//! * [`rng`] — a deterministic seedable PRNG (SplitMix64 seeding, a
//!   xoshiro256++ core) with uniform / Gaussian / complex-vector
//!   generators. Replaces `rand` for trajectory generation, dataset
//!   synthesis and test inputs; every stream is a pure function of its
//!   64-bit seed.
//! * [`prop`] — a property-testing harness ([`prop::prop_check`]) with
//!   per-case derived seeds, counterexample **seed replay** via the
//!   `NUFFT_PROP_SEED` environment variable, and greedy size shrinking.
//!   Replaces `proptest`.
//! * [`bench`] — a micro-benchmark harness (warmup, batch auto-sizing,
//!   median/p10/p90, JSON-lines output into `results/`). Replaces
//!   `criterion` for the `crates/bench/benches/*` entrypoints.
//!
//! Seeds are part of the experiment definition: EXPERIMENTS.md datasets
//! name the seed each trajectory was generated from, and a failing property
//! test prints the seed that reproduces it (see DESIGN.md, "Hermetic
//! testing").

pub mod alloc;
pub mod bench;
pub mod prop;
pub mod rng;

pub use prop::prop_check;
pub use rng::Rng;
