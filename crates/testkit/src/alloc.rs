//! A counting global allocator for zero-allocation steady-state tests.
//!
//! The plan layer's contract is that repeated operator applies perform no
//! heap allocation (scratch arenas are hoisted to plan build — see
//! `nufft-core::plan` and `nufft-parallel::scratch`). Asserting "no
//! allocation" needs instrumentation below the code under test:
//! [`CountingAlloc`] wraps [`std::alloc::System`] and counts every
//! allocation, deallocation and byte from *any* thread.
//!
//! Usage (one per test binary — global allocators are process-wide):
//!
//! ```ignore
//! use nufft_testkit::alloc::CountingAlloc;
//!
//! #[global_allocator]
//! static ALLOC: CountingAlloc = CountingAlloc::new();
//!
//! #[test]
//! fn steady_state_is_allocation_free() {
//!     warm_up();                      // first applies may allocate
//!     let before = ALLOC.snapshot();
//!     apply_operators();              // steady state under test
//!     let after = ALLOC.snapshot();
//!     assert_eq!(after.allocs, before.allocs);
//! }
//! ```
//!
//! Counters are relaxed atomics: the harness only compares totals from the
//! coordinating test thread after worker threads have joined, so no
//! ordering stronger than the join itself is needed.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Point-in-time allocator counters (monotonic since process start).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Number of allocation calls (`alloc` + `realloc`).
    pub allocs: u64,
    /// Number of deallocation calls.
    pub deallocs: u64,
    /// Total bytes requested by allocation calls.
    pub bytes: u64,
}

impl AllocSnapshot {
    /// Counter deltas `self - earlier` (saturating, for safety against
    /// misuse — counters are monotonic so deltas are exact in practice).
    pub fn since(&self, earlier: &AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            deallocs: self.deallocs.saturating_sub(earlier.deallocs),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }
}

/// A [`GlobalAlloc`] that forwards to [`System`] and counts traffic.
pub struct CountingAlloc {
    allocs: AtomicU64,
    deallocs: AtomicU64,
    bytes: AtomicU64,
}

impl CountingAlloc {
    /// A fresh zero-count allocator (const: usable in `static` position).
    pub const fn new() -> Self {
        CountingAlloc {
            allocs: AtomicU64::new(0),
            deallocs: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
        }
    }

    /// Current counter values.
    pub fn snapshot(&self) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs.load(Ordering::Relaxed),
            deallocs: self.deallocs.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: forwards verbatim to `System`, which upholds the `GlobalAlloc`
// contract; the added relaxed counter updates have no allocation behavior.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(layout.size() as u64, Ordering::Relaxed);
        // SAFETY: same layout contract as ours.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.deallocs.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout contract as ours.
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(new_size as u64, Ordering::Relaxed);
        // SAFETY: same layout contract as ours.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Not registered as the global allocator here (the test binary keeps
    // the default); exercise the trait methods directly.
    #[test]
    fn counts_alloc_and_dealloc() {
        let a = CountingAlloc::new();
        let layout = Layout::from_size_align(64, 8).unwrap();
        // SAFETY: valid layout; freed below with the same layout.
        let p = unsafe { a.alloc(layout) };
        assert!(!p.is_null());
        let s1 = a.snapshot();
        assert_eq!(s1.allocs, 1);
        assert_eq!(s1.bytes, 64);
        assert_eq!(s1.deallocs, 0);
        // SAFETY: allocated above with this layout.
        unsafe { a.dealloc(p, layout) };
        let s2 = a.snapshot();
        assert_eq!(s2.deallocs, 1);
        let d = s2.since(&s1);
        assert_eq!(d.allocs, 0);
        assert_eq!(d.deallocs, 1);
    }
}
