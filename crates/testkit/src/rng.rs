//! Deterministic seedable PRNG: SplitMix64 seeding feeding a xoshiro256++
//! core.
//!
//! Every stream is a pure function of its 64-bit seed — no OS entropy, no
//! global state — so any test, trajectory or benchmark input can be replayed
//! bit-exactly from the seed printed in a failure message. The generator is
//! the same algorithm family `rand::rngs::SmallRng` used on 64-bit targets
//! (xoshiro256++ seeded via SplitMix64), chosen for its quality/speed and so
//! the statistical character of generated datasets is unchanged by the
//! hermetic port.

use core::ops::Range;
use nufft_math::Complex32;

/// One SplitMix64 step: advances `state` and returns the next output.
///
/// Used both to expand a 64-bit seed into the 256-bit xoshiro state and to
/// derive independent per-case seeds in the property harness.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ generator.
///
/// `shrink` (set by the property harness) geometrically narrows every
/// size-like range drawn through [`Rng::gen_usize`], which is how
/// counterexamples get smaller without changing the replay protocol: the
/// same seed plus a shrink level fully determines the generated inputs.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
    shrink: u32,
}

impl Rng {
    /// Creates a generator whose 256-bit state is expanded from `seed` with
    /// SplitMix64 (never all-zero, per the xoshiro authors' guidance).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Rng { s, shrink: 0 }
    }

    /// Seeds a generator that additionally shrinks size-like draws by
    /// `shrink` halvings (see [`Rng::gen_usize`]).
    pub fn with_shrink(seed: u64, shrink: u32) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        rng.shrink = shrink;
        rng
    }

    /// The shrink level this generator was created with.
    pub fn shrink_level(&self) -> u32 {
        self.shrink
    }

    /// Next 64 raw bits (xoshiro256++ output function).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Derives an independent child stream (e.g. one per worker or per
    /// dataset slice) without correlating with further draws from `self`.
    pub fn fork(&mut self) -> Rng {
        let mut rng = Rng::seed_from_u64(self.next_u64());
        rng.shrink = self.shrink;
        rng
    }

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    #[inline]
    pub fn gen_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in the half-open `range`.
    #[inline]
    pub fn gen_f64(&mut self, range: Range<f64>) -> f64 {
        debug_assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        let v = range.start + self.gen_unit_f64() * span;
        // FP rounding can push start + u·span onto end itself; keep the
        // half-open contract exact.
        if v >= range.end {
            range.start + span * (1.0 - f64::EPSILON)
        } else {
            v
        }
    }

    /// Uniform `f32` in the half-open `range`.
    #[inline]
    pub fn gen_f32(&mut self, range: Range<f32>) -> f32 {
        self.gen_f64(range.start as f64..range.end as f64) as f32
    }

    /// Uniform `usize` in the half-open `range`, narrowed toward
    /// `range.start` by the shrink level: each level halves the span (never
    /// below 1), so a shrunk replay generates the smallest sizes first.
    #[inline]
    pub fn gen_usize(&mut self, range: Range<usize>) -> usize {
        debug_assert!(range.start < range.end, "empty range");
        let mut span = (range.end - range.start) as u64;
        span = (span >> self.shrink.min(63)).max(1);
        range.start + (self.next_u64() % span) as usize
    }

    /// Fair coin.
    #[inline]
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 0
    }

    /// Standard normal via Box–Muller (mean 0, standard deviation 1).
    #[inline]
    pub fn gen_gaussian(&mut self) -> f64 {
        let u1 = self.gen_f64(1e-12..1.0);
        let u2 = self.gen_f64(0.0..core::f64::consts::TAU);
        (-2.0 * u1.ln()).sqrt() * u2.cos()
    }

    /// One complex value with each component uniform in `[-amp, amp)`.
    #[inline]
    pub fn gen_c32(&mut self, amp: f32) -> Complex32 {
        let re = self.gen_f32(-amp..amp);
        let im = self.gen_f32(-amp..amp);
        Complex32::new(re, im)
    }

    /// Complex vector with components uniform in `[-amp, amp)`.
    pub fn gen_c32_vec(&mut self, len: usize, amp: f32) -> Vec<Complex32> {
        (0..len).map(|_| self.gen_c32(amp)).collect()
    }

    /// Real vector with entries uniform in `range`.
    pub fn gen_f32_vec(&mut self, len: usize, range: Range<f32>) -> Vec<f32> {
        (0..len).map(|_| self.gen_f32(range.clone())).collect()
    }

    /// `len` D-dimensional points with every component uniform in `range` —
    /// the arbitrary-trajectory generator the NUFFT property tests use.
    pub fn gen_points<const D: usize>(&mut self, len: usize, range: Range<f64>) -> Vec<[f64; D]> {
        (0..len).map(|_| core::array::from_fn(|_| self.gen_f64(range.clone()))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs of xoshiro256++ from the state {1, 2, 3, 4}, per the
        // reference implementation by Blackman & Vigna.
        let mut rng = Rng { s: [1, 2, 3, 4], shrink: 0 };
        let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(got, vec![41943041, 58720359, 3588806011781223, 3591011842654386]);
    }

    #[test]
    fn splitmix_reference_vector() {
        // SplitMix64 outputs for seed 0, per the reference implementation.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220A8397B1DCDAF);
        assert_eq!(splitmix64(&mut s), 0x6E789E6AA1B965F4);
        assert_eq!(splitmix64(&mut s), 0x06C45D188009454F);
    }

    #[test]
    fn unit_f64_stays_in_band() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranged_draws_respect_bounds() {
        let mut rng = Rng::seed_from_u64(11);
        for _ in 0..10_000 {
            let v = rng.gen_f64(-0.5..0.5);
            assert!((-0.5..0.5).contains(&v));
            let u = rng.gen_usize(3..17);
            assert!((3..17).contains(&u));
        }
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = Rng::seed_from_u64(13);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.gen_gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn shrink_narrows_size_draws_toward_minimum() {
        let seed = 99;
        let wide: Vec<usize> =
            (0..64).scan(Rng::seed_from_u64(seed), |r, _| Some(r.gen_usize(1..1025))).collect();
        let narrow: Vec<usize> =
            (0..64).scan(Rng::with_shrink(seed, 8), |r, _| Some(r.gen_usize(1..1025))).collect();
        assert!(narrow.iter().max() < wide.iter().max());
        assert!(narrow.iter().all(|&v| v <= 4)); // 1024 >> 8 = 4
                                                 // Full shrink collapses to the minimum.
        let mut floor = Rng::with_shrink(seed, 32);
        assert_eq!(floor.gen_usize(5..1000), 5);
    }

    #[test]
    fn fork_decorrelates() {
        let mut parent = Rng::seed_from_u64(3);
        let mut child = parent.fork();
        let a: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        assert_ne!(a, b);
    }
}
