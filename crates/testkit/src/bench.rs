//! A `std`-only micro-benchmark harness (the workspace's Criterion
//! replacement).
//!
//! Usage mirrors the Criterion group API closely enough that the bench
//! entrypoints port mechanically:
//!
//! ```no_run
//! use nufft_testkit::bench::{black_box, BenchGroup};
//!
//! let mut g = BenchGroup::new("fft_1d");
//! g.throughput(256);
//! g.bench_function("c2c_256", |b| b.iter(|| black_box(2 + 2)));
//! g.finish();
//! ```
//!
//! Each `bench_function` warms up, auto-sizes an iteration batch so one
//! timed sample costs ≈ `measurement_time / samples`, records per-iteration
//! times for every sample, and reports **median / p10 / p90** nanoseconds.
//! Results are printed as an aligned table and appended as JSON lines to
//! `results/benchmarks.jsonl` under the repository root (override the
//! directory with `NUFFT_BENCH_OUT`; set `NUFFT_BENCH_FAST=1` for a
//! smoke-test run with minimal warmup and samples).

pub use std::hint::black_box;

use std::io::Write as _;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Per-sample timing driver handed to the bench closure.
pub struct Bencher {
    warmup: Duration,
    measurement: Duration,
    samples: usize,
    /// Median / p10 / p90 per-iteration nanoseconds, filled by `iter`.
    stats: Option<Stats>,
}

/// Summary statistics of one benchmark, in nanoseconds per iteration.
#[derive(Clone, Copy, Debug)]
pub struct Stats {
    /// Median per-iteration time.
    pub median_ns: f64,
    /// 10th percentile.
    pub p10_ns: f64,
    /// 90th percentile.
    pub p90_ns: f64,
    /// Total iterations measured (excluding warmup).
    pub iters: u64,
    /// Number of timed samples.
    pub samples: usize,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

impl Bencher {
    /// Runs `routine` under the harness: warmup, batch sizing, then timed
    /// samples. Call exactly once per `bench_function` closure.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warmup: run until the warmup budget is spent, measuring the rough
        // per-iteration cost for batch sizing.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warmup || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Size one sample's batch so `samples` batches fill the measurement
        // budget; at least 1 iteration per batch.
        let target_sample = self.measurement.as_secs_f64() / self.samples as f64;
        let batch = ((target_sample / per_iter.max(1e-9)) as u64).max(1);

        let mut per_iter_ns = Vec::with_capacity(self.samples);
        let mut total_iters = 0u64;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed().as_nanos() as f64;
            per_iter_ns.push(dt / batch as f64);
            total_iters += batch;
        }
        per_iter_ns.sort_by(f64::total_cmp);
        self.stats = Some(Stats {
            median_ns: percentile(&per_iter_ns, 0.5),
            p10_ns: percentile(&per_iter_ns, 0.1),
            p90_ns: percentile(&per_iter_ns, 0.9),
            iters: total_iters,
            samples: self.samples,
        });
    }
}

/// A named group of benchmarks sharing configuration, mirroring Criterion's
/// `benchmark_group`.
pub struct BenchGroup {
    name: String,
    warmup: Duration,
    measurement: Duration,
    samples: usize,
    throughput: Option<u64>,
    sink: Option<PathBuf>,
}

fn fast_mode() -> bool {
    std::env::var("NUFFT_BENCH_FAST").map(|v| v != "0" && !v.is_empty()).unwrap_or(false)
}

/// Locates the repository's `results/` directory: `NUFFT_BENCH_OUT` if set,
/// else the nearest ancestor of the current directory containing
/// `ROADMAP.md` (the repo root), else the current directory.
fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("NUFFT_BENCH_OUT") {
        return PathBuf::from(dir);
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    loop {
        if dir.join("ROADMAP.md").exists() {
            return dir.join("results");
        }
        if !dir.pop() {
            return PathBuf::from("results");
        }
    }
}

impl BenchGroup {
    /// Creates a group with the default budget (1 s measurement, 300 ms
    /// warmup, 30 samples; minimal in `NUFFT_BENCH_FAST` mode).
    pub fn new(name: impl Into<String>) -> Self {
        let fast = fast_mode();
        BenchGroup {
            name: name.into(),
            warmup: if fast { Duration::from_millis(1) } else { Duration::from_millis(300) },
            measurement: if fast { Duration::from_millis(5) } else { Duration::from_secs(1) },
            samples: if fast { 3 } else { 30 },
            throughput: None,
            sink: Some(results_dir().join("benchmarks.jsonl")),
        }
    }

    /// Sets the number of timed samples (Criterion's `sample_size`).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if !fast_mode() {
            self.samples = n.max(2);
        }
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        if !fast_mode() {
            self.measurement = d;
        }
        self
    }

    /// Sets the warmup budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        if !fast_mode() {
            self.warmup = d;
        }
        self
    }

    /// Declares elements processed per iteration; reported as Melem/s.
    pub fn throughput(&mut self, elements: u64) -> &mut Self {
        self.throughput = Some(elements);
        self
    }

    /// Disables the JSONL sink (used by the harness's own tests).
    pub fn without_sink(&mut self) -> &mut Self {
        self.sink = None;
        self
    }

    /// Runs one benchmark and reports its stats.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> Stats
    where
        F: FnOnce(&mut Bencher),
    {
        let mut b = Bencher {
            warmup: self.warmup,
            measurement: self.measurement,
            samples: self.samples,
            stats: None,
        };
        f(&mut b);
        let stats = b
            .stats
            .unwrap_or_else(|| panic!("bench '{}/{id}' never called Bencher::iter", self.name));
        self.report(&id.to_string(), stats);
        stats
    }

    fn report(&self, id: &str, s: Stats) {
        let label = format!("{}/{}", self.name, id);
        let thr = self
            .throughput
            .map(|e| format!("  {:>9.2} Melem/s", e as f64 / s.median_ns * 1e3))
            .unwrap_or_default();
        println!(
            "{label:<44} median {:>12}  p10 {:>12}  p90 {:>12}{thr}",
            fmt_ns(s.median_ns),
            fmt_ns(s.p10_ns),
            fmt_ns(s.p90_ns),
        );
        if let Some(path) = &self.sink {
            if let Some(parent) = path.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            let unix_s = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0);
            let line = format!(
                concat!(
                    "{{\"group\":\"{}\",\"bench\":\"{}\",\"median_ns\":{:.3},",
                    "\"p10_ns\":{:.3},\"p90_ns\":{:.3},\"samples\":{},\"iters\":{},",
                    "\"throughput_elems\":{},\"unix_s\":{}}}"
                ),
                escape_json(&self.name),
                escape_json(id),
                s.median_ns,
                s.p10_ns,
                s.p90_ns,
                s.samples,
                s.iters,
                self.throughput.map(|e| e.to_string()).unwrap_or_else(|| "null".into()),
                unix_s,
            );
            // Benchmarks must not fail because the results dir is read-only.
            if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
                let _ = writeln!(file, "{line}");
            }
        }
    }

    /// End-of-group marker (parity with Criterion; prints a blank line).
    pub fn finish(&mut self) {
        println!();
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_group(name: &str) -> BenchGroup {
        let mut g = BenchGroup::new(name);
        g.without_sink();
        g.warmup = Duration::from_micros(200);
        g.measurement = Duration::from_millis(2);
        g.samples = 5;
        g
    }

    #[test]
    fn stats_are_ordered_and_finite() {
        let mut g = tiny_group("selftest");
        let s = g.bench_function("spin", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..100u64 {
                    acc = acc.wrapping_add(black_box(i));
                }
                acc
            })
        });
        assert!(s.p10_ns <= s.median_ns && s.median_ns <= s.p90_ns);
        assert!(s.median_ns.is_finite() && s.median_ns > 0.0);
        assert_eq!(s.samples, 5);
        assert!(s.iters >= 5);
    }

    #[test]
    #[should_panic(expected = "never called Bencher::iter")]
    fn forgetting_iter_is_an_error() {
        let mut g = tiny_group("selftest");
        g.bench_function("noop", |_b| {});
    }

    #[test]
    fn percentile_interpolates() {
        let v = [0.0, 10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 0.5), 20.0);
        assert_eq!(percentile(&v, 0.0), 0.0);
        assert_eq!(percentile(&v, 1.0), 40.0);
        assert!((percentile(&v, 0.25) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn json_escaping_handles_quotes() {
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
    }
}
