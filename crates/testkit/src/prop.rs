//! Minimal property-testing harness with replayable counterexamples.
//!
//! [`prop_check`] runs a property closure against `cases` independent
//! deterministic input streams derived from one base seed. When a case
//! fails, the harness:
//!
//! 1. greedily **shrinks** it by replaying the same case seed at increasing
//!    shrink levels (each level halves every size-like draw, see
//!    [`Rng::gen_usize`]), keeping the deepest level that still fails;
//! 2. panics with a message containing `NUFFT_PROP_SEED=<seed>:<shrink>` —
//!    exporting that environment variable and re-running the test replays
//!    exactly the failing (shrunk) inputs, and nothing else.
//!
//! There are no macros and no strategy combinators: a property is a plain
//! closure drawing whatever it needs from the [`Rng`] it is handed. This
//! keeps the harness ~100 lines, `std`-only, and the replay contract
//! trivially stable.

use crate::rng::{splitmix64, Rng};

/// Deepest shrink level tried after a failure (2^12 ≫ any size range used
/// in this workspace, so the deepest level collapses sizes to their minima).
const MAX_SHRINK: u32 = 12;

/// Environment variable for replaying one failing case: `seed` or
/// `seed:shrink`.
pub const REPLAY_ENV: &str = "NUFFT_PROP_SEED";

fn run_case<F: Fn(&mut Rng)>(f: &F, seed: u64, shrink: u32) -> Result<(), String> {
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut rng = Rng::with_shrink(seed, shrink);
        f(&mut rng);
    }));
    match outcome {
        Ok(()) => Ok(()),
        Err(payload) => Err(payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_else(|| "<non-string panic payload>".to_string())),
    }
}

/// Checks `property` against `cases` deterministic random input streams.
///
/// `base_seed` fixes the whole run; every case gets an independent seed
/// derived from it via SplitMix64. On failure the panic message names the
/// failing case's replay seed and the shrink level reached, e.g.
///
/// ```text
/// property 'fft_round_trip' failed; replay with NUFFT_PROP_SEED=123456:3
/// ```
///
/// # Panics
/// Panics (test failure) if any case fails, after shrinking.
pub fn prop_check<F>(name: &str, base_seed: u64, cases: u32, property: F)
where
    F: Fn(&mut Rng),
{
    // Replay mode: run exactly one case, without catching the panic, so the
    // failure surfaces with its original assertion message and backtrace.
    if let Ok(spec) = std::env::var(REPLAY_ENV) {
        let (seed, shrink) = parse_replay(&spec)
            .unwrap_or_else(|| panic!("malformed {REPLAY_ENV}={spec}; expected <seed>[:<shrink>]"));
        eprintln!("[{name}] replaying case {REPLAY_ENV}={seed}:{shrink}");
        let mut rng = Rng::with_shrink(seed, shrink);
        property(&mut rng);
        return;
    }

    let mut seed_state = base_seed;
    for case in 0..cases {
        let case_seed = splitmix64(&mut seed_state);
        if let Err(first_msg) = run_case(&property, case_seed, 0) {
            // Greedy shrink: walk shrink levels upward while the property
            // still fails; stop at the first level that passes.
            let mut best = (0u32, first_msg);
            for shrink in 1..=MAX_SHRINK {
                match run_case(&property, case_seed, shrink) {
                    Err(msg) => best = (shrink, msg),
                    Ok(()) => break,
                }
            }
            let (shrink, msg) = best;
            panic!(
                "property '{name}' failed at case {case}/{cases} \
                 (shrunk to level {shrink}): {msg}\n\
                 replay with {REPLAY_ENV}={case_seed}:{shrink}"
            );
        }
    }
}

fn parse_replay(spec: &str) -> Option<(u64, u32)> {
    match spec.split_once(':') {
        Some((s, k)) => Some((s.trim().parse().ok()?, k.trim().parse().ok()?)),
        None => Some((spec.trim().parse().ok()?, 0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn passing_property_runs_all_cases() {
        let ran = AtomicU32::new(0);
        prop_check("trivially_true", 1, 40, |rng| {
            ran.fetch_add(1, Ordering::SeqCst);
            let n = rng.gen_usize(1..50);
            assert!(n < 50);
        });
        assert_eq!(ran.load(Ordering::SeqCst), 40);
    }

    #[test]
    fn cases_are_deterministic_per_base_seed() {
        let collect = |base: u64| {
            let draws = std::sync::Mutex::new(Vec::new());
            prop_check("record", base, 5, |rng| {
                draws.lock().unwrap().push(rng.next_u64());
            });
            draws.into_inner().unwrap()
        };
        assert_eq!(collect(7), collect(7));
        assert_ne!(collect(7), collect(8));
    }

    #[test]
    fn failing_property_reports_replay_seed_and_shrinks() {
        let result = std::panic::catch_unwind(|| {
            prop_check("always_false_for_big", 3, 10, |rng| {
                let n = rng.gen_usize(1..1000);
                // Fails for any n >= 1 — fully shrinkable.
                assert!(n == 0, "forced failure with n={n}");
            });
        });
        let msg = match result {
            Err(p) => p.downcast_ref::<String>().cloned().unwrap_or_default(),
            Ok(()) => panic!("property unexpectedly passed"),
        };
        assert!(msg.contains("replay with NUFFT_PROP_SEED="), "message: {msg}");
        // The failure shrinks all the way down (still fails at max level).
        assert!(msg.contains(&format!("shrunk to level {MAX_SHRINK}")), "message: {msg}");
    }

    #[test]
    fn shrink_stops_at_first_passing_level() {
        // Fails only for n > 500: shrink level 1 halves the span to ≤ 500,
        // which passes, so the reported level must be 0.
        let result = std::panic::catch_unwind(|| {
            prop_check("fails_only_when_large", 5, 50, |rng| {
                let n = rng.gen_usize(1..1001);
                assert!(n <= 500, "n={n}");
            });
        });
        let msg = match result {
            Err(p) => p.downcast_ref::<String>().cloned().unwrap_or_default(),
            Ok(()) => panic!("property unexpectedly passed"),
        };
        assert!(msg.contains("shrunk to level 0"), "message: {msg}");
    }

    #[test]
    fn replay_spec_parses() {
        assert_eq!(parse_replay("123"), Some((123, 0)));
        assert_eq!(parse_replay("123:4"), Some((123, 4)));
        assert_eq!(parse_replay("x"), None);
    }
}
