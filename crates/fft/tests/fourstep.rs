//! Four-step vs recursive parity at the `nufft-fft` layer.
//!
//! The scheduler-level matrix (threads × exec modes) lives in the workspace
//! `tests/fourstep_modes.rs`; this file pins the underlying contract the
//! scheduler relies on — a forced-four-step plan is *bit-identical* to the
//! recursive plan for every shape/axis regime, direction, and ISA level —
//! plus the `Auto` heuristic's plan-time selection behaviour.

use nufft_fft::{Direction, FftNd, FftStrategy, DEFAULT_LLC_BUDGET};
use nufft_math::Complex32;
use nufft_simd::{detect_isa, set_isa_override, IsaLevel};
use std::sync::Mutex;

/// ISA overrides are process-global; tests touching them serialize here.
static ISA_LOCK: Mutex<()> = Mutex::new(());

fn demo(len: usize, salt: u32) -> Vec<Complex32> {
    (0..len)
        .map(|i| {
            let x = i as f32 * 0.37 + salt as f32 * 1.7;
            Complex32::new((0.8 * x).sin() + 0.02 * x, (0.3 * x).cos() - 0.01 * x)
        })
        .collect()
}

fn assert_bits_eq(a: &[Complex32], b: &[Complex32], ctx: &str) {
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(
            x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
            "{ctx} i={i}: {x:?} vs {y:?}"
        );
    }
}

/// Forced four-step == recursive, bitwise, across every ISA level the host
/// supports, both directions, for shapes covering: long 1D (pure stride-1),
/// long strided axes, remainder tiles, mixed radices (96 = 2⁵·3,
/// 120 = 2³·3·5, 300 = 2²·3·5²), a Bluestein extent (31, ineligible →
/// recursive fallback inside the four-step plan), and small forced splits.
#[test]
fn fourstep_bit_identical_to_recursive_under_isa_overrides() {
    let _guard = ISA_LOCK.lock().unwrap();
    const SHAPES: [&[usize]; 8] =
        [&[4096], &[96, 8], &[8, 96], &[120, 5], &[31, 120], &[300, 3], &[48, 5, 12], &[16, 16]];
    let detected = detect_isa();
    let levels = [IsaLevel::StrictScalar, IsaLevel::Scalar, IsaLevel::Sse2, IsaLevel::Avx2Fma];
    for &level in levels.iter().filter(|&&l| l <= detected) {
        set_isa_override(level).unwrap();
        for (salt, &shape) in SHAPES.iter().enumerate() {
            let len: usize = shape.iter().product();
            let x = demo(len, salt as u32);
            let recursive = FftNd::with_strategy(shape, FftStrategy::Recursive, DEFAULT_LLC_BUDGET);
            let fourstep = FftNd::with_strategy(shape, FftStrategy::FourStep, DEFAULT_LLC_BUDGET);
            for dir in [Direction::Forward, Direction::Backward] {
                let mut a = x.clone();
                recursive.process(&mut a, dir);
                let mut b = x.clone();
                fourstep.process(&mut b, dir);
                assert_bits_eq(&b, &a, &format!("shape {shape:?} {dir:?} {}", level.name()));
            }
        }
    }
    set_isa_override(detected).unwrap();
}

/// Per-axis parity: each axis pass on its own (not just the full separable
/// product) must agree bitwise, for both the strided and contiguous regime.
#[test]
fn fourstep_single_axis_passes_match_bitwise() {
    let _guard = ISA_LOCK.lock().unwrap();
    let detected = detect_isa();
    set_isa_override(detected).unwrap();
    let shape = [60usize, 64];
    let len = shape.iter().product();
    let x = demo(len, 9);
    let recursive = FftNd::with_strategy(&shape, FftStrategy::Recursive, DEFAULT_LLC_BUDGET);
    let fourstep = FftNd::with_strategy(&shape, FftStrategy::FourStep, DEFAULT_LLC_BUDGET);
    for axis in 0..shape.len() {
        assert!(fourstep.axis_fourstep(axis), "axis {axis} should be eligible");
        for dir in [Direction::Forward, Direction::Backward] {
            let mut a = x.clone();
            recursive.transform_axis(&mut a, axis, dir);
            let mut b = x.clone();
            fourstep.transform_axis(&mut b, axis, dir);
            assert_bits_eq(&b, &a, &format!("axis {axis} {dir:?}"));
        }
    }
}

/// `Auto` strategy selection: in-budget axes stay recursive, out-of-budget
/// eligible axes go four-step, Bluestein axes never do.
#[test]
fn auto_heuristic_selects_by_line_footprint() {
    let auto_default = FftNd::new(&[256, 256]);
    assert!(!auto_default.axis_fourstep(0), "64 KiB line must stay in-budget");
    assert!(!auto_default.axis_fourstep(1));

    // A zero budget pushes every eligible axis onto the four-step path.
    let tiny = FftNd::with_strategy(&[96, 31], FftStrategy::Auto, 0);
    assert!(tiny.axis_fourstep(0));
    assert!(!tiny.axis_fourstep(1), "Bluestein 31 is ineligible");

    let forced = FftNd::with_strategy(&[96, 31], FftStrategy::Recursive, 0);
    assert!(!forced.axis_fourstep(0));
    assert!(!forced.axis_fourstep(1));
}

/// The fused-DAG footprint metadata: column groups partition each tile's
/// read set, k-blocks partition each tile's write set, and
/// `fs_kblock_of_element` inverts the k-block enumeration.
#[test]
fn fs_shard_footprints_partition_each_tile() {
    for shape in [&[64usize, 6][..], &[6, 64], &[48, 3, 4]] {
        let plan = FftNd::with_strategy(shape, FftStrategy::FourStep, 0);
        for axis in 0..shape.len() {
            if !plan.axis_fourstep(axis) {
                continue;
            }
            for b in [2usize, 4] {
                for tile in 0..plan.num_tiles(axis, b) {
                    let mut in_tile = vec![false; plan.len()];
                    plan.for_each_tile_element(axis, tile, b, |e| in_tile[e] = true);
                    let mut seen = vec![0usize; plan.len()];
                    for cg in 0..plan.fs_col_groups(axis, b) {
                        plan.for_each_fs_col_element(axis, tile, cg, b, |e| {
                            seen[e] += 1;
                            assert_eq!(plan.fs_col_group_of_element(axis, e, b), cg);
                        });
                    }
                    for (e, (&c, &t)) in seen.iter().zip(&in_tile).enumerate() {
                        assert_eq!(
                            c, t as usize,
                            "shape {shape:?} axis {axis} b={b} tile {tile} elem {e} (col groups)"
                        );
                    }
                    let mut seen = vec![0usize; plan.len()];
                    for kb in 0..plan.fs_k_blocks(axis) {
                        plan.for_each_fs_kblock_element(axis, tile, kb, b, |e| {
                            seen[e] += 1;
                            assert_eq!(plan.fs_kblock_of_element(axis, e), kb);
                            assert_eq!(plan.tile_of_element(axis, e, b), tile);
                        });
                    }
                    for (e, (&c, &t)) in seen.iter().zip(&in_tile).enumerate() {
                        assert_eq!(
                            c, t as usize,
                            "shape {shape:?} axis {axis} b={b} tile {tile} elem {e} (k-blocks)"
                        );
                    }
                }
            }
        }
    }
}
