//! Property tests for the FFT engine over random signals and lengths.

use nufft_fft::naive::naive_dft32;
use nufft_fft::{Direction, Fft, FftNd};
use nufft_math::error::rel_l2_c32;
use nufft_math::Complex32;
use proptest::prelude::*;

fn signal(len: usize) -> impl Strategy<Value = Vec<Complex32>> {
    proptest::collection::vec((-10.0f32..10.0, -10.0f32..10.0), len..=len)
        .prop_map(|v| v.into_iter().map(|(r, i)| Complex32::new(r, i)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn forward_matches_naive(n in 1usize..200, seed in any::<u64>()) {
        let x: Vec<Complex32> = (0..n).map(|i| {
            let t = (i as u64).wrapping_mul(seed | 1) as f64 / u64::MAX as f64;
            Complex32::new((t * 13.0).sin() as f32, (t * 7.0).cos() as f32)
        }).collect();
        let plan = Fft::new(n);
        let mut got = x.clone();
        plan.forward(&mut got);
        let want = naive_dft32(&x, Direction::Forward);
        prop_assert!(rel_l2_c32(&got, &want) < 1e-4, "n={}", n);
    }

    #[test]
    fn round_trip_is_identity(n in 1usize..300, x_seed in any::<u32>()) {
        let x: Vec<Complex32> = (0..n).map(|i| {
            let v = (i as u32).wrapping_mul(x_seed | 1);
            Complex32::new((v % 1000) as f32 / 500.0 - 1.0, (v % 777) as f32 / 388.0 - 1.0)
        }).collect();
        let plan = Fft::new(n);
        let mut y = x.clone();
        plan.forward(&mut y);
        plan.inverse(&mut y);
        prop_assert!(rel_l2_c32(&y, &x) < 1e-4, "n={}", n);
    }

    #[test]
    fn linearity(x in signal(64), y in signal(64), a in -3.0f32..3.0) {
        let plan = Fft::new(64);
        // F(x + a·y) == F(x) + a·F(y)
        let mut lhs: Vec<Complex32> =
            x.iter().zip(&y).map(|(&p, &q)| p + q.scale(a)).collect();
        plan.forward(&mut lhs);
        let mut fx = x.clone();
        plan.forward(&mut fx);
        let mut fy = y.clone();
        plan.forward(&mut fy);
        let rhs: Vec<Complex32> = fx.iter().zip(&fy).map(|(&p, &q)| p + q.scale(a)).collect();
        prop_assert!(rel_l2_c32(&lhs, &rhs) < 1e-4);
    }

    #[test]
    fn parseval(x in signal(90)) {
        let plan = Fft::new(90);
        let mut y = x.clone();
        plan.forward(&mut y);
        let ex: f64 = x.iter().map(|z| z.to_f64().norm_sqr()).sum();
        let ey: f64 = y.iter().map(|z| z.to_f64().norm_sqr()).sum();
        prop_assert!((ey / 90.0 - ex).abs() <= 1e-4 * ex.max(1.0));
    }

    #[test]
    fn circular_shift_theorem(x in signal(32), shift in 0usize..32) {
        // FFT of circularly shifted signal = phase ramp × FFT.
        let plan = Fft::new(32);
        let mut shifted = x.clone();
        shifted.rotate_right(shift);
        plan.forward(&mut shifted);
        let mut fx = x.clone();
        plan.forward(&mut fx);
        for (k, (s, f)) in shifted.iter().zip(&fx).enumerate() {
            let ph = nufft_math::Complex64::cis(
                -core::f64::consts::TAU * (shift * k % 32) as f64 / 32.0,
            );
            let want = (f.to_f64() * ph).to_f32();
            prop_assert!((s.re - want.re).abs() < 2e-3 && (s.im - want.im).abs() < 2e-3);
        }
    }

    #[test]
    fn nd_round_trip(a in 1usize..8, b in 1usize..8, c in 1usize..8, seed in any::<u32>()) {
        let len = a * b * c;
        let x: Vec<Complex32> = (0..len).map(|i| {
            let v = (i as u32).wrapping_mul(seed | 1);
            Complex32::new((v % 997) as f32 / 500.0 - 1.0, (v % 641) as f32 / 320.0 - 1.0)
        }).collect();
        let plan = FftNd::new(&[a, b, c]);
        let mut y = x.clone();
        plan.forward(&mut y);
        plan.inverse(&mut y);
        prop_assert!(rel_l2_c32(&y, &x) < 1e-4);
    }
}
