//! Property tests for the FFT engine over random signals and lengths, on
//! the `nufft-testkit` harness. A failure prints a `NUFFT_PROP_SEED=...`
//! replay seed.

use nufft_fft::naive::naive_dft32;
use nufft_fft::{Direction, Fft, FftNd};
use nufft_math::error::rel_l2_c32;
use nufft_math::{Complex32, Complex64};
use nufft_testkit::prop_check;

#[test]
fn forward_matches_naive() {
    prop_check("forward_matches_naive", 0xFF7_0001, 48, |rng| {
        let n = rng.gen_usize(1..200);
        let x = rng.gen_c32_vec(n, 10.0);
        let plan = Fft::new(n);
        let mut got = x.clone();
        plan.forward(&mut got);
        let want = naive_dft32(&x, Direction::Forward);
        assert!(rel_l2_c32(&got, &want) < 1e-4, "n={n}");
    });
}

#[test]
fn round_trip_is_identity() {
    prop_check("round_trip_is_identity", 0xFF7_0002, 48, |rng| {
        let n = rng.gen_usize(1..300);
        let x = rng.gen_c32_vec(n, 1.0);
        let plan = Fft::new(n);
        let mut y = x.clone();
        plan.forward(&mut y);
        plan.inverse(&mut y);
        assert!(rel_l2_c32(&y, &x) < 1e-4, "n={n}");
    });
}

/// Round trip pinned to the two non-power-of-two code paths the oversampled
/// grids exercise: pure mixed-radix lengths (2^a·3^b·5^c) and lengths with
/// a large prime factor, which take the Bluestein chirp-z route.
#[test]
fn round_trip_mixed_radix_and_bluestein() {
    const MIXED_RADIX: [usize; 8] = [6, 30, 60, 300, 360, 500, 720, 960];
    const BLUESTEIN: [usize; 8] = [7, 97, 127, 251, 499, 688, 743, 1009];
    prop_check("round_trip_mixed_radix_and_bluestein", 0xFF7_0003, 32, |rng| {
        let pool = if rng.gen_bool() { &MIXED_RADIX } else { &BLUESTEIN };
        let n = pool[rng.gen_usize(0..pool.len())];
        let x = rng.gen_c32_vec(n, 2.0);
        let plan = Fft::new(n);
        let mut y = x.clone();
        plan.forward(&mut y);
        plan.inverse(&mut y);
        assert!(rel_l2_c32(&y, &x) < 1e-4, "n={n}");
        // And the forward pass itself must agree with the naive DFT for the
        // smaller lengths (the naive oracle is quadratic).
        if n <= 360 {
            let mut f = x.clone();
            plan.forward(&mut f);
            let want = naive_dft32(&x, Direction::Forward);
            assert!(rel_l2_c32(&f, &want) < 1e-4, "n={n} forward vs naive");
        }
    });
}

#[test]
fn linearity() {
    prop_check("linearity", 0xFF7_0004, 32, |rng| {
        let x = rng.gen_c32_vec(64, 10.0);
        let y = rng.gen_c32_vec(64, 10.0);
        let a = rng.gen_f32(-3.0..3.0);
        let plan = Fft::new(64);
        // F(x + a·y) == F(x) + a·F(y)
        let mut lhs: Vec<Complex32> = x.iter().zip(&y).map(|(&p, &q)| p + q.scale(a)).collect();
        plan.forward(&mut lhs);
        let mut fx = x.clone();
        plan.forward(&mut fx);
        let mut fy = y.clone();
        plan.forward(&mut fy);
        let rhs: Vec<Complex32> = fx.iter().zip(&fy).map(|(&p, &q)| p + q.scale(a)).collect();
        assert!(rel_l2_c32(&lhs, &rhs) < 1e-4);
    });
}

#[test]
fn parseval() {
    prop_check("parseval", 0xFF7_0005, 32, |rng| {
        let x = rng.gen_c32_vec(90, 10.0);
        let plan = Fft::new(90);
        let mut y = x.clone();
        plan.forward(&mut y);
        let ex: f64 = x.iter().map(|z| z.to_f64().norm_sqr()).sum();
        let ey: f64 = y.iter().map(|z| z.to_f64().norm_sqr()).sum();
        assert!((ey / 90.0 - ex).abs() <= 1e-4 * ex.max(1.0));
    });
}

#[test]
fn circular_shift_theorem() {
    prop_check("circular_shift_theorem", 0xFF7_0006, 32, |rng| {
        let x = rng.gen_c32_vec(32, 10.0);
        let shift = rng.gen_usize(0..32);
        // FFT of circularly shifted signal = phase ramp × FFT.
        let plan = Fft::new(32);
        let mut shifted = x.clone();
        shifted.rotate_right(shift);
        plan.forward(&mut shifted);
        let mut fx = x.clone();
        plan.forward(&mut fx);
        for (k, (s, f)) in shifted.iter().zip(&fx).enumerate() {
            let ph = Complex64::cis(-core::f64::consts::TAU * (shift * k % 32) as f64 / 32.0);
            let want = (f.to_f64() * ph).to_f32();
            assert!(
                (s.re - want.re).abs() < 2e-3 && (s.im - want.im).abs() < 2e-3,
                "shift={shift} k={k}"
            );
        }
    });
}

/// The batched (tiled) strided-axis path must be *bit-identical* to the
/// per-line path for every shape, direction, and ISA level — the contract
/// that lets the scheduler pick either path freely. Shapes cover batched
/// mixed-radix strided axes (96 = 2⁵·3, 120, 126 = 2·3²·7), a Bluestein
/// extent (31) that exercises the per-line fallback, and 3D remainder tiles.
#[test]
fn batched_bit_identical_to_per_line_under_isa_overrides() {
    use nufft_simd::{detect_isa, set_isa_override, IsaLevel};
    const SHAPES: [&[usize]; 6] =
        [&[96, 8], &[120, 5], &[31, 12], &[8, 126], &[16, 3, 10], &[12, 18]];
    let detected = detect_isa();
    let levels = [IsaLevel::StrictScalar, IsaLevel::Scalar, IsaLevel::Sse2, IsaLevel::Avx2Fma];
    prop_check("batched_bit_identical_to_per_line", 0xFF7_0008, 16, |rng| {
        let shape = SHAPES[rng.gen_usize(0..SHAPES.len())];
        let len: usize = shape.iter().product();
        let x = rng.gen_c32_vec(len, 2.0);
        let plan = FftNd::new(shape);
        for &level in levels.iter().filter(|&&l| l <= detected) {
            set_isa_override(level).unwrap();
            for dir in [Direction::Forward, Direction::Backward] {
                let mut batched = x.clone();
                plan.process(&mut batched, dir);
                let mut per_line = x.clone();
                plan.process_per_line(&mut per_line, dir);
                for (i, (g, w)) in batched.iter().zip(&per_line).enumerate() {
                    assert!(
                        g.re.to_bits() == w.re.to_bits() && g.im.to_bits() == w.im.to_bits(),
                        "shape {shape:?} {dir:?} {} i={i}: {g:?} vs {w:?}",
                        level.name()
                    );
                }
            }
        }
        set_isa_override(detected).unwrap();
    });
}

#[test]
fn nd_round_trip() {
    prop_check("nd_round_trip", 0xFF7_0007, 32, |rng| {
        let a = rng.gen_usize(1..8);
        let b = rng.gen_usize(1..8);
        let c = rng.gen_usize(1..8);
        let x = rng.gen_c32_vec(a * b * c, 1.0);
        let plan = FftNd::new(&[a, b, c]);
        let mut y = x.clone();
        plan.forward(&mut y);
        plan.inverse(&mut y);
        assert!(rel_l2_c32(&y, &x) < 1e-4, "dims [{a}, {b}, {c}]");
    });
}
