//! Four-step (Bailey) decomposition of one long-axis transform.
//!
//! A length-`n = n1·n2` Cooley–Tukey transform is the DIT recursion of
//! [`crate::plan::Fft`]: descend through the stage list, compute leaf
//! sub-transforms, combine on the way back up. The recursive path walks that
//! tree depth-first, which for an out-of-cache line means every combine level
//! re-streams the whole line. The four-step path executes the *same* tree in
//! two cache-friendly sweeps around a split level `j` with
//! `n1 = P = r_0·…·r_{j-1} ≈ √n`:
//!
//! 1. **Sub-FFT pass** — the `P` leaf calls at level `j` are independent
//!    length-`n2` transforms of the decimated sequences `x[c + P·t]`
//!    (`c ∈ [0, P)`). Each runs through the existing batched stage-suffix
//!    recursion ([`crate::batch::recurse`] from `level = j`) and lands in a
//!    block-major intermediate buffer: column `c`'s spectrum occupies block
//!    `β(c)` (the digit-reversed block index the recursion would have written
//!    it to), positions `β·n2 .. (β+1)·n2`.
//! 2. **Combine pass** — the remaining levels `j-1 .. 0` only ever mix
//!    elements with the *same* within-block offset `k ∈ [0, n2)`: at level
//!    `l` the butterfly at offset `k` touches `dst[(g·r_l + q)·m_l + k]` and
//!    `k mod n2` is invariant because `n2 | m_l`. So the combine is run per
//!    *k-block* — a cache-blocked gather of `P × kbw` elements (one `kbw`-wide
//!    slab from every block, the "blocked transpose"), all `j` combine levels
//!    applied in cache, then one scatter to the output. The level-`(j-1)`
//!    twiddle multiply is hoisted into the gather
//!    ([`nufft_simd::gather_chunks_cmul`]) whenever that level takes the SIMD
//!    kernel branch, so the transpose is a single read-modify-write sweep.
//!
//! Bit-identity with the recursive path holds at every ISA level because
//! (a) the sub-FFT pass runs the identical stage-suffix kernels, (b) the
//! per-level kernel-regime decision (`radix ∈ {2,4} && m ≥ MIN_SIMD_M`)
//! is reproduced exactly, and (c) within a regime the SIMD kernels are
//! elementwise-uniform — `cmul4`, its broadcast form, and the `mul_add`
//! tail produce identical bits per element (pinned in `nufft-simd`), so
//! regrouping elements into different vector calls cannot change results.

use crate::batch::BwdView;
use crate::plan::{Fft, Stage, MIN_SIMD_M};
use nufft_math::Complex32;
use nufft_simd::fft_rows;

/// Per-axis FFT execution strategy for [`crate::FftNd`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum FftStrategy {
    /// Size heuristic: four-step when one line of the axis overflows the
    /// configured last-level-cache budget, recursive otherwise.
    #[default]
    Auto,
    /// Always the depth-first recursive path.
    Recursive,
    /// Four-step on every eligible axis (Cooley–Tukey with ≥ 2 stages);
    /// ineligible axes (Bluestein, single-stage) stay recursive.
    FourStep,
}

/// Default LLC budget for [`FftStrategy::Auto`]: one line above 2 MiB of
/// complex data (n > 256 Ki elements) is considered out-of-cache. Per-core
/// LLC share on the paper's Xeon-class parts is 1.375–2.5 MiB; staying at
/// the low end keeps `Auto` from ever slowing an in-cache grid down.
pub const DEFAULT_LLC_BUDGET: usize = 2 * 1024 * 1024;

/// Target working-set size (in complex elements) for one combine k-block:
/// `P · kb · b ≈ 64 Ki` elements = 512 KiB, comfortably inside L2 alongside
/// the twiddle slices.
const KBLOCK_TARGET_ELEMS: usize = 65536;

/// A planned four-step split of one axis plan. Pure geometry plus the
/// combine-sweep arithmetic; gather/scatter against the grid lives in
/// [`crate::FftNd`], which owns the line/tile layout.
pub(crate) struct FourStep {
    /// Split level: `stages[..j]` are the combine levels, `stages[j..]` the
    /// sub-FFT suffix.
    pub(crate) j: usize,
    /// `n1 = r_0·…·r_{j-1}` — number of columns / blocks.
    pub(crate) p: usize,
    /// Sub-FFT length (`n / p`).
    pub(crate) n2: usize,
    /// Combine k-block width (≤ `n2`, multiple of 8 unless clamped by `n2`).
    pub(crate) kb: usize,
    /// Whether the level-`(j-1)` twiddle multiply is hoisted into the
    /// transpose gather. True exactly when that level takes the SIMD kernel
    /// branch (`r_{j-1} ∈ {2,4}` and `n2 ≥ MIN_SIMD_M`), where the hoisted
    /// complex multiply is the bitwise-identical FMA shape; scalar-regime
    /// levels keep the plain multiply inside the combine loop.
    pub(crate) fuse_gather: bool,
}

impl FourStep {
    /// Plans a four-step split for `fft`, or `None` when the plan is not
    /// eligible (Bluestein, or fewer than two stages — nothing to split).
    /// `b` is the batch width the k-block sizing assumes.
    pub(crate) fn plan(fft: &Fft, b: usize) -> Option<FourStep> {
        if !fft.is_ct() {
            return None;
        }
        let stages = fft.stages();
        if stages.len() < 2 {
            return None;
        }
        let n = fft.len();
        // Split where the column count is closest to √n: minimizes the
        // larger of the two passes' per-line working sets.
        let mut best = (usize::MAX, 1usize, 1usize); // (|p² − n|, j, p)
        let mut p = 1usize;
        for (l, s) in stages[..stages.len() - 1].iter().enumerate() {
            p *= s.radix;
            let d = (p * p).abs_diff(n);
            if d < best.0 {
                best = (d, l + 1, p);
            }
        }
        let (_, j, p) = best;
        let n2 = n / p;
        let kb = (KBLOCK_TARGET_ELEMS / (p * b.max(1)).max(1)).max(8) & !7;
        let kb = kb.min(n2);
        let r_last = stages[j - 1].radix;
        let fuse_gather = (r_last == 2 || r_last == 4) && n2 >= MIN_SIMD_M;
        Some(FourStep { j, p, n2, kb, fuse_gather })
    }

    /// Number of combine k-blocks per line.
    pub(crate) fn k_blocks(&self) -> usize {
        self.n2.div_ceil(self.kb)
    }

    /// The input column feeding block `beta`: inverts the dst placement of
    /// the DIT recursion. Block index digits are big-endian in the per-level
    /// quotients (`β = Σ q_l·M_l`, `M_l = m_l/n2`); the column is their
    /// little-endian composition (`c = Σ q_l·stride_l`,
    /// `stride_l = r_0·…·r_{l-1}`). The passes only need the forward map
    /// ([`FourStep::block_of_col`]); this inverse documents the bijection
    /// and pins it in the unit tests.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn col_of_block(&self, stages: &[Stage], beta: usize) -> usize {
        let mut rem = beta;
        let mut stride = 1usize;
        let mut c = 0usize;
        for s in &stages[..self.j] {
            let big_m = self.p / (stride * s.radix);
            c += (rem / big_m) * stride;
            rem %= big_m;
            stride *= s.radix;
        }
        c
    }

    /// The block receiving column `c`'s sub-spectrum — inverse of
    /// [`FourStep::col_of_block`].
    pub(crate) fn block_of_col(&self, stages: &[Stage], c: usize) -> usize {
        let mut stride = 1usize;
        let mut beta = 0usize;
        for s in &stages[..self.j] {
            let big_m = self.p / (stride * s.radix);
            beta += ((c / stride) % s.radix) * big_m;
            stride *= s.radix;
        }
        beta
    }

    /// Runs combine levels `j-1 .. 0` over a gathered k-block working set.
    ///
    /// `work` holds `p` block rows of `kbw·lanes` elements each, laid out
    /// `work[(β·kbw + κ)·lanes + lane]` with `κ` the offset within the
    /// k-block starting at absolute offset `k0`. When
    /// [`FourStep::fuse_gather`] is set the caller has already applied the
    /// level-`(j-1)` twiddles during the gather and that level runs the
    /// no-twiddle butterflies.
    pub(crate) fn combine_work(
        &self,
        stages: &[Stage],
        bwd: Option<BwdView<'_>>,
        work: &mut [Complex32],
        k0: usize,
        kbw: usize,
        lanes: usize,
    ) {
        use crate::butterflies::{bfly2, bfly3, bfly4, bfly5, bfly_generic, MAX_RADIX};
        let forward = bwd.is_none();
        let sign = if forward { -1.0f32 } else { 1.0 };
        let row = kbw * lanes;
        debug_assert_eq!(work.len(), self.p * row);
        for l in (0..self.j).rev() {
            let stage = &stages[l];
            let r = stage.radix;
            let m = stage.m;
            let big_m = m / self.n2;
            let groups = self.p / (r * big_m);
            let tw = match bwd {
                None => &stage.twiddles[..],
                Some((tws, _)) => &tws[l][..],
            };
            let simd = (r == 2 || r == 4) && m >= MIN_SIMD_M;
            let hoisted = self.fuse_gather && l == self.j - 1;
            let step = big_m * row;
            for g in 0..groups {
                for bl in 0..big_m {
                    let base = (g * r * big_m + bl) * row;
                    // Absolute twiddle offset of this row's first element for
                    // digit q is (q-1)·m + bl·n2 + k0.
                    let toff = bl * self.n2 + k0;
                    if simd && r == 2 {
                        let (lo, hi) = work.split_at_mut(base + step);
                        let d0 = &mut lo[base..base + row];
                        let d1 = &mut hi[..row];
                        if hoisted {
                            fft_rows::bfly2_nt(d0, d1);
                        } else if lanes == 1 {
                            fft_rows::bfly2_rows(d0, d1, &tw[toff..toff + kbw]);
                        } else {
                            fft_rows::bfly2_cols(d0, d1, &tw[toff..toff + kbw], lanes);
                        }
                    } else if simd && r == 4 {
                        let quad = &mut work[base..base + 3 * step + row];
                        let (c0, rest) = quad.split_at_mut(step);
                        let (c1, rest) = rest.split_at_mut(step);
                        let (c2, c3) = rest.split_at_mut(step);
                        let (d0, d1) = (&mut c0[..row], &mut c1[..row]);
                        let (d2, d3) = (&mut c2[..row], &mut c3[..row]);
                        if hoisted {
                            fft_rows::bfly4_nt(d0, d1, d2, d3, forward);
                        } else {
                            let tw1 = &tw[toff..toff + kbw];
                            let tw2 = &tw[m + toff..m + toff + kbw];
                            let tw3 = &tw[2 * m + toff..2 * m + toff + kbw];
                            if lanes == 1 {
                                fft_rows::bfly4_rows(d0, d1, d2, d3, tw1, tw2, tw3, forward);
                            } else {
                                fft_rows::bfly4_cols(d0, d1, d2, d3, tw1, tw2, tw3, lanes, forward);
                            }
                        }
                    } else {
                        // Scalar regime: the exact per-element arithmetic of
                        // the recursive combine (plain complex multiply at
                        // every ISA level).
                        let roots = match bwd {
                            None => &stage.roots[..],
                            Some((_, rts)) => &rts[l][..],
                        };
                        let mut t = [Complex32::ZERO; MAX_RADIX];
                        let mut s = [Complex32::ZERO; MAX_RADIX];
                        for kk in 0..kbw {
                            for lane in 0..lanes {
                                let at = base + kk * lanes + lane;
                                t[0] = work[at];
                                for q in 1..r {
                                    t[q] = work[at + q * step] * tw[(q - 1) * m + toff + kk];
                                }
                                match r {
                                    2 => bfly2(&mut t[..2]),
                                    3 => bfly3(&mut t[..3], sign),
                                    4 => bfly4(&mut t[..4], sign),
                                    5 => bfly5(&mut t[..5], sign),
                                    _ => bfly_generic(&mut t[..r], &mut s[..r], roots),
                                }
                                for (k2, &v) in t[..r].iter().enumerate() {
                                    work[at + k2 * step] = v;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `col_of_block` and `block_of_col` are mutually inverse bijections on
    /// `[0, P)` for every factorization the planner produces.
    #[test]
    fn block_column_maps_are_inverse_bijections() {
        for n in [8usize, 16, 48, 60, 96, 120, 240, 360, 1024, 4096] {
            let fft = Fft::new(n);
            let fs = FourStep::plan(&fft, 4).expect("eligible");
            assert_eq!(fs.p * fs.n2, n);
            let stages = fft.stages();
            let mut seen = vec![false; fs.p];
            for beta in 0..fs.p {
                let c = fs.col_of_block(stages, beta);
                assert!(c < fs.p, "n={n} beta={beta}: column {c} out of range");
                assert!(!seen[c], "n={n}: column {c} hit twice");
                seen[c] = true;
                assert_eq!(fs.block_of_col(stages, c), beta, "n={n} beta={beta}");
            }
        }
    }

    /// The split lands near √n and the k-block width stays within `n2`.
    #[test]
    fn planner_picks_balanced_splits() {
        for n in [64usize, 256, 4096, 65536, 262144] {
            let fft = Fft::new(n);
            let fs = FourStep::plan(&fft, 4).unwrap();
            let ratio = fs.p as f64 / (n as f64).sqrt();
            assert!(
                (0.24..=4.1).contains(&ratio),
                "n={n}: p={} n2={} badly unbalanced",
                fs.p,
                fs.n2
            );
            assert!(fs.kb >= 1 && fs.kb <= fs.n2);
            assert_eq!(fs.k_blocks(), fs.n2.div_ceil(fs.kb));
        }
    }

    /// Bluestein and single-stage plans are ineligible.
    #[test]
    fn ineligible_plans_are_rejected() {
        assert!(FourStep::plan(&Fft::new(31), 4).is_none()); // Bluestein
        assert!(FourStep::plan(&Fft::new(5), 4).is_none()); // single stage
        assert!(FourStep::plan(&Fft::new(1), 4).is_none()); // degenerate
    }
}
