//! `O(n²)` reference DFTs.
//!
//! These are the oracles for FFT tests and the accuracy yardstick for the
//! NUFFT experiments. The accumulation is in `f64` regardless of input
//! precision, so oracle error is negligible next to `f32` transform error.

use crate::plan::Direction;
use nufft_math::{Complex32, Complex64};

/// Naive DFT of a double-precision signal.
pub fn naive_dft64(x: &[Complex64], dir: Direction) -> Vec<Complex64> {
    let n = x.len();
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Backward => 1.0,
    };
    (0..n)
        .map(|k| {
            let mut acc = Complex64::ZERO;
            for (j, &v) in x.iter().enumerate() {
                // (j·k) mod n keeps the phase argument in [0, 2π·n).
                let ph = sign * core::f64::consts::TAU * ((j * k) % n) as f64 / n as f64;
                acc += v * Complex64::cis(ph);
            }
            acc
        })
        .collect()
}

/// Naive DFT of a single-precision signal with `f64` accumulation.
pub fn naive_dft32(x: &[Complex32], dir: Direction) -> Vec<Complex32> {
    let wide: Vec<Complex64> = x.iter().map(|z| z.to_f64()).collect();
    naive_dft64(&wide, dir).into_iter().map(|z| z.to_f32()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_signal_concentrates_at_zero() {
        let x = vec![Complex64::ONE; 8];
        let y = naive_dft64(&x, Direction::Forward);
        assert!((y[0] - Complex64::from_re(8.0)).abs() < 1e-12);
        for z in &y[1..] {
            assert!(z.abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_lands_on_its_bin() {
        let n = 16;
        let tone = 5;
        let x: Vec<Complex64> = (0..n)
            .map(|j| Complex64::cis(core::f64::consts::TAU * (tone * j) as f64 / n as f64))
            .collect();
        let y = naive_dft64(&x, Direction::Forward);
        for (k, z) in y.iter().enumerate() {
            if k == tone {
                assert!((z.re - n as f64).abs() < 1e-9 && z.im.abs() < 1e-9);
            } else {
                assert!(z.abs() < 1e-9, "leakage at bin {k}: {z:?}");
            }
        }
    }

    #[test]
    fn forward_backward_scale_identity() {
        let x: Vec<Complex64> =
            (0..6).map(|i| Complex64::new(i as f64, -(i as f64) * 0.5)).collect();
        let y = naive_dft64(&naive_dft64(&x, Direction::Forward), Direction::Backward);
        for (g, w) in y.iter().zip(&x) {
            assert!((*g - w.scale(6.0)).abs() < 1e-10);
        }
    }
}
