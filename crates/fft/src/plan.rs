//! 1D complex FFT plans.
//!
//! A [`Fft`] is an immutable, `Sync` plan for one transform length: the
//! factorization into radices, per-stage twiddle tables, and (when the length
//! has a prime factor above `MAX_RADIX` (13)) a
//! prepared Bluestein chirp. Plans are built once per NUFFT plan and shared
//! across worker threads; execution takes caller-provided scratch so the hot
//! path never allocates.

use crate::bluestein::Bluestein;
use crate::butterflies::{bfly2, bfly3, bfly4, bfly5, bfly_generic, generic_roots, MAX_RADIX};
use nufft_math::{Complex32, Complex64};
use nufft_simd::fft_rows;
use std::sync::OnceLock;

/// Stages whose sub-transform length `m` is at least this use the dispatched
/// SIMD row/column butterflies (`nufft_simd::fft_rows`); smaller stages stay
/// on the inline scalar loop — at the bottom of the recursion there are many
/// tiny combines (e.g. 256 radix-2 nodes with `m = 1` for n = 512) where
/// dispatch overhead would dominate. The batched tile path in
/// [`crate::batch`] branches on the *same* `m` threshold so both paths run
/// the identical arithmetic per element (the bit-identity contract).
pub(crate) const MIN_SIMD_M: usize = 4;

/// Transform direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// `e^{-2πi nk/N}` — signal to spectrum.
    Forward,
    /// `e^{+2πi nk/N}` — the unnormalized adjoint of [`Direction::Forward`].
    Backward,
}

impl Direction {
    /// The opposite direction.
    pub fn reverse(self) -> Self {
        match self {
            Direction::Forward => Direction::Backward,
            Direction::Backward => Direction::Forward,
        }
    }
}

/// One Cooley–Tukey stage: radix `r` splitting a length-`r·m` transform.
pub(crate) struct Stage {
    pub(crate) radix: usize,
    pub(crate) m: usize,
    /// Forward twiddles `W_{r·m}^{q·k}` for `q ∈ [1, r)`, `k ∈ [0, m)`,
    /// laid out `[(q-1)·m + k]`.
    pub(crate) twiddles: Vec<Complex32>,
    /// `r×r` forward root table for the generic butterfly (empty for
    /// specialized radices 2–5).
    pub(crate) roots: Vec<Complex32>,
}

/// Backward-direction twiddle/root tables, one `Vec` per stage, each the
/// elementwise conjugate of the forward table. Built lazily on the first
/// backward transform so a plan that only ever runs forward (e.g. the
/// forward-only NUFFT, or Bluestein's inner convolution FFT) never pays the
/// memory.
pub(crate) struct BwdTables {
    pub(crate) twiddles: Vec<Vec<Complex32>>,
    pub(crate) roots: Vec<Vec<Complex32>>,
}

enum Kind {
    /// Pure mixed-radix Cooley–Tukey.
    CooleyTukey,
    /// Chirp-z for lengths with large prime factors.
    Bluestein(Box<Bluestein>),
}

/// A reusable 1D complex-to-complex FFT plan.
///
/// ```
/// use nufft_fft::Fft;
/// use nufft_math::Complex32;
///
/// let plan = Fft::new(8);
/// let mut x = vec![Complex32::ZERO; 8];
/// x[0] = Complex32::ONE;            // unit impulse …
/// plan.forward(&mut x);
/// assert!(x.iter().all(|z| (z.re - 1.0).abs() < 1e-6)); // … flat spectrum
/// ```
pub struct Fft {
    n: usize,
    stages: Vec<Stage>,
    kind: Kind,
    /// Lazily materialized backward tables (see [`BwdTables`]).
    bwd: OnceLock<BwdTables>,
}

/// Splits `n` into butterfly radices, largest-radix-first preference for 4.
fn factorize(n: usize) -> Option<Vec<usize>> {
    let mut rem = n;
    let mut factors = Vec::new();
    while rem.is_multiple_of(4) {
        factors.push(4);
        rem /= 4;
    }
    for p in [2usize, 3, 5, 7, 11, 13] {
        while rem.is_multiple_of(p) {
            factors.push(p);
            rem /= p;
        }
    }
    if rem == 1 {
        Some(factors)
    } else {
        None // contains a prime factor > MAX_RADIX
    }
}

impl Fft {
    /// Prepares a plan for length-`n` transforms.
    ///
    /// Any `n ≥ 1` is supported; lengths whose prime factors all lie within
    /// `{2,3,5,7,11,13}` use mixed-radix Cooley–Tukey, anything else uses
    /// Bluestein's algorithm.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "FFT length must be positive");
        match factorize(n) {
            Some(factors) => {
                let mut stages = Vec::with_capacity(factors.len());
                let mut size = n;
                for &r in &factors {
                    let m = size / r;
                    let mut twiddles = vec![Complex32::ZERO; (r - 1) * m];
                    for q in 1..r {
                        for k in 0..m {
                            let angle =
                                -core::f64::consts::TAU * ((q * k) % size) as f64 / size as f64;
                            twiddles[(q - 1) * m + k] = Complex64::cis(angle).to_f32();
                        }
                    }
                    let roots = if r > 5 { generic_roots(r) } else { Vec::new() };
                    stages.push(Stage { radix: r, m, twiddles, roots });
                    size = m;
                }
                Fft { n, stages, kind: Kind::CooleyTukey, bwd: OnceLock::new() }
            }
            None => Fft {
                n,
                stages: Vec::new(),
                kind: Kind::Bluestein(Box::new(Bluestein::new(n))),
                bwd: OnceLock::new(),
            },
        }
    }

    /// Whether this plan runs the mixed-radix Cooley–Tukey path (as opposed
    /// to Bluestein); only Cooley–Tukey plans support batched tiles.
    pub(crate) fn is_ct(&self) -> bool {
        matches!(self.kind, Kind::CooleyTukey)
    }

    /// The Cooley–Tukey stage list (empty for Bluestein plans).
    pub(crate) fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// The backward tables, conjugating the forward ones on first use.
    /// Bitwise, `conj` only flips the sign of `im`, so precomputing changes
    /// no result bit relative to conjugating inside the stage loop.
    pub(crate) fn bwd_tables(&self) -> &BwdTables {
        self.bwd.get_or_init(|| BwdTables {
            twiddles: self
                .stages
                .iter()
                .map(|s| s.twiddles.iter().map(|w| w.conj()).collect())
                .collect(),
            roots: self.stages.iter().map(|s| s.roots.iter().map(|w| w.conj()).collect()).collect(),
        })
    }

    /// Transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false — plans for length 0 cannot be constructed.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Scratch length required by [`Fft::process_with_scratch`].
    pub fn scratch_len(&self) -> usize {
        match &self.kind {
            Kind::CooleyTukey => self.n,
            Kind::Bluestein(b) => b.scratch_len(),
        }
    }

    /// In-place transform using caller-provided scratch (hot path; does not
    /// allocate).
    ///
    /// # Panics
    /// Panics if `data.len() != self.len()` or scratch is too short.
    pub fn process_with_scratch(
        &self,
        data: &mut [Complex32],
        scratch: &mut [Complex32],
        dir: Direction,
    ) {
        assert_eq!(data.len(), self.n, "data length mismatch");
        assert!(scratch.len() >= self.scratch_len(), "scratch too short");
        match &self.kind {
            Kind::CooleyTukey => {
                let bwd = match dir {
                    Direction::Forward => None,
                    Direction::Backward => Some(self.bwd_tables()),
                };
                let scratch = &mut scratch[..self.n];
                scratch.copy_from_slice(data);
                self.recurse(0, scratch, 0, 1, data, bwd);
            }
            Kind::Bluestein(b) => b.process(data, scratch, dir),
        }
    }

    /// In-place forward transform (allocates scratch; see
    /// [`Fft::process_with_scratch`] for the allocation-free form).
    pub fn forward(&self, data: &mut [Complex32]) {
        let mut scratch = vec![Complex32::ZERO; self.scratch_len()];
        self.process_with_scratch(data, &mut scratch, Direction::Forward);
    }

    /// In-place unnormalized backward transform — the exact adjoint of
    /// [`Fft::forward`].
    pub fn backward(&self, data: &mut [Complex32]) {
        let mut scratch = vec![Complex32::ZERO; self.scratch_len()];
        self.process_with_scratch(data, &mut scratch, Direction::Backward);
    }

    /// In-place normalized inverse: `inverse(forward(x)) == x`.
    pub fn inverse(&self, data: &mut [Complex32]) {
        self.backward(data);
        let s = 1.0 / self.n as f32;
        for z in data {
            *z *= s;
        }
    }

    /// Decimation-in-time recursion.
    ///
    /// Reads `src[off + j·stride]` for `j ∈ [0, size_at(level))`, writes the
    /// transform into `dst[..size]`. All invocations at a given `level` share
    /// the stage's twiddle table. `bwd` is `Some` for backward transforms
    /// (tables pre-conjugated; see [`Fft::bwd_tables`]).
    fn recurse(
        &self,
        level: usize,
        src: &[Complex32],
        off: usize,
        stride: usize,
        dst: &mut [Complex32],
        bwd: Option<&BwdTables>,
    ) {
        if level == self.stages.len() {
            debug_assert_eq!(dst.len(), 1);
            dst[0] = src[off];
            return;
        }
        let stage = &self.stages[level];
        let r = stage.radix;
        let m = stage.m;
        debug_assert_eq!(dst.len(), r * m);

        // Sub-transforms: Y_q = FFT_m(x[q + r·t]) into dst[q·m..(q+1)·m].
        for q in 0..r {
            self.recurse(
                level + 1,
                src,
                off + q * stride,
                stride * r,
                &mut dst[q * m..(q + 1) * m],
                bwd,
            );
        }

        // Combine: X[k + m·k2] = Σ_q W^{qk}·Y_q[k] · W_r^{q·k2}.
        let forward = bwd.is_none();
        let tw = match bwd {
            None => &stage.twiddles[..],
            Some(t) => &t.twiddles[level][..],
        };
        match r {
            2 if m >= MIN_SIMD_M => {
                let (d0, d1) = dst.split_at_mut(m);
                fft_rows::bfly2_rows(d0, d1, tw);
            }
            4 if m >= MIN_SIMD_M => {
                let (d01, d23) = dst.split_at_mut(2 * m);
                let (d0, d1) = d01.split_at_mut(m);
                let (d2, d3) = d23.split_at_mut(m);
                let (tw1, rest) = tw.split_at(m);
                let (tw2, tw3) = rest.split_at(m);
                fft_rows::bfly4_rows(d0, d1, d2, d3, tw1, tw2, tw3, forward);
            }
            _ => {
                let roots = match bwd {
                    None => &stage.roots[..],
                    Some(t) => &t.roots[level][..],
                };
                let sign = if forward { -1.0f32 } else { 1.0 };
                let mut t = [Complex32::ZERO; MAX_RADIX];
                let mut s = [Complex32::ZERO; MAX_RADIX];
                for k in 0..m {
                    t[0] = dst[k];
                    for q in 1..r {
                        t[q] = dst[q * m + k] * tw[(q - 1) * m + k];
                    }
                    match r {
                        2 => bfly2(&mut t[..2]),
                        3 => bfly3(&mut t[..3], sign),
                        4 => bfly4(&mut t[..4], sign),
                        5 => bfly5(&mut t[..5], sign),
                        _ => bfly_generic(&mut t[..r], &mut s[..r], roots),
                    }
                    for (k2, &v) in t[..r].iter().enumerate() {
                        dst[k2 * m + k] = v;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_dft32;
    use nufft_math::error::rel_l2_c32;

    fn demo_signal(n: usize) -> Vec<Complex32> {
        (0..n)
            .map(|i| {
                let x = i as f32;
                Complex32::new((0.3 * x).sin() + 0.1 * x, (0.7 * x).cos() - 0.05 * x)
            })
            .collect()
    }

    #[test]
    fn factorize_basic() {
        assert_eq!(factorize(1), Some(vec![]));
        assert_eq!(factorize(8), Some(vec![4, 2]));
        assert_eq!(factorize(16), Some(vec![4, 4]));
        assert_eq!(factorize(60), Some(vec![4, 3, 5]));
        assert_eq!(factorize(13), Some(vec![13]));
        assert_eq!(factorize(17), None);
        assert_eq!(factorize(688), None); // 16 · 43
    }

    #[test]
    fn matches_naive_dft_many_sizes() {
        for n in [
            1usize, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12, 13, 15, 16, 20, 24, 36, 60, 64, 100, 128, 243,
            256,
        ] {
            let x = demo_signal(n);
            let plan = Fft::new(n);
            for dir in [Direction::Forward, Direction::Backward] {
                let mut got = x.clone();
                let mut scratch = vec![Complex32::ZERO; plan.scratch_len()];
                plan.process_with_scratch(&mut got, &mut scratch, dir);
                let want = naive_dft32(&x, dir);
                let err = rel_l2_c32(&got, &want);
                assert!(err < 2e-5, "n={n} dir={dir:?}: rel err {err}");
            }
        }
    }

    #[test]
    fn bluestein_sizes_match_naive() {
        for n in [17usize, 31, 43, 97, 101, 344, 688] {
            let x = demo_signal(n);
            let plan = Fft::new(n);
            let mut got = x.clone();
            plan.forward(&mut got);
            let want = naive_dft32(&x, Direction::Forward);
            let err = rel_l2_c32(&got, &want);
            assert!(err < 5e-5, "bluestein n={n}: rel err {err}");
        }
    }

    #[test]
    fn inverse_round_trips() {
        for n in [8usize, 30, 128, 343, 97] {
            let x = demo_signal(n);
            let plan = Fft::new(n);
            let mut y = x.clone();
            plan.forward(&mut y);
            plan.inverse(&mut y);
            let err = rel_l2_c32(&y, &x);
            assert!(err < 1e-5, "n={n}: round-trip err {err}");
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 120;
        let x = demo_signal(n);
        let plan = Fft::new(n);
        let mut y = x.clone();
        plan.forward(&mut y);
        let ex: f64 = x.iter().map(|z| z.to_f64().norm_sqr()).sum();
        let ey: f64 = y.iter().map(|z| z.to_f64().norm_sqr()).sum();
        assert!(((ey / n as f64) - ex).abs() < 1e-3 * ex, "Parseval violated: {ey} vs {ex}");
    }

    #[test]
    fn backward_is_adjoint_of_forward() {
        // ⟨F x, y⟩ == ⟨x, F† y⟩ where F† is `backward`.
        let n = 48;
        let x = demo_signal(n);
        let y: Vec<Complex32> = (0..n)
            .map(|i| Complex32::new((i as f32 * 0.11).cos(), (i as f32 * 0.23).sin()))
            .collect();
        let plan = Fft::new(n);
        let mut fx = x.clone();
        plan.forward(&mut fx);
        let mut fy = y.clone();
        plan.backward(&mut fy);
        let dot = |a: &[Complex32], b: &[Complex32]| -> Complex64 {
            a.iter().zip(b).map(|(&p, &q)| p.to_f64().conj() * q.to_f64()).sum()
        };
        let lhs = dot(&fx, &y);
        let rhs = dot(&x, &fy);
        assert!((lhs - rhs).abs() < 1e-3, "adjoint mismatch: {lhs:?} vs {rhs:?}");
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let n = 64;
        let mut x = vec![Complex32::ZERO; n];
        x[0] = Complex32::ONE;
        Fft::new(n).forward(&mut x);
        for z in &x {
            assert!((z.re - 1.0).abs() < 1e-6 && z.im.abs() < 1e-6);
        }
    }

    #[test]
    fn shifted_impulse_produces_phase_ramp() {
        let n = 32;
        let shift = 3usize;
        let mut x = vec![Complex32::ZERO; n];
        x[shift] = Complex32::ONE;
        Fft::new(n).forward(&mut x);
        for (k, z) in x.iter().enumerate() {
            let want = Complex64::cis(-core::f64::consts::TAU * (shift * k) as f64 / n as f64);
            assert!((z.to_f64() - want).abs() < 1e-5, "k={k}");
        }
    }

    #[test]
    fn length_one_is_identity() {
        let plan = Fft::new(1);
        let mut x = vec![Complex32::new(2.5, -1.5)];
        plan.forward(&mut x);
        assert_eq!(x[0], Complex32::new(2.5, -1.5));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_length_rejected() {
        let _ = Fft::new(0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_buffer_length_rejected() {
        let plan = Fft::new(8);
        let mut x = vec![Complex32::ZERO; 7];
        plan.forward(&mut x);
    }
}
