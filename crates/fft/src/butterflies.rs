//! Small-radix DFT butterflies.
//!
//! Each butterfly computes an r-point DFT `s[k] = Σ_q t[q]·W_r^{qk}` with
//! `W_r = e^{sign·2πi/r}` (`sign = -1` forward, `+1` backward). Radix 2/3/4/5
//! are hand-specialized; other primes up to [`MAX_RADIX`] use a precomputed
//! `r×r` table of roots of unity.

use nufft_math::Complex32;

/// Largest prime radix handled by the Cooley–Tukey path; lengths containing a
/// prime factor above this go through Bluestein.
pub const MAX_RADIX: usize = 13;

/// In-place 2-point butterfly.
#[inline(always)]
pub fn bfly2(t: &mut [Complex32]) {
    let (a, b) = (t[0], t[1]);
    t[0] = a + b;
    t[1] = a - b;
}

/// In-place 3-point DFT. `sign` is −1 for forward, +1 for backward.
#[inline(always)]
pub fn bfly3(t: &mut [Complex32], sign: f32) {
    // W3 = -1/2 + sign·i·√3/2.
    const HALF_SQRT3: f32 = 0.866_025_4;
    let (a, b, c) = (t[0], t[1], t[2]);
    let sum = b + c;
    let diff = b - c;
    // Re/Im of sign·i·(√3/2)·diff.
    let rot = Complex32::new(-sign * HALF_SQRT3 * diff.im, sign * HALF_SQRT3 * diff.re);
    let mid = a - sum.scale(0.5);
    t[0] = a + sum;
    t[1] = mid + rot;
    t[2] = mid - rot;
}

/// In-place 4-point DFT. `sign` is −1 for forward, +1 for backward.
#[inline(always)]
pub fn bfly4(t: &mut [Complex32], sign: f32) {
    let (a, b, c, d) = (t[0], t[1], t[2], t[3]);
    let s02 = a + c;
    let d02 = a - c;
    let s13 = b + d;
    let d13 = b - d;
    // sign·i·d13.
    let j = Complex32::new(-sign * d13.im, sign * d13.re);
    t[0] = s02 + s13;
    t[1] = d02 + j;
    t[2] = s02 - s13;
    t[3] = d02 - j;
}

/// In-place 5-point DFT. `sign` is −1 for forward, +1 for backward.
#[inline(always)]
pub fn bfly5(t: &mut [Complex32], sign: f32) {
    // cos/sin of 2π/5 and 4π/5.
    const C1: f32 = 0.309_017; // cos(2π/5)
    const S1: f32 = 0.951_056_5; // sin(2π/5)
    const C2: f32 = -0.809_017; // cos(4π/5)
    const S2: f32 = 0.587_785_24; // sin(4π/5)
    let a = t[0];
    let (p1, m1) = (t[1] + t[4], t[1] - t[4]);
    let (p2, m2) = (t[2] + t[3], t[2] - t[3]);
    t[0] = a + p1 + p2;
    // X1/X4 pair and X2/X3 pair share real combinations.
    let r1 = a + p1.scale(C1) + p2.scale(C2);
    let r2 = a + p1.scale(C2) + p2.scale(C1);
    // Imag rotations i·(S1·m1 + S2·m2) and i·(S2·m1 − S1·m2), scaled by sign.
    let i1 = Complex32::new(-sign * (S1 * m1.im + S2 * m2.im), sign * (S1 * m1.re + S2 * m2.re));
    let i2 = Complex32::new(-sign * (S2 * m1.im - S1 * m2.im), sign * (S2 * m1.re - S1 * m2.re));
    t[1] = r1 + i1;
    t[4] = r1 - i1;
    t[2] = r2 + i2;
    t[3] = r2 - i2;
}

/// Generic r-point DFT using a precomputed root table
/// `roots[q*r + k] = e^{∓2πi·qk/r}`. The caller passes the table for the
/// direction it wants (the plan precomputes conjugated backward tables
/// instead of conjugating in this hot loop).
#[inline]
pub fn bfly_generic(t: &mut [Complex32], scratch: &mut [Complex32], roots: &[Complex32]) {
    let r = t.len();
    debug_assert_eq!(scratch.len(), r);
    debug_assert_eq!(roots.len(), r * r);
    for k in 0..r {
        let mut acc = t[0];
        for q in 1..r {
            acc = acc.mul_add(t[q], roots[q * r + k]);
        }
        scratch[k] = acc;
    }
    t.copy_from_slice(scratch);
}

/// Builds the forward root table for [`bfly_generic`].
pub fn generic_roots(r: usize) -> Vec<Complex32> {
    let mut roots = vec![Complex32::ZERO; r * r];
    for q in 0..r {
        for k in 0..r {
            let angle = -core::f64::consts::TAU * ((q * k) % r) as f64 / r as f64;
            roots[q * r + k] = nufft_math::Complex64::cis(angle).to_f32();
        }
    }
    roots
}

#[cfg(test)]
mod tests {
    use super::*;
    use nufft_math::Complex64;

    fn naive_small(t: &[Complex32], sign: f64) -> Vec<Complex32> {
        let r = t.len();
        (0..r)
            .map(|k| {
                let mut acc = Complex64::ZERO;
                for (q, &v) in t.iter().enumerate() {
                    let w =
                        Complex64::cis(sign * core::f64::consts::TAU * (q * k) as f64 / r as f64);
                    acc += v.to_f64() * w;
                }
                acc.to_f32()
            })
            .collect()
    }

    fn demo(r: usize) -> Vec<Complex32> {
        (0..r).map(|i| Complex32::new(1.0 + i as f32, (i as f32) * 0.5 - 1.0)).collect()
    }

    fn check(got: &[Complex32], want: &[Complex32], what: &str) {
        for (g, w) in got.iter().zip(want) {
            assert!(
                (g.re - w.re).abs() < 1e-4 && (g.im - w.im).abs() < 1e-4,
                "{what}: {g:?} vs {w:?}"
            );
        }
    }

    #[test]
    fn specialized_butterflies_match_naive() {
        for &(r, sign) in
            &[(2, -1.0), (2, 1.0), (3, -1.0), (3, 1.0), (4, -1.0), (4, 1.0), (5, -1.0), (5, 1.0)]
        {
            let mut t = demo(r);
            let want = naive_small(&t, sign);
            match r {
                2 => bfly2(&mut t),
                3 => bfly3(&mut t, sign as f32),
                4 => bfly4(&mut t, sign as f32),
                5 => bfly5(&mut t, sign as f32),
                _ => unreachable!(),
            }
            check(&t, &want, &format!("radix {r} sign {sign}"));
        }
    }

    #[test]
    fn generic_butterfly_matches_naive() {
        for r in [7usize, 11, 13] {
            let fwd_roots = generic_roots(r);
            let bwd_roots: Vec<Complex32> = fwd_roots.iter().map(|w| w.conj()).collect();
            for forward in [true, false] {
                let mut t = demo(r);
                let sign = if forward { -1.0 } else { 1.0 };
                let want = naive_small(&t, sign);
                let mut scratch = vec![Complex32::ZERO; r];
                let roots = if forward { &fwd_roots } else { &bwd_roots };
                bfly_generic(&mut t, &mut scratch, roots);
                check(&t, &want, &format!("generic radix {r} fwd {forward}"));
            }
        }
    }

    #[test]
    fn forward_backward_compose_to_scaled_identity() {
        let mut t = demo(4);
        let orig = t.clone();
        bfly4(&mut t, -1.0);
        bfly4(&mut t, 1.0);
        for (g, w) in t.iter().zip(&orig) {
            assert!((g.re - 4.0 * w.re).abs() < 1e-4 && (g.im - 4.0 * w.im).abs() < 1e-4);
        }
    }
}
