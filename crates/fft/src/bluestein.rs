//! Bluestein's chirp-z algorithm for arbitrary transform lengths.
//!
//! Rewrites the DFT as a circular convolution via `jk = (j² + k² − (j−k)²)/2`:
//!
//! `X[k] = a_k · Σ_j (x_j·a_j) · conj(a_{j−k})`, with `a_j = e^{-iπ j²/n}`.
//!
//! The convolution is carried out on a power-of-two grid of length
//! `L ≥ 2n−1` using the mixed-radix engine, so this module turns *any* length
//! into a handful of radix-4/2 transforms. Needed by e.g. the Table V dataset
//! (N = 344 → oversampled M = 688 = 16·43).

use crate::plan::{Direction, Fft};
use nufft_math::{Complex32, Complex64};

pub(crate) struct Bluestein {
    n: usize,
    /// Convolution length (power of two ≥ 2n−1).
    l: usize,
    inner: Fft,
    /// Forward chirp `a_j = e^{-iπ j²/n}`, `j ∈ [0, n)`.
    chirp: Vec<Complex32>,
    /// Forward FFT of the padded symmetric kernel `conj(a)`, pre-scaled by
    /// `1/L` so the inverse transform after pointwise multiply needs no
    /// extra normalization pass.
    kernel_hat: Vec<Complex32>,
}

impl Bluestein {
    pub(crate) fn new(n: usize) -> Self {
        let l = (2 * n - 1).next_power_of_two();
        let inner = Fft::new(l);
        let chirp: Vec<Complex32> = (0..n)
            .map(|j| {
                // j² mod 2n keeps the argument small for trig accuracy.
                let ph = core::f64::consts::PI * ((j * j) % (2 * n)) as f64 / n as f64;
                Complex64::cis(-ph).to_f32()
            })
            .collect();
        // Kernel v_j = conj(a_j) = e^{+iπ j²/n}, circularly symmetric.
        let mut kernel = vec![Complex32::ZERO; l];
        for j in 0..n {
            let v = chirp[j].conj();
            kernel[j] = v;
            if j > 0 {
                kernel[l - j] = v;
            }
        }
        inner.forward(&mut kernel);
        let scale = 1.0 / l as f32;
        for z in &mut kernel {
            *z *= scale;
        }
        Bluestein { n, l, inner, chirp, kernel_hat: kernel }
    }

    pub(crate) fn scratch_len(&self) -> usize {
        // One padded buffer plus the inner plan's own scratch.
        self.l + self.inner.scratch_len()
    }

    pub(crate) fn process(
        &self,
        data: &mut [Complex32],
        scratch: &mut [Complex32],
        dir: Direction,
    ) {
        debug_assert_eq!(data.len(), self.n);
        // Backward = conj ∘ forward ∘ conj (saves storing a second chirp).
        if dir == Direction::Backward {
            for z in data.iter_mut() {
                *z = z.conj();
            }
            self.process(data, scratch, Direction::Forward);
            for z in data.iter_mut() {
                *z = z.conj();
            }
            return;
        }

        let (buf, inner_scratch) = scratch.split_at_mut(self.l);
        // u_j = x_j · a_j, zero-padded to L.
        for j in 0..self.n {
            buf[j] = data[j] * self.chirp[j];
        }
        for z in buf[self.n..].iter_mut() {
            *z = Complex32::ZERO;
        }
        self.inner.process_with_scratch(buf, inner_scratch, Direction::Forward);
        for (z, &k) in buf.iter_mut().zip(&self.kernel_hat) {
            *z *= k;
        }
        self.inner.process_with_scratch(buf, inner_scratch, Direction::Backward);
        // X_k = a_k · (u ⊛ v)[k]; kernel_hat carried the 1/L.
        for k in 0..self.n {
            data[k] = buf[k] * self.chirp[k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_dft32;
    use nufft_math::error::rel_l2_c32;

    #[test]
    fn prime_lengths_match_naive() {
        for n in [17usize, 19, 23, 43, 127] {
            let x: Vec<Complex32> = (0..n)
                .map(|i| Complex32::new((i as f32 * 0.37).sin(), (i as f32 * 0.11).cos()))
                .collect();
            let b = Bluestein::new(n);
            let mut got = x.clone();
            let mut scratch = vec![Complex32::ZERO; b.scratch_len()];
            b.process(&mut got, &mut scratch, Direction::Forward);
            let want = naive_dft32(&x, Direction::Forward);
            let err = rel_l2_c32(&got, &want);
            assert!(err < 5e-5, "n={n}: err {err}");
        }
    }

    #[test]
    fn backward_round_trips() {
        let n = 29;
        let x: Vec<Complex32> =
            (0..n).map(|i| Complex32::new(i as f32 - 10.0, 0.5 * i as f32)).collect();
        let b = Bluestein::new(n);
        let mut y = x.clone();
        let mut scratch = vec![Complex32::ZERO; b.scratch_len()];
        b.process(&mut y, &mut scratch, Direction::Forward);
        b.process(&mut y, &mut scratch, Direction::Backward);
        for (g, w) in y.iter().zip(&x) {
            let want = w.scale(n as f32);
            assert!(
                (g.re - want.re).abs() < 1e-2 && (g.im - want.im).abs() < 1e-2,
                "{g:?} vs {want:?}"
            );
        }
    }
}
