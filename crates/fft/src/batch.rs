//! Batched (tiled) execution of Cooley–Tukey transforms over several lines
//! at once.
//!
//! The n-D transform applies a 1D FFT to every line of every axis. For a
//! strided axis the per-line path gathers one line at a time into a bounce
//! buffer — each gathered element touches a fresh cache line of which it
//! uses 8 bytes, and every twiddle is reloaded per line. The batched path
//! instead packs a tile of `b` *memory-adjacent* lines element-interleaved
//! (`tile[j·b + lane]` = element `j` of line `lane`; adjacent lines differ
//! by one in the innermost index, so each gather step is one contiguous
//! `b`-complex copy) and runs the whole Cooley–Tukey recursion across the
//! tile: every twiddle load is amortized over `b` lines and the column
//! butterflies in `nufft_simd::fft_rows` consume full SIMD vectors of
//! always-contiguous data.
//!
//! Bit-identity: at a fixed ISA level the column kernels perform the same
//! per-element arithmetic as the row kernels used by the per-line path, and
//! the scalar combine below mirrors `Fft::recurse`'s scalar combine exactly
//! (same `MIN_SIMD_M` branch), so a batched transform is bit-identical to
//! transforming the same lines one at a time. `crates/fft/tests/
//! proptest_fft.rs` pins this under every ISA override.

use crate::butterflies::{bfly2, bfly3, bfly4, bfly5, bfly_generic, MAX_RADIX};
use crate::plan::{Direction, Fft, Stage, MIN_SIMD_M};
use nufft_math::Complex32;
use nufft_simd::fft_rows;

/// Backward-direction twiddle/root tables for a stage slice, indexed
/// parallel to the `stages` passed to [`recurse`]. Callers running a stage
/// *suffix* (the four-step sub-FFT pass) slice the plan's full tables with
/// the same offset, so `twiddles[level]` always matches `stages[level]`.
pub(crate) type BwdView<'a> = (&'a [Vec<Complex32>], &'a [Vec<Complex32>]);

/// Transforms `b` interleaved lines held in `tile` (layout `[j·b + lane]`,
/// `tile.len() == plan.len()·b`) in place. `work` is scratch of the same
/// length.
///
/// # Panics
/// Panics (debug) if `plan` is not Cooley–Tukey or lengths mismatch; the
/// caller ([`crate::FftNd`]) guarantees both.
pub(crate) fn transform_tile(
    plan: &Fft,
    tile: &mut [Complex32],
    work: &mut [Complex32],
    b: usize,
    dir: Direction,
) {
    debug_assert!(plan.is_ct(), "batched tiles require a Cooley-Tukey plan");
    let n = plan.len();
    debug_assert_eq!(tile.len(), n * b);
    let work = &mut work[..n * b];
    work.copy_from_slice(tile);
    let bwd = match dir {
        Direction::Forward => None,
        Direction::Backward => {
            let t = plan.bwd_tables();
            Some((&t.twiddles[..], &t.roots[..]))
        }
    };
    recurse(plan.stages(), 0, work, 0, 1, tile, b, bwd);
}

/// Decimation-in-time recursion over a `b`-line tile: the exact structure of
/// `Fft::recurse` with every element index scaled by `b` (line-interleaved
/// layout) and the combine loop running across lanes. Exposed crate-wide so
/// the four-step path (`crate::fourstep`) can run a stage *suffix* — the
/// greedy factorizer guarantees `stages[j..]` is exactly the stage list of a
/// plan for the suffix length, so the sub-FFT pass reuses these kernels
/// unchanged.
#[allow(clippy::too_many_arguments)]
pub(crate) fn recurse(
    stages: &[Stage],
    level: usize,
    src: &[Complex32],
    off: usize,
    stride: usize,
    dst: &mut [Complex32],
    b: usize,
    bwd: Option<BwdView<'_>>,
) {
    if level == stages.len() {
        debug_assert_eq!(dst.len(), b);
        dst.copy_from_slice(&src[off * b..(off + 1) * b]);
        return;
    }
    let stage = &stages[level];
    let r = stage.radix;
    let m = stage.m;
    debug_assert_eq!(dst.len(), r * m * b);

    for q in 0..r {
        recurse(
            stages,
            level + 1,
            src,
            off + q * stride,
            stride * r,
            &mut dst[q * m * b..(q + 1) * m * b],
            b,
            bwd,
        );
    }

    let forward = bwd.is_none();
    let tw = match bwd {
        None => &stage.twiddles[..],
        Some((tws, _)) => &tws[level][..],
    };
    match r {
        2 if m >= MIN_SIMD_M => {
            let (d0, d1) = dst.split_at_mut(m * b);
            fft_rows::bfly2_cols(d0, d1, tw, b);
        }
        4 if m >= MIN_SIMD_M => {
            let (d01, d23) = dst.split_at_mut(2 * m * b);
            let (d0, d1) = d01.split_at_mut(m * b);
            let (d2, d3) = d23.split_at_mut(m * b);
            let (tw1, rest) = tw.split_at(m);
            let (tw2, tw3) = rest.split_at(m);
            fft_rows::bfly4_cols(d0, d1, d2, d3, tw1, tw2, tw3, b, forward);
        }
        _ => {
            let roots = match bwd {
                None => &stage.roots[..],
                Some((_, rts)) => &rts[level][..],
            };
            let sign = if forward { -1.0f32 } else { 1.0 };
            let mut t = [Complex32::ZERO; MAX_RADIX];
            let mut s = [Complex32::ZERO; MAX_RADIX];
            for k in 0..m {
                for lane in 0..b {
                    t[0] = dst[k * b + lane];
                    for q in 1..r {
                        t[q] = dst[(q * m + k) * b + lane] * tw[(q - 1) * m + k];
                    }
                    match r {
                        2 => bfly2(&mut t[..2]),
                        3 => bfly3(&mut t[..3], sign),
                        4 => bfly4(&mut t[..4], sign),
                        5 => bfly5(&mut t[..5], sign),
                        _ => bfly_generic(&mut t[..r], &mut s[..r], roots),
                    }
                    for (k2, &v) in t[..r].iter().enumerate() {
                        dst[(k2 * m + k) * b + lane] = v;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(len: usize, salt: u32) -> Vec<Complex32> {
        (0..len)
            .map(|i| {
                let x = i as f32 * 0.17 + salt as f32;
                Complex32::new((0.9 * x).sin(), (0.4 * x).cos())
            })
            .collect()
    }

    /// A batched tile equals transforming each lane with the 1D plan — for
    /// every radix mix the factorizer produces, both directions.
    #[test]
    fn tile_matches_per_lane_bitwise() {
        for n in [1usize, 4, 8, 12, 16, 30, 60, 96, 120, 126] {
            let plan = Fft::new(n);
            for b in [2usize, 3, 4] {
                for dir in [Direction::Forward, Direction::Backward] {
                    let lanes: Vec<Vec<Complex32>> = (0..b as u32).map(|s| demo(n, s)).collect();
                    // Interleave into a tile and transform batched.
                    let mut tile = vec![Complex32::ZERO; n * b];
                    for (lane, l) in lanes.iter().enumerate() {
                        for j in 0..n {
                            tile[j * b + lane] = l[j];
                        }
                    }
                    let mut work = vec![Complex32::ZERO; n * b];
                    transform_tile(&plan, &mut tile, &mut work, b, dir);
                    // Transform each lane with the ordinary per-line plan.
                    let mut scratch = vec![Complex32::ZERO; plan.scratch_len()];
                    for (lane, l) in lanes.iter().enumerate() {
                        let mut want = l.clone();
                        plan.process_with_scratch(&mut want, &mut scratch, dir);
                        for j in 0..n {
                            let got = tile[j * b + lane];
                            assert!(
                                got.re.to_bits() == want[j].re.to_bits()
                                    && got.im.to_bits() == want[j].im.to_bits(),
                                "n={n} b={b} {dir:?} lane={lane} j={j}: {got:?} vs {:?}",
                                want[j]
                            );
                        }
                    }
                }
            }
        }
    }
}
