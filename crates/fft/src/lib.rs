//! From-scratch complex FFT substrate for the NUFFT suite.
//!
//! The paper uses Intel MKL's FFTW-interface FFT for the oversampled
//! Cartesian transforms; this crate plays that role. It provides:
//!
//! * [`Fft`] — a 1D complex-to-complex plan: recursive decimation-in-time
//!   mixed-radix Cooley–Tukey with specialized radix-2/3/4/5 butterflies,
//!   generic small-prime butterflies up to 13, and Bluestein's chirp-z
//!   algorithm for lengths with larger prime factors (e.g. the 688 = 16·43
//!   oversampled grid of the Table V dataset);
//! * [`FftNd`] — row-major n-dimensional transforms built from 1D line
//!   transforms, executed in SIMD-friendly tiles of adjacent lines for
//!   strided axes, with raw per-tile/per-line entry points that
//!   `nufft-core` uses to parallelize work across the task pool;
//! * [`FftStrategy`] — per-plan choice between the depth-first recursive
//!   path and the four-step (Bailey) decomposition of [`fourstep`], whose
//!   sub-FFT + cache-blocked-transpose sweeps keep out-of-LLC axis lines
//!   bandwidth-friendly while staying bit-identical to the recursive path;
//! * [`shift`] — `fftshift` / index "chopping" utilities (§II-B of the
//!   paper);
//! * [`naive`] — `O(n²)` reference DFTs in `f64`, the oracle for every FFT
//!   test and the accuracy baseline for the NUFFT experiments.
//!
//! Conventions: `forward` computes `X[k] = Σ_n x[n]·e^{-2πi nk/N}`
//! (unnormalized); [`Fft::backward`] is its exact adjoint (unnormalized
//! `e^{+2πi nk/N}` sum); [`Fft::inverse`] is `backward` scaled by `1/N` so
//! that `inverse(forward(x)) == x`.

// Index-based loops below frequently address several parallel arrays
// at once; clippy's iterator suggestion would obscure that.
#![allow(clippy::needless_range_loop)]

pub mod fourstep;
pub mod naive;
pub mod ndim;
pub mod plan;
pub mod shift;

mod batch;
mod bluestein;
mod butterflies;

pub use fourstep::{FftStrategy, DEFAULT_LLC_BUDGET};
pub use ndim::FftNd;
pub use plan::{Direction, Fft};

/// Smallest length `≥ n` whose prime factorization uses only the
/// specialized butterfly radices (2, 3, 5, 7, 11, 13), so a plan of that
/// length never falls back to Bluestein. Type-3 planning uses this to
/// size intermediate fine grids: the grid is a free parameter there, so
/// it may as well land on a fast length.
pub fn next_fast_len(n: usize) -> usize {
    let mut n = n.max(1);
    loop {
        let mut r = n;
        for p in [2usize, 3, 5, 7, 11, 13] {
            while r.is_multiple_of(p) {
                r /= p;
            }
        }
        if r == 1 {
            return n;
        }
        n += 1;
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn next_fast_len_is_smooth_and_minimal() {
        assert_eq!(super::next_fast_len(0), 1);
        assert_eq!(super::next_fast_len(13), 13);
        assert_eq!(super::next_fast_len(17), 18);
        assert_eq!(super::next_fast_len(101), 104); // 101 prime; 104 = 8·13
        for n in [37usize, 241, 1031] {
            let f = super::next_fast_len(n);
            assert!(f >= n);
            let mut r = f;
            for p in [2usize, 3, 5, 7, 11, 13] {
                while r.is_multiple_of(p) {
                    r /= p;
                }
            }
            assert_eq!(r, 1, "{f} not smooth");
        }
    }
}
