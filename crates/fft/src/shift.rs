//! Spectral/image shifting utilities (§II-B of the paper).
//!
//! MRI reconstructions need the image and/or spectrum origin moved to the
//! array center before/after FFT calls. Two equivalent mechanisms exist:
//!
//! * [`fftshift`] / [`ifftshift`] — circularly rotate each axis by half its
//!   extent (the Matlab commands of the same names);
//! * [`chop`] — multiply element `(i₀,…,i_d)` by `(−1)^{Σ i}`, which performs
//!   the *conjugate-domain* shift in linear time with no data movement. For
//!   even extents, `chop` before and after a transform equals shifting both
//!   domains.

use nufft_math::Complex32;

/// Rotates each axis left by `⌈n/2⌉`, moving index 0 to the center
/// (Matlab `fftshift`). In place, row-major.
///
/// # Panics
/// Panics if `data.len()` is not the product of `shape`.
pub fn fftshift(data: &mut [Complex32], shape: &[usize]) {
    shift_axes(data, shape, |n| n.div_ceil(2));
}

/// The inverse of [`fftshift`]: rotates each axis left by `⌊n/2⌋`.
pub fn ifftshift(data: &mut [Complex32], shape: &[usize]) {
    shift_axes(data, shape, |n| n / 2);
}

fn shift_axes(data: &mut [Complex32], shape: &[usize], amount: impl Fn(usize) -> usize) {
    let len: usize = shape.iter().product();
    assert_eq!(data.len(), len, "data length must match shape product");
    let nd = shape.len();
    let mut line_buf: Vec<Complex32> = Vec::new();
    for axis in 0..nd {
        let n = shape[axis];
        let k = amount(n);
        if k == 0 || n <= 1 {
            continue;
        }
        let stride: usize = shape[axis + 1..].iter().product();
        let lines = len / n;
        line_buf.resize(n, Complex32::ZERO);
        for line in 0..lines {
            let outer = line / stride;
            let inner = line % stride;
            let start = outer * n * stride + inner;
            if stride == 1 {
                data[start..start + n].rotate_left(k);
            } else {
                for j in 0..n {
                    line_buf[j] = data[start + j * stride];
                }
                line_buf.rotate_left(k);
                for j in 0..n {
                    data[start + j * stride] = line_buf[j];
                }
            }
        }
    }
}

/// Multiplies element `(i₀,…,i_d)` by `(−1)^{i₀+⋯+i_d}` ("chopping").
///
/// # Panics
/// Panics if `data.len()` is not the product of `shape`.
pub fn chop(data: &mut [Complex32], shape: &[usize]) {
    let len: usize = shape.iter().product();
    assert_eq!(data.len(), len, "data length must match shape product");
    // Row-major: the parity of the flattened index does NOT equal the parity
    // of the index sum in general, so track the sum explicitly per element
    // by iterating odometer style over the leading axes and flipping within
    // the last.
    let nd = shape.len();
    let last = shape[nd - 1];
    let rows = len / last;
    let mut idx = vec![0usize; nd.saturating_sub(1)];
    for r in 0..rows {
        let parity: usize = idx.iter().sum();
        let base = r * last;
        for j in 0..last {
            if (parity + j) % 2 == 1 {
                data[base + j] = -data[base + j];
            }
        }
        // Odometer increment over leading axes (row-major order).
        for d in (0..nd - 1).rev() {
            idx[d] += 1;
            if idx[d] < shape[d] {
                break;
            }
            idx[d] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FftNd;

    fn demo(len: usize) -> Vec<Complex32> {
        (0..len).map(|i| Complex32::new(i as f32, -(i as f32))).collect()
    }

    #[test]
    fn fftshift_1d_even() {
        let mut x = demo(6);
        fftshift(&mut x, &[6]);
        let want: Vec<f32> = vec![3.0, 4.0, 5.0, 0.0, 1.0, 2.0];
        assert!(x.iter().zip(&want).all(|(z, &w)| z.re == w));
    }

    #[test]
    fn fftshift_1d_odd_round_trips_with_ifftshift() {
        let x = demo(7);
        let mut y = x.clone();
        fftshift(&mut y, &[7]);
        // Zero index moves to the center position ⌊n/2⌋.
        assert_eq!(y[3].re, 0.0);
        ifftshift(&mut y, &[7]);
        assert_eq!(y, x);
    }

    #[test]
    fn fftshift_2d_moves_origin_to_center() {
        let shape = [4usize, 6];
        let mut x = vec![Complex32::ZERO; 24];
        x[0] = Complex32::ONE;
        fftshift(&mut x, &shape);
        // Origin lands at (2, 3) → flat 2*6+3 = 15.
        assert_eq!(x[15], Complex32::ONE);
        assert_eq!(x.iter().filter(|z| z.re != 0.0).count(), 1);
    }

    #[test]
    fn shift_round_trip_3d() {
        let shape = [3usize, 4, 5];
        let x = demo(60);
        let mut y = x.clone();
        fftshift(&mut y, &shape);
        ifftshift(&mut y, &shape);
        assert_eq!(y, x);
    }

    #[test]
    fn chop_flips_odd_parity_sites() {
        let shape = [2usize, 3];
        let mut x = vec![Complex32::ONE; 6];
        chop(&mut x, &shape);
        // Index sums: (0,0)=0 (0,1)=1 (0,2)=2 (1,0)=1 (1,1)=2 (1,2)=3.
        let want = [1.0f32, -1.0, 1.0, -1.0, 1.0, -1.0];
        for (z, &w) in x.iter().zip(&want) {
            assert_eq!(z.re, w);
        }
    }

    #[test]
    fn chop_twice_is_identity() {
        let shape = [3usize, 5, 2];
        let x = demo(30);
        let mut y = x.clone();
        chop(&mut y, &shape);
        chop(&mut y, &shape);
        assert_eq!(y, x);
    }

    #[test]
    fn chop_equals_fftshift_in_conjugate_domain_even_sizes() {
        // For even extents: FFT(chop(x)) == fftshift(FFT(x)).
        let shape = [4usize, 8];
        let x = demo(32);
        let plan = FftNd::new(&shape);

        let mut via_chop = x.clone();
        chop(&mut via_chop, &shape);
        plan.forward(&mut via_chop);

        let mut via_shift = x.clone();
        plan.forward(&mut via_shift);
        fftshift(&mut via_shift, &shape);

        for (a, b) in via_chop.iter().zip(&via_shift) {
            assert!((a.re - b.re).abs() < 1e-3 && (a.im - b.im).abs() < 1e-3, "{a:?} vs {b:?}");
        }
    }
}
