//! n-dimensional FFT over row-major (C-order) complex buffers.
//!
//! The transform is separable: each axis is handled by a 1D [`Fft`] applied
//! to every line along that axis. The innermost axis is contiguous and is
//! transformed in place; other axes are grouped into *tiles* of
//! [`FftNd::batch_width`] memory-adjacent lines and run through the batched
//! Cooley–Tukey path (`crate::batch`), which amortizes twiddle loads over
//! the tile and keeps every access contiguous — or fall back to a per-line
//! bounce buffer for remainder tiles and Bluestein axes. The per-tile and
//! per-line entry points ([`FftNd::num_tiles`], [`FftNd::transform_tile_raw`],
//! [`FftNd::transform_line_raw`]) exist so `nufft-core` can shard work
//! across its worker pool — the plan itself is `Sync`, and the tiles (and
//! lines) of one axis are pairwise disjoint.

use crate::fourstep::{FftStrategy, FourStep, DEFAULT_LLC_BUDGET};
use crate::plan::{Direction, Fft};
use nufft_math::Complex32;

/// An n-dimensional complex FFT plan for a fixed row-major shape.
pub struct FftNd {
    shape: Vec<usize>,
    plans: Vec<Fft>,
    len: usize,
    strategy: FftStrategy,
    /// Per-axis four-step split; `None` runs the recursive path.
    splits: Vec<Option<FourStep>>,
}

impl FftNd {
    /// Prepares a plan for `shape` (row-major; last axis contiguous) with
    /// the default [`FftStrategy::Auto`] selection.
    ///
    /// # Panics
    /// Panics if `shape` is empty or any extent is zero.
    pub fn new(shape: &[usize]) -> Self {
        Self::with_strategy(shape, FftStrategy::Auto, DEFAULT_LLC_BUDGET)
    }

    /// Prepares a plan with an explicit per-axis execution strategy.
    /// `llc_budget` (bytes) is the [`FftStrategy::Auto`] threshold: an axis
    /// whose single line of complex data exceeds it runs four-step. Forced
    /// [`FftStrategy::FourStep`] applies to every eligible axis regardless
    /// of size; Bluestein and single-stage axes always stay recursive. Both
    /// paths are bit-identical at a fixed ISA level, so the strategy is pure
    /// execution policy.
    ///
    /// # Panics
    /// Panics if `shape` is empty or any extent is zero.
    pub fn with_strategy(shape: &[usize], strategy: FftStrategy, llc_budget: usize) -> Self {
        assert!(!shape.is_empty(), "shape must have at least one axis");
        assert!(shape.iter().all(|&n| n > 0), "all extents must be positive");
        let plans: Vec<Fft> = shape.iter().map(|&n| Fft::new(n)).collect();
        let len = shape.iter().product();
        let b = Self::batch_width();
        let splits = shape
            .iter()
            .zip(&plans)
            .map(|(&n, plan)| {
                let want = match strategy {
                    FftStrategy::Recursive => false,
                    FftStrategy::FourStep => true,
                    FftStrategy::Auto => n * core::mem::size_of::<Complex32>() > llc_budget,
                };
                if want {
                    FourStep::plan(plan, b)
                } else {
                    None
                }
            })
            .collect();
        FftNd { shape: shape.to_vec(), plans, len, strategy, splits }
    }

    /// The strategy this plan was built with.
    pub fn strategy(&self) -> FftStrategy {
        self.strategy
    }

    /// Whether `axis` runs the four-step (sub-FFT + blocked-transpose)
    /// path. When false, the axis uses the recursive tile path and none of
    /// the `fs_*` entry points may be called for it.
    pub fn axis_fourstep(&self, axis: usize) -> bool {
        self.splits[axis].is_some()
    }

    fn split(&self, axis: usize) -> &FourStep {
        self.splits[axis].as_ref().expect("axis does not use the four-step path")
    }

    /// Number of four-step axes = number of `fs` scratch slots a caller
    /// must provision. Each four-step axis needs its **own** `len()`-sized
    /// region when passes of different axes may overlap (the fused DAG):
    /// an axis's sub-FFT pass writes `fs` at different element positions
    /// than it reads the grid, so reusing one region across axes would
    /// race with the previous axis's combine pass still reading it.
    pub fn fs_slots(&self) -> usize {
        self.splits.iter().filter(|s| s.is_some()).count()
    }

    /// The `fs` scratch slot index of a four-step `axis` (its rank among
    /// the four-step axes); callers offset their scratch by
    /// `fs_slot(axis) · len()`.
    pub fn fs_slot(&self, axis: usize) -> usize {
        debug_assert!(self.axis_fourstep(axis));
        self.splits[..axis].iter().filter(|s| s.is_some()).count()
    }

    /// The row-major shape this plan transforms.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always false (zero extents are rejected at construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of axes.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Element stride between consecutive entries along `axis`.
    pub fn axis_stride(&self, axis: usize) -> usize {
        self.shape[axis + 1..].iter().product()
    }

    /// Number of independent lines along `axis`.
    pub fn num_lines(&self, axis: usize) -> usize {
        self.len / self.shape[axis]
    }

    /// Start offset of line `line` along `axis`.
    ///
    /// Lines are indexed by `(outer, inner)` flattened as
    /// `line = outer·stride + inner` where `stride = axis_stride(axis)` and
    /// `outer` ranges over the axes before `axis`.
    pub fn line_start(&self, axis: usize, line: usize) -> usize {
        let stride = self.axis_stride(axis);
        let outer = line / stride;
        let inner = line % stride;
        outer * self.shape[axis] * stride + inner
    }

    /// Scratch length required per worker for any axis of this plan.
    pub fn scratch_len(&self) -> usize {
        let fft_scratch = self.plans.iter().map(|p| p.scratch_len()).max().unwrap_or(0);
        let line_buf = self.shape.iter().copied().max().unwrap_or(0);
        fft_scratch + line_buf
    }

    /// Lines per tile for the batched strided-axis path at the active ISA
    /// level: the SIMD complex-lane count (2 for SSE2, 4 for AVX2), floored
    /// at 2 so the scalar levels still amortize twiddle loads.
    pub fn batch_width() -> usize {
        nufft_simd::active_isa().c32_lanes().max(2)
    }

    /// Scratch length required per worker by [`FftNd::transform_tile_raw`]
    /// with tiles of `b` lines (covers the per-line fallback too).
    pub fn batch_scratch_len(&self, b: usize) -> usize {
        let ct_max = self
            .shape
            .iter()
            .zip(&self.plans)
            .filter(|(_, p)| p.is_ct())
            .map(|(&n, _)| n)
            .max()
            .unwrap_or(0);
        self.scratch_len().max(2 * b * ct_max)
    }

    /// Number of tiles of width `b` along `axis`. Tiles group memory-adjacent
    /// lines within one `outer` block (they never straddle an outer
    /// boundary); the contiguous innermost axis has one line per tile.
    pub fn num_tiles(&self, axis: usize, b: usize) -> usize {
        assert!(b > 0, "tile width must be positive");
        let stride = self.axis_stride(axis);
        if stride == 1 {
            self.num_lines(axis)
        } else {
            let outers = self.len / (self.shape[axis] * stride);
            outers * stride.div_ceil(b)
        }
    }

    /// The tile (of width `b`, indexed as in [`FftNd::num_tiles`]) whose
    /// lines contain element `elem` for a transform along `axis`. Together
    /// with [`FftNd::for_each_tile_element`] this is the tile read/write
    /// footprint metadata a fused task graph needs: a consumer of element
    /// `elem` after the axis pass must order itself behind exactly this
    /// tile's task, instead of behind an all-axis join.
    pub fn tile_of_element(&self, axis: usize, elem: usize, b: usize) -> usize {
        debug_assert!(elem < self.len);
        let n = self.shape[axis];
        let stride = self.axis_stride(axis);
        if stride == 1 {
            // One contiguous line per tile.
            elem / n
        } else {
            let outer = elem / (n * stride);
            let inner = elem % stride;
            outer * stride.div_ceil(b) + inner / b
        }
    }

    /// Calls `f` for every element read (and written) by tile `tile` of
    /// `axis` at width `b` — the inverse of [`FftNd::tile_of_element`].
    /// Tiles of one axis partition the buffer, so iterating all tiles
    /// visits every element exactly once.
    pub fn for_each_tile_element(
        &self,
        axis: usize,
        tile: usize,
        b: usize,
        mut f: impl FnMut(usize),
    ) {
        let n = self.shape[axis];
        let stride = self.axis_stride(axis);
        if stride == 1 {
            let start = tile * n;
            for e in start..start + n {
                f(e);
            }
        } else {
            let tiles_per_outer = stride.div_ceil(b);
            let outer = tile / tiles_per_outer;
            let inner0 = (tile % tiles_per_outer) * b;
            let lines_here = b.min(stride - inner0);
            for j in 0..n {
                let base = outer * n * stride + j * stride + inner0;
                for e in base..base + lines_here {
                    f(e);
                }
            }
        }
    }

    /// Width (in columns) of one sub-FFT column group of a four-step axis.
    /// Columns are split into at most four groups per tile so a fused task
    /// graph gets intra-tile parallelism without exploding node count; on
    /// the contiguous innermost axis the width is rounded up to a whole
    /// number of `b`-column batches so no batch straddles a group boundary.
    pub fn fs_col_group_width(&self, axis: usize, b: usize) -> usize {
        assert!(b > 0, "batch width must be positive");
        let p = self.split(axis).p;
        let g = p.div_ceil(4);
        if self.axis_stride(axis) == 1 {
            g.next_multiple_of(b)
        } else {
            g
        }
    }

    /// Number of sub-FFT column groups per tile of a four-step axis (the
    /// first-pass shard count).
    pub fn fs_col_groups(&self, axis: usize, b: usize) -> usize {
        self.split(axis).p.div_ceil(self.fs_col_group_width(axis, b))
    }

    /// Number of combine k-blocks per tile of a four-step axis (the
    /// second-pass shard count).
    pub fn fs_k_blocks(&self, axis: usize) -> usize {
        self.split(axis).k_blocks()
    }

    /// The sub-FFT column group of `axis` that *reads* element `elem` — the
    /// read-side inverse of [`FftNd::for_each_fs_col_element`], used by a
    /// fused task graph to order a four-step axis's first pass behind
    /// exactly the writers of its columns.
    pub fn fs_col_group_of_element(&self, axis: usize, elem: usize, b: usize) -> usize {
        let four = self.split(axis);
        let n = self.shape[axis];
        let stride = self.axis_stride(axis);
        let pos = if stride == 1 { elem % n } else { (elem / stride) % n };
        (pos % four.p) / self.fs_col_group_width(axis, b)
    }

    /// The combine k-block of `axis` that *writes* element `elem` — the
    /// writer-lookup a fused task graph needs to order consumers of a
    /// four-step axis behind exactly one second-pass task (paired with
    /// [`FftNd::tile_of_element`] for the tile coordinate).
    pub fn fs_kblock_of_element(&self, axis: usize, elem: usize) -> usize {
        let four = self.split(axis);
        let n = self.shape[axis];
        let stride = self.axis_stride(axis);
        let pos = if stride == 1 { elem % n } else { (elem / stride) % n };
        (pos % four.n2) / four.kb
    }

    /// Calls `f` for every grid element *read* by sub-FFT column group `cg`
    /// of tile `tile` on four-step `axis`: the decimated sequences
    /// `x[c + P·t]` of its columns, across the tile's lines. The groups of
    /// one tile partition the tile's elements.
    pub fn for_each_fs_col_element(
        &self,
        axis: usize,
        tile: usize,
        cg: usize,
        b: usize,
        mut f: impl FnMut(usize),
    ) {
        let four = self.split(axis);
        let (p, n2) = (four.p, four.n2);
        let n = self.shape[axis];
        let stride = self.axis_stride(axis);
        let w = self.fs_col_group_width(axis, b);
        let c_lo = cg * w;
        let c_hi = (c_lo + w).min(p);
        if stride == 1 {
            let start = tile * n;
            for c in c_lo..c_hi {
                for t in 0..n2 {
                    f(start + c + p * t);
                }
            }
        } else {
            let tiles_per_outer = stride.div_ceil(b);
            let outer = tile / tiles_per_outer;
            let inner0 = (tile % tiles_per_outer) * b;
            let lines_here = b.min(stride - inner0);
            let base = outer * n * stride + inner0;
            for c in c_lo..c_hi {
                for t in 0..n2 {
                    let e0 = base + (c + p * t) * stride;
                    for l in 0..lines_here {
                        f(e0 + l);
                    }
                }
            }
        }
    }

    /// Calls `f` for every grid element *written* by combine k-block
    /// `kblock` of tile `tile` on four-step `axis` (axis positions `p` with
    /// `p mod n2` inside the k-block, across all blocks). The same set is
    /// the pass's read footprint of the intermediate buffer, and the
    /// k-blocks of one tile partition the tile's elements.
    pub fn for_each_fs_kblock_element(
        &self,
        axis: usize,
        tile: usize,
        kblock: usize,
        b: usize,
        mut f: impl FnMut(usize),
    ) {
        let four = self.split(axis);
        let (p, n2) = (four.p, four.n2);
        let k0 = kblock * four.kb;
        let kbw = four.kb.min(n2 - k0);
        let n = self.shape[axis];
        let stride = self.axis_stride(axis);
        if stride == 1 {
            let start = tile * n;
            for beta in 0..p {
                for k in k0..k0 + kbw {
                    f(start + beta * n2 + k);
                }
            }
        } else {
            let tiles_per_outer = stride.div_ceil(b);
            let outer = tile / tiles_per_outer;
            let inner0 = (tile % tiles_per_outer) * b;
            let lines_here = b.min(stride - inner0);
            let base = outer * n * stride + inner0;
            for beta in 0..p {
                for k in k0..k0 + kbw {
                    let e0 = base + (beta * n2 + k) * stride;
                    for l in 0..lines_here {
                        f(e0 + l);
                    }
                }
            }
        }
    }

    /// Four-step pass 1 for column group `cg` of tile `tile`: gathers each
    /// column's decimated sequence from `src`, runs the length-`n2`
    /// stage-suffix sub-FFT through the batched kernels, and scatters the
    /// spectrum into its digit-reversed block of `fs` (same line layout as
    /// the grid). `scratch` must be at least [`FftNd::batch_scratch_len`]
    /// `(b)` long.
    ///
    /// # Safety
    /// `src` and `fs` must each point to buffers of [`FftNd::len`] elements
    /// ([`FftNd::for_each_fs_col_element`] gives this call's `src` read set;
    /// it writes the `fs` blocks of its columns), and no other thread may
    /// concurrently write those regions. Distinct `(tile, cg)` pairs write
    /// disjoint `fs` regions, so sharding them across threads is sound.
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn fs_sub_pass_raw(
        &self,
        src: *const Complex32,
        fs: *mut Complex32,
        axis: usize,
        tile: usize,
        cg: usize,
        b: usize,
        scratch: &mut [Complex32],
        dir: Direction,
    ) {
        let four = self.split(axis);
        let plan = &self.plans[axis];
        let stages = plan.stages();
        let bwd = match dir {
            Direction::Forward => None,
            Direction::Backward => {
                let t = plan.bwd_tables();
                Some((&t.twiddles[..], &t.roots[..]))
            }
        };
        let (p, n2) = (four.p, four.n2);
        let n = self.shape[axis];
        let stride = self.axis_stride(axis);
        let w = self.fs_col_group_width(axis, b);
        let c_lo = cg * w;
        let c_hi = (c_lo + w).min(p);
        if stride == 1 {
            // Batch up to `b` *adjacent columns* per sub-FFT tile: element
            // `t` of columns `c0..c0+w` is the contiguous run
            // `src[c0 + P·t ..][..w]`, and `w ≤ P` keeps the runs disjoint.
            let start = tile * n;
            let mut c0 = c_lo;
            while c0 < c_hi {
                let cols = b.min(c_hi - c0);
                let (seq, rest) = scratch.split_at_mut(n2 * cols);
                let out = &mut rest[..n2 * cols];
                let sv = core::slice::from_raw_parts(src.add(start + c0), (n2 - 1) * p + cols);
                nufft_simd::gather_chunks(seq, sv, cols, p);
                crate::batch::recurse(stages, four.j, seq, 0, 1, out, cols, bwd);
                for lane in 0..cols {
                    let beta = four.block_of_col(stages, c0 + lane);
                    let dv = core::slice::from_raw_parts_mut(fs.add(start + beta * n2), n2);
                    nufft_simd::gather_chunks(dv, &out[lane..], 1, cols);
                }
                c0 += cols;
            }
        } else {
            // Strided axis: the tile's `lines_here` memory-adjacent lines
            // ride as interleaved lanes, one column at a time.
            let tiles_per_outer = stride.div_ceil(b);
            let outer = tile / tiles_per_outer;
            let inner0 = (tile % tiles_per_outer) * b;
            let lanes = b.min(stride - inner0);
            let base = outer * n * stride + inner0;
            for c in c_lo..c_hi {
                let (seq, rest) = scratch.split_at_mut(n2 * lanes);
                let out = &mut rest[..n2 * lanes];
                let sv = core::slice::from_raw_parts(
                    src.add(base + c * stride),
                    (n2 - 1) * p * stride + lanes,
                );
                nufft_simd::gather_chunks(seq, sv, lanes, p * stride);
                crate::batch::recurse(stages, four.j, seq, 0, 1, out, lanes, bwd);
                let beta = four.block_of_col(stages, c);
                let dv = core::slice::from_raw_parts_mut(
                    fs.add(base + beta * n2 * stride),
                    (n2 - 1) * stride + lanes,
                );
                nufft_simd::scatter_chunks(out, dv, lanes, stride);
            }
        }
    }

    /// Four-step pass 2 for k-block `kblock` of tile `tile`: the
    /// cache-blocked transpose-and-combine. Gathers one `kbw`-wide slab from
    /// every block of `fs` — applying the innermost combine level's twiddles
    /// during the gather when the split hoists them — runs combine levels
    /// `j-1..0` in cache, and scatters the finished spectrum slab into
    /// `dst`. Returns the seconds spent in the gather/twiddle sweep (the
    /// transpose-read half of the pass) for the caller's timing split.
    /// `scratch` must be at least [`FftNd::batch_scratch_len`]`(b)` long.
    ///
    /// # Safety
    /// `fs` and `dst` must each point to buffers of [`FftNd::len`] elements;
    /// this call reads and writes exactly the elements enumerated by
    /// [`FftNd::for_each_fs_kblock_element`] (`fs` reads, `dst` writes), and
    /// no other thread may concurrently access them. Distinct
    /// `(tile, kblock)` pairs touch disjoint regions. Every sub-FFT pass of
    /// the tile must have completed first.
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn fs_combine_pass_raw(
        &self,
        fs: *const Complex32,
        dst: *mut Complex32,
        axis: usize,
        tile: usize,
        kblock: usize,
        b: usize,
        scratch: &mut [Complex32],
        dir: Direction,
    ) -> f64 {
        let four = self.split(axis);
        let plan = &self.plans[axis];
        let stages = plan.stages();
        let bwd = match dir {
            Direction::Forward => None,
            Direction::Backward => {
                let t = plan.bwd_tables();
                Some((&t.twiddles[..], &t.roots[..]))
            }
        };
        let (p, n2) = (four.p, four.n2);
        let k0 = kblock * four.kb;
        let kbw = four.kb.min(n2 - k0);
        let n = self.shape[axis];
        let stride = self.axis_stride(axis);
        let r_last = stages[four.j - 1].radix;
        let tw_last = match bwd {
            None => &stages[four.j - 1].twiddles[..],
            Some((tws, _)) => &tws[four.j - 1][..],
        };
        if stride == 1 {
            let start = tile * n;
            let work = &mut scratch[..p * kbw];
            let t0 = std::time::Instant::now();
            for beta in 0..p {
                let sv = core::slice::from_raw_parts(fs.add(start + beta * n2 + k0), kbw);
                let drow = &mut work[beta * kbw..(beta + 1) * kbw];
                let q = beta % r_last;
                if four.fuse_gather && q != 0 {
                    let tws = &tw_last[(q - 1) * n2 + k0..][..kbw];
                    nufft_simd::gather_chunks_cmul(drow, sv, tws, 1, 1);
                } else {
                    drow.copy_from_slice(sv);
                }
            }
            let gather_secs = t0.elapsed().as_secs_f64();
            four.combine_work(stages, bwd, work, k0, kbw, 1);
            for beta in 0..p {
                let dv = core::slice::from_raw_parts_mut(dst.add(start + beta * n2 + k0), kbw);
                dv.copy_from_slice(&work[beta * kbw..(beta + 1) * kbw]);
            }
            gather_secs
        } else {
            let tiles_per_outer = stride.div_ceil(b);
            let outer = tile / tiles_per_outer;
            let inner0 = (tile % tiles_per_outer) * b;
            let lanes = b.min(stride - inner0);
            let base = outer * n * stride + inner0;
            let row = kbw * lanes;
            let work = &mut scratch[..p * row];
            let t0 = std::time::Instant::now();
            for beta in 0..p {
                let sv = core::slice::from_raw_parts(
                    fs.add(base + (beta * n2 + k0) * stride),
                    (kbw - 1) * stride + lanes,
                );
                let drow = &mut work[beta * row..(beta + 1) * row];
                let q = beta % r_last;
                if four.fuse_gather && q != 0 {
                    let tws = &tw_last[(q - 1) * n2 + k0..][..kbw];
                    nufft_simd::gather_chunks_cmul(drow, sv, tws, lanes, stride);
                } else {
                    nufft_simd::gather_chunks(drow, sv, lanes, stride);
                }
            }
            let gather_secs = t0.elapsed().as_secs_f64();
            four.combine_work(stages, bwd, work, k0, kbw, lanes);
            for beta in 0..p {
                let dv = core::slice::from_raw_parts_mut(
                    dst.add(base + (beta * n2 + k0) * stride),
                    (kbw - 1) * stride + lanes,
                );
                nufft_simd::scatter_chunks(&work[beta * row..(beta + 1) * row], dv, lanes, stride);
            }
            gather_secs
        }
    }

    /// Transforms tile `tile` of `axis` (width `b`, indexed as in
    /// [`FftNd::num_tiles`]) through a raw base pointer. Full tiles of a
    /// Cooley–Tukey axis take the batched path; remainder tiles (fewer than
    /// `b` lines at the end of an outer block) and Bluestein axes fall back
    /// to the per-line path, which is bit-identical (see `crate::batch`).
    ///
    /// `scratch` must be at least [`FftNd::batch_scratch_len`]`(b)` long.
    ///
    /// # Safety
    /// `base` must point to the start of a buffer of [`FftNd::len`] elements
    /// valid for reads and writes, and no other thread may concurrently
    /// access the elements of this tile (tiles of the same axis are pairwise
    /// disjoint, so sharding whole tiles across threads is sound).
    pub unsafe fn transform_tile_raw(
        &self,
        base: *mut Complex32,
        axis: usize,
        tile: usize,
        b: usize,
        scratch: &mut [Complex32],
        dir: Direction,
    ) {
        let n = self.shape[axis];
        let stride = self.axis_stride(axis);
        if stride == 1 {
            self.transform_line_raw(base, axis, tile, scratch, dir);
            return;
        }
        let tiles_per_outer = stride.div_ceil(b);
        let outer = tile / tiles_per_outer;
        let inner0 = (tile % tiles_per_outer) * b;
        let lines_here = b.min(stride - inner0);
        let plan = &self.plans[axis];
        if lines_here == b && plan.is_ct() {
            let start = outer * n * stride + inner0;
            let (tile_buf, rest) = scratch.split_at_mut(n * b);
            let work = &mut rest[..n * b];
            // Gather: lines inner0..inner0+b are adjacent in memory, so
            // element j of all b lines is one contiguous b-complex run.
            for j in 0..n {
                core::ptr::copy_nonoverlapping(
                    base.add(start + j * stride),
                    tile_buf.as_mut_ptr().add(j * b),
                    b,
                );
            }
            crate::batch::transform_tile(plan, tile_buf, work, b, dir);
            for j in 0..n {
                core::ptr::copy_nonoverlapping(
                    tile_buf.as_ptr().add(j * b),
                    base.add(start + j * stride),
                    b,
                );
            }
        } else {
            for l in 0..lines_here {
                let line = outer * stride + inner0 + l;
                self.transform_line_raw(base, axis, line, scratch, dir);
            }
        }
    }

    /// Transforms a single line along `axis` through a raw base pointer.
    ///
    /// `scratch` must be at least [`FftNd::scratch_len`] long.
    ///
    /// # Safety
    /// `base` must point to the start of a buffer of [`FftNd::len`]
    /// elements valid for reads and writes, and no other thread may
    /// concurrently access the elements of this line (other lines of the
    /// same axis are disjoint, so sharding whole lines across threads is
    /// sound).
    pub unsafe fn transform_line_raw(
        &self,
        base: *mut Complex32,
        axis: usize,
        line: usize,
        scratch: &mut [Complex32],
        dir: Direction,
    ) {
        let n = self.shape[axis];
        let stride = self.axis_stride(axis);
        let start = self.line_start(axis, line);
        let plan = &self.plans[axis];
        if stride == 1 {
            // Contiguous line: transform in place.
            let lane = core::slice::from_raw_parts_mut(base.add(start), n);
            plan.process_with_scratch(lane, scratch, dir);
        } else {
            let (buf, fft_scratch) = scratch.split_at_mut(n);
            for j in 0..n {
                buf[j] = *base.add(start + j * stride);
            }
            plan.process_with_scratch(buf, fft_scratch, dir);
            for j in 0..n {
                *base.add(start + j * stride) = buf[j];
            }
        }
    }

    /// Transforms every line of `axis` sequentially via the batched tile
    /// path.
    ///
    /// # Panics
    /// Panics if `data.len()` doesn't match the plan.
    pub fn transform_axis(&self, data: &mut [Complex32], axis: usize, dir: Direction) {
        assert_eq!(data.len(), self.len, "data length mismatch");
        let b = Self::batch_width();
        let mut scratch = vec![Complex32::ZERO; self.batch_scratch_len(b)];
        let base = data.as_mut_ptr();
        if self.axis_fourstep(axis) {
            // Sequential four-step: sub-FFT sweep into a local intermediate
            // buffer, then the blocked transpose-and-combine sweep back into
            // `data`. (`nufft-core` drives the same passes with a plan-owned
            // buffer and shards them across its pool.)
            let mut fs = vec![Complex32::ZERO; self.len];
            let fsp = fs.as_mut_ptr();
            for tile in 0..self.num_tiles(axis, b) {
                for cg in 0..self.fs_col_groups(axis, b) {
                    // SAFETY: we hold &mut data and process shards one at a
                    // time; `fs` is exclusively ours.
                    unsafe {
                        self.fs_sub_pass_raw(base, fsp, axis, tile, cg, b, &mut scratch, dir)
                    };
                }
            }
            for tile in 0..self.num_tiles(axis, b) {
                for kblock in 0..self.fs_k_blocks(axis) {
                    // SAFETY: as above; all sub-FFT passes completed.
                    unsafe {
                        self.fs_combine_pass_raw(
                            fsp,
                            base,
                            axis,
                            tile,
                            kblock,
                            b,
                            &mut scratch,
                            dir,
                        )
                    };
                }
            }
            return;
        }
        for tile in 0..self.num_tiles(axis, b) {
            // SAFETY: we hold &mut data and process tiles one at a time.
            unsafe { self.transform_tile_raw(base, axis, tile, b, &mut scratch, dir) };
        }
    }

    /// Transforms every line of `axis` sequentially, one line at a time —
    /// the reference arm for the batched path (bit-identical at a fixed ISA
    /// level; kept for tests and benchmarks).
    ///
    /// # Panics
    /// Panics if `data.len()` doesn't match the plan.
    pub fn transform_axis_per_line(&self, data: &mut [Complex32], axis: usize, dir: Direction) {
        assert_eq!(data.len(), self.len, "data length mismatch");
        let mut scratch = vec![Complex32::ZERO; self.scratch_len()];
        let base = data.as_mut_ptr();
        for line in 0..self.num_lines(axis) {
            // SAFETY: we hold &mut data and process lines one at a time.
            unsafe { self.transform_line_raw(base, axis, line, &mut scratch, dir) };
        }
    }

    /// Full n-dimensional transform (sequential over axes and tiles).
    pub fn process(&self, data: &mut [Complex32], dir: Direction) {
        for axis in 0..self.shape.len() {
            self.transform_axis(data, axis, dir);
        }
    }

    /// Full n-dimensional transform through the per-line reference path.
    pub fn process_per_line(&self, data: &mut [Complex32], dir: Direction) {
        for axis in 0..self.shape.len() {
            self.transform_axis_per_line(data, axis, dir);
        }
    }

    /// Forward n-dimensional transform.
    pub fn forward(&self, data: &mut [Complex32]) {
        self.process(data, Direction::Forward);
    }

    /// Unnormalized backward transform (exact adjoint of [`FftNd::forward`]).
    pub fn backward(&self, data: &mut [Complex32]) {
        self.process(data, Direction::Backward);
    }

    /// Normalized inverse: `inverse(forward(x)) == x`.
    pub fn inverse(&self, data: &mut [Complex32]) {
        self.backward(data);
        let s = 1.0 / self.len as f32;
        for z in data {
            *z *= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nufft_math::error::rel_l2_c32;
    use nufft_math::Complex64;

    fn demo(len: usize) -> Vec<Complex32> {
        (0..len).map(|i| Complex32::new((i as f32 * 0.13).sin(), (i as f32 * 0.29).cos())).collect()
    }

    /// Naive n-D DFT oracle in f64.
    fn naive_nd(x: &[Complex32], shape: &[usize], sign: f64) -> Vec<Complex32> {
        let len = x.len();
        let mut out = vec![Complex64::ZERO; len];
        let nd = shape.len();
        let mut strides = vec![1usize; nd];
        for d in (0..nd.saturating_sub(1)).rev() {
            strides[d] = strides[d + 1] * shape[d + 1];
        }
        let unravel = |mut i: usize| -> Vec<usize> {
            let mut idx = vec![0; nd];
            for d in 0..nd {
                idx[d] = i / strides[d];
                i %= strides[d];
            }
            idx
        };
        for (ko, out_z) in out.iter_mut().enumerate() {
            let kk = unravel(ko);
            let mut acc = Complex64::ZERO;
            for (jo, &v) in x.iter().enumerate() {
                let jj = unravel(jo);
                let mut ph = 0.0;
                for d in 0..nd {
                    ph += (jj[d] * kk[d]) as f64 / shape[d] as f64;
                }
                acc += v.to_f64() * Complex64::cis(sign * core::f64::consts::TAU * ph);
            }
            *out_z = acc;
        }
        out.into_iter().map(|z| z.to_f32()).collect()
    }

    #[test]
    fn line_geometry_is_consistent() {
        let plan = FftNd::new(&[2, 3, 4]);
        assert_eq!(plan.axis_stride(0), 12);
        assert_eq!(plan.axis_stride(1), 4);
        assert_eq!(plan.axis_stride(2), 1);
        assert_eq!(plan.num_lines(0), 12);
        assert_eq!(plan.num_lines(1), 8);
        assert_eq!(plan.num_lines(2), 6);
        // Every element belongs to exactly one line per axis.
        for axis in 0..3 {
            let stride = plan.axis_stride(axis);
            let n = plan.shape()[axis];
            let mut seen = vec![false; plan.len()];
            for line in 0..plan.num_lines(axis) {
                let s = plan.line_start(axis, line);
                for j in 0..n {
                    let idx = s + j * stride;
                    assert!(!seen[idx], "element {idx} visited twice on axis {axis}");
                    seen[idx] = true;
                }
            }
            assert!(seen.iter().all(|&b| b), "axis {axis} missed elements");
        }
    }

    #[test]
    fn matches_naive_2d() {
        let shape = [6usize, 8];
        let x = demo(48);
        let plan = FftNd::new(&shape);
        let mut got = x.clone();
        plan.forward(&mut got);
        let want = naive_nd(&x, &shape, -1.0);
        let err = rel_l2_c32(&got, &want);
        assert!(err < 2e-5, "2d err {err}");
    }

    #[test]
    fn matches_naive_3d() {
        let shape = [4usize, 5, 6];
        let x = demo(120);
        let plan = FftNd::new(&shape);
        for (dir, sign) in [(Direction::Forward, -1.0), (Direction::Backward, 1.0)] {
            let mut got = x.clone();
            plan.process(&mut got, dir);
            let want = naive_nd(&x, &shape, sign);
            let err = rel_l2_c32(&got, &want);
            assert!(err < 2e-5, "3d {dir:?} err {err}");
        }
    }

    #[test]
    fn inverse_round_trips_3d() {
        let shape = [8usize, 4, 10];
        let x = demo(320);
        let plan = FftNd::new(&shape);
        let mut y = x.clone();
        plan.forward(&mut y);
        plan.inverse(&mut y);
        assert!(rel_l2_c32(&y, &x) < 1e-5);
    }

    #[test]
    fn one_dimensional_plan_matches_1d_fft() {
        let n = 30;
        let x = demo(n);
        let nd = FftNd::new(&[n]);
        let fft = Fft::new(n);
        let mut a = x.clone();
        let mut b = x.clone();
        nd.forward(&mut a);
        fft.forward(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn separable_impulse_3d() {
        // A delta at the origin transforms to all-ones.
        let shape = [3usize, 4, 5];
        let mut x = vec![Complex32::ZERO; 60];
        x[0] = Complex32::ONE;
        FftNd::new(&shape).forward(&mut x);
        for z in &x {
            assert!((z.re - 1.0).abs() < 1e-5 && z.im.abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_extent_rejected() {
        let _ = FftNd::new(&[4, 0]);
    }

    /// Every line of an axis is covered by exactly one tile, for widths that
    /// divide the stride evenly and ones that leave remainders.
    #[test]
    fn tile_geometry_covers_each_line_once() {
        let plan = FftNd::new(&[3, 5, 4]);
        for axis in 0..3 {
            for b in [1usize, 2, 3, 4, 7] {
                let stride = plan.axis_stride(axis);
                let tiles_per_outer = if stride == 1 { 1 } else { stride.div_ceil(b) };
                let mut seen = vec![0usize; plan.num_lines(axis)];
                for tile in 0..plan.num_tiles(axis, b) {
                    if stride == 1 {
                        seen[tile] += 1;
                        continue;
                    }
                    let outer = tile / tiles_per_outer;
                    let inner0 = (tile % tiles_per_outer) * b;
                    for l in 0..b.min(stride - inner0) {
                        seen[outer * stride + inner0 + l] += 1;
                    }
                }
                assert!(seen.iter().all(|&c| c == 1), "axis {axis} b={b}: line coverage {seen:?}");
            }
        }
    }

    /// `tile_of_element` and `for_each_tile_element` are mutually inverse
    /// and partition the buffer for every axis and width.
    #[test]
    fn tile_element_footprints_partition_the_buffer() {
        for shape in [&[3usize, 5, 4][..], &[6, 8], &[7], &[2, 2, 2, 3]] {
            let plan = FftNd::new(shape);
            for axis in 0..shape.len() {
                for b in [1usize, 2, 3, 4, 7] {
                    let mut seen = vec![0usize; plan.len()];
                    for tile in 0..plan.num_tiles(axis, b) {
                        plan.for_each_tile_element(axis, tile, b, |e| {
                            seen[e] += 1;
                            assert_eq!(
                                plan.tile_of_element(axis, e, b),
                                tile,
                                "shape {shape:?} axis {axis} b={b} elem {e}"
                            );
                        });
                    }
                    assert!(
                        seen.iter().all(|&c| c == 1),
                        "shape {shape:?} axis {axis} b={b}: coverage {seen:?}"
                    );
                }
            }
        }
    }

    /// The batched axis transform is bit-identical to the per-line one on
    /// shapes exercising full tiles, remainder tiles, and a Bluestein axis.
    #[test]
    fn batched_axis_matches_per_line_bitwise() {
        for shape in [&[6usize, 8][..], &[5, 7, 6], &[17, 4], &[4, 17], &[3, 3, 3]] {
            let len: usize = shape.iter().product();
            let x = demo(len);
            let plan = FftNd::new(shape);
            for dir in [Direction::Forward, Direction::Backward] {
                let mut batched = x.clone();
                plan.process(&mut batched, dir);
                let mut per_line = x.clone();
                plan.process_per_line(&mut per_line, dir);
                for (i, (g, w)) in batched.iter().zip(&per_line).enumerate() {
                    assert!(
                        g.re.to_bits() == w.re.to_bits() && g.im.to_bits() == w.im.to_bits(),
                        "shape {shape:?} {dir:?} i={i}: {g:?} vs {w:?}"
                    );
                }
            }
        }
    }
}
