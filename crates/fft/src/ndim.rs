//! n-dimensional FFT over row-major (C-order) complex buffers.
//!
//! The transform is separable: each axis is handled by a 1D [`Fft`] applied
//! to every line along that axis. The innermost axis is contiguous and is
//! transformed in place; other axes are grouped into *tiles* of
//! [`FftNd::batch_width`] memory-adjacent lines and run through the batched
//! Cooley–Tukey path (`crate::batch`), which amortizes twiddle loads over
//! the tile and keeps every access contiguous — or fall back to a per-line
//! bounce buffer for remainder tiles and Bluestein axes. The per-tile and
//! per-line entry points ([`FftNd::num_tiles`], [`FftNd::transform_tile_raw`],
//! [`FftNd::transform_line_raw`]) exist so `nufft-core` can shard work
//! across its worker pool — the plan itself is `Sync`, and the tiles (and
//! lines) of one axis are pairwise disjoint.

use crate::plan::{Direction, Fft};
use nufft_math::Complex32;

/// An n-dimensional complex FFT plan for a fixed row-major shape.
pub struct FftNd {
    shape: Vec<usize>,
    plans: Vec<Fft>,
    len: usize,
}

impl FftNd {
    /// Prepares a plan for `shape` (row-major; last axis contiguous).
    ///
    /// # Panics
    /// Panics if `shape` is empty or any extent is zero.
    pub fn new(shape: &[usize]) -> Self {
        assert!(!shape.is_empty(), "shape must have at least one axis");
        assert!(shape.iter().all(|&n| n > 0), "all extents must be positive");
        let plans = shape.iter().map(|&n| Fft::new(n)).collect();
        let len = shape.iter().product();
        FftNd { shape: shape.to_vec(), plans, len }
    }

    /// The row-major shape this plan transforms.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always false (zero extents are rejected at construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of axes.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Element stride between consecutive entries along `axis`.
    pub fn axis_stride(&self, axis: usize) -> usize {
        self.shape[axis + 1..].iter().product()
    }

    /// Number of independent lines along `axis`.
    pub fn num_lines(&self, axis: usize) -> usize {
        self.len / self.shape[axis]
    }

    /// Start offset of line `line` along `axis`.
    ///
    /// Lines are indexed by `(outer, inner)` flattened as
    /// `line = outer·stride + inner` where `stride = axis_stride(axis)` and
    /// `outer` ranges over the axes before `axis`.
    pub fn line_start(&self, axis: usize, line: usize) -> usize {
        let stride = self.axis_stride(axis);
        let outer = line / stride;
        let inner = line % stride;
        outer * self.shape[axis] * stride + inner
    }

    /// Scratch length required per worker for any axis of this plan.
    pub fn scratch_len(&self) -> usize {
        let fft_scratch = self.plans.iter().map(|p| p.scratch_len()).max().unwrap_or(0);
        let line_buf = self.shape.iter().copied().max().unwrap_or(0);
        fft_scratch + line_buf
    }

    /// Lines per tile for the batched strided-axis path at the active ISA
    /// level: the SIMD complex-lane count (2 for SSE2, 4 for AVX2), floored
    /// at 2 so the scalar levels still amortize twiddle loads.
    pub fn batch_width() -> usize {
        nufft_simd::active_isa().c32_lanes().max(2)
    }

    /// Scratch length required per worker by [`FftNd::transform_tile_raw`]
    /// with tiles of `b` lines (covers the per-line fallback too).
    pub fn batch_scratch_len(&self, b: usize) -> usize {
        let ct_max = self
            .shape
            .iter()
            .zip(&self.plans)
            .filter(|(_, p)| p.is_ct())
            .map(|(&n, _)| n)
            .max()
            .unwrap_or(0);
        self.scratch_len().max(2 * b * ct_max)
    }

    /// Number of tiles of width `b` along `axis`. Tiles group memory-adjacent
    /// lines within one `outer` block (they never straddle an outer
    /// boundary); the contiguous innermost axis has one line per tile.
    pub fn num_tiles(&self, axis: usize, b: usize) -> usize {
        assert!(b > 0, "tile width must be positive");
        let stride = self.axis_stride(axis);
        if stride == 1 {
            self.num_lines(axis)
        } else {
            let outers = self.len / (self.shape[axis] * stride);
            outers * stride.div_ceil(b)
        }
    }

    /// The tile (of width `b`, indexed as in [`FftNd::num_tiles`]) whose
    /// lines contain element `elem` for a transform along `axis`. Together
    /// with [`FftNd::for_each_tile_element`] this is the tile read/write
    /// footprint metadata a fused task graph needs: a consumer of element
    /// `elem` after the axis pass must order itself behind exactly this
    /// tile's task, instead of behind an all-axis join.
    pub fn tile_of_element(&self, axis: usize, elem: usize, b: usize) -> usize {
        debug_assert!(elem < self.len);
        let n = self.shape[axis];
        let stride = self.axis_stride(axis);
        if stride == 1 {
            // One contiguous line per tile.
            elem / n
        } else {
            let outer = elem / (n * stride);
            let inner = elem % stride;
            outer * stride.div_ceil(b) + inner / b
        }
    }

    /// Calls `f` for every element read (and written) by tile `tile` of
    /// `axis` at width `b` — the inverse of [`FftNd::tile_of_element`].
    /// Tiles of one axis partition the buffer, so iterating all tiles
    /// visits every element exactly once.
    pub fn for_each_tile_element(
        &self,
        axis: usize,
        tile: usize,
        b: usize,
        mut f: impl FnMut(usize),
    ) {
        let n = self.shape[axis];
        let stride = self.axis_stride(axis);
        if stride == 1 {
            let start = tile * n;
            for e in start..start + n {
                f(e);
            }
        } else {
            let tiles_per_outer = stride.div_ceil(b);
            let outer = tile / tiles_per_outer;
            let inner0 = (tile % tiles_per_outer) * b;
            let lines_here = b.min(stride - inner0);
            for j in 0..n {
                let base = outer * n * stride + j * stride + inner0;
                for e in base..base + lines_here {
                    f(e);
                }
            }
        }
    }

    /// Transforms tile `tile` of `axis` (width `b`, indexed as in
    /// [`FftNd::num_tiles`]) through a raw base pointer. Full tiles of a
    /// Cooley–Tukey axis take the batched path; remainder tiles (fewer than
    /// `b` lines at the end of an outer block) and Bluestein axes fall back
    /// to the per-line path, which is bit-identical (see `crate::batch`).
    ///
    /// `scratch` must be at least [`FftNd::batch_scratch_len`]`(b)` long.
    ///
    /// # Safety
    /// `base` must point to the start of a buffer of [`FftNd::len`] elements
    /// valid for reads and writes, and no other thread may concurrently
    /// access the elements of this tile (tiles of the same axis are pairwise
    /// disjoint, so sharding whole tiles across threads is sound).
    pub unsafe fn transform_tile_raw(
        &self,
        base: *mut Complex32,
        axis: usize,
        tile: usize,
        b: usize,
        scratch: &mut [Complex32],
        dir: Direction,
    ) {
        let n = self.shape[axis];
        let stride = self.axis_stride(axis);
        if stride == 1 {
            self.transform_line_raw(base, axis, tile, scratch, dir);
            return;
        }
        let tiles_per_outer = stride.div_ceil(b);
        let outer = tile / tiles_per_outer;
        let inner0 = (tile % tiles_per_outer) * b;
        let lines_here = b.min(stride - inner0);
        let plan = &self.plans[axis];
        if lines_here == b && plan.is_ct() {
            let start = outer * n * stride + inner0;
            let (tile_buf, rest) = scratch.split_at_mut(n * b);
            let work = &mut rest[..n * b];
            // Gather: lines inner0..inner0+b are adjacent in memory, so
            // element j of all b lines is one contiguous b-complex run.
            for j in 0..n {
                core::ptr::copy_nonoverlapping(
                    base.add(start + j * stride),
                    tile_buf.as_mut_ptr().add(j * b),
                    b,
                );
            }
            crate::batch::transform_tile(plan, tile_buf, work, b, dir);
            for j in 0..n {
                core::ptr::copy_nonoverlapping(
                    tile_buf.as_ptr().add(j * b),
                    base.add(start + j * stride),
                    b,
                );
            }
        } else {
            for l in 0..lines_here {
                let line = outer * stride + inner0 + l;
                self.transform_line_raw(base, axis, line, scratch, dir);
            }
        }
    }

    /// Transforms a single line along `axis` through a raw base pointer.
    ///
    /// `scratch` must be at least [`FftNd::scratch_len`] long.
    ///
    /// # Safety
    /// `base` must point to the start of a buffer of [`FftNd::len`]
    /// elements valid for reads and writes, and no other thread may
    /// concurrently access the elements of this line (other lines of the
    /// same axis are disjoint, so sharding whole lines across threads is
    /// sound).
    pub unsafe fn transform_line_raw(
        &self,
        base: *mut Complex32,
        axis: usize,
        line: usize,
        scratch: &mut [Complex32],
        dir: Direction,
    ) {
        let n = self.shape[axis];
        let stride = self.axis_stride(axis);
        let start = self.line_start(axis, line);
        let plan = &self.plans[axis];
        if stride == 1 {
            // Contiguous line: transform in place.
            let lane = core::slice::from_raw_parts_mut(base.add(start), n);
            plan.process_with_scratch(lane, scratch, dir);
        } else {
            let (buf, fft_scratch) = scratch.split_at_mut(n);
            for j in 0..n {
                buf[j] = *base.add(start + j * stride);
            }
            plan.process_with_scratch(buf, fft_scratch, dir);
            for j in 0..n {
                *base.add(start + j * stride) = buf[j];
            }
        }
    }

    /// Transforms every line of `axis` sequentially via the batched tile
    /// path.
    ///
    /// # Panics
    /// Panics if `data.len()` doesn't match the plan.
    pub fn transform_axis(&self, data: &mut [Complex32], axis: usize, dir: Direction) {
        assert_eq!(data.len(), self.len, "data length mismatch");
        let b = Self::batch_width();
        let mut scratch = vec![Complex32::ZERO; self.batch_scratch_len(b)];
        let base = data.as_mut_ptr();
        for tile in 0..self.num_tiles(axis, b) {
            // SAFETY: we hold &mut data and process tiles one at a time.
            unsafe { self.transform_tile_raw(base, axis, tile, b, &mut scratch, dir) };
        }
    }

    /// Transforms every line of `axis` sequentially, one line at a time —
    /// the reference arm for the batched path (bit-identical at a fixed ISA
    /// level; kept for tests and benchmarks).
    ///
    /// # Panics
    /// Panics if `data.len()` doesn't match the plan.
    pub fn transform_axis_per_line(&self, data: &mut [Complex32], axis: usize, dir: Direction) {
        assert_eq!(data.len(), self.len, "data length mismatch");
        let mut scratch = vec![Complex32::ZERO; self.scratch_len()];
        let base = data.as_mut_ptr();
        for line in 0..self.num_lines(axis) {
            // SAFETY: we hold &mut data and process lines one at a time.
            unsafe { self.transform_line_raw(base, axis, line, &mut scratch, dir) };
        }
    }

    /// Full n-dimensional transform (sequential over axes and tiles).
    pub fn process(&self, data: &mut [Complex32], dir: Direction) {
        for axis in 0..self.shape.len() {
            self.transform_axis(data, axis, dir);
        }
    }

    /// Full n-dimensional transform through the per-line reference path.
    pub fn process_per_line(&self, data: &mut [Complex32], dir: Direction) {
        for axis in 0..self.shape.len() {
            self.transform_axis_per_line(data, axis, dir);
        }
    }

    /// Forward n-dimensional transform.
    pub fn forward(&self, data: &mut [Complex32]) {
        self.process(data, Direction::Forward);
    }

    /// Unnormalized backward transform (exact adjoint of [`FftNd::forward`]).
    pub fn backward(&self, data: &mut [Complex32]) {
        self.process(data, Direction::Backward);
    }

    /// Normalized inverse: `inverse(forward(x)) == x`.
    pub fn inverse(&self, data: &mut [Complex32]) {
        self.backward(data);
        let s = 1.0 / self.len as f32;
        for z in data {
            *z *= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nufft_math::error::rel_l2_c32;
    use nufft_math::Complex64;

    fn demo(len: usize) -> Vec<Complex32> {
        (0..len).map(|i| Complex32::new((i as f32 * 0.13).sin(), (i as f32 * 0.29).cos())).collect()
    }

    /// Naive n-D DFT oracle in f64.
    fn naive_nd(x: &[Complex32], shape: &[usize], sign: f64) -> Vec<Complex32> {
        let len = x.len();
        let mut out = vec![Complex64::ZERO; len];
        let nd = shape.len();
        let mut strides = vec![1usize; nd];
        for d in (0..nd.saturating_sub(1)).rev() {
            strides[d] = strides[d + 1] * shape[d + 1];
        }
        let unravel = |mut i: usize| -> Vec<usize> {
            let mut idx = vec![0; nd];
            for d in 0..nd {
                idx[d] = i / strides[d];
                i %= strides[d];
            }
            idx
        };
        for (ko, out_z) in out.iter_mut().enumerate() {
            let kk = unravel(ko);
            let mut acc = Complex64::ZERO;
            for (jo, &v) in x.iter().enumerate() {
                let jj = unravel(jo);
                let mut ph = 0.0;
                for d in 0..nd {
                    ph += (jj[d] * kk[d]) as f64 / shape[d] as f64;
                }
                acc += v.to_f64() * Complex64::cis(sign * core::f64::consts::TAU * ph);
            }
            *out_z = acc;
        }
        out.into_iter().map(|z| z.to_f32()).collect()
    }

    #[test]
    fn line_geometry_is_consistent() {
        let plan = FftNd::new(&[2, 3, 4]);
        assert_eq!(plan.axis_stride(0), 12);
        assert_eq!(plan.axis_stride(1), 4);
        assert_eq!(plan.axis_stride(2), 1);
        assert_eq!(plan.num_lines(0), 12);
        assert_eq!(plan.num_lines(1), 8);
        assert_eq!(plan.num_lines(2), 6);
        // Every element belongs to exactly one line per axis.
        for axis in 0..3 {
            let stride = plan.axis_stride(axis);
            let n = plan.shape()[axis];
            let mut seen = vec![false; plan.len()];
            for line in 0..plan.num_lines(axis) {
                let s = plan.line_start(axis, line);
                for j in 0..n {
                    let idx = s + j * stride;
                    assert!(!seen[idx], "element {idx} visited twice on axis {axis}");
                    seen[idx] = true;
                }
            }
            assert!(seen.iter().all(|&b| b), "axis {axis} missed elements");
        }
    }

    #[test]
    fn matches_naive_2d() {
        let shape = [6usize, 8];
        let x = demo(48);
        let plan = FftNd::new(&shape);
        let mut got = x.clone();
        plan.forward(&mut got);
        let want = naive_nd(&x, &shape, -1.0);
        let err = rel_l2_c32(&got, &want);
        assert!(err < 2e-5, "2d err {err}");
    }

    #[test]
    fn matches_naive_3d() {
        let shape = [4usize, 5, 6];
        let x = demo(120);
        let plan = FftNd::new(&shape);
        for (dir, sign) in [(Direction::Forward, -1.0), (Direction::Backward, 1.0)] {
            let mut got = x.clone();
            plan.process(&mut got, dir);
            let want = naive_nd(&x, &shape, sign);
            let err = rel_l2_c32(&got, &want);
            assert!(err < 2e-5, "3d {dir:?} err {err}");
        }
    }

    #[test]
    fn inverse_round_trips_3d() {
        let shape = [8usize, 4, 10];
        let x = demo(320);
        let plan = FftNd::new(&shape);
        let mut y = x.clone();
        plan.forward(&mut y);
        plan.inverse(&mut y);
        assert!(rel_l2_c32(&y, &x) < 1e-5);
    }

    #[test]
    fn one_dimensional_plan_matches_1d_fft() {
        let n = 30;
        let x = demo(n);
        let nd = FftNd::new(&[n]);
        let fft = Fft::new(n);
        let mut a = x.clone();
        let mut b = x.clone();
        nd.forward(&mut a);
        fft.forward(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn separable_impulse_3d() {
        // A delta at the origin transforms to all-ones.
        let shape = [3usize, 4, 5];
        let mut x = vec![Complex32::ZERO; 60];
        x[0] = Complex32::ONE;
        FftNd::new(&shape).forward(&mut x);
        for z in &x {
            assert!((z.re - 1.0).abs() < 1e-5 && z.im.abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_extent_rejected() {
        let _ = FftNd::new(&[4, 0]);
    }

    /// Every line of an axis is covered by exactly one tile, for widths that
    /// divide the stride evenly and ones that leave remainders.
    #[test]
    fn tile_geometry_covers_each_line_once() {
        let plan = FftNd::new(&[3, 5, 4]);
        for axis in 0..3 {
            for b in [1usize, 2, 3, 4, 7] {
                let stride = plan.axis_stride(axis);
                let tiles_per_outer = if stride == 1 { 1 } else { stride.div_ceil(b) };
                let mut seen = vec![0usize; plan.num_lines(axis)];
                for tile in 0..plan.num_tiles(axis, b) {
                    if stride == 1 {
                        seen[tile] += 1;
                        continue;
                    }
                    let outer = tile / tiles_per_outer;
                    let inner0 = (tile % tiles_per_outer) * b;
                    for l in 0..b.min(stride - inner0) {
                        seen[outer * stride + inner0 + l] += 1;
                    }
                }
                assert!(seen.iter().all(|&c| c == 1), "axis {axis} b={b}: line coverage {seen:?}");
            }
        }
    }

    /// `tile_of_element` and `for_each_tile_element` are mutually inverse
    /// and partition the buffer for every axis and width.
    #[test]
    fn tile_element_footprints_partition_the_buffer() {
        for shape in [&[3usize, 5, 4][..], &[6, 8], &[7], &[2, 2, 2, 3]] {
            let plan = FftNd::new(shape);
            for axis in 0..shape.len() {
                for b in [1usize, 2, 3, 4, 7] {
                    let mut seen = vec![0usize; plan.len()];
                    for tile in 0..plan.num_tiles(axis, b) {
                        plan.for_each_tile_element(axis, tile, b, |e| {
                            seen[e] += 1;
                            assert_eq!(
                                plan.tile_of_element(axis, e, b),
                                tile,
                                "shape {shape:?} axis {axis} b={b} elem {e}"
                            );
                        });
                    }
                    assert!(
                        seen.iter().all(|&c| c == 1),
                        "shape {shape:?} axis {axis} b={b}: coverage {seen:?}"
                    );
                }
            }
        }
    }

    /// The batched axis transform is bit-identical to the per-line one on
    /// shapes exercising full tiles, remainder tiles, and a Bluestein axis.
    #[test]
    fn batched_axis_matches_per_line_bitwise() {
        for shape in [&[6usize, 8][..], &[5, 7, 6], &[17, 4], &[4, 17], &[3, 3, 3]] {
            let len: usize = shape.iter().product();
            let x = demo(len);
            let plan = FftNd::new(shape);
            for dir in [Direction::Forward, Direction::Backward] {
                let mut batched = x.clone();
                plan.process(&mut batched, dir);
                let mut per_line = x.clone();
                plan.process_per_line(&mut per_line, dir);
                for (i, (g, w)) in batched.iter().zip(&per_line).enumerate() {
                    assert!(
                        g.re.to_bits() == w.re.to_bits() && g.im.to_bits() == w.im.to_bits(),
                        "shape {shape:?} {dir:?} i={i}: {g:?} vs {w:?}"
                    );
                }
            }
        }
    }
}
