//! Runtime ISA detection and override.
//!
//! The best available instruction set is probed once and cached. Benchmarks
//! that compare vector widths (Figure 13) pin a specific level with
//! [`set_isa_override`]; an override above the machine's capability is
//! rejected rather than silently accepted, so a kernel is never dispatched to
//! an ISA the CPU cannot execute.

use core::sync::atomic::{AtomicU8, Ordering};

/// Instruction-set level a kernel may be dispatched to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum IsaLevel {
    /// Strictly element-at-a-time code with compiler auto-vectorization
    /// suppressed — the semantics of the paper's "scalar" baseline. Only
    /// useful as the reference arm of SIMD-speedup experiments (Figure 13);
    /// [`crate::dispatch::detect_isa`] never returns it.
    StrictScalar = 0,
    /// Portable reference loops; the compiler is free to auto-vectorize
    /// (on x86-64 LLVM typically emits SSE2 here).
    Scalar = 1,
    /// 128-bit SSE2 intrinsics (two complex `f32` per vector) — the paper's
    /// SSE path.
    Sse2 = 2,
    /// 256-bit AVX2 with FMA (four complex `f32` per vector).
    Avx2Fma = 3,
}

impl IsaLevel {
    /// Number of `f32` lanes per vector at this level.
    pub fn f32_lanes(self) -> usize {
        match self {
            IsaLevel::StrictScalar | IsaLevel::Scalar => 1,
            IsaLevel::Sse2 => 4,
            IsaLevel::Avx2Fma => 8,
        }
    }

    /// Number of interleaved complex `f32` values per vector.
    pub fn c32_lanes(self) -> usize {
        (self.f32_lanes() / 2).max(1)
    }

    /// Short human-readable name used in benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            IsaLevel::StrictScalar => "scalar-strict",
            IsaLevel::Scalar => "scalar",
            IsaLevel::Sse2 => "sse",
            IsaLevel::Avx2Fma => "avx2+fma",
        }
    }
}

/// Probes the host CPU for the best supported [`IsaLevel`].
pub fn detect_isa() -> IsaLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            return IsaLevel::Avx2Fma;
        }
        if std::arch::is_x86_feature_detected!("sse2") {
            return IsaLevel::Sse2;
        }
    }
    IsaLevel::Scalar
}

// 0 = not yet initialized, otherwise IsaLevel as u8 + 1.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

fn decode(v: u8) -> Option<IsaLevel> {
    match v {
        1 => Some(IsaLevel::StrictScalar),
        2 => Some(IsaLevel::Scalar),
        3 => Some(IsaLevel::Sse2),
        4 => Some(IsaLevel::Avx2Fma),
        _ => None,
    }
}

/// Returns the ISA level kernels currently dispatch to.
///
/// On first call this probes the CPU; afterwards it returns the cached value
/// (possibly overridden by [`set_isa_override`]).
pub fn active_isa() -> IsaLevel {
    if let Some(l) = decode(ACTIVE.load(Ordering::Relaxed)) {
        return l;
    }
    let detected = detect_isa();
    // Racing initializers all write the same detected value.
    let _ = ACTIVE.compare_exchange(0, detected as u8 + 1, Ordering::Relaxed, Ordering::Relaxed);
    decode(ACTIVE.load(Ordering::Relaxed)).expect("ISA cache initialized")
}

/// Pins dispatch to a specific ISA level (for A/B benchmarking, Figure 13).
///
/// Returns `Err` with the detected capability if `level` exceeds what the
/// host supports. Passing a supported level always succeeds and affects all
/// threads.
pub fn set_isa_override(level: IsaLevel) -> Result<(), IsaLevel> {
    let detected = detect_isa();
    if level > detected {
        return Err(detected);
    }
    ACTIVE.store(level as u8 + 1, Ordering::Relaxed);
    Ok(())
}

/// Serializes tests that override the process-global ISA level.
#[cfg(test)]
pub(crate) fn test_isa_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_is_stable() {
        assert_eq!(detect_isa(), detect_isa());
    }

    #[test]
    fn override_round_trip() {
        let _guard = test_isa_guard();
        let detected = detect_isa();
        // Scalar is always permitted.
        set_isa_override(IsaLevel::Scalar).unwrap();
        assert_eq!(active_isa(), IsaLevel::Scalar);
        // Restoring the detected level is always permitted.
        set_isa_override(detected).unwrap();
        assert_eq!(active_isa(), detected);
    }

    #[test]
    fn lanes_are_consistent() {
        assert_eq!(IsaLevel::Scalar.f32_lanes(), 1);
        assert_eq!(IsaLevel::Sse2.f32_lanes(), 4);
        assert_eq!(IsaLevel::Avx2Fma.f32_lanes(), 8);
        assert_eq!(IsaLevel::Sse2.c32_lanes(), 2);
        assert_eq!(IsaLevel::Avx2Fma.c32_lanes(), 4);
    }

    #[test]
    fn ordering_reflects_capability() {
        assert!(IsaLevel::Scalar < IsaLevel::Sse2);
        assert!(IsaLevel::Sse2 < IsaLevel::Avx2Fma);
    }
}
