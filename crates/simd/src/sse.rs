//! SSE2 implementations: 128-bit vectors, two interleaved complex `f32`
//! values per register. This mirrors the paper's SSE4 configuration (it only
//! needs SSE2-level instructions for these kernels).

#![cfg(target_arch = "x86_64")]
#![allow(unsafe_op_in_unsafe_fn)]

use core::arch::x86_64::*;
use nufft_math::Complex32;

/// `dst[i] += val * w[i]` over interleaved complex rows, 2 complex per step.
///
/// # Safety
/// Caller must ensure the CPU supports SSE2 (guaranteed on x86_64, but kept
/// `unsafe` for symmetry with the AVX path and because of raw pointer use).
#[target_feature(enable = "sse2")]
pub unsafe fn scatter_row(dst: &mut [Complex32], w: &[f32], val: Complex32) {
    debug_assert_eq!(dst.len(), w.len());
    let n = dst.len();
    let dp = dst.as_mut_ptr() as *mut f32;
    let wp = w.as_ptr();
    // [re, im, re, im]
    let vv = _mm_set_ps(val.im, val.re, val.im, val.re);
    let mut i = 0;
    while i + 2 <= n {
        let wv = _mm_set_ps(*wp.add(i + 1), *wp.add(i + 1), *wp.add(i), *wp.add(i));
        let d = _mm_loadu_ps(dp.add(2 * i));
        let prod = _mm_mul_ps(wv, vv);
        _mm_storeu_ps(dp.add(2 * i), _mm_add_ps(d, prod));
        i += 2;
    }
    while i < n {
        let wi = *wp.add(i);
        dst.get_unchecked_mut(i).re += val.re * wi;
        dst.get_unchecked_mut(i).im += val.im * wi;
        i += 1;
    }
}

/// Two-row scatter with a shared weight row (small-`W` SIMD-across-`y`).
///
/// # Safety
/// See [`scatter_row`].
#[target_feature(enable = "sse2")]
pub unsafe fn scatter_row2(
    dst0: &mut [Complex32],
    val0: Complex32,
    dst1: &mut [Complex32],
    val1: Complex32,
    w: &[f32],
) {
    scatter_row(dst0, w, val0);
    scatter_row(dst1, w, val1);
}

/// `Σ_i src[i] * w[i]` over an interleaved complex row.
///
/// # Safety
/// See [`scatter_row`].
#[target_feature(enable = "sse2")]
pub unsafe fn gather_row(src: &[Complex32], w: &[f32]) -> Complex32 {
    debug_assert_eq!(src.len(), w.len());
    let n = src.len();
    let sp = src.as_ptr() as *const f32;
    let wp = w.as_ptr();
    let mut acc = _mm_setzero_ps();
    let mut i = 0;
    while i + 2 <= n {
        let wv = _mm_set_ps(*wp.add(i + 1), *wp.add(i + 1), *wp.add(i), *wp.add(i));
        let s = _mm_loadu_ps(sp.add(2 * i));
        acc = _mm_add_ps(acc, _mm_mul_ps(wv, s));
        i += 2;
    }
    // Horizontal fold of the two complex lanes: [r0,i0,r1,i1] -> [r0+r1, i0+i1].
    let hi = _mm_movehl_ps(acc, acc);
    let folded = _mm_add_ps(acc, hi);
    let mut out = Complex32::new(_mm_cvtss_f32(folded), {
        let im = _mm_shuffle_ps(folded, folded, 0b01);
        _mm_cvtss_f32(im)
    });
    while i < n {
        let wi = *wp.add(i);
        let s = *src.get_unchecked(i);
        out.re += s.re * wi;
        out.im += s.im * wi;
        i += 1;
    }
    out
}

/// Two-row gather with a shared weight row. Two sequential [`gather_row`]
/// calls: on SSE the weight splat is cheap to redo and keeping the rows
/// sequential preserves bitwise equality with the one-row path by
/// construction.
///
/// # Safety
/// See [`scatter_row`].
#[target_feature(enable = "sse2")]
pub unsafe fn gather_row2(
    src0: &[Complex32],
    src1: &[Complex32],
    w: &[f32],
) -> (Complex32, Complex32) {
    (gather_row(src0, w), gather_row(src1, w))
}

/// `dst[i] += src[i]` over complex buffers.
///
/// # Safety
/// See [`scatter_row`].
#[target_feature(enable = "sse2")]
pub unsafe fn accumulate(dst: &mut [Complex32], src: &[Complex32]) {
    debug_assert_eq!(dst.len(), src.len());
    let n2 = dst.len() * 2;
    let dp = dst.as_mut_ptr() as *mut f32;
    let sp = src.as_ptr() as *const f32;
    let mut i = 0;
    while i + 4 <= n2 {
        let d = _mm_loadu_ps(dp.add(i));
        let s = _mm_loadu_ps(sp.add(i));
        _mm_storeu_ps(dp.add(i), _mm_add_ps(d, s));
        i += 4;
    }
    while i < n2 {
        *dp.add(i) += *sp.add(i);
        i += 1;
    }
}

/// `buf[i] *= s[i]` — pointwise real scaling of a complex buffer.
///
/// # Safety
/// See [`scatter_row`].
#[target_feature(enable = "sse2")]
pub unsafe fn scale_by_real(buf: &mut [Complex32], s: &[f32]) {
    debug_assert_eq!(buf.len(), s.len());
    let n = buf.len();
    let bp = buf.as_mut_ptr() as *mut f32;
    let sp = s.as_ptr();
    let mut i = 0;
    while i + 2 <= n {
        let sv = _mm_set_ps(*sp.add(i + 1), *sp.add(i + 1), *sp.add(i), *sp.add(i));
        let b = _mm_loadu_ps(bp.add(2 * i));
        _mm_storeu_ps(bp.add(2 * i), _mm_mul_ps(b, sv));
        i += 2;
    }
    while i < n {
        let si = *sp.add(i);
        buf.get_unchecked_mut(i).re *= si;
        buf.get_unchecked_mut(i).im *= si;
        i += 1;
    }
}
