//! Dispatched complex-SIMD FFT stage butterflies (radix-2 / radix-4).
//!
//! These are the vector butterflies of the FFT execution path (EFFT-style
//! cache-blocked execution): a Cooley–Tukey combine stage applies the same
//! twiddle/butterfly pattern to every element of a contiguous row, which maps
//! onto interleaved complex SIMD in two shapes:
//!
//! * **rows** — per-element twiddles. One stage of a single contiguous
//!   transform: `d0/d1/…` are the `m`-long sub-rows of one combine and
//!   `tw[k]` multiplies element `k`. Used by the 1D plan for every line
//!   (including the contiguous innermost axis of an n-D transform).
//! * **cols** — one twiddle broadcast across `b` interleaved lines. The
//!   batched tile path packs `b` strided lines element-interleaved
//!   (`tile[k·b + lane]` = element `k` of line `lane`), so one twiddle load
//!   amortizes over `b` lines and every memory access is contiguous.
//!
//! Bit-compatibility contract: at a fixed [`IsaLevel`], the *rows* and
//! *cols* kernels perform the identical arithmetic per element (same
//! multiply/add shapes, same FMA contraction), so a batched tile transform
//! is bit-identical to transforming its lines one at a time. The property
//! tests in `nufft-fft` pin this. The `Scalar` arm additionally matches the
//! plain `Complex32` operator arithmetic of the scalar butterflies in
//! `nufft-fft` (SSE2 matches it too — its lane ops are the same
//! mul/add/sub, only commuted where IEEE addition commutes exactly);
//! `Avx2Fma` contracts with FMA and therefore only matches itself.
//!
//! `StrictScalar` arms defeat auto-vectorization with per-element
//! `black_box`, preserving the Figure-13-style ISA comparison for the FFT
//! phase.

use crate::dispatch::{active_isa, IsaLevel};
use nufft_math::Complex32;

/// One radix-2 combine stage over contiguous rows: for every `k`,
/// `b = d1[k]·tw[k]`, then `d0[k] = d0[k] + b`, `d1[k] = d0[k] − b`.
///
/// # Panics
/// Panics if `d0`, `d1` and `tw` lengths differ.
#[inline]
pub fn bfly2_rows(d0: &mut [Complex32], d1: &mut [Complex32], tw: &[Complex32]) {
    assert!(d0.len() == tw.len() && d1.len() == tw.len(), "row length mismatch");
    match active_isa() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: active_isa() only reports levels the host supports.
        IsaLevel::Avx2Fma => unsafe { avx2::bfly2_rows(d0, d1, tw) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        IsaLevel::Sse2 => unsafe { sse2::bfly2_rows(d0, d1, tw) },
        IsaLevel::StrictScalar => strict::bfly2_rows(d0, d1, tw),
        _ => scalar::bfly2_rows(d0, d1, tw),
    }
}

/// One radix-4 combine stage over contiguous rows; `tw1/tw2/tw3` are the
/// per-element twiddles of sub-rows 1–3 and `forward` selects the DFT sign.
///
/// # Panics
/// Panics if any row or twiddle length differs from `tw1.len()`.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn bfly4_rows(
    d0: &mut [Complex32],
    d1: &mut [Complex32],
    d2: &mut [Complex32],
    d3: &mut [Complex32],
    tw1: &[Complex32],
    tw2: &[Complex32],
    tw3: &[Complex32],
    forward: bool,
) {
    let m = tw1.len();
    assert!(
        d0.len() == m && d1.len() == m && d2.len() == m && d3.len() == m,
        "row length mismatch"
    );
    assert!(tw2.len() == m && tw3.len() == m, "twiddle row length mismatch");
    match active_isa() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: active_isa() only reports levels the host supports.
        IsaLevel::Avx2Fma => unsafe { avx2::bfly4_rows(d0, d1, d2, d3, tw1, tw2, tw3, forward) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        IsaLevel::Sse2 => unsafe { sse2::bfly4_rows(d0, d1, d2, d3, tw1, tw2, tw3, forward) },
        IsaLevel::StrictScalar => strict::bfly4_rows(d0, d1, d2, d3, tw1, tw2, tw3, forward),
        _ => scalar::bfly4_rows(d0, d1, d2, d3, tw1, tw2, tw3, forward),
    }
}

/// Radix-2 combine with the twiddle multiply already applied (the
/// four-step path hoists it into the transpose gather, see
/// `crate::transpose`): `(d0[k], d1[k]) = (d0[k] + d1[k], d0[k] − d1[k])`.
/// Addition/subtraction round identically at every level, so all arms are
/// bitwise-equal; the `StrictScalar` arm still defeats auto-vectorization
/// for the ISA comparison. Layout-agnostic (rows and interleaved columns
/// alike — no per-element twiddle to line up).
///
/// # Panics
/// Panics if `d0` and `d1` lengths differ.
#[inline]
pub fn bfly2_nt(d0: &mut [Complex32], d1: &mut [Complex32]) {
    assert_eq!(d0.len(), d1.len(), "row length mismatch");
    match active_isa() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: active_isa() only reports levels the host supports.
        IsaLevel::Avx2Fma => unsafe { avx2::bfly2_nt(d0, d1) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        IsaLevel::Sse2 => unsafe { sse2::bfly2_nt(d0, d1) },
        IsaLevel::StrictScalar => strict::bfly2_nt(d0, d1),
        _ => scalar::bfly2_nt(d0, d1),
    }
}

/// Radix-4 combine with twiddles already applied (see [`bfly2_nt`]); pure
/// add/sub/±i-rotation, bitwise-equal across all arms.
///
/// # Panics
/// Panics if any row length differs from `d0.len()`.
#[inline]
pub fn bfly4_nt(
    d0: &mut [Complex32],
    d1: &mut [Complex32],
    d2: &mut [Complex32],
    d3: &mut [Complex32],
    forward: bool,
) {
    let m = d0.len();
    assert!(d1.len() == m && d2.len() == m && d3.len() == m, "row length mismatch");
    match active_isa() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: active_isa() only reports levels the host supports.
        IsaLevel::Avx2Fma => unsafe { avx2::bfly4_nt(d0, d1, d2, d3, forward) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        IsaLevel::Sse2 => unsafe { sse2::bfly4_nt(d0, d1, d2, d3, forward) },
        IsaLevel::StrictScalar => strict::bfly4_nt(d0, d1, d2, d3, forward),
        _ => scalar::bfly4_nt(d0, d1, d2, d3, forward),
    }
}

/// Radix-2 combine over `b` interleaved lines: element `k` of line `lane`
/// lives at `d·[k·b + lane]`, and `tw[k]` is broadcast across all `b` lanes.
///
/// # Panics
/// Panics if `b == 0` or `d0`/`d1` lengths differ from `tw.len()·b`.
#[inline]
pub fn bfly2_cols(d0: &mut [Complex32], d1: &mut [Complex32], tw: &[Complex32], b: usize) {
    assert!(b > 0, "batch width must be positive");
    let len = tw.len() * b;
    assert!(d0.len() == len && d1.len() == len, "column block length mismatch");
    match active_isa() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: active_isa() only reports levels the host supports.
        IsaLevel::Avx2Fma => unsafe { avx2::bfly2_cols(d0, d1, tw, b) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        IsaLevel::Sse2 => unsafe { sse2::bfly2_cols(d0, d1, tw, b) },
        IsaLevel::StrictScalar => strict::bfly2_cols(d0, d1, tw, b),
        _ => scalar::bfly2_cols(d0, d1, tw, b),
    }
}

/// Radix-4 combine over `b` interleaved lines (see [`bfly2_cols`] for the
/// layout and [`bfly4_rows`] for the butterfly).
///
/// # Panics
/// Panics if `b == 0` or any block/twiddle length is inconsistent.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn bfly4_cols(
    d0: &mut [Complex32],
    d1: &mut [Complex32],
    d2: &mut [Complex32],
    d3: &mut [Complex32],
    tw1: &[Complex32],
    tw2: &[Complex32],
    tw3: &[Complex32],
    b: usize,
    forward: bool,
) {
    assert!(b > 0, "batch width must be positive");
    let m = tw1.len();
    let len = m * b;
    assert!(
        d0.len() == len && d1.len() == len && d2.len() == len && d3.len() == len,
        "column block length mismatch"
    );
    assert!(tw2.len() == m && tw3.len() == m, "twiddle row length mismatch");
    match active_isa() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: active_isa() only reports levels the host supports.
        IsaLevel::Avx2Fma => unsafe { avx2::bfly4_cols(d0, d1, d2, d3, tw1, tw2, tw3, b, forward) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        IsaLevel::Sse2 => unsafe { sse2::bfly4_cols(d0, d1, d2, d3, tw1, tw2, tw3, b, forward) },
        IsaLevel::StrictScalar => strict::bfly4_cols(d0, d1, d2, d3, tw1, tw2, tw3, b, forward),
        _ => scalar::bfly4_cols(d0, d1, d2, d3, tw1, tw2, tw3, b, forward),
    }
}

/// Scalar reference arms: plain `Complex32` operator arithmetic, identical
/// element-for-element to the scalar butterflies in `nufft-fft`.
mod scalar {
    use super::Complex32;

    /// `(a + b·w, a − b·w)` with plain complex arithmetic.
    #[inline(always)]
    pub(super) fn bfly2_one(a: Complex32, b: Complex32, w: Complex32) -> (Complex32, Complex32) {
        let t = b * w;
        (a + t, a - t)
    }

    /// Twiddled 4-point DFT of `(a, b, c, d)`; `sign` is −1 forward, +1
    /// backward (the arithmetic of `nufft-fft`'s `bfly4`).
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    pub(super) fn bfly4_one(
        a: Complex32,
        b: Complex32,
        c: Complex32,
        d: Complex32,
        w1: Complex32,
        w2: Complex32,
        w3: Complex32,
        sign: f32,
    ) -> (Complex32, Complex32, Complex32, Complex32) {
        let (b, c, d) = (b * w1, c * w2, d * w3);
        let s02 = a + c;
        let d02 = a - c;
        let s13 = b + d;
        let d13 = b - d;
        let j = Complex32::new(-sign * d13.im, sign * d13.re);
        (s02 + s13, d02 + j, s02 - s13, d02 - j)
    }

    pub(super) fn bfly2_rows(d0: &mut [Complex32], d1: &mut [Complex32], tw: &[Complex32]) {
        for k in 0..tw.len() {
            let (x, y) = bfly2_one(d0[k], d1[k], tw[k]);
            d0[k] = x;
            d1[k] = y;
        }
    }

    pub(super) fn bfly2_nt(d0: &mut [Complex32], d1: &mut [Complex32]) {
        for k in 0..d0.len() {
            let (a, t) = (d0[k], d1[k]);
            d0[k] = a + t;
            d1[k] = a - t;
        }
    }

    pub(super) fn bfly4_nt(
        d0: &mut [Complex32],
        d1: &mut [Complex32],
        d2: &mut [Complex32],
        d3: &mut [Complex32],
        forward: bool,
    ) {
        let sign = if forward { -1.0f32 } else { 1.0 };
        for k in 0..d0.len() {
            let (a, b, c, d) = (d0[k], d1[k], d2[k], d3[k]);
            let s02 = a + c;
            let d02 = a - c;
            let s13 = b + d;
            let d13 = b - d;
            let j = Complex32::new(-sign * d13.im, sign * d13.re);
            d0[k] = s02 + s13;
            d1[k] = d02 + j;
            d2[k] = s02 - s13;
            d3[k] = d02 - j;
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn bfly4_rows(
        d0: &mut [Complex32],
        d1: &mut [Complex32],
        d2: &mut [Complex32],
        d3: &mut [Complex32],
        tw1: &[Complex32],
        tw2: &[Complex32],
        tw3: &[Complex32],
        forward: bool,
    ) {
        let sign = if forward { -1.0f32 } else { 1.0 };
        for k in 0..tw1.len() {
            let (x0, x1, x2, x3) =
                bfly4_one(d0[k], d1[k], d2[k], d3[k], tw1[k], tw2[k], tw3[k], sign);
            d0[k] = x0;
            d1[k] = x1;
            d2[k] = x2;
            d3[k] = x3;
        }
    }

    pub(super) fn bfly2_cols(
        d0: &mut [Complex32],
        d1: &mut [Complex32],
        tw: &[Complex32],
        b: usize,
    ) {
        for (k, &w) in tw.iter().enumerate() {
            for i in k * b..(k + 1) * b {
                let (x, y) = bfly2_one(d0[i], d1[i], w);
                d0[i] = x;
                d1[i] = y;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn bfly4_cols(
        d0: &mut [Complex32],
        d1: &mut [Complex32],
        d2: &mut [Complex32],
        d3: &mut [Complex32],
        tw1: &[Complex32],
        tw2: &[Complex32],
        tw3: &[Complex32],
        b: usize,
        forward: bool,
    ) {
        let sign = if forward { -1.0f32 } else { 1.0 };
        for k in 0..tw1.len() {
            for i in k * b..(k + 1) * b {
                let (x0, x1, x2, x3) =
                    bfly4_one(d0[i], d1[i], d2[i], d3[i], tw1[k], tw2[k], tw3[k], sign);
                d0[i] = x0;
                d1[i] = x1;
                d2[i] = x2;
                d3[i] = x3;
            }
        }
    }
}

/// Strict-scalar arms: per-element `black_box` forces element-at-a-time
/// memory traffic, defeating SLP/loop auto-vectorization (the paper's
/// true-scalar baseline). Same arithmetic as [`scalar`].
mod strict {
    use super::Complex32;
    use core::hint::black_box;

    pub(super) fn bfly2_rows(d0: &mut [Complex32], d1: &mut [Complex32], tw: &[Complex32]) {
        for k in 0..tw.len() {
            let a = *black_box(&d0[k]);
            let t = *black_box(&d1[k]) * tw[k];
            d0[k] = a + t;
            d1[k] = a - t;
        }
    }

    pub(super) fn bfly2_nt(d0: &mut [Complex32], d1: &mut [Complex32]) {
        for k in 0..d0.len() {
            let a = *black_box(&d0[k]);
            let t = *black_box(&d1[k]);
            d0[k] = a + t;
            d1[k] = a - t;
        }
    }

    pub(super) fn bfly4_nt(
        d0: &mut [Complex32],
        d1: &mut [Complex32],
        d2: &mut [Complex32],
        d3: &mut [Complex32],
        forward: bool,
    ) {
        let sign = if forward { -1.0f32 } else { 1.0 };
        for k in 0..d0.len() {
            let a = *black_box(&d0[k]);
            let b = *black_box(&d1[k]);
            let c = *black_box(&d2[k]);
            let d = *black_box(&d3[k]);
            let s02 = a + c;
            let d02 = a - c;
            let s13 = b + d;
            let d13 = b - d;
            let j = Complex32::new(-sign * d13.im, sign * d13.re);
            d0[k] = s02 + s13;
            d1[k] = d02 + j;
            d2[k] = s02 - s13;
            d3[k] = d02 - j;
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn bfly4_rows(
        d0: &mut [Complex32],
        d1: &mut [Complex32],
        d2: &mut [Complex32],
        d3: &mut [Complex32],
        tw1: &[Complex32],
        tw2: &[Complex32],
        tw3: &[Complex32],
        forward: bool,
    ) {
        let sign = if forward { -1.0f32 } else { 1.0 };
        for k in 0..tw1.len() {
            let a = *black_box(&d0[k]);
            let b = *black_box(&d1[k]) * tw1[k];
            let c = *black_box(&d2[k]) * tw2[k];
            let d = *black_box(&d3[k]) * tw3[k];
            let s02 = a + c;
            let d02 = a - c;
            let s13 = b + d;
            let d13 = b - d;
            let j = Complex32::new(-sign * d13.im, sign * d13.re);
            d0[k] = s02 + s13;
            d1[k] = d02 + j;
            d2[k] = s02 - s13;
            d3[k] = d02 - j;
        }
    }

    pub(super) fn bfly2_cols(
        d0: &mut [Complex32],
        d1: &mut [Complex32],
        tw: &[Complex32],
        b: usize,
    ) {
        for (k, &w) in tw.iter().enumerate() {
            for i in k * b..(k + 1) * b {
                let a = *black_box(&d0[i]);
                let t = *black_box(&d1[i]) * w;
                d0[i] = a + t;
                d1[i] = a - t;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn bfly4_cols(
        d0: &mut [Complex32],
        d1: &mut [Complex32],
        d2: &mut [Complex32],
        d3: &mut [Complex32],
        tw1: &[Complex32],
        tw2: &[Complex32],
        tw3: &[Complex32],
        b: usize,
        forward: bool,
    ) {
        let sign = if forward { -1.0f32 } else { 1.0 };
        for k in 0..tw1.len() {
            for i in k * b..(k + 1) * b {
                let a = *black_box(&d0[i]);
                let bb = *black_box(&d1[i]) * tw1[k];
                let c = *black_box(&d2[i]) * tw2[k];
                let d = *black_box(&d3[i]) * tw3[k];
                let s02 = a + c;
                let d02 = a - c;
                let s13 = bb + d;
                let d13 = bb - d;
                let j = Complex32::new(-sign * d13.im, sign * d13.re);
                d0[i] = s02 + s13;
                d1[i] = d02 + j;
                d2[i] = s02 - s13;
                d3[i] = d02 - j;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod sse2 {
    #![allow(unsafe_op_in_unsafe_fn)]

    use super::Complex32;
    use core::arch::x86_64::*;

    /// Complex multiply of two interleaved pairs: `re = ar·wr − ai·wi`,
    /// `im = ai·wr + ar·wi` — the plain (non-FMA) shape, so lane results
    /// are bitwise equal to scalar `Complex32` multiplication.
    #[inline(always)]
    unsafe fn cmul2(a: __m128, w: __m128) -> __m128 {
        let wr = _mm_shuffle_ps(w, w, 0b1010_0000); // [wr0, wr0, wr1, wr1]
        let wi = _mm_shuffle_ps(w, w, 0b1111_0101); // [wi0, wi0, wi1, wi1]
        let asw = _mm_shuffle_ps(a, a, 0b1011_0001); // [ai0, ar0, ai1, ar1]
        let t1 = _mm_mul_ps(a, wr); // [ar·wr, ai·wr, …]
        let t2 = _mm_mul_ps(asw, wi); // [ai·wi, ar·wi, …]
                                      // Negate the real lanes of t2, then add: re = ar·wr − ai·wi.
        let neg_re = _mm_castsi128_ps(_mm_set_epi32(0, i32::MIN, 0, i32::MIN));
        _mm_add_ps(t1, _mm_xor_ps(t2, neg_re))
    }

    /// `sign·i·z` per complex lane: swap re/im then negate one lane.
    #[inline(always)]
    unsafe fn rot90_2(z: __m128, forward: bool) -> __m128 {
        let sw = _mm_shuffle_ps(z, z, 0b1011_0001); // [im, re] per complex
                                                    // forward (sign −1): j = (im, −re); backward: j = (−im, re).
        let mask = if forward {
            _mm_castsi128_ps(_mm_set_epi32(i32::MIN, 0, i32::MIN, 0))
        } else {
            _mm_castsi128_ps(_mm_set_epi32(0, i32::MIN, 0, i32::MIN))
        };
        _mm_xor_ps(sw, mask)
    }

    /// # Safety
    /// CPU must support SSE2 (guaranteed on x86_64; kept unsafe for raw
    /// pointer use and symmetry with the AVX arm).
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn bfly2_rows(d0: &mut [Complex32], d1: &mut [Complex32], tw: &[Complex32]) {
        let m = tw.len();
        let p0 = d0.as_mut_ptr() as *mut f32;
        let p1 = d1.as_mut_ptr() as *mut f32;
        let pw = tw.as_ptr() as *const f32;
        let mut k = 0;
        while k + 2 <= m {
            let a = _mm_loadu_ps(p0.add(2 * k));
            let t = cmul2(_mm_loadu_ps(p1.add(2 * k)), _mm_loadu_ps(pw.add(2 * k)));
            _mm_storeu_ps(p0.add(2 * k), _mm_add_ps(a, t));
            _mm_storeu_ps(p1.add(2 * k), _mm_sub_ps(a, t));
            k += 2;
        }
        while k < m {
            // Plain complex mul matches cmul2 lane arithmetic bitwise.
            let a = d0[k];
            let t = d1[k] * tw[k];
            d0[k] = a + t;
            d1[k] = a - t;
            k += 1;
        }
    }

    /// # Safety
    /// See [`bfly2_rows`].
    #[target_feature(enable = "sse2")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn bfly4_rows(
        d0: &mut [Complex32],
        d1: &mut [Complex32],
        d2: &mut [Complex32],
        d3: &mut [Complex32],
        tw1: &[Complex32],
        tw2: &[Complex32],
        tw3: &[Complex32],
        forward: bool,
    ) {
        let m = tw1.len();
        let sign = if forward { -1.0f32 } else { 1.0 };
        let (p0, p1) = (d0.as_mut_ptr() as *mut f32, d1.as_mut_ptr() as *mut f32);
        let (p2, p3) = (d2.as_mut_ptr() as *mut f32, d3.as_mut_ptr() as *mut f32);
        let (w1, w2, w3) =
            (tw1.as_ptr() as *const f32, tw2.as_ptr() as *const f32, tw3.as_ptr() as *const f32);
        let mut k = 0;
        while k + 2 <= m {
            let o = 2 * k;
            let a = _mm_loadu_ps(p0.add(o));
            let b = cmul2(_mm_loadu_ps(p1.add(o)), _mm_loadu_ps(w1.add(o)));
            let c = cmul2(_mm_loadu_ps(p2.add(o)), _mm_loadu_ps(w2.add(o)));
            let d = cmul2(_mm_loadu_ps(p3.add(o)), _mm_loadu_ps(w3.add(o)));
            let s02 = _mm_add_ps(a, c);
            let d02 = _mm_sub_ps(a, c);
            let s13 = _mm_add_ps(b, d);
            let j = rot90_2(_mm_sub_ps(b, d), forward);
            _mm_storeu_ps(p0.add(o), _mm_add_ps(s02, s13));
            _mm_storeu_ps(p1.add(o), _mm_add_ps(d02, j));
            _mm_storeu_ps(p2.add(o), _mm_sub_ps(s02, s13));
            _mm_storeu_ps(p3.add(o), _mm_sub_ps(d02, j));
            k += 2;
        }
        while k < m {
            let (x0, x1, x2, x3) =
                super::scalar::bfly4_one(d0[k], d1[k], d2[k], d3[k], tw1[k], tw2[k], tw3[k], sign);
            d0[k] = x0;
            d1[k] = x1;
            d2[k] = x2;
            d3[k] = x3;
            k += 1;
        }
    }

    /// # Safety
    /// See [`bfly2_rows`].
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn bfly2_nt(d0: &mut [Complex32], d1: &mut [Complex32]) {
        let m = d0.len();
        let p0 = d0.as_mut_ptr() as *mut f32;
        let p1 = d1.as_mut_ptr() as *mut f32;
        let mut k = 0;
        while k + 2 <= m {
            let a = _mm_loadu_ps(p0.add(2 * k));
            let t = _mm_loadu_ps(p1.add(2 * k));
            _mm_storeu_ps(p0.add(2 * k), _mm_add_ps(a, t));
            _mm_storeu_ps(p1.add(2 * k), _mm_sub_ps(a, t));
            k += 2;
        }
        while k < m {
            let (a, t) = (d0[k], d1[k]);
            d0[k] = a + t;
            d1[k] = a - t;
            k += 1;
        }
    }

    /// # Safety
    /// See [`bfly2_rows`].
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn bfly4_nt(
        d0: &mut [Complex32],
        d1: &mut [Complex32],
        d2: &mut [Complex32],
        d3: &mut [Complex32],
        forward: bool,
    ) {
        let m = d0.len();
        let sign = if forward { -1.0f32 } else { 1.0 };
        let (p0, p1) = (d0.as_mut_ptr() as *mut f32, d1.as_mut_ptr() as *mut f32);
        let (p2, p3) = (d2.as_mut_ptr() as *mut f32, d3.as_mut_ptr() as *mut f32);
        let mut k = 0;
        while k + 2 <= m {
            let o = 2 * k;
            let a = _mm_loadu_ps(p0.add(o));
            let b = _mm_loadu_ps(p1.add(o));
            let c = _mm_loadu_ps(p2.add(o));
            let d = _mm_loadu_ps(p3.add(o));
            let s02 = _mm_add_ps(a, c);
            let d02 = _mm_sub_ps(a, c);
            let s13 = _mm_add_ps(b, d);
            let j = rot90_2(_mm_sub_ps(b, d), forward);
            _mm_storeu_ps(p0.add(o), _mm_add_ps(s02, s13));
            _mm_storeu_ps(p1.add(o), _mm_add_ps(d02, j));
            _mm_storeu_ps(p2.add(o), _mm_sub_ps(s02, s13));
            _mm_storeu_ps(p3.add(o), _mm_sub_ps(d02, j));
            k += 2;
        }
        while k < m {
            let (a, b, c, d) = (d0[k], d1[k], d2[k], d3[k]);
            let s02 = a + c;
            let d02 = a - c;
            let s13 = b + d;
            let d13 = b - d;
            let j = Complex32::new(-sign * d13.im, sign * d13.re);
            d0[k] = s02 + s13;
            d1[k] = d02 + j;
            d2[k] = s02 - s13;
            d3[k] = d02 - j;
            k += 1;
        }
    }

    /// # Safety
    /// See [`bfly2_rows`].
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn bfly2_cols(
        d0: &mut [Complex32],
        d1: &mut [Complex32],
        tw: &[Complex32],
        b: usize,
    ) {
        let p0 = d0.as_mut_ptr() as *mut f32;
        let p1 = d1.as_mut_ptr() as *mut f32;
        for (k, &w) in tw.iter().enumerate() {
            let wr = _mm_set1_ps(w.re);
            let wi = _mm_set1_ps(w.im);
            let neg_re = _mm_castsi128_ps(_mm_set_epi32(0, i32::MIN, 0, i32::MIN));
            let mut lane = 0;
            while lane + 2 <= b {
                let o = 2 * (k * b + lane);
                let a = _mm_loadu_ps(p0.add(o));
                let x = _mm_loadu_ps(p1.add(o));
                let xsw = _mm_shuffle_ps(x, x, 0b1011_0001);
                let t = _mm_add_ps(_mm_mul_ps(x, wr), _mm_xor_ps(_mm_mul_ps(xsw, wi), neg_re));
                _mm_storeu_ps(p0.add(o), _mm_add_ps(a, t));
                _mm_storeu_ps(p1.add(o), _mm_sub_ps(a, t));
                lane += 2;
            }
            while lane < b {
                let i = k * b + lane;
                let a = d0[i];
                let t = d1[i] * w;
                d0[i] = a + t;
                d1[i] = a - t;
                lane += 1;
            }
        }
    }

    /// # Safety
    /// See [`bfly2_rows`].
    #[target_feature(enable = "sse2")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn bfly4_cols(
        d0: &mut [Complex32],
        d1: &mut [Complex32],
        d2: &mut [Complex32],
        d3: &mut [Complex32],
        tw1: &[Complex32],
        tw2: &[Complex32],
        tw3: &[Complex32],
        b: usize,
        forward: bool,
    ) {
        let sign = if forward { -1.0f32 } else { 1.0 };
        let (p0, p1) = (d0.as_mut_ptr() as *mut f32, d1.as_mut_ptr() as *mut f32);
        let (p2, p3) = (d2.as_mut_ptr() as *mut f32, d3.as_mut_ptr() as *mut f32);
        let neg_re = _mm_castsi128_ps(_mm_set_epi32(0, i32::MIN, 0, i32::MIN));
        for k in 0..tw1.len() {
            let (w1, w2, w3) = (tw1[k], tw2[k], tw3[k]);
            let (w1r, w1i) = (_mm_set1_ps(w1.re), _mm_set1_ps(w1.im));
            let (w2r, w2i) = (_mm_set1_ps(w2.re), _mm_set1_ps(w2.im));
            let (w3r, w3i) = (_mm_set1_ps(w3.re), _mm_set1_ps(w3.im));
            let mut lane = 0;
            while lane + 2 <= b {
                let o = 2 * (k * b + lane);
                let a = _mm_loadu_ps(p0.add(o));
                let bcast_mul = |p: *mut f32, wr: __m128, wi: __m128| {
                    let x = _mm_loadu_ps(p);
                    let xsw = _mm_shuffle_ps(x, x, 0b1011_0001);
                    _mm_add_ps(_mm_mul_ps(x, wr), _mm_xor_ps(_mm_mul_ps(xsw, wi), neg_re))
                };
                let bb = bcast_mul(p1.add(o), w1r, w1i);
                let c = bcast_mul(p2.add(o), w2r, w2i);
                let d = bcast_mul(p3.add(o), w3r, w3i);
                let s02 = _mm_add_ps(a, c);
                let d02 = _mm_sub_ps(a, c);
                let s13 = _mm_add_ps(bb, d);
                let j = rot90_2(_mm_sub_ps(bb, d), forward);
                _mm_storeu_ps(p0.add(o), _mm_add_ps(s02, s13));
                _mm_storeu_ps(p1.add(o), _mm_add_ps(d02, j));
                _mm_storeu_ps(p2.add(o), _mm_sub_ps(s02, s13));
                _mm_storeu_ps(p3.add(o), _mm_sub_ps(d02, j));
                lane += 2;
            }
            while lane < b {
                let i = k * b + lane;
                let (x0, x1, x2, x3) =
                    super::scalar::bfly4_one(d0[i], d1[i], d2[i], d3[i], w1, w2, w3, sign);
                d0[i] = x0;
                d1[i] = x1;
                d2[i] = x2;
                d3[i] = x3;
                lane += 1;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    #![allow(unsafe_op_in_unsafe_fn)]

    use super::Complex32;
    use core::arch::x86_64::*;

    /// FMA-contracted complex multiply of four interleaved pairs:
    /// `re = fma(ar, wr, −ai·wi)`, `im = fma(ai, wr, ar·wi)` via
    /// `fmaddsub`. [`cmul_one`] is its exact scalar equivalent.
    #[inline(always)]
    unsafe fn cmul4(a: __m256, w: __m256) -> __m256 {
        let wr = _mm256_moveldup_ps(w);
        let wi = _mm256_movehdup_ps(w);
        let asw = _mm256_shuffle_ps(a, a, 0b1011_0001);
        _mm256_fmaddsub_ps(a, wr, _mm256_mul_ps(asw, wi))
    }

    /// Broadcast-twiddle variant of [`cmul4`] (same per-lane arithmetic).
    #[inline(always)]
    unsafe fn cmul4_bcast(a: __m256, wr: __m256, wi: __m256) -> __m256 {
        let asw = _mm256_shuffle_ps(a, a, 0b1011_0001);
        _mm256_fmaddsub_ps(a, wr, _mm256_mul_ps(asw, wi))
    }

    /// Scalar tail op matching [`cmul4`] bit-for-bit (FMA contraction via
    /// `mul_add`, which lowers to the same fused operation).
    #[inline(always)]
    fn cmul_one(a: Complex32, w: Complex32) -> Complex32 {
        let tr = a.im * w.im;
        let ti = a.re * w.im;
        Complex32::new(a.re.mul_add(w.re, -tr), a.im.mul_add(w.re, ti))
    }

    /// Scalar tail of the radix-4 butterfly with FMA-contracted twiddle
    /// multiplies (matches the vector arithmetic lane-for-lane).
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn bfly4_one_fma(
        a: Complex32,
        b: Complex32,
        c: Complex32,
        d: Complex32,
        w1: Complex32,
        w2: Complex32,
        w3: Complex32,
        sign: f32,
    ) -> (Complex32, Complex32, Complex32, Complex32) {
        let (b, c, d) = (cmul_one(b, w1), cmul_one(c, w2), cmul_one(d, w3));
        let s02 = a + c;
        let d02 = a - c;
        let s13 = b + d;
        let d13 = b - d;
        let j = Complex32::new(-sign * d13.im, sign * d13.re);
        (s02 + s13, d02 + j, s02 - s13, d02 - j)
    }

    /// `sign·i·z` per complex lane.
    #[inline(always)]
    unsafe fn rot90_4(z: __m256, forward: bool) -> __m256 {
        let sw = _mm256_shuffle_ps(z, z, 0b1011_0001);
        let mask = if forward {
            _mm256_castsi256_ps(_mm256_set_epi32(
                i32::MIN,
                0,
                i32::MIN,
                0,
                i32::MIN,
                0,
                i32::MIN,
                0,
            ))
        } else {
            _mm256_castsi256_ps(_mm256_set_epi32(
                0,
                i32::MIN,
                0,
                i32::MIN,
                0,
                i32::MIN,
                0,
                i32::MIN,
            ))
        };
        _mm256_xor_ps(sw, mask)
    }

    /// # Safety
    /// CPU must support AVX2 and FMA (checked by the dispatcher).
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn bfly2_rows(d0: &mut [Complex32], d1: &mut [Complex32], tw: &[Complex32]) {
        let m = tw.len();
        let p0 = d0.as_mut_ptr() as *mut f32;
        let p1 = d1.as_mut_ptr() as *mut f32;
        let pw = tw.as_ptr() as *const f32;
        let mut k = 0;
        while k + 4 <= m {
            let a = _mm256_loadu_ps(p0.add(2 * k));
            let t = cmul4(_mm256_loadu_ps(p1.add(2 * k)), _mm256_loadu_ps(pw.add(2 * k)));
            _mm256_storeu_ps(p0.add(2 * k), _mm256_add_ps(a, t));
            _mm256_storeu_ps(p1.add(2 * k), _mm256_sub_ps(a, t));
            k += 4;
        }
        while k < m {
            let a = d0[k];
            let t = cmul_one(d1[k], tw[k]);
            d0[k] = a + t;
            d1[k] = a - t;
            k += 1;
        }
    }

    /// # Safety
    /// See [`bfly2_rows`].
    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn bfly4_rows(
        d0: &mut [Complex32],
        d1: &mut [Complex32],
        d2: &mut [Complex32],
        d3: &mut [Complex32],
        tw1: &[Complex32],
        tw2: &[Complex32],
        tw3: &[Complex32],
        forward: bool,
    ) {
        let m = tw1.len();
        let sign = if forward { -1.0f32 } else { 1.0 };
        let (p0, p1) = (d0.as_mut_ptr() as *mut f32, d1.as_mut_ptr() as *mut f32);
        let (p2, p3) = (d2.as_mut_ptr() as *mut f32, d3.as_mut_ptr() as *mut f32);
        let (w1, w2, w3) =
            (tw1.as_ptr() as *const f32, tw2.as_ptr() as *const f32, tw3.as_ptr() as *const f32);
        let mut k = 0;
        while k + 4 <= m {
            let o = 2 * k;
            let a = _mm256_loadu_ps(p0.add(o));
            let b = cmul4(_mm256_loadu_ps(p1.add(o)), _mm256_loadu_ps(w1.add(o)));
            let c = cmul4(_mm256_loadu_ps(p2.add(o)), _mm256_loadu_ps(w2.add(o)));
            let d = cmul4(_mm256_loadu_ps(p3.add(o)), _mm256_loadu_ps(w3.add(o)));
            let s02 = _mm256_add_ps(a, c);
            let d02 = _mm256_sub_ps(a, c);
            let s13 = _mm256_add_ps(b, d);
            let j = rot90_4(_mm256_sub_ps(b, d), forward);
            _mm256_storeu_ps(p0.add(o), _mm256_add_ps(s02, s13));
            _mm256_storeu_ps(p1.add(o), _mm256_add_ps(d02, j));
            _mm256_storeu_ps(p2.add(o), _mm256_sub_ps(s02, s13));
            _mm256_storeu_ps(p3.add(o), _mm256_sub_ps(d02, j));
            k += 4;
        }
        while k < m {
            let (x0, x1, x2, x3) =
                bfly4_one_fma(d0[k], d1[k], d2[k], d3[k], tw1[k], tw2[k], tw3[k], sign);
            d0[k] = x0;
            d1[k] = x1;
            d2[k] = x2;
            d3[k] = x3;
            k += 1;
        }
    }

    /// # Safety
    /// See [`bfly2_rows`].
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn bfly2_nt(d0: &mut [Complex32], d1: &mut [Complex32]) {
        let m = d0.len();
        let p0 = d0.as_mut_ptr() as *mut f32;
        let p1 = d1.as_mut_ptr() as *mut f32;
        let mut k = 0;
        while k + 4 <= m {
            let a = _mm256_loadu_ps(p0.add(2 * k));
            let t = _mm256_loadu_ps(p1.add(2 * k));
            _mm256_storeu_ps(p0.add(2 * k), _mm256_add_ps(a, t));
            _mm256_storeu_ps(p1.add(2 * k), _mm256_sub_ps(a, t));
            k += 4;
        }
        while k < m {
            let (a, t) = (d0[k], d1[k]);
            d0[k] = a + t;
            d1[k] = a - t;
            k += 1;
        }
    }

    /// # Safety
    /// See [`bfly2_rows`].
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn bfly4_nt(
        d0: &mut [Complex32],
        d1: &mut [Complex32],
        d2: &mut [Complex32],
        d3: &mut [Complex32],
        forward: bool,
    ) {
        let m = d0.len();
        let sign = if forward { -1.0f32 } else { 1.0 };
        let (p0, p1) = (d0.as_mut_ptr() as *mut f32, d1.as_mut_ptr() as *mut f32);
        let (p2, p3) = (d2.as_mut_ptr() as *mut f32, d3.as_mut_ptr() as *mut f32);
        let mut k = 0;
        while k + 4 <= m {
            let o = 2 * k;
            let a = _mm256_loadu_ps(p0.add(o));
            let b = _mm256_loadu_ps(p1.add(o));
            let c = _mm256_loadu_ps(p2.add(o));
            let d = _mm256_loadu_ps(p3.add(o));
            let s02 = _mm256_add_ps(a, c);
            let d02 = _mm256_sub_ps(a, c);
            let s13 = _mm256_add_ps(b, d);
            let j = rot90_4(_mm256_sub_ps(b, d), forward);
            _mm256_storeu_ps(p0.add(o), _mm256_add_ps(s02, s13));
            _mm256_storeu_ps(p1.add(o), _mm256_add_ps(d02, j));
            _mm256_storeu_ps(p2.add(o), _mm256_sub_ps(s02, s13));
            _mm256_storeu_ps(p3.add(o), _mm256_sub_ps(d02, j));
            k += 4;
        }
        while k < m {
            let (a, b, c, d) = (d0[k], d1[k], d2[k], d3[k]);
            let s02 = a + c;
            let d02 = a - c;
            let s13 = b + d;
            let d13 = b - d;
            let j = Complex32::new(-sign * d13.im, sign * d13.re);
            d0[k] = s02 + s13;
            d1[k] = d02 + j;
            d2[k] = s02 - s13;
            d3[k] = d02 - j;
            k += 1;
        }
    }

    /// # Safety
    /// See [`bfly2_rows`].
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn bfly2_cols(
        d0: &mut [Complex32],
        d1: &mut [Complex32],
        tw: &[Complex32],
        b: usize,
    ) {
        let p0 = d0.as_mut_ptr() as *mut f32;
        let p1 = d1.as_mut_ptr() as *mut f32;
        for (k, &w) in tw.iter().enumerate() {
            let wr = _mm256_set1_ps(w.re);
            let wi = _mm256_set1_ps(w.im);
            let mut lane = 0;
            while lane + 4 <= b {
                let o = 2 * (k * b + lane);
                let a = _mm256_loadu_ps(p0.add(o));
                let t = cmul4_bcast(_mm256_loadu_ps(p1.add(o)), wr, wi);
                _mm256_storeu_ps(p0.add(o), _mm256_add_ps(a, t));
                _mm256_storeu_ps(p1.add(o), _mm256_sub_ps(a, t));
                lane += 4;
            }
            while lane < b {
                let i = k * b + lane;
                let a = d0[i];
                let t = cmul_one(d1[i], w);
                d0[i] = a + t;
                d1[i] = a - t;
                lane += 1;
            }
        }
    }

    /// # Safety
    /// See [`bfly2_rows`].
    #[target_feature(enable = "avx2,fma")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn bfly4_cols(
        d0: &mut [Complex32],
        d1: &mut [Complex32],
        d2: &mut [Complex32],
        d3: &mut [Complex32],
        tw1: &[Complex32],
        tw2: &[Complex32],
        tw3: &[Complex32],
        b: usize,
        forward: bool,
    ) {
        let sign = if forward { -1.0f32 } else { 1.0 };
        let (p0, p1) = (d0.as_mut_ptr() as *mut f32, d1.as_mut_ptr() as *mut f32);
        let (p2, p3) = (d2.as_mut_ptr() as *mut f32, d3.as_mut_ptr() as *mut f32);
        for k in 0..tw1.len() {
            let (w1, w2, w3) = (tw1[k], tw2[k], tw3[k]);
            let (w1r, w1i) = (_mm256_set1_ps(w1.re), _mm256_set1_ps(w1.im));
            let (w2r, w2i) = (_mm256_set1_ps(w2.re), _mm256_set1_ps(w2.im));
            let (w3r, w3i) = (_mm256_set1_ps(w3.re), _mm256_set1_ps(w3.im));
            let mut lane = 0;
            while lane + 4 <= b {
                let o = 2 * (k * b + lane);
                let a = _mm256_loadu_ps(p0.add(o));
                let bb = cmul4_bcast(_mm256_loadu_ps(p1.add(o)), w1r, w1i);
                let c = cmul4_bcast(_mm256_loadu_ps(p2.add(o)), w2r, w2i);
                let d = cmul4_bcast(_mm256_loadu_ps(p3.add(o)), w3r, w3i);
                let s02 = _mm256_add_ps(a, c);
                let d02 = _mm256_sub_ps(a, c);
                let s13 = _mm256_add_ps(bb, d);
                let j = rot90_4(_mm256_sub_ps(bb, d), forward);
                _mm256_storeu_ps(p0.add(o), _mm256_add_ps(s02, s13));
                _mm256_storeu_ps(p1.add(o), _mm256_add_ps(d02, j));
                _mm256_storeu_ps(p2.add(o), _mm256_sub_ps(s02, s13));
                _mm256_storeu_ps(p3.add(o), _mm256_sub_ps(d02, j));
                lane += 4;
            }
            while lane < b {
                let i = k * b + lane;
                let (x0, x1, x2, x3) = bfly4_one_fma(d0[i], d1[i], d2[i], d3[i], w1, w2, w3, sign);
                d0[i] = x0;
                d1[i] = x1;
                d2[i] = x2;
                d3[i] = x3;
                lane += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::{detect_isa, set_isa_override, test_isa_guard};
    use nufft_math::Complex64;

    fn demo(n: usize, salt: u32) -> Vec<Complex32> {
        (0..n)
            .map(|i| {
                let x = (i as f32 + salt as f32 * 0.37) * 0.61;
                Complex32::new((1.3 * x).sin() + 0.2, (0.7 * x).cos() - 0.1)
            })
            .collect()
    }

    fn twiddles(n: usize) -> Vec<Complex32> {
        (0..n)
            .map(|k| Complex64::cis(-core::f64::consts::TAU * k as f64 / (2 * n) as f64).to_f32())
            .collect()
    }

    /// f64 oracle for one radix-2 combine element.
    fn naive_bfly2(a: Complex32, b: Complex32, w: Complex32) -> (Complex32, Complex32) {
        let t = b.to_f64() * w.to_f64();
        ((a.to_f64() + t).to_f32(), (a.to_f64() - t).to_f32())
    }

    fn for_each_isa(mut f: impl FnMut(IsaLevel)) {
        let _guard = test_isa_guard();
        let detected = detect_isa();
        for level in [IsaLevel::StrictScalar, IsaLevel::Scalar, IsaLevel::Sse2, IsaLevel::Avx2Fma] {
            if level <= detected {
                set_isa_override(level).unwrap();
                f(level);
            }
        }
        set_isa_override(detected).unwrap();
    }

    #[test]
    fn bfly2_rows_matches_oracle_at_every_level() {
        for m in [1usize, 2, 3, 4, 5, 7, 8, 13, 16] {
            let tw = twiddles(m);
            let a0 = demo(m, 1);
            let b0 = demo(m, 2);
            for_each_isa(|level| {
                let mut a = a0.clone();
                let mut b = b0.clone();
                bfly2_rows(&mut a, &mut b, &tw);
                for k in 0..m {
                    let (x, y) = naive_bfly2(a0[k], b0[k], tw[k]);
                    assert!(
                        (a[k].re - x.re).abs() < 1e-5
                            && (a[k].im - x.im).abs() < 1e-5
                            && (b[k].re - y.re).abs() < 1e-5
                            && (b[k].im - y.im).abs() < 1e-5,
                        "m={m} k={k} level={level:?}"
                    );
                }
            });
        }
    }

    #[test]
    fn cols_match_rows_bitwise_at_every_level() {
        // The bit-compatibility contract: broadcast (cols) and per-element
        // (rows) kernels produce identical bits at the same ISA level.
        for (m, b) in [(3usize, 2usize), (4, 2), (5, 4), (8, 4), (1, 4), (2, 3)] {
            let tw = twiddles(m);
            let blocks: Vec<Vec<Complex32>> = (0..4).map(|s| demo(m * b, s)).collect();
            for_each_isa(|level| {
                // cols: interleaved layout [k*b + lane].
                let mut c: Vec<Vec<Complex32>> = blocks.clone();
                {
                    let [c0, c1, c2, c3] = &mut c[..] else { unreachable!() };
                    bfly4_cols(c0, c1, c2, c3, &tw, &tw, &tw, b, true);
                }
                // rows: transform each lane separately via length-m rows.
                let mut r = blocks.clone();
                for lane in 0..b {
                    let mut lanes: Vec<Vec<Complex32>> =
                        r.iter().map(|blk| (0..m).map(|k| blk[k * b + lane]).collect()).collect();
                    {
                        let [l0, l1, l2, l3] = &mut lanes[..] else { unreachable!() };
                        bfly4_rows(l0, l1, l2, l3, &tw, &tw, &tw, true);
                    }
                    for (blk, lv) in r.iter_mut().zip(&lanes) {
                        for k in 0..m {
                            blk[k * b + lane] = lv[k];
                        }
                    }
                }
                for (cq, rq) in c.iter().zip(&r) {
                    for (x, y) in cq.iter().zip(rq) {
                        assert!(
                            x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
                            "cols/rows bit mismatch m={m} b={b} level={level:?}: {x:?} vs {y:?}"
                        );
                    }
                }
            });
        }
    }

    #[test]
    fn bfly4_rows_matches_scalar_reference() {
        for m in [1usize, 2, 4, 6, 9, 16] {
            let tw1 = twiddles(m);
            let tw2: Vec<Complex32> = tw1.iter().map(|w| *w * *w).collect();
            let tw3: Vec<Complex32> = tw1.iter().map(|w| *w * *w * *w).collect();
            for forward in [true, false] {
                let blocks: Vec<Vec<Complex32>> = (0..4).map(|s| demo(m, s + 7)).collect();
                // Scalar reference at the Scalar level.
                let mut want = blocks.clone();
                {
                    let _guard = test_isa_guard();
                    set_isa_override(IsaLevel::Scalar).unwrap();
                    let [w0, w1, w2, w3] = &mut want[..] else { unreachable!() };
                    bfly4_rows(w0, w1, w2, w3, &tw1, &tw2, &tw3, forward);
                    set_isa_override(detect_isa()).unwrap();
                }
                for_each_isa(|level| {
                    let mut got = blocks.clone();
                    let [g0, g1, g2, g3] = &mut got[..] else { unreachable!() };
                    bfly4_rows(g0, g1, g2, g3, &tw1, &tw2, &tw3, forward);
                    for (gq, wq) in got.iter().zip(&want) {
                        for (g, w) in gq.iter().zip(wq) {
                            assert!(
                                (g.re - w.re).abs() < 1e-5 && (g.im - w.im).abs() < 1e-5,
                                "m={m} fwd={forward} level={level:?}: {g:?} vs {w:?}"
                            );
                        }
                    }
                });
            }
        }
    }

    /// The no-twiddle butterflies equal the twiddled kernels at unit
    /// twiddles, bitwise, at every level — multiplying by `1 + 0i` is exact
    /// in every arm's arithmetic shape (including FMA), so this pins that
    /// hoisting the twiddle out of the butterfly loses nothing.
    #[test]
    fn nt_butterflies_match_unit_twiddle_kernels_bitwise() {
        for m in [1usize, 2, 3, 4, 5, 8, 13] {
            let ones = vec![Complex32::ONE; m];
            let blocks: Vec<Vec<Complex32>> = (0..4).map(|s| demo(m, s + 11)).collect();
            for forward in [true, false] {
                for_each_isa(|level| {
                    let mut nt = blocks.clone();
                    {
                        let [n0, n1, n2, n3] = &mut nt[..] else { unreachable!() };
                        bfly4_nt(n0, n1, n2, n3, forward);
                    }
                    let mut tw = blocks.clone();
                    {
                        let [t0, t1, t2, t3] = &mut tw[..] else { unreachable!() };
                        bfly4_rows(t0, t1, t2, t3, &ones, &ones, &ones, forward);
                    }
                    for (nq, tq) in nt.iter().zip(&tw) {
                        for (x, y) in nq.iter().zip(tq) {
                            assert!(
                                x.re.to_bits() == y.re.to_bits()
                                    && x.im.to_bits() == y.im.to_bits(),
                                "bfly4 m={m} fwd={forward} level={level:?}: {x:?} vs {y:?}"
                            );
                        }
                    }
                    let mut nt2 = (blocks[0].clone(), blocks[1].clone());
                    bfly2_nt(&mut nt2.0, &mut nt2.1);
                    let mut tw2 = (blocks[0].clone(), blocks[1].clone());
                    bfly2_rows(&mut tw2.0, &mut tw2.1, &ones);
                    assert_eq!(nt2, tw2, "bfly2 m={m} level={level:?}");
                });
            }
        }
    }

    #[test]
    #[should_panic(expected = "row length mismatch")]
    fn bfly2_rows_rejects_mismatched_rows() {
        let mut a = vec![Complex32::ZERO; 3];
        let mut b = vec![Complex32::ZERO; 4];
        bfly2_rows(&mut a, &mut b, &twiddles(3));
    }
}
