//! Dispatched whole-buffer vector operations.
//!
//! These run over full grids (millions of complex values): privatized-buffer
//! reduction, roll-off scaling, and the inner products the iterative solver
//! needs. Unlike the row kernels they are long-trip-count loops, so the
//! vector payoff is bandwidth-bound rather than latency-bound.

use crate::dispatch::{active_isa, IsaLevel};
use crate::{avx, scalar, sse};
use nufft_math::{Complex32, Complex64};

/// `dst[i] += src[i]` — reduces a privatized sub-grid into the global grid
/// (§III-B4 "selective privatization with reduction").
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn accumulate(dst: &mut [Complex32], src: &[Complex32]) {
    assert_eq!(dst.len(), src.len(), "length mismatch");
    match active_isa() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: active_isa() only reports levels the host supports.
        IsaLevel::Avx2Fma => unsafe { avx::accumulate(dst, src) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        IsaLevel::Sse2 => unsafe { sse::accumulate(dst, src) },
        IsaLevel::StrictScalar => scalar::accumulate_strict(dst, src),
        _ => scalar::accumulate(dst, src),
    }
}

/// `buf[i] *= s[i]` — pointwise real scaling (roll-off correction, §II-B).
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn scale_by_real(buf: &mut [Complex32], s: &[f32]) {
    assert_eq!(buf.len(), s.len(), "length mismatch");
    match active_isa() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: active_isa() only reports levels the host supports.
        IsaLevel::Avx2Fma => unsafe { avx::scale_by_real(buf, s) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        IsaLevel::Sse2 => unsafe { sse::scale_by_real(buf, s) },
        IsaLevel::StrictScalar => scalar::scale_by_real_strict(buf, s),
        _ => scalar::scale_by_real(buf, s),
    }
}

/// Conjugated inner product `Σ conj(a[i])·b[i]` with `f64` accumulation.
///
/// The accumulation is deliberately scalar-`f64`: CG convergence in
/// `nufft-mri` depends on inner-product accuracy, and the buffers are touched
/// once per iteration anyway, so this is bandwidth-bound regardless.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn dotc(a: &[Complex32], b: &[Complex32]) -> Complex64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    scalar::dotc(a, b)
}

/// `Σ |a[i]|²` with `f64` accumulation.
#[inline]
pub fn sum_norm_sqr(a: &[Complex32]) -> f64 {
    scalar::sum_norm_sqr(a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_adds_elementwise() {
        let mut dst: Vec<Complex32> =
            (0..37).map(|i| Complex32::new(i as f32, -(i as f32))).collect();
        let src: Vec<Complex32> = (0..37).map(|i| Complex32::new(1.0, i as f32)).collect();
        let want: Vec<Complex32> = dst.iter().zip(&src).map(|(&d, &s)| d + s).collect();
        accumulate(&mut dst, &src);
        assert_eq!(dst, want);
    }

    #[test]
    fn scale_by_real_matches_scalar() {
        let mut buf: Vec<Complex32> =
            (0..23).map(|i| Complex32::new(0.5 * i as f32, 1.0 - i as f32)).collect();
        let s: Vec<f32> = (0..23).map(|i| 1.0 + 0.1 * i as f32).collect();
        let mut want = buf.clone();
        scalar::scale_by_real(&mut want, &s);
        scale_by_real(&mut buf, &s);
        assert_eq!(buf, want);
    }

    #[test]
    fn dotc_linearity() {
        let a: Vec<Complex32> = (0..16).map(|i| Complex32::new(i as f32, 1.0)).collect();
        let b: Vec<Complex32> = (0..16).map(|i| Complex32::new(1.0, -(i as f32))).collect();
        let c: Vec<Complex32> = b.iter().map(|&z| z.scale(2.0)).collect();
        let d1 = dotc(&a, &c);
        let d2 = dotc(&a, &b).scale(2.0);
        assert!((d1 - d2).abs() < 1e-9);
    }

    #[test]
    fn norm_is_self_dot() {
        let a: Vec<Complex32> = (0..9).map(|i| Complex32::new(i as f32, -2.0)).collect();
        assert!((sum_norm_sqr(&a) - dotc(&a, &a).re).abs() < 1e-12);
    }

    #[test]
    fn empty_buffers_are_fine() {
        let mut dst: Vec<Complex32> = vec![];
        accumulate(&mut dst, &[]);
        assert_eq!(dotc(&[], &[]), Complex64::ZERO);
        assert_eq!(sum_norm_sqr(&[]), 0.0);
    }
}
