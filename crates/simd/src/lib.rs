//! SIMD substrate for the NUFFT suite.
//!
//! The paper's convolution (§III-C) is vectorized with a *hybrid* strategy:
//! interpolation-kernel coordinates (Part 1) are computed one sample per SIMD
//! lane, while the convolution itself (Part 2) vectorizes *within* a sample
//! over the contiguous innermost grid dimension. This crate supplies the
//! Part 2 primitives — complex *row* operations over interleaved
//! `(re, im)` `f32` buffers — in three implementations:
//!
//! * [`IsaLevel::Scalar`] — portable reference, always available;
//! * [`IsaLevel::Sse2`] — 128-bit, 2 complex values per vector (the paper's
//!   SSE4 configuration);
//! * [`IsaLevel::Avx2Fma`] — 256-bit + FMA, 4 complex values per vector (the
//!   paper's "expected to scale to wider SIMD" projection).
//!
//! The active level is detected once at startup and can be overridden with
//! [`set_isa_override`] — the Figure 13 experiment uses this to measure
//! scalar-vs-SSE-vs-AVX speedups of the very same code paths.
//!
//! All kernels are exact-operation-count equivalents of their scalar
//! references; the only permitted deviations are floating-point reassociation
//! and FMA contraction, bounded in the property tests.

pub mod dispatch;
pub mod fft_rows;
pub mod horner;
pub mod rows;
pub mod transpose;
pub mod vecops;

mod avx;
mod scalar;
mod sse;

pub use dispatch::{active_isa, detect_isa, set_isa_override, IsaLevel};
pub use horner::horner_row;
pub use rows::{gather_row, gather_row2, scatter_row, scatter_row2};
pub use transpose::{gather_chunks, gather_chunks_cmul, scatter_chunks};
pub use vecops::{accumulate, dotc, scale_by_real, sum_norm_sqr};
