//! Dispatched complex-row kernels — the Part 2 convolution primitives.
//!
//! Each function consults the active [`IsaLevel`] once and
//! forwards to the matching implementation. Rows in the NUFFT convolution are
//! short (`2W` or `2W+1` complex values, i.e. 4–17), so dispatch overhead is
//! kept to a single relaxed atomic load and a predictable branch.

use crate::dispatch::{active_isa, IsaLevel};
use crate::{avx, scalar, sse};
use nufft_math::Complex32;

/// `dst[i] += val * w[i]` — adjoint-convolution inner row.
///
/// # Panics
/// Panics if `dst` and `w` have different lengths.
#[inline]
pub fn scatter_row(dst: &mut [Complex32], w: &[f32], val: Complex32) {
    assert_eq!(dst.len(), w.len(), "row length mismatch");
    match active_isa() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: active_isa() only reports levels the host supports.
        IsaLevel::Avx2Fma => unsafe { avx::scatter_row(dst, w, val) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        IsaLevel::Sse2 => unsafe { sse::scatter_row(dst, w, val) },
        IsaLevel::StrictScalar => scalar::scatter_row_strict(dst, w, val),
        _ => scalar::scatter_row(dst, w, val),
    }
}

/// Two-row scatter with a shared weight row (small-`W` SIMD-across-`y`).
///
/// # Panics
/// Panics if either destination row length differs from `w.len()`.
#[inline]
pub fn scatter_row2(
    dst0: &mut [Complex32],
    val0: Complex32,
    dst1: &mut [Complex32],
    val1: Complex32,
    w: &[f32],
) {
    assert_eq!(dst0.len(), w.len(), "row 0 length mismatch");
    assert_eq!(dst1.len(), w.len(), "row 1 length mismatch");
    match active_isa() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: active_isa() only reports levels the host supports.
        IsaLevel::Avx2Fma => unsafe { avx::scatter_row2(dst0, val0, dst1, val1, w) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        IsaLevel::Sse2 => unsafe { sse::scatter_row2(dst0, val0, dst1, val1, w) },
        IsaLevel::StrictScalar => {
            scalar::scatter_row_strict(dst0, w, val0);
            scalar::scatter_row_strict(dst1, w, val1);
        }
        _ => scalar::scatter_row2(dst0, val0, dst1, val1, w),
    }
}

/// Two-row gather with a shared weight row: the same window applied to two
/// channel grids at once (multi-channel forward). Guaranteed bitwise-equal
/// per row to two independent [`gather_row`] calls at every ISA level.
///
/// # Panics
/// Panics if either source row length differs from `w.len()`.
#[inline]
pub fn gather_row2(src0: &[Complex32], src1: &[Complex32], w: &[f32]) -> (Complex32, Complex32) {
    assert_eq!(src0.len(), w.len(), "row 0 length mismatch");
    assert_eq!(src1.len(), w.len(), "row 1 length mismatch");
    match active_isa() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: active_isa() only reports levels the host supports.
        IsaLevel::Avx2Fma => unsafe { avx::gather_row2(src0, src1, w) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        IsaLevel::Sse2 => unsafe { sse::gather_row2(src0, src1, w) },
        IsaLevel::StrictScalar => {
            (scalar::gather_row_strict(src0, w), scalar::gather_row_strict(src1, w))
        }
        _ => scalar::gather_row2(src0, src1, w),
    }
}

/// `Σ_i src[i] * w[i]` — forward-convolution inner row.
///
/// # Panics
/// Panics if `src` and `w` have different lengths.
#[inline]
pub fn gather_row(src: &[Complex32], w: &[f32]) -> Complex32 {
    assert_eq!(src.len(), w.len(), "row length mismatch");
    match active_isa() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: active_isa() only reports levels the host supports.
        IsaLevel::Avx2Fma => unsafe { avx::gather_row(src, w) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        IsaLevel::Sse2 => unsafe { sse::gather_row(src, w) },
        IsaLevel::StrictScalar => scalar::gather_row_strict(src, w),
        _ => scalar::gather_row(src, w),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::{detect_isa, set_isa_override};

    fn demo_row(n: usize) -> (Vec<Complex32>, Vec<f32>) {
        let grid: Vec<Complex32> =
            (0..n).map(|i| Complex32::new(i as f32 * 0.5 - 1.0, 1.0 - i as f32 * 0.25)).collect();
        let w: Vec<f32> = (0..n).map(|i| 0.1 + 0.05 * i as f32).collect();
        (grid, w)
    }

    /// Runs `f` under every ISA level the host supports, restoring detection
    /// afterwards. Holds the crate-wide override lock for the duration.
    fn for_each_isa(mut f: impl FnMut(IsaLevel)) {
        let _guard = crate::dispatch::test_isa_guard();
        let detected = detect_isa();
        for level in [IsaLevel::StrictScalar, IsaLevel::Scalar, IsaLevel::Sse2, IsaLevel::Avx2Fma] {
            if level <= detected {
                set_isa_override(level).unwrap();
                f(level);
            }
        }
        set_isa_override(detected).unwrap();
    }

    #[test]
    fn all_isas_agree_on_scatter() {
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 16, 17] {
            let (grid0, w) = demo_row(n);
            let val = Complex32::new(1.25, -0.75);
            let mut reference = grid0.clone();
            scalar::scatter_row(&mut reference, &w, val);
            for_each_isa(|level| {
                let mut g = grid0.clone();
                scatter_row(&mut g, &w, val);
                for (a, b) in g.iter().zip(&reference) {
                    assert!(
                        (a.re - b.re).abs() < 1e-5 && (a.im - b.im).abs() < 1e-5,
                        "scatter mismatch at n={n} level={level:?}"
                    );
                }
            });
        }
    }

    #[test]
    fn all_isas_agree_on_gather() {
        for n in [0usize, 1, 2, 3, 4, 5, 8, 11, 16, 17] {
            let (grid, w) = demo_row(n);
            let reference = scalar::gather_row(&grid, &w);
            for_each_isa(|level| {
                let got = gather_row(&grid, &w);
                assert!(
                    (got.re - reference.re).abs() < 1e-4 && (got.im - reference.im).abs() < 1e-4,
                    "gather mismatch at n={n} level={level:?}: {got:?} vs {reference:?}"
                );
            });
        }
    }

    #[test]
    fn all_isas_agree_on_scatter_row2() {
        for n in [0usize, 2, 4, 5, 9, 16] {
            let (g0, w) = demo_row(n);
            let g1: Vec<Complex32> = g0.iter().map(|z| z.conj()).collect();
            let (v0, v1) = (Complex32::new(0.5, 2.0), Complex32::new(-1.0, 0.25));
            let mut r0 = g0.clone();
            let mut r1 = g1.clone();
            scalar::scatter_row2(&mut r0, v0, &mut r1, v1, &w);
            for_each_isa(|level| {
                let mut a0 = g0.clone();
                let mut a1 = g1.clone();
                scatter_row2(&mut a0, v0, &mut a1, v1, &w);
                for (a, b) in a0.iter().zip(&r0).chain(a1.iter().zip(&r1)) {
                    assert!(
                        (a.re - b.re).abs() < 1e-5 && (a.im - b.im).abs() < 1e-5,
                        "scatter2 mismatch n={n} level={level:?}"
                    );
                }
            });
        }
    }

    #[test]
    fn gather_row2_is_bitwise_two_gather_rows() {
        // The load-bearing contract: the pair kernel must be *bitwise*
        // identical to two one-row gathers at every ISA level, else the
        // channel-paired forward driver would break cross-mode equality.
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 11, 16, 17] {
            let (g0, w) = demo_row(n);
            let g1: Vec<Complex32> =
                g0.iter().map(|z| Complex32::new(z.im * 1.5, z.re - 0.5)).collect();
            for_each_isa(|level| {
                let a = gather_row(&g0, &w);
                let b = gather_row(&g1, &w);
                let (pa, pb) = gather_row2(&g0, &g1, &w);
                assert_eq!(
                    (pa.re.to_bits(), pa.im.to_bits()),
                    (a.re.to_bits(), a.im.to_bits()),
                    "row0 mismatch n={n} level={level:?}"
                );
                assert_eq!(
                    (pb.re.to_bits(), pb.im.to_bits()),
                    (b.re.to_bits(), b.im.to_bits()),
                    "row1 mismatch n={n} level={level:?}"
                );
            });
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn scatter_rejects_mismatched_rows() {
        let mut dst = vec![Complex32::ZERO; 3];
        scatter_row(&mut dst, &[1.0, 2.0], Complex32::ONE);
    }
}
