//! Cache-blocked transpose primitives for the four-step FFT path.
//!
//! A Bailey four-step decomposition (EFFT-style) turns one long transform
//! into `n2` sub-FFTs, a twiddle multiply, and a blocked transpose. The
//! transpose is the memory-bound pass: it walks `P` rows spaced `n2·stride`
//! complexes apart, touching one fresh cache line per row per column block.
//! These kernels are its substrate:
//!
//! * [`gather_chunks`] — copy `chunks` fixed-length runs spaced `stride`
//!   apart into a contiguous tile, with software prefetch ahead of the
//!   strided stream;
//! * [`gather_chunks_cmul`] — the same sweep with the four-step twiddle
//!   multiply **fused into the gather** (one twiddle per chunk, broadcast
//!   across the chunk), so the twiddle pass costs no extra memory sweep;
//! * [`scatter_chunks`] — the inverse scatter.
//!
//! `chunk_len == 1 && stride == 1` degenerates to a contiguous elementwise
//! sweep (the layout of a contiguous innermost axis, where every element
//! carries its own twiddle) and takes a dedicated vector path.
//!
//! Bit-compatibility contract: at a fixed [`IsaLevel`] the fused multiply
//! uses the *same per-element arithmetic shape* as the stage butterflies in
//! [`crate::fft_rows`] — plain mul/add for `Scalar`/`StrictScalar`/`Sse2`,
//! `fmaddsub`-contracted (scalar tail via `mul_add`) for `Avx2Fma` — so a
//! transform that hoists its twiddle multiply into this gather produces
//! bitwise the same result as one that applies it inside the butterfly.
//! `nufft-fft`'s four-step tests pin that end to end.

use crate::dispatch::{active_isa, IsaLevel};
use nufft_math::Complex32;

/// Chunks prefetched ahead of the gather/scatter cursor: far enough to
/// cover DRAM latency on the strided stream, near enough not to thrash
/// small tiles.
const PREFETCH_AHEAD: usize = 4;

/// Validates the common chunk geometry and returns the chunk count.
#[inline]
fn chunk_geometry(tile_len: usize, span_len: usize, chunk_len: usize, stride: usize) -> usize {
    assert!(chunk_len > 0, "chunk length must be positive");
    assert!(tile_len.is_multiple_of(chunk_len), "tile length must be a whole number of chunks");
    let chunks = tile_len / chunk_len;
    if chunks > 0 {
        let last_end = (chunks - 1) * stride + chunk_len;
        assert!(last_end <= span_len, "strided span exceeds the source/destination buffer");
    }
    chunks
}

/// Gathers `dst.len()/chunk_len` runs of `chunk_len` complexes from `src`,
/// run `c` starting at `src[c·stride]`, into the contiguous tile `dst`.
///
/// # Panics
/// Panics if `chunk_len == 0`, `dst.len()` is not a multiple of
/// `chunk_len`, or the last run overruns `src`.
#[inline]
pub fn gather_chunks(dst: &mut [Complex32], src: &[Complex32], chunk_len: usize, stride: usize) {
    let chunks = chunk_geometry(dst.len(), src.len(), chunk_len, stride);
    match active_isa() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: active_isa() only reports levels the host supports, and
        // the geometry was validated above.
        IsaLevel::Avx2Fma | IsaLevel::Sse2 => unsafe {
            x86::copy_chunks(dst.as_mut_ptr(), chunk_len, src.as_ptr(), stride, chunks, chunk_len)
        },
        _ => {
            for c in 0..chunks {
                dst[c * chunk_len..(c + 1) * chunk_len]
                    .copy_from_slice(&src[c * stride..c * stride + chunk_len]);
            }
        }
    }
}

/// Scatters the contiguous tile `src` back out: run `c` (of `chunk_len`
/// complexes) lands at `dst[c·stride]` — the inverse of [`gather_chunks`].
///
/// # Panics
/// Panics if `chunk_len == 0`, `src.len()` is not a multiple of
/// `chunk_len`, or the last run overruns `dst`.
#[inline]
pub fn scatter_chunks(src: &[Complex32], dst: &mut [Complex32], chunk_len: usize, stride: usize) {
    let chunks = chunk_geometry(src.len(), dst.len(), chunk_len, stride);
    match active_isa() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as in gather_chunks.
        IsaLevel::Avx2Fma | IsaLevel::Sse2 => unsafe {
            x86::copy_chunks(dst.as_mut_ptr(), stride, src.as_ptr(), chunk_len, chunks, chunk_len)
        },
        _ => {
            for c in 0..chunks {
                dst[c * stride..c * stride + chunk_len]
                    .copy_from_slice(&src[c * chunk_len..(c + 1) * chunk_len]);
            }
        }
    }
}

/// [`gather_chunks`] with the twiddle multiply fused in: run `c` is
/// multiplied by `tw[c]` on the way through (`dst[c·chunk_len + i] =
/// src[c·stride + i] · tw[c]`).
///
/// At `chunk_len == 1 && stride == 1` this is a contiguous elementwise
/// multiply by a twiddle row — the shape of a contiguous (innermost-axis)
/// four-step block, where every element carries its own twiddle.
///
/// # Panics
/// Panics on the [`gather_chunks`] geometry violations or if
/// `tw.len() != dst.len()/chunk_len`.
#[inline]
pub fn gather_chunks_cmul(
    dst: &mut [Complex32],
    src: &[Complex32],
    tw: &[Complex32],
    chunk_len: usize,
    stride: usize,
) {
    let chunks = chunk_geometry(dst.len(), src.len(), chunk_len, stride);
    assert_eq!(tw.len(), chunks, "one twiddle per chunk");
    match active_isa() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: active_isa() only reports levels the host supports, and
        // the geometry was validated above.
        IsaLevel::Avx2Fma => unsafe {
            avx2::gather_cmul(dst, src, tw, chunk_len, stride);
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        IsaLevel::Sse2 => unsafe {
            sse2::gather_cmul(dst, src, tw, chunk_len, stride);
        },
        IsaLevel::StrictScalar => strict::gather_cmul(dst, src, tw, chunk_len, stride),
        _ => scalar::gather_cmul(dst, src, tw, chunk_len, stride),
    }
}

/// Scalar reference arm: plain `Complex32` operator arithmetic (the shape
/// of the scalar/SSE2 stage butterflies).
mod scalar {
    use super::Complex32;

    pub(super) fn gather_cmul(
        dst: &mut [Complex32],
        src: &[Complex32],
        tw: &[Complex32],
        chunk_len: usize,
        stride: usize,
    ) {
        for (c, &w) in tw.iter().enumerate() {
            for i in 0..chunk_len {
                dst[c * chunk_len + i] = src[c * stride + i] * w;
            }
        }
    }
}

/// Strict-scalar arm: per-element `black_box` loads defeat
/// auto-vectorization (the true-scalar ISA baseline); same arithmetic as
/// [`scalar`].
mod strict {
    use super::Complex32;
    use core::hint::black_box;

    pub(super) fn gather_cmul(
        dst: &mut [Complex32],
        src: &[Complex32],
        tw: &[Complex32],
        chunk_len: usize,
        stride: usize,
    ) {
        for (c, &w) in tw.iter().enumerate() {
            for i in 0..chunk_len {
                dst[c * chunk_len + i] = *black_box(&src[c * stride + i]) * w;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    #![allow(unsafe_op_in_unsafe_fn)]

    use super::{Complex32, PREFETCH_AHEAD};
    use core::arch::x86_64::*;

    /// Strided chunk copy with prefetch: chunk `c` moves `chunk_len`
    /// complexes from `src + c·src_stride` to `dst + c·dst_stride`. The
    /// strided side (whichever stride exceeds `chunk_len`) is the one
    /// that misses cache; the prefetch runs ahead on the source so the
    /// gather's far reads are in flight early (the scatter's strided
    /// writes are covered by the write-allocate machinery).
    ///
    /// # Safety
    /// Both spans must be valid for `(chunks−1)·stride + chunk_len`
    /// elements of their respective stride and must not overlap.
    pub(super) unsafe fn copy_chunks(
        dst: *mut Complex32,
        dst_stride: usize,
        src: *const Complex32,
        src_stride: usize,
        chunks: usize,
        chunk_len: usize,
    ) {
        for c in 0..chunks {
            if c + PREFETCH_AHEAD < chunks {
                _mm_prefetch::<_MM_HINT_T0>(src.add((c + PREFETCH_AHEAD) * src_stride) as _);
            }
            core::ptr::copy_nonoverlapping(
                src.add(c * src_stride),
                dst.add(c * dst_stride),
                chunk_len,
            );
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod sse2 {
    #![allow(unsafe_op_in_unsafe_fn)]

    use super::{Complex32, PREFETCH_AHEAD};
    use core::arch::x86_64::*;

    /// # Safety
    /// Geometry validated by the dispatcher; CPU must support SSE2.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn gather_cmul(
        dst: &mut [Complex32],
        src: &[Complex32],
        tw: &[Complex32],
        chunk_len: usize,
        stride: usize,
    ) {
        let chunks = tw.len();
        let pd = dst.as_mut_ptr() as *mut f32;
        let ps = src.as_ptr() as *const f32;
        let neg_re = _mm_castsi128_ps(_mm_set_epi32(0, i32::MIN, 0, i32::MIN));
        if chunk_len == 1 && stride == 1 {
            // Contiguous elementwise sweep, per-element twiddles: the
            // vector shape of `fft_rows::sse2::cmul2`.
            let pw = tw.as_ptr() as *const f32;
            let mut k = 0;
            while k + 2 <= chunks {
                let a = _mm_loadu_ps(ps.add(2 * k));
                let w = _mm_loadu_ps(pw.add(2 * k));
                let wr = _mm_shuffle_ps(w, w, 0b1010_0000);
                let wi = _mm_shuffle_ps(w, w, 0b1111_0101);
                let asw = _mm_shuffle_ps(a, a, 0b1011_0001);
                let t = _mm_add_ps(_mm_mul_ps(a, wr), _mm_xor_ps(_mm_mul_ps(asw, wi), neg_re));
                _mm_storeu_ps(pd.add(2 * k), t);
                k += 2;
            }
            while k < chunks {
                // Plain complex mul matches the vector lanes bitwise.
                dst[k] = src[k] * tw[k];
                k += 1;
            }
            return;
        }
        for (c, &w) in tw.iter().enumerate() {
            if c + PREFETCH_AHEAD < chunks {
                _mm_prefetch::<_MM_HINT_T0>(ps.add(2 * (c + PREFETCH_AHEAD) * stride) as _);
            }
            let wr = _mm_set1_ps(w.re);
            let wi = _mm_set1_ps(w.im);
            let so = 2 * c * stride;
            let do_ = 2 * c * chunk_len;
            let mut i = 0;
            while i + 2 <= chunk_len {
                let a = _mm_loadu_ps(ps.add(so + 2 * i));
                let asw = _mm_shuffle_ps(a, a, 0b1011_0001);
                let t = _mm_add_ps(_mm_mul_ps(a, wr), _mm_xor_ps(_mm_mul_ps(asw, wi), neg_re));
                _mm_storeu_ps(pd.add(do_ + 2 * i), t);
                i += 2;
            }
            while i < chunk_len {
                dst[c * chunk_len + i] = src[c * stride + i] * w;
                i += 1;
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    #![allow(unsafe_op_in_unsafe_fn)]

    use super::{Complex32, PREFETCH_AHEAD};
    use core::arch::x86_64::*;

    /// Scalar tail matching the vector `fmaddsub` complex multiply
    /// bit-for-bit (same shape as `fft_rows::avx2::cmul_one`).
    #[inline(always)]
    fn cmul_one(a: Complex32, w: Complex32) -> Complex32 {
        let tr = a.im * w.im;
        let ti = a.re * w.im;
        Complex32::new(a.re.mul_add(w.re, -tr), a.im.mul_add(w.re, ti))
    }

    /// # Safety
    /// Geometry validated by the dispatcher; CPU must support AVX2+FMA.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn gather_cmul(
        dst: &mut [Complex32],
        src: &[Complex32],
        tw: &[Complex32],
        chunk_len: usize,
        stride: usize,
    ) {
        let chunks = tw.len();
        let pd = dst.as_mut_ptr() as *mut f32;
        let ps = src.as_ptr() as *const f32;
        if chunk_len == 1 && stride == 1 {
            // Contiguous elementwise sweep, per-element twiddles: the
            // vector shape of `fft_rows::avx2::cmul4`.
            let pw = tw.as_ptr() as *const f32;
            let mut k = 0;
            while k + 4 <= chunks {
                let a = _mm256_loadu_ps(ps.add(2 * k));
                let w = _mm256_loadu_ps(pw.add(2 * k));
                let wr = _mm256_moveldup_ps(w);
                let wi = _mm256_movehdup_ps(w);
                let asw = _mm256_shuffle_ps(a, a, 0b1011_0001);
                let t = _mm256_fmaddsub_ps(a, wr, _mm256_mul_ps(asw, wi));
                _mm256_storeu_ps(pd.add(2 * k), t);
                k += 4;
            }
            while k < chunks {
                dst[k] = cmul_one(src[k], tw[k]);
                k += 1;
            }
            return;
        }
        for (c, &w) in tw.iter().enumerate() {
            if c + PREFETCH_AHEAD < chunks {
                _mm_prefetch::<_MM_HINT_T0>(ps.add(2 * (c + PREFETCH_AHEAD) * stride) as _);
            }
            let wr = _mm256_set1_ps(w.re);
            let wi = _mm256_set1_ps(w.im);
            let so = 2 * c * stride;
            let do_ = 2 * c * chunk_len;
            let mut i = 0;
            while i + 4 <= chunk_len {
                let a = _mm256_loadu_ps(ps.add(so + 2 * i));
                let asw = _mm256_shuffle_ps(a, a, 0b1011_0001);
                let t = _mm256_fmaddsub_ps(a, wr, _mm256_mul_ps(asw, wi));
                _mm256_storeu_ps(pd.add(do_ + 2 * i), t);
                i += 4;
            }
            while i < chunk_len {
                dst[c * chunk_len + i] = cmul_one(src[c * stride + i], w);
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::{detect_isa, set_isa_override, test_isa_guard};
    use nufft_math::Complex64;

    fn demo(n: usize, salt: u32) -> Vec<Complex32> {
        (0..n)
            .map(|i| {
                let x = (i as f32 + salt as f32 * 0.43) * 0.53;
                Complex32::new((1.1 * x).sin() - 0.3, (0.8 * x).cos() + 0.2)
            })
            .collect()
    }

    fn twiddles(n: usize) -> Vec<Complex32> {
        (0..n)
            .map(|k| {
                Complex64::cis(-core::f64::consts::TAU * k as f64 / (3 * n + 1) as f64).to_f32()
            })
            .collect()
    }

    fn for_each_isa(mut f: impl FnMut(IsaLevel)) {
        let _guard = test_isa_guard();
        let detected = detect_isa();
        for level in [IsaLevel::StrictScalar, IsaLevel::Scalar, IsaLevel::Sse2, IsaLevel::Avx2Fma] {
            if level <= detected {
                set_isa_override(level).unwrap();
                f(level);
            }
        }
        set_isa_override(detected).unwrap();
    }

    #[test]
    fn gather_scatter_round_trip_exactly() {
        for (chunks, chunk_len, stride) in
            [(7usize, 3usize, 5usize), (4, 4, 4), (9, 1, 1), (5, 2, 11), (1, 6, 6), (0, 2, 3)]
        {
            let span = if chunks == 0 { 0 } else { (chunks - 1) * stride + chunk_len };
            let src = demo(span, 1);
            for_each_isa(|level| {
                let mut tile = vec![Complex32::ZERO; chunks * chunk_len];
                gather_chunks(&mut tile, &src, chunk_len, stride);
                for c in 0..chunks {
                    for i in 0..chunk_len {
                        assert_eq!(
                            tile[c * chunk_len + i],
                            src[c * stride + i],
                            "{level:?} chunk {c} elem {i}"
                        );
                    }
                }
                let mut back = vec![Complex32::ZERO; span];
                scatter_chunks(&tile, &mut back, chunk_len, stride);
                for c in 0..chunks {
                    for i in 0..chunk_len {
                        assert_eq!(back[c * stride + i], src[c * stride + i]);
                    }
                }
            });
        }
    }

    /// The fused gather-multiply stays within f64-oracle tolerance at every
    /// level, and matches the level's own per-element reference arithmetic
    /// bitwise (plain mul below AVX2, `mul_add` contraction at AVX2) — the
    /// contract that lets the four-step hoist its twiddle pass in here.
    #[test]
    fn gather_cmul_matches_reference_shapes() {
        for (chunks, chunk_len, stride) in
            [(6usize, 4usize, 7usize), (8, 1, 1), (5, 3, 3), (4, 2, 9)]
        {
            let span = (chunks - 1) * stride + chunk_len;
            let src = demo(span, 2);
            let tw = twiddles(chunks);
            for_each_isa(|level| {
                let mut tile = vec![Complex32::ZERO; chunks * chunk_len];
                gather_chunks_cmul(&mut tile, &src, &tw, chunk_len, stride);
                for c in 0..chunks {
                    for i in 0..chunk_len {
                        let a = src[c * stride + i];
                        let w = tw[c];
                        let got = tile[c * chunk_len + i];
                        let oracle = (a.to_f64() * w.to_f64()).to_f32();
                        assert!(
                            (got.re - oracle.re).abs() < 1e-5 && (got.im - oracle.im).abs() < 1e-5,
                            "{level:?}: oracle drift at chunk {c} elem {i}"
                        );
                        let want = if level == IsaLevel::Avx2Fma {
                            let tr = a.im * w.im;
                            let ti = a.re * w.im;
                            Complex32::new(a.re.mul_add(w.re, -tr), a.im.mul_add(w.re, ti))
                        } else {
                            a * w
                        };
                        assert!(
                            got.re.to_bits() == want.re.to_bits()
                                && got.im.to_bits() == want.im.to_bits(),
                            "{level:?}: shape mismatch at chunk {c} elem {i}: {got:?} vs {want:?}"
                        );
                    }
                }
            });
        }
    }

    #[test]
    #[should_panic(expected = "one twiddle per chunk")]
    fn cmul_rejects_twiddle_count_mismatch() {
        let src = demo(8, 3);
        let mut dst = vec![Complex32::ZERO; 4];
        gather_chunks_cmul(&mut dst, &src, &twiddles(3), 2, 2);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn gather_rejects_overrun() {
        let src = demo(5, 4);
        let mut dst = vec![Complex32::ZERO; 6];
        gather_chunks(&mut dst, &src, 2, 3);
    }
}
