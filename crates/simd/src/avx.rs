//! AVX2+FMA implementations: 256-bit vectors, four interleaved complex `f32`
//! values per register, with fused multiply-add. This is the "wider SIMD on
//! future architectures" configuration the paper projects (§VII).

#![cfg(target_arch = "x86_64")]
#![allow(unsafe_op_in_unsafe_fn)]

use core::arch::x86_64::*;
use nufft_math::Complex32;

/// Expands four weights `[w0,w1,w2,w3]` to `[w0,w0,w1,w1,w2,w2,w3,w3]`.
#[inline(always)]
unsafe fn dup_weights4(wp: *const f32) -> __m256 {
    let w4 = _mm_loadu_ps(wp);
    let both = _mm256_insertf128_ps(_mm256_castps128_ps256(w4), w4, 1);
    let idx = _mm256_setr_epi32(0, 0, 1, 1, 2, 2, 3, 3);
    _mm256_permutevar8x32_ps(both, idx)
}

/// Broadcasts a complex value to `[re,im,re,im,re,im,re,im]`.
#[inline(always)]
unsafe fn broadcast_c32(val: Complex32) -> __m256 {
    _mm256_setr_ps(val.re, val.im, val.re, val.im, val.re, val.im, val.re, val.im)
}

/// `dst[i] += val * w[i]`, 4 complex values per iteration with FMA.
///
/// # Safety
/// The CPU must support AVX2 and FMA (checked by the dispatcher).
#[target_feature(enable = "avx2,fma")]
pub unsafe fn scatter_row(dst: &mut [Complex32], w: &[f32], val: Complex32) {
    debug_assert_eq!(dst.len(), w.len());
    let n = dst.len();
    let dp = dst.as_mut_ptr() as *mut f32;
    let wp = w.as_ptr();
    let vv = broadcast_c32(val);
    let mut i = 0;
    while i + 4 <= n {
        let ww = dup_weights4(wp.add(i));
        let d = _mm256_loadu_ps(dp.add(2 * i));
        _mm256_storeu_ps(dp.add(2 * i), _mm256_fmadd_ps(ww, vv, d));
        i += 4;
    }
    while i < n {
        let wi = *wp.add(i);
        dst.get_unchecked_mut(i).re += val.re * wi;
        dst.get_unchecked_mut(i).im += val.im * wi;
        i += 1;
    }
}

/// Two-row scatter sharing one weight row (small-`W` SIMD-across-`y`,
/// §III-C). Processes both rows in one pass so short rows still keep the
/// vector units busy.
///
/// # Safety
/// The CPU must support AVX2 and FMA.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn scatter_row2(
    dst0: &mut [Complex32],
    val0: Complex32,
    dst1: &mut [Complex32],
    val1: Complex32,
    w: &[f32],
) {
    debug_assert_eq!(dst0.len(), w.len());
    debug_assert_eq!(dst1.len(), w.len());
    let n = w.len();
    let d0 = dst0.as_mut_ptr() as *mut f32;
    let d1 = dst1.as_mut_ptr() as *mut f32;
    let wp = w.as_ptr();
    let v0 = broadcast_c32(val0);
    let v1 = broadcast_c32(val1);
    let mut i = 0;
    while i + 4 <= n {
        let ww = dup_weights4(wp.add(i));
        let a = _mm256_loadu_ps(d0.add(2 * i));
        let b = _mm256_loadu_ps(d1.add(2 * i));
        _mm256_storeu_ps(d0.add(2 * i), _mm256_fmadd_ps(ww, v0, a));
        _mm256_storeu_ps(d1.add(2 * i), _mm256_fmadd_ps(ww, v1, b));
        i += 4;
    }
    while i < n {
        let wi = *wp.add(i);
        dst0.get_unchecked_mut(i).re += val0.re * wi;
        dst0.get_unchecked_mut(i).im += val0.im * wi;
        dst1.get_unchecked_mut(i).re += val1.re * wi;
        dst1.get_unchecked_mut(i).im += val1.im * wi;
        i += 1;
    }
}

/// `Σ_i src[i] * w[i]`, 4 complex values per iteration with FMA.
///
/// # Safety
/// The CPU must support AVX2 and FMA.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn gather_row(src: &[Complex32], w: &[f32]) -> Complex32 {
    debug_assert_eq!(src.len(), w.len());
    let n = src.len();
    let sp = src.as_ptr() as *const f32;
    let wp = w.as_ptr();
    let mut acc = _mm256_setzero_ps();
    let mut i = 0;
    while i + 4 <= n {
        let ww = dup_weights4(wp.add(i));
        let s = _mm256_loadu_ps(sp.add(2 * i));
        acc = _mm256_fmadd_ps(ww, s, acc);
        i += 4;
    }
    // Fold four complex lanes down to one.
    let lo = _mm256_castps256_ps128(acc);
    let hi = _mm256_extractf128_ps(acc, 1);
    let s4 = _mm_add_ps(lo, hi); // [r0+r2, i0+i2, r1+r3, i1+i3]
    let s2 = _mm_add_ps(s4, _mm_movehl_ps(s4, s4));
    let mut out = Complex32::new(_mm_cvtss_f32(s2), {
        let im = _mm_shuffle_ps(s2, s2, 0b01);
        _mm_cvtss_f32(im)
    });
    while i < n {
        let wi = *wp.add(i);
        let s = *src.get_unchecked(i);
        out.re += s.re * wi;
        out.im += s.im * wi;
        i += 1;
    }
    out
}

/// Two-row gather with a shared weight row: one weight expansion feeds two
/// independent accumulators (one per channel grid), amortizing the
/// `dup_weights4` shuffle and filling both FMA ports on short rows.
///
/// Each accumulator sees exactly the sequence of operations [`gather_row`]
/// would perform on its row alone — same vector adds, same fold, same
/// scalar tail — so the result is bitwise-equal per row to two independent
/// [`gather_row`] calls.
///
/// # Safety
/// The CPU must support AVX2 and FMA.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn gather_row2(
    src0: &[Complex32],
    src1: &[Complex32],
    w: &[f32],
) -> (Complex32, Complex32) {
    debug_assert_eq!(src0.len(), w.len());
    debug_assert_eq!(src1.len(), w.len());
    let n = w.len();
    let p0 = src0.as_ptr() as *const f32;
    let p1 = src1.as_ptr() as *const f32;
    let wp = w.as_ptr();
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    let mut i = 0;
    while i + 4 <= n {
        let ww = dup_weights4(wp.add(i));
        let s0 = _mm256_loadu_ps(p0.add(2 * i));
        let s1 = _mm256_loadu_ps(p1.add(2 * i));
        acc0 = _mm256_fmadd_ps(ww, s0, acc0);
        acc1 = _mm256_fmadd_ps(ww, s1, acc1);
        i += 4;
    }
    // Fold each accumulator exactly as gather_row does.
    #[inline(always)]
    unsafe fn fold(acc: __m256) -> Complex32 {
        let lo = _mm256_castps256_ps128(acc);
        let hi = _mm256_extractf128_ps(acc, 1);
        let s4 = _mm_add_ps(lo, hi);
        let s2 = _mm_add_ps(s4, _mm_movehl_ps(s4, s4));
        Complex32::new(_mm_cvtss_f32(s2), {
            let im = _mm_shuffle_ps(s2, s2, 0b01);
            _mm_cvtss_f32(im)
        })
    }
    let mut out0 = fold(acc0);
    let mut out1 = fold(acc1);
    while i < n {
        let wi = *wp.add(i);
        let a = *src0.get_unchecked(i);
        let b = *src1.get_unchecked(i);
        out0.re += a.re * wi;
        out0.im += a.im * wi;
        out1.re += b.re * wi;
        out1.im += b.im * wi;
        i += 1;
    }
    (out0, out1)
}

/// `dst[i] += src[i]` over complex buffers, 8 floats per iteration.
///
/// # Safety
/// The CPU must support AVX2.
#[target_feature(enable = "avx2")]
pub unsafe fn accumulate(dst: &mut [Complex32], src: &[Complex32]) {
    debug_assert_eq!(dst.len(), src.len());
    let n2 = dst.len() * 2;
    let dp = dst.as_mut_ptr() as *mut f32;
    let sp = src.as_ptr() as *const f32;
    let mut i = 0;
    while i + 8 <= n2 {
        let d = _mm256_loadu_ps(dp.add(i));
        let s = _mm256_loadu_ps(sp.add(i));
        _mm256_storeu_ps(dp.add(i), _mm256_add_ps(d, s));
        i += 8;
    }
    while i < n2 {
        *dp.add(i) += *sp.add(i);
        i += 1;
    }
}

/// `buf[i] *= s[i]` — pointwise real scaling of a complex buffer.
///
/// # Safety
/// The CPU must support AVX2.
#[target_feature(enable = "avx2")]
pub unsafe fn scale_by_real(buf: &mut [Complex32], s: &[f32]) {
    debug_assert_eq!(buf.len(), s.len());
    let n = buf.len();
    let bp = buf.as_mut_ptr() as *mut f32;
    let sp = s.as_ptr();
    let mut i = 0;
    while i + 4 <= n {
        let sv = dup_weights4(sp.add(i));
        let b = _mm256_loadu_ps(bp.add(2 * i));
        _mm256_storeu_ps(bp.add(2 * i), _mm256_mul_ps(b, sv));
        i += 4;
    }
    while i < n {
        let si = *sp.add(i);
        buf.get_unchecked_mut(i).re *= si;
        buf.get_unchecked_mut(i).im *= si;
        i += 1;
    }
}
