//! Piecewise-polynomial Horner evaluation for interpolation kernels.
//!
//! The FINUFFT-style fast-eval path replaces the kernel LUT with one fitted
//! polynomial per integer tap offset: a window's taps all share the same
//! fractional coordinate, so evaluating the window means evaluating every
//! piece at one common argument `z ∈ [-1, 1]`. That is a textbook
//! lane-parallel Horner sweep — tap `i` runs its own independent
//! multiply-add chain, and a 256-bit vector advances eight taps one
//! coefficient row per FMA.
//!
//! ## Coefficient layout
//!
//! `coeffs` is **coefficient-major**: row `r` (length `stride`, `stride ≥`
//! the tap count, tail zero-padded) holds every piece's coefficient of
//! `z^(rows−1−r)`, so the evaluation loop streams rows sequentially:
//!
//! ```text
//! acc_i = coeffs[i]                       // row 0: leading coefficients
//! for r in 1..rows: acc_i = fma(acc_i, z, coeffs[r·stride + i])
//! ```
//!
//! ## Bitwise identity across ISA levels
//!
//! Pieces never interact, so lane parallelism reassociates nothing; the one
//! remaining freedom is whether the multiply-add is fused. Every level
//! therefore uses **correctly rounded fused** semantics: the scalar
//! reference (serving [`IsaLevel::StrictScalar`], [`IsaLevel::Scalar`] and
//! [`IsaLevel::Sse2`] — SSE2 has no FMA instruction, and an unfused
//! `mulps`/`addps` sweep would round differently) goes through
//! [`f32::mul_add`], and the AVX2 path through `_mm256_fmadd_ps`; both are
//! correctly rounded, so every level produces identical bits. The same
//! contract the row-convolution kernels pin by property test, this module
//! pins by construction.

use crate::dispatch::{active_isa, IsaLevel};

/// Evaluates `out[i] = Σ_r coeffs[r·stride + i] · z^(rows−1−r)` for every
/// piece `i < out.len()`, Horner-style, dispatched to the active ISA level.
///
/// `rows` is the coefficient count per piece (degree + 1); `coeffs` must
/// hold `rows · stride` values with `stride ≥ out.len()`.
///
/// # Panics
/// Panics (in debug) if the layout invariants are violated; release builds
/// panic on the out-of-bounds access itself.
#[inline]
pub fn horner_row(coeffs: &[f32], stride: usize, rows: usize, z: f32, out: &mut [f32]) {
    debug_assert!(rows >= 1, "a polynomial needs at least one coefficient");
    debug_assert!(stride >= out.len(), "stride {} < pieces {}", stride, out.len());
    debug_assert!(coeffs.len() >= rows * stride, "coefficient table too short");
    match active_isa() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: dispatch guarantees AVX2+FMA are available at this level.
        IsaLevel::Avx2Fma => unsafe { horner_row_avx2(coeffs, stride, rows, z, out) },
        IsaLevel::StrictScalar => horner_row_strict(coeffs, stride, rows, z, out),
        _ => horner_row_scalar(coeffs, stride, rows, z, out),
    }
}

/// Scalar reference: one correctly rounded `mul_add` chain per piece. Also
/// the SSE2 arm — fusing is what keeps the levels bitwise-identical, and
/// 128-bit SSE2 has no fused multiply-add to vectorize with.
pub(crate) fn horner_row_scalar(
    coeffs: &[f32],
    stride: usize,
    rows: usize,
    z: f32,
    out: &mut [f32],
) {
    for (i, o) in out.iter_mut().enumerate() {
        let mut acc = coeffs[i];
        for r in 1..rows {
            acc = acc.mul_add(z, coeffs[r * stride + i]);
        }
        *o = acc;
    }
}

/// Strict-scalar arm: identical arithmetic with auto-vectorization defeated
/// per element, so the SIMD-speedup experiments measure a genuinely scalar
/// baseline.
fn horner_row_strict(coeffs: &[f32], stride: usize, rows: usize, z: f32, out: &mut [f32]) {
    for (i, o) in out.iter_mut().enumerate() {
        let mut acc = core::hint::black_box(coeffs[i]);
        for r in 1..rows {
            acc = core::hint::black_box(acc.mul_add(z, coeffs[r * stride + i]));
        }
        *o = acc;
    }
}

/// AVX2+FMA arm: eight pieces per `vfmadd231ps`, scalar `mul_add` tail for
/// the ragged end (same correctly rounded operation, so the split point is
/// invisible in the bits).
///
/// # Safety
/// Caller must ensure the CPU supports AVX2 and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn horner_row_avx2(coeffs: &[f32], stride: usize, rows: usize, z: f32, out: &mut [f32]) {
    #![allow(unsafe_op_in_unsafe_fn)]
    use core::arch::x86_64::*;
    let n = out.len();
    let zv = _mm256_set1_ps(z);
    let mut i = 0usize;
    while i + 8 <= n {
        let mut acc = _mm256_loadu_ps(coeffs.as_ptr().add(i));
        for r in 1..rows {
            let c = _mm256_loadu_ps(coeffs.as_ptr().add(r * stride + i));
            acc = _mm256_fmadd_ps(acc, zv, c);
        }
        _mm256_storeu_ps(out.as_mut_ptr().add(i), acc);
        i += 8;
    }
    if i < n {
        horner_row_scalar(&coeffs[i..], stride, rows, z, &mut out[i..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::{detect_isa, set_isa_override, test_isa_guard};

    /// Deterministic pseudo-random coefficient table.
    fn table(rows: usize, stride: usize, seed: f32) -> Vec<f32> {
        (0..rows * stride).map(|k| (k as f32 * 0.7391 + seed).sin() * 1.3).collect()
    }

    fn for_each_isa(mut f: impl FnMut(IsaLevel)) {
        let _guard = test_isa_guard();
        let detected = detect_isa();
        for level in [IsaLevel::StrictScalar, IsaLevel::Scalar, IsaLevel::Sse2, IsaLevel::Avx2Fma] {
            if level <= detected {
                set_isa_override(level).unwrap();
                f(level);
            }
        }
        set_isa_override(detected).unwrap();
    }

    /// `f64` oracle: plain Horner per piece, rounded once at the end. The
    /// fused `f32` chain differs from it by at most a few ulps per row.
    fn oracle(coeffs: &[f32], stride: usize, rows: usize, z: f32, out: &mut [f32]) {
        for (i, o) in out.iter_mut().enumerate() {
            let mut acc = coeffs[i] as f64;
            for r in 1..rows {
                acc = acc * z as f64 + coeffs[r * stride + i] as f64;
            }
            *o = acc as f32;
        }
    }

    #[test]
    fn all_isa_levels_match_strict_bitwise() {
        // Sweep ragged lengths across the 8-lane boundary, several degrees
        // and arguments — every level must reproduce StrictScalar exactly.
        for (rows, stride, n) in [(2, 8, 3), (8, 8, 8), (11, 8, 7), (12, 16, 13), (14, 24, 17)] {
            let coeffs = table(rows, stride, rows as f32);
            for step in 0..9 {
                let z = -1.0 + step as f32 * 0.25;
                let mut want = vec![0.0f32; n];
                horner_row_strict(&coeffs, stride, rows, z, &mut want);
                for_each_isa(|level| {
                    let mut got = vec![f32::NAN; n];
                    horner_row(&coeffs, stride, rows, z, &mut got);
                    for i in 0..n {
                        assert_eq!(
                            got[i].to_bits(),
                            want[i].to_bits(),
                            "{level:?} rows={rows} n={n} z={z} piece {i}: {} vs {}",
                            got[i],
                            want[i]
                        );
                    }
                });
            }
        }
    }

    #[test]
    fn matches_f64_oracle_closely() {
        let (rows, stride, n) = (10, 16, 11);
        let coeffs = table(rows, stride, 0.5);
        for step in 0..41 {
            let z = -1.0 + step as f32 * 0.05;
            let mut got = vec![0.0f32; n];
            let mut want = vec![0.0f32; n];
            horner_row_scalar(&coeffs, stride, rows, z, &mut got);
            oracle(&coeffs, stride, rows, z, &mut want);
            for i in 0..n {
                let err = (got[i] - want[i]).abs();
                assert!(err <= 1e-5 * want[i].abs().max(1.0), "piece {i} z={z}: {err}");
            }
        }
    }

    #[test]
    fn degree_zero_is_a_table_copy() {
        let coeffs: Vec<f32> = (0..8).map(|k| k as f32 * 0.25).collect();
        let mut out = vec![0.0f32; 5];
        horner_row_scalar(&coeffs, 8, 1, 0.7, &mut out);
        assert_eq!(&out[..], &coeffs[..5]);
    }
}
