//! Portable scalar reference implementations of every kernel.
//!
//! These define the semantics the vector paths must match (up to FP
//! reassociation/FMA rounding). They are also the fallback on non-x86 hosts
//! and the "scalar" arm of the Figure 13 SIMD-speedup experiment.

use nufft_math::{Complex32, Complex64};

/// `dst[i] += val * w[i]` — the adjoint-convolution inner row (Fig. 2, 2b).
#[inline]
pub fn scatter_row(dst: &mut [Complex32], w: &[f32], val: Complex32) {
    debug_assert_eq!(dst.len(), w.len());
    for (d, &wi) in dst.iter_mut().zip(w) {
        d.re += val.re * wi;
        d.im += val.im * wi;
    }
}

/// Two-row scatter: `dst0[i] += val0*w[i]`, `dst1[i] += val1*w[i]`.
///
/// The paper's small-`W` trick (§III-C): when the innermost row is too short
/// to fill a vector, SIMD is applied across two `y` iterations. The scalar
/// form simply performs both rows.
#[inline]
pub fn scatter_row2(
    dst0: &mut [Complex32],
    val0: Complex32,
    dst1: &mut [Complex32],
    val1: Complex32,
    w: &[f32],
) {
    scatter_row(dst0, w, val0);
    scatter_row(dst1, w, val1);
}

/// `Σ_i src[i] * w[i]` — the forward-convolution inner row (Fig. 2, 2a).
#[inline]
pub fn gather_row(src: &[Complex32], w: &[f32]) -> Complex32 {
    debug_assert_eq!(src.len(), w.len());
    let mut acc = Complex32::ZERO;
    for (s, &wi) in src.iter().zip(w) {
        acc.re += s.re * wi;
        acc.im += s.im * wi;
    }
    acc
}

/// Two-row gather sharing one weight row: gathers the same window from two
/// channel grids at once (the multi-channel analogue of [`scatter_row2`]).
/// The scalar form simply performs both rows, so every vector path that
/// interleaves the two accumulators must stay bitwise-equal per row to two
/// independent [`gather_row`] calls.
#[inline]
pub fn gather_row2(src0: &[Complex32], src1: &[Complex32], w: &[f32]) -> (Complex32, Complex32) {
    (gather_row(src0, w), gather_row(src1, w))
}

/// `dst[i] += src[i]` — privatized-buffer reduction (§III-B4).
#[inline]
pub fn accumulate(dst: &mut [Complex32], src: &[Complex32]) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

/// `buf[i] *= s[i]` — pointwise real scaling (roll-off correction).
#[inline]
pub fn scale_by_real(buf: &mut [Complex32], s: &[f32]) {
    debug_assert_eq!(buf.len(), s.len());
    for (b, &si) in buf.iter_mut().zip(s) {
        b.re *= si;
        b.im *= si;
    }
}

/// Strict-scalar variant of [`scatter_row`]: the per-element `black_box`
/// forces element-at-a-time memory traffic, defeating LLVM's SLP/loop
/// auto-vectorization. This reproduces the paper's true-scalar baseline
/// for Figure 13; never use it outside speedup experiments.
#[inline]
pub fn scatter_row_strict(dst: &mut [Complex32], w: &[f32], val: Complex32) {
    debug_assert_eq!(dst.len(), w.len());
    for (d, &wi) in dst.iter_mut().zip(w) {
        let e = core::hint::black_box(d);
        e.re += val.re * wi;
        e.im += val.im * wi;
    }
}

/// Strict-scalar variant of [`gather_row`] (see [`scatter_row_strict`]).
#[inline]
pub fn gather_row_strict(src: &[Complex32], w: &[f32]) -> Complex32 {
    debug_assert_eq!(src.len(), w.len());
    let mut acc = Complex32::ZERO;
    for (s, &wi) in src.iter().zip(w) {
        let e = core::hint::black_box(s);
        acc.re += e.re * wi;
        acc.im += e.im * wi;
    }
    acc
}

/// Strict-scalar variant of [`accumulate`].
#[inline]
pub fn accumulate_strict(dst: &mut [Complex32], src: &[Complex32]) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, &s) in dst.iter_mut().zip(src) {
        let e = core::hint::black_box(d);
        *e += s;
    }
}

/// Strict-scalar variant of [`scale_by_real`].
#[inline]
pub fn scale_by_real_strict(buf: &mut [Complex32], s: &[f32]) {
    debug_assert_eq!(buf.len(), s.len());
    for (b, &si) in buf.iter_mut().zip(s) {
        let e = core::hint::black_box(b);
        e.re *= si;
        e.im *= si;
    }
}

/// Conjugated dot product `Σ_i conj(a[i])·b[i]`, accumulated in `f64`.
///
/// Used by the CG solver in `nufft-mri`; f64 accumulation keeps the
/// iteration count independent of signal length.
#[inline]
pub fn dotc(a: &[Complex32], b: &[Complex32]) -> Complex64 {
    debug_assert_eq!(a.len(), b.len());
    let mut re = 0.0f64;
    let mut im = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        let (xr, xi) = (x.re as f64, x.im as f64);
        let (yr, yi) = (y.re as f64, y.im as f64);
        re += xr * yr + xi * yi;
        im += xr * yi - xi * yr;
    }
    Complex64::new(re, im)
}

/// `Σ_i |a[i]|²` accumulated in `f64`.
#[inline]
pub fn sum_norm_sqr(a: &[Complex32]) -> f64 {
    let mut acc = 0.0f64;
    for &x in a {
        acc += (x.re as f64) * (x.re as f64) + (x.im as f64) * (x.im as f64);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_row_accumulates() {
        let mut dst = vec![Complex32::new(1.0, 1.0); 3];
        scatter_row(&mut dst, &[1.0, 2.0, 0.5], Complex32::new(2.0, -2.0));
        assert_eq!(dst[0], Complex32::new(3.0, -1.0));
        assert_eq!(dst[1], Complex32::new(5.0, -3.0));
        assert_eq!(dst[2], Complex32::new(2.0, 0.0));
    }

    #[test]
    fn gather_row_weighted_sum() {
        let src = [Complex32::new(1.0, 0.0), Complex32::new(0.0, 1.0)];
        let out = gather_row(&src, &[3.0, 5.0]);
        assert_eq!(out, Complex32::new(3.0, 5.0));
    }

    #[test]
    fn gather_is_adjoint_of_scatter_on_basis() {
        // scatter then read back equals weight: e_i -> w_i relationship.
        let w = [0.25f32, 0.5, 0.75, 1.0];
        let mut grid = vec![Complex32::ZERO; 4];
        scatter_row(&mut grid, &w, Complex32::ONE);
        let g = gather_row(&grid, &w);
        let want: f32 = w.iter().map(|x| x * x).sum();
        assert!((g.re - want).abs() < 1e-6 && g.im == 0.0);
    }

    #[test]
    fn dotc_conjugates_first_argument() {
        let a = [Complex32::new(0.0, 1.0)];
        let b = [Complex32::new(0.0, 1.0)];
        // conj(i)·i = -i·i = 1.
        assert_eq!(dotc(&a, &b), Complex64::new(1.0, 0.0));
    }

    #[test]
    fn sum_norm_sqr_matches_dotc_self() {
        let a = [Complex32::new(3.0, 4.0), Complex32::new(-1.0, 2.0)];
        assert_eq!(sum_norm_sqr(&a), dotc(&a, &a).re);
        assert_eq!(dotc(&a, &a).im, 0.0);
    }

    #[test]
    fn scale_by_real_pointwise() {
        let mut buf = vec![Complex32::new(2.0, -4.0); 2];
        scale_by_real(&mut buf, &[0.5, 2.0]);
        assert_eq!(buf[0], Complex32::new(1.0, -2.0));
        assert_eq!(buf[1], Complex32::new(4.0, -8.0));
    }
}
