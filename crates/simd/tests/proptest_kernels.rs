//! Property tests: every dispatched kernel agrees with the scalar reference
//! on random inputs at every ISA level the host supports, within FP
//! reassociation tolerance. Runs on the `nufft-testkit` harness; a failure
//! prints a `NUFFT_PROP_SEED=...` replay seed.

use nufft_math::Complex32;
use nufft_simd::{
    accumulate, detect_isa, gather_row, scale_by_real, scatter_row, set_isa_override, IsaLevel,
};
use nufft_testkit::prop_check;
use std::sync::Mutex;

/// Serializes the process-global ISA override across test threads.
static ISA_LOCK: Mutex<()> = Mutex::new(());

fn scalar_scatter(dst: &mut [Complex32], w: &[f32], val: Complex32) {
    for (d, &wi) in dst.iter_mut().zip(w) {
        d.re += val.re * wi;
        d.im += val.im * wi;
    }
}

fn scalar_gather(src: &[Complex32], w: &[f32]) -> Complex32 {
    let mut acc = Complex32::ZERO;
    for (s, &wi) in src.iter().zip(w) {
        acc.re += s.re * wi;
        acc.im += s.im * wi;
    }
    acc
}

fn supported_levels() -> Vec<IsaLevel> {
    let detected = detect_isa();
    [IsaLevel::Scalar, IsaLevel::Sse2, IsaLevel::Avx2Fma]
        .into_iter()
        .filter(|&l| l <= detected)
        .collect()
}

#[test]
fn scatter_matches_reference() {
    prop_check("scatter_matches_reference", 0x51D_0001, 64, |rng| {
        let len = rng.gen_usize(0..24);
        let grid0 = rng.gen_c32_vec(len, 1.0);
        let w = rng.gen_f32_vec(len, -1.0..1.0);
        let val = rng.gen_c32(1.0);

        let mut want = grid0.clone();
        scalar_scatter(&mut want, &w, val);

        let _guard = ISA_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        for level in supported_levels() {
            set_isa_override(level).unwrap();
            let mut got = grid0.clone();
            scatter_row(&mut got, &w, val);
            for (a, b) in got.iter().zip(&want) {
                assert!(
                    (a.re - b.re).abs() <= 1e-5 && (a.im - b.im).abs() <= 1e-5,
                    "level {level:?}: {a:?} vs {b:?}"
                );
            }
        }
        set_isa_override(detect_isa()).unwrap();
    });
}

#[test]
fn gather_matches_reference() {
    prop_check("gather_matches_reference", 0x51D_0002, 64, |rng| {
        let grid = rng.gen_c32_vec(19, 100.0);
        let w = rng.gen_f32_vec(19, -2.0..2.0);
        let want = scalar_gather(&grid, &w);
        let _guard = ISA_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        for level in supported_levels() {
            set_isa_override(level).unwrap();
            let got = gather_row(&grid, &w);
            // Reassociation across ≤19 terms of magnitude ≤200.
            assert!(
                (got.re - want.re).abs() <= 2e-3 && (got.im - want.im).abs() <= 2e-3,
                "level {level:?}: {got:?} vs {want:?}"
            );
        }
        set_isa_override(detect_isa()).unwrap();
    });
}

#[test]
fn accumulate_matches_reference() {
    prop_check("accumulate_matches_reference", 0x51D_0003, 64, |rng| {
        let a = rng.gen_c32_vec(33, 100.0);
        let b = rng.gen_c32_vec(33, 100.0);
        let want: Vec<Complex32> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let _guard = ISA_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        for level in supported_levels() {
            set_isa_override(level).unwrap();
            let mut got = a.clone();
            accumulate(&mut got, &b);
            assert_eq!(&got, &want, "level {level:?}");
        }
        set_isa_override(detect_isa()).unwrap();
    });
}

#[test]
fn scale_matches_reference() {
    prop_check("scale_matches_reference", 0x51D_0004, 64, |rng| {
        let buf = rng.gen_c32_vec(21, 100.0);
        let s = rng.gen_f32_vec(21, -2.0..2.0);
        let want: Vec<Complex32> =
            buf.iter().zip(&s).map(|(&z, &si)| Complex32::new(z.re * si, z.im * si)).collect();
        let _guard = ISA_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        for level in supported_levels() {
            set_isa_override(level).unwrap();
            let mut got = buf.clone();
            scale_by_real(&mut got, &s);
            assert_eq!(&got, &want, "level {level:?}");
        }
        set_isa_override(detect_isa()).unwrap();
    });
}

/// FFT stage butterflies: at every ISA level the radix-2 row kernel matches
/// an f64 oracle, and the broadcast-twiddle column kernel is bit-identical
/// to the row kernel applied lane by lane (the batched-FFT contract).
#[test]
fn fft_butterflies_match_reference_and_cols_match_rows() {
    use nufft_simd::fft_rows::{bfly2_cols, bfly2_rows, bfly4_cols, bfly4_rows};
    prop_check("fft_butterflies_match_reference", 0x51D_0006, 48, |rng| {
        let m = rng.gen_usize(1..12);
        let b = rng.gen_usize(1..6);
        let tw: Vec<Complex32> = (0..m).map(|_| rng.gen_c32(1.0)).collect();
        let d0 = rng.gen_c32_vec(m, 10.0);
        let d1 = rng.gen_c32_vec(m, 10.0);
        let cols: Vec<Vec<Complex32>> = (0..4).map(|_| rng.gen_c32_vec(m * b, 10.0)).collect();
        let forward = rng.gen_bool();
        let _guard = ISA_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut levels = supported_levels();
        levels.insert(0, IsaLevel::StrictScalar);
        for level in levels {
            set_isa_override(level).unwrap();
            // Radix-2 rows vs f64 oracle.
            let (mut g0, mut g1) = (d0.clone(), d1.clone());
            bfly2_rows(&mut g0, &mut g1, &tw);
            for k in 0..m {
                let t = d1[k].to_f64() * tw[k].to_f64();
                let x = (d0[k].to_f64() + t).to_f32();
                let y = (d0[k].to_f64() - t).to_f32();
                assert!(
                    (g0[k].re - x.re).abs() <= 1e-4
                        && (g0[k].im - x.im).abs() <= 1e-4
                        && (g1[k].re - y.re).abs() <= 1e-4
                        && (g1[k].im - y.im).abs() <= 1e-4,
                    "level {level:?} k={k}"
                );
            }
            // Radix-2 and radix-4 cols vs lane-by-lane rows, bitwise.
            let tw2: Vec<Complex32> = tw.iter().map(|w| *w * *w).collect();
            let tw3: Vec<Complex32> = tw.iter().zip(&tw2).map(|(a, b)| *a * *b).collect();
            let mut c = cols.clone();
            {
                let [c0, c1, c2, c3] = &mut c[..] else { unreachable!() };
                bfly2_cols(c0, c1, &tw, b);
                bfly4_cols(c0, c1, c2, c3, &tw, &tw2, &tw3, b, forward);
            }
            let mut r = cols.clone();
            for lane in 0..b {
                let mut lanes: Vec<Vec<Complex32>> =
                    r.iter().map(|blk| (0..m).map(|k| blk[k * b + lane]).collect()).collect();
                {
                    let [l0, l1, l2, l3] = &mut lanes[..] else { unreachable!() };
                    bfly2_rows(l0, l1, &tw);
                    bfly4_rows(l0, l1, l2, l3, &tw, &tw2, &tw3, forward);
                }
                for (blk, lv) in r.iter_mut().zip(&lanes) {
                    for k in 0..m {
                        blk[k * b + lane] = lv[k];
                    }
                }
            }
            for (q, (cq, rq)) in c.iter().zip(&r).enumerate() {
                for (i, (x, y)) in cq.iter().zip(rq).enumerate() {
                    assert!(
                        x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
                        "level {level:?} cols/rows mismatch q={q} i={i}: {x:?} vs {y:?}"
                    );
                }
            }
        }
        set_isa_override(detect_isa()).unwrap();
    });
}

#[test]
fn scatter_then_negate_round_trips() {
    prop_check("scatter_then_negate_round_trips", 0x51D_0005, 64, |rng| {
        // scatter(val) then scatter(-val) must restore the grid up to f32
        // round-off: x + p - p == x is NOT guaranteed elementwise.
        let grid = rng.gen_c32_vec(12, 100.0);
        let w = rng.gen_f32_vec(12, -2.0..2.0);
        let val = rng.gen_c32(5.0);
        let mut g = grid.clone();
        scatter_row(&mut g, &w, val);
        scatter_row(&mut g, &w, -val);
        for (a, b) in g.iter().zip(&grid) {
            assert!((a.re - b.re).abs() <= 1e-4 && (a.im - b.im).abs() <= 1e-4);
        }
    });
}
