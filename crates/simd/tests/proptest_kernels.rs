//! Property tests: every dispatched kernel agrees with the scalar reference
//! on random inputs at every ISA level the host supports, within FP
//! reassociation tolerance. Runs on the `nufft-testkit` harness; a failure
//! prints a `NUFFT_PROP_SEED=...` replay seed.

use nufft_math::Complex32;
use nufft_simd::{
    accumulate, detect_isa, gather_row, scale_by_real, scatter_row, set_isa_override, IsaLevel,
};
use nufft_testkit::prop_check;
use std::sync::Mutex;

/// Serializes the process-global ISA override across test threads.
static ISA_LOCK: Mutex<()> = Mutex::new(());

fn scalar_scatter(dst: &mut [Complex32], w: &[f32], val: Complex32) {
    for (d, &wi) in dst.iter_mut().zip(w) {
        d.re += val.re * wi;
        d.im += val.im * wi;
    }
}

fn scalar_gather(src: &[Complex32], w: &[f32]) -> Complex32 {
    let mut acc = Complex32::ZERO;
    for (s, &wi) in src.iter().zip(w) {
        acc.re += s.re * wi;
        acc.im += s.im * wi;
    }
    acc
}

fn supported_levels() -> Vec<IsaLevel> {
    let detected = detect_isa();
    [IsaLevel::Scalar, IsaLevel::Sse2, IsaLevel::Avx2Fma]
        .into_iter()
        .filter(|&l| l <= detected)
        .collect()
}

#[test]
fn scatter_matches_reference() {
    prop_check("scatter_matches_reference", 0x51D_0001, 64, |rng| {
        let len = rng.gen_usize(0..24);
        let grid0 = rng.gen_c32_vec(len, 1.0);
        let w = rng.gen_f32_vec(len, -1.0..1.0);
        let val = rng.gen_c32(1.0);

        let mut want = grid0.clone();
        scalar_scatter(&mut want, &w, val);

        let _guard = ISA_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        for level in supported_levels() {
            set_isa_override(level).unwrap();
            let mut got = grid0.clone();
            scatter_row(&mut got, &w, val);
            for (a, b) in got.iter().zip(&want) {
                assert!(
                    (a.re - b.re).abs() <= 1e-5 && (a.im - b.im).abs() <= 1e-5,
                    "level {level:?}: {a:?} vs {b:?}"
                );
            }
        }
        set_isa_override(detect_isa()).unwrap();
    });
}

#[test]
fn gather_matches_reference() {
    prop_check("gather_matches_reference", 0x51D_0002, 64, |rng| {
        let grid = rng.gen_c32_vec(19, 100.0);
        let w = rng.gen_f32_vec(19, -2.0..2.0);
        let want = scalar_gather(&grid, &w);
        let _guard = ISA_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        for level in supported_levels() {
            set_isa_override(level).unwrap();
            let got = gather_row(&grid, &w);
            // Reassociation across ≤19 terms of magnitude ≤200.
            assert!(
                (got.re - want.re).abs() <= 2e-3 && (got.im - want.im).abs() <= 2e-3,
                "level {level:?}: {got:?} vs {want:?}"
            );
        }
        set_isa_override(detect_isa()).unwrap();
    });
}

#[test]
fn accumulate_matches_reference() {
    prop_check("accumulate_matches_reference", 0x51D_0003, 64, |rng| {
        let a = rng.gen_c32_vec(33, 100.0);
        let b = rng.gen_c32_vec(33, 100.0);
        let want: Vec<Complex32> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let _guard = ISA_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        for level in supported_levels() {
            set_isa_override(level).unwrap();
            let mut got = a.clone();
            accumulate(&mut got, &b);
            assert_eq!(&got, &want, "level {level:?}");
        }
        set_isa_override(detect_isa()).unwrap();
    });
}

#[test]
fn scale_matches_reference() {
    prop_check("scale_matches_reference", 0x51D_0004, 64, |rng| {
        let buf = rng.gen_c32_vec(21, 100.0);
        let s = rng.gen_f32_vec(21, -2.0..2.0);
        let want: Vec<Complex32> =
            buf.iter().zip(&s).map(|(&z, &si)| Complex32::new(z.re * si, z.im * si)).collect();
        let _guard = ISA_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        for level in supported_levels() {
            set_isa_override(level).unwrap();
            let mut got = buf.clone();
            scale_by_real(&mut got, &s);
            assert_eq!(&got, &want, "level {level:?}");
        }
        set_isa_override(detect_isa()).unwrap();
    });
}

#[test]
fn scatter_then_negate_round_trips() {
    prop_check("scatter_then_negate_round_trips", 0x51D_0005, 64, |rng| {
        // scatter(val) then scatter(-val) must restore the grid up to f32
        // round-off: x + p - p == x is NOT guaranteed elementwise.
        let grid = rng.gen_c32_vec(12, 100.0);
        let w = rng.gen_f32_vec(12, -2.0..2.0);
        let val = rng.gen_c32(5.0);
        let mut g = grid.clone();
        scatter_row(&mut g, &w, val);
        scatter_row(&mut g, &w, -val);
        for (a, b) in g.iter().zip(&grid) {
            assert!((a.re - b.re).abs() <= 1e-4 && (a.im - b.im).abs() <= 1e-4);
        }
    });
}
