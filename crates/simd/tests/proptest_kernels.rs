//! Property tests: every dispatched kernel agrees with the scalar reference
//! on random inputs at every ISA level the host supports, within FP
//! reassociation tolerance.

use nufft_math::Complex32;
use nufft_simd::{
    accumulate, detect_isa, gather_row, scale_by_real, scatter_row, set_isa_override, IsaLevel,
};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes the process-global ISA override across proptest threads.
static ISA_LOCK: Mutex<()> = Mutex::new(());

fn cvec(len: usize) -> impl Strategy<Value = Vec<Complex32>> {
    proptest::collection::vec((-100.0f32..100.0, -100.0f32..100.0), len..=len)
        .prop_map(|v| v.into_iter().map(|(r, i)| Complex32::new(r, i)).collect())
}

fn wvec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-2.0f32..2.0, len..=len)
}

fn scalar_scatter(dst: &mut [Complex32], w: &[f32], val: Complex32) {
    for (d, &wi) in dst.iter_mut().zip(w) {
        d.re += val.re * wi;
        d.im += val.im * wi;
    }
}

fn scalar_gather(src: &[Complex32], w: &[f32]) -> Complex32 {
    let mut acc = Complex32::ZERO;
    for (s, &wi) in src.iter().zip(w) {
        acc.re += s.re * wi;
        acc.im += s.im * wi;
    }
    acc
}

fn supported_levels() -> Vec<IsaLevel> {
    let detected = detect_isa();
    [IsaLevel::Scalar, IsaLevel::Sse2, IsaLevel::Avx2Fma]
        .into_iter()
        .filter(|&l| l <= detected)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scatter_matches_reference(
        len in 0usize..24,
        seed in any::<u64>(),
    ) {
        let mut rng_state = seed;
        let mut next = move || {
            // xorshift64 for cheap deterministic floats in (-1, 1).
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            (rng_state as i64 as f64 / i64::MAX as f64) as f32
        };
        let grid0: Vec<Complex32> = (0..len).map(|_| Complex32::new(next(), next())).collect();
        let w: Vec<f32> = (0..len).map(|_| next()).collect();
        let val = Complex32::new(next(), next());

        let mut want = grid0.clone();
        scalar_scatter(&mut want, &w, val);

        let _guard = ISA_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        for level in supported_levels() {
            set_isa_override(level).unwrap();
            let mut got = grid0.clone();
            scatter_row(&mut got, &w, val);
            for (a, b) in got.iter().zip(&want) {
                prop_assert!((a.re - b.re).abs() <= 1e-5 && (a.im - b.im).abs() <= 1e-5,
                    "level {level:?}: {a:?} vs {b:?}");
            }
        }
        set_isa_override(detect_isa()).unwrap();
    }

    #[test]
    fn gather_matches_reference(grid in cvec(19), w in wvec(19)) {
        let want = scalar_gather(&grid, &w);
        let _guard = ISA_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        for level in supported_levels() {
            set_isa_override(level).unwrap();
            let got = gather_row(&grid, &w);
            // Reassociation across ≤19 terms of magnitude ≤200.
            prop_assert!((got.re - want.re).abs() <= 2e-3 && (got.im - want.im).abs() <= 2e-3,
                "level {level:?}: {got:?} vs {want:?}");
        }
        set_isa_override(detect_isa()).unwrap();
    }

    #[test]
    fn accumulate_matches_reference(a in cvec(33), b in cvec(33)) {
        let want: Vec<Complex32> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let _guard = ISA_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        for level in supported_levels() {
            set_isa_override(level).unwrap();
            let mut got = a.clone();
            accumulate(&mut got, &b);
            prop_assert_eq!(&got, &want, "level {:?}", level);
        }
        set_isa_override(detect_isa()).unwrap();
    }

    #[test]
    fn scale_matches_reference(buf in cvec(21), s in wvec(21)) {
        let want: Vec<Complex32> =
            buf.iter().zip(&s).map(|(&z, &si)| Complex32::new(z.re * si, z.im * si)).collect();
        let _guard = ISA_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        for level in supported_levels() {
            set_isa_override(level).unwrap();
            let mut got = buf.clone();
            scale_by_real(&mut got, &s);
            prop_assert_eq!(&got, &want, "level {:?}", level);
        }
        set_isa_override(detect_isa()).unwrap();
    }

    #[test]
    fn scatter_then_negate_round_trips(grid in cvec(12), w in wvec(12), re in -5.0f32..5.0, im in -5.0f32..5.0) {
        // scatter(val) then scatter(-val) must restore the grid exactly:
        // the adds are elementwise and f32 addition of x + p - p == x is NOT
        // guaranteed, so compare with tolerance.
        let val = Complex32::new(re, im);
        let mut g = grid.clone();
        scatter_row(&mut g, &w, val);
        scatter_row(&mut g, &w, -val);
        for (a, b) in g.iter().zip(&grid) {
            prop_assert!((a.re - b.re).abs() <= 1e-4 && (a.im - b.im).abs() <= 1e-4);
        }
    }
}
