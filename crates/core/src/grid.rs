//! Image ↔ oversampled-grid geometry.
//!
//! The image has extent `N` per dimension with *centered* logical indices
//! `n ∈ [−N/2, N/2)`; the oversampled Cartesian grid has extent `M = α·N`.
//! The image is embedded into the grid at wrapped positions
//! `(n mod M)` — negative indices land at the top of the grid — which makes
//! the unnormalized FFT of the grid exactly the centered-index DTFT
//! `Σ_n f[n]·e^{-2πi n·m/M}` with no phase ramps. The spectrum is centered
//! (ν = 0 at grid coordinate M/2) by folding the `(−1)^{Σ n}` "chop" into
//! the real scale array (see [`crate::scale`]).

use nufft_math::Complex32;

/// Static geometry of one NUFFT problem instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Geometry<const D: usize> {
    /// Image extent per dimension.
    pub n: [usize; D],
    /// Oversampled grid extent per dimension.
    pub m: [usize; D],
}

impl<const D: usize> Geometry<D> {
    /// Builds the geometry for image extents `n` at oversampling `alpha`
    /// (grid extents are `round(alpha·n)`).
    ///
    /// # Panics
    /// Panics if any extent is zero, `alpha < 1`, or an oversampled extent
    /// fails to exceed its image extent.
    pub fn new(n: [usize; D], alpha: f64) -> Self {
        assert!(alpha >= 1.0, "oversampling must be ≥ 1");
        let mut m = [0usize; D];
        for d in 0..D {
            assert!(n[d] > 0, "image extent must be positive");
            m[d] = (n[d] as f64 * alpha).round() as usize;
            assert!(m[d] >= n[d], "oversampled extent must cover the image");
        }
        Geometry { n, m }
    }

    /// Total image elements.
    pub fn image_len(&self) -> usize {
        self.n.iter().product()
    }

    /// Total grid elements.
    pub fn grid_len(&self) -> usize {
        self.m.iter().product()
    }

    /// Row-major strides of the image.
    pub fn image_strides(&self) -> [usize; D] {
        strides(&self.n)
    }

    /// Row-major strides of the grid.
    pub fn grid_strides(&self) -> [usize; D] {
        strides(&self.m)
    }
}

fn strides<const D: usize>(ext: &[usize; D]) -> [usize; D] {
    let mut s = [1usize; D];
    for d in (0..D.saturating_sub(1)).rev() {
        s[d] = s[d + 1] * ext[d + 1];
    }
    s
}

/// Embeds the scaled image into the (pre-zeroed) oversampled grid:
/// `grid[wrap(pos − N/2)] = image[pos] · scale[pos]`.
///
/// # Panics
/// Panics on any length mismatch.
pub fn embed_scaled<const D: usize>(
    geo: &Geometry<D>,
    image: &[Complex32],
    scale: &[f32],
    grid: &mut [Complex32],
) {
    assert_eq!(image.len(), geo.image_len(), "image length mismatch");
    assert_eq!(scale.len(), geo.image_len(), "scale length mismatch");
    assert_eq!(grid.len(), geo.grid_len(), "grid length mismatch");
    let gs = geo.grid_strides();
    for_each_index(&geo.n, |flat, idx| {
        let mut g = 0usize;
        for d in 0..D {
            // Centered index n = idx − N/2, wrapped into [0, M).
            let wrapped = (idx[d] + geo.m[d] - geo.n[d] / 2) % geo.m[d];
            g += wrapped * gs[d];
        }
        grid[g] = image[flat] * scale[flat];
    });
}

/// Extracts the image region back out of the grid with the same scaling:
/// `out[pos] = grid[wrap(pos − N/2)] · scale[pos]`.
///
/// Together with [`embed_scaled`] this makes the grid-domain pipeline
/// exactly self-adjoint (the scale is real).
///
/// # Panics
/// Panics on any length mismatch.
pub fn extract_scaled<const D: usize>(
    geo: &Geometry<D>,
    grid: &[Complex32],
    scale: &[f32],
    out: &mut [Complex32],
) {
    assert_eq!(out.len(), geo.image_len(), "image length mismatch");
    assert_eq!(scale.len(), geo.image_len(), "scale length mismatch");
    assert_eq!(grid.len(), geo.grid_len(), "grid length mismatch");
    let gs = geo.grid_strides();
    for_each_index(&geo.n, |flat, idx| {
        let mut g = 0usize;
        for d in 0..D {
            let wrapped = (idx[d] + geo.m[d] - geo.n[d] / 2) % geo.m[d];
            g += wrapped * gs[d];
        }
        out[flat] = grid[g] * scale[flat];
    });
}

/// Calls `f(flat, idx)` for every row-major index of `ext`.
pub fn for_each_index<const D: usize>(ext: &[usize; D], mut f: impl FnMut(usize, [usize; D])) {
    let len: usize = ext.iter().product();
    let mut idx = [0usize; D];
    for flat in 0..len {
        f(flat, idx);
        for d in (0..D).rev() {
            idx[d] += 1;
            if idx[d] < ext[d] {
                break;
            }
            idx[d] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_extents_and_strides() {
        let g = Geometry::new([4, 6, 8], 2.0);
        assert_eq!(g.m, [8, 12, 16]);
        assert_eq!(g.image_len(), 192);
        assert_eq!(g.grid_len(), 1536);
        assert_eq!(g.image_strides(), [48, 8, 1]);
        assert_eq!(g.grid_strides(), [192, 16, 1]);
    }

    #[test]
    fn geometry_alpha_1_25_rounds() {
        let g = Geometry::new([240], 1.25);
        assert_eq!(g.m, [300]);
    }

    #[test]
    fn for_each_index_is_row_major() {
        let mut seen = Vec::new();
        for_each_index(&[2usize, 3], |flat, idx| seen.push((flat, idx)));
        assert_eq!(seen[0], (0, [0, 0]));
        assert_eq!(seen[1], (1, [0, 1]));
        assert_eq!(seen[3], (3, [1, 0]));
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn embed_extract_round_trip() {
        let geo = Geometry::new([4, 4], 2.0);
        let image: Vec<Complex32> =
            (0..16).map(|i| Complex32::new(i as f32, -(i as f32))).collect();
        let scale = vec![1.0f32; 16];
        let mut grid = vec![Complex32::ZERO; geo.grid_len()];
        embed_scaled(&geo, &image, &scale, &mut grid);
        // Exactly 16 nonzeros.
        assert_eq!(grid.iter().filter(|z| **z != Complex32::ZERO).count(), 15); // element 0 is 0+0i
        let mut back = vec![Complex32::ZERO; 16];
        extract_scaled(&geo, &grid, &scale, &mut back);
        assert_eq!(back, image);
    }

    #[test]
    fn embed_wraps_negative_indices_to_top() {
        // 1D: N=4, M=8. Centered indices −2..2 map to grid 6,7,0,1.
        let geo = Geometry::new([4], 2.0);
        let image = vec![
            Complex32::new(1.0, 0.0), // n = −2 -> grid 6
            Complex32::new(2.0, 0.0), // n = −1 -> grid 7
            Complex32::new(3.0, 0.0), // n =  0 -> grid 0
            Complex32::new(4.0, 0.0), // n = +1 -> grid 1
        ];
        let scale = vec![1.0f32; 4];
        let mut grid = vec![Complex32::ZERO; 8];
        embed_scaled(&geo, &image, &scale, &mut grid);
        assert_eq!(grid[6].re, 1.0);
        assert_eq!(grid[7].re, 2.0);
        assert_eq!(grid[0].re, 3.0);
        assert_eq!(grid[1].re, 4.0);
        assert_eq!(grid[2], Complex32::ZERO);
    }

    #[test]
    fn scaling_is_applied_both_ways() {
        let geo = Geometry::new([2], 2.0);
        let image = vec![Complex32::ONE, Complex32::ONE];
        let scale = vec![2.0f32, -3.0];
        let mut grid = vec![Complex32::ZERO; 4];
        embed_scaled(&geo, &image, &scale, &mut grid);
        let mut back = vec![Complex32::ZERO; 2];
        extract_scaled(&geo, &grid, &scale, &mut back);
        assert_eq!(back[0].re, 4.0);
        assert_eq!(back[1].re, 9.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn embed_validates_lengths() {
        let geo = Geometry::new([4], 2.0);
        let mut grid = vec![Complex32::ZERO; 8];
        embed_scaled(&geo, &[Complex32::ZERO; 3], &[1.0; 3], &mut grid);
    }
}
