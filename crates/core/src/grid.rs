//! Image ↔ oversampled-grid geometry.
//!
//! The image has extent `N` per dimension with *centered* logical indices
//! `n ∈ [−N/2, N/2)`; the oversampled Cartesian grid has extent `M = α·N`.
//! The image is embedded into the grid at wrapped positions
//! `(n mod M)` — negative indices land at the top of the grid — which makes
//! the unnormalized FFT of the grid exactly the centered-index DTFT
//! `Σ_n f[n]·e^{-2πi n·m/M}` with no phase ramps. The spectrum is centered
//! (ν = 0 at grid coordinate M/2) by folding the `(−1)^{Σ n}` "chop" into
//! the real scale array (see [`crate::scale`]).

use nufft_math::Complex32;

/// Static geometry of one NUFFT problem instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Geometry<const D: usize> {
    /// Image extent per dimension.
    pub n: [usize; D],
    /// Oversampled grid extent per dimension.
    pub m: [usize; D],
}

impl<const D: usize> Geometry<D> {
    /// Builds the geometry for image extents `n` at oversampling `alpha`
    /// (grid extents are `round(alpha·n)`).
    ///
    /// # Panics
    /// Panics if any extent is zero, `alpha < 1`, or an oversampled extent
    /// fails to exceed its image extent.
    pub fn new(n: [usize; D], alpha: f64) -> Self {
        assert!(alpha >= 1.0, "oversampling must be ≥ 1");
        let mut m = [0usize; D];
        for d in 0..D {
            assert!(n[d] > 0, "image extent must be positive");
            m[d] = (n[d] as f64 * alpha).round() as usize;
            assert!(m[d] >= n[d], "oversampled extent must cover the image");
        }
        Geometry { n, m }
    }

    /// Total image elements.
    pub fn image_len(&self) -> usize {
        self.n.iter().product()
    }

    /// Total grid elements.
    pub fn grid_len(&self) -> usize {
        self.m.iter().product()
    }

    /// Row-major strides of the image.
    pub fn image_strides(&self) -> [usize; D] {
        strides(&self.n)
    }

    /// Row-major strides of the grid.
    pub fn grid_strides(&self) -> [usize; D] {
        strides(&self.m)
    }
}

fn strides<const D: usize>(ext: &[usize; D]) -> [usize; D] {
    let mut s = [1usize; D];
    for d in (0..D.saturating_sub(1)).rev() {
        s[d] = s[d + 1] * ext[d + 1];
    }
    s
}

/// Embeds the scaled image into the (pre-zeroed) oversampled grid:
/// `grid[wrap(pos − N/2)] = image[pos] · scale[pos]`.
///
/// # Panics
/// Panics on any length mismatch.
pub fn embed_scaled<const D: usize>(
    geo: &Geometry<D>,
    image: &[Complex32],
    scale: &[f32],
    grid: &mut [Complex32],
) {
    assert_eq!(image.len(), geo.image_len(), "image length mismatch");
    assert_eq!(scale.len(), geo.image_len(), "scale length mismatch");
    assert_eq!(grid.len(), geo.grid_len(), "grid length mismatch");
    let gs = geo.grid_strides();
    for_each_index(&geo.n, |flat, idx| {
        let mut g = 0usize;
        for d in 0..D {
            // Centered index n = idx − N/2, wrapped into [0, M).
            let wrapped = (idx[d] + geo.m[d] - geo.n[d] / 2) % geo.m[d];
            g += wrapped * gs[d];
        }
        grid[g] = image[flat] * scale[flat];
    });
}

/// Extracts the image region back out of the grid with the same scaling:
/// `out[pos] = grid[wrap(pos − N/2)] · scale[pos]`.
///
/// Together with [`embed_scaled`] this makes the grid-domain pipeline
/// exactly self-adjoint (the scale is real).
///
/// # Panics
/// Panics on any length mismatch.
pub fn extract_scaled<const D: usize>(
    geo: &Geometry<D>,
    grid: &[Complex32],
    scale: &[f32],
    out: &mut [Complex32],
) {
    assert_eq!(out.len(), geo.image_len(), "image length mismatch");
    assert_eq!(scale.len(), geo.image_len(), "scale length mismatch");
    assert_eq!(grid.len(), geo.grid_len(), "grid length mismatch");
    let gs = geo.grid_strides();
    for_each_index(&geo.n, |flat, idx| {
        let mut g = 0usize;
        for d in 0..D {
            let wrapped = (idx[d] + geo.m[d] - geo.n[d] / 2) % geo.m[d];
            g += wrapped * gs[d];
        }
        out[flat] = grid[g] * scale[flat];
    });
}

/// Calls `f(flat, idx)` for every row-major index of `ext`.
pub fn for_each_index<const D: usize>(ext: &[usize; D], mut f: impl FnMut(usize, [usize; D])) {
    for_each_index_range(ext, 0, ext.iter().product(), &mut f);
}

/// Calls `f(flat, idx)` for `count` consecutive row-major indices of `ext`
/// starting at flat index `lo` — the slab/chunk variant of
/// [`for_each_index`] used by fused-graph nodes that each own a contiguous
/// sub-range of the full domain.
pub fn for_each_index_range<const D: usize>(
    ext: &[usize; D],
    lo: usize,
    count: usize,
    mut f: impl FnMut(usize, [usize; D]),
) {
    let s = strides(ext);
    let mut idx = [0usize; D];
    let mut rem = lo;
    for d in 0..D {
        idx[d] = rem / s[d];
        rem %= s[d];
    }
    for flat in lo..lo + count {
        f(flat, idx);
        for d in (0..D).rev() {
            idx[d] += 1;
            if idx[d] < ext[d] {
                break;
            }
            idx[d] = 0;
        }
    }
}

/// The slab form of [`embed_scaled`]: fills grid elements `[lo, lo +
/// slab.len())` — *every* element, so no pre-zeroing pass is needed. Grid
/// positions outside the embedded image get zero; embedded positions get
/// the identical `image[flat] * scale[flat]` expression as [`embed_scaled`]
/// (so a slab-assembled grid is bitwise equal to a zero + embed pipeline).
///
/// Uses the inverse of the embed map: grid coordinate `g_d` holds image
/// index `r_d = (g_d + N_d/2) mod M_d` iff `r_d < N_d` (the wrap
/// `g = (r − N/2) mod M` is a bijection of `[0, M)`, and image positions
/// are exactly those whose preimage lands below `N`). Along the last axis
/// that inverse picks out two contiguous column segments per grid row —
/// `g ∈ [0, N−N/2)` holding image columns `[N/2, N)` and `g ∈ [M−N/2, M)`
/// holding `[0, N/2)` — so the slab is zero-filled at memset speed and only
/// the embedded segments (an `α^{-D}` fraction of the grid) are written
/// with stride-1 multiply loops.
pub fn embed_scaled_slab<const D: usize>(
    geo: &Geometry<D>,
    image: &[Complex32],
    scale: &[f32],
    slab: &mut [Complex32],
    lo: usize,
) {
    debug_assert!(lo + slab.len() <= geo.grid_len());
    slab.fill(Complex32::ZERO);
    if slab.is_empty() {
        return;
    }
    let is = geo.image_strides();
    let (n_last, m_last) = (geo.n[D - 1], geo.m[D - 1]);
    let hi = lo + slab.len();
    // (grid column start, segment length, image column start)
    let segs =
        [(0usize, n_last - n_last / 2, n_last / 2), (m_last - n_last / 2, n_last / 2, 0usize)];
    for row in lo / m_last..=(hi - 1) / m_last {
        // Decode the row's outer grid indices; a row whose outer preimage
        // falls outside the image stays zero.
        let mut rem = row;
        let mut base = 0usize;
        let mut inside = true;
        for d in (0..D.saturating_sub(1)).rev() {
            let r = (rem % geo.m[d] + geo.n[d] / 2) % geo.m[d];
            rem /= geo.m[d];
            if r < geo.n[d] {
                base += r * is[d];
            } else {
                inside = false;
                break;
            }
        }
        if !inside {
            continue;
        }
        let row_lo = row * m_last;
        for (g0, len, img0) in segs {
            let a = (row_lo + g0).max(lo);
            let b = (row_lo + g0 + len).min(hi);
            if a >= b {
                continue;
            }
            let img_base = base + img0 + (a - row_lo - g0);
            for (k, out) in slab[a - lo..b - lo].iter_mut().enumerate() {
                let f = img_base + k;
                *out = image[f] * scale[f];
            }
        }
    }
}

/// The chunk form of [`extract_scaled`]: writes image elements `[lo, lo +
/// out.len())` with the identical per-element expression, so chunked
/// extraction is bitwise equal to the full pass.
pub fn extract_scaled_range<const D: usize>(
    geo: &Geometry<D>,
    grid: &[Complex32],
    scale: &[f32],
    out: &mut [Complex32],
    lo: usize,
) {
    debug_assert!(lo + out.len() <= geo.image_len());
    let gs = geo.grid_strides();
    for_each_index_range(&geo.n, lo, out.len(), |flat, idx| {
        let mut g = 0usize;
        for d in 0..D {
            let wrapped = (idx[d] + geo.m[d] - geo.n[d] / 2) % geo.m[d];
            g += wrapped * gs[d];
        }
        out[flat - lo] = grid[g] * scale[flat];
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_extents_and_strides() {
        let g = Geometry::new([4, 6, 8], 2.0);
        assert_eq!(g.m, [8, 12, 16]);
        assert_eq!(g.image_len(), 192);
        assert_eq!(g.grid_len(), 1536);
        assert_eq!(g.image_strides(), [48, 8, 1]);
        assert_eq!(g.grid_strides(), [192, 16, 1]);
    }

    #[test]
    fn geometry_alpha_1_25_rounds() {
        let g = Geometry::new([240], 1.25);
        assert_eq!(g.m, [300]);
    }

    #[test]
    fn for_each_index_is_row_major() {
        let mut seen = Vec::new();
        for_each_index(&[2usize, 3], |flat, idx| seen.push((flat, idx)));
        assert_eq!(seen[0], (0, [0, 0]));
        assert_eq!(seen[1], (1, [0, 1]));
        assert_eq!(seen[3], (3, [1, 0]));
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn embed_extract_round_trip() {
        let geo = Geometry::new([4, 4], 2.0);
        let image: Vec<Complex32> =
            (0..16).map(|i| Complex32::new(i as f32, -(i as f32))).collect();
        let scale = vec![1.0f32; 16];
        let mut grid = vec![Complex32::ZERO; geo.grid_len()];
        embed_scaled(&geo, &image, &scale, &mut grid);
        // Exactly 16 nonzeros.
        assert_eq!(grid.iter().filter(|z| **z != Complex32::ZERO).count(), 15); // element 0 is 0+0i
        let mut back = vec![Complex32::ZERO; 16];
        extract_scaled(&geo, &grid, &scale, &mut back);
        assert_eq!(back, image);
    }

    #[test]
    fn embed_wraps_negative_indices_to_top() {
        // 1D: N=4, M=8. Centered indices −2..2 map to grid 6,7,0,1.
        let geo = Geometry::new([4], 2.0);
        let image = vec![
            Complex32::new(1.0, 0.0), // n = −2 -> grid 6
            Complex32::new(2.0, 0.0), // n = −1 -> grid 7
            Complex32::new(3.0, 0.0), // n =  0 -> grid 0
            Complex32::new(4.0, 0.0), // n = +1 -> grid 1
        ];
        let scale = vec![1.0f32; 4];
        let mut grid = vec![Complex32::ZERO; 8];
        embed_scaled(&geo, &image, &scale, &mut grid);
        assert_eq!(grid[6].re, 1.0);
        assert_eq!(grid[7].re, 2.0);
        assert_eq!(grid[0].re, 3.0);
        assert_eq!(grid[1].re, 4.0);
        assert_eq!(grid[2], Complex32::ZERO);
    }

    #[test]
    fn scaling_is_applied_both_ways() {
        let geo = Geometry::new([2], 2.0);
        let image = vec![Complex32::ONE, Complex32::ONE];
        let scale = vec![2.0f32, -3.0];
        let mut grid = vec![Complex32::ZERO; 4];
        embed_scaled(&geo, &image, &scale, &mut grid);
        let mut back = vec![Complex32::ZERO; 2];
        extract_scaled(&geo, &grid, &scale, &mut back);
        assert_eq!(back[0].re, 4.0);
        assert_eq!(back[1].re, 9.0);
    }

    #[test]
    fn slab_embed_matches_full_embed_bitwise() {
        let geo = Geometry::new([5, 6], 1.6);
        let image: Vec<Complex32> =
            (0..30).map(|i| Complex32::new((i as f32).sin(), (i as f32).cos())).collect();
        let scale: Vec<f32> = (0..30).map(|i| 1.0 + 0.1 * i as f32).collect();
        let mut full = vec![Complex32::new(9.0, 9.0); geo.grid_len()];
        full.fill(Complex32::ZERO);
        embed_scaled(&geo, &image, &scale, &mut full);
        // Assemble the same grid from uneven slabs over poisoned memory:
        // slab embed must overwrite every element.
        let mut slabbed = vec![Complex32::new(9.0, 9.0); geo.grid_len()];
        let mut lo = 0usize;
        for slab in [7usize, 13, 1, 40, geo.grid_len()] {
            let hi = (lo + slab).min(geo.grid_len());
            embed_scaled_slab(&geo, &image, &scale, &mut slabbed[lo..hi], lo);
            lo = hi;
        }
        for (i, (a, b)) in full.iter().zip(&slabbed).enumerate() {
            assert!(
                a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                "grid elem {i}: {a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn range_extract_matches_full_extract_bitwise() {
        let geo = Geometry::new([4, 5], 2.0);
        let grid: Vec<Complex32> = (0..geo.grid_len())
            .map(|i| Complex32::new((i as f32 * 0.3).sin(), (i as f32 * 0.7).cos()))
            .collect();
        let scale: Vec<f32> = (0..20).map(|i| 0.5 + 0.05 * i as f32).collect();
        let mut full = vec![Complex32::ZERO; 20];
        extract_scaled(&geo, &grid, &scale, &mut full);
        let mut chunked = vec![Complex32::new(9.0, 9.0); 20];
        let mut lo = 0usize;
        for chunk in [3usize, 8, 9] {
            let hi = (lo + chunk).min(20);
            extract_scaled_range(&geo, &grid, &scale, &mut chunked[lo..hi], lo);
            lo = hi;
        }
        assert_eq!(full, chunked);
    }

    #[test]
    fn index_range_walker_matches_full_walker() {
        let ext = [3usize, 4, 2];
        let mut full = Vec::new();
        for_each_index(&ext, |flat, idx| full.push((flat, idx)));
        let mut ranged = Vec::new();
        for (lo, count) in [(0usize, 5usize), (5, 1), (6, 10), (16, 8)] {
            for_each_index_range(&ext, lo, count, |flat, idx| ranged.push((flat, idx)));
        }
        assert_eq!(full, ranged);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn embed_validates_lengths() {
        let geo = Geometry::new([4], 2.0);
        let mut grid = vec![Complex32::ZERO; 8];
        embed_scaled(&geo, &[Complex32::ZERO; 3], &[1.0; 3], &mut grid);
    }
}
