//! Geometric data partitioning (§III-B1, Figure 5).
//!
//! The oversampled grid is cut into a d-dimensional grid of sub-grids, one
//! task per cell. Widths are chosen *per dimension* from the cumulative
//! sample histogram: starting from the minimum legal width `2W+1`, each
//! partition grows until it holds at least `total/P` samples (in that
//! dimension's marginal). Variable widths put the smallest legal partitions
//! over the dense spectral center and wide ones over the sparse edges —
//! the paper's fix for radial/spiral load imbalance. A fixed-width variant
//! is provided as the Figure 11 baseline.
//!
//! Two amendments keep the cyclic exclusion invariant airtight (the paper's
//! pseudo-code doesn't address the grid's mod-M wrap):
//!
//! * every partition — including the last — is at least `2W+1` wide (a
//!   trailing remnant is merged into its predecessor), so no two same-turn
//!   tasks can reach each other's halo *through* an intervening partition;
//! * each dimension ends up with an even number of partitions (or exactly
//!   one), so index parity is consistent around the wrap and the Gray-code
//!   turn ordering remains valid cyclically.

/// Partition boundaries along every dimension.
///
/// `bounds[d]` is the ascending boundary list `[0, e₁, …, M_d]`; partition
/// `i` along `d` covers grid columns `[bounds[d][i], bounds[d][i+1])`.
#[derive(Clone, Debug)]
pub struct Partitions<const D: usize> {
    bounds: [Vec<usize>; D],
}

impl<const D: usize> Partitions<D> {
    /// Variable-width partitioning from sample coordinates (Figure 5).
    ///
    /// `m` is the grid extent, `p` the desired partition count per
    /// dimension, `min_width` the minimum legal width (`2W+1`).
    ///
    /// # Panics
    /// Panics if `p == 0` or `min_width == 0`.
    pub fn variable(coords: &[[f32; D]], m: [usize; D], p: usize, min_width: usize) -> Self {
        assert!(p > 0, "need at least one partition per dimension");
        assert!(min_width > 0, "minimum width must be positive");
        let avg = (coords.len() / p).max(1);
        let bounds = core::array::from_fn(|d| {
            // Cumulative histogram: hist[i] = #samples with coord < i.
            let mut hist = vec![0usize; m[d] + 1];
            for c in coords {
                let bin = (c[d] as usize).min(m[d] - 1);
                hist[bin + 1] += 1;
            }
            for i in 0..m[d] {
                hist[i + 1] += hist[i];
            }
            let mut b = vec![0usize];
            let mut start = 0usize;
            while start < m[d] {
                let mut end = (start + min_width).min(m[d]);
                while end < m[d] && hist[end] - hist[start] < avg {
                    end += 1;
                }
                b.push(end);
                start = end;
            }
            fix_bounds(&mut b, m[d], min_width);
            b
        });
        Partitions { bounds }
    }

    /// Fixed-width partitioning: `p` equal cells per dimension (clamped so
    /// each is at least `min_width` wide) — the Figure 11 baseline.
    pub fn fixed(m: [usize; D], p: usize, min_width: usize) -> Self {
        assert!(p > 0, "need at least one partition per dimension");
        assert!(min_width > 0, "minimum width must be positive");
        let bounds = core::array::from_fn(|d| {
            let count = p.min(m[d] / min_width).max(1);
            let mut b: Vec<usize> = (0..=count).map(|i| i * m[d] / count).collect();
            fix_bounds(&mut b, m[d], min_width);
            b
        });
        Partitions { bounds }
    }

    /// Number of partitions per dimension.
    pub fn counts(&self) -> [usize; D] {
        core::array::from_fn(|d| self.bounds[d].len() - 1)
    }

    /// Boundary list along `dim`.
    pub fn bounds(&self, dim: usize) -> &[usize] {
        &self.bounds[dim]
    }

    /// The partition cell `[start, end)` of task multi-index `idx`.
    pub fn cell(&self, idx: &[usize; D]) -> ([usize; D], [usize; D]) {
        let start = core::array::from_fn(|d| self.bounds[d][idx[d]]);
        let end = core::array::from_fn(|d| self.bounds[d][idx[d] + 1]);
        (start, end)
    }

    /// Locates the partition multi-index containing grid coordinate `u`.
    pub fn locate(&self, u: &[f32; D]) -> [usize; D] {
        core::array::from_fn(|d| {
            let b = &self.bounds[d];
            // partition_point returns the first boundary > u; the owning
            // partition is one before it.
            let i = b.partition_point(|&e| e as f32 <= u[d]);
            i.saturating_sub(1).min(b.len() - 2)
        })
    }

    /// Smallest partition width along `dim`.
    pub fn min_width(&self, dim: usize) -> usize {
        self.bounds[dim].windows(2).map(|w| w[1] - w[0]).min().unwrap_or(0)
    }
}

/// Enforces the two cyclic-safety amendments on a boundary list.
fn fix_bounds(b: &mut Vec<usize>, m: usize, min_width: usize) {
    debug_assert!(b.len() >= 2 && b[0] == 0 && *b.last().unwrap() == m);
    // (1) Merge a too-thin final partition into its predecessor.
    while b.len() > 2 {
        let k = b.len();
        if b[k - 1] - b[k - 2] < min_width {
            b.remove(k - 2);
        } else {
            break;
        }
    }
    // If the whole dimension is narrower than min_width a single partition
    // remains, which is always legal (it has no distinct neighbors).
    // (2) Even partition count (or exactly one) for cyclic parity. Prefer
    // splitting the widest partition (preserves the fine partitions over
    // the dense center); merge the thinnest adjacent pair only when nothing
    // is wide enough to split.
    let count = b.len() - 1;
    if count > 1 && count % 2 == 1 {
        let widest = (0..count).max_by_key(|&i| b[i + 1] - b[i]).expect("non-empty partition list");
        if b[widest + 1] - b[widest] >= 2 * min_width {
            let mid = (b[widest] + b[widest + 1]) / 2;
            b.insert(widest + 1, mid);
        } else {
            let best = (1..b.len() - 1)
                .min_by_key(|&i| b[i + 1] - b[i - 1])
                .expect("at least two partitions");
            b.remove(best);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn widths(p: &Partitions<1>) -> Vec<usize> {
        p.bounds(0).windows(2).map(|w| w[1] - w[0]).collect()
    }

    #[test]
    fn uniform_samples_give_roughly_equal_partitions() {
        let coords: Vec<[f32; 1]> = (0..1000).map(|i| [i as f32 * 0.128]).collect();
        let p = Partitions::variable(&coords, [128], 8, 9);
        let w = widths(&p);
        assert!(w.len() >= 2 && w.len().is_multiple_of(2), "{w:?}");
        assert!(w.iter().all(|&x| x >= 9), "{w:?}");
        assert_eq!(w.iter().sum::<usize>(), 128);
        // Near-equal widths for uniform data.
        let max = *w.iter().max().unwrap();
        let min = *w.iter().min().unwrap();
        assert!(max <= 2 * min + 9, "{w:?}");
    }

    #[test]
    fn center_dense_samples_give_narrow_center_partitions() {
        // All mass near the center: center partitions hit the minimum
        // width, edge partitions become wide.
        let mut coords: Vec<[f32; 1]> = Vec::new();
        for i in 0..2000 {
            coords.push([64.0 + 8.0 * ((i as f32 / 2000.0) - 0.5)]);
        }
        let p = Partitions::variable(&coords, [128], 8, 9);
        let b = p.bounds(0);
        let w = widths(&p);
        assert!(w.iter().all(|&x| x >= 9), "{w:?}");
        // Some partition near the center is exactly min width.
        let center_part = p.locate(&[64.0])[0];
        let center_w = b[center_part + 1] - b[center_part];
        assert!(center_w <= 16, "center partition too wide: {center_w} ({w:?})");
        // Edge partitions are far wider than the center one.
        assert!(w[0] > 2 * center_w, "{w:?}");
    }

    #[test]
    fn all_partitions_at_least_min_width() {
        for seedish in 0..5u32 {
            let coords: Vec<[f32; 1]> = (0..500)
                .map(|i: u32| {
                    let x =
                        (i.wrapping_mul(2654435761).wrapping_add(seedish) % 12800) as f32 / 100.0;
                    [x]
                })
                .collect();
            let p = Partitions::variable(&coords, [128], 16, 9);
            assert!(widths(&p).iter().all(|&w| w >= 9), "{:?}", widths(&p));
        }
    }

    #[test]
    fn partition_count_is_even_or_one() {
        for m in [32usize, 64, 100, 128, 17, 9, 8] {
            let coords: Vec<[f32; 1]> = (0..300).map(|i| [(i % m) as f32]).collect();
            let p = Partitions::variable(&coords, [m], 7, 9);
            let c = p.counts()[0];
            assert!(c == 1 || c % 2 == 0, "m={m}: count {c}");
        }
    }

    #[test]
    fn locate_agrees_with_cell_ranges() {
        let coords: Vec<[f32; 2]> =
            (0..400).map(|i| [(i % 64) as f32 + 0.3, ((i * 7) % 64) as f32 + 0.7]).collect();
        let p = Partitions::variable(&coords, [64, 64], 4, 5);
        for c in &coords {
            let idx = p.locate(c);
            let (start, end) = p.cell(&idx);
            for d in 0..2 {
                assert!(
                    start[d] as f32 <= c[d] && c[d] < end[d] as f32,
                    "coord {c:?} not inside cell {start:?}..{end:?}"
                );
            }
        }
    }

    #[test]
    fn fixed_partitions_are_equal_width() {
        let p = Partitions::<1>::fixed([128], 8, 9);
        let w = widths(&p);
        assert_eq!(w.len(), 8);
        assert!(w.iter().all(|&x| x == 16));
    }

    #[test]
    fn fixed_partitions_clamp_to_min_width() {
        // 128 / 9 = 14 partitions of ≥9 max; requesting 32 must clamp.
        let p = Partitions::<1>::fixed([128], 32, 9);
        let c = p.counts()[0];
        assert!(c <= 14);
        assert!(widths(&p).iter().all(|&x| x >= 9));
        assert!(c == 1 || c.is_multiple_of(2));
    }

    #[test]
    fn tiny_grid_collapses_to_single_partition() {
        let coords: Vec<[f32; 1]> = vec![[3.0]; 10];
        let p = Partitions::variable(&coords, [8], 4, 9);
        assert_eq!(p.counts()[0], 1);
        assert_eq!(p.bounds(0), &[0, 8]);
    }

    #[test]
    fn boundary_coordinates_locate_into_last_partition() {
        let coords: Vec<[f32; 1]> = (0..100).map(|i| [i as f32 * 1.27]).collect();
        let p = Partitions::variable(&coords, [128], 4, 9);
        // The maximum legal coordinate is just below M.
        let idx = p.locate(&[127.9999]);
        assert_eq!(idx[0], p.counts()[0] - 1);
        let idx0 = p.locate(&[0.0]);
        assert_eq!(idx0[0], 0);
    }
}
