//! # nufft-core — the paper's contribution
//!
//! A from-scratch reproduction of *High Performance Non-uniform FFT on
//! Modern x86-based Multi-core Systems* (Kalamkar et al., IPDPS 2012): a
//! parallel, SIMD-vectorized 1D/2D/3D NUFFT whose adjoint convolution runs
//! under the paper's novel scheduler — variable-width geometric
//! partitioning, Gray-code task-dependency-graph ordering without global
//! barriers, a largest-first priority ready queue, and selective
//! privatization with decoupled reduction.
//!
//! ## Quick start
//!
//! ```
//! use nufft_core::{NufftConfig, NufftPlan};
//! use nufft_math::Complex32;
//!
//! // A 2D 32×32 image observed at 200 non-uniform spectral points.
//! let traj: Vec<[f64; 2]> = (0..200)
//!     .map(|i| {
//!         let a = (i as f64 * 0.61803) % 1.0 - 0.5;
//!         let b = (i as f64 * 0.41421) % 1.0 - 0.5;
//!         [a, b]
//!     })
//!     .collect();
//! let cfg = NufftConfig { threads: 2, w: 2.0, ..NufftConfig::default() };
//! let mut plan = NufftPlan::new([32, 32], &traj, cfg);
//!
//! let image = vec![Complex32::ONE; 32 * 32];
//! let mut samples = vec![Complex32::ZERO; 200];
//! plan.forward(&image, &mut samples);          // image -> k-space samples
//!
//! let mut back = vec![Complex32::ZERO; 32 * 32];
//! plan.adjoint(&samples, &mut back);           // exact adjoint map
//! ```
//!
//! ## Module map (paper section → module)
//!
//! | Paper | Module |
//! |---|---|
//! | §II-B kernel + LUT | [`kernel`] |
//! | §II-B scaling / roll-off | [`scale`] |
//! | Fig. 2 convolution | [`conv`] |
//! | §III-B1 / Fig. 5 partitioning | [`partition`] |
//! | §III-B2–4 + §III-D preprocessing | [`tasks`] |
//! | stage operators (spread/interp/FFT/deconvolve) | [`stage`] |
//! | operators + timings | [`plan`] |
//! | type-3 (nonuniform → nonuniform) | [`type3`] |

// Index-based loops below frequently address several parallel arrays
// at once; clippy's iterator suggestion would obscure that.
#![allow(clippy::needless_range_loop)]

pub mod conv;
pub mod fused;
pub mod grid;
pub mod kernel;
pub mod partition;
pub mod plan;
pub mod registry;
pub mod scale;
pub mod stage;
pub mod tasks;
pub mod type3;
pub mod windows;

#[allow(deprecated)]
pub use kernel::KbKernel;
pub use kernel::{InterpKernel, KernelChoice};
pub use nufft_parallel::exec::JobPriority;
pub use plan::{ExecMode, NufftConfig, NufftPlan, OpTimers};
pub use registry::{
    ApplyHandle, ApplyOp, ApplyRequest, NufftService, PlanKey, PlanLease, PlanRegistry,
    RegistryStats, TransformKind, Type3Lease,
};
pub use stage::{DeconvOp, FftOp, InterpOp, SpreadOp};
pub use tasks::SortMode;
pub use type3::Type3Plan;
pub use windows::{WindowMode, WindowTable};
