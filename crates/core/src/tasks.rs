//! NUFFT preprocessing (§III-B, §III-D, Figure 14).
//!
//! Run once per trajectory and reused across every operator call:
//!
//! 1. partition the grid (variable- or fixed-width, [`crate::partition`]);
//! 2. bin samples into partition tasks (stable counting sort) and reorder
//!    them within each task in tiled scan-line order for cache locality
//!    (§III-D);
//! 3. build the cyclic Gray-code [`TaskGraph`] with task weights;
//! 4. apply the selective-privatization criterion (Eq. 6): tasks holding
//!    more than `total / (threads · 2^{d+1})` samples get a private halo
//!    buffer and a decoupled reduction.

use crate::partition::Partitions;
use nufft_parallel::graph::TaskGraph;

/// A privatized task's local buffer geometry: the task cell grown by the
/// kernel radius on every side, in *unwrapped* coordinates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region<const D: usize> {
    /// Unwrapped starting coordinate (can be negative).
    pub origin: [i32; D],
    /// Extent per dimension.
    pub size: [usize; D],
}

impl<const D: usize> Region<D> {
    /// Buffer length in elements.
    pub fn len(&self) -> usize {
        self.size.iter().product()
    }

    /// True for degenerate zero-size regions (never produced in practice).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Preprocessing knobs (a subset of the plan config).
#[derive(Clone, Copy, Debug)]
pub struct PreprocessConfig {
    /// Desired partitions per dimension (`P` in Figure 5).
    pub partitions_per_dim: usize,
    /// Kernel radius `W` — sets the minimum partition width `2⌈W⌉+1` and
    /// halo sizes.
    pub w: f64,
    /// Fixed- instead of variable-width partitioning (Figure 11 baseline).
    pub fixed_partitions: bool,
    /// Enable selective privatization (Eq. 6).
    pub privatization: bool,
    /// Worker count `P` used in the privatization threshold.
    pub threads: usize,
    /// Reorder samples within tasks in tiled scan-line order (§III-D).
    pub reorder: bool,
    /// Tile edge (grid cells) for the reorder; the paper uses "one level of
    /// tiling" over the scan-line order.
    pub tile: usize,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        PreprocessConfig {
            partitions_per_dim: 8,
            w: 4.0,
            fixed_partitions: false,
            privatization: true,
            threads: 1,
            reorder: true,
            tile: 16,
        }
    }
}

/// The reusable preprocessing product.
#[derive(Clone, Debug)]
pub struct Preprocess<const D: usize> {
    /// Partition boundaries.
    pub parts: Partitions<D>,
    /// Cyclic Gray-code dependency graph; weights are task sample counts.
    pub graph: TaskGraph,
    /// Permutation: internal position `i` holds original sample
    /// `order[i]`.
    pub order: Vec<u32>,
    /// Per task: the range of internal positions it owns.
    pub ranges: Vec<core::ops::Range<usize>>,
    /// Coordinates in internal order (grid units).
    pub coords: Vec<[f32; D]>,
    /// Per task: the privatized halo region, if selected.
    pub regions: Vec<Option<Region<D>>>,
    /// The Eq. 6 threshold used (samples per task).
    pub threshold: usize,
}

/// Runs the full preprocessing pipeline.
///
/// `coords` are sample positions in oversampled-grid units `[0, M)` per
/// dimension.
///
/// # Panics
/// Panics if any coordinate is out of range or non-finite.
pub fn preprocess<const D: usize>(
    coords: &[[f32; D]],
    m: [usize; D],
    cfg: &PreprocessConfig,
) -> Preprocess<D> {
    let wc = cfg.w.ceil() as usize;
    let min_width = 2 * wc + 1;
    for (p, c) in coords.iter().enumerate() {
        for d in 0..D {
            assert!(
                c[d].is_finite() && c[d] >= 0.0 && c[d] < m[d] as f32,
                "sample {p} coordinate {} out of [0, {}) in dim {d}",
                c[d],
                m[d]
            );
        }
    }

    let parts = if cfg.fixed_partitions {
        Partitions::fixed(m, cfg.partitions_per_dim, min_width)
    } else {
        Partitions::variable(coords, m, cfg.partitions_per_dim, min_width)
    };
    let dims = parts.counts();
    let mut graph = TaskGraph::new_cyclic(&dims, &[true; D]);
    let n_tasks = graph.len();

    // Bin samples into tasks (counting sort, stable).
    let mut task_of = vec![0u32; coords.len()];
    let mut counts = vec![0usize; n_tasks];
    for (p, c) in coords.iter().enumerate() {
        let t = graph.flatten(&parts.locate(c));
        task_of[p] = t as u32;
        counts[t] += 1;
    }
    let mut starts = vec![0usize; n_tasks + 1];
    for t in 0..n_tasks {
        starts[t + 1] = starts[t] + counts[t];
    }
    let ranges: Vec<core::ops::Range<usize>> =
        (0..n_tasks).map(|t| starts[t]..starts[t + 1]).collect();
    let mut fill = starts.clone();
    let mut order = vec![0u32; coords.len()];
    for (p, &t) in task_of.iter().enumerate() {
        order[fill[t as usize]] = p as u32;
        fill[t as usize] += 1;
    }

    // Within-task tiled scan-line reorder (§III-D).
    if cfg.reorder {
        let tile = cfg.tile.max(1) as u32;
        for r in &ranges {
            order[r.clone()].sort_by_key(|&p| {
                let c = &coords[p as usize];
                let mut key_hi = 0u64;
                let mut key_lo = 0u64;
                for d in 0..D {
                    let cell = c[d] as u32;
                    key_hi = key_hi * 4096 + (cell / tile) as u64;
                    key_lo = key_lo * 4096 + cell as u64;
                }
                (key_hi, key_lo)
            });
        }
    }

    let permuted: Vec<[f32; D]> = order.iter().map(|&p| coords[p as usize]).collect();

    for (t, &c) in counts.iter().enumerate() {
        graph.set_weight(t, c as u64);
    }

    // Selective privatization (Eq. 6): threshold = M / (P · 2^{d+1}).
    let threshold = (coords.len() / (cfg.threads.max(1) * (1 << (D + 1)))).max(1);
    let mut regions: Vec<Option<Region<D>>> = vec![None; n_tasks];
    if cfg.privatization {
        for t in 0..n_tasks {
            if counts[t] > threshold {
                let idx_arr: [usize; D] = graph.unflatten(t).try_into().expect("dims match D");
                let (start, end) = parts.cell(&idx_arr);
                let mut origin = [0i32; D];
                let mut size = [0usize; D];
                let mut fits = true;
                for d in 0..D {
                    origin[d] = start[d] as i32 - wc as i32;
                    size[d] = end[d] - start[d] + 2 * wc;
                    // A halo wider than the grid would self-overlap under
                    // wrapping; skip privatization for such (tiny-grid)
                    // tasks.
                    if size[d] > m[d] {
                        fits = false;
                    }
                }
                if fits {
                    graph.set_privatized(t, true);
                    regions[t] = Some(Region { origin, size });
                }
            }
        }
    }

    Preprocess { parts, graph, order, ranges, coords: permuted, regions, threshold }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_coords(n: usize, m: usize) -> Vec<[f32; 2]> {
        (0..n)
            .map(|i| {
                let a = (i as f32 * 0.61803) % 1.0;
                let b = (i as f32 * 0.41421) % 1.0;
                [a * m as f32, b * m as f32]
            })
            .collect()
    }

    #[test]
    fn binning_is_complete_and_consistent() {
        let coords = demo_coords(500, 64);
        let cfg = PreprocessConfig { partitions_per_dim: 4, w: 2.0, ..Default::default() };
        let pre = preprocess(&coords, [64, 64], &cfg);
        // Permutation property.
        let mut seen = vec![false; 500];
        for &p in &pre.order {
            assert!(!seen[p as usize]);
            seen[p as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
        // Ranges tile 0..n and agree with weights.
        let mut total = 0;
        for (t, r) in pre.ranges.iter().enumerate() {
            assert_eq!(r.start, total);
            total = r.end;
            assert_eq!(pre.graph.weight(t), (r.end - r.start) as u64);
        }
        assert_eq!(total, 500);
        // Every sample's permuted coordinate lies in its task cell.
        for (t, r) in pre.ranges.iter().enumerate() {
            let idx: [usize; 2] = pre.graph.unflatten(t).try_into().unwrap();
            let (start, end) = pre.parts.cell(&idx);
            for i in r.clone() {
                let c = pre.coords[i];
                for d in 0..2 {
                    assert!(start[d] as f32 <= c[d] && c[d] < end[d] as f32);
                }
            }
        }
    }

    #[test]
    fn reorder_improves_sortedness_within_tasks() {
        let coords = demo_coords(2000, 128);
        let base = PreprocessConfig {
            partitions_per_dim: 2,
            w: 2.0,
            reorder: false,
            ..Default::default()
        };
        let no = preprocess(&coords, [128, 128], &base);
        let yes = preprocess(&coords, [128, 128], &PreprocessConfig { reorder: true, ..base });
        // Measure locality as the mean jump distance between consecutive
        // samples of a task.
        let jump = |pre: &Preprocess<2>| -> f64 {
            let mut acc = 0.0;
            let mut n = 0usize;
            for r in &pre.ranges {
                for i in r.start + 1..r.end {
                    let a = pre.coords[i - 1];
                    let b = pre.coords[i];
                    acc += ((a[0] - b[0]).abs() + (a[1] - b[1]).abs()) as f64;
                    n += 1;
                }
            }
            acc / n.max(1) as f64
        };
        assert!(
            jump(&yes) < 0.5 * jump(&no),
            "reorder should shrink consecutive-sample distance: {} vs {}",
            jump(&yes),
            jump(&no)
        );
    }

    #[test]
    fn privatization_marks_only_heavy_tasks() {
        // Concentrate samples in one cell.
        let mut coords = vec![[10.0f32, 10.0]; 900];
        for i in 0..100 {
            coords.push([((i * 7) % 64) as f32, ((i * 13) % 64) as f32]);
        }
        let cfg = PreprocessConfig {
            partitions_per_dim: 4,
            w: 2.0,
            threads: 4,
            privatization: true,
            ..Default::default()
        };
        let pre = preprocess(&coords, [64, 64], &cfg);
        assert!(pre.graph.num_privatized() >= 1);
        for t in 0..pre.graph.len() {
            if pre.graph.privatized(t) {
                assert!(pre.graph.weight(t) as usize > pre.threshold);
                let region = pre.regions[t].expect("privatized task has a region");
                // Region covers cell + halo.
                let idx: [usize; 2] = pre.graph.unflatten(t).try_into().unwrap();
                let (start, end) = pre.parts.cell(&idx);
                for d in 0..2 {
                    assert_eq!(region.origin[d], start[d] as i32 - 2);
                    assert_eq!(region.size[d], end[d] - start[d] + 4);
                }
            } else {
                assert!(pre.regions[t].is_none());
            }
        }
    }

    #[test]
    fn privatization_disabled_marks_nothing() {
        let coords = vec![[10.0f32, 10.0]; 1000];
        let cfg = PreprocessConfig {
            partitions_per_dim: 4,
            w: 2.0,
            privatization: false,
            ..Default::default()
        };
        let pre = preprocess(&coords, [64, 64], &cfg);
        assert_eq!(pre.graph.num_privatized(), 0);
    }

    #[test]
    fn windows_of_task_samples_stay_inside_region() {
        use crate::conv::Window;
        use crate::kernel::KbKernel;
        let coords = demo_coords(1500, 64);
        let cfg =
            PreprocessConfig { partitions_per_dim: 4, w: 2.0, threads: 16, ..Default::default() };
        let pre = preprocess(&coords, [64, 64], &cfg);
        let kernel = KbKernel::new(2.0, 2.0);
        let mut checked = 0;
        for t in 0..pre.graph.len() {
            let Some(region) = pre.regions[t] else { continue };
            for i in pre.ranges[t].clone() {
                let c = pre.coords[i];
                for d in 0..2 {
                    let w = Window::compute(c[d], 2.0, &kernel);
                    assert!(w.start >= region.origin[d], "tap below region");
                    assert!(
                        w.start + w.len as i32 <= region.origin[d] + region.size[d] as i32,
                        "tap above region"
                    );
                    checked += 1;
                }
            }
        }
        assert!(checked > 0, "no privatized samples checked");
    }

    #[test]
    #[should_panic(expected = "out of [0, 64)")]
    fn out_of_range_coordinates_rejected() {
        let coords = vec![[64.0f32, 0.0]];
        let _ = preprocess(&coords, [64, 64], &PreprocessConfig::default());
    }

    #[test]
    fn fixed_partitioning_path_works() {
        let coords = demo_coords(300, 64);
        let cfg = PreprocessConfig {
            partitions_per_dim: 4,
            w: 2.0,
            fixed_partitions: true,
            ..Default::default()
        };
        let pre = preprocess(&coords, [64, 64], &cfg);
        assert_eq!(pre.parts.counts(), [4, 4]);
        let widths: Vec<usize> = pre.parts.bounds(0).windows(2).map(|w| w[1] - w[0]).collect();
        assert!(widths.iter().all(|&w| w == 16));
    }
}
