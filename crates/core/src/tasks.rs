//! NUFFT preprocessing (§III-B, §III-D, Figure 14).
//!
//! Run once per trajectory and reused across every operator call:
//!
//! 1. partition the grid (variable- or fixed-width, [`crate::partition`]);
//! 2. bin samples into partition tasks (stable counting sort), then bin
//!    them again *within* each task by the grid tile containing their
//!    window footprint (the cuFINUFFT-style bin sort, [`SortMode`]) — a
//!    second stable counting sort keyed by scan-line tile id, ties broken
//!    by original sample index;
//! 3. build the cyclic Gray-code [`TaskGraph`] with task weights;
//! 4. apply the selective-privatization criterion (Eq. 6): tasks holding
//!    more than `total / (threads · 2^{d+1})` samples get a private halo
//!    buffer and a decoupled reduction.
//!
//! ## The determinism rule
//!
//! Adjoint scatters accumulate into shared grid cells, so their *visit
//! order* fixes the floating-point summation order. To keep operator
//! output bitwise-identical across sort modes, the **canonical scatter
//! visit order is always the tile-major order** — [`SortMode`] only
//! decides the *storage layout* (of `coords`, the window-table rows, and
//! the forward gather traversal). Under [`SortMode::TileMajor`] storage
//! *is* the canonical order and every hot loop streams sequentially;
//! under [`SortMode::None`] storage keeps the task-binned original order
//! and the scatter reaches canonical positions through the plan-time
//! [`Preprocess::scan`] indirection. Same arithmetic order either way ⇒
//! same bits, by construction (see DESIGN.md §14).

use crate::partition::Partitions;
use nufft_parallel::graph::TaskGraph;

/// Plan-time sample-ordering policy: whether the bin sort permutes the
/// internal sample storage into tile-major order.
///
/// Any mode produces bitwise-identical operator output (the scatter visit
/// order is canonical regardless — see the module docs); the mode trades
/// plan-time sorting work for per-apply memory locality.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SortMode {
    /// Task binning only: within a task, samples keep the caller's
    /// original relative order. The adjoint still visits canonically via
    /// an index indirection; the forward gather strides the grid in
    /// trajectory order. The A/B baseline (`benches/sort.rs`).
    None,
    /// Bin sort: storage is permuted to the canonical tile-major order,
    /// so window-table rows, coordinates and both conv drivers stream
    /// each grid tile once instead of revisiting it per random sample.
    TileMajor,
    /// Pick per trajectory, deterministically: ordered acquisitions
    /// (radial spokes, spirals) already step ~1 grid cell between
    /// consecutive samples and keep `None`; disordered ones (random,
    /// shuffled) get `TileMajor`. The decision is a pure function of the
    /// coordinates (mean consecutive-sample jump vs. the tile edge).
    #[default]
    Auto,
}

/// A privatized task's local buffer geometry: the task cell grown by the
/// kernel radius on every side, in *unwrapped* coordinates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region<const D: usize> {
    /// Unwrapped starting coordinate (can be negative).
    pub origin: [i32; D],
    /// Extent per dimension.
    pub size: [usize; D],
}

impl<const D: usize> Region<D> {
    /// Buffer length in elements.
    pub fn len(&self) -> usize {
        self.size.iter().product()
    }

    /// True for degenerate zero-size regions (never produced in practice).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Preprocessing knobs (a subset of the plan config).
#[derive(Clone, Copy, Debug)]
pub struct PreprocessConfig {
    /// Desired partitions per dimension (`P` in Figure 5).
    pub partitions_per_dim: usize,
    /// Kernel radius `W` — sets the minimum partition width `2⌈W⌉+1` and
    /// halo sizes.
    pub w: f64,
    /// Fixed- instead of variable-width partitioning (Figure 11 baseline).
    pub fixed_partitions: bool,
    /// Enable selective privatization (Eq. 6).
    pub privatization: bool,
    /// Worker count `P` used in the privatization threshold.
    pub threads: usize,
    /// Bin-sort policy for the internal sample layout.
    pub sort: SortMode,
    /// Tile edge (grid cells) for the bin sort — one tile should cover a
    /// few window footprints (the plan uses `⌈4W⌉`).
    pub tile: usize,
}

impl Default for PreprocessConfig {
    fn default() -> Self {
        PreprocessConfig {
            partitions_per_dim: 8,
            w: 4.0,
            fixed_partitions: false,
            privatization: true,
            threads: 1,
            sort: SortMode::Auto,
            tile: 16,
        }
    }
}

/// The reusable preprocessing product.
#[derive(Clone, Debug)]
pub struct Preprocess<const D: usize> {
    /// Partition boundaries.
    pub parts: Partitions<D>,
    /// Cyclic Gray-code dependency graph; weights are task sample counts.
    pub graph: TaskGraph,
    /// Permutation: internal (storage) position `i` holds original sample
    /// `order[i]`.
    pub order: Vec<u32>,
    /// Per task: the range of internal positions it owns (identical in
    /// storage and canonical order — both are task-binned).
    pub ranges: Vec<core::ops::Range<usize>>,
    /// Coordinates in internal storage order (grid units).
    pub coords: Vec<[f32; D]>,
    /// Per task: the privatized halo region, if selected.
    pub regions: Vec<Option<Region<D>>>,
    /// The Eq. 6 threshold used (samples per task).
    pub threshold: usize,
    /// The resolved sort mode (never [`SortMode::Auto`]).
    pub sort: SortMode,
    /// Canonical-order indirection: the `vi`-th canonically visited sample
    /// lives at storage position `scan[vi]`. `None` when storage already
    /// *is* the canonical order ([`SortMode::TileMajor`]).
    pub scan: Option<Vec<u32>>,
    /// Tile edge the bin sort used (grid cells).
    pub tile: usize,
    /// Tile re-entries (entering a grid tile already visited earlier) when
    /// walking samples in **storage** order — the forward gather's grid
    /// traversal. Plan-time constant; `benches/sort.rs` reports it.
    pub storage_revisits: u64,
    /// Tile re-entries when walking samples in **canonical** order — the
    /// adjoint scatter's grid traversal in every mode.
    pub canonical_revisits: u64,
}

impl<const D: usize> Preprocess<D> {
    /// Storage position of the `vi`-th sample in canonical visit order —
    /// the indirection every adjoint scatter loop goes through (identity
    /// under [`SortMode::TileMajor`]).
    #[inline]
    pub fn visit(&self, vi: usize) -> usize {
        match &self.scan {
            Some(s) => s[vi] as usize,
            None => vi,
        }
    }
}

/// Scan-line tile ids over the original coordinates: tile edge `tile`,
/// `⌈m_d/tile⌉` tiles per dimension.
fn tile_ids<const D: usize>(coords: &[[f32; D]], m: [usize; D], tile: usize) -> Vec<u32> {
    let mut tdims = [0usize; D];
    for d in 0..D {
        tdims[d] = m[d].div_ceil(tile);
    }
    coords
        .iter()
        .map(|c| {
            let mut id = 0usize;
            for d in 0..D {
                id = id * tdims[d] + ((c[d] as usize) / tile).min(tdims[d] - 1);
            }
            id as u32
        })
        .collect()
}

/// Tile re-entries of a sample walk: the number of transitions into a tile
/// that was already visited earlier in the walk. 0 for a perfect
/// tile-major walk over disjoint tiles; ~`len` for a shuffled one.
fn count_revisits(walk: &[u32], tile_id: &[u32], n_tiles: usize) -> u64 {
    let mut seen = vec![false; n_tiles];
    let mut cur = u32::MAX;
    let mut revisits = 0u64;
    for &p in walk {
        let t = tile_id[p as usize];
        if t != cur {
            if seen[t as usize] {
                revisits += 1;
            }
            seen[t as usize] = true;
            cur = t;
        }
    }
    revisits
}

/// Runs the full preprocessing pipeline.
///
/// `coords` are sample positions in oversampled-grid units `[0, M)` per
/// dimension.
///
/// # Panics
/// Panics if any coordinate is out of range or non-finite.
pub fn preprocess<const D: usize>(
    coords: &[[f32; D]],
    m: [usize; D],
    cfg: &PreprocessConfig,
) -> Preprocess<D> {
    let wc = cfg.w.ceil() as usize;
    let min_width = 2 * wc + 1;
    for (p, c) in coords.iter().enumerate() {
        for d in 0..D {
            assert!(
                c[d].is_finite() && c[d] >= 0.0 && c[d] < m[d] as f32,
                "sample {p} coordinate {} out of [0, {}) in dim {d}",
                c[d],
                m[d]
            );
        }
    }

    let parts = if cfg.fixed_partitions {
        Partitions::fixed(m, cfg.partitions_per_dim, min_width)
    } else {
        Partitions::variable(coords, m, cfg.partitions_per_dim, min_width)
    };
    let dims = parts.counts();
    let mut graph = TaskGraph::new_cyclic(&dims, &[true; D]);
    let n_tasks = graph.len();

    // Bin samples into tasks (counting sort, stable — within a task,
    // samples stay in original caller order).
    let mut task_of = vec![0u32; coords.len()];
    let mut counts = vec![0usize; n_tasks];
    for (p, c) in coords.iter().enumerate() {
        let t = graph.flatten(&parts.locate(c));
        task_of[p] = t as u32;
        counts[t] += 1;
    }
    let mut starts = vec![0usize; n_tasks + 1];
    for t in 0..n_tasks {
        starts[t + 1] = starts[t] + counts[t];
    }
    let ranges: Vec<core::ops::Range<usize>> =
        (0..n_tasks).map(|t| starts[t]..starts[t + 1]).collect();
    let mut fill = starts.clone();
    let mut order = vec![0u32; coords.len()];
    for (p, &t) in task_of.iter().enumerate() {
        order[fill[t as usize]] = p as u32;
        fill[t as usize] += 1;
    }

    // The canonical (tile-major) order: within each task, a second stable
    // counting sort keyed by scan-line tile id. Stability over the
    // already-stable task binning makes ties resolve by original sample
    // index, so the permutation is bitwise-deterministic — independent of
    // partition shape details, thread count, and sort mode.
    let tile = cfg.tile.max(1);
    let tile_id = tile_ids(coords, m, tile);
    let n_tiles: usize = m.iter().map(|&e| e.div_ceil(tile)).product();
    let mut canonical = order.clone();
    {
        let mut tile_counts = vec![0u32; n_tiles];
        let mut touched: Vec<u32> = Vec::new();
        let mut buf: Vec<u32> = Vec::new();
        for r in &ranges {
            if r.len() < 2 {
                continue;
            }
            touched.clear();
            for &p in &order[r.clone()] {
                let t = tile_id[p as usize] as usize;
                if tile_counts[t] == 0 {
                    touched.push(t as u32);
                }
                tile_counts[t] += 1;
            }
            touched.sort_unstable();
            let mut acc = r.start as u32;
            for &t in &touched {
                let c = tile_counts[t as usize];
                tile_counts[t as usize] = acc;
                acc += c;
            }
            buf.clear();
            buf.extend_from_slice(&order[r.clone()]);
            for &p in &buf {
                let t = tile_id[p as usize] as usize;
                canonical[tile_counts[t] as usize] = p;
                tile_counts[t] += 1;
            }
            for &t in &touched {
                tile_counts[t as usize] = 0;
            }
        }
    }

    // Resolve `Auto` from the trajectory itself: the mean Manhattan jump
    // (grid cells) between consecutive samples in caller order. Ordered
    // acquisitions step a fraction of a cell; shuffled/random ones jump
    // O(M). Half a tile edge separates the regimes (beyond it consecutive
    // samples typically straddle tiles), and the metric is a pure function
    // of the coordinates — same trajectory, same decision.
    let sort = match cfg.sort {
        SortMode::Auto => {
            let mut acc = 0.0f64;
            for w in coords.windows(2) {
                for d in 0..D {
                    acc += (w[1][d] - w[0][d]).abs() as f64;
                }
            }
            let mean = acc / coords.len().saturating_sub(1).max(1) as f64;
            if mean > tile as f64 / 2.0 {
                SortMode::TileMajor
            } else {
                SortMode::None
            }
        }
        explicit => explicit,
    };

    let canonical_revisits = count_revisits(&canonical, &tile_id, n_tiles);
    let (order, scan, storage_revisits) = match sort {
        SortMode::TileMajor => (canonical, None, canonical_revisits),
        _ => {
            let storage_revisits = count_revisits(&order, &tile_id, n_tiles);
            // scan[vi] = storage position of the vi-th canonical sample.
            let mut pos = vec![0u32; coords.len()];
            for (i, &p) in order.iter().enumerate() {
                pos[p as usize] = i as u32;
            }
            let scan: Vec<u32> = canonical.iter().map(|&p| pos[p as usize]).collect();
            (order, Some(scan), storage_revisits)
        }
    };

    let permuted: Vec<[f32; D]> = order.iter().map(|&p| coords[p as usize]).collect();

    for (t, &c) in counts.iter().enumerate() {
        graph.set_weight(t, c as u64);
    }

    // Selective privatization (Eq. 6): threshold = M / (P · 2^{d+1}).
    let threshold = (coords.len() / (cfg.threads.max(1) * (1 << (D + 1)))).max(1);
    let mut regions: Vec<Option<Region<D>>> = vec![None; n_tasks];
    if cfg.privatization {
        for t in 0..n_tasks {
            if counts[t] > threshold {
                let idx_arr: [usize; D] = graph.unflatten(t).try_into().expect("dims match D");
                let (start, end) = parts.cell(&idx_arr);
                let mut origin = [0i32; D];
                let mut size = [0usize; D];
                let mut fits = true;
                for d in 0..D {
                    origin[d] = start[d] as i32 - wc as i32;
                    size[d] = end[d] - start[d] + 2 * wc;
                    // A halo wider than the grid would self-overlap under
                    // wrapping; skip privatization for such (tiny-grid)
                    // tasks.
                    if size[d] > m[d] {
                        fits = false;
                    }
                }
                if fits {
                    graph.set_privatized(t, true);
                    regions[t] = Some(Region { origin, size });
                }
            }
        }
    }

    Preprocess {
        parts,
        graph,
        order,
        ranges,
        coords: permuted,
        regions,
        threshold,
        sort,
        scan,
        tile,
        storage_revisits,
        canonical_revisits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_coords(n: usize, m: usize) -> Vec<[f32; 2]> {
        (0..n)
            .map(|i| {
                let a = (i as f32 * 0.61803) % 1.0;
                let b = (i as f32 * 0.41421) % 1.0;
                [a * m as f32, b * m as f32]
            })
            .collect()
    }

    /// A scan-line-ordered (spectrally local) coordinate sweep.
    fn ordered_coords(n: usize, m: usize) -> Vec<[f32; 2]> {
        (0..n)
            .map(|i| {
                let t = i as f32 / n as f32;
                [(t * m as f32) % m as f32, ((t * m as f32 * 0.25) % m as f32)]
            })
            .collect()
    }

    #[test]
    fn binning_is_complete_and_consistent() {
        let coords = demo_coords(500, 64);
        let cfg = PreprocessConfig { partitions_per_dim: 4, w: 2.0, ..Default::default() };
        let pre = preprocess(&coords, [64, 64], &cfg);
        // Permutation property.
        let mut seen = vec![false; 500];
        for &p in &pre.order {
            assert!(!seen[p as usize]);
            seen[p as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
        // Ranges tile 0..n and agree with weights.
        let mut total = 0;
        for (t, r) in pre.ranges.iter().enumerate() {
            assert_eq!(r.start, total);
            total = r.end;
            assert_eq!(pre.graph.weight(t), (r.end - r.start) as u64);
        }
        assert_eq!(total, 500);
        // Every sample's permuted coordinate lies in its task cell.
        for (t, r) in pre.ranges.iter().enumerate() {
            let idx: [usize; 2] = pre.graph.unflatten(t).try_into().unwrap();
            let (start, end) = pre.parts.cell(&idx);
            for i in r.clone() {
                let c = pre.coords[i];
                for d in 0..2 {
                    assert!(start[d] as f32 <= c[d] && c[d] < end[d] as f32);
                }
            }
        }
    }

    #[test]
    fn tile_major_sort_improves_locality() {
        let coords = demo_coords(2000, 128);
        let base = PreprocessConfig {
            partitions_per_dim: 2,
            w: 2.0,
            sort: SortMode::None,
            ..Default::default()
        };
        let no = preprocess(&coords, [128, 128], &base);
        let yes = preprocess(
            &coords,
            [128, 128],
            &PreprocessConfig { sort: SortMode::TileMajor, ..base },
        );
        // Measure locality as the mean jump distance between consecutive
        // samples of a task, in storage order (the gather traversal).
        let jump = |pre: &Preprocess<2>| -> f64 {
            let mut acc = 0.0;
            let mut n = 0usize;
            for r in &pre.ranges {
                for i in r.start + 1..r.end {
                    let a = pre.coords[i - 1];
                    let b = pre.coords[i];
                    acc += ((a[0] - b[0]).abs() + (a[1] - b[1]).abs()) as f64;
                    n += 1;
                }
            }
            acc / n.max(1) as f64
        };
        assert!(
            jump(&yes) < 0.5 * jump(&no),
            "bin sort should shrink consecutive-sample distance: {} vs {}",
            jump(&yes),
            jump(&no)
        );
        // And the observable mirrors it: fewer tile re-entries in storage
        // order, while the canonical walk (shared) matches TileMajor's.
        assert!(yes.storage_revisits < no.storage_revisits / 2);
        assert_eq!(yes.storage_revisits, yes.canonical_revisits);
        assert_eq!(no.canonical_revisits, yes.canonical_revisits);
    }

    #[test]
    fn canonical_visit_order_is_sort_invariant() {
        // The determinism rule: both modes visit original samples in the
        // exact same (tile-major) sequence — None via `scan`, TileMajor
        // directly — so adjoint accumulation order is identical.
        let coords = demo_coords(800, 64);
        let base = PreprocessConfig {
            partitions_per_dim: 3,
            w: 2.0,
            sort: SortMode::None,
            ..Default::default()
        };
        let none = preprocess(&coords, [64, 64], &base);
        let tm =
            preprocess(&coords, [64, 64], &PreprocessConfig { sort: SortMode::TileMajor, ..base });
        assert_eq!(none.sort, SortMode::None);
        assert_eq!(tm.sort, SortMode::TileMajor);
        assert!(none.scan.is_some(), "None mode scatters through the indirection");
        assert!(tm.scan.is_none(), "TileMajor storage is canonical already");
        for vi in 0..coords.len() {
            assert_eq!(
                none.order[none.visit(vi)],
                tm.order[tm.visit(vi)],
                "visit sequence diverged at position {vi}"
            );
        }
        // The scan stays inside each task's range: task boundaries are
        // preserved by the within-task sort.
        let scan = none.scan.as_ref().unwrap();
        for r in &none.ranges {
            for vi in r.clone() {
                assert!(r.contains(&(scan[vi] as usize)), "scan escaped its task range");
            }
        }
    }

    #[test]
    fn tile_sort_is_stable_by_original_index() {
        let coords = demo_coords(1200, 96);
        let cfg = PreprocessConfig {
            partitions_per_dim: 2,
            w: 2.0,
            sort: SortMode::TileMajor,
            ..Default::default()
        };
        let pre = preprocess(&coords, [96, 96], &cfg);
        let ids = tile_ids(&coords, [96, 96], pre.tile);
        for r in &pre.ranges {
            for i in r.start + 1..r.end {
                let (pa, pb) = (pre.order[i - 1], pre.order[i]);
                let (ta, tb) = (ids[pa as usize], ids[pb as usize]);
                assert!(ta <= tb, "tile ids must be non-decreasing within a task");
                if ta == tb {
                    assert!(pa < pb, "ties must keep original sample order");
                }
            }
        }
    }

    #[test]
    fn auto_resolves_by_trajectory_disorder() {
        let cfg = PreprocessConfig { partitions_per_dim: 2, w: 2.0, ..Default::default() };
        assert_eq!(cfg.sort, SortMode::Auto);
        let ordered = preprocess(&ordered_coords(2000, 128), [128, 128], &cfg);
        assert_eq!(ordered.sort, SortMode::None, "sequential sweep stays unsorted");
        let shuffled = preprocess(&demo_coords(2000, 128), [128, 128], &cfg);
        assert_eq!(shuffled.sort, SortMode::TileMajor, "golden-ratio hops get the bin sort");
    }

    #[test]
    fn privatization_marks_only_heavy_tasks() {
        // Concentrate samples in one cell.
        let mut coords = vec![[10.0f32, 10.0]; 900];
        for i in 0..100 {
            coords.push([((i * 7) % 64) as f32, ((i * 13) % 64) as f32]);
        }
        let cfg = PreprocessConfig {
            partitions_per_dim: 4,
            w: 2.0,
            threads: 4,
            privatization: true,
            ..Default::default()
        };
        let pre = preprocess(&coords, [64, 64], &cfg);
        assert!(pre.graph.num_privatized() >= 1);
        for t in 0..pre.graph.len() {
            if pre.graph.privatized(t) {
                assert!(pre.graph.weight(t) as usize > pre.threshold);
                let region = pre.regions[t].expect("privatized task has a region");
                // Region covers cell + halo.
                let idx: [usize; 2] = pre.graph.unflatten(t).try_into().unwrap();
                let (start, end) = pre.parts.cell(&idx);
                for d in 0..2 {
                    assert_eq!(region.origin[d], start[d] as i32 - 2);
                    assert_eq!(region.size[d], end[d] - start[d] + 4);
                }
            } else {
                assert!(pre.regions[t].is_none());
            }
        }
    }

    #[test]
    fn privatization_disabled_marks_nothing() {
        let coords = vec![[10.0f32, 10.0]; 1000];
        let cfg = PreprocessConfig {
            partitions_per_dim: 4,
            w: 2.0,
            privatization: false,
            ..Default::default()
        };
        let pre = preprocess(&coords, [64, 64], &cfg);
        assert_eq!(pre.graph.num_privatized(), 0);
    }

    #[test]
    fn windows_of_task_samples_stay_inside_region() {
        use crate::conv::Window;
        use crate::kernel::InterpKernel;
        let coords = demo_coords(1500, 64);
        let cfg =
            PreprocessConfig { partitions_per_dim: 4, w: 2.0, threads: 16, ..Default::default() };
        let pre = preprocess(&coords, [64, 64], &cfg);
        let kernel = InterpKernel::new(2.0, 2.0);
        let mut checked = 0;
        for t in 0..pre.graph.len() {
            let Some(region) = pre.regions[t] else { continue };
            for i in pre.ranges[t].clone() {
                let c = pre.coords[i];
                for d in 0..2 {
                    let w = Window::compute(c[d], 2.0, &kernel);
                    assert!(w.start >= region.origin[d], "tap below region");
                    assert!(
                        w.start + w.len as i32 <= region.origin[d] + region.size[d] as i32,
                        "tap above region"
                    );
                    checked += 1;
                }
            }
        }
        assert!(checked > 0, "no privatized samples checked");
    }

    #[test]
    #[should_panic(expected = "out of [0, 64)")]
    fn out_of_range_coordinates_rejected() {
        let coords = vec![[64.0f32, 0.0]];
        let _ = preprocess(&coords, [64, 64], &PreprocessConfig::default());
    }

    #[test]
    fn fixed_partitioning_path_works() {
        let coords = demo_coords(300, 64);
        let cfg = PreprocessConfig {
            partitions_per_dim: 4,
            w: 2.0,
            fixed_partitions: true,
            ..Default::default()
        };
        let pre = preprocess(&coords, [64, 64], &cfg);
        assert_eq!(pre.parts.counts(), [4, 4]);
        let widths: Vec<usize> = pre.parts.bounds(0).windows(2).map(|w| w[1] - w[0]).collect();
        assert!(widths.iter().all(|&w| w == 16));
    }
}
