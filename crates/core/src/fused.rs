//! Fused whole-transform task graphs (the tentpole of the barrier-free
//! pipeline).
//!
//! The phased pipeline runs an operator as scale → per-axis FFT →
//! convolution with an executor-level join after every stage — `D + 2`
//! stragglers' worth of idle time per apply. This module builds, once at
//! plan time, a single heterogeneous [`Dag`] whose nodes cover *every*
//! phase of an operator and whose edges are the actual data dependencies
//! between them, so one `run_dag_reuse` dispatch replaces all the joins:
//!
//! * **`Scale`** (forward) — one contiguous grid *slab* per node per
//!   channel, filled with the inverse-embed map (zero outside the image,
//!   `image·scale` inside) so no separate zeroing pass exists;
//! * **`Zero`** (adjoint) — one grid slab per node, zeroed across all
//!   channels;
//! * **`Fft`** — a run of consecutive SIMD tiles of one axis of one
//!   channel (the same tile/grain decomposition the phased
//!   [`crate::stage::FftOp`] shards, hoisted into the plan-owned
//!   [`TilePlan`]);
//! * **`Conv`/`Priv`/`Reduce`** — the adjoint scatter tasks with their
//!   Gray-code exclusion edges carried over verbatim, privatized tasks
//!   split into a dependency-free `Priv` convolve and a `Reduce` that
//!   inherits the edges (exactly the phased protocol, now as two plain
//!   nodes joined by an edge);
//! * **`Gather`** (forward) — a chunk of one task's samples (so a chunk's
//!   kernel windows stay inside that task's halo box);
//! * **`Extract`** (adjoint) — a contiguous image chunk.
//!
//! ## Per-stage fragments
//!
//! Each stage operator contributes its node set through one `emit_*`
//! fragment function and its data dependencies through one `connect_*`
//! function; the whole-operator builders ([`build_forward`],
//! [`build_adjoint`], [`build_spread`]) are thin compositions of those
//! fragments instead of bespoke compilers. The spread-only graph is the
//! adjoint's zero + scatter fragments with nothing downstream — same node
//! bodies, same exclusion edges, so it stays bitwise-equal to the phased
//! spread.
//!
//! ## Edge construction
//!
//! Edges are exact at the node granularity (conservative only up to
//! chunking):
//!
//! * slab → first-axis FFT: a tile chunk depends on the slabs containing
//!   its elements (`elem / slab_len`, deduplicated with a stamp array);
//! * axis *k−1* → axis *k*: a chunk depends on the previous-axis chunks
//!   whose tiles wrote its elements, via
//!   [`FftNd::tile_of_element`]/[`FftNd::for_each_tile_element`] — O(grid)
//!   per axis, not all-to-all, wherever the layout permits fewer edges;
//! * conv → first-axis FFT and last-axis FFT → gather: a task's halo box
//!   (cell ± ⌈W⌉, wrapped) is walked as contiguous last-dimension runs and
//!   mapped to tile chunks;
//! * last-axis FFT → extract: each image chunk's wrapped grid positions
//!   map to last-axis tiles.
//!
//! In the adjoint, `Zero → Fft` edges are intentionally omitted: partition
//! cells tile the grid and every task's box contains its cell, so for any
//! element `e` the chain `Zero(slab(e)) → Conv(cell_task(e)) →
//! Fft(chunk(e))` already orders the zeroing before the first FFT read —
//! the covering argument in DESIGN.md §12.
//!
//! ## Why this preserves bitwise output
//!
//! Per-element arithmetic is schedule-independent everywhere except the
//! adjoint scatter, where the summation *order* on shared grid cells is
//! fixed by the Gray-code edges (adjacent tasks are totally ordered, and
//! the direction of each edge — not the schedule — decides who goes
//! first). Those edges are copied into the fused graph unchanged, every
//! node kind executes the identical code the phased drivers run, and the
//! slab/chunk decompositions partition their domains; so fused output is
//! bitwise equal to phased output at any thread count, backend and ISA —
//! pinned by `tests/scheduler_consistency.rs`.

use crate::grid::Geometry;
use crate::tasks::Preprocess;
use nufft_fft::FftNd;
use nufft_math::Complex32;
use nufft_parallel::exec::DagRunStats;
use nufft_parallel::graph::{Dag, DagBuilder, NodeId};

/// Complex elements per 64-byte cache line (slab/chunk boundaries are
/// rounded to this so two nodes never split a line of contiguous output).
const LANE_ALIGN: usize = 64 / core::mem::size_of::<Complex32>();

/// Relative priority weight of one sample convolution vs one grid-element
/// touch (a `W`-wide window does ~(2W+1)^D multiply-adds).
const W_SAMPLE: u64 = 32;

/// Node kinds, packed into the tag's top byte.
pub const KIND_SCALE: u8 = 0;
/// Adjoint grid-zeroing slab (all channels).
pub const KIND_ZERO: u8 = 1;
/// A run of consecutive FFT tiles of one axis of one channel.
pub const KIND_FFT: u8 = 2;
/// A non-privatized adjoint scatter task (Gray-code exclusion edges).
pub const KIND_CONV: u8 = 3;
/// A privatized task's convolve into its private buffer (no deps).
pub const KIND_PRIV: u8 = 4;
/// A privatized task's reduction into the shared grids.
pub const KIND_REDUCE: u8 = 5;
/// A chunk of one task's samples gathered from the spectra.
pub const KIND_GATHER: u8 = 6;
/// A contiguous image chunk of the adjoint's final extract.
pub const KIND_EXTRACT: u8 = 7;
/// A four-step sub-FFT shard: one column group of a run of tiles on a
/// four-step axis (pass 1; reads the grid, writes the `fs` intermediate).
pub const KIND_FFT_SUB: u8 = 8;
/// A four-step transpose-and-combine shard: one k-block of a run of tiles
/// (pass 2; reads `fs`, writes the finished spectrum back to the grid).
pub const KIND_FFT_TRN: u8 = 9;

/// Packs `(kind, axis, channel, index)` into an opaque node tag.
pub fn tag(kind: u8, axis: usize, channel: usize, index: usize) -> u64 {
    debug_assert!(axis < 256 && channel < 65536 && index <= u32::MAX as usize);
    ((kind as u64) << 56) | ((axis as u64) << 48) | ((channel as u64) << 32) | index as u64
}

/// The kind byte of a node tag.
pub fn kind_of(tag: u64) -> u8 {
    (tag >> 56) as u8
}

/// The FFT axis of a node tag (meaningful for [`KIND_FFT`]).
pub fn axis_of(tag: u64) -> usize {
    ((tag >> 48) & 0xFF) as usize
}

/// The channel of a node tag.
pub fn channel_of(tag: u64) -> usize {
    ((tag >> 32) & 0xFFFF) as usize
}

/// The kind-specific index of a node tag (slab, chunk, or task id).
pub fn index_of(tag: u64) -> usize {
    (tag & 0xFFFF_FFFF) as usize
}

/// Short kind name for traces and diagnostics.
pub fn kind_name(kind: u8) -> &'static str {
    match kind {
        KIND_SCALE => "scale",
        KIND_ZERO => "zero",
        KIND_FFT => "fft",
        KIND_CONV => "conv",
        KIND_PRIV => "priv",
        KIND_REDUCE => "reduce",
        KIND_GATHER => "gather",
        KIND_EXTRACT => "extract",
        KIND_FFT_SUB => "fft_sub",
        KIND_FFT_TRN => "fft_trn",
        _ => "?",
    }
}

/// The phase index a node would occupy in the *phased* schedule — used by
/// `nufft-sim` to replay the same node set with barriers between phases
/// and measure what the fusion buys.
///
/// Forward: scale = 0, FFT axis k = 1+k, gather = 1+D.
/// Adjoint: zero = 0, conv/priv/reduce = 1, FFT axis k = 2+k,
/// extract = 2+D.
pub fn node_phase(tag: u64, adjoint: bool, ndim: usize) -> usize {
    match kind_of(tag) {
        KIND_SCALE | KIND_ZERO => 0,
        KIND_CONV | KIND_PRIV | KIND_REDUCE => 1,
        KIND_FFT | KIND_FFT_SUB | KIND_FFT_TRN => axis_of(tag) + if adjoint { 2 } else { 1 },
        KIND_GATHER => 1 + ndim,
        KIND_EXTRACT => 2 + ndim,
        _ => unreachable!("unknown node kind"),
    }
}

/// Plan-owned FFT tile decomposition: per axis, the tile count at the
/// plan's batch width and the chunk grain the executor shards — computed
/// once at construction instead of on every apply (and per channel in the
/// batched adjoint, as the phased path used to).
#[derive(Clone, Debug)]
pub(crate) struct TilePlan {
    /// Lines per tile (the SIMD batch width at plan-build time).
    pub(crate) b: usize,
    /// `parallel_for` chunk alignment for the phased path.
    pub(crate) align: usize,
    pub(crate) axes: Vec<AxisPlan>,
}

#[derive(Clone, Copy, Debug)]
pub(crate) struct AxisPlan {
    /// Tiles of width `b` along this axis.
    pub(crate) tiles: usize,
    /// Tiles per executor chunk (and per fused FFT node).
    pub(crate) grain: usize,
    /// Four-step shard counts `(col_groups, k_blocks)` per tile chunk, or
    /// `None` for the recursive tile path. When set, a chunk splits into
    /// `col_groups` sub-FFT nodes followed by `k_blocks` combine nodes
    /// instead of one [`KIND_FFT`] node.
    pub(crate) shards: Option<(usize, usize)>,
}

impl TilePlan {
    pub(crate) fn new(fft: &FftNd, threads: usize) -> Self {
        let b = FftNd::batch_width();
        let align = (LANE_ALIGN / b).max(1);
        let axes = (0..fft.ndim())
            .map(|axis| {
                let tiles = fft.num_tiles(axis, b);
                // ~4 chunks per worker for stealable slack, capped so one
                // chunk never dominates an axis.
                let grain = (tiles / (4 * threads)).clamp(1, 64);
                let shards = if fft.axis_fourstep(axis) {
                    Some((fft.fs_col_groups(axis, b), fft.fs_k_blocks(axis)))
                } else {
                    None
                };
                AxisPlan { tiles, grain, shards }
            })
            .collect();
        TilePlan { b, align, axes }
    }

    /// Fused FFT tile chunks along `axis` (the [`KIND_FFT`] node count on a
    /// recursive axis; four-step axes split each chunk into shards).
    pub(crate) fn nodes(&self, axis: usize) -> usize {
        self.axes[axis].tiles.div_ceil(self.axes[axis].grain)
    }

    /// Nodes whose input is the axis's *untransformed* grid data: tile
    /// chunks on a recursive axis, chunk × column-group sub-FFT shards on a
    /// four-step one. Producers of the axis's elements wire edges to these.
    pub(crate) fn entry_shards(&self, axis: usize) -> usize {
        self.nodes(axis) * self.axes[axis].shards.map_or(1, |(colg, _)| colg)
    }

    /// Nodes that write the axis's *finished* spectrum: tile chunks on a
    /// recursive axis, chunk × k-block combine shards on a four-step one.
    /// Consumers of the axis's elements wire edges from these.
    pub(crate) fn writer_shards(&self, axis: usize) -> usize {
        self.nodes(axis) * self.axes[axis].shards.map_or(1, |(_, kbg)| kbg)
    }
}

/// The entry-shard id (see [`TilePlan::entry_shards`]) whose read set
/// contains `elem` on `axis`.
fn entry_shard_of(fft: &FftNd, tp: &TilePlan, axis: usize, elem: usize) -> usize {
    let ap = &tp.axes[axis];
    let chunk = fft.tile_of_element(axis, elem, tp.b) / ap.grain;
    match ap.shards {
        Some((colg, _)) => chunk * colg + fft.fs_col_group_of_element(axis, elem, tp.b),
        None => chunk,
    }
}

/// The writer-shard id (see [`TilePlan::writer_shards`]) that writes `elem`
/// on `axis`.
fn writer_shard_of(fft: &FftNd, tp: &TilePlan, axis: usize, elem: usize) -> usize {
    let ap = &tp.axes[axis];
    let chunk = fft.tile_of_element(axis, elem, tp.b) / ap.grain;
    match ap.shards {
        Some((_, kbg)) => chunk * kbg + fft.fs_kblock_of_element(axis, elem),
        None => chunk,
    }
}

/// A fused operator graph plus the lookup tables its nodes execute from.
pub(crate) struct FusedApply {
    pub(crate) dag: Dag,
    /// Gather chunk sample ranges `[lo, hi)` in internal order (forward
    /// graphs only; indexed by a `KIND_GATHER` node's tag index).
    pub(crate) chunks: Vec<(u32, u32)>,
    /// Grid elements per `Scale`/`Zero` slab.
    pub(crate) slab: usize,
    /// Image elements per `Extract` chunk (adjoint graphs only).
    pub(crate) img_chunk: usize,
}

/// Sizes a contiguous domain decomposition: ~8 pieces per worker, aligned
/// to cache lines, never zero.
fn piece_len(total: usize, threads: usize) -> usize {
    total.div_ceil((threads * 8).max(1)).next_multiple_of(LANE_ALIGN).max(LANE_ALIGN)
}

/// Stamp-array deduplicator: `hit` returns true the first time `id` is
/// seen since the last `next`.
struct Stamp {
    marks: Vec<u32>,
    cur: u32,
}

impl Stamp {
    fn new(n: usize) -> Self {
        Stamp { marks: vec![u32::MAX; n], cur: 0 }
    }

    fn next(&mut self) {
        self.cur = self.cur.checked_add(1).expect("stamp counter overflow");
    }

    fn hit(&mut self, id: usize) -> bool {
        if self.marks[id] != self.cur {
            self.marks[id] = self.cur;
            true
        } else {
            false
        }
    }
}

/// Walks a task's wrapped halo box as contiguous last-dimension runs,
/// calling `f(flat_start, len)` for each. `lo` is the unwrapped box origin
/// (may be negative), `len` its extent per dimension (≤ `m[d]` — capped by
/// the caller, so wrapped coordinates never self-overlap).
fn for_each_box_run<const D: usize>(
    m: &[usize; D],
    gs: &[usize; D],
    lo: &[i32; D],
    len: &[usize; D],
    mut f: impl FnMut(usize, usize),
) {
    let dl = D - 1;
    let mut off = [0usize; D];
    loop {
        let mut base = 0usize;
        for d in 0..dl {
            base += (lo[d] + off[d] as i32).rem_euclid(m[d] as i32) as usize * gs[d];
        }
        // Runs along the last dimension: at most two after wrapping.
        let start = lo[dl].rem_euclid(m[dl] as i32) as usize;
        let l = len[dl];
        if start + l <= m[dl] {
            f(base + start, l);
        } else {
            f(base + start, m[dl] - start);
            f(base, start + l - m[dl]);
        }
        // Odometer over the prefix dimensions.
        let mut d = dl;
        let mut carried = true;
        while d > 0 {
            d -= 1;
            off[d] += 1;
            if off[d] < len[d] {
                carried = false;
                break;
            }
            off[d] = 0;
        }
        if carried {
            return;
        }
    }
}

/// A task's halo box (cell ± ⌈W⌉), extents capped at the grid so wrapped
/// coordinates stay distinct.
fn task_box<const D: usize>(
    pre: &Preprocess<D>,
    m: &[usize; D],
    wc: usize,
    t: usize,
) -> ([i32; D], [usize; D]) {
    let idx: [usize; D] = pre.graph.unflatten(t).try_into().expect("dims match D");
    let (start, end) = pre.parts.cell(&idx);
    let mut lo = [0i32; D];
    let mut len = [0usize; D];
    for d in 0..D {
        lo[d] = start[d] as i32 - wc as i32;
        len[d] = (end[d] - start[d] + 2 * wc).min(m[d]);
    }
    (lo, len)
}

/// Approximate element count of FFT tile-chunk `[t0, t1)` on `axis` — the
/// node's priority weight.
fn fft_chunk_weight(fft: &FftNd, axis: usize, t0: usize, t1: usize, b: usize) -> u64 {
    let n = fft.shape()[axis];
    let lines = if fft.axis_stride(axis) == 1 { 1 } else { b };
    // ~log-factor work per element folded into a flat 4.
    (4 * n * lines * (t1 - t0)) as u64
}

/// Emits the FFT node run of one `(channel, axis)` pair, plus — on a
/// four-step axis — the intra-axis sub → combine edges. Returns the
/// `(entry, writer)` node bases: producers of the axis's elements wire to
/// `entry + entry_shard_of(..)`, consumers wire from
/// `writer + writer_shard_of(..)` (the same base on a recursive axis).
///
/// A four-step chunk's combine shards each read every block of the chunk's
/// `fs` region, and the chunk's sub-FFT shards together write exactly that
/// region — so the intra-chunk wiring is complete bipartite and no
/// cross-chunk edges exist (shards never straddle a tile chunk).
fn add_axis_nodes(
    builder: &mut DagBuilder,
    fft: &FftNd,
    tp: &TilePlan,
    axis: usize,
    c: usize,
) -> (NodeId, NodeId) {
    let ap = &tp.axes[axis];
    let chunks = tp.nodes(axis);
    let chunk_weight = |k: usize| {
        let t0 = k * ap.grain;
        let t1 = (t0 + ap.grain).min(ap.tiles);
        fft_chunk_weight(fft, axis, t0, t1, tp.b)
    };
    match ap.shards {
        None => {
            let base = builder.len() as NodeId;
            for k in 0..chunks {
                builder.add_node(tag(KIND_FFT, axis, c, k), chunk_weight(k));
            }
            (base, base)
        }
        Some((colg, kbg)) => {
            let sub = builder.len() as NodeId;
            for k in 0..chunks {
                let w = (chunk_weight(k) / colg as u64).max(1);
                for cg in 0..colg {
                    builder.add_node(tag(KIND_FFT_SUB, axis, c, k * colg + cg), w);
                }
            }
            let trn = builder.len() as NodeId;
            for k in 0..chunks {
                let w = (chunk_weight(k) / kbg as u64).max(1);
                for kb in 0..kbg {
                    builder.add_node(tag(KIND_FFT_TRN, axis, c, k * kbg + kb), w);
                }
            }
            for k in 0..chunks {
                for cg in 0..colg {
                    for kb in 0..kbg {
                        builder.add_edge(
                            sub + (k * colg + cg) as NodeId,
                            trn + (k * kbg + kb) as NodeId,
                        );
                    }
                }
            }
            (sub, trn)
        }
    }
}

/// Emits `writer → axis entry` edges for every channel: for each entry
/// shard of `axis` (tile chunk, or chunk × column group on a four-step
/// axis), the deduplicated set of writer ids under `writer_of(elem)` over
/// the shard's read set. `writer_node(c, id)` and `entry_node(c, shard)`
/// map to node ids.
#[allow(clippy::too_many_arguments)]
fn connect_axis_inputs(
    builder: &mut DagBuilder,
    fft: &FftNd,
    tp: &TilePlan,
    axis: usize,
    channels: usize,
    stamp: &mut Stamp,
    mut writer_of: impl FnMut(usize) -> usize,
    writer_node: impl Fn(usize, usize) -> NodeId,
    entry_node: impl Fn(usize, usize) -> NodeId,
) {
    let ap = &tp.axes[axis];
    let colg = ap.shards.map_or(1, |(colg, _)| colg);
    for chunk in 0..tp.nodes(axis) {
        let t0 = chunk * ap.grain;
        let t1 = (t0 + ap.grain).min(ap.tiles);
        for cg in 0..colg {
            stamp.next();
            let shard = chunk * colg + cg;
            for tile in t0..t1 {
                if ap.shards.is_some() {
                    fft.for_each_fs_col_element(axis, tile, cg, tp.b, |e| {
                        let w = writer_of(e);
                        if stamp.hit(w) {
                            for c in 0..channels {
                                builder.add_edge(writer_node(c, w), entry_node(c, shard));
                            }
                        }
                    });
                } else {
                    fft.for_each_tile_element(axis, tile, tp.b, |e| {
                        let w = writer_of(e);
                        if stamp.hit(w) {
                            for c in 0..channels {
                                builder.add_edge(writer_node(c, w), entry_node(c, shard));
                            }
                        }
                    });
                }
            }
        }
    }
}

/// Rewrites every node's scheduling priority to be **phase-major**:
/// `(phases_remaining << 48) | work`, so the ready queue pops the oldest
/// phase first and the heaviest node within a phase. This changes nothing
/// about readiness — a worker still takes newer-phase work whenever no
/// older-phase node is ready, so the graph stays barrier-free — but at low
/// parallelism it keeps the grid traversal streaming phase-by-phase
/// (axis-by-axis for the FFT) instead of ping-ponging a larger-than-cache
/// grid between phases. Weights are untouched: cost models
/// (`nufft_sim::DagCostModel`) keep reading real work estimates.
fn apply_phase_priorities(builder: &mut DagBuilder, adjoint: bool, ndim: usize) {
    let last_phase = (if adjoint { 2 + ndim } else { 1 + ndim }) as u64;
    const WORK_MASK: u64 = (1 << 48) - 1;
    for v in 0..builder.len() as u32 {
        let phase = node_phase(builder.node_tag(v), adjoint, ndim) as u64;
        let work = builder.node_weight(v).min(WORK_MASK);
        builder.set_priority(v, ((last_phase - phase) << 48) | work);
    }
}

// ---------------------------------------------------------------------------
// Per-stage DAG fragments
// ---------------------------------------------------------------------------

/// Scale-stage fragment (forward embed): one slab run per channel.
/// Returns the per-channel node bases.
fn emit_scale_fragment(
    builder: &mut DagBuilder,
    grid_len: usize,
    slab: usize,
    channels: usize,
) -> Vec<NodeId> {
    let nslabs = grid_len.div_ceil(slab);
    (0..channels)
        .map(|c| {
            let base = builder.len() as NodeId;
            for s in 0..nslabs {
                let elems = (grid_len - s * slab).min(slab);
                builder.add_node(tag(KIND_SCALE, 0, c, s), elems as u64);
            }
            base
        })
        .collect()
}

/// Zero-stage fragment (adjoint grid clear): one slab run, each node
/// zeroing every channel's slab. Returns the node base.
fn emit_zero_fragment(
    builder: &mut DagBuilder,
    grid_len: usize,
    slab: usize,
    channels: usize,
) -> NodeId {
    let nslabs = grid_len.div_ceil(slab);
    let base = builder.len() as NodeId;
    for s in 0..nslabs {
        let elems = (grid_len - s * slab).min(slab);
        builder.add_node(tag(KIND_ZERO, 0, 0, s), (elems * channels) as u64);
    }
    base
}

/// Spread-stage fragment (adjoint scatter): privatized tasks as a
/// `(Priv → Reduce)` pair, others as a single `Conv` node, plus the
/// Gray-code exclusion edges **verbatim** — this is what fixes the
/// per-cell summation order and hence bitwise output. Returns
/// `conv_shared[t]`, the node carrying task `t`'s shared-grid writes (and
/// hence its ordering edges).
fn emit_spread_fragment<const D: usize>(
    builder: &mut DagBuilder,
    pre: &Preprocess<D>,
    channels: usize,
) -> Vec<NodeId> {
    let graph = &pre.graph;
    let mut conv_shared: Vec<NodeId> = Vec::with_capacity(graph.len());
    for t in 0..graph.len() {
        let samples = (pre.ranges[t].end - pre.ranges[t].start) as u64;
        if let Some(region) = pre.regions[t] {
            let p = builder.add_node(tag(KIND_PRIV, 0, 0, t), samples * W_SAMPLE);
            let r = builder.add_node(tag(KIND_REDUCE, 0, 0, t), (region.len() * channels) as u64);
            builder.add_edge(p, r);
            conv_shared.push(r);
        } else {
            conv_shared.push(builder.add_node(tag(KIND_CONV, 0, 0, t), samples * W_SAMPLE));
        }
    }
    for t in 0..graph.len() {
        for p in graph.preds(t) {
            builder.add_edge(conv_shared[p], conv_shared[t]);
        }
    }
    conv_shared
}

/// FFT-stage fragment: per-channel, per-axis node runs (with the
/// four-step sub → combine intra-axis edges). Returns the
/// `(entry, writer)` bases indexed `[channel][axis]`.
fn emit_fft_fragment(
    builder: &mut DagBuilder,
    fft: &FftNd,
    tp: &TilePlan,
    ndim: usize,
    channels: usize,
) -> Vec<Vec<(NodeId, NodeId)>> {
    (0..channels)
        .map(|c| (0..ndim).map(|axis| add_axis_nodes(builder, fft, tp, axis, c)).collect())
        .collect()
}

/// Interp-stage fragment (forward gather): chunks of one task's samples,
/// shared across channels. Chunk boundaries land on cache-line multiples
/// (`order` is near-identity within a task) and never cross a task
/// boundary, so a chunk's windows stay inside its task's halo box.
/// Returns `(node base, chunk sample ranges, chunk ids per task)`.
fn emit_interp_fragment<const D: usize>(
    builder: &mut DagBuilder,
    pre: &Preprocess<D>,
    gather_grain: usize,
) -> (NodeId, Vec<(u32, u32)>, Vec<core::ops::Range<usize>>) {
    let base = builder.len() as NodeId;
    let mut chunks: Vec<(u32, u32)> = Vec::new();
    let mut task_chunks: Vec<core::ops::Range<usize>> = Vec::with_capacity(pre.graph.len());
    for r in &pre.ranges {
        let first = chunks.len();
        let mut lo = r.start;
        while lo < r.end {
            let hi = (lo + gather_grain).next_multiple_of(LANE_ALIGN).min(r.end);
            builder.add_node(tag(KIND_GATHER, 0, 0, chunks.len()), (hi - lo) as u64 * W_SAMPLE);
            chunks.push((lo as u32, hi as u32));
            lo = hi;
        }
        task_chunks.push(first..chunks.len());
    }
    (base, chunks, task_chunks)
}

/// Deconvolve-stage fragment (adjoint extract): per-channel contiguous
/// image chunks. Returns the per-channel node bases.
fn emit_extract_fragment(
    builder: &mut DagBuilder,
    image_len: usize,
    img_chunk: usize,
    channels: usize,
) -> Vec<NodeId> {
    let nchunks = image_len.div_ceil(img_chunk);
    (0..channels)
        .map(|c| {
            let base = builder.len() as NodeId;
            for k in 0..nchunks {
                let elems = (image_len - k * img_chunk).min(img_chunk);
                builder.add_node(tag(KIND_EXTRACT, 0, c, k), elems as u64);
            }
            base
        })
        .collect()
}

/// The downstream-FFT wiring of [`connect_spread_edges`]: which axis-0
/// entry nodes each scatter task must precede (absent in the spread-only
/// graph).
struct Axis0Wiring<'a> {
    fft: &'a FftNd,
    tp: &'a TilePlan,
    fft_base: &'a [Vec<(NodeId, NodeId)>],
    channels: usize,
}

/// Wires the spread fragment's inputs and outputs in one halo-box pass per
/// task: `zero slab → conv` (a task reads-modifies-writes its box) and —
/// when an FFT stage follows — `conv → axis-0 entry` for the chunks
/// covering the box. `Zero → Fft` is transitively covered (see module
/// docs).
#[allow(clippy::too_many_arguments)]
fn connect_spread_edges<const D: usize>(
    builder: &mut DagBuilder,
    geo: &Geometry<D>,
    pre: &Preprocess<D>,
    wc: usize,
    zero_base: NodeId,
    conv_shared: &[NodeId],
    slab: usize,
    fft_out: Option<Axis0Wiring<'_>>,
) {
    let nslabs = geo.grid_len().div_ceil(slab);
    let gs = geo.grid_strides();
    let mut slab_stamp = Stamp::new(nslabs);
    let mut chunk_stamp = fft_out.as_ref().map(|f| Stamp::new(f.tp.entry_shards(0)));
    let mut dep_chunks: Vec<u32> = Vec::new();
    for t in 0..pre.graph.len() {
        slab_stamp.next();
        if let Some(cs) = chunk_stamp.as_mut() {
            cs.next();
        }
        dep_chunks.clear();
        let (lo, len) = task_box(pre, &geo.m, wc, t);
        for_each_box_run(&geo.m, &gs, &lo, &len, |start, rlen| {
            for s in start / slab..=(start + rlen - 1) / slab {
                if slab_stamp.hit(s) {
                    builder.add_edge(zero_base + s as NodeId, conv_shared[t]);
                }
            }
            let (Some(f), Some(cs)) = (&fft_out, chunk_stamp.as_mut()) else {
                return;
            };
            if f.tp.axes[0].shards.is_some() {
                // Four-step column groups decimate a line, so a contiguous
                // run can cross entry shards: resolve per element.
                for e in start..start + rlen {
                    let shard = entry_shard_of(f.fft, f.tp, 0, e);
                    if cs.hit(shard) {
                        dep_chunks.push(shard as u32);
                    }
                }
            } else {
                // Axis-0 tiles of a last-dim run are contiguous (the run
                // stays within one outer block and one inner window — see
                // tile_of_element); stride-1 axis 0 means D == 1, one line.
                let grain0 = f.tp.axes[0].grain;
                let (t_first, t_last) = if f.fft.axis_stride(0) == 1 {
                    (
                        f.fft.tile_of_element(0, start, f.tp.b),
                        f.fft.tile_of_element(0, start, f.tp.b),
                    )
                } else {
                    (
                        f.fft.tile_of_element(0, start, f.tp.b),
                        f.fft.tile_of_element(0, start + rlen - 1, f.tp.b),
                    )
                };
                for chunk in t_first / grain0..=t_last / grain0 {
                    if cs.hit(chunk) {
                        dep_chunks.push(chunk as u32);
                    }
                }
            }
        });
        if let Some(f) = &fft_out {
            for &chunk in &dep_chunks {
                for c in 0..f.channels {
                    builder.add_edge(conv_shared[t], f.fft_base[c][0].0 + chunk as NodeId);
                }
            }
        }
    }
}

/// Wires FFT axis `k−1` writers → axis `k` entries for every axis after
/// the first (every channel), reusing the caller's stamp.
fn connect_fft_chain(
    builder: &mut DagBuilder,
    fft: &FftNd,
    tp: &TilePlan,
    ndim: usize,
    channels: usize,
    stamp: &mut Stamp,
    fft_base: &[Vec<(NodeId, NodeId)>],
) {
    for axis in 1..ndim {
        connect_axis_inputs(
            builder,
            fft,
            tp,
            axis,
            channels,
            stamp,
            |e| writer_shard_of(fft, tp, axis - 1, e),
            |c, k| fft_base[c][axis - 1].1 + k as NodeId,
            |c, k| fft_base[c][axis].0 + k as NodeId,
        );
    }
}

/// Wires last-axis FFT writers → gather chunks: a task's chunks read its
/// halo box, so they depend on the last-axis writer shards containing the
/// box's rows — in every channel (one gather chunk writes all channels'
/// outputs).
#[allow(clippy::too_many_arguments)]
fn connect_interp_inputs<const D: usize>(
    builder: &mut DagBuilder,
    geo: &Geometry<D>,
    fft: &FftNd,
    tp: &TilePlan,
    pre: &Preprocess<D>,
    wc: usize,
    channels: usize,
    fft_base: &[Vec<(NodeId, NodeId)>],
    gather_base: NodeId,
    task_chunks: &[core::ops::Range<usize>],
) {
    let gs = geo.grid_strides();
    let last = D - 1;
    let grain_last = tp.axes[last].grain;
    let mut dep_chunks: Vec<u32> = Vec::new();
    let mut task_stamp = Stamp::new(tp.writer_shards(last));
    for t in 0..pre.graph.len() {
        if task_chunks[t].is_empty() {
            continue;
        }
        task_stamp.next();
        dep_chunks.clear();
        let (lo, len) = task_box(pre, &geo.m, wc, t);
        for_each_box_run(&geo.m, &gs, &lo, &len, |start, rlen| {
            if tp.axes[last].shards.is_some() {
                // Four-step k-blocks stripe a line, so a contiguous run can
                // cross writer shards: resolve per element.
                for e in start..start + rlen {
                    let shard = writer_shard_of(fft, tp, last, e);
                    if task_stamp.hit(shard) {
                        dep_chunks.push(shard as u32);
                    }
                }
            } else {
                // A last-dimension run lies within one last-axis line = tile.
                let chunk = fft.tile_of_element(last, start, tp.b) / grain_last;
                if task_stamp.hit(chunk) {
                    dep_chunks.push(chunk as u32);
                }
            }
        });
        for g in task_chunks[t].clone() {
            for &dep in &dep_chunks {
                for c in 0..channels {
                    builder
                        .add_edge(fft_base[c][last].1 + dep as NodeId, gather_base + g as NodeId);
                }
            }
        }
    }
}

/// Wires last-axis FFT writers → extract chunks: an image chunk reads the
/// wrapped embed positions of its flat range.
#[allow(clippy::too_many_arguments)]
fn connect_extract_inputs<const D: usize>(
    builder: &mut DagBuilder,
    geo: &Geometry<D>,
    fft: &FftNd,
    tp: &TilePlan,
    channels: usize,
    fft_base: &[Vec<(NodeId, NodeId)>],
    extract_base: &[NodeId],
    img_chunk: usize,
) {
    let gs = geo.grid_strides();
    let image_len = geo.image_len();
    let nchunks = image_len.div_ceil(img_chunk);
    let last = D - 1;
    let mut ex_stamp = Stamp::new(tp.writer_shards(last));
    for k in 0..nchunks {
        ex_stamp.next();
        let lo = k * img_chunk;
        let count = (image_len - lo).min(img_chunk);
        crate::grid::for_each_index_range(&geo.n, lo, count, |_flat, idx| {
            let mut g = 0usize;
            for d in 0..D {
                let wrapped = (idx[d] + geo.m[d] - geo.n[d] / 2) % geo.m[d];
                g += wrapped * gs[d];
            }
            let shard = writer_shard_of(fft, tp, last, g);
            if ex_stamp.hit(shard) {
                for c in 0..channels {
                    builder.add_edge(
                        fft_base[c][last].1 + shard as NodeId,
                        extract_base[c] + k as NodeId,
                    );
                }
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Whole-operator builders (fragment compositions)
// ---------------------------------------------------------------------------

/// Builds the fused **forward** graph for `channels` channels:
/// scale slabs → per-axis FFT chunks (per channel) → gather chunks.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_forward<const D: usize>(
    geo: &Geometry<D>,
    fft: &FftNd,
    tp: &TilePlan,
    pre: &Preprocess<D>,
    wc: usize,
    gather_grain: usize,
    threads: usize,
    channels: usize,
) -> FusedApply {
    let grid_len = geo.grid_len();
    let slab = piece_len(grid_len, threads);
    let nslabs = grid_len.div_ceil(slab);
    let mut builder = DagBuilder::new();

    let scale_base = emit_scale_fragment(&mut builder, grid_len, slab, channels);
    let fft_base = emit_fft_fragment(&mut builder, fft, tp, D, channels);
    let (gather_base, chunks, task_chunks) = emit_interp_fragment(&mut builder, pre, gather_grain);

    // Edges: slab → axis 0, then the axis chain.
    let max_writers = nslabs.max((0..D).map(|a| tp.writer_shards(a)).max().unwrap_or(1));
    let mut stamp = Stamp::new(max_writers);
    connect_axis_inputs(
        &mut builder,
        fft,
        tp,
        0,
        channels,
        &mut stamp,
        |e| e / slab,
        |c, s| scale_base[c] + s as NodeId,
        |c, k| fft_base[c][0].0 + k as NodeId,
    );
    connect_fft_chain(&mut builder, fft, tp, D, channels, &mut stamp, &fft_base);
    connect_interp_inputs(
        &mut builder,
        geo,
        fft,
        tp,
        pre,
        wc,
        channels,
        &fft_base,
        gather_base,
        &task_chunks,
    );

    apply_phase_priorities(&mut builder, false, D);
    FusedApply { dag: builder.build(), chunks, slab, img_chunk: 0 }
}

/// Builds the fused **adjoint** graph for `channels` channels:
/// zero slabs → conv/priv/reduce tasks (Gray edges preserved) → per-axis
/// FFT chunks (per channel) → extract chunks.
pub(crate) fn build_adjoint<const D: usize>(
    geo: &Geometry<D>,
    fft: &FftNd,
    tp: &TilePlan,
    pre: &Preprocess<D>,
    wc: usize,
    threads: usize,
    channels: usize,
) -> FusedApply {
    let grid_len = geo.grid_len();
    let image_len = geo.image_len();
    let slab = piece_len(grid_len, threads);
    let img_chunk = piece_len(image_len, threads);
    let mut builder = DagBuilder::new();

    let zero_base = emit_zero_fragment(&mut builder, grid_len, slab, channels);
    let conv_shared = emit_spread_fragment(&mut builder, pre, channels);
    let fft_base = emit_fft_fragment(&mut builder, fft, tp, D, channels);
    let extract_base = emit_extract_fragment(&mut builder, image_len, img_chunk, channels);

    connect_spread_edges(
        &mut builder,
        geo,
        pre,
        wc,
        zero_base,
        &conv_shared,
        slab,
        Some(Axis0Wiring { fft, tp, fft_base: &fft_base, channels }),
    );
    let max_writers = (0..D).map(|a| tp.writer_shards(a)).max().unwrap_or(1);
    let mut stamp = Stamp::new(max_writers);
    connect_fft_chain(&mut builder, fft, tp, D, channels, &mut stamp, &fft_base);
    connect_extract_inputs(
        &mut builder,
        geo,
        fft,
        tp,
        channels,
        &fft_base,
        &extract_base,
        img_chunk,
    );

    apply_phase_priorities(&mut builder, true, D);
    FusedApply { dag: builder.build(), chunks: Vec::new(), slab, img_chunk }
}

/// Builds the fused **spread-only** graph: the adjoint's zero and scatter
/// fragments with nothing downstream — consumed by
/// [`NufftPlan::spread_only`](crate::plan::NufftPlan::spread_only). The
/// Gray-code exclusion edges and `zero → conv` wiring are identical to the
/// full adjoint's, so the scattered grid is bitwise-identical to the
/// phased spread at any thread count.
pub(crate) fn build_spread<const D: usize>(
    geo: &Geometry<D>,
    pre: &Preprocess<D>,
    wc: usize,
    threads: usize,
) -> FusedApply {
    let grid_len = geo.grid_len();
    let slab = piece_len(grid_len, threads);
    let mut builder = DagBuilder::new();
    let zero_base = emit_zero_fragment(&mut builder, grid_len, slab, 1);
    let conv_shared = emit_spread_fragment(&mut builder, pre, 1);
    connect_spread_edges(&mut builder, geo, pre, wc, zero_base, &conv_shared, slab, None);
    apply_phase_priorities(&mut builder, true, D);
    FusedApply { dag: builder.build(), chunks: Vec::new(), slab, img_chunk: 0 }
}

/// Writes a Chrome `trace_event` JSON (load in `chrome://tracing` or
/// Perfetto) of one fused run's per-node spans. Timestamps are
/// microseconds from run start; tracks (`tid`) are workers.
pub(crate) fn write_trace(path: &str, stats: &DagRunStats, adjoint: bool) {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(stats.log.len() * 112 + 64);
    s.push_str("{\"traceEvents\":[");
    for (i, r) in stats.log.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let kind = kind_of(r.tag);
        let name = kind_name(kind);
        let _ = write!(
            s,
            "\n{{\"name\":\"{name}[ax{ax} ch{ch} #{ix}]\",\"cat\":\"{name}\",\"ph\":\"X\",\
             \"ts\":{ts:.3},\"dur\":{dur:.3},\"pid\":{pid},\"tid\":{tid}}}",
            ax = axis_of(r.tag),
            ch = channel_of(r.tag),
            ix = index_of(r.tag),
            ts = r.start * 1e6,
            dur = (r.end - r.start).max(0.0) * 1e6,
            pid = if adjoint { 1 } else { 0 },
            tid = r.worker,
        );
    }
    s.push_str("\n]}\n");
    if let Err(e) = std::fs::write(path, s) {
        eprintln!("NUFFT_TRACE: failed to write {path}: {e}");
    }
}

/// The wall-clock span (first start to last end) of all records whose
/// kind satisfies `pred` — the fused analogue of a phase timer. Spans of
/// different kinds overlap by design; each is still an honest "this phase
/// was in flight for X seconds".
pub(crate) fn kind_span(stats: &DagRunStats, pred: impl Fn(u8) -> bool) -> f64 {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for r in &stats.log {
        if pred(kind_of(r.tag)) {
            lo = lo.min(r.start);
            hi = hi.max(r.end);
        }
    }
    if hi > lo {
        hi - lo
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_round_trips() {
        let t = tag(KIND_FFT, 2, 7, 123456);
        assert_eq!(kind_of(t), KIND_FFT);
        assert_eq!(axis_of(t), 2);
        assert_eq!(channel_of(t), 7);
        assert_eq!(index_of(t), 123456);
    }

    #[test]
    fn box_runs_cover_wrapped_box_exactly_once() {
        let m = [8usize, 6];
        let gs = [6usize, 1];
        // Box hanging off both edges: origin (−2, 4), size (5, 4) wraps in
        // both dimensions.
        let mut seen = vec![0usize; 48];
        for_each_box_run(&m, &gs, &[-2, 4], &[5, 4], |start, len| {
            for e in start..start + len {
                seen[e] += 1;
            }
        });
        let mut want = vec![0usize; 48];
        for i in 0..5i32 {
            for j in 0..4i32 {
                let r = (-2 + i).rem_euclid(8) as usize;
                let c = (4 + j).rem_euclid(6) as usize;
                want[r * 6 + c] += 1;
            }
        }
        assert_eq!(seen, want);
    }

    #[test]
    fn box_runs_full_extent_has_no_duplicates() {
        // len == m in every dimension: the capped "covers everything" case.
        let m = [4usize, 6];
        let gs = [6usize, 1];
        let mut seen = vec![0usize; 24];
        for_each_box_run(&m, &gs, &[-1, 3], &[4, 6], |start, len| {
            for e in start..start + len {
                seen[e] += 1;
            }
        });
        assert!(seen.iter().all(|&c| c == 1), "{seen:?}");
    }

    #[test]
    fn box_runs_1d() {
        let m = [10usize];
        let gs = [1usize];
        let mut runs = Vec::new();
        for_each_box_run(&m, &gs, &[8], &[5], |start, len| runs.push((start, len)));
        assert_eq!(runs, vec![(8, 2), (0, 3)]);
    }

    #[test]
    fn node_phases_order_the_pipeline() {
        assert_eq!(node_phase(tag(KIND_SCALE, 0, 0, 0), false, 2), 0);
        assert_eq!(node_phase(tag(KIND_FFT, 1, 0, 0), false, 2), 2);
        assert_eq!(node_phase(tag(KIND_GATHER, 0, 0, 0), false, 2), 3);
        assert_eq!(node_phase(tag(KIND_ZERO, 0, 0, 0), true, 3), 0);
        assert_eq!(node_phase(tag(KIND_REDUCE, 0, 0, 0), true, 3), 1);
        assert_eq!(node_phase(tag(KIND_FFT, 2, 0, 0), true, 3), 4);
        assert_eq!(node_phase(tag(KIND_EXTRACT, 0, 0, 0), true, 3), 5);
    }
}
