//! Plan registry and submit/wait service layer — the first multi-tenant
//! surface on top of the shared pool.
//!
//! FINUFFT-style amortization (Barnett et al.): repeat callers hitting the
//! same (grid, kernel params, trajectory) should pay plan construction —
//! preprocessing, graph build, window table — exactly once. The
//! [`PlanRegistry`] keys plan instances by [`PlanKey`] (grid extents,
//! kernel parameters, and an FNV-1a fingerprint of the trajectory bits)
//! and pools *instances* per key: a checkout pops an idle plan (cache
//! hit — zero allocation), a miss builds a fresh instance **outside the
//! registry lock** on the registry's shared [`Executor`], reusing the
//! key's shared [`WindowTable`] so Part 1 is never recomputed. Dropping
//! the [`PlanLease`] checks the instance back in (bounded by `max_idle`;
//! overflow instances are simply dropped).
//!
//! Two leases of the same key held concurrently are two *distinct* plan
//! instances interleaving on the shared pool — tenants never share
//! mutable state, which is what makes concurrent applies bitwise-identical
//! to solo runs (see `tests/concurrent_submit.rs`).
//!
//! [`NufftService`] adds the fire-and-forget shape: `submit` enqueues an
//! apply from any thread and returns an [`ApplyHandle`]; `wait` joins it.
//! Each request carries a [`JobPriority`] that maps to the executor's
//! fair-share admission tickets (DESIGN.md §13).

use crate::plan::{NufftConfig, NufftPlan};
use crate::tasks::SortMode;
use crate::type3::Type3Plan;
use crate::windows::WindowTable;
use nufft_math::Complex32;
use nufft_parallel::exec::{Executor, JobPriority};
use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Which transform family a registry key caches — part of [`PlanKey`] so
/// plans of different families with otherwise-identical parameters can
/// never alias (a type-3 plan's fine-grid geometry depends on *both*
/// clouds; a spread-only checkout is contractually never FFT'd).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TransformKind {
    /// A full type-1/type-2 plan ([`PlanRegistry::checkout`]).
    Type12,
    /// A spread/interp-only checkout ([`PlanRegistry::checkout_spread`]).
    SpreadOnly,
    /// A type-3 plan ([`PlanRegistry::checkout_type3`]); the key's
    /// `traj_fp`/`traj_len` fingerprint the *sources*, these fields the
    /// targets.
    Type3 {
        /// FNV-1a over the target frequencies' bit patterns.
        targets_fp: u64,
        /// Target count (collision guard, like `traj_len`).
        targets_len: usize,
    },
}

/// Registry key: everything that determines a plan's precomputation.
///
/// Floating-point parameters are keyed by their IEEE bit patterns (exact
/// match — two trajectories are "the same" only if bitwise equal, which is
/// the right notion here because plan output is bitwise-reproducible).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PlanKey<const D: usize> {
    /// Image extents.
    pub n: [usize; D],
    /// `NufftConfig::w` bits.
    pub w_bits: u64,
    /// `NufftConfig::alpha` bits.
    pub alpha_bits: u64,
    /// Kernel family.
    pub kernel: crate::kernel::KernelChoice,
    /// LUT entries per unit argument.
    pub lut_density: usize,
    /// FNV-1a over the trajectory's `f64` bit patterns — always hashed in
    /// **caller (pre-sort) order**: the bin sort permutes only a plan's
    /// internal layout, never the key, so two configs that differ in
    /// [`SortMode`] still hash the same trajectory identically and are
    /// kept apart by the `sort` field below instead.
    pub traj_fp: u64,
    /// Sample count (cheap second factor against fingerprint collisions).
    pub traj_len: usize,
    /// `NufftConfig::sort` as declared (pre-`Auto`-resolution): sorted and
    /// unsorted plans lay out windows/coords differently and must never
    /// alias, even though their outputs are bitwise-identical.
    pub sort: SortMode,
    /// `NufftConfig::fft_strategy` as declared: a forced-four-step plan
    /// owns an `fs` transpose buffer and a differently sharded fused DAG,
    /// so it must never alias a recursive plan of the same geometry even
    /// though the two are bitwise-identical in output.
    pub fft_strategy: nufft_fft::FftStrategy,
    /// `NufftConfig::fft_llc_budget` — under `Auto` the budget decides
    /// which axes go four-step, so it is plan-shaping state too.
    pub fft_llc_budget: usize,
    /// Transform family (and, for type-3, the target-cloud geometry).
    pub kind: TransformKind,
}

/// FNV-1a over the trajectory's coordinate bit patterns, folding each
/// `f64` in as one 64-bit word. Collisions are additionally guarded by
/// `traj_len`; callers needing certainty can hold distinct registries.
pub fn traj_fingerprint<const D: usize>(traj: &[[f64; D]]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for p in traj {
        for v in p.iter() {
            h ^= v.to_bits();
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

/// Per-key state: idle plan instances plus the shared precomputation.
struct KeyPool<const D: usize> {
    /// Checked-in instances, popped LIFO (the hottest instance first).
    idle: Vec<NufftPlan<D>>,
    /// The key's window table, stashed after the first build so every
    /// later instance (and every instance that outlives eviction) shares
    /// one Part 1 computation.
    windows: Option<Arc<WindowTable<D>>>,
    hits: u64,
    misses: u64,
}

/// Registry-wide counters (observability for the service experiments).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Checkouts served from an idle instance.
    pub hits: u64,
    /// Checkouts that built a fresh instance.
    pub misses: u64,
    /// Idle instances currently cached across all keys.
    pub cached_plans: usize,
    /// Distinct keys seen.
    pub keys: usize,
}

/// A concurrent plan cache over one shared executor.
///
/// All plans built by one registry share the registry's `NufftConfig`
/// (normalized to the shared executor's thread count) and worker pool;
/// per-request knobs go through the lease (e.g.
/// [`NufftPlan::set_admission_priority`]).
pub struct PlanRegistry<const D: usize> {
    cfg: NufftConfig,
    exec: Executor,
    max_idle: usize,
    inner: Mutex<HashMap<PlanKey<D>, KeyPool<D>>>,
    /// Type-3 instances pool separately ([`Type3Plan`] is a distinct
    /// type); keys still carry [`TransformKind::Type3`] so the two maps'
    /// key spaces are disjoint by construction.
    inner3: Mutex<HashMap<PlanKey<D>, Type3Pool<D>>>,
}

/// Per-key state for pooled type-3 instances (no shared window table yet —
/// a type-3 build's Part 1 lives inside its stage operators).
struct Type3Pool<const D: usize> {
    idle: Vec<Type3Plan<D>>,
    hits: u64,
    misses: u64,
}

impl<const D: usize> PlanRegistry<D> {
    /// Default cap on idle instances cached per key.
    pub const DEFAULT_MAX_IDLE: usize = 8;

    /// A registry whose plans all dispatch on one pool of `cfg.threads`
    /// workers.
    pub fn new(cfg: NufftConfig) -> Self {
        let exec = Executor::with_backend(cfg.threads.max(1), cfg.backend);
        Self::with_executor(cfg, exec)
    }

    /// A registry on a caller-supplied executor (share one pool across
    /// several registries or with direct plan holders).
    pub fn with_executor(mut cfg: NufftConfig, exec: Executor) -> Self {
        cfg.threads = exec.threads();
        PlanRegistry {
            cfg,
            exec,
            max_idle: Self::DEFAULT_MAX_IDLE,
            inner: Mutex::new(HashMap::new()),
            inner3: Mutex::new(HashMap::new()),
        }
    }

    /// Sets the per-key idle-instance cap (eviction is drop-on-overflow
    /// at check-in; 0 disables instance caching entirely).
    pub fn set_max_idle(&mut self, max_idle: usize) {
        self.max_idle = max_idle;
    }

    /// The registry's shared executor.
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    /// The config every plan instance is built with.
    pub fn config(&self) -> &NufftConfig {
        &self.cfg
    }

    /// The key `checkout(n, traj)` would use.
    pub fn key_of(&self, n: [usize; D], traj: &[[f64; D]]) -> PlanKey<D> {
        self.make_key(n, traj, TransformKind::Type12)
    }

    /// The key `checkout_spread(n, traj)` would use: identical parameters,
    /// distinct [`TransformKind`] — never aliases a [`key_of`] key.
    ///
    /// [`key_of`]: PlanRegistry::key_of
    pub fn key_of_spread(&self, n: [usize; D], traj: &[[f64; D]]) -> PlanKey<D> {
        self.make_key(n, traj, TransformKind::SpreadOnly)
    }

    /// The key `checkout_type3(sources, targets)` would use: `traj_fp`
    /// fingerprints the sources, the [`TransformKind::Type3`] payload the
    /// targets, and `n` is zeroed (a type-3 plan derives its own fine-grid
    /// extents) — never aliases a type-1/2 or spread-only key.
    pub fn key_of_type3(&self, sources: &[[f64; D]], targets: &[[f64; D]]) -> PlanKey<D> {
        self.make_key(
            [0; D],
            sources,
            TransformKind::Type3 {
                targets_fp: traj_fingerprint(targets),
                targets_len: targets.len(),
            },
        )
    }

    fn make_key(&self, n: [usize; D], traj: &[[f64; D]], kind: TransformKind) -> PlanKey<D> {
        PlanKey {
            n,
            w_bits: self.cfg.w.to_bits(),
            alpha_bits: self.cfg.alpha.to_bits(),
            kernel: self.cfg.kernel,
            lut_density: self.cfg.lut_density,
            traj_fp: traj_fingerprint(traj),
            traj_len: traj.len(),
            sort: self.cfg.sort,
            fft_strategy: self.cfg.fft_strategy,
            fft_llc_budget: self.cfg.fft_llc_budget,
            kind,
        }
    }

    /// Checks out a plan instance for `(n, traj)`: an idle instance if one
    /// is cached (allocation-free), else a freshly built one. Construction
    /// happens outside the registry lock, so a slow 3D build never blocks
    /// hits on other keys — or on the same key.
    ///
    /// # Panics
    /// Propagates [`NufftPlan::new`] panics on the miss path.
    pub fn checkout(&self, n: [usize; D], traj: &[[f64; D]]) -> PlanLease<'_, D> {
        self.checkout_keyed(self.key_of(n, traj), n, traj)
    }

    /// Checks out a plan instance reserved for spread/interp-only use
    /// ([`NufftPlan::spread_only`] / [`NufftPlan::interp_only`]): same
    /// construction, but pooled under a [`TransformKind::SpreadOnly`] key
    /// so instances never migrate between full-transform and
    /// deposition-only tenants.
    pub fn checkout_spread(&self, n: [usize; D], traj: &[[f64; D]]) -> PlanLease<'_, D> {
        self.checkout_keyed(self.key_of_spread(n, traj), n, traj)
    }

    /// Checks out a pooled [`Type3Plan`] for `(sources, targets)`: an idle
    /// instance if one is cached, else a fresh build on the shared
    /// executor — outside the registry lock, like [`checkout`].
    ///
    /// [`checkout`]: PlanRegistry::checkout
    ///
    /// # Panics
    /// Propagates [`Type3Plan::new`] panics on the miss path.
    pub fn checkout_type3(&self, sources: &[[f64; D]], targets: &[[f64; D]]) -> Type3Lease<'_, D> {
        let key = self.key_of_type3(sources, targets);
        {
            let mut map = lock(&self.inner3);
            let pool = map.entry(key).or_insert_with(|| Type3Pool {
                idle: Vec::new(),
                hits: 0,
                misses: 0,
            });
            if let Some(plan) = pool.idle.pop() {
                pool.hits += 1;
                return Type3Lease { registry: self, key, plan: Some(plan) };
            }
            pool.misses += 1;
        }
        let plan = Type3Plan::new_shared(sources, targets, self.cfg, self.exec.clone());
        Type3Lease { registry: self, key, plan: Some(plan) }
    }

    fn checkout_keyed(
        &self,
        key: PlanKey<D>,
        n: [usize; D],
        traj: &[[f64; D]],
    ) -> PlanLease<'_, D> {
        let windows = {
            let mut map = lock(&self.inner);
            let pool = map.entry(key).or_insert_with(|| KeyPool {
                idle: Vec::new(),
                windows: None,
                hits: 0,
                misses: 0,
            });
            if let Some(plan) = pool.idle.pop() {
                pool.hits += 1;
                return PlanLease { registry: self, key, plan: Some(plan) };
            }
            pool.misses += 1;
            pool.windows.clone()
        };
        let had_windows = windows.is_some();
        let plan = NufftPlan::new_shared(n, traj, self.cfg, self.exec.clone(), windows);
        if !had_windows {
            if let Some(table) = plan.shared_window_table() {
                let mut map = lock(&self.inner);
                if let Some(pool) = map.get_mut(&key) {
                    pool.windows.get_or_insert(table);
                }
            }
        }
        PlanLease { registry: self, key, plan: Some(plan) }
    }

    /// Current counters, aggregated over all keys (type-1/2, spread-only,
    /// and type-3 pools together).
    pub fn stats(&self) -> RegistryStats {
        let map = lock(&self.inner);
        let mut s = RegistryStats { keys: map.len(), ..RegistryStats::default() };
        for pool in map.values() {
            s.hits += pool.hits;
            s.misses += pool.misses;
            s.cached_plans += pool.idle.len();
        }
        drop(map);
        let map3 = lock(&self.inner3);
        s.keys += map3.len();
        for pool in map3.values() {
            s.hits += pool.hits;
            s.misses += pool.misses;
            s.cached_plans += pool.idle.len();
        }
        s
    }

    /// Drops every cached idle instance (shared window tables survive, so
    /// rebuilt instances still skip Part 1).
    pub fn evict_idle(&self) {
        let mut map = lock(&self.inner);
        for pool in map.values_mut() {
            pool.idle.clear();
        }
        drop(map);
        let mut map3 = lock(&self.inner3);
        for pool in map3.values_mut() {
            pool.idle.clear();
        }
    }

    fn check_in(&self, key: PlanKey<D>, plan: NufftPlan<D>) {
        let mut map = lock(&self.inner);
        if let Some(pool) = map.get_mut(&key) {
            if pool.idle.len() < self.max_idle {
                pool.idle.push(plan);
            }
        }
    }

    fn check_in_type3(&self, key: PlanKey<D>, plan: Type3Plan<D>) {
        let mut map = lock(&self.inner3);
        if let Some(pool) = map.get_mut(&key) {
            if pool.idle.len() < self.max_idle {
                pool.idle.push(plan);
            }
        }
    }
}

/// An exclusively held plan instance; derefs to [`NufftPlan`] and checks
/// itself back into the registry on drop.
pub struct PlanLease<'r, const D: usize> {
    registry: &'r PlanRegistry<D>,
    key: PlanKey<D>,
    plan: Option<NufftPlan<D>>,
}

impl<const D: usize> PlanLease<'_, D> {
    /// The registry key this lease was checked out under.
    pub fn key(&self) -> PlanKey<D> {
        self.key
    }
}

impl<const D: usize> Deref for PlanLease<'_, D> {
    type Target = NufftPlan<D>;
    fn deref(&self) -> &NufftPlan<D> {
        self.plan.as_ref().expect("lease holds a plan until drop")
    }
}

impl<const D: usize> DerefMut for PlanLease<'_, D> {
    fn deref_mut(&mut self) -> &mut NufftPlan<D> {
        self.plan.as_mut().expect("lease holds a plan until drop")
    }
}

impl<const D: usize> Drop for PlanLease<'_, D> {
    fn drop(&mut self) {
        if let Some(plan) = self.plan.take() {
            self.registry.check_in(self.key, plan);
        }
    }
}

/// An exclusively held [`Type3Plan`] instance; derefs to the plan and
/// checks itself back into the registry on drop.
pub struct Type3Lease<'r, const D: usize> {
    registry: &'r PlanRegistry<D>,
    key: PlanKey<D>,
    plan: Option<Type3Plan<D>>,
}

impl<const D: usize> Type3Lease<'_, D> {
    /// The registry key this lease was checked out under.
    pub fn key(&self) -> PlanKey<D> {
        self.key
    }
}

impl<const D: usize> Deref for Type3Lease<'_, D> {
    type Target = Type3Plan<D>;
    fn deref(&self) -> &Type3Plan<D> {
        self.plan.as_ref().expect("lease holds a plan until drop")
    }
}

impl<const D: usize> DerefMut for Type3Lease<'_, D> {
    fn deref_mut(&mut self) -> &mut Type3Plan<D> {
        self.plan.as_mut().expect("lease holds a plan until drop")
    }
}

impl<const D: usize> Drop for Type3Lease<'_, D> {
    fn drop(&mut self) {
        if let Some(plan) = self.plan.take() {
            self.registry.check_in_type3(self.key, plan);
        }
    }
}

/// Which operator a service request applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ApplyOp {
    /// Image → samples (type 2).
    Forward,
    /// Samples → image (type 1).
    Adjoint,
}

/// One service request: the problem, the operator, the input, and the
/// request's admission priority on the shared pool.
pub struct ApplyRequest<const D: usize> {
    /// Image extents.
    pub n: [usize; D],
    /// Trajectory in normalized frequencies (shared across requests).
    pub traj: Arc<Vec<[f64; D]>>,
    /// Forward or adjoint.
    pub op: ApplyOp,
    /// `image_len` values for [`ApplyOp::Forward`], `traj.len()` for
    /// [`ApplyOp::Adjoint`].
    pub input: Vec<Complex32>,
    /// Fair-share tickets for this request's dispatches.
    pub priority: JobPriority,
}

/// A submitted apply; [`ApplyHandle::wait`] blocks until it finishes and
/// returns the output buffer.
pub struct ApplyHandle {
    join: JoinHandle<Vec<Complex32>>,
}

impl ApplyHandle {
    /// Joins the request, propagating any panic from the apply.
    pub fn wait(self) -> Vec<Complex32> {
        match self.join.join() {
            Ok(out) => out,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }

    /// True once the request has finished (wait would not block).
    pub fn is_finished(&self) -> bool {
        self.join.is_finished()
    }
}

/// Submit/wait front end over a [`PlanRegistry`]: callers on any thread
/// enqueue applies without owning a plan or the pool. Each request runs on
/// its own submitter thread; the *compute* still lands on the registry's
/// shared worker pool, where the fair-share scheduler interleaves it with
/// every other in-flight request.
pub struct NufftService<const D: usize> {
    registry: Arc<PlanRegistry<D>>,
}

impl<const D: usize> NufftService<D> {
    /// A service over a fresh registry built from `cfg`.
    pub fn new(cfg: NufftConfig) -> Self {
        NufftService { registry: Arc::new(PlanRegistry::new(cfg)) }
    }

    /// A service over an existing (possibly shared) registry.
    pub fn with_registry(registry: Arc<PlanRegistry<D>>) -> Self {
        NufftService { registry }
    }

    /// The underlying registry (e.g. for stats or direct checkouts).
    pub fn registry(&self) -> &Arc<PlanRegistry<D>> {
        &self.registry
    }

    /// Enqueues one apply and returns immediately.
    ///
    /// # Panics
    /// Panics in the handle's `wait` if the input length does not match
    /// the operator, or on any plan-construction failure.
    pub fn submit(&self, req: ApplyRequest<D>) -> ApplyHandle {
        let registry = Arc::clone(&self.registry);
        let join = std::thread::Builder::new()
            .name("nufft-submit".into())
            .spawn(move || {
                let mut lease = registry.checkout(req.n, &req.traj);
                lease.set_admission_priority(req.priority);
                match req.op {
                    ApplyOp::Forward => {
                        let mut out = vec![Complex32::ZERO; lease.num_samples()];
                        lease.forward(&req.input, &mut out);
                        out
                    }
                    ApplyOp::Adjoint => {
                        let mut out = vec![Complex32::ZERO; lease.image_len()];
                        lease.adjoint(&req.input, &mut out);
                        out
                    }
                }
            })
            .expect("spawn submit thread");
        ApplyHandle { join }
    }
}

/// Mutex lock that ignores poisoning: registry state stays consistent
/// under panics (a poisoned apply never leaves a lease checked out —
/// the lease drop runs during unwind and check-in takes the lock last).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ExecMode;
    use crate::windows::WindowMode;

    fn traj2(count: usize) -> Vec<[f64; 2]> {
        (0..count)
            .map(|i| [((i as f64 * 0.618) % 1.0) - 0.5, ((i as f64 * 0.414) % 1.0) - 0.5])
            .collect()
    }

    fn cfg() -> NufftConfig {
        NufftConfig {
            threads: 2,
            w: 2.0,
            partitions_per_dim: Some(3),
            window_mode: WindowMode::Precomputed,
            ..NufftConfig::default()
        }
    }

    #[test]
    fn checkout_hits_after_checkin_and_shares_window_table() {
        let reg = PlanRegistry::<2>::new(cfg());
        let traj = traj2(200);
        let n = [16usize, 16];

        let lease = reg.checkout(n, &traj);
        let first_table = lease.shared_window_table().expect("Precomputed mode builds a table");
        drop(lease);
        assert_eq!(reg.stats().misses, 1);
        assert_eq!(reg.stats().hits, 0);
        assert_eq!(reg.stats().cached_plans, 1);

        // Hit: the same instance comes back, holding the same table.
        let lease = reg.checkout(n, &traj);
        let table = lease.shared_window_table().expect("table survives check-in");
        assert!(Arc::ptr_eq(&first_table, &table), "hit must reuse the table");
        // A concurrent second checkout misses (the only instance is out)
        // but still shares the stashed table instead of rebuilding Part 1.
        let lease2 = reg.checkout(n, &traj);
        let table2 = lease2.shared_window_table().expect("miss reuses stashed table");
        assert!(Arc::ptr_eq(&first_table, &table2), "miss must reuse the table");
        let s = reg.stats();
        assert_eq!((s.hits, s.misses), (1, 2));
        drop(lease);
        drop(lease2);
        assert_eq!(reg.stats().cached_plans, 2);
    }

    #[test]
    fn distinct_trajectories_get_distinct_keys() {
        let reg = PlanRegistry::<2>::new(cfg());
        let ta = traj2(150);
        let mut tb = traj2(150);
        tb[7][0] += 1e-9; // any bit flip is a different trajectory
        let n = [16usize, 16];
        assert_ne!(reg.key_of(n, &ta), reg.key_of(n, &tb));
        drop(reg.checkout(n, &ta));
        drop(reg.checkout(n, &tb));
        let s = reg.stats();
        assert_eq!((s.keys, s.misses), (2, 2));
    }

    #[test]
    fn transform_kinds_never_alias_a_key() {
        // Regression: a type-1/2 plan, a spread-only plan and a type-3
        // plan over the *same* coordinate set must occupy distinct pool
        // entries — the `TransformKind` field is the only thing telling
        // them apart, and dropping it would hand a caller a plan whose
        // apply paths don't match the entry point it asked for.
        let reg = PlanRegistry::<2>::new(cfg());
        let traj = traj2(160);
        let n = [16usize, 16];

        let k12 = reg.key_of(n, &traj);
        let ksp = reg.key_of_spread(n, &traj);
        assert_ne!(k12, ksp, "type-1/2 and spread-only keys alias");
        assert_eq!(k12.kind, TransformKind::Type12);
        assert_eq!(ksp.kind, TransformKind::SpreadOnly);

        // Type-3 with sources == traj: still its own key, and sensitive
        // to the *target* geometry too (same sources, different targets).
        let ta = traj2(90);
        let mut tb = traj2(90);
        tb[3][1] += 1e-9;
        let k3a = reg.key_of_type3(&traj, &ta);
        let k3b = reg.key_of_type3(&traj, &tb);
        assert_ne!(k3a, k12);
        assert_ne!(k3a, ksp);
        assert_ne!(k3a, k3b, "type-3 keys must fingerprint the targets");

        // Behavioral check: checking out all three kinds back-to-back
        // builds three plans (three misses), and each warm re-checkout
        // hits its own pool.
        drop(reg.checkout(n, &traj));
        drop(reg.checkout_spread(n, &traj));
        drop(reg.checkout_type3(&traj, &ta));
        let s = reg.stats();
        assert_eq!((s.misses, s.hits, s.cached_plans), (3, 0, 3));
        drop(reg.checkout(n, &traj));
        drop(reg.checkout_spread(n, &traj));
        drop(reg.checkout_type3(&traj, &ta));
        let s = reg.stats();
        assert_eq!((s.misses, s.hits, s.cached_plans), (3, 3, 3));
    }

    #[test]
    fn kernel_families_and_tolerances_never_alias_a_key() {
        // Regression: the tolerance planner folds its derived parameters
        // (kernel family, W, LUT density) into the registry key. Plans of
        // different accuracy — or the same accuracy via different families
        // — must never share a pool entry, or a caller asking for 1e-6
        // could be handed a 1e-2 plan.
        use crate::kernel::KernelChoice;
        let traj = traj2(140);
        let n = [16usize, 16];
        let base = cfg();
        let mut keys = Vec::new();
        for family in [KernelChoice::EsKernel, KernelChoice::KaiserBessel, KernelChoice::Gaussian] {
            for eps in [1e-2, 1e-4, 1e-6] {
                let c = base.with_tolerance_family(eps, family);
                keys.push(((family, eps), PlanRegistry::<2>::new(c).key_of(n, &traj)));
            }
        }
        for i in 0..keys.len() {
            for j in 0..i {
                assert_ne!(
                    keys[i].1, keys[j].1,
                    "{:?} and {:?} alias one registry key",
                    keys[i].0, keys[j].0
                );
            }
        }
        // Equal tolerances produce equal keys — sharing the plan across
        // tenants that asked for the same accuracy is the point.
        let a = PlanRegistry::<2>::new(base.with_tolerance(1e-4)).key_of(n, &traj);
        let b = PlanRegistry::<2>::new(base.with_tolerance(1e-4)).key_of(n, &traj);
        assert_eq!(a, b, "identical tolerances must share a key");
    }

    #[test]
    fn max_idle_caps_cached_instances() {
        let mut reg = PlanRegistry::<2>::new(cfg());
        reg.set_max_idle(1);
        let traj = traj2(120);
        let n = [16usize, 16];
        let a = reg.checkout(n, &traj);
        let b = reg.checkout(n, &traj);
        drop(a);
        drop(b); // over the cap: dropped, not cached
        assert_eq!(reg.stats().cached_plans, 1);
        reg.evict_idle();
        assert_eq!(reg.stats().cached_plans, 0);
    }

    #[test]
    fn service_submit_matches_direct_apply() {
        let traj = Arc::new(traj2(180));
        let n = [16usize, 16];
        let image: Vec<Complex32> = (0..16 * 16)
            .map(|i| Complex32::new((i as f32 * 0.11).sin(), (i as f32 * 0.05).cos()))
            .collect();

        let mut direct = NufftPlan::new(n, &traj, cfg());
        let mut want = vec![Complex32::ZERO; traj.len()];
        direct.forward(&image, &mut want);

        let svc = NufftService::<2>::new(cfg());
        let handle = svc.submit(ApplyRequest {
            n,
            traj: Arc::clone(&traj),
            op: ApplyOp::Forward,
            input: image,
            priority: JobPriority::High,
        });
        let got = handle.wait();
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(g.re.to_bits(), w.re.to_bits(), "re bits at {i}");
            assert_eq!(g.im.to_bits(), w.im.to_bits(), "im bits at {i}");
        }
        assert_eq!(svc.registry().stats().misses, 1);
    }

    #[test]
    fn sorted_and_unsorted_configs_never_alias_a_key() {
        // Regression: a TileMajor registry and a None registry see the
        // same trajectory — identical fingerprint, but the keys must
        // differ so the registries' plans (different internal layouts)
        // can never be confused by an embedding cache.
        let traj = traj2(150);
        let n = [16usize, 16];
        let sorted = PlanRegistry::<2>::new(NufftConfig { sort: SortMode::TileMajor, ..cfg() });
        let unsorted = PlanRegistry::<2>::new(NufftConfig { sort: SortMode::None, ..cfg() });
        let ks = sorted.key_of(n, &traj);
        let ku = unsorted.key_of(n, &traj);
        assert_eq!(ks.traj_fp, ku.traj_fp, "fingerprint is sort-independent");
        assert_ne!(ks, ku, "SortMode must be part of the key");
        assert_eq!(ks, sorted.key_of(n, &traj), "keys stay deterministic");
    }

    #[test]
    fn fingerprint_hashes_canonical_pre_sort_order() {
        // The fingerprint must see the caller's order, not any internal
        // tile order: a permuted trajectory is a *different* key even
        // though a bin-sorting plan would lay both out identically.
        let traj = traj2(150);
        let mut permuted = traj.clone();
        permuted.swap(3, 97);
        permuted.swap(12, 51);
        assert_ne!(
            traj_fingerprint(&traj),
            traj_fingerprint(&permuted),
            "caller order must matter"
        );
        let reg = PlanRegistry::<2>::new(NufftConfig { sort: SortMode::TileMajor, ..cfg() });
        let n = [16usize, 16];
        assert_ne!(reg.key_of(n, &traj), reg.key_of(n, &permuted));
    }

    #[test]
    fn fused_and_phased_instances_share_one_registry() {
        // exec_mode is a per-lease knob, not part of the key: flip it on a
        // leased instance and the result must stay bitwise-identical.
        let reg = PlanRegistry::<2>::new(cfg());
        let traj = traj2(160);
        let n = [16usize, 16];
        let samples: Vec<Complex32> = (0..traj.len())
            .map(|i| Complex32::new((i as f32 * 0.21).cos(), (i as f32 * 0.07).sin()))
            .collect();
        let mut a = vec![Complex32::ZERO; 16 * 16];
        let mut b = vec![Complex32::ZERO; 16 * 16];
        {
            let mut lease = reg.checkout(n, &traj);
            lease.set_exec_mode(ExecMode::Fused);
            lease.adjoint(&samples, &mut a);
        }
        {
            let mut lease = reg.checkout(n, &traj);
            lease.set_exec_mode(ExecMode::Phased);
            lease.adjoint(&samples, &mut b);
        }
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(x.re.to_bits(), y.re.to_bits(), "re bits at {i}");
            assert_eq!(x.im.to_bits(), y.im.to_bits(), "im bits at {i}");
        }
    }
}
