//! Roll-off correction ("scaling function", §II-B) with folded chop.
//!
//! Spectral convolution with the compact kernel apodizes the image by the
//! kernel's continuous Fourier transform: position `n` (centered) is
//! attenuated by `Π_d Â(n_d / M_d)`. The scale array precompensates by the
//! pointwise inverse — computed from the closed-form KB transform rather
//! than the paper's numeric delta-regridding, which we keep as a test-side
//! cross-check.
//!
//! Two further factors are folded into the same real array so the hot path
//! applies a single multiply per element:
//!
//! * the chop `(−1)^{Σ_d n_d}`, which centers the spectrum: grid bin `m`
//!   then corresponds to ν = m/M − 1/2, so trajectory coordinates map to
//!   grid coordinates by the affine `u = (ν + 1/2)·M`;
//! * nothing else — FFT normalization is deliberately *not* included, so
//!   the adjoint stays the exact conjugate-transpose of the forward.

use crate::grid::{for_each_index, Geometry};
use crate::kernel::InterpKernel;

/// Builds the combined scale array (roll-off ⁻¹ × chop) over the image.
///
/// Entry at row-major position `pos` is
/// `(−1)^{Σ(pos_d − N_d/2)} · Π_d 1/Â((pos_d − N_d/2)/M_d)`.
pub fn build_scale<const D: usize>(geo: &Geometry<D>, kernel: &InterpKernel) -> Vec<f32> {
    // Precompute per-dimension 1D factors, then take the outer product.
    let mut per_dim: Vec<Vec<f64>> = Vec::with_capacity(D);
    for d in 0..D {
        let n = geo.n[d];
        let m = geo.m[d] as f64;
        let f: Vec<f64> = (0..n)
            .map(|pos| {
                let c = pos as f64 - (n / 2) as f64; // centered index
                let a = kernel.fourier(c / m);
                assert!(
                    a.abs() > 1e-12,
                    "kernel FT vanishes inside the image band (dim {d}, n={c}); \
                     increase oversampling or kernel width"
                );
                let sign = if (pos + n / 2).is_multiple_of(2) { 1.0 } else { -1.0 };
                sign / a
            })
            .collect();
        per_dim.push(f);
    }
    let mut out = vec![0.0f32; geo.image_len()];
    for_each_index(&geo.n, |flat, idx| {
        let mut v = 1.0f64;
        for d in 0..D {
            v *= per_dim[d][idx[d]];
        }
        out[flat] = v as f32;
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nufft_fft::{naive::naive_dft64, Direction};
    use nufft_math::Complex64;

    #[test]
    fn scale_is_symmetric_in_magnitude() {
        let geo = Geometry::new([16], 2.0);
        let k = InterpKernel::new(4.0, 2.0);
        let s = build_scale(&geo, &k);
        // |s| is symmetric about the center index N/2.
        for i in 1..8 {
            let a = s[8 - i].abs();
            let b = s[8 + i].abs();
            assert!((a - b) / a < 1e-5, "asymmetric at ±{i}: {a} vs {b}");
        }
    }

    #[test]
    fn chop_sign_alternates() {
        let geo = Geometry::new([8], 2.0);
        let k = InterpKernel::new(4.0, 2.0);
        let s = build_scale(&geo, &k);
        for i in 0..7 {
            assert!(s[i] * s[i + 1] < 0.0, "no alternation at {i}");
        }
        // Center (pos = N/2, n = 0) is positive: sign = (−1)^{N/2 + N/2}.
        assert!(s[4] > 0.0);
    }

    #[test]
    fn magnitude_grows_toward_image_edge() {
        // The roll-off correction compensates edge attenuation, so |s| is
        // minimal at the center and grows monotonically outward.
        let geo = Geometry::new([32], 2.0);
        let k = InterpKernel::new(4.0, 2.0);
        let s = build_scale(&geo, &k);
        let mags: Vec<f32> = s.iter().map(|x| x.abs()).collect();
        for i in 16..31 {
            assert!(mags[i + 1] >= mags[i], "not growing at {i}");
        }
        assert!(mags[31] > mags[16]);
    }

    #[test]
    fn separable_outer_product_in_2d() {
        let geo2 = Geometry::new([4, 8], 2.0);
        let k = InterpKernel::new(2.0, 2.0);
        let s2 = build_scale(&geo2, &k);
        let sa = build_scale(&Geometry::new([4], 2.0), &k);
        let sb = build_scale(&Geometry::new([8], 2.0), &k);
        for i in 0..4 {
            for j in 0..8 {
                let want = sa[i] * sb[j];
                let got = s2[i * 8 + j];
                assert!((got - want).abs() < 1e-6 * want.abs(), "({i},{j})");
            }
        }
    }

    /// Cross-check the analytic roll-off against the paper's numeric recipe:
    /// grid a delta at the spectral center via the kernel, inverse-DFT, and
    /// compare the resulting image-domain apodization with 1/scale.
    #[test]
    fn analytic_rolloff_matches_numeric_delta_regridding() {
        let n = 24usize;
        let alpha = 2.0;
        let m = (n as f64 * alpha) as usize;
        let w = 4.0;
        let k = InterpKernel::new(w, alpha);
        let geo = Geometry::new([n], alpha);
        let s = build_scale(&geo, &k);

        // Scatter a unit sample at the exact grid center u = M/2 (ν = 0).
        let u = m as f64 / 2.0;
        let mut grid = vec![Complex64::ZERO; m];
        let x1 = (u - w).ceil() as i64;
        let x2 = (u + w).floor() as i64;
        for nx in x1..=x2 {
            let kx = nx.rem_euclid(m as i64) as usize;
            grid[kx] += Complex64::from_re(k.eval_exact(nx as f64 - u));
        }
        // Backward DFT and read the centered image region; the chop in the
        // scale accounts for the center offset, so apply it symmetrically:
        // apodization a[pos] should satisfy a[pos] · s[pos] ≈ const = 1.
        let img = naive_dft64(&grid, Direction::Backward);
        for pos in 0..n {
            let wrapped = (pos + m - n / 2) % m;
            let a = img[wrapped];
            let prod = a.re * s[pos] as f64 // chop sign folds the (−1)^n phase
                - 0.0;
            // The imaginary part must vanish (symmetric real kernel).
            assert!(a.im.abs() < 1e-9 * a.re.abs().max(1e-12), "pos {pos}: {a:?}");
            assert!(
                (prod.abs() - 1.0).abs() < 2e-3,
                "pos {pos}: apodization×scale = {prod}, expected ±1"
            );
        }
    }
}
