//! Plan-owned window tables: precomputed Part 1 (Figure 7 amortization).
//!
//! The paper's Figure 7 shows the per-sample window/LUT computation
//! ("Part 1") is a non-trivial slice of convolution time, and the headline
//! use case — iterative CG reconstruction over a fixed trajectory —
//! recomputes it on every operator apply. [`WindowTable`] stores the exact
//! Part 1 output once at plan build, in a packed structure-of-arrays
//! layout (per-sample `start: i32` + fixed-stride `f32` weight rows) that
//! the existing Part 2 row kernels load directly via [`WinRef`].
//!
//! The table stores the *bit-exact* output of [`Window::compute`], so a
//! precomputed apply is bitwise-identical to an on-the-fly apply at every
//! ISA level — the equality is by construction, not by tolerance.
//!
//! [`WindowMode::Auto`] resolves by memory budget: the table costs
//! `≈ samples × D × (stride × 4 + 5)` bytes (see
//! [`WindowTable::estimate_bytes`]), which for a 3D trajectory at `W = 4`
//! is ~200 B/sample — usually an easy win for 2D, a deliberate choice
//! for large 3D point sets.

use crate::conv::{WinRef, Window, MAX_TAPS};
use crate::kernel::InterpKernel;
use nufft_parallel::exec::Executor;

/// How a plan obtains per-sample interpolation windows (Part 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum WindowMode {
    /// Recompute every window on every apply (no extra memory) — the
    /// historical behavior.
    #[default]
    OnTheFly,
    /// Compute all windows once at plan build and reuse the table on every
    /// apply.
    Precomputed,
    /// Precompute iff the table fits the given memory budget in bytes.
    Auto(usize),
}

impl WindowMode {
    /// Resolves `Auto` against a concrete table size, leaving the two
    /// concrete modes untouched.
    pub fn resolve(self, table_bytes: usize) -> WindowMode {
        match self {
            WindowMode::Auto(budget) => {
                if table_bytes <= budget {
                    WindowMode::Precomputed
                } else {
                    WindowMode::OnTheFly
                }
            }
            other => other,
        }
    }
}

/// Raw-pointer wrapper for the disjoint per-sample writes of the parallel
/// table build (same soundness argument as the operator drivers: every
/// index `i` writes its own rows).
#[derive(Clone, Copy)]
struct SendPtr<T>(*mut T);
// SAFETY: all users write pairwise-disjoint regions.
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: as above.
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the whole
    /// `SendPtr` — edition-2021 precise capture would otherwise grab the
    /// raw-pointer field itself, which is not `Sync`.
    fn get(self) -> *mut T {
        self.0
    }
}

/// Packed SoA table of every sample's D windows, in the plan's *internal*
/// (reordered) sample order so table reads during convolution are
/// sequential.
///
/// Layout, indexed by `idx = i * D + d`:
/// * `starts[idx]` — first (unwrapped) neighbor index;
/// * `lens[idx]` — tap count (≤ [`MAX_TAPS`], so `u8` suffices);
/// * `weights[idx * stride ..][..lens[idx]]` — the live weight row.
///
/// `stride` is the maximum tap count rounded up to a full 32-byte SIMD
/// vector of `f32`, keeping every weight row aligned-stride loadable and
/// the tail of each row zero.
pub struct WindowTable<const D: usize> {
    stride: usize,
    starts: Vec<i32>,
    lens: Vec<u8>,
    weights: Vec<f32>,
}

impl<const D: usize> WindowTable<D> {
    /// Weight-row stride for kernel radius `wrad`: `2⌈W⌉+1` rounded up to
    /// 8 floats.
    pub fn stride_for(wrad: f64) -> usize {
        let taps = 2 * wrad.ceil() as usize + 1;
        taps.min(MAX_TAPS).next_multiple_of(8)
    }

    /// Table size in bytes for `n` samples (the `Auto` heuristic's input).
    pub fn estimate_bytes(n: usize, wrad: f64) -> usize {
        let per_dim = Self::stride_for(wrad) * core::mem::size_of::<f32>()
            + core::mem::size_of::<i32>()
            + core::mem::size_of::<u8>();
        n * D * per_dim
    }

    /// Builds the table by running Part 1 once over every coordinate
    /// (parallelized over samples). Stores the exact [`Window::compute`]
    /// output, so table lookups reproduce on-the-fly windows bit-for-bit.
    pub fn build(
        coords: &[[f32; D]],
        wrad: f32,
        kernel: &InterpKernel,
        exec: &Executor,
        grain: usize,
    ) -> Self {
        let n = coords.len();
        let stride = Self::stride_for(wrad as f64);
        let mut starts = vec![0i32; n * D];
        let mut lens = vec![0u8; n * D];
        let mut weights = vec![0.0f32; n * D * stride];
        {
            let sp = SendPtr(starts.as_mut_ptr());
            let lp = SendPtr(lens.as_mut_ptr());
            let wp = SendPtr(weights.as_mut_ptr());
            exec.parallel_for(n, grain.max(1), |range, _w| {
                for i in range {
                    for d in 0..D {
                        let win = Window::compute(coords[i][d], wrad, kernel);
                        debug_assert!(win.len <= stride, "window wider than table stride");
                        let idx = i * D + d;
                        // SAFETY: each sample index writes only its own
                        // rows; ranges are disjoint across workers.
                        unsafe {
                            *sp.get().add(idx) = win.start;
                            *lp.get().add(idx) = win.len as u8;
                            core::ptr::copy_nonoverlapping(
                                win.w.as_ptr(),
                                wp.get().add(idx * stride),
                                win.len,
                            );
                        }
                    }
                }
            });
        }
        WindowTable { stride, starts, lens, weights }
    }

    /// Number of samples tabled.
    pub fn len(&self) -> usize {
        self.starts.len() / D
    }

    /// True if the table holds no samples.
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Actual heap footprint of the table in bytes.
    pub fn bytes(&self) -> usize {
        self.weights.len() * core::mem::size_of::<f32>()
            + self.starts.len() * core::mem::size_of::<i32>()
            + self.lens.len()
    }

    /// Sample `i`'s D windows as borrowed rows — zero-copy, directly
    /// consumable by the Part 2 kernels.
    #[inline]
    pub fn windows(&self, i: usize) -> [WinRef<'_>; D] {
        core::array::from_fn(|d| {
            let idx = i * D + d;
            let len = self.lens[idx] as usize;
            let base = idx * self.stride;
            WinRef { start: self.starts[idx], w: &self.weights[base..base + len] }
        })
    }
}

/// Where a convolution driver gets its windows: Part 1 on the fly, or the
/// plan's precomputed table. One branch per sample, perfectly predicted —
/// both arms feed the identical Part 2 path.
pub enum WindowSource<'a, const D: usize> {
    /// Compute Part 1 per sample from coordinates.
    Fly { coords: &'a [[f32; D]], wrad: f32, kernel: &'a InterpKernel },
    /// Read the precomputed table.
    Table(&'a WindowTable<D>),
}

impl<'a, const D: usize> WindowSource<'a, D> {
    /// Sample `i`'s windows. `stage` is caller-provided staging storage for
    /// the on-the-fly arm (so the driver's hot loop performs no allocation);
    /// the table arm borrows straight from the table.
    #[inline]
    pub fn at<'s>(&'s self, i: usize, stage: &'s mut [Window; D]) -> [WinRef<'s>; D] {
        match self {
            WindowSource::Fly { coords, wrad, kernel } => {
                for d in 0..D {
                    stage[d] = Window::compute(coords[i][d], *wrad, kernel);
                }
                crate::conv::win_refs(stage)
            }
            WindowSource::Table(t) => t.windows(i),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{KernelChoice, DEFAULT_LUT_DENSITY};

    fn kernel() -> InterpKernel {
        InterpKernel::of(KernelChoice::KaiserBessel, 2.0, 2.0, DEFAULT_LUT_DENSITY)
    }

    #[test]
    fn table_reproduces_window_compute_bitwise() {
        let k = kernel();
        let coords: Vec<[f32; 2]> = (0..257)
            .map(|i| {
                let u = (i as f32 * 0.613) % 16.0;
                let v = (i as f32 * 7.41) % 16.0;
                [u, v]
            })
            .collect();
        let exec = Executor::new(2);
        let table = WindowTable::<2>::build(&coords, 2.0, &k, &exec, 64);
        assert_eq!(table.len(), coords.len());
        let mut stage = [Window::EMPTY; 2];
        let fly = WindowSource::Fly { coords: &coords, wrad: 2.0, kernel: &k };
        for i in 0..coords.len() {
            let from_table = table.windows(i);
            let from_fly = fly.at(i, &mut stage);
            for d in 0..2 {
                assert_eq!(from_table[d].start, from_fly[d].start, "start i={i} d={d}");
                assert_eq!(from_table[d].len(), from_fly[d].len(), "len i={i} d={d}");
                for (a, b) in from_table[d].w.iter().zip(from_fly[d].w) {
                    assert_eq!(a.to_bits(), b.to_bits(), "weight bits i={i} d={d}");
                }
            }
        }
    }

    #[test]
    fn auto_resolves_by_budget() {
        let n = 10_000;
        let bytes = WindowTable::<3>::estimate_bytes(n, 4.0);
        assert_eq!(WindowMode::Auto(bytes).resolve(bytes), WindowMode::Precomputed);
        assert_eq!(WindowMode::Auto(bytes - 1).resolve(bytes), WindowMode::OnTheFly);
        assert_eq!(WindowMode::Precomputed.resolve(usize::MAX), WindowMode::Precomputed);
        assert_eq!(WindowMode::OnTheFly.resolve(0), WindowMode::OnTheFly);
    }

    #[test]
    fn estimate_matches_actual_footprint() {
        let k = kernel();
        let coords: Vec<[f32; 1]> = (0..100).map(|i| [(i as f32 * 0.37) % 16.0]).collect();
        let exec = Executor::new(1);
        let table = WindowTable::<1>::build(&coords, 2.0, &k, &exec, 16);
        assert_eq!(table.bytes(), WindowTable::<1>::estimate_bytes(100, 2.0));
    }

    #[test]
    fn stride_is_simd_friendly() {
        assert_eq!(WindowTable::<2>::stride_for(2.0), 8); // 5 taps -> 8
        assert_eq!(WindowTable::<2>::stride_for(4.0), 16); // 9 taps -> 16
        assert_eq!(WindowTable::<2>::stride_for(8.0), 24); // 17 taps -> 24
    }
}
