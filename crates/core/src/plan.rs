//! The NUFFT plan: preprocess once, apply forward/adjoint many times.
//!
//! [`NufftPlan`] is a **composition of the four stage operators** in
//! [`crate::stage`]: a [`SpreadOp`] (adjoint scatter convolution), an
//! [`InterpOp`] (forward gather convolution), an [`FftOp`] (oversampled
//! n-dimensional FFT) and a [`DeconvOp`] (roll-off scale + embed/extract).
//! The plan owns one instance of each, plus the oversampled grid
//! workspace(s) and the fused whole-operator graphs. The two operators are
//! exact adjoints of each other:
//!
//! * [`NufftPlan::forward`] (the paper's FWD, MRI "type 2"):
//!   [`DeconvOp::embed`] → [`FftOp`] forward → [`InterpOp`] gather;
//! * [`NufftPlan::adjoint`] (the paper's ADJ, "type 1"):
//!   [`SpreadOp`] scatter → [`FftOp`] backward (unnormalized) →
//!   [`DeconvOp::extract`].
//!
//! The standalone pieces are public too: [`NufftPlan::spread_only`] and
//! [`NufftPlan::interp_only`] run just the convolution stage (density
//! estimation / off-grid resampling workloads), and
//! [`crate::type3::Type3Plan`] composes the same operators into a
//! nonuniform→nonuniform (type-3) transform.
//!
//! All four transform paths (single and batched, forward and adjoint) run
//! through *one* convolution engine — the stage drivers in `crate::stage` —
//! so the batched variants are bitwise-identical to a loop of single
//! applies at `C = 1` by construction, and the privatization protocol
//! applies to the batched adjoint as well.
//!
//! Steady-state applies perform **zero heap allocations**: the task-graph
//! run state, FFT tile scratch and four-step `fs` buffer live inside the
//! stage operators, and pointer staging uses reusable plan vectors
//! (verified by the umbrella crate's counting-allocator test).
//!
//! Every phase is timed ([`OpTimers`]) and the adjoint convolution records
//! per-worker/per-task execution logs ([`NufftPlan::last_run_stats`]) for
//! the load-balance experiments.

use crate::conv::{
    adjoint_scatter, adjoint_scatter_local, forward_gather, forward_gather2, reduce_local, Window,
};
use crate::fused::{self, FusedApply, TilePlan};
use crate::grid::{embed_scaled_slab, extract_scaled_range, Geometry};
use crate::kernel::{beatty_beta, InterpKernel, KernelChoice, DEFAULT_LUT_DENSITY};
use crate::stage::{
    check_kernel_fit, default_partitions, DeconvOp, FftOp, InterpOp, SendPtr, SpreadOp,
};
use crate::tasks::{preprocess, Preprocess, PreprocessConfig, SortMode};
use crate::windows::{WindowMode, WindowSource, WindowTable};
use nufft_fft::{Direction, FftNd, FftStrategy};
use nufft_math::Complex32;
use nufft_parallel::exec::{
    DagScratch, ExecBackend, Executor, JobPriority, RunStats, TaskPhase, TaskRecord,
};
use nufft_parallel::graph::{Dag, QueuePolicy, TaskGraph};
use nufft_parallel::scratch::WorkerLocal;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// How an operator application is scheduled.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecMode {
    /// One heterogeneous task graph — built at plan time — covers the whole
    /// operator (scale/zero slabs, per-axis FFT tile chunks, the scatter
    /// task graph, gather/extract chunks) and runs in a single executor
    /// dispatch with **no joins between phases**: a worker finishing its
    /// last axis-0 FFT chunk starts an axis-1 chunk whose inputs are ready
    /// while stragglers still work on axis 0. Output is bitwise-identical
    /// to [`ExecMode::Phased`]. See `crate::fused` and DESIGN.md §12.
    #[default]
    Fused,
    /// The historical pipeline: each phase is a separate executor dispatch
    /// with an implicit join after it (`D + 2` joins per apply). Retained
    /// for A/B measurement (`benches/fused.rs`) and for experiments that
    /// want clean per-phase attribution.
    Phased,
}

/// Plan construction knobs. `Default` reproduces the paper's main
/// configuration: α = 2, W = 4, priority queue, variable-width partitions,
/// selective privatization on, and the §III-D sample sort on `Auto`
/// (tile-major layout when the trajectory is disordered).
#[derive(Clone, Copy, Debug)]
pub struct NufftConfig {
    /// Grid oversampling factor α = M/N.
    pub alpha: f64,
    /// Kernel radius `W` in oversampled-grid units.
    pub w: f64,
    /// Worker threads.
    pub threads: usize,
    /// Ready-queue discipline for the adjoint convolution.
    pub policy: QueuePolicy,
    /// Partitions per dimension (`None` = sized from the thread count).
    pub partitions_per_dim: Option<usize>,
    /// Use fixed-width partitions (Figure 11 baseline) instead of
    /// variable-width.
    pub fixed_partitions: bool,
    /// Enable selective privatization (Eq. 6).
    pub privatization: bool,
    /// Bin-sort policy for the internal sample layout (§III-D + the
    /// cuFINUFFT-style tile sort): [`SortMode::TileMajor`] permutes
    /// storage so conv hot loops stream grid tiles, [`SortMode::None`]
    /// keeps caller order, [`SortMode::Auto`] (default) decides from the
    /// trajectory's measured disorder. Operator output is
    /// bitwise-identical across all modes.
    pub sort: SortMode,
    /// Kernel family (Kaiser–Bessel is the paper's; Gaussian is the
    /// Greengard–Lee comparison kernel).
    pub kernel: KernelChoice,
    /// Kernel LUT entries per unit argument.
    pub lut_density: usize,
    /// Samples per chunk in the forward gather's dynamic loop.
    pub grain: usize,
    /// Scheduler backend. The default persistent pool keeps workers
    /// resident across operator applies; `SpawnPerCall` is the historical
    /// baseline retained for A/B measurement (`benches/pool.rs`).
    pub backend: ExecBackend,
    /// How Part 1 windows are obtained at apply time: recomputed on the
    /// fly (historical default), precomputed into a plan-owned table, or
    /// chosen automatically under a memory budget. See
    /// [`crate::windows::WindowMode`] and `benches/windows.rs`.
    pub window_mode: WindowMode,
    /// Whole-operator scheduling: one fused task graph (default) or the
    /// historical barrier-per-phase pipeline. Bitwise-identical output
    /// either way.
    pub exec_mode: ExecMode,
    /// Admission priority of this plan's dispatches when several tenants
    /// share one persistent pool: the fair-share scheduler grants runnable
    /// jobs worker steps proportional to their priority tickets, so a
    /// `High` 2D forward keeps progressing under a `Low` 3D adjoint flood.
    /// Ignored by [`ExecBackend::SpawnPerCall`] (one job at a time there).
    pub admission: JobPriority,
    /// Per-axis FFT execution strategy: `Auto` (default) runs the four-step
    /// (sub-FFT + cache-blocked transpose) decomposition on axes whose
    /// lines exceed [`NufftConfig::fft_llc_budget`] and the recursive path
    /// otherwise; `Recursive`/`FourStep` force one path on every (eligible)
    /// axis. Output is bitwise-identical across strategies.
    pub fft_strategy: FftStrategy,
    /// The `Auto` threshold in bytes: an axis whose single line of complex
    /// data exceeds this budget (nominally the per-core LLC share) runs
    /// four-step.
    pub fft_llc_budget: usize,
}

impl Default for NufftConfig {
    fn default() -> Self {
        NufftConfig {
            alpha: 2.0,
            w: 4.0,
            threads: Executor::host_threads(),
            policy: QueuePolicy::Priority,
            partitions_per_dim: None,
            fixed_partitions: false,
            privatization: true,
            sort: SortMode::Auto,
            kernel: KernelChoice::KaiserBessel,
            lut_density: DEFAULT_LUT_DENSITY,
            grain: 256,
            backend: ExecBackend::Persistent,
            window_mode: WindowMode::OnTheFly,
            exec_mode: ExecMode::Fused,
            admission: JobPriority::Normal,
            fft_strategy: FftStrategy::Auto,
            fft_llc_budget: nufft_fft::DEFAULT_LLC_BUDGET,
        }
    }
}

impl NufftConfig {
    /// Tolerance-driven configuration: maps a requested relative accuracy
    /// `eps` to a kernel family and its `(W, α, LUT density)` operating
    /// point, leaving every other knob at its default. The default family
    /// is the ES kernel with the FINUFFT width rule
    /// `ns = ⌈log₁₀(1/eps)⌉ + 1` at α = 2 — the narrowest kernel (and the
    /// Horner fast path) for the requested accuracy. Explicit `(W, α)`
    /// construction is untouched: a config built by hand behaves exactly
    /// as before.
    ///
    /// # Panics
    /// Panics unless `0 < eps < 1`.
    pub fn tolerance(eps: f64) -> Self {
        Self::default().with_tolerance(eps)
    }

    /// Re-derives this config's kernel parameters from a tolerance,
    /// keeping all non-kernel knobs (threads, sort, exec mode, …). Uses
    /// the default ES family; see [`NufftConfig::with_tolerance_family`]
    /// for the per-family mapping rules.
    ///
    /// # Panics
    /// Panics unless `0 < eps < 1`.
    pub fn with_tolerance(self, eps: f64) -> Self {
        self.with_tolerance_family(eps, KernelChoice::EsKernel)
    }

    /// Re-derives this config's kernel parameters from a tolerance for a
    /// chosen family, at the config's current oversampling α:
    ///
    /// * **ES** — width `ns = 2W = ⌈log₁₀(1/eps)⌉ + 1` (clamped to the
    ///   supported 2..=16 cells), the FINUFFT rule;
    /// * **Kaiser–Bessel** — the narrowest half-cell width whose aliasing
    ///   model `10·e^{−β(W,α)}` meets `eps`, with the LUT density raised
    ///   as `√(1/eps)` so table interpolation error (≈ 5·10⁻⁵ at the
    ///   default 512) never swamps the budget;
    /// * **Gaussian** — the Greengard–Lee truncation model
    ///   `eps ≈ 10·e^{−πW(1−1/(2α))}`, rounded up to a half cell.
    ///
    /// The derived `(kernel, W, lut_density)` are all part of the plan
    /// registry key, so plans at different tolerances never alias; equal
    /// tolerances map to equal keys and share one plan.
    ///
    /// # Panics
    /// Panics unless `0 < eps < 1`.
    pub fn with_tolerance_family(mut self, eps: f64, family: KernelChoice) -> Self {
        assert!(
            eps > 0.0 && eps < 1.0,
            "tolerance must be a relative accuracy in (0, 1), got {eps}"
        );
        self.kernel = family;
        match family {
            KernelChoice::EsKernel => {
                let ns = ((1.0 / eps).log10().ceil() + 1.0).clamp(2.0, 16.0);
                self.w = ns / 2.0;
            }
            KernelChoice::KaiserBessel => {
                let mut w = 1.0f64;
                while w < 8.0 && 10.0 * (-beatty_beta(w, self.alpha)).exp() > eps {
                    w += 0.5;
                }
                self.w = w;
                let density = (DEFAULT_LUT_DENSITY as f64 * (5e-5 / eps).sqrt())
                    .max(DEFAULT_LUT_DENSITY as f64) as usize;
                self.lut_density = density.next_power_of_two().clamp(512, 8192);
            }
            KernelChoice::Gaussian => {
                let decay = core::f64::consts::PI * (1.0 - 1.0 / (2.0 * self.alpha));
                let w = ((10.0 / eps).ln() / decay).clamp(1.0, 8.0);
                self.w = (w * 2.0).ceil() / 2.0;
            }
        }
        self
    }
}

/// Wall-clock breakdown of one operator application, in seconds — the
/// quantities behind Figures 3 and 8.
#[derive(Clone, Copy, Debug, Default)]
pub struct OpTimers {
    /// Scale phase: roll-off multiply + embed/extract.
    pub scale: f64,
    /// Oversampled (i)FFT.
    pub fft: f64,
    /// Convolution interpolation (includes grid zeroing for the adjoint).
    pub conv: f64,
    /// End-to-end operator time.
    pub total: f64,
    /// Four-step sub-FFT pass portion of `fft` (wall-clock span; zero when
    /// every axis runs the recursive path).
    pub fft_sub: f64,
    /// Four-step transpose-and-combine pass portion of `fft` (wall-clock
    /// span; zero when every axis runs the recursive path).
    pub fft_transpose: f64,
    /// CPU-seconds summed across workers inside the combine pass's fused
    /// twiddle/gather sweep — the transpose-read half of `fft_transpose`,
    /// isolating the hoisted twiddle multiply from the in-cache butterflies.
    pub fft_twiddle: f64,
}

/// A reusable D-dimensional NUFFT plan (D ∈ {1, 2, 3}).
pub struct NufftPlan<const D: usize> {
    cfg: NufftConfig,
    geo: Geometry<D>,
    exec: Executor,
    /// Adjoint scatter-convolution stage (owns preprocessing, kernel,
    /// window table, privatized halo buffers and the graph run scratch).
    spread: SpreadOp<D>,
    /// Forward gather-convolution stage (shares the spread's `Arc`s).
    interp: InterpOp<D>,
    /// Oversampled-FFT stage (owns the tile plan, per-worker tile scratch
    /// and the four-step `fs` intermediate buffer).
    fft_op: FftOp,
    /// Roll-off correction stage (geometry + scale array).
    deconv: DeconvOp<D>,
    grid: Vec<Complex32>,
    /// Extra grids for the batched (multi-coil) operators, grown on demand.
    batch_grids: Vec<Vec<Complex32>>,
    /// Reusable pointer staging for the batched operators.
    ptr_scratch: Vec<SendPtr<Complex32>>,
    /// Second staging vector for operators that need two pointer sets at
    /// once (fused batch: grids + outputs).
    ptr_scratch2: Vec<SendPtr<Complex32>>,
    /// Fused whole-operator graphs, cached per channel count: `(C, graph)`.
    fused_fwd: Vec<(usize, FusedApply)>,
    fused_adj: Vec<(usize, FusedApply)>,
    /// Fused spread-only graph (zero slabs + scatter task graph, no FFT or
    /// extract fragments), built on first [`NufftPlan::spread_only`].
    fused_spread: Option<FusedApply>,
    /// Reusable fused-graph run state (shards, pending counters, node logs).
    dag_scratch: DagScratch,
    /// Conv-phase stats synthesized from the last fused adjoint's node log,
    /// shaped like the phased scheduler's (for `last_run_stats`).
    fused_stats: RunStats,
    preprocess_seconds: f64,
    last_forward: OpTimers,
    last_adjoint: OpTimers,
    /// Which scratch holds the most recent adjoint-convolution stats.
    stats_source: StatsSource,
}

/// Where `last_run_stats` should read from (nowhere until an adjoint ran).
#[derive(Clone, Copy, PartialEq, Eq)]
enum StatsSource {
    None,
    Phased,
    Fused,
}

impl<const D: usize> NufftPlan<D> {
    /// Builds a plan for image extents `n` and a trajectory in normalized
    /// frequencies `ν ∈ [-1/2, 1/2)` per dimension.
    ///
    /// # Panics
    /// Panics if `D ∉ {1,2,3}`, extents are zero, the kernel does not fit
    /// the grid (`M < 2W+1`), the kernel is wider than
    /// [`crate::conv::MAX_TAPS`], or a trajectory point is out of range.
    pub fn new(n: [usize; D], traj: &[[f64; D]], cfg: NufftConfig) -> Self {
        assert!((1..=3).contains(&D), "only 1D/2D/3D supported");
        let geo = Geometry::new(n, cfg.alpha);
        Self::from_grid_coords(n, Self::to_grid_coords(&geo, traj), cfg)
    }

    /// Tolerance-driven planning: [`NufftPlan::new`] with the kernel
    /// family and its parameters derived from the requested relative
    /// accuracy (the ES kernel by default — see
    /// [`NufftConfig::with_tolerance`]) and every other knob at its
    /// default.
    ///
    /// # Panics
    /// See [`NufftPlan::new`]; additionally panics unless `0 < eps < 1`.
    pub fn with_tolerance(n: [usize; D], traj: &[[f64; D]], eps: f64) -> Self {
        Self::new(n, traj, NufftConfig::tolerance(eps))
    }

    /// [`NufftPlan::new`] on a caller-supplied executor (several plans
    /// interleave their applies on one shared worker pool) and an optional
    /// prebuilt window table. Used by [`crate::registry::PlanRegistry`];
    /// see [`NufftPlan::from_grid_coords_shared`] for the sharing rules.
    ///
    /// # Panics
    /// See [`NufftPlan::new`]; additionally panics if a shared table's
    /// sample count does not match the trajectory.
    pub fn new_shared(
        n: [usize; D],
        traj: &[[f64; D]],
        cfg: NufftConfig,
        exec: Executor,
        windows: Option<Arc<WindowTable<D>>>,
    ) -> Self {
        assert!((1..=3).contains(&D), "only 1D/2D/3D supported");
        let geo = Geometry::new(n, cfg.alpha);
        Self::from_grid_coords_shared(n, Self::to_grid_coords(&geo, traj), cfg, exec, windows)
    }

    /// Normalized frequencies `ν ∈ [-1/2, 1/2)` → oversampled-grid units
    /// `[0, M)` (the internal coordinate convention).
    fn to_grid_coords(geo: &Geometry<D>, traj: &[[f64; D]]) -> Vec<[f32; D]> {
        traj.iter()
            .map(|p| {
                core::array::from_fn(|d| {
                    assert!(
                        (-0.5..0.5).contains(&p[d]),
                        "trajectory component {} outside [-1/2, 1/2)",
                        p[d]
                    );
                    let mf = geo.m[d] as f64;
                    let mut u = ((p[d] + 0.5) * mf) as f32;
                    if u >= geo.m[d] as f32 {
                        u -= geo.m[d] as f32;
                    }
                    u
                })
            })
            .collect()
    }

    /// Builds a plan from coordinates already in oversampled-grid units
    /// `[0, M)`.
    ///
    /// # Panics
    /// See [`NufftPlan::new`].
    pub fn from_grid_coords(n: [usize; D], coords: Vec<[f32; D]>, cfg: NufftConfig) -> Self {
        let exec = Executor::with_backend(cfg.threads.max(1), cfg.backend);
        Self::from_grid_coords_shared(n, coords, cfg, exec, None)
    }

    /// [`NufftPlan::from_grid_coords`] on a caller-supplied executor and an
    /// optional prebuilt window table.
    ///
    /// The executor's thread count overrides `cfg.threads` (every plan on a
    /// shared pool must agree with the pool's width; the stored config is
    /// normalized so `config()` reflects reality). A shared table is only
    /// valid when it was built by a plan with the *same* trajectory and
    /// preprocessing configuration — the internal sample order (task
    /// binning and [`SortMode`] layout) must match — which
    /// [`crate::registry::PlanRegistry`] guarantees by keying tables on
    /// (grid, kernel params, sort mode, trajectory fingerprint).
    ///
    /// # Panics
    /// See [`NufftPlan::new`]; additionally panics if a shared table's
    /// sample count does not match the trajectory.
    pub fn from_grid_coords_shared(
        n: [usize; D],
        coords: Vec<[f32; D]>,
        mut cfg: NufftConfig,
        exec: Executor,
        shared_windows: Option<Arc<WindowTable<D>>>,
    ) -> Self {
        cfg.threads = exec.threads();
        let geo = Geometry::new(n, cfg.alpha);
        check_kernel_fit(&geo.m, cfg.w);
        let kernel = Arc::new(InterpKernel::of(cfg.kernel, cfg.w, cfg.alpha, cfg.lut_density));
        let deconv = DeconvOp::plan(n, cfg.alpha, &kernel);
        let threads = cfg.threads.max(1);
        let fft_op = FftOp::plan(&geo.m, cfg.fft_strategy, cfg.fft_llc_budget, threads);

        let partitions = cfg.partitions_per_dim.unwrap_or_else(|| default_partitions(threads, D));
        let pcfg = PreprocessConfig {
            partitions_per_dim: partitions,
            w: cfg.w,
            fixed_partitions: cfg.fixed_partitions,
            privatization: cfg.privatization,
            threads: cfg.threads,
            sort: cfg.sort,
            tile: (4.0 * cfg.w).ceil() as usize,
        };
        let t0 = Instant::now();
        let pre = Arc::new(preprocess(&coords, geo.m, &pcfg));
        let preprocess_seconds = t0.elapsed().as_secs_f64();

        let windows = match shared_windows {
            Some(table) => {
                assert_eq!(
                    table.len(),
                    pre.coords.len(),
                    "shared window table sample count mismatch"
                );
                Some(table)
            }
            None => match cfg
                .window_mode
                .resolve(WindowTable::<D>::estimate_bytes(pre.coords.len(), cfg.w))
            {
                WindowMode::Precomputed => Some(Arc::new(WindowTable::build(
                    &pre.coords,
                    cfg.w as f32,
                    &kernel,
                    &exec,
                    cfg.grain,
                ))),
                _ => None,
            },
        };

        let spread = SpreadOp::from_parts(geo.m, pre, kernel, cfg.w as f32, cfg.policy, windows);
        let interp = InterpOp::from_spread(&spread, cfg.grain);

        let grid = vec![Complex32::ZERO; geo.grid_len()];
        NufftPlan {
            cfg,
            geo,
            exec,
            spread,
            interp,
            fft_op,
            deconv,
            grid,
            batch_grids: Vec::new(),
            ptr_scratch: Vec::new(),
            ptr_scratch2: Vec::new(),
            fused_fwd: Vec::new(),
            fused_adj: Vec::new(),
            fused_spread: None,
            dag_scratch: DagScratch::new(),
            fused_stats: RunStats::default(),
            preprocess_seconds,
            last_forward: OpTimers::default(),
            last_adjoint: OpTimers::default(),
            stats_source: StatsSource::None,
        }
    }

    /// Problem geometry.
    pub fn geometry(&self) -> &Geometry<D> {
        &self.geo
    }

    /// Active configuration.
    pub fn config(&self) -> &NufftConfig {
        &self.cfg
    }

    /// Number of non-uniform samples.
    pub fn num_samples(&self) -> usize {
        self.spread.num_samples()
    }

    /// Image element count (`Π n_d`).
    pub fn image_len(&self) -> usize {
        self.geo.image_len()
    }

    /// Oversampled grid element count (`Π m_d`) — the buffer length
    /// [`NufftPlan::spread_only`] / [`NufftPlan::interp_only`] work with.
    pub fn grid_len(&self) -> usize {
        self.geo.grid_len()
    }

    /// The preprocessing wall time (Figure 14).
    pub fn preprocess_seconds(&self) -> f64 {
        self.preprocess_seconds
    }

    /// The task-dependency graph (weights = task sample counts) — consumed
    /// by the `nufft-sim` scaling experiments.
    pub fn graph(&self) -> &TaskGraph {
        &self.spread.pre.graph
    }

    /// The *effective* sort mode after [`SortMode::Auto`] resolution —
    /// never `Auto`.
    pub fn sort_mode(&self) -> SortMode {
        self.spread.pre.sort
    }

    /// Plan-time tile-revisit count of the forward gather's grid traversal
    /// (storage order): the number of times a walk over the samples
    /// re-enters a grid tile it already visited. 0 ⇒ perfect streaming;
    /// ~`num_samples` ⇒ every sample is a cache-cold jump. Fixed per plan,
    /// also stamped into [`NufftPlan::last_run_stats`] after adjoints.
    pub fn gather_tile_revisits(&self) -> u64 {
        self.spread.pre.storage_revisits
    }

    /// Plan-time tile-revisit count of the adjoint scatter's canonical
    /// (tile-major) traversal — identical across sort modes by the
    /// determinism rule; under [`SortMode::None`] the scatter still pays
    /// random *sample-data* reads through the scan indirection.
    pub fn scatter_tile_revisits(&self) -> u64 {
        self.spread.pre.canonical_revisits
    }

    /// Phase breakdown of the most recent [`NufftPlan::forward`].
    pub fn forward_timers(&self) -> OpTimers {
        self.last_forward
    }

    /// Phase breakdown of the most recent [`NufftPlan::adjoint`].
    pub fn adjoint_timers(&self) -> OpTimers {
        self.last_adjoint
    }

    /// Per-worker/per-task execution log of the most recent adjoint
    /// convolution. Under [`ExecMode::Fused`] this is synthesized from the
    /// fused run's node log (conv/priv/reduce nodes only), so consumers see
    /// the same shape either way.
    pub fn last_run_stats(&self) -> Option<&RunStats> {
        match self.stats_source {
            StatsSource::None => None,
            StatsSource::Phased => Some(self.spread.scratch.stats()),
            StatsSource::Fused => Some(&self.fused_stats),
        }
    }

    /// The active scheduling mode.
    pub fn exec_mode(&self) -> ExecMode {
        self.cfg.exec_mode
    }

    /// Switches between the fused whole-operator graph and the historical
    /// phased pipeline. Output is bitwise-identical in both modes; only
    /// scheduling (and hence timing attribution) changes.
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.cfg.exec_mode = mode;
    }

    /// The fused whole-operator graph for one direction and channel count,
    /// building (and caching) it if this plan hasn't used it yet — consumed
    /// by the `nufft-sim` fused-vs-phased replay experiments.
    pub fn fused_dag(&mut self, adjoint: bool, channels: usize) -> &Dag {
        let i = self.ensure_fused(adjoint, channels);
        let cache = if adjoint { &self.fused_adj } else { &self.fused_fwd };
        &cache[i].1.dag
    }

    /// The *effective* window mode after `Auto` resolution: `Precomputed`
    /// when the plan holds a table, `OnTheFly` otherwise.
    pub fn window_mode(&self) -> WindowMode {
        if self.spread.windows.is_some() {
            WindowMode::Precomputed
        } else {
            WindowMode::OnTheFly
        }
    }

    /// Heap footprint of the precomputed window table, if one is held.
    pub fn window_table_bytes(&self) -> Option<usize> {
        self.spread.windows.as_ref().map(|t| t.bytes())
    }

    /// Heap bytes of the kernel-evaluation structure the Part 1 hot path
    /// reads per window: the fitted Horner coefficient table when the
    /// kernel family provides the fast-eval path, the interpolation LUT
    /// otherwise. The cache-pressure observable of the matched-accuracy
    /// kernel A/B (`benches/kernels.rs`).
    pub fn kernel_eval_bytes(&self) -> usize {
        self.spread.kernel.eval_table_bytes()
    }

    /// Switches the Part 1 window source after construction: building the
    /// table on a transition to `Precomputed` (or an `Auto` that resolves
    /// so — see [`WindowMode::resolve`]) and dropping it on a transition
    /// back to `OnTheFly`. Either source yields bitwise-identical operator
    /// output; only apply time and memory footprint change. Both conv
    /// stages switch together.
    pub fn set_window_mode(&mut self, mode: WindowMode) {
        self.cfg.window_mode = mode;
        let resolved = mode
            .resolve(WindowTable::<D>::estimate_bytes(self.spread.pre.coords.len(), self.cfg.w));
        match resolved {
            WindowMode::Precomputed => {
                if self.spread.windows.is_none() {
                    let table = Arc::new(WindowTable::build(
                        &self.spread.pre.coords,
                        self.cfg.w as f32,
                        &self.spread.kernel,
                        &self.exec,
                        self.cfg.grain,
                    ));
                    self.spread.windows = Some(Arc::clone(&table));
                    self.interp.windows = Some(table);
                }
            }
            _ => {
                self.spread.windows = None;
                self.interp.windows = None;
            }
        }
    }

    /// The plan's window table as a shareable handle, if one is held —
    /// [`crate::registry::PlanRegistry`] stashes this after the first build
    /// of a key so later plan instances skip Part 1 entirely.
    pub fn shared_window_table(&self) -> Option<Arc<WindowTable<D>>> {
        self.spread.windows.clone()
    }

    /// The executor this plan dispatches on (clone to share the pool).
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    /// This plan's admission priority on a shared pool.
    pub fn admission_priority(&self) -> JobPriority {
        self.cfg.admission
    }

    /// Sets the admission priority of subsequent applies — the per-request
    /// quality-of-service knob of the service layer.
    pub fn set_admission_priority(&mut self, priority: JobPriority) {
        self.cfg.admission = priority;
    }

    /// The plan's spread (adjoint scatter-convolution) stage.
    pub fn spread_op(&self) -> &SpreadOp<D> {
        &self.spread
    }

    /// The plan's interpolation (forward gather-convolution) stage.
    pub fn interp_op(&self) -> &InterpOp<D> {
        &self.interp
    }

    /// The plan's FFT stage.
    pub fn fft_op(&self) -> &FftOp {
        &self.fft_op
    }

    /// The plan's deconvolution (roll-off scale) stage.
    pub fn deconv_op(&self) -> &DeconvOp<D> {
        &self.deconv
    }

    /// Forward NUFFT: image → samples. `out[p]` receives the DTFT
    /// approximation at trajectory point `p` (original sample order).
    ///
    /// # Panics
    /// Panics if buffer lengths don't match the plan.
    pub fn forward(&mut self, image: &[Complex32], out: &mut [Complex32]) {
        assert_eq!(image.len(), self.geo.image_len(), "image length mismatch");
        assert_eq!(out.len(), self.num_samples(), "sample buffer length mismatch");
        let t_start = Instant::now();

        if self.cfg.exec_mode == ExecMode::Fused {
            let idx = self.ensure_fused(false, 1);
            let grid_ptrs = [SendPtr(self.grid.as_mut_ptr())];
            let out_ptrs = [SendPtr(out.as_mut_ptr())];
            let images = [image];
            let twiddle_ns = AtomicU64::new(0);
            {
                let Self { cfg, geo, exec, spread, fft_op, deconv, dag_scratch, fused_fwd, .. } =
                    self;
                let fa = &fused_fwd[idx].1;
                let fs_ptr = SendPtr(fft_op.fs.as_mut_ptr());
                let source = spread.window_source();
                Self::fused_forward_run(
                    exec,
                    cfg.policy,
                    cfg.admission,
                    dag_scratch,
                    fa,
                    &fft_op.tile_plan,
                    &fft_op.fft,
                    geo,
                    &deconv.scale,
                    &spread.pre,
                    &source,
                    &fft_op.scratch,
                    &images,
                    &grid_ptrs,
                    &out_ptrs,
                    fs_ptr,
                    &twiddle_ns,
                );
            }
            self.last_forward = Self::fused_forward_timers(
                self.dag_scratch.stats(),
                t_start,
                twiddle_ns.load(Ordering::Relaxed) as f64 * 1e-9,
            );
            self.trace_fused(false);
            return;
        }

        // Phase 1: scale + embed.
        let t0 = Instant::now();
        self.deconv.embed(image, &mut self.grid);
        let scale_t = t0.elapsed().as_secs_f64();

        // Phase 2: oversampled FFT (lines parallelized per axis).
        let t0 = Instant::now();
        let split = self.fft_op.apply_split(&self.exec, &mut self.grid, Direction::Forward);
        let fft_t = t0.elapsed().as_secs_f64();

        // Phase 3: gather convolution, dynamic loop partitioning.
        let t0 = Instant::now();
        let out_ptrs = [SendPtr(out.as_mut_ptr())];
        self.interp.gather_ptrs(&self.exec, core::slice::from_ref(&self.grid), &out_ptrs);
        let conv_t = t0.elapsed().as_secs_f64();

        self.last_forward = OpTimers {
            scale: scale_t,
            fft: fft_t,
            conv: conv_t,
            total: t_start.elapsed().as_secs_f64(),
            fft_sub: split.sub,
            fft_transpose: split.transpose,
            fft_twiddle: split.twiddle,
        };
    }

    /// Adjoint NUFFT: samples → image. Exact conjugate-transpose of
    /// [`NufftPlan::forward`] (no normalization is applied; divide by
    /// `Π M_d` for the inverse-FFT convention).
    ///
    /// # Panics
    /// Panics if buffer lengths don't match the plan.
    pub fn adjoint(&mut self, samples: &[Complex32], out: &mut [Complex32]) {
        assert_eq!(samples.len(), self.num_samples(), "sample buffer length mismatch");
        assert_eq!(out.len(), self.geo.image_len(), "image length mismatch");
        let t_start = Instant::now();

        if self.cfg.exec_mode == ExecMode::Fused {
            let idx = self.ensure_fused(true, 1);
            self.spread.refresh_priv_ptrs();
            let grid_ptrs = [SendPtr(self.grid.as_mut_ptr())];
            let out_ptrs = [SendPtr(out.as_mut_ptr())];
            let samples_by_channel = [samples];
            let twiddle_ns = AtomicU64::new(0);
            {
                let Self { cfg, geo, exec, spread, fft_op, deconv, dag_scratch, fused_adj, .. } =
                    self;
                let fa = &fused_adj[idx].1;
                let fs_ptr = SendPtr(fft_op.fs.as_mut_ptr());
                let source = spread.window_source();
                Self::fused_adjoint_run(
                    exec,
                    cfg.policy,
                    cfg.admission,
                    dag_scratch,
                    fa,
                    &fft_op.tile_plan,
                    &fft_op.fft,
                    geo,
                    &deconv.scale,
                    &spread.pre,
                    &source,
                    &fft_op.scratch,
                    &grid_ptrs,
                    &spread.priv_ptrs,
                    &spread.buf_of_task,
                    &samples_by_channel,
                    &out_ptrs,
                    fs_ptr,
                    &twiddle_ns,
                );
            }
            Self::synth_conv_stats(
                self.dag_scratch.stats(),
                &mut self.fused_stats,
                self.spread.pre.canonical_revisits,
            );
            self.stats_source = StatsSource::Fused;
            self.last_adjoint = Self::fused_adjoint_timers(
                self.dag_scratch.stats(),
                t_start,
                twiddle_ns.load(Ordering::Relaxed) as f64 * 1e-9,
            );
            self.trace_fused(true);
            return;
        }

        // Phase 1: scatter convolution under the task graph.
        let t0 = Instant::now();
        self.grid.fill(Complex32::ZERO);
        self.run_adjoint_convolution(samples);
        let conv_t = t0.elapsed().as_secs_f64();

        // Phase 2: unnormalized backward FFT (the exact FFT adjoint).
        let t0 = Instant::now();
        let split = self.fft_op.apply_split(&self.exec, &mut self.grid, Direction::Backward);
        let fft_t = t0.elapsed().as_secs_f64();

        // Phase 3: extract + scale.
        let t0 = Instant::now();
        self.deconv.extract(&self.grid, out);
        let scale_t = t0.elapsed().as_secs_f64();

        self.last_adjoint = OpTimers {
            scale: scale_t,
            fft: fft_t,
            conv: conv_t,
            total: t_start.elapsed().as_secs_f64(),
            fft_sub: split.sub,
            fft_transpose: split.transpose,
            fft_twiddle: split.twiddle,
        };
    }

    /// Standalone adjoint **spread**: scatters `samples` onto the
    /// oversampled grid `grid` (length [`NufftPlan::grid_len`]) — the
    /// convolution stage alone, no FFT or deconvolution. `grid` is zeroed
    /// first; the accumulation order is the canonical tile-major one, so
    /// output is bitwise-deterministic across thread counts, sort modes
    /// and exec modes (the fused spread graph carries the same Gray-code
    /// exclusion edges as the full adjoint).
    ///
    /// # Panics
    /// Panics if buffer lengths don't match the plan.
    pub fn spread_only(&mut self, samples: &[Complex32], grid: &mut [Complex32]) {
        assert_eq!(samples.len(), self.num_samples(), "sample buffer length mismatch");
        assert_eq!(grid.len(), self.geo.grid_len(), "grid buffer length mismatch");

        if self.cfg.exec_mode == ExecMode::Fused {
            self.ensure_fused_spread();
            self.spread.refresh_priv_ptrs();
            let grid_ptrs = [SendPtr(grid.as_mut_ptr())];
            let out_ptrs: [SendPtr<Complex32>; 0] = [];
            let samples_by_channel = [samples];
            let twiddle_ns = AtomicU64::new(0);
            {
                let Self {
                    cfg, geo, exec, spread, fft_op, deconv, dag_scratch, fused_spread, ..
                } = self;
                let fa = fused_spread.as_ref().expect("spread graph just built");
                let fs_ptr = SendPtr(fft_op.fs.as_mut_ptr());
                let source = spread.window_source();
                Self::fused_adjoint_run(
                    exec,
                    cfg.policy,
                    cfg.admission,
                    dag_scratch,
                    fa,
                    &fft_op.tile_plan,
                    &fft_op.fft,
                    geo,
                    &deconv.scale,
                    &spread.pre,
                    &source,
                    &fft_op.scratch,
                    &grid_ptrs,
                    &spread.priv_ptrs,
                    &spread.buf_of_task,
                    &samples_by_channel,
                    &out_ptrs,
                    fs_ptr,
                    &twiddle_ns,
                );
            }
            Self::synth_conv_stats(
                self.dag_scratch.stats(),
                &mut self.fused_stats,
                self.spread.pre.canonical_revisits,
            );
            self.stats_source = StatsSource::Fused;
            return;
        }

        self.spread.apply(&self.exec, self.cfg.admission, samples, grid);
        self.stats_source = StatsSource::Phased;
    }

    /// Standalone forward **interpolation**: gathers every sample's value
    /// from an oversampled grid (length [`NufftPlan::grid_len`]) into
    /// `out` (original caller order). Pure reads of `grid`; the same
    /// single dynamic-loop dispatch under either exec mode.
    ///
    /// # Panics
    /// Panics if buffer lengths don't match the plan.
    pub fn interp_only(&self, grid: &[Complex32], out: &mut [Complex32]) {
        self.interp.apply(&self.exec, grid, out);
    }

    /// Batched forward NUFFT over `C` images sharing this trajectory (the
    /// multichannel/SENSE case): the per-sample interpolation windows
    /// (Part 1) are obtained once and reused across all channels, and
    /// channel pairs share one weight expansion in the SIMD row kernels.
    ///
    /// `images[c]` and `outs[c]` follow the same conventions as
    /// [`NufftPlan::forward`]. Holds `C` oversampled grids concurrently.
    ///
    /// # Panics
    /// Panics if `images.len() != outs.len()` or any buffer length is
    /// wrong.
    pub fn forward_batch(&mut self, images: &[&[Complex32]], outs: &mut [&mut [Complex32]]) {
        assert_eq!(images.len(), outs.len(), "channel count mismatch");
        let channels = images.len();
        if channels == 0 {
            return;
        }
        self.ensure_batch_grids(channels);
        for c in 0..channels {
            assert_eq!(images[c].len(), self.geo.image_len(), "image {c} length mismatch");
            assert_eq!(outs[c].len(), self.num_samples(), "output {c} length mismatch");
        }

        if self.cfg.exec_mode == ExecMode::Fused {
            // One graph fuses all channels' embed + FFT with the shared
            // gather — channel c's axis-1 chunks overlap channel c+1's
            // axis-0 chunks instead of running as C sequential pipelines.
            let idx = self.ensure_fused(false, channels);
            self.ptr_scratch.clear();
            self.ptr_scratch.extend(outs.iter_mut().map(|o| SendPtr(o.as_mut_ptr())));
            self.ptr_scratch2.clear();
            self.ptr_scratch2
                .extend(self.batch_grids[..channels].iter_mut().map(|g| SendPtr(g.as_mut_ptr())));
            let twiddle_ns = AtomicU64::new(0);
            {
                let Self {
                    cfg,
                    geo,
                    exec,
                    spread,
                    fft_op,
                    deconv,
                    dag_scratch,
                    fused_fwd,
                    ptr_scratch,
                    ptr_scratch2,
                    ..
                } = self;
                let fa = &fused_fwd[idx].1;
                let fs_ptr = SendPtr(fft_op.fs.as_mut_ptr());
                let source = spread.window_source();
                Self::fused_forward_run(
                    exec,
                    cfg.policy,
                    cfg.admission,
                    dag_scratch,
                    fa,
                    &fft_op.tile_plan,
                    &fft_op.fft,
                    geo,
                    &deconv.scale,
                    &spread.pre,
                    &source,
                    &fft_op.scratch,
                    images,
                    ptr_scratch2,
                    ptr_scratch,
                    fs_ptr,
                    &twiddle_ns,
                );
            }
            self.trace_fused(false);
            return;
        }

        for c in 0..channels {
            self.deconv.embed(images[c], &mut self.batch_grids[c]);
            self.fft_op.apply_split(&self.exec, &mut self.batch_grids[c], Direction::Forward);
        }
        self.ptr_scratch.clear();
        self.ptr_scratch.extend(outs.iter_mut().map(|o| SendPtr(o.as_mut_ptr())));
        self.interp.gather_ptrs(&self.exec, &self.batch_grids[..channels], &self.ptr_scratch);
    }

    /// Batched adjoint NUFFT over `C` sample vectors sharing this
    /// trajectory; windows are obtained once per sample and scattered into
    /// all `C` grids under a single task-graph traversal, with the full
    /// selective-privatization protocol (per-channel halo buffers).
    ///
    /// # Panics
    /// Panics on any length mismatch.
    pub fn adjoint_batch(&mut self, samples: &[&[Complex32]], outs: &mut [&mut [Complex32]]) {
        assert_eq!(samples.len(), outs.len(), "channel count mismatch");
        let channels = samples.len();
        if channels == 0 {
            return;
        }
        for c in 0..channels {
            assert_eq!(samples[c].len(), self.num_samples(), "samples {c} length mismatch");
            assert_eq!(outs[c].len(), self.geo.image_len(), "output {c} length mismatch");
        }
        self.ensure_batch_grids(channels);
        self.spread.ensure_priv_channels(channels);
        self.spread.refresh_priv_ptrs();

        if self.cfg.exec_mode == ExecMode::Fused {
            // One graph covers zeroing, the privatized scatter protocol,
            // every channel's inverse FFT and the extracts — per-channel
            // FFTs overlap each other and the scatter's tail.
            let idx = self.ensure_fused(true, channels);
            self.ptr_scratch.clear();
            self.ptr_scratch
                .extend(self.batch_grids[..channels].iter_mut().map(|g| SendPtr(g.as_mut_ptr())));
            self.ptr_scratch2.clear();
            self.ptr_scratch2.extend(outs.iter_mut().map(|o| SendPtr(o.as_mut_ptr())));
            let twiddle_ns = AtomicU64::new(0);
            {
                let Self {
                    cfg,
                    geo,
                    exec,
                    spread,
                    fft_op,
                    deconv,
                    dag_scratch,
                    fused_adj,
                    ptr_scratch,
                    ptr_scratch2,
                    ..
                } = self;
                let fa = &fused_adj[idx].1;
                let fs_ptr = SendPtr(fft_op.fs.as_mut_ptr());
                let source = spread.window_source();
                Self::fused_adjoint_run(
                    exec,
                    cfg.policy,
                    cfg.admission,
                    dag_scratch,
                    fa,
                    &fft_op.tile_plan,
                    &fft_op.fft,
                    geo,
                    &deconv.scale,
                    &spread.pre,
                    &source,
                    &fft_op.scratch,
                    ptr_scratch,
                    &spread.priv_ptrs,
                    &spread.buf_of_task,
                    samples,
                    ptr_scratch2,
                    fs_ptr,
                    &twiddle_ns,
                );
            }
            Self::synth_conv_stats(
                self.dag_scratch.stats(),
                &mut self.fused_stats,
                self.spread.pre.canonical_revisits,
            );
            self.stats_source = StatsSource::Fused;
            self.trace_fused(true);
            return;
        }

        for g in &mut self.batch_grids[..channels] {
            g.fill(Complex32::ZERO);
        }
        self.ptr_scratch.clear();
        self.ptr_scratch
            .extend(self.batch_grids[..channels].iter_mut().map(|g| SendPtr(g.as_mut_ptr())));
        {
            let Self { cfg, exec, spread, ptr_scratch, .. } = self;
            spread.accumulate_ptrs(exec, cfg.admission, ptr_scratch, samples);
        }
        self.stats_source = StatsSource::Phased;
        for c in 0..channels {
            self.fft_op.apply_split(&self.exec, &mut self.batch_grids[c], Direction::Backward);
            self.deconv.extract(&self.batch_grids[c], outs[c]);
        }
    }

    fn ensure_batch_grids(&mut self, channels: usize) {
        let glen = self.geo.grid_len();
        while self.batch_grids.len() < channels {
            self.batch_grids.push(vec![Complex32::ZERO; glen]);
        }
    }

    /// Runs only the adjoint *convolution* (grid zeroing + scatter under
    /// the task graph) and returns its wall time in seconds. The grid
    /// workspace afterwards holds the scattered data. Used by throughput
    /// experiments (Table III) that must not pay for the FFT per
    /// measurement.
    pub fn adjoint_convolution_only(&mut self, samples: &[Complex32]) -> f64 {
        assert_eq!(samples.len(), self.num_samples(), "sample buffer length mismatch");
        let t0 = Instant::now();
        self.grid.fill(Complex32::ZERO);
        self.run_adjoint_convolution(samples);
        t0.elapsed().as_secs_f64()
    }

    /// Runs only the forward *convolution* (gather from the current grid
    /// workspace contents) and returns its wall time in seconds.
    pub fn forward_convolution_only(&mut self, out: &mut [Complex32]) -> f64 {
        assert_eq!(out.len(), self.num_samples(), "sample buffer length mismatch");
        let t0 = Instant::now();
        let out_ptrs = [SendPtr(out.as_mut_ptr())];
        self.interp.gather_ptrs(&self.exec, core::slice::from_ref(&self.grid), &out_ptrs);
        t0.elapsed().as_secs_f64()
    }

    /// Runs only Part 1 of the convolution (window/LUT computation) over
    /// every sample and returns the elapsed seconds — the Figure 7
    /// diagnostic. Always computes on the fly, regardless of the plan's
    /// window mode (this *is* the cost a table amortizes away).
    pub fn part1_seconds(&self) -> f64 {
        let wrad = self.cfg.w as f32;
        let t0 = Instant::now();
        let mut sink = 0.0f32;
        for c in &self.spread.pre.coords {
            for d in 0..D {
                let w = Window::compute(c[d], wrad, &self.spread.kernel);
                sink += w.w[0] + w.w[w.len - 1];
            }
        }
        std::hint::black_box(sink);
        t0.elapsed().as_secs_f64()
    }

    /// Scatter convolution of all samples into the (pre-zeroed) grid under
    /// the task graph, including the privatization protocol. Single-channel
    /// entry point over the spread stage.
    fn run_adjoint_convolution(&mut self, samples: &[Complex32]) {
        let grid_ptrs = [SendPtr(self.grid.as_mut_ptr())];
        self.spread.accumulate_ptrs(&self.exec, self.cfg.admission, &grid_ptrs, &[samples]);
        self.stats_source = StatsSource::Phased;
    }

    /// Builds (or finds the cached) fused graph for one direction and
    /// channel count. Graph construction allocates; it happens at most once
    /// per `(direction, C)` over a plan's lifetime, so warmed-up applies
    /// stay allocation-free.
    fn ensure_fused(&mut self, adjoint: bool, channels: usize) -> usize {
        self.fft_op.ensure_channels(channels);
        let cache = if adjoint { &self.fused_adj } else { &self.fused_fwd };
        if let Some(i) = cache.iter().position(|(c, _)| *c == channels) {
            return i;
        }
        let wc = self.cfg.w.ceil() as usize;
        let threads = self.exec.threads();
        let fa = if adjoint {
            fused::build_adjoint(
                &self.geo,
                &self.fft_op.fft,
                &self.fft_op.tile_plan,
                &self.spread.pre,
                wc,
                threads,
                channels,
            )
        } else {
            fused::build_forward(
                &self.geo,
                &self.fft_op.fft,
                &self.fft_op.tile_plan,
                &self.spread.pre,
                wc,
                self.cfg.grain,
                threads,
                channels,
            )
        };
        let cache = if adjoint { &mut self.fused_adj } else { &mut self.fused_fwd };
        cache.push((channels, fa));
        cache.len() - 1
    }

    /// Builds (once) the fused spread-only graph: the adjoint graph's zero
    /// and scatter fragments with no FFT or extract stages downstream.
    fn ensure_fused_spread(&mut self) {
        if self.fused_spread.is_none() {
            let wc = self.cfg.w.ceil() as usize;
            self.fused_spread =
                Some(fused::build_spread(&self.geo, &self.spread.pre, wc, self.exec.threads()));
        }
    }

    /// Executes one fused four-step shard ([`fused::KIND_FFT_SUB`] or
    /// [`fused::KIND_FFT_TRN`]): the pass over the node's tile-chunk run,
    /// against channel `c`'s grid and its region of the stage-owned `fs`
    /// buffer. Shared by the forward and adjoint dispatchers.
    #[allow(clippy::too_many_arguments)]
    fn run_fourstep_shard(
        tag: u64,
        tp: &TilePlan,
        fft: &FftNd,
        fft_scratch: &WorkerLocal<Vec<Complex32>>,
        grid_ptrs: &[SendPtr<Complex32>],
        fs: SendPtr<Complex32>,
        grid_len: usize,
        twiddle_ns: &AtomicU64,
        w: usize,
        dir: Direction,
    ) {
        let axis = fused::axis_of(tag);
        let c = fused::channel_of(tag);
        let ap = tp.axes[axis];
        let (colg, kbg) = ap.shards.expect("four-step node on a recursive axis");
        let idx = fused::index_of(tag);
        // SAFETY: worker `w` owns scratch slot `w` while this node runs.
        let scratch = unsafe { fft_scratch.get(w) };
        // SAFETY: `FftOp::ensure_channels` sized `fs` to `fs_slots()` grids
        // per channel; each four-step axis owns a slot so a later axis's
        // sub shards never overwrite spectra an earlier axis's combine
        // shards are still reading.
        let fsp = unsafe { fs.get().add((c * fft.fs_slots() + fft.fs_slot(axis)) * grid_len) };
        if fused::kind_of(tag) == fused::KIND_FFT_SUB {
            let (chunk, cg) = (idx / colg, idx % colg);
            let t0 = chunk * ap.grain;
            let t1 = (t0 + ap.grain).min(ap.tiles);
            for tile in t0..t1 {
                // SAFETY: distinct (tile, column-group) shards read and
                // write disjoint regions; graph edges order this node after
                // every writer of its read set.
                unsafe {
                    fft.fs_sub_pass_raw(grid_ptrs[c].get(), fsp, axis, tile, cg, tp.b, scratch, dir)
                };
            }
        } else {
            let (chunk, kblock) = (idx / kbg, idx % kbg);
            let t0 = chunk * ap.grain;
            let t1 = (t0 + ap.grain).min(ap.tiles);
            let mut tw = 0.0;
            for tile in t0..t1 {
                // SAFETY: distinct (tile, k-block) shards touch disjoint
                // regions; the chunk's sub shards are all edge-ordered
                // before this node.
                tw += unsafe {
                    fft.fs_combine_pass_raw(
                        fsp,
                        grid_ptrs[c].get(),
                        axis,
                        tile,
                        kblock,
                        tp.b,
                        scratch,
                        dir,
                    )
                };
            }
            twiddle_ns.fetch_add((tw * 1e9) as u64, Ordering::Relaxed);
        }
    }

    /// Executes a fused forward graph: scale slabs, FFT tile chunks and
    /// gather chunks dispatched as one DAG. Every node body is the same
    /// code the stage drivers run over the same decomposition, so the
    /// output is bitwise-identical to the phased pipeline.
    #[allow(clippy::too_many_arguments)]
    fn fused_forward_run(
        exec: &Executor,
        policy: QueuePolicy,
        priority: JobPriority,
        scratch: &mut DagScratch,
        fa: &FusedApply,
        tp: &TilePlan,
        fft: &FftNd,
        geo: &Geometry<D>,
        scale: &[f32],
        pre: &Preprocess<D>,
        source: &WindowSource<'_, D>,
        fft_scratch: &WorkerLocal<Vec<Complex32>>,
        images: &[&[Complex32]],
        grid_ptrs: &[SendPtr<Complex32>],
        out_ptrs: &[SendPtr<Complex32>],
        fs: SendPtr<Complex32>,
        twiddle_ns: &AtomicU64,
    ) {
        let channels = grid_ptrs.len();
        let grid_len = geo.grid_len();
        let m = &geo.m;
        let order = &pre.order;
        let b = tp.b;
        exec.run_dag_reuse_prio(&fa.dag, policy, priority, scratch, |_node, tag, w| {
            match fused::kind_of(tag) {
                fused::KIND_SCALE => {
                    let c = fused::channel_of(tag);
                    let lo = fused::index_of(tag) * fa.slab;
                    let len = (grid_len - lo).min(fa.slab);
                    // SAFETY: slabs of one channel partition its grid; only
                    // this node writes this slab, and every reader is
                    // ordered after it by graph edges.
                    let slab =
                        unsafe { core::slice::from_raw_parts_mut(grid_ptrs[c].get().add(lo), len) };
                    embed_scaled_slab(geo, images[c], scale, slab, lo);
                }
                fused::KIND_FFT => {
                    let axis = fused::axis_of(tag);
                    let c = fused::channel_of(tag);
                    let ap = tp.axes[axis];
                    let t0 = fused::index_of(tag) * ap.grain;
                    let t1 = (t0 + ap.grain).min(ap.tiles);
                    // SAFETY: worker `w` owns scratch slot `w` while this
                    // node runs.
                    let scratch = unsafe { fft_scratch.get(w) };
                    for tile in t0..t1 {
                        // SAFETY: tiles of one axis are pairwise disjoint;
                        // graph edges order this tile after all writers of
                        // its elements and before all its readers.
                        unsafe {
                            fft.transform_tile_raw(
                                grid_ptrs[c].get(),
                                axis,
                                tile,
                                b,
                                scratch,
                                Direction::Forward,
                            )
                        };
                    }
                }
                fused::KIND_FFT_SUB | fused::KIND_FFT_TRN => {
                    Self::run_fourstep_shard(
                        tag,
                        tp,
                        fft,
                        fft_scratch,
                        grid_ptrs,
                        fs,
                        grid_len,
                        twiddle_ns,
                        w,
                        Direction::Forward,
                    );
                }
                fused::KIND_GATHER => {
                    let (lo, hi) = fa.chunks[fused::index_of(tag)];
                    let mut stage = [Window::EMPTY; D];
                    for i in lo as usize..hi as usize {
                        let win = source.at(i, &mut stage);
                        let slot = order[i] as usize;
                        let mut c = 0;
                        while c + 2 <= channels {
                            // SAFETY: the chunk's task-box elements are
                            // fully transformed (last-axis → gather edges)
                            // and nothing writes the grids once their
                            // readers start; concurrent gathers only read.
                            let (ga, gb) = unsafe {
                                (
                                    core::slice::from_raw_parts(
                                        grid_ptrs[c].get() as *const Complex32,
                                        grid_len,
                                    ),
                                    core::slice::from_raw_parts(
                                        grid_ptrs[c + 1].get() as *const Complex32,
                                        grid_len,
                                    ),
                                )
                            };
                            let (va, vb) = forward_gather2(ga, gb, m, &win);
                            // SAFETY: `order` is a permutation; each (c, i)
                            // writes a distinct slot of channel c's output.
                            unsafe {
                                *out_ptrs[c].get().add(slot) = va;
                                *out_ptrs[c + 1].get().add(slot) = vb;
                            }
                            c += 2;
                        }
                        if c < channels {
                            // SAFETY: as above.
                            let g = unsafe {
                                core::slice::from_raw_parts(
                                    grid_ptrs[c].get() as *const Complex32,
                                    grid_len,
                                )
                            };
                            let v = forward_gather(g, m, &win);
                            // SAFETY: as above.
                            unsafe { *out_ptrs[c].get().add(slot) = v };
                        }
                    }
                }
                k => unreachable!("node kind {k} in a forward graph"),
            }
        });
    }

    /// Executes a fused adjoint graph: zero slabs, the scatter task graph
    /// (with the privatization protocol), per-channel inverse-FFT chunks
    /// and extract chunks as one DAG. Bitwise-identical to the phased
    /// pipeline — the Gray-code exclusion edges fix the accumulation order.
    /// A spread-only graph (no FFT/extract fragments) runs through the
    /// same dispatcher with an empty `out_ptrs`.
    #[allow(clippy::too_many_arguments)]
    fn fused_adjoint_run(
        exec: &Executor,
        policy: QueuePolicy,
        priority: JobPriority,
        scratch: &mut DagScratch,
        fa: &FusedApply,
        tp: &TilePlan,
        fft: &FftNd,
        geo: &Geometry<D>,
        scale: &[f32],
        pre: &Preprocess<D>,
        source: &WindowSource<'_, D>,
        fft_scratch: &WorkerLocal<Vec<Complex32>>,
        grid_ptrs: &[SendPtr<Complex32>],
        priv_ptrs: &[(SendPtr<Complex32>, usize)],
        buf_of_task: &[u32],
        samples: &[&[Complex32]],
        out_ptrs: &[SendPtr<Complex32>],
        fs: SendPtr<Complex32>,
        twiddle_ns: &AtomicU64,
    ) {
        let channels = grid_ptrs.len();
        let grid_len = geo.grid_len();
        let image_len = geo.image_len();
        let m = &geo.m;
        let order = &pre.order;
        let b = tp.b;
        exec.run_dag_reuse_prio(&fa.dag, policy, priority, scratch, |_node, tag, w| {
            match fused::kind_of(tag) {
                fused::KIND_ZERO => {
                    let lo = fused::index_of(tag) * fa.slab;
                    let len = (grid_len - lo).min(fa.slab);
                    for gp in grid_ptrs {
                        // SAFETY: zero slabs partition the grids and every
                        // other toucher of these elements is ordered after
                        // this node (directly or via its covering task).
                        unsafe { core::slice::from_raw_parts_mut(gp.get().add(lo), len) }
                            .fill(Complex32::ZERO);
                    }
                }
                fused::KIND_CONV => {
                    let t = fused::index_of(tag);
                    let mut stage = [Window::EMPTY; D];
                    for vi in pre.ranges[t].clone() {
                        let i = pre.visit(vi);
                        let win = source.at(i, &mut stage);
                        let slot = order[i] as usize;
                        for (c, gp) in grid_ptrs.iter().enumerate() {
                            // SAFETY: the Gray-code edges serialize adjacent
                            // tasks exactly as the phased scheduler does;
                            // this task only touches its own halo box.
                            let grid =
                                unsafe { core::slice::from_raw_parts_mut(gp.get(), grid_len) };
                            adjoint_scatter(grid, m, &win, samples[c][slot]);
                        }
                    }
                }
                fused::KIND_PRIV => {
                    let t = fused::index_of(tag);
                    let region = pre.regions[t].expect("privatized task has region");
                    let (base, clen) = priv_ptrs[buf_of_task[t] as usize];
                    // SAFETY: each privatized task owns its buffer
                    // exclusively; its reduce node is ordered after this
                    // one by an edge.
                    let buf_all =
                        unsafe { core::slice::from_raw_parts_mut(base.get(), channels * clen) };
                    buf_all.fill(Complex32::ZERO);
                    let mut stage = [Window::EMPTY; D];
                    for vi in pre.ranges[t].clone() {
                        let i = pre.visit(vi);
                        let win = source.at(i, &mut stage);
                        let slot = order[i] as usize;
                        for c in 0..channels {
                            adjoint_scatter_local(
                                &mut buf_all[c * clen..(c + 1) * clen],
                                &region.origin,
                                &region.size,
                                &win,
                                samples[c][slot],
                            );
                        }
                    }
                }
                fused::KIND_REDUCE => {
                    let t = fused::index_of(tag);
                    let region = pre.regions[t].expect("privatized task has region");
                    let (base, clen) = priv_ptrs[buf_of_task[t] as usize];
                    for (c, gp) in grid_ptrs.iter().enumerate() {
                        // SAFETY: reductions carry the task's exclusion
                        // edges; the private buffer was filled by the
                        // convolve node this one depends on.
                        let grid = unsafe { core::slice::from_raw_parts_mut(gp.get(), grid_len) };
                        let buf =
                            unsafe { core::slice::from_raw_parts(base.get().add(c * clen), clen) };
                        reduce_local(grid, m, buf, &region.origin, &region.size);
                    }
                }
                fused::KIND_FFT => {
                    let axis = fused::axis_of(tag);
                    let c = fused::channel_of(tag);
                    let ap = tp.axes[axis];
                    let t0 = fused::index_of(tag) * ap.grain;
                    let t1 = (t0 + ap.grain).min(ap.tiles);
                    // SAFETY: worker `w` owns scratch slot `w` while this
                    // node runs.
                    let scratch = unsafe { fft_scratch.get(w) };
                    for tile in t0..t1 {
                        // SAFETY: tiles of one axis are pairwise disjoint;
                        // graph edges order this tile after all writers of
                        // its elements and before all its readers.
                        unsafe {
                            fft.transform_tile_raw(
                                grid_ptrs[c].get(),
                                axis,
                                tile,
                                b,
                                scratch,
                                Direction::Backward,
                            )
                        };
                    }
                }
                fused::KIND_FFT_SUB | fused::KIND_FFT_TRN => {
                    Self::run_fourstep_shard(
                        tag,
                        tp,
                        fft,
                        fft_scratch,
                        grid_ptrs,
                        fs,
                        grid_len,
                        twiddle_ns,
                        w,
                        Direction::Backward,
                    );
                }
                fused::KIND_EXTRACT => {
                    let c = fused::channel_of(tag);
                    let lo = fused::index_of(tag) * fa.img_chunk;
                    let len = (image_len - lo).min(fa.img_chunk);
                    // SAFETY: reads are ordered after the last-axis FFT
                    // chunks covering this image range; image chunks of one
                    // channel are disjoint, so the write is exclusive.
                    let grid = unsafe {
                        core::slice::from_raw_parts(
                            grid_ptrs[c].get() as *const Complex32,
                            grid_len,
                        )
                    };
                    let out =
                        unsafe { core::slice::from_raw_parts_mut(out_ptrs[c].get().add(lo), len) };
                    extract_scaled_range(geo, grid, scale, out, lo);
                }
                k => unreachable!("node kind {k} in an adjoint graph"),
            }
        });
    }

    /// Forward phase timers from a fused node log: each "phase" is the
    /// wall-clock span its kind was in flight (spans overlap — that overlap
    /// is exactly what fusion buys).
    fn fused_forward_timers(
        stats: &nufft_parallel::exec::DagRunStats,
        t_start: Instant,
        twiddle: f64,
    ) -> OpTimers {
        OpTimers {
            scale: fused::kind_span(stats, |k| k == fused::KIND_SCALE),
            fft: fused::kind_span(stats, |k| {
                matches!(k, fused::KIND_FFT | fused::KIND_FFT_SUB | fused::KIND_FFT_TRN)
            }),
            conv: fused::kind_span(stats, |k| k == fused::KIND_GATHER),
            total: t_start.elapsed().as_secs_f64(),
            fft_sub: fused::kind_span(stats, |k| k == fused::KIND_FFT_SUB),
            fft_transpose: fused::kind_span(stats, |k| k == fused::KIND_FFT_TRN),
            fft_twiddle: twiddle,
        }
    }

    /// Adjoint phase timers from a fused node log (conv includes zeroing,
    /// as in the phased pipeline).
    fn fused_adjoint_timers(
        stats: &nufft_parallel::exec::DagRunStats,
        t_start: Instant,
        twiddle: f64,
    ) -> OpTimers {
        OpTimers {
            scale: fused::kind_span(stats, |k| k == fused::KIND_EXTRACT),
            fft: fused::kind_span(stats, |k| {
                matches!(k, fused::KIND_FFT | fused::KIND_FFT_SUB | fused::KIND_FFT_TRN)
            }),
            conv: fused::kind_span(stats, |k| {
                matches!(
                    k,
                    fused::KIND_ZERO | fused::KIND_CONV | fused::KIND_PRIV | fused::KIND_REDUCE
                )
            }),
            total: t_start.elapsed().as_secs_f64(),
            fft_sub: fused::kind_span(stats, |k| k == fused::KIND_FFT_SUB),
            fft_transpose: fused::kind_span(stats, |k| k == fused::KIND_FFT_TRN),
            fft_twiddle: twiddle,
        }
    }

    /// Rebuilds `fused_stats` (shaped like the phased scheduler's
    /// [`RunStats`]) from the conv/priv/reduce records of a fused run, so
    /// `last_run_stats` serves the load-balance experiments in either mode.
    /// Reuses the destination's capacity — allocation-free once warm.
    fn synth_conv_stats(
        src: &nufft_parallel::exec::DagRunStats,
        dst: &mut RunStats,
        tile_revisits: u64,
    ) {
        dst.tile_revisits = tile_revisits;
        dst.worker_busy.clear();
        dst.worker_busy.resize(src.worker_busy.len(), 0.0);
        dst.log.clear();
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for r in &src.log {
            let phase = match fused::kind_of(r.tag) {
                fused::KIND_CONV => TaskPhase::Normal,
                fused::KIND_PRIV => TaskPhase::PrivateConvolve,
                fused::KIND_REDUCE => TaskPhase::Reduce,
                _ => continue,
            };
            dst.log.push(TaskRecord {
                task: fused::index_of(r.tag),
                phase,
                worker: r.worker,
                start: r.start,
                end: r.end,
            });
            dst.worker_busy[r.worker] += r.end - r.start;
            lo = lo.min(r.start);
            hi = hi.max(r.end);
        }
        dst.makespan = if hi > lo { hi - lo } else { 0.0 };
    }

    /// Dumps the last fused run as Chrome `trace_event` JSON when
    /// `NUFFT_TRACE=<path>` is set (load in `chrome://tracing` or Perfetto).
    fn trace_fused(&self, adjoint: bool) {
        if let Some(path) = trace_path() {
            fused::write_trace(path, self.dag_scratch.stats(), adjoint);
        }
    }
}

/// The `NUFFT_TRACE` destination, read from the environment once per
/// process (keeping warmed-up applies allocation-free).
fn trace_path() -> Option<&'static str> {
    static PATH: OnceLock<Option<String>> = OnceLock::new();
    PATH.get_or_init(|| std::env::var("NUFFT_TRACE").ok()).as_deref()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerance_mapping_reference_points() {
        // ES width rule ns = ⌈log₁₀(1/eps)⌉ + 1 at α = 2, clamped to the
        // supported cell range.
        let c = NufftConfig::tolerance(1e-6);
        assert_eq!(c.kernel, KernelChoice::EsKernel);
        assert_eq!(c.w, 3.5);
        assert_eq!(NufftConfig::tolerance(1e-2).w, 1.5);
        assert_eq!(NufftConfig::tolerance(0.5).w, 1.0);
        assert_eq!(NufftConfig::tolerance(1e-30).w, 8.0);

        // KB: narrowest half-cell width meeting the 10·e^{−β} aliasing
        // model, with the LUT densified ∝ √(1/eps) past the default.
        let kb = NufftConfig::default().with_tolerance_family(1e-6, KernelChoice::KaiserBessel);
        assert_eq!(kb.w, 3.5);
        assert_eq!(kb.lut_density, 4096);
        let kb = NufftConfig::default().with_tolerance_family(1e-2, KernelChoice::KaiserBessel);
        assert_eq!(kb.w, 2.0);
        assert_eq!(kb.lut_density, DEFAULT_LUT_DENSITY);

        // At matched accuracy the ES kernel is never wider than KB — the
        // headline of the matched-accuracy A/B (`benches/kernels.rs`).
        for eps in [1e-2, 1e-3, 1e-4, 1e-5, 1e-6] {
            let es = NufftConfig::default().with_tolerance(eps);
            let kb = NufftConfig::default().with_tolerance_family(eps, KernelChoice::KaiserBessel);
            assert!(es.w <= kb.w, "eps={eps}: ES W={} > KB W={}", es.w, kb.w);
        }

        // Gaussian: Greengard–Lee truncation model, half-cell rounding —
        // visibly wider than both at tight eps (the reason it is not the
        // tolerance default).
        let g = NufftConfig::default().with_tolerance_family(1e-4, KernelChoice::Gaussian);
        assert_eq!(g.kernel, KernelChoice::Gaussian);
        assert_eq!(g.w, 5.0); // ln(10/eps)/(π·(1−1/4)) ≈ 4.89
    }

    #[test]
    fn tolerance_keeps_non_kernel_knobs() {
        let c =
            NufftConfig { threads: 3, grain: 99, ..NufftConfig::default() }.with_tolerance(1e-3);
        assert_eq!((c.threads, c.grain), (3, 99));
        assert_eq!(c.kernel, KernelChoice::EsKernel);
    }

    #[test]
    #[should_panic(expected = "tolerance must be")]
    fn tolerance_rejects_out_of_range() {
        let _ = NufftConfig::tolerance(0.0);
    }
}
