//! The convolution kernels (Figure 2 of the paper).
//!
//! Part 1 computes, per sample and dimension, the window of grid neighbors
//! `x1 = ⌈u−W⌉ … x2 = ⌊u+W⌋` and their kernel weights via LUT. Part 2 is the
//! separable convolution proper: the forward operator *gathers* weighted
//! grid values into the sample, the adjoint *scatters* the sample into the
//! grid. The innermost dimension is contiguous in memory, so Part 2 rows go
//! through the `nufft-simd` row kernels (SIMD-within-a-sample, §III-C);
//! wrap-around rows are split into at most two contiguous segments.
//!
//! Privatized tasks scatter into a local buffer in *unwrapped* coordinates
//! (every neighbor of a task's samples lies within its halo box, so no mod
//! arithmetic is needed there); the reduction adds the buffer back into the
//! global grid with wrapping.

use crate::kernel::InterpKernel;
use nufft_math::Complex32;
use nufft_simd::{gather_row, gather_row2, scatter_row, scatter_row2};

/// Maximum taps per dimension: `2W+1` with the paper's largest `W = 8`.
pub const MAX_TAPS: usize = 17;

/// One dimension's interpolation window for one sample (Part 1 output).
#[derive(Clone, Copy, Debug)]
pub struct Window {
    /// First (unwrapped) neighbor index `x1 = ⌈u−W⌉`; may be negative or
    /// reach past the grid edge — wrapping is Part 2's job.
    pub start: i32,
    /// Number of taps `lx = x2 − x1 + 1` (`2W` or `2W+1`).
    pub len: usize,
    /// Kernel weights for each tap.
    pub w: [f32; MAX_TAPS],
}

impl Window {
    /// An empty window — staging storage for drivers that overwrite it
    /// per sample before use.
    pub const EMPTY: Window = Window { start: 0, len: 0, w: [0.0; MAX_TAPS] };

    /// Part 1 for one coordinate: neighbor range and kernel weights, via
    /// the kernel's row evaluator (LUT lerp or the fitted Horner fast
    /// path, whichever the family provides).
    ///
    /// `wrad` is the kernel radius `W`; `u` must lie in `[0, M)`. The
    /// bounds are computed in `f64`, where `u ± W` is exact — an `f32`
    /// `u + W` can round *up* across an integer and admit a tap just
    /// outside the true support, overflowing privatized halo buffers.
    #[inline]
    pub fn compute(u: f32, wrad: f32, kernel: &InterpKernel) -> Window {
        let x1 = (u as f64 - wrad as f64).ceil() as i32;
        let x2 = (u as f64 + wrad as f64).floor() as i32;
        let len = (x2 - x1 + 1) as usize;
        debug_assert!(len <= MAX_TAPS, "window of {len} taps exceeds MAX_TAPS");
        let mut w = [0.0f32; MAX_TAPS];
        kernel.eval_row(x1, len, u, &mut w);
        Window { start: x1, len, w }
    }

    /// Borrowed view of this window — the form the Part 2 kernels consume.
    #[inline]
    pub fn as_ref(&self) -> WinRef<'_> {
        WinRef { start: self.start, w: &self.w[..self.len] }
    }
}

/// A borrowed one-dimensional window: first neighbor index plus the live
/// weight row. This is the common currency of the Part 2 convolution
/// kernels — it views either a freshly computed [`Window`] (on-the-fly
/// Part 1) or a row of a plan-owned precomputed window table, so both
/// sources share one execution path.
#[derive(Clone, Copy, Debug)]
pub struct WinRef<'a> {
    /// First (unwrapped) neighbor index; wrapping is Part 2's job.
    pub start: i32,
    /// Kernel weights, one per tap (`w.len()` taps).
    pub w: &'a [f32],
}

impl WinRef<'_> {
    /// Number of taps.
    #[inline]
    pub fn len(&self) -> usize {
        self.w.len()
    }

    /// True for a zero-tap window.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.w.is_empty()
    }
}

/// Borrows a full D-dimensional window stack.
#[inline]
pub fn win_refs<const D: usize>(win: &[Window; D]) -> [WinRef<'_>; D] {
    core::array::from_fn(|d| win[d].as_ref())
}

#[inline(always)]
fn wrap(x: i32, m: usize) -> usize {
    x.rem_euclid(m as i32) as usize
}

/// Scatters `val` along one (possibly wrapping) grid row: the innermost loop
/// of the adjoint convolution.
#[inline(always)]
fn scatter_wrapped_row(
    grid: &mut [Complex32],
    row_base: usize,
    m_last: usize,
    wz: WinRef<'_>,
    val: Complex32,
) {
    let n = wz.len();
    let z0 = wrap(wz.start, m_last);
    if z0 + n <= m_last {
        scatter_row(&mut grid[row_base + z0..row_base + z0 + n], wz.w, val);
    } else {
        let first = m_last - z0;
        scatter_row(&mut grid[row_base + z0..row_base + m_last], &wz.w[..first], val);
        scatter_row(&mut grid[row_base..row_base + n - first], &wz.w[first..], val);
    }
}

/// Gathers one (possibly wrapping) grid row weighted by `wz`.
#[inline(always)]
fn gather_wrapped_row(
    grid: &[Complex32],
    row_base: usize,
    m_last: usize,
    wz: WinRef<'_>,
) -> Complex32 {
    let n = wz.len();
    let z0 = wrap(wz.start, m_last);
    if z0 + n <= m_last {
        gather_row(&grid[row_base + z0..row_base + z0 + n], wz.w)
    } else {
        let first = m_last - z0;
        let a = gather_row(&grid[row_base + z0..row_base + m_last], &wz.w[..first]);
        let b = gather_row(&grid[row_base..row_base + n - first], &wz.w[first..]);
        a + b
    }
}

/// [`gather_wrapped_row`] over two channel grids sharing one weight row —
/// bitwise-equal per channel to two independent one-grid gathers (the
/// `gather_row2` kernels guarantee it per row, and the wrap split adds the
/// two segments in the same order).
#[inline(always)]
fn gather_wrapped_row2(
    ga: &[Complex32],
    gb: &[Complex32],
    row_base: usize,
    m_last: usize,
    wz: WinRef<'_>,
) -> (Complex32, Complex32) {
    let n = wz.len();
    let z0 = wrap(wz.start, m_last);
    if z0 + n <= m_last {
        gather_row2(
            &ga[row_base + z0..row_base + z0 + n],
            &gb[row_base + z0..row_base + z0 + n],
            wz.w,
        )
    } else {
        let first = m_last - z0;
        let (a0, b0) = gather_row2(
            &ga[row_base + z0..row_base + m_last],
            &gb[row_base + z0..row_base + m_last],
            &wz.w[..first],
        );
        let (a1, b1) = gather_row2(
            &ga[row_base..row_base + n - first],
            &gb[row_base..row_base + n - first],
            &wz.w[first..],
        );
        (a0 + a1, b0 + b1)
    }
}

/// Adjoint (scatter) convolution of one sample onto the global grid
/// (Figure 2, Part 2b).
#[inline]
pub fn adjoint_scatter<const D: usize>(
    grid: &mut [Complex32],
    m: &[usize; D],
    win: &[WinRef<'_>; D],
    val: Complex32,
) {
    match D {
        1 => scatter_wrapped_row(grid, 0, m[0], win[0], val),
        2 => {
            for ix in 0..win[0].len() {
                let gx = wrap(win[0].start + ix as i32, m[0]);
                let f = val.scale(win[0].w[ix]);
                scatter_wrapped_row(grid, gx * m[1], m[1], win[1], f);
            }
        }
        3 => {
            // Small-W fast path (§III-C "SIMD across several y iterations"):
            // when the z-row does not wrap, fuse pairs of y-rows through
            // scatter_row2 so one weight-expansion feeds two FMA rows.
            let lz = win[2].len();
            let z0 = wrap(win[2].start, m[2]);
            let z_contiguous = z0 + lz <= m[2];
            for ix in 0..win[0].len() {
                let gx = wrap(win[0].start + ix as i32, m[0]);
                let fx = win[0].w[ix];
                let mut iy = 0;
                if z_contiguous {
                    while iy + 2 <= win[1].len() {
                        let gy0 = wrap(win[1].start + iy as i32, m[1]);
                        let gy1 = wrap(win[1].start + (iy + 1) as i32, m[1]);
                        let f0 = val.scale(fx * win[1].w[iy]);
                        let f1 = val.scale(fx * win[1].w[iy + 1]);
                        let b0 = (gx * m[1] + gy0) * m[2] + z0;
                        let b1 = (gx * m[1] + gy1) * m[2] + z0;
                        // SAFETY: gy0 != gy1 (adjacent wrapped indices on a
                        // grid of extent ≥ 2W+1 > 1), so the two rows are
                        // disjoint subslices of `grid`.
                        let (r0, r1) = unsafe {
                            let base = grid.as_mut_ptr();
                            (
                                core::slice::from_raw_parts_mut(base.add(b0), lz),
                                core::slice::from_raw_parts_mut(base.add(b1), lz),
                            )
                        };
                        scatter_row2(r0, f0, r1, f1, win[2].w);
                        iy += 2;
                    }
                }
                while iy < win[1].len() {
                    let gy = wrap(win[1].start + iy as i32, m[1]);
                    let f = val.scale(fx * win[1].w[iy]);
                    scatter_wrapped_row(grid, (gx * m[1] + gy) * m[2], m[2], win[2], f);
                    iy += 1;
                }
            }
        }
        _ => unimplemented!("dimensions above 3 are not supported"),
    }
}

/// Forward (gather) convolution of one sample from the global grid
/// (Figure 2, Part 2a).
#[inline]
pub fn forward_gather<const D: usize>(
    grid: &[Complex32],
    m: &[usize; D],
    win: &[WinRef<'_>; D],
) -> Complex32 {
    match D {
        1 => gather_wrapped_row(grid, 0, m[0], win[0]),
        2 => {
            let mut acc = Complex32::ZERO;
            for ix in 0..win[0].len() {
                let gx = wrap(win[0].start + ix as i32, m[0]);
                let row = gather_wrapped_row(grid, gx * m[1], m[1], win[1]);
                acc += row.scale(win[0].w[ix]);
            }
            acc
        }
        3 => {
            let mut acc = Complex32::ZERO;
            for ix in 0..win[0].len() {
                let gx = wrap(win[0].start + ix as i32, m[0]);
                let fx = win[0].w[ix];
                for iy in 0..win[1].len() {
                    let gy = wrap(win[1].start + iy as i32, m[1]);
                    let row = gather_wrapped_row(grid, (gx * m[1] + gy) * m[2], m[2], win[2]);
                    acc += row.scale(fx * win[1].w[iy]);
                }
            }
            acc
        }
        _ => unimplemented!("dimensions above 3 are not supported"),
    }
}

/// Channel-paired forward gather: one sample's window applied to two grids
/// at once, amortizing the Part 1 lookup and the weight expansion across
/// channels (the multi-channel forward driver's inner step).
///
/// Bitwise-equal per channel to two independent [`forward_gather`] calls:
/// each channel's accumulator sees the identical operation sequence, and
/// the paired row kernels guarantee per-row equality at every ISA level.
#[inline]
pub fn forward_gather2<const D: usize>(
    ga: &[Complex32],
    gb: &[Complex32],
    m: &[usize; D],
    win: &[WinRef<'_>; D],
) -> (Complex32, Complex32) {
    match D {
        1 => gather_wrapped_row2(ga, gb, 0, m[0], win[0]),
        2 => {
            let mut acc_a = Complex32::ZERO;
            let mut acc_b = Complex32::ZERO;
            for ix in 0..win[0].len() {
                let gx = wrap(win[0].start + ix as i32, m[0]);
                let (ra, rb) = gather_wrapped_row2(ga, gb, gx * m[1], m[1], win[1]);
                acc_a += ra.scale(win[0].w[ix]);
                acc_b += rb.scale(win[0].w[ix]);
            }
            (acc_a, acc_b)
        }
        3 => {
            let mut acc_a = Complex32::ZERO;
            let mut acc_b = Complex32::ZERO;
            for ix in 0..win[0].len() {
                let gx = wrap(win[0].start + ix as i32, m[0]);
                let fx = win[0].w[ix];
                for iy in 0..win[1].len() {
                    let gy = wrap(win[1].start + iy as i32, m[1]);
                    let base = (gx * m[1] + gy) * m[2];
                    let (ra, rb) = gather_wrapped_row2(ga, gb, base, m[2], win[2]);
                    acc_a += ra.scale(fx * win[1].w[iy]);
                    acc_b += rb.scale(fx * win[1].w[iy]);
                }
            }
            (acc_a, acc_b)
        }
        _ => unimplemented!("dimensions above 3 are not supported"),
    }
}

/// Adjoint scatter into a privatized local buffer (no wrapping: the buffer
/// covers the task's halo box in unwrapped coordinates, §III-B4).
///
/// `origin` is the buffer's unwrapped starting coordinate per dimension and
/// `size` its extents; every window tap is guaranteed in range by
/// preprocessing.
#[inline]
pub fn adjoint_scatter_local<const D: usize>(
    buf: &mut [Complex32],
    origin: &[i32; D],
    size: &[usize; D],
    win: &[WinRef<'_>; D],
    val: Complex32,
) {
    match D {
        1 => {
            let l0 = (win[0].start - origin[0]) as usize;
            scatter_row(&mut buf[l0..l0 + win[0].len()], win[0].w, val);
        }
        2 => {
            let ly = (win[1].start - origin[1]) as usize;
            for ix in 0..win[0].len() {
                let lx = (win[0].start - origin[0]) as usize + ix;
                let f = val.scale(win[0].w[ix]);
                let base = lx * size[1] + ly;
                scatter_row(&mut buf[base..base + win[1].len()], win[1].w, f);
            }
        }
        3 => {
            let lz = (win[2].start - origin[2]) as usize;
            for ix in 0..win[0].len() {
                let lx = (win[0].start - origin[0]) as usize + ix;
                let fx = win[0].w[ix];
                for iy in 0..win[1].len() {
                    let ly = (win[1].start - origin[1]) as usize + iy;
                    let f = val.scale(fx * win[1].w[iy]);
                    let base = (lx * size[1] + ly) * size[2] + lz;
                    scatter_row(&mut buf[base..base + win[2].len()], win[2].w, f);
                }
            }
        }
        _ => unimplemented!("dimensions above 3 are not supported"),
    }
}

/// Reduces a privatized buffer into the global grid with wrapping — the
/// decoupled reduction phase of §III-B4. Rows are added via the SIMD
/// accumulate kernel, split at the wrap point when needed.
pub fn reduce_local<const D: usize>(
    grid: &mut [Complex32],
    m: &[usize; D],
    buf: &[Complex32],
    origin: &[i32; D],
    size: &[usize; D],
) {
    match D {
        1 => {
            add_wrapped_row(grid, 0, m[0], origin[0], &buf[..size[0]]);
        }
        2 => {
            for lx in 0..size[0] {
                let gx = wrap(origin[0] + lx as i32, m[0]);
                let row = &buf[lx * size[1]..(lx + 1) * size[1]];
                add_wrapped_row(grid, gx * m[1], m[1], origin[1], row);
            }
        }
        3 => {
            for lx in 0..size[0] {
                let gx = wrap(origin[0] + lx as i32, m[0]);
                for ly in 0..size[1] {
                    let gy = wrap(origin[1] + ly as i32, m[1]);
                    let row =
                        &buf[(lx * size[1] + ly) * size[2]..(lx * size[1] + ly + 1) * size[2]];
                    add_wrapped_row(grid, (gx * m[1] + gy) * m[2], m[2], origin[2], row);
                }
            }
        }
        _ => unimplemented!("dimensions above 3 are not supported"),
    }
}

/// `grid[base + (origin + i) mod m] += row[i]`, split into contiguous runs.
#[inline]
fn add_wrapped_row(
    grid: &mut [Complex32],
    row_base: usize,
    m_last: usize,
    origin: i32,
    row: &[Complex32],
) {
    debug_assert!(row.len() <= m_last, "privatized row wider than the grid");
    let z0 = wrap(origin, m_last);
    if z0 + row.len() <= m_last {
        nufft_simd::accumulate(&mut grid[row_base + z0..row_base + z0 + row.len()], row);
    } else {
        let first = m_last - z0;
        nufft_simd::accumulate(&mut grid[row_base + z0..row_base + m_last], &row[..first]);
        nufft_simd::accumulate(&mut grid[row_base..row_base + row.len() - first], &row[first..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::InterpKernel;

    fn kernel() -> InterpKernel {
        InterpKernel::new(2.0, 2.0)
    }

    #[test]
    fn window_taps_and_range() {
        let k = kernel();
        // Non-integer coordinate: 2W taps.
        let w = Window::compute(5.3, 2.0, &k);
        assert_eq!(w.start, 4); // ceil(3.3)
        assert_eq!(w.len, 4); // 4,5,6,7 (floor(7.3))
                              // Integer coordinate: 2W+1 taps.
        let w = Window::compute(5.0, 2.0, &k);
        assert_eq!(w.start, 3);
        assert_eq!(w.len, 5);
        // Weights are symmetric for the integer case.
        assert!((w.w[0] - w.w[4]).abs() < 1e-6);
        assert!((w.w[1] - w.w[3]).abs() < 1e-6);
        // Peak at the center tap.
        assert!(w.w[2] > w.w[1]);
    }

    #[test]
    fn window_taps_never_exceed_the_true_support() {
        // Regression: an f32 `u + W` can round up across an integer
        // (binade-crossing, e.g. u = 121 − 2⁻¹⁷, W = 8: f32(u+8) = 129.0)
        // and admit a tap outside [u−W, u+W], overflowing privatized halo
        // buffers. Bounds must be computed exactly.
        let k8 = InterpKernel::new(8.0, 2.0);
        let hazardous = 121.0f32 - 2.0f32.powi(-17);
        let w = Window::compute(hazardous, 8.0, &k8);
        let last = (w.start + w.len as i32 - 1) as f64;
        assert!(last - hazardous as f64 <= 8.0, "tap {last} outside support of u={hazardous}");
        // And fuzz the invariant across binades and widths.
        let k = kernel();
        for i in 0..20000 {
            let u = f32::from_bits((i as u32).wrapping_mul(2654435761) % 0x4380_0000);
            if !(0.0..1000.0).contains(&u) {
                continue;
            }
            for (wrad, kk) in [(2.0f32, &k), (8.0, &k8)] {
                let w = Window::compute(u, wrad, kk);
                let first = w.start as f64;
                let last = (w.start + w.len as i32 - 1) as f64;
                assert!(first >= u as f64 - wrad as f64 - 1e-12, "u={u} w={wrad}");
                assert!(last <= u as f64 + wrad as f64 + 1e-12, "u={u} w={wrad}");
            }
        }
    }

    #[test]
    fn window_near_zero_goes_negative() {
        let k = kernel();
        let w = Window::compute(0.5, 2.0, &k);
        assert_eq!(w.start, -1); // ceil(-1.5)
        assert_eq!(w.len, 4);
    }

    #[test]
    fn scatter_gather_1d_round_trip_weights() {
        let k = kernel();
        let m = [16usize];
        let mut grid = vec![Complex32::ZERO; 16];
        let win = [Window::compute(7.4, 2.0, &k)];
        adjoint_scatter(&mut grid, &m, &win_refs(&win), Complex32::ONE);
        // gather at the same point returns Σ w².
        let got = forward_gather(&grid, &m, &win_refs(&win));
        let want: f32 = win[0].w[..win[0].len].iter().map(|x| x * x).sum();
        assert!((got.re - want).abs() < 1e-6 && got.im.abs() < 1e-9);
    }

    #[test]
    fn scatter_wraps_across_edge_1d() {
        let k = kernel();
        let m = [16usize];
        let mut grid = vec![Complex32::ZERO; 16];
        let win = [Window::compute(0.5, 2.0, &k)];
        adjoint_scatter(&mut grid, &m, &win_refs(&win), Complex32::ONE);
        // Taps at −1,0,1,2 → grid 15,0,1,2.
        assert!(grid[15].re > 0.0);
        assert!(grid[0].re > 0.0);
        assert!(grid[2].re > 0.0);
        assert_eq!(grid[3], Complex32::ZERO);
        // Total mass conserved.
        let mass: f32 = grid.iter().map(|z| z.re).sum();
        let want: f32 = win[0].w[..win[0].len].iter().sum();
        assert!((mass - want).abs() < 1e-6);
    }

    #[test]
    fn scatter_3d_mass_conservation_with_wrap() {
        let k = kernel();
        let m = [8usize, 8, 8];
        let mut grid = vec![Complex32::ZERO; 512];
        // Coordinate near a corner: wraps in every dimension.
        let win = [
            Window::compute(0.3, 2.0, &k),
            Window::compute(7.6, 2.0, &k),
            Window::compute(0.1, 2.0, &k),
        ];
        let val = Complex32::new(2.0, -1.0);
        adjoint_scatter(&mut grid, &m, &win_refs(&win), val);
        let mass: Complex32 = grid.iter().copied().sum();
        let wsum: f32 = (0..3).map(|d| win[d].w[..win[d].len].iter().sum::<f32>()).product();
        assert!((mass.re - val.re * wsum).abs() < 1e-4);
        assert!((mass.im - val.im * wsum).abs() < 1e-4);
    }

    #[test]
    fn gather_is_exact_adjoint_of_scatter_3d() {
        // ⟨scatter(v), g⟩ == v·conj(gather(g)) ... with real weights:
        // gather(scatter(e)) over two different windows equals the windows'
        // overlap inner product either way round.
        let k = kernel();
        let m = [8usize, 8, 8];
        let win_a = [
            Window::compute(3.2, 2.0, &k),
            Window::compute(4.7, 2.0, &k),
            Window::compute(2.9, 2.0, &k),
        ];
        let win_b = [
            Window::compute(4.1, 2.0, &k),
            Window::compute(3.9, 2.0, &k),
            Window::compute(3.4, 2.0, &k),
        ];
        let mut ga = vec![Complex32::ZERO; 512];
        adjoint_scatter(&mut ga, &m, &win_refs(&win_a), Complex32::ONE);
        let mut gb = vec![Complex32::ZERO; 512];
        adjoint_scatter(&mut gb, &m, &win_refs(&win_b), Complex32::ONE);
        // ⟨A e, B e⟩ both ways.
        let ab = forward_gather(&ga, &m, &win_refs(&win_b)).re;
        let ba = forward_gather(&gb, &m, &win_refs(&win_a)).re;
        assert!((ab - ba).abs() < 1e-5, "{ab} vs {ba}");
    }

    #[test]
    fn local_scatter_plus_reduce_equals_direct_scatter() {
        let k = kernel();
        let m = [8usize, 8, 8];
        // Task halo box around a corner-adjacent cell: origin may be
        // negative.
        let origin = [-2i32, 3, -2];
        let size = [7usize, 5, 8];
        let mut buf = vec![Complex32::ZERO; size.iter().product()];
        let win = [
            Window::compute(1.4, 2.0, &k),
            Window::compute(5.5, 2.0, &k),
            Window::compute(0.2, 2.0, &k),
        ];
        let val = Complex32::new(1.0, 2.0);
        adjoint_scatter_local(&mut buf, &origin, &size, &win_refs(&win), val);

        let mut via_private = vec![Complex32::ZERO; 512];
        reduce_local(&mut via_private, &m, &buf, &origin, &size);

        let mut direct = vec![Complex32::ZERO; 512];
        adjoint_scatter(&mut direct, &m, &win_refs(&win), val);

        for (i, (a, b)) in via_private.iter().zip(&direct).enumerate() {
            assert!(
                (a.re - b.re).abs() < 1e-6 && (a.im - b.im).abs() < 1e-6,
                "mismatch at {i}: {a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn gather_from_constant_grid_sums_weights() {
        let k = kernel();
        let m = [8usize, 8];
        let grid = vec![Complex32::new(3.0, 0.0); 64];
        let win = [Window::compute(3.3, 2.0, &k), Window::compute(6.8, 2.0, &k)];
        let got = forward_gather(&grid, &m, &win_refs(&win));
        let want: f32 = 3.0
            * win[0].w[..win[0].len].iter().sum::<f32>()
            * win[1].w[..win[1].len].iter().sum::<f32>();
        assert!((got.re - want).abs() < 1e-4);
    }
}
