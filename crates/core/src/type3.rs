//! Type-3 NUFFT (nonuniform → nonuniform), composed from the stage
//! operators.
//!
//! The type-3 transform evaluates
//!
//! ```text
//! f_k = Σ_j c_j · e^{-2πi s_k · x_j},        k = 0..K
//! ```
//!
//! for arbitrary real source positions `x_j` and target frequencies `s_k`
//! — neither side lives on a grid, so neither the type-1 nor the type-2
//! plan applies directly. Following the classic reduction (Lee & Greengard
//! 2005; FINUFFT's `t3` path), the transform factors through an
//! intermediate **fine grid** built entirely from existing stages:
//!
//! 1. **Spread** ([`SpreadOp`]): scatter the strengths onto a fine grid of
//!    extents `nf` with spacing `h_d = 1/(2·α·S_d)` chosen from the target
//!    bandwidth `S_d = max_k |s_{k,d}|`, at grid coordinates
//!    `u_j = x_j/h + nf/2`. The grid is sized so every kernel window fits
//!    without wrapping: `nf_d ≥ 2(X_d/h_d + W + 1)` with
//!    `X_d = max_j |x_{j,d}|`, rounded up to an FFT-fast length
//!    ([`nufft_fft::next_fast_len`]).
//! 2. **Inner type-2** ([`NufftPlan::forward`]): treat the fine grid as an
//!    image and evaluate its transform at the scaled frequencies
//!    `ν_k = s_k·h`. The spacing guarantees `|ν_k| ≤ 1/(2α) < 1/2`, i.e.
//!    the scaled targets always fit the inner plan's normalized band —
//!    this is where the FFT (including the four-step strategy) and the
//!    inner kernel's deconvolution happen.
//! 3. **Postscale**: divide out the *outer* spreading kernel,
//!    `f_k = t_k / Π_d Â(s_{k,d}·h_d)`. With the plan's centered
//!    convention (`phase = ν·(u − nf/2)`), `u_j − nf/2 = x_j/h` exactly,
//!    so the correction is purely real — no residual phase ramp.
//!
//! The adjoint runs the exact transpose: postscale, inner adjoint, then
//! **interp** ([`InterpOp`]) at the source coordinates — so
//! `⟨forward(c), f⟩ == ⟨c, adjoint(f)⟩` to rounding, and both directions
//! inherit the stages' bitwise determinism across thread counts.
//!
//! Accuracy: two kernels are traversed (outer spread + the inner plan's),
//! so the error budget is a small constant multiple of a single-transform
//! budget at the same `(W, σ)` — calibrated in `tests/type3_accuracy.rs`
//! against the direct `f64` DTFT oracle.
//!
//! ```
//! use nufft_core::{NufftConfig, NufftPlan};
//! use nufft_math::Complex32;
//!
//! // 60 sources at arbitrary positions, 40 arbitrary target frequencies.
//! let sources: Vec<[f64; 1]> = (0..60).map(|j| [(j as f64 * 0.37).sin() * 3.0]).collect();
//! let targets: Vec<[f64; 1]> = (0..40).map(|k| [(k as f64 * 0.59).cos() * 2.5]).collect();
//! let cfg = NufftConfig { threads: 2, w: 3.0, ..NufftConfig::default() };
//! let mut plan = NufftPlan::type3(&sources, &targets, cfg);
//!
//! let strengths = vec![Complex32::ONE; sources.len()];
//! let mut spectrum = vec![Complex32::ZERO; targets.len()];
//! plan.forward(&strengths, &mut spectrum);
//! ```

use crate::plan::{ExecMode, NufftConfig, NufftPlan};
use crate::stage::{InterpOp, SpreadOp};
use nufft_math::Complex32;
use nufft_parallel::exec::{Executor, JobPriority};

/// A planned type-3 transform: `num_sources` arbitrary positions →
/// `num_targets` arbitrary frequencies.
///
/// All intermediate buffers (fine grid, staged target values) are owned by
/// the plan, so repeated [`Type3Plan::forward`] / [`Type3Plan::adjoint`]
/// applies are allocation-free once warm — pinned by
/// `tests/alloc_steady_state.rs`.
pub struct Type3Plan<const D: usize> {
    cfg: NufftConfig,
    exec: Executor,
    /// Outer scatter of source strengths onto the fine grid.
    spread: SpreadOp<D>,
    /// Adjoint-side gather at the source coordinates (shares the spread's
    /// preprocessing and window table).
    interp: InterpOp<D>,
    /// Inner type-2 plan over the fine grid at the scaled targets.
    inner: NufftPlan<D>,
    /// The fine grid (the inner plan's "image").
    fine: Vec<Complex32>,
    /// Staging for postscaled target values on the adjoint path.
    stage_k: Vec<Complex32>,
    /// `1 / Π_d Â(s_{k,d}·h_d)` — the outer kernel's deconvolution,
    /// purely real (see module docs).
    postscale: Vec<f32>,
    /// Fine-grid extents per dimension.
    nf: [usize; D],
    /// Fine-grid spacing per dimension (source units per grid cell).
    h: [f64; D],
}

impl<const D: usize> NufftPlan<D> {
    /// Plans a type-3 transform `f_k = Σ_j c_j·e^{-2πi s_k·x_j}` from
    /// `sources` positions to `targets` frequencies (both in arbitrary
    /// real units — unlike [`NufftPlan::new`], nothing is normalized).
    ///
    /// # Panics
    /// See [`Type3Plan::new`].
    pub fn type3(sources: &[[f64; D]], targets: &[[f64; D]], cfg: NufftConfig) -> Type3Plan<D> {
        Type3Plan::new(sources, targets, cfg)
    }
}

impl<const D: usize> Type3Plan<D> {
    /// Plans a type-3 transform on a fresh executor of `cfg.threads`
    /// workers.
    ///
    /// # Panics
    /// Panics if `sources` or `targets` is empty, `cfg.alpha ≤ 1` (the
    /// scaled targets would not fit the inner plan's band), or any
    /// [`NufftPlan::new`] precondition fails for the derived fine grid.
    pub fn new(sources: &[[f64; D]], targets: &[[f64; D]], cfg: NufftConfig) -> Self {
        let exec = Executor::with_backend(cfg.threads.max(1), cfg.backend);
        Self::new_shared(sources, targets, cfg, exec)
    }

    /// Tolerance-driven type-3 planning: [`Type3Plan::new`] with the
    /// kernel family and its parameters derived from the requested
    /// relative accuracy (the ES kernel by default — see
    /// [`NufftConfig::with_tolerance`]) and every other knob at its
    /// default.
    ///
    /// # Panics
    /// See [`Type3Plan::new`]; additionally panics unless `0 < eps < 1`.
    pub fn with_tolerance(sources: &[[f64; D]], targets: &[[f64; D]], eps: f64) -> Self {
        Self::new(sources, targets, NufftConfig::tolerance(eps))
    }

    /// [`Type3Plan::new`] on a caller-supplied executor (the registry's
    /// shared-pool path). `cfg.threads` is normalized to the executor's
    /// worker count.
    pub fn new_shared(
        sources: &[[f64; D]],
        targets: &[[f64; D]],
        mut cfg: NufftConfig,
        exec: Executor,
    ) -> Self {
        assert!(D >= 1 && D <= 3, "type-3 supports 1–3 dimensions");
        assert!(!sources.is_empty(), "type-3 requires at least one source");
        assert!(!targets.is_empty(), "type-3 requires at least one target");
        assert!(cfg.alpha > 1.0, "type-3 requires oversampling alpha > 1 (got {})", cfg.alpha);
        cfg.threads = exec.threads();

        // Geometry: spacing from the target bandwidth, extents from the
        // source spread plus a no-wrap kernel margin (module docs).
        let w = cfg.w;
        let wc = w.ceil() as usize;
        let mut nf = [0usize; D];
        let mut h = [0f64; D];
        for d in 0..D {
            let s_max = targets.iter().map(|s| s[d].abs()).fold(0.0f64, f64::max);
            let x_max = sources.iter().map(|x| x[d].abs()).fold(0.0f64, f64::max);
            h[d] = if s_max > 0.0 { 1.0 / (2.0 * cfg.alpha * s_max) } else { 1.0 };
            // +1 beyond the two-sided margin so the floor-centering below
            // stays interior even when `next_fast_len` lands on an odd
            // extent (`⌊nf/2⌋` sits half a cell left of center).
            let min_nf =
                ((2.0 * (x_max / h[d] + w + 1.0)).ceil() as usize + 1).max(2 * (wc + 1) + 1);
            nf[d] = nufft_fft::next_fast_len(min_nf);
        }

        // Outer spread at fine-grid coordinates u_j = x_j/h + ⌊nf/2⌋; the
        // margin keeps every window interior (no wraparound ever fires).
        // The center MUST be the integer ⌊nf/2⌋ — the plan's phase
        // convention is `ν·(u − ⌊nf/2⌋)` — or odd extents pick up a
        // half-cell phase ramp.
        let coords: Vec<[f32; D]> = sources
            .iter()
            .map(|x| core::array::from_fn(|d| (x[d] / h[d] + (nf[d] / 2) as f64) as f32))
            .collect();
        let mut spread = SpreadOp::plan(nf, coords, &cfg, &exec);
        let interp = InterpOp::from_spread(&spread, cfg.grain);
        spread.ensure_priv_channels(1);

        // Inner type-2 over the fine grid at the scaled targets
        // ν_k = s_k·h ∈ [-1/(2α), 1/(2α)] ⊂ [-1/2, 1/2).
        let traj_inner: Vec<[f64; D]> =
            targets.iter().map(|s| core::array::from_fn(|d| s[d] * h[d])).collect();
        let inner = NufftPlan::new_shared(nf, &traj_inner, cfg, exec.clone(), None);

        // Outer-kernel deconvolution at the targets, in cycles per fine
        // grid cell — real because the centered phase cancels exactly.
        let postscale: Vec<f32> = targets
            .iter()
            .map(|s| {
                let mut p = 1.0f64;
                for d in 0..D {
                    p *= spread.kernel.fourier(s[d] * h[d]);
                }
                (1.0 / p) as f32
            })
            .collect();

        let fine = vec![Complex32::ZERO; spread.grid_len()];
        let stage_k = vec![Complex32::ZERO; targets.len()];
        Type3Plan { cfg, exec, spread, interp, inner, fine, stage_k, postscale, nf, h }
    }

    /// Number of source points `x_j` (the forward input length).
    pub fn num_sources(&self) -> usize {
        self.spread.num_samples()
    }

    /// Number of target frequencies `s_k` (the forward output length).
    pub fn num_targets(&self) -> usize {
        self.postscale.len()
    }

    /// Intermediate fine-grid extents (diagnostics and memory estimates —
    /// the inner plan oversamples this once more by `α`).
    pub fn fine_extents(&self) -> [usize; D] {
        self.nf
    }

    /// Fine-grid spacing per dimension, in source units per grid cell.
    pub fn fine_spacing(&self) -> [f64; D] {
        self.h
    }

    /// Switches the inner transform between the fused whole-operator DAG
    /// and the phased path (the outer spread/interp stages are
    /// mode-independent). Output stays bitwise-identical either way.
    pub fn set_exec_mode(&mut self, mode: ExecMode) {
        self.cfg.exec_mode = mode;
        self.inner.set_exec_mode(mode);
    }

    /// Sets the fair-share admission priority for every stage's dispatches
    /// on a shared pool.
    pub fn set_admission_priority(&mut self, priority: JobPriority) {
        self.cfg.admission = priority;
        self.inner.set_admission_priority(priority);
    }

    /// Forward type-3: `out[k] = Σ_j strengths[j]·e^{-2πi s_k·x_j}`
    /// (approximation; see module docs for the error budget).
    /// Bitwise-deterministic at any thread count.
    ///
    /// # Panics
    /// Panics if `strengths.len() != num_sources()` or
    /// `out.len() != num_targets()`.
    pub fn forward(&mut self, strengths: &[Complex32], out: &mut [Complex32]) {
        assert_eq!(strengths.len(), self.num_sources(), "strengths length mismatch");
        assert_eq!(out.len(), self.num_targets(), "output length mismatch");
        self.spread.apply(&self.exec, self.cfg.admission, strengths, &mut self.fine);
        self.inner.forward(&self.fine, out);
        for (o, &p) in out.iter_mut().zip(&self.postscale) {
            o.re *= p;
            o.im *= p;
        }
    }

    /// Adjoint type-3: `out[j] = Σ_k samples[k]·e^{+2πi s_k·x_j}` — the
    /// exact conjugate transpose of [`Type3Plan::forward`] (postscale,
    /// inner adjoint, gather at the sources).
    ///
    /// # Panics
    /// Panics if `samples.len() != num_targets()` or
    /// `out.len() != num_sources()`.
    pub fn adjoint(&mut self, samples: &[Complex32], out: &mut [Complex32]) {
        assert_eq!(samples.len(), self.num_targets(), "samples length mismatch");
        assert_eq!(out.len(), self.num_sources(), "output length mismatch");
        for ((t, &s), &p) in self.stage_k.iter_mut().zip(samples).zip(&self.postscale) {
            *t = Complex32::new(s.re * p, s.im * p);
        }
        self.inner.adjoint(&self.stage_k, &mut self.fine);
        self.interp.apply(&self.exec, &self.fine, out);
    }
}
