//! Interpolation kernels: the plan's kernel layer (§II-B).
//!
//! A kernel *family* plugs into the rest of the stack through three
//! capabilities, all owned by [`InterpKernel`]:
//!
//! 1. **point evaluation** — `eval_exact` (reference `f64`) and the Part 1
//!    row evaluator [`InterpKernel::eval_row`] the convolution drivers call;
//! 2. **a continuous Fourier transform** — [`InterpKernel::fourier`], which
//!    the roll-off correction ([`crate::scale`]) and the type-3 postscale
//!    divide by. Closed form where one exists; otherwise tabulated by
//!    Gauss–Legendre quadrature at kernel build (the FINUFFT approach);
//! 3. **an optional fast-eval path** — a fitted piecewise-polynomial Horner
//!    table evaluated by the SIMD sweep in `nufft_simd::horner`, replacing
//!    the LUT when the family provides a fit.
//!
//! Three families are built in:
//!
//! * **Kaiser–Bessel** — the paper's workhorse,
//!   `I(x) = I₀(β·√(1 − (x/W)²)) / I₀(β)` with Beatty's minimal-oversampling
//!   β and the closed-form transform
//!   `Â(ξ) = (2W/I₀(β)) · sinhc(√(β² − (2πWξ)²))`. Evaluated by LUT with
//!   linear interpolation (the Dale et al. optimization).
//! * **Gaussian** — Greengard & Lee's classical kernel `e^{−x²/(4τ)}`,
//!   simpler but measurably less accurate at equal width.
//! * **Exponential of semicircle (ES)** — FINUFFT's kernel
//!   `φ(x) = e^{β(√(1 − (x/W)²) − 1)}`, numerically indistinguishable from
//!   KB at equal width but *cheap*: it needs no Bessel function, and because
//!   every tap of a window shares one fractional offset it admits a
//!   piecewise-polynomial fit (one polynomial per integer tap offset,
//!   Chebyshev-interpolated at build) evaluated by a lane-parallel FMA
//!   Horner sweep. Its transform has no closed form, so `fourier` sums a
//!   prebuilt Gauss–Legendre rule with the kernel values folded into the
//!   weights.
//!
//! The LUT error at the default density is below the convolution's own
//! single-precision round-off for the default widths; tolerance-driven
//! planning ([`crate::plan::NufftConfig::with_tolerance`]) raises the
//! density when a tighter budget demands it — or sidesteps the issue
//! entirely by picking the ES family's near-exact Horner path.

use nufft_math::bessel::bessel_i0;
use nufft_math::quad::gauss_legendre_on;
use nufft_math::special::kb_ft_shape;

/// Default LUT samples per unit of kernel argument.
pub const DEFAULT_LUT_DENSITY: usize = 512;

/// Gauss–Legendre nodes for tabulated kernel transforms: enough for the
/// oscillation range the deconvolution ever queries (`|2πξW| ≲ 40`), with
/// geometric-convergence headroom for the smooth part of the integrand.
const FT_QUAD_NODES: usize = 80;

/// Which kernel family a plan interpolates with.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelChoice {
    /// Kaiser–Bessel with Beatty's β — the paper's kernel (default).
    KaiserBessel,
    /// Truncated Gaussian with the Greengard–Lee spreading parameter.
    Gaussian,
    /// FINUFFT's "exponential of semicircle" kernel with the β(W, σ) rule
    /// from Barnett et al., evaluated by the piecewise-polynomial Horner
    /// fast path whenever the width `2W` is a whole number of grid cells.
    EsKernel,
}

#[derive(Clone, Copy, Debug)]
enum Shape {
    KaiserBessel { beta: f64, inv_i0_beta: f64 },
    Gaussian { tau: f64 },
    Es { beta: f64 },
}

/// Fitted piecewise polynomials for the Horner fast-eval path: one
/// polynomial per integer tap offset, in the shared window argument
/// `z = 2(u − x1 − (W−1)) − 1 ∈ (−1, 1]`. Coefficient-major layout (row
/// `r` holds every piece's coefficient of `z^(rows−1−r)`, `stride` wide) —
/// exactly what [`nufft_simd::horner_row`] streams.
#[derive(Clone, Debug)]
struct HornerTable {
    /// Coefficients per piece (degree + 1).
    rows: usize,
    /// Row stride: piece count rounded up to a full 8-float vector.
    stride: usize,
    coeffs: Vec<f32>,
}

/// Gauss–Legendre tabulation of a kernel transform with no closed form:
/// `Â(ξ) = 2·Σ_j weighted[j]·cos(2πξ·node[j])` over nodes on `[0, W]`
/// (the kernel is even), with the kernel values pre-folded into the
/// weights at build.
#[derive(Clone, Debug)]
struct FtQuad {
    /// `(x_j, w_j·φ(x_j))` pairs.
    nodes: Vec<(f64, f64)>,
}

/// A prepared interpolation kernel: shape parameters plus the evaluation
/// tables (LUT always; Horner fit and transform quadrature per family).
#[derive(Clone, Debug)]
pub struct InterpKernel {
    /// Kernel radius in oversampled grid units (the paper's `W`).
    w: f64,
    shape: Shape,
    /// Table of kernel values at `x = i / density`.
    lut: Vec<f32>,
    /// Samples per unit argument.
    density: f64,
    /// Fast-eval fit (ES kernels with integral width `2W`).
    horner: Option<HornerTable>,
    /// Tabulated continuous transform (families without a closed form).
    ft_quad: Option<FtQuad>,
}

/// Backwards-compatible name for the default kernel type.
#[deprecated(note = "the kernel layer is multi-family; use `InterpKernel` (identical type)")]
pub type KbKernel = InterpKernel;

/// Beatty et al.'s β for kernel width `2W` (grid units) at oversampling `α`:
/// `β = π·√((2W/α)²·(α − 1/2)² − 0.8)`.
///
/// # Panics
/// Panics if `w ≤ 0`, `α ≤ 1`, or the `(W, α)` pair is degenerate — i.e.
/// `(2W/α)²·(α − 1/2)² ≤ 0.8`, where the formula's discriminant vanishes
/// and the window would silently collapse to a boxcar (β = 0). Widen the
/// kernel or raise the oversampling instead.
pub fn beatty_beta(w: f64, alpha: f64) -> f64 {
    assert!(w > 0.0, "kernel radius must be positive");
    assert!(alpha > 1.0, "oversampling factor must exceed 1");
    let kw = 2.0 * w;
    let t = (kw / alpha) * (alpha - 0.5);
    let disc = t * t - 0.8;
    assert!(
        disc > 0.0,
        "degenerate Kaiser–Bessel parameters (W={w}, α={alpha}): \
         (2W/α)²·(α−1/2)² = {:.4} ≤ 0.8, so β would be 0 and the window \
         degenerates to a boxcar; increase W or α",
        t * t
    );
    core::f64::consts::PI * disc.sqrt()
}

/// Greengard–Lee's Gaussian spreading parameter, converted to oversampled
/// grid units: `τ = W·α / (4π·(α − 1/2))` — equalizes the truncation and
/// aliasing error exponents.
pub fn greengard_lee_tau(w: f64, alpha: f64) -> f64 {
    assert!(w > 0.0, "kernel radius must be positive");
    assert!(alpha > 1.0, "oversampling factor must exceed 1");
    w * alpha / (4.0 * core::f64::consts::PI * (alpha - 0.5))
}

/// The FINUFFT β rule for the ES kernel at width `ns = 2W` and
/// oversampling σ = α: `β = c·ns` with `c = 2.30` at σ = 2 (empirically
/// tweaked to 2.20/2.26/2.38 for ns = 2/3/4) and
/// `c = 0.97·π·(1 − 1/(2σ))` for other oversampling factors.
///
/// # Panics
/// Panics if `w ≤ 0` or `alpha ≤ 1`.
pub fn es_beta(w: f64, alpha: f64) -> f64 {
    assert!(w > 0.0, "kernel radius must be positive");
    assert!(alpha > 1.0, "oversampling factor must exceed 1");
    let ns = 2.0 * w;
    let near = |a: f64, b: f64| (a - b).abs() < 1e-9;
    let beta_over_ns = if near(alpha, 2.0) {
        if near(ns, 2.0) {
            2.20
        } else if near(ns, 3.0) {
            2.26
        } else if near(ns, 4.0) {
            2.38
        } else {
            2.30
        }
    } else {
        0.97 * core::f64::consts::PI * (1.0 - 1.0 / (2.0 * alpha))
    };
    beta_over_ns * ns
}

impl InterpKernel {
    /// Kaiser–Bessel kernel for radius `w` at oversampling `alpha` (default
    /// LUT density).
    pub fn new(w: f64, alpha: f64) -> Self {
        Self::with_density(w, beatty_beta(w, alpha), DEFAULT_LUT_DENSITY)
    }

    /// Builds the kernel of the given family.
    pub fn of(choice: KernelChoice, w: f64, alpha: f64, density: usize) -> Self {
        match choice {
            KernelChoice::KaiserBessel => Self::with_density(w, beatty_beta(w, alpha), density),
            KernelChoice::Gaussian => Self::gaussian(w, greengard_lee_tau(w, alpha), density),
            KernelChoice::EsKernel => Self::es(w, es_beta(w, alpha), density),
        }
    }

    /// Kaiser–Bessel with explicit β and LUT density.
    ///
    /// # Panics
    /// Panics if `w ≤ 0`, `beta ≤ 0` or `density == 0`.
    pub fn with_density(w: f64, beta: f64, density: usize) -> Self {
        assert!(beta > 0.0, "beta must be positive");
        let inv_i0_beta = 1.0 / bessel_i0(beta);
        Self::build(w, Shape::KaiserBessel { beta, inv_i0_beta }, density)
    }

    /// Truncated Gaussian `e^{−x²/(4τ)}` with explicit τ and LUT density.
    ///
    /// # Panics
    /// Panics if `w ≤ 0`, `tau ≤ 0` or `density == 0`.
    pub fn gaussian(w: f64, tau: f64, density: usize) -> Self {
        assert!(tau > 0.0, "tau must be positive");
        Self::build(w, Shape::Gaussian { tau }, density)
    }

    /// Exponential-of-semicircle kernel `e^{β(√(1−(x/W)²)−1)}` with explicit
    /// β. When the width `2W` is a whole number of grid cells the kernel
    /// also fits its Horner fast-eval table (the case every
    /// tolerance-planned width produces); other radii keep the LUT path.
    ///
    /// # Panics
    /// Panics if `w ≤ 0`, `beta ≤ 0` or `density == 0`.
    pub fn es(w: f64, beta: f64, density: usize) -> Self {
        assert!(beta > 0.0, "beta must be positive");
        Self::build(w, Shape::Es { beta }, density)
    }

    fn build(w: f64, shape: Shape, density: usize) -> Self {
        assert!(w > 0.0, "kernel radius must be positive");
        assert!(density > 0, "LUT density must be positive");
        let n = (w * density as f64).ceil() as usize + 2;
        let lut = (0..n)
            .map(|i| {
                let x = i as f64 / density as f64;
                eval_shape(&shape, x, w) as f32
            })
            .collect();
        let (horner, ft_quad) = match shape {
            Shape::Es { .. } => (fit_horner(&shape, w), Some(build_ft_quad(&shape, w))),
            _ => (None, None),
        };
        InterpKernel { w, shape, lut, density: density as f64, horner, ft_quad }
    }

    /// Kernel radius `W`.
    pub fn w(&self) -> f64 {
        self.w
    }

    /// Shape parameter β of a Kaiser–Bessel or ES kernel.
    ///
    /// # Panics
    /// Panics for kernels with no β (Gaussian).
    pub fn beta(&self) -> f64 {
        match self.shape {
            Shape::KaiserBessel { beta, .. } | Shape::Es { beta } => beta,
            Shape::Gaussian { .. } => panic!("Gaussian kernel has no beta"),
        }
    }

    /// True when Part 1 rows go through the fitted Horner fast path
    /// instead of the LUT.
    pub fn uses_horner(&self) -> bool {
        self.horner.is_some()
    }

    /// Heap bytes of the structure the *hot* Part 1 path actually touches:
    /// the Horner coefficient table when the fast path is fitted, the LUT
    /// otherwise. The cache-pressure observable of the matched-accuracy
    /// kernel A/B (`benches/kernels.rs`).
    pub fn eval_table_bytes(&self) -> usize {
        match &self.horner {
            Some(h) => h.coeffs.len() * core::mem::size_of::<f32>(),
            None => self.lut.len() * core::mem::size_of::<f32>(),
        }
    }

    /// Exact kernel value (double precision, no table).
    pub fn eval_exact(&self, x: f64) -> f64 {
        eval_shape(&self.shape, x.abs(), self.w)
    }

    /// Table lookup with linear interpolation; out-of-support arguments
    /// return 0.
    #[inline]
    pub fn eval_lut(&self, x: f32) -> f32 {
        let ax = x.abs();
        if ax as f64 > self.w {
            return 0.0;
        }
        let pos = ax * self.density as f32;
        let i = pos as usize;
        let frac = pos - i as f32;
        // The table has 2 slack entries, so i+1 is always in range for
        // in-support arguments.
        let a = self.lut[i];
        let b = self.lut[i + 1];
        a + (b - a) * frac
    }

    /// Part 1 row evaluation: fills `out[i] ≈ I((x1 + i) − u)` for every
    /// tap `i < len` in one pass — the single entry point
    /// `Window::compute`, and therefore every window source (on-the-fly,
    /// `WindowTable` precompute) and every gather/scatter driver, consumes.
    /// Dispatches to the fitted Horner sweep when the family provides one,
    /// else to the LUT row path; either way the result is a deterministic
    /// function of `(x1, len, u)`, bitwise-identical across ISA levels and
    /// thread counts. Every tap must be in support (`|x1 + i − u| ≤ W`),
    /// which `Window::compute`'s exact-`f64` bounds guarantee.
    ///
    /// # Panics
    /// Panics if `out.len() < len`.
    #[inline]
    pub fn eval_row(&self, x1: i32, len: usize, u: f32, out: &mut [f32]) {
        match &self.horner {
            Some(h) => {
                // All taps share one fractional offset: with
                // `s = u − x1 ∈ (W−1, W]`, tap `i`'s argument is
                // `i − (W−1) − t` for `t = s − (W−1) ∈ (0, 1]`, so piece
                // `i` is evaluated at `z = 2t − 1 ∈ (−1, 1]`.
                let t = u as f64 - x1 as f64 - (self.w - 1.0);
                let z = (2.0 * t - 1.0) as f32;
                nufft_simd::horner_row(&h.coeffs, h.stride, h.rows, z, &mut out[..len]);
            }
            None => self.eval_lut_row(x1, len, u, out),
        }
    }

    /// LUT arm of [`InterpKernel::eval_row`]: hoists the LUT scale
    /// conversion and the per-tap support branch out of the loop; results
    /// are identical to per-tap [`eval_lut`] calls.
    ///
    /// [`eval_lut`]: InterpKernel::eval_lut
    ///
    /// # Panics
    /// Panics if `out.len() < len`.
    #[inline]
    pub fn eval_lut_row(&self, x1: i32, len: usize, u: f32, out: &mut [f32]) {
        let dens = self.density as f32;
        let lut = &self.lut[..];
        for (i, o) in out[..len].iter_mut().enumerate() {
            let ax = ((x1 + i as i32) as f32 - u).abs();
            debug_assert!(ax as f64 <= self.w, "tap outside kernel support");
            let pos = ax * dens;
            let idx = pos as usize;
            let frac = pos - idx as f32;
            // The table has 2 slack entries past W·density, so idx+1 is in
            // range for every in-support tap.
            let a = lut[idx];
            let b = lut[idx + 1];
            *o = a + (b - a) * frac;
        }
    }

    /// The kernel's continuous Fourier transform `Â(ξ)`, with `ξ` in cycles
    /// per grid unit — what the roll-off correction divides by.
    pub fn fourier(&self, xi: f64) -> f64 {
        match self.shape {
            Shape::KaiserBessel { beta, inv_i0_beta } => {
                let t = core::f64::consts::TAU * self.w * xi;
                2.0 * self.w * inv_i0_beta * kb_ft_shape(beta, t)
            }
            Shape::Gaussian { tau } => {
                // FT of the untruncated Gaussian; the truncation tail is
                // below the kernel's own accuracy by construction of τ.
                2.0 * (core::f64::consts::PI * tau).sqrt()
                    * (-4.0 * core::f64::consts::PI.powi(2) * xi * xi * tau).exp()
            }
            Shape::Es { .. } => {
                // No closed form: evenness gives Â(ξ) = 2∫₀^W φ(x)cos(2πξx)dx,
                // summed over the prebuilt rule with φ folded into the weights.
                let q = self.ft_quad.as_ref().expect("ES kernel builds its FT quadrature");
                let c = core::f64::consts::TAU * xi;
                2.0 * q.nodes.iter().map(|&(x, wphi)| wphi * (c * x).cos()).sum::<f64>()
            }
        }
    }
}

fn eval_shape(shape: &Shape, x: f64, w: f64) -> f64 {
    if x > w {
        return 0.0;
    }
    match *shape {
        Shape::KaiserBessel { beta, inv_i0_beta } => {
            let r = x / w;
            bessel_i0(beta * (1.0 - r * r).max(0.0).sqrt()) * inv_i0_beta
        }
        Shape::Gaussian { tau } => (-x * x / (4.0 * tau)).exp(),
        Shape::Es { beta } => {
            let r = x / w;
            (beta * ((1.0 - r * r).max(0.0).sqrt() - 1.0)).exp()
        }
    }
}

/// Builds the Gauss–Legendre tabulation of the transform integrand over
/// `[0, W]` with the kernel values pre-folded into the weights.
fn build_ft_quad(shape: &Shape, w: f64) -> FtQuad {
    let nodes = gauss_legendre_on(FT_QUAD_NODES, 0.0, w)
        .into_iter()
        .map(|(x, wt)| (x, wt * eval_shape(shape, x, w)))
        .collect();
    FtQuad { nodes }
}

/// Fits the piecewise-polynomial Horner table: one Chebyshev interpolant
/// per integer tap offset, converted to monomial coefficients in `f64` and
/// stored `f32` coefficient-major. Requires the width `2W` to be a whole
/// number of cells (so windows have a fixed piece structure); returns
/// `None` otherwise and the kernel keeps its LUT path.
fn fit_horner(shape: &Shape, w: f64) -> Option<HornerTable> {
    let ns2 = 2.0 * w;
    if (ns2 - ns2.round()).abs() > 1e-9 {
        return None;
    }
    let ns = ns2.round() as usize;
    // Piece i covers tap argument [i − W, i − W + 1); piece ns exists only
    // for the integer-boundary window (t = 1, argument exactly W).
    let pieces = ns + 1;
    // Chebyshev truncation decays geometrically for the analytic interior;
    // the √-type edge behavior is damped by the kernel's own e^{−β} there.
    // ns + 6 keeps the fit at the f32 floor across every operating point.
    let degree = (ns + 6).clamp(9, 15);
    let rows = degree + 1;
    let stride = pieces.next_multiple_of(8);
    let mut coeffs = vec![0.0f32; rows * stride];
    let n = rows; // interpolation nodes per piece
    for i in 0..ns {
        // Sample at the Chebyshev roots z_k = cos(π(k+½)/n) — never the
        // endpoints, so the support-edge argument x = ±W is never hit.
        let fk: Vec<f64> = (0..n)
            .map(|k| {
                let z = (core::f64::consts::PI * (k as f64 + 0.5) / n as f64).cos();
                let t = 0.5 * (z + 1.0);
                let x = i as f64 - w + (1.0 - t);
                eval_shape(shape, x.abs(), w)
            })
            .collect();
        // Chebyshev coefficients by the discrete cosine sum.
        let cheb: Vec<f64> = (0..n)
            .map(|j| {
                let scale = if j == 0 { 1.0 } else { 2.0 } / n as f64;
                scale
                    * (0..n)
                        .map(|k| {
                            fk[k]
                                * (core::f64::consts::PI * j as f64 * (k as f64 + 0.5) / n as f64)
                                    .cos()
                        })
                        .sum::<f64>()
            })
            .collect();
        // Chebyshev → monomial via the T_{k+1} = 2z·T_k − T_{k−1} recurrence.
        let mut mono = vec![0.0f64; n];
        let mut t_prev = vec![0.0f64; n]; // T_{k−1}
        let mut t_cur = vec![0.0f64; n]; // T_k
        t_prev[0] = 1.0;
        mono[0] += cheb[0];
        if n > 1 {
            t_cur[1] = 1.0;
            mono[1] += cheb[1];
        }
        for j in 2..n {
            let mut t_next = vec![0.0f64; n];
            for p in 0..j {
                t_next[p + 1] += 2.0 * t_cur[p];
            }
            for p in 0..n {
                t_next[p] -= t_prev[p];
            }
            for p in 0..n {
                mono[p] += cheb[j] * t_next[p];
            }
            core::mem::swap(&mut t_prev, &mut t_cur);
            core::mem::swap(&mut t_cur, &mut t_next);
        }
        // Row r holds the coefficient of z^(degree − r).
        for r in 0..rows {
            coeffs[r * stride + i] = mono[degree - r] as f32;
        }
    }
    // Piece ns: consulted only at z = 1 (tap argument exactly W) — a
    // constant polynomial pinning the support-edge value.
    coeffs[degree * stride + ns] = eval_shape(shape, w, w) as f32;
    Some(HornerTable { rows, stride, coeffs })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beatty_beta_reference_values() {
        // α = 2, W = 4 (kernel width 8): β = π·√(4²·1.5² − 0.8).
        let b = beatty_beta(4.0, 2.0);
        let want = core::f64::consts::PI * (16.0f64 * 2.25 - 0.8).sqrt();
        assert!((b - want).abs() < 1e-12);
        // β grows with W and with α.
        assert!(beatty_beta(6.0, 2.0) > beatty_beta(4.0, 2.0));
        assert!(beatty_beta(4.0, 2.0) > beatty_beta(4.0, 1.25));
    }

    #[test]
    #[should_panic(expected = "degenerates to a boxcar")]
    fn beatty_beta_rejects_degenerate_parameters() {
        // W = 0.5, α = 2: (2W/α)²·(α−1/2)² = 0.5625 ≤ 0.8 — previously a
        // silent clamp to β = 0 (a boxcar window with no diagnostic).
        let _ = beatty_beta(0.5, 2.0);
    }

    #[test]
    fn es_beta_reference_values() {
        // σ = 2 rule: β = 2.30·ns with the small-width tweaks.
        assert!((es_beta(3.5, 2.0) - 2.30 * 7.0).abs() < 1e-12);
        assert!((es_beta(1.0, 2.0) - 2.20 * 2.0).abs() < 1e-12);
        assert!((es_beta(1.5, 2.0) - 2.26 * 3.0).abs() < 1e-12);
        assert!((es_beta(2.0, 2.0) - 2.38 * 4.0).abs() < 1e-12);
        // General-σ rule: β = 0.97·π·(1 − 1/(2σ))·ns.
        let want = 0.97 * core::f64::consts::PI * (1.0 - 1.0 / 2.5) * 6.0;
        assert!((es_beta(3.0, 1.25) - want).abs() < 1e-12);
    }

    #[test]
    fn kernel_peaks_at_zero_and_vanishes_at_w() {
        let k = InterpKernel::new(4.0, 2.0);
        // Normalized form: I(0) = I0(β)/I0(β) = 1.
        assert!((k.eval_exact(0.0) - 1.0).abs() < 1e-12);
        // At |x| = W the argument of I0 is 0, so I(W) = 1/I0(β) — tiny.
        assert!(k.eval_exact(4.0) < 1e-6);
        assert_eq!(k.eval_exact(4.1), 0.0);

        let es = InterpKernel::of(KernelChoice::EsKernel, 4.0, 2.0, 512);
        assert!((es.eval_exact(0.0) - 1.0).abs() < 1e-12);
        // φ(W) = e^{−β} exactly.
        assert!((es.eval_exact(4.0) - (-es.beta()).exp()).abs() < 1e-15);
        assert_eq!(es.eval_exact(4.1), 0.0);
    }

    #[test]
    fn kernel_is_even_and_monotone_on_positive_axis() {
        for k in [
            InterpKernel::new(3.0, 2.0),
            InterpKernel::of(KernelChoice::Gaussian, 3.0, 2.0, 512),
            InterpKernel::of(KernelChoice::EsKernel, 3.0, 2.0, 512),
        ] {
            let mut prev = k.eval_exact(0.0);
            for i in 1..=30 {
                let x = i as f64 * 0.1;
                let v = k.eval_exact(x);
                assert!(v < prev, "not decreasing at {x}");
                assert_eq!(k.eval_exact(-x), v);
                prev = v;
            }
        }
    }

    #[test]
    fn lut_matches_exact_within_interpolation_error() {
        for k in [
            InterpKernel::new(4.0, 2.0),
            InterpKernel::of(KernelChoice::Gaussian, 4.0, 2.0, DEFAULT_LUT_DENSITY),
        ] {
            for i in 0..=4000 {
                let x = i as f64 * 1e-3;
                let exact = k.eval_exact(x) as f32;
                let lut = k.eval_lut(x as f32);
                assert!((lut - exact).abs() < 5e-5, "LUT error at x={x}: {lut} vs {exact}");
            }
        }
    }

    /// The row evaluator is bit-identical to per-tap `eval_lut` calls over
    /// the windows `Window::compute` produces (LUT families).
    #[test]
    fn lut_row_matches_per_tap_lookups() {
        for k in
            [InterpKernel::new(4.0, 2.0), InterpKernel::of(KernelChoice::Gaussian, 3.0, 2.0, 256)]
        {
            assert!(!k.uses_horner());
            let w = k.w();
            for step in 0..200 {
                let u = step as f32 * 0.173 + 0.01;
                let x1 = (u as f64 - w).ceil() as i32;
                let x2 = (u as f64 + w).floor() as i32;
                let len = (x2 - x1 + 1) as usize;
                let mut row = [0.0f32; 32];
                k.eval_row(x1, len, u, &mut row);
                for i in 0..len {
                    let want = k.eval_lut((x1 + i as i32) as f32 - u);
                    assert_eq!(
                        row[i].to_bits(),
                        want.to_bits(),
                        "u={u} tap {i}: {} vs {want}",
                        row[i]
                    );
                }
            }
        }
    }

    /// The fitted Horner fast path reproduces the exact ES kernel to the
    /// single-precision floor at every width the tolerance planner can
    /// pick, over every tap of densely swept windows.
    #[test]
    fn horner_fit_matches_exact_evaluation() {
        for ns in [2usize, 3, 4, 5, 7, 8, 10, 13, 16] {
            let w = ns as f64 / 2.0;
            let k = InterpKernel::of(KernelChoice::EsKernel, w, 2.0, 64);
            assert!(k.uses_horner(), "ns={ns} must fit a Horner table");
            let mut worst = 0.0f64;
            for step in 0..=1000 {
                let u = 20.0 + step as f32 * 1e-3; // sweeps one full cell
                let x1 = (u as f64 - w).ceil() as i32;
                let x2 = (u as f64 + w).floor() as i32;
                let len = (x2 - x1 + 1) as usize;
                let mut row = [0.0f32; 32];
                k.eval_row(x1, len, u, &mut row);
                for i in 0..len {
                    let exact = k.eval_exact((x1 + i as i32) as f64 - u as f64);
                    worst = worst.max((row[i] as f64 - exact).abs());
                }
            }
            // The support-edge √-singularity limits the Chebyshev fit to
            // algebraic convergence on the two outermost pieces, but its
            // contribution is damped by the kernel's own edge magnitude
            // e^{−β} — i.e. the family's accuracy floor at that width. The
            // fit must sit below that floor (or the f32 floor, whichever
            // binds).
            let tol = (0.6 * (-k.beta()).exp()).max(2e-6);
            assert!(worst < tol, "ns={ns}: Horner fit error {worst:.3e} above budget {tol:.3e}");
        }
    }

    /// Half-cell widths have no fixed piece structure; the ES kernel then
    /// falls back to the LUT row path and stays consistent with it.
    #[test]
    fn es_without_integral_width_uses_lut() {
        let k = InterpKernel::es(1.25, es_beta(1.25, 2.0), 512);
        assert!(!k.uses_horner());
        let mut a = [0.0f32; 8];
        let mut b = [0.0f32; 8];
        let (u, x1, len) = (10.4f32, 10i32, 2usize);
        k.eval_row(x1, len, u, &mut a);
        k.eval_lut_row(x1, len, u, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn eval_table_bytes_reports_the_hot_structure() {
        let kb = InterpKernel::new(4.0, 2.0);
        assert_eq!(kb.eval_table_bytes(), ((4.0f64 * 512.0).ceil() as usize + 2) * 4);
        let es = InterpKernel::of(KernelChoice::EsKernel, 4.0, 2.0, 512);
        // ns = 8 → 9 pieces (stride 16), degree 14 → 15 rows.
        assert_eq!(es.eval_table_bytes(), 15 * 16 * 4);
        assert!(es.eval_table_bytes() < kb.eval_table_bytes() / 4);
    }

    #[test]
    fn lut_out_of_support_is_zero() {
        let k = InterpKernel::new(2.0, 2.0);
        assert_eq!(k.eval_lut(2.0001), 0.0);
        assert_eq!(k.eval_lut(-5.0), 0.0);
    }

    #[test]
    fn higher_density_reduces_lut_error() {
        let coarse = InterpKernel::with_density(4.0, beatty_beta(4.0, 2.0), 16);
        let fine = InterpKernel::with_density(4.0, beatty_beta(4.0, 2.0), 2048);
        let mut e_coarse = 0.0f32;
        let mut e_fine = 0.0f32;
        for i in 0..1000 {
            let x = i as f32 * 4.0e-3;
            let exact = coarse.eval_exact(x as f64) as f32;
            e_coarse = e_coarse.max((coarse.eval_lut(x) - exact).abs());
            e_fine = e_fine.max((fine.eval_lut(x) - exact).abs());
        }
        assert!(e_fine < e_coarse / 4.0, "fine {e_fine} vs coarse {e_coarse}");
    }

    #[test]
    fn fourier_transform_matches_numeric_quadrature() {
        for k in [
            InterpKernel::new(4.0, 2.0),
            InterpKernel::of(KernelChoice::Gaussian, 4.0, 2.0, 512),
            InterpKernel::of(KernelChoice::EsKernel, 4.0, 2.0, 512),
            InterpKernel::of(KernelChoice::EsKernel, 1.5, 2.0, 512),
        ] {
            for &xi in &[0.0, 0.05, 0.1, 0.2, 0.35, 0.5] {
                // Simpson quadrature of ∫ I(x)·cos(2πξx) dx over [-W, W].
                let n = 4000;
                let h = 2.0 * k.w() / n as f64;
                let f = |x: f64| k.eval_exact(x) * (core::f64::consts::TAU * xi * x).cos();
                let mut s = f(-k.w()) + f(k.w());
                for i in 1..n {
                    let x = -k.w() + i as f64 * h;
                    s += f(x) * if i % 2 == 1 { 4.0 } else { 2.0 };
                }
                let numeric = s * h / 3.0;
                let analytic = k.fourier(xi);
                // Tolerance relative to the DC gain: the Gaussian closed
                // form ignores the truncated tail (≈ e^{−W²/4τ} ≈ 1e-4 of
                // DC by construction of τ).
                assert!(
                    (numeric - analytic).abs() < 2e-4 * k.fourier(0.0),
                    "xi={xi}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn fourier_peak_at_dc_and_decay() {
        for k in
            [InterpKernel::new(4.0, 2.0), InterpKernel::of(KernelChoice::EsKernel, 4.0, 2.0, 512)]
        {
            let dc = k.fourier(0.0);
            assert!(dc > 0.0);
            let edge = k.fourier(0.25);
            assert!(edge > 0.0 && edge < dc);
            // Aliasing band (ξ = 0.75 maps into the oscillatory tail): tiny.
            assert!(k.fourier(0.75).abs() < 0.05 * dc);
        }
    }

    #[test]
    fn gaussian_tau_balances_truncation_and_aliasing() {
        let w = 4.0;
        let alpha = 2.0;
        let tau = greengard_lee_tau(w, alpha);
        // Truncation magnitude at |x| = W.
        let trunc = (-w * w / (4.0 * tau)).exp();
        assert!(trunc < 1e-3, "truncation too large: {trunc}");
        // The FT at the first alias of the band edge is comparably small
        // relative to DC.
        let k = InterpKernel::of(KernelChoice::Gaussian, w, alpha, 512);
        let alias = k.fourier(1.0 - 1.0 / (2.0 * alpha)) / k.fourier(0.0);
        assert!(alias < 1e-3, "aliasing too large: {alias}");
    }

    #[test]
    #[should_panic(expected = "no beta")]
    fn gaussian_has_no_beta() {
        let _ = InterpKernel::of(KernelChoice::Gaussian, 2.0, 2.0, 64).beta();
    }
}
