//! Interpolation kernels with lookup tables (§II-B).
//!
//! The workhorse is the **Kaiser–Bessel** window the paper (and practice)
//! uses:
//!
//! `I(x) = I₀(β·√(1 − (x/W)²)) / I₀(β)` for `|x| ≤ W`, else 0,
//!
//! with Beatty's minimal-oversampling β. The **Gaussian** kernel of
//! Greengard & Lee (the paper's reference \[14\]) is provided as the
//! classical alternative: simpler to form, but measurably less accurate at
//! equal width — which the accuracy tests demonstrate, matching the
//! literature.
//!
//! Evaluating `I₀`/`exp` per neighbor would dominate Part 1 of the
//! convolution, so kernels are tabulated once per plan and evaluated by
//! linear interpolation (the LUT of Dale et al.); at the default density
//! the LUT error is below the convolution's own single-precision round-off.
//!
//! Both kernels have closed-form continuous Fourier transforms, which the
//! roll-off correction ([`crate::scale`]) divides by:
//!
//! * KB: `Â(ξ) = (2W/I₀(β)) · sinhc(√(β² − (2πWξ)²))`;
//! * Gaussian `e^{−x²/(4τ)}`: `Â(ξ) = 2√(πτ) · e^{−4π²ξ²τ}`.

use nufft_math::bessel::bessel_i0;
use nufft_math::special::kb_ft_shape;

/// Default LUT samples per unit of kernel argument.
pub const DEFAULT_LUT_DENSITY: usize = 512;

/// Which kernel family a plan interpolates with.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum KernelChoice {
    /// Kaiser–Bessel with Beatty's β — the paper's kernel (default).
    KaiserBessel,
    /// Truncated Gaussian with the Greengard–Lee spreading parameter.
    Gaussian,
}

#[derive(Clone, Copy, Debug)]
enum Shape {
    KaiserBessel { beta: f64, inv_i0_beta: f64 },
    Gaussian { tau: f64 },
}

/// A prepared interpolation kernel: shape parameters plus the lookup table.
#[derive(Clone, Debug)]
pub struct InterpKernel {
    /// Kernel radius in oversampled grid units (the paper's `W`).
    w: f64,
    shape: Shape,
    /// Table of kernel values at `x = i / density`.
    lut: Vec<f32>,
    /// Samples per unit argument.
    density: f64,
}

/// Backwards-compatible name for the default kernel type.
pub type KbKernel = InterpKernel;

/// Beatty et al.'s β for kernel width `2W` (grid units) at oversampling `α`:
/// `β = π·√((2W/α)²·(α − 1/2)² − 0.8)`.
pub fn beatty_beta(w: f64, alpha: f64) -> f64 {
    assert!(w > 0.0, "kernel radius must be positive");
    assert!(alpha > 1.0, "oversampling factor must exceed 1");
    let kw = 2.0 * w;
    let t = (kw / alpha) * (alpha - 0.5);
    core::f64::consts::PI * (t * t - 0.8).max(0.0).sqrt()
}

/// Greengard–Lee's Gaussian spreading parameter, converted to oversampled
/// grid units: `τ = W·α / (4π·(α − 1/2))` — equalizes the truncation and
/// aliasing error exponents.
pub fn greengard_lee_tau(w: f64, alpha: f64) -> f64 {
    assert!(w > 0.0, "kernel radius must be positive");
    assert!(alpha > 1.0, "oversampling factor must exceed 1");
    w * alpha / (4.0 * core::f64::consts::PI * (alpha - 0.5))
}

impl InterpKernel {
    /// Kaiser–Bessel kernel for radius `w` at oversampling `alpha` (default
    /// LUT density).
    pub fn new(w: f64, alpha: f64) -> Self {
        Self::with_density(w, beatty_beta(w, alpha), DEFAULT_LUT_DENSITY)
    }

    /// Builds the kernel of the given family.
    pub fn of(choice: KernelChoice, w: f64, alpha: f64, density: usize) -> Self {
        match choice {
            KernelChoice::KaiserBessel => Self::with_density(w, beatty_beta(w, alpha), density),
            KernelChoice::Gaussian => Self::gaussian(w, greengard_lee_tau(w, alpha), density),
        }
    }

    /// Kaiser–Bessel with explicit β and LUT density.
    ///
    /// # Panics
    /// Panics if `w ≤ 0`, `beta ≤ 0` or `density == 0`.
    pub fn with_density(w: f64, beta: f64, density: usize) -> Self {
        assert!(beta > 0.0, "beta must be positive");
        let inv_i0_beta = 1.0 / bessel_i0(beta);
        Self::build(w, Shape::KaiserBessel { beta, inv_i0_beta }, density)
    }

    /// Truncated Gaussian `e^{−x²/(4τ)}` with explicit τ and LUT density.
    ///
    /// # Panics
    /// Panics if `w ≤ 0`, `tau ≤ 0` or `density == 0`.
    pub fn gaussian(w: f64, tau: f64, density: usize) -> Self {
        assert!(tau > 0.0, "tau must be positive");
        Self::build(w, Shape::Gaussian { tau }, density)
    }

    fn build(w: f64, shape: Shape, density: usize) -> Self {
        assert!(w > 0.0, "kernel radius must be positive");
        assert!(density > 0, "LUT density must be positive");
        let n = (w * density as f64).ceil() as usize + 2;
        let lut = (0..n)
            .map(|i| {
                let x = i as f64 / density as f64;
                eval_shape(&shape, x, w) as f32
            })
            .collect();
        InterpKernel { w, shape, lut, density: density as f64 }
    }

    /// Kernel radius `W`.
    pub fn w(&self) -> f64 {
        self.w
    }

    /// Shape parameter β of a Kaiser–Bessel kernel.
    ///
    /// # Panics
    /// Panics for non-KB kernels.
    pub fn beta(&self) -> f64 {
        match self.shape {
            Shape::KaiserBessel { beta, .. } => beta,
            Shape::Gaussian { .. } => panic!("Gaussian kernel has no beta"),
        }
    }

    /// Exact kernel value (double precision, no table).
    pub fn eval_exact(&self, x: f64) -> f64 {
        eval_shape(&self.shape, x.abs(), self.w)
    }

    /// Table lookup with linear interpolation; out-of-support arguments
    /// return 0.
    #[inline]
    pub fn eval_lut(&self, x: f32) -> f32 {
        let ax = x.abs();
        if ax as f64 > self.w {
            return 0.0;
        }
        let pos = ax * self.density as f32;
        let i = pos as usize;
        let frac = pos - i as f32;
        // The table has 2 slack entries, so i+1 is always in range for
        // in-support arguments.
        let a = self.lut[i];
        let b = self.lut[i + 1];
        a + (b - a) * frac
    }

    /// Part 1 row evaluation: fills `out[i] = eval_lut((x1 + i) − u)` for
    /// every tap `i < len` in one pass, hoisting the LUT scale conversion
    /// and the per-tap support branch out of the loop. Every tap must be in
    /// support (`|x1 + i − u| ≤ W`), which `Window::compute`'s exact-`f64`
    /// bounds guarantee; results are identical to per-tap [`eval_lut`]
    /// calls.
    ///
    /// [`eval_lut`]: InterpKernel::eval_lut
    ///
    /// # Panics
    /// Panics if `out.len() < len`.
    #[inline]
    pub fn eval_lut_row(&self, x1: i32, len: usize, u: f32, out: &mut [f32]) {
        let dens = self.density as f32;
        let lut = &self.lut[..];
        for (i, o) in out[..len].iter_mut().enumerate() {
            let ax = ((x1 + i as i32) as f32 - u).abs();
            debug_assert!(ax as f64 <= self.w, "tap outside kernel support");
            let pos = ax * dens;
            let idx = pos as usize;
            let frac = pos - idx as f32;
            // The table has 2 slack entries past W·density, so idx+1 is in
            // range for every in-support tap.
            let a = lut[idx];
            let b = lut[idx + 1];
            *o = a + (b - a) * frac;
        }
    }

    /// The kernel's continuous Fourier transform `Â(ξ)`, with `ξ` in cycles
    /// per grid unit — what the roll-off correction divides by.
    pub fn fourier(&self, xi: f64) -> f64 {
        match self.shape {
            Shape::KaiserBessel { beta, inv_i0_beta } => {
                let t = core::f64::consts::TAU * self.w * xi;
                2.0 * self.w * inv_i0_beta * kb_ft_shape(beta, t)
            }
            Shape::Gaussian { tau } => {
                // FT of the untruncated Gaussian; the truncation tail is
                // below the kernel's own accuracy by construction of τ.
                2.0 * (core::f64::consts::PI * tau).sqrt()
                    * (-4.0 * core::f64::consts::PI.powi(2) * xi * xi * tau).exp()
            }
        }
    }
}

fn eval_shape(shape: &Shape, x: f64, w: f64) -> f64 {
    if x > w {
        return 0.0;
    }
    match *shape {
        Shape::KaiserBessel { beta, inv_i0_beta } => {
            let r = x / w;
            bessel_i0(beta * (1.0 - r * r).max(0.0).sqrt()) * inv_i0_beta
        }
        Shape::Gaussian { tau } => (-x * x / (4.0 * tau)).exp(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beatty_beta_reference_values() {
        // α = 2, W = 4 (kernel width 8): β = π·√(4²·1.5² − 0.8).
        let b = beatty_beta(4.0, 2.0);
        let want = core::f64::consts::PI * (16.0f64 * 2.25 - 0.8).sqrt();
        assert!((b - want).abs() < 1e-12);
        // β grows with W and with α.
        assert!(beatty_beta(6.0, 2.0) > beatty_beta(4.0, 2.0));
        assert!(beatty_beta(4.0, 2.0) > beatty_beta(4.0, 1.25));
    }

    #[test]
    fn kernel_peaks_at_zero_and_vanishes_at_w() {
        let k = InterpKernel::new(4.0, 2.0);
        // Normalized form: I(0) = I0(β)/I0(β) = 1.
        assert!((k.eval_exact(0.0) - 1.0).abs() < 1e-12);
        // At |x| = W the argument of I0 is 0, so I(W) = 1/I0(β) — tiny.
        assert!(k.eval_exact(4.0) < 1e-6);
        assert_eq!(k.eval_exact(4.1), 0.0);
    }

    #[test]
    fn kernel_is_even_and_monotone_on_positive_axis() {
        for k in
            [InterpKernel::new(3.0, 2.0), InterpKernel::of(KernelChoice::Gaussian, 3.0, 2.0, 512)]
        {
            let mut prev = k.eval_exact(0.0);
            for i in 1..=30 {
                let x = i as f64 * 0.1;
                let v = k.eval_exact(x);
                assert!(v < prev, "not decreasing at {x}");
                assert_eq!(k.eval_exact(-x), v);
                prev = v;
            }
        }
    }

    #[test]
    fn lut_matches_exact_within_interpolation_error() {
        for k in [
            InterpKernel::new(4.0, 2.0),
            InterpKernel::of(KernelChoice::Gaussian, 4.0, 2.0, DEFAULT_LUT_DENSITY),
        ] {
            for i in 0..=4000 {
                let x = i as f64 * 1e-3;
                let exact = k.eval_exact(x) as f32;
                let lut = k.eval_lut(x as f32);
                assert!((lut - exact).abs() < 5e-5, "LUT error at x={x}: {lut} vs {exact}");
            }
        }
    }

    /// The row evaluator is bit-identical to per-tap `eval_lut` calls over
    /// the windows `Window::compute` produces.
    #[test]
    fn lut_row_matches_per_tap_lookups() {
        for k in
            [InterpKernel::new(4.0, 2.0), InterpKernel::of(KernelChoice::Gaussian, 3.0, 2.0, 256)]
        {
            let w = k.w();
            for step in 0..200 {
                let u = step as f32 * 0.173 + 0.01;
                let x1 = (u as f64 - w).ceil() as i32;
                let x2 = (u as f64 + w).floor() as i32;
                let len = (x2 - x1 + 1) as usize;
                let mut row = [0.0f32; 32];
                k.eval_lut_row(x1, len, u, &mut row);
                for i in 0..len {
                    let want = k.eval_lut((x1 + i as i32) as f32 - u);
                    assert_eq!(
                        row[i].to_bits(),
                        want.to_bits(),
                        "u={u} tap {i}: {} vs {want}",
                        row[i]
                    );
                }
            }
        }
    }

    #[test]
    fn lut_out_of_support_is_zero() {
        let k = InterpKernel::new(2.0, 2.0);
        assert_eq!(k.eval_lut(2.0001), 0.0);
        assert_eq!(k.eval_lut(-5.0), 0.0);
    }

    #[test]
    fn higher_density_reduces_lut_error() {
        let coarse = InterpKernel::with_density(4.0, beatty_beta(4.0, 2.0), 16);
        let fine = InterpKernel::with_density(4.0, beatty_beta(4.0, 2.0), 2048);
        let mut e_coarse = 0.0f32;
        let mut e_fine = 0.0f32;
        for i in 0..1000 {
            let x = i as f32 * 4.0e-3;
            let exact = coarse.eval_exact(x as f64) as f32;
            e_coarse = e_coarse.max((coarse.eval_lut(x) - exact).abs());
            e_fine = e_fine.max((fine.eval_lut(x) - exact).abs());
        }
        assert!(e_fine < e_coarse / 4.0, "fine {e_fine} vs coarse {e_coarse}");
    }

    #[test]
    fn fourier_transform_matches_numeric_quadrature() {
        for k in
            [InterpKernel::new(4.0, 2.0), InterpKernel::of(KernelChoice::Gaussian, 4.0, 2.0, 512)]
        {
            for &xi in &[0.0, 0.05, 0.1, 0.2, 0.35, 0.5] {
                // Simpson quadrature of ∫ I(x)·cos(2πξx) dx over [-W, W].
                let n = 4000;
                let h = 2.0 * k.w() / n as f64;
                let f = |x: f64| k.eval_exact(x) * (core::f64::consts::TAU * xi * x).cos();
                let mut s = f(-k.w()) + f(k.w());
                for i in 1..n {
                    let x = -k.w() + i as f64 * h;
                    s += f(x) * if i % 2 == 1 { 4.0 } else { 2.0 };
                }
                let numeric = s * h / 3.0;
                let analytic = k.fourier(xi);
                // Tolerance relative to the DC gain: the Gaussian closed
                // form ignores the truncated tail (≈ e^{−W²/4τ} ≈ 1e-4 of
                // DC by construction of τ).
                assert!(
                    (numeric - analytic).abs() < 2e-4 * k.fourier(0.0),
                    "xi={xi}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn fourier_peak_at_dc_and_decay() {
        let k = InterpKernel::new(4.0, 2.0);
        let dc = k.fourier(0.0);
        assert!(dc > 0.0);
        let edge = k.fourier(0.25);
        assert!(edge > 0.0 && edge < dc);
        // Aliasing band (ξ = 0.75 maps into the oscillatory tail): tiny.
        assert!(k.fourier(0.75).abs() < 0.05 * dc);
    }

    #[test]
    fn gaussian_tau_balances_truncation_and_aliasing() {
        let w = 4.0;
        let alpha = 2.0;
        let tau = greengard_lee_tau(w, alpha);
        // Truncation magnitude at |x| = W.
        let trunc = (-w * w / (4.0 * tau)).exp();
        assert!(trunc < 1e-3, "truncation too large: {trunc}");
        // The FT at the first alias of the band edge is comparably small
        // relative to DC.
        let k = InterpKernel::of(KernelChoice::Gaussian, w, alpha, 512);
        let alias = k.fourier(1.0 - 1.0 / (2.0 * alpha)) / k.fourier(0.0);
        assert!(alias < 1e-3, "aliasing too large: {alias}");
    }

    #[test]
    #[should_panic(expected = "no beta")]
    fn gaussian_has_no_beta() {
        let _ = InterpKernel::of(KernelChoice::Gaussian, 2.0, 2.0, 64).beta();
    }
}
