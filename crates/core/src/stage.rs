//! Public, independently-plannable **stage operators** — the building
//! blocks every NUFFT transform is composed from.
//!
//! [`NufftPlan`](crate::plan::NufftPlan) used to hard-code four apply
//! pipelines over private drivers. This module extracts those drivers into
//! four first-class operators with explicit buffer contracts:
//!
//! * [`SpreadOp`] — the adjoint *scatter* convolution: non-uniform samples
//!   accumulated onto an oversampled grid under the paper's task graph
//!   (Gray-code exclusion edges, selective privatization, canonical
//!   tile-major visit order — so output is deterministic at every thread
//!   count);
//! * [`InterpOp`] — the forward *gather* convolution: off-grid values
//!   interpolated from a transformed grid, one dynamic chunked loop;
//! * [`FftOp`] — the oversampled n-dimensional FFT over the plan's
//!   tile/grain decomposition, including the four-step (sub-FFT +
//!   cache-blocked transpose) strategy and its `fs` intermediate buffer;
//! * [`DeconvOp`] — the roll-off correction: scaled embed of an image into
//!   the oversampled grid, and the adjoint scaled extract.
//!
//! The plan's phased apply paths are literal compositions of these stage
//! methods, and the fused DAG builders consume the same stage state
//! (`crate::fused` builds per-stage DAG *fragments* from it), so the
//! refactor is bitwise-neutral: every executed expression is unchanged,
//! only its home moved. Type-3 transforms ([`crate::type3::Type3Plan`])
//! and the standalone `spread_only`/`interp_only` entry points are built
//! from the same four operators.
//!
//! ## Buffer contracts
//!
//! * `SpreadOp::apply(samples, grid)` — `grid.len() == grid_len()`; the
//!   grid is zeroed then accumulated into (deterministic order).
//! * `InterpOp::apply(grid, out)` — pure reads of `grid`, one write per
//!   sample at its original (caller-order) position.
//! * `FftOp::apply(data, dir)` — in-place, unnormalized in both
//!   directions (the exact adjoint pair).
//! * `DeconvOp::embed(image, grid)` / `extract(grid, image)` — image is
//!   the centered `n`-extent block of the `m`-extent grid, multiplied by
//!   the kernel's inverse Fourier roll-off.
//!
//! Steady-state applies of every operator are allocation-free: all scratch
//! (task-graph run state, per-worker FFT tiles, the four-step `fs` buffer,
//! privatized halo buffers) is operator-owned and reused.

use crate::conv::{
    adjoint_scatter, adjoint_scatter_local, forward_gather, forward_gather2, reduce_local, Window,
    MAX_TAPS,
};
use crate::fused::TilePlan;
use crate::grid::{embed_scaled, extract_scaled, Geometry};
use crate::kernel::InterpKernel;
use crate::plan::NufftConfig;
use crate::scale::build_scale;
use crate::tasks::{preprocess, Preprocess, PreprocessConfig};
use crate::windows::{WindowMode, WindowSource, WindowTable};
use nufft_fft::{Direction, FftNd, FftStrategy};
use nufft_math::Complex32;
use nufft_parallel::exec::{Executor, GraphScratch, JobPriority, TaskPhase};
use nufft_parallel::graph::QueuePolicy;
use nufft_parallel::scratch::WorkerLocal;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Complex elements per 64-byte cache line: chunk boundaries of contiguous
/// output loops are rounded to this so two workers never split a line.
pub(crate) const LANE_ALIGN: usize = 64 / core::mem::size_of::<Complex32>();

/// Raw-pointer wrapper for disjoint-region writes from worker threads.
///
/// Soundness is established by the callers: grid writers are serialized by
/// the task graph (adjacent tasks never run concurrently — see the
/// exclusion tests in `nufft-parallel`), forward gathers write distinct
/// output slots, and FFT lines are pairwise disjoint.
#[derive(Clone, Copy)]
pub(crate) struct SendPtr<T>(pub(crate) *mut T);
// SAFETY: see type docs — all users write pairwise-disjoint regions.
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: as above.
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor (rather than field access) so closures capture the whole
    /// `SendPtr` — edition-2021 precise capture would otherwise grab the
    /// raw-pointer field itself, which is not `Sync`.
    pub(crate) fn get(self) -> *mut T {
        self.0
    }
}

/// Per-kind FFT timing split of one phased [`FftOp::apply_split`] call,
/// summed over axes (seconds; all zero on a recursive-only plan).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct FftSplit {
    /// Wall time of the sub-FFT dispatches.
    pub(crate) sub: f64,
    /// Wall time of the transpose-and-combine dispatches.
    pub(crate) transpose: f64,
    /// Worker CPU-seconds inside the combine gather/twiddle sweeps.
    pub(crate) twiddle: f64,
}

/// Sizes the §III-B1 partition grid from the thread count: ~8 tasks per
/// thread overall.
pub(crate) fn default_partitions(threads: usize, ndim: usize) -> usize {
    let target = (8 * threads) as f64;
    (target.powf(1.0 / ndim as f64).ceil() as usize).max(2)
}

/// Validates the kernel-radius invariants shared by every conv stage.
pub(crate) fn check_kernel_fit<const D: usize>(m: &[usize; D], w: f64) {
    assert!((1..=3).contains(&D), "only 1D/2D/3D supported");
    assert!(w > 0.0, "kernel radius must be positive");
    let taps = 2 * w.ceil() as usize + 1;
    assert!(
        taps <= MAX_TAPS,
        "kernel radius W={w} needs {taps} taps per window, exceeding MAX_TAPS={MAX_TAPS}"
    );
    for d in 0..D {
        assert!(m[d] >= taps, "grid extent {} too small for kernel radius W={w}", m[d]);
    }
}

// ---------------------------------------------------------------------------
// SpreadOp
// ---------------------------------------------------------------------------

/// The adjoint scatter-convolution stage: accumulates weighted kernel
/// windows of every non-uniform sample onto an oversampled grid, under the
/// paper's task-graph scheduler with selective privatization.
///
/// Owns everything the scatter reuses across applies: the preprocessing
/// (partitions, task graph, canonical sample order), the kernel + LUT, the
/// optional precomputed window table, the privatized halo buffers and the
/// task-graph run scratch — so steady-state applies allocate nothing.
pub struct SpreadOp<const D: usize> {
    /// Oversampled grid extents.
    pub(crate) m: [usize; D],
    pub(crate) grid_len: usize,
    /// Shared preprocessing (also read by [`InterpOp`] and the fused
    /// builders).
    pub(crate) pre: Arc<Preprocess<D>>,
    pub(crate) kernel: Arc<InterpKernel>,
    /// Kernel radius in grid units.
    pub(crate) wrad: f32,
    /// Ready-queue discipline of the task-graph traversal.
    pub(crate) policy: QueuePolicy,
    /// Precomputed Part 1 windows (shared with the matching [`InterpOp`]).
    pub(crate) windows: Option<Arc<WindowTable<D>>>,
    /// Privatized tasks' halo buffers, indexed by `buf_of_task`. Each
    /// buffer holds `priv_channels` back-to-back copies of its region so
    /// the batched adjoint privatizes per channel.
    pub(crate) priv_bufs: Vec<Vec<Complex32>>,
    /// Per-channel region length of each privatized buffer.
    pub(crate) priv_lens: Vec<usize>,
    /// Channel capacity the privatized buffers are currently sized for.
    pub(crate) priv_channels: usize,
    /// Staged `(base, per_channel_len)` pointers into `priv_bufs`,
    /// refreshed (without allocating) at the top of every apply.
    pub(crate) priv_ptrs: Vec<(SendPtr<Complex32>, usize)>,
    pub(crate) buf_of_task: Vec<u32>,
    /// Reusable task-graph run state (shards, pending counters, stat logs).
    pub(crate) scratch: GraphScratch,
}

impl<const D: usize> SpreadOp<D> {
    /// Plans a standalone spread operator for grid extents `m` and sample
    /// coordinates already in grid units `[0, m)` per dimension. Honors the
    /// config's partitioning, privatization, sort and window-mode knobs
    /// (`cfg.alpha` only affects the kernel shape parameter).
    ///
    /// # Panics
    /// Panics if `D ∉ {1,2,3}`, the kernel does not fit the grid
    /// (`m < 2⌈W⌉+1`), the kernel is wider than [`MAX_TAPS`], or a
    /// coordinate is out of range.
    /// [`SpreadOp::plan`] with the kernel family and its parameters derived
    /// from a relative-accuracy tolerance (the ES kernel by default — see
    /// [`NufftConfig::with_tolerance`]); `cfg`'s non-kernel knobs are kept.
    ///
    /// # Panics
    /// See [`SpreadOp::plan`]; additionally panics unless `0 < eps < 1`.
    pub fn plan_with_tolerance(
        m: [usize; D],
        coords: Vec<[f32; D]>,
        cfg: &NufftConfig,
        eps: f64,
        exec: &Executor,
    ) -> Self {
        Self::plan(m, coords, &(*cfg).with_tolerance(eps), exec)
    }

    pub fn plan(m: [usize; D], coords: Vec<[f32; D]>, cfg: &NufftConfig, exec: &Executor) -> Self {
        check_kernel_fit(&m, cfg.w);
        let kernel = Arc::new(InterpKernel::of(cfg.kernel, cfg.w, cfg.alpha, cfg.lut_density));
        let threads = exec.threads().max(1);
        let partitions = cfg.partitions_per_dim.unwrap_or_else(|| default_partitions(threads, D));
        let pcfg = PreprocessConfig {
            partitions_per_dim: partitions,
            w: cfg.w,
            fixed_partitions: cfg.fixed_partitions,
            privatization: cfg.privatization,
            threads: exec.threads(),
            sort: cfg.sort,
            tile: (4.0 * cfg.w).ceil() as usize,
        };
        let pre = Arc::new(preprocess(&coords, m, &pcfg));
        let windows = match cfg
            .window_mode
            .resolve(WindowTable::<D>::estimate_bytes(pre.coords.len(), cfg.w))
        {
            WindowMode::Precomputed => Some(Arc::new(WindowTable::build(
                &pre.coords,
                cfg.w as f32,
                &kernel,
                exec,
                cfg.grain,
            ))),
            _ => None,
        };
        Self::from_parts(m, pre, kernel, cfg.w as f32, cfg.policy, windows)
    }

    /// Assembles a spread operator from already-built parts (the plan
    /// constructor times preprocessing itself and shares the kernel and
    /// window table with the sibling [`InterpOp`]).
    pub(crate) fn from_parts(
        m: [usize; D],
        pre: Arc<Preprocess<D>>,
        kernel: Arc<InterpKernel>,
        wrad: f32,
        policy: QueuePolicy,
        windows: Option<Arc<WindowTable<D>>>,
    ) -> Self {
        let grid_len: usize = m.iter().product();
        let mut priv_bufs = Vec::new();
        let mut priv_lens = Vec::new();
        let mut buf_of_task = vec![u32::MAX; pre.graph.len()];
        for (t, region) in pre.regions.iter().enumerate() {
            if let Some(r) = region {
                buf_of_task[t] = priv_bufs.len() as u32;
                priv_bufs.push(vec![Complex32::ZERO; r.len()]);
                priv_lens.push(r.len());
            }
        }
        SpreadOp {
            m,
            grid_len,
            pre,
            kernel,
            wrad,
            policy,
            windows,
            priv_bufs,
            priv_lens,
            priv_channels: 1,
            priv_ptrs: Vec::new(),
            buf_of_task,
            scratch: GraphScratch::new(),
        }
    }

    /// Number of non-uniform samples this operator was planned for.
    pub fn num_samples(&self) -> usize {
        self.pre.coords.len()
    }

    /// Oversampled grid extents.
    pub fn grid_extents(&self) -> [usize; D] {
        self.m
    }

    /// Grid element count (`Π m_d`) — the required output buffer length.
    pub fn grid_len(&self) -> usize {
        self.grid_len
    }

    /// Scatters all samples onto `grid` (zeroed first): `grid` gains
    /// `Σ_i samples[i] · window_i`. Output is bitwise-deterministic across
    /// thread counts and sort modes (canonical tile-major accumulation
    /// order).
    ///
    /// # Panics
    /// Panics if buffer lengths don't match the operator.
    pub fn apply(
        &mut self,
        exec: &Executor,
        priority: JobPriority,
        samples: &[Complex32],
        grid: &mut [Complex32],
    ) {
        assert_eq!(samples.len(), self.num_samples(), "sample buffer length mismatch");
        assert_eq!(grid.len(), self.grid_len, "grid buffer length mismatch");
        grid.fill(Complex32::ZERO);
        let grid_ptrs = [SendPtr(grid.as_mut_ptr())];
        self.accumulate_ptrs(exec, priority, &grid_ptrs, &[samples]);
    }

    /// The multi-channel scatter core: accumulates every channel's samples
    /// into its (caller-zeroed) grid under a single task-graph traversal,
    /// with the selective-privatization protocol applied per channel.
    /// Stages the privatized-buffer pointers itself — allocation-free once
    /// warm.
    pub(crate) fn accumulate_ptrs(
        &mut self,
        exec: &Executor,
        priority: JobPriority,
        grid_ptrs: &[SendPtr<Complex32>],
        samples: &[&[Complex32]],
    ) {
        self.refresh_priv_ptrs();
        let Self {
            m,
            grid_len,
            pre,
            kernel,
            wrad,
            policy,
            windows,
            priv_ptrs,
            buf_of_task,
            scratch,
            ..
        } = self;
        let source = match windows {
            Some(table) => WindowSource::Table(table),
            None => WindowSource::Fly { coords: &pre.coords, wrad: *wrad, kernel },
        };
        scatter_driver(
            exec,
            *policy,
            priority,
            scratch,
            pre,
            &source,
            m,
            grid_ptrs,
            *grid_len,
            priv_ptrs,
            buf_of_task,
            samples,
        );
    }

    /// The operator's current window source (table if held, else on the
    /// fly).
    pub(crate) fn window_source(&self) -> WindowSource<'_, D> {
        match &self.windows {
            Some(table) => WindowSource::Table(table),
            None => WindowSource::Fly {
                coords: &self.pre.coords,
                wrad: self.wrad,
                kernel: &self.kernel,
            },
        }
    }

    /// Grows the privatized halo buffers to hold `channels` back-to-back
    /// region copies each (no-op when already large enough).
    pub(crate) fn ensure_priv_channels(&mut self, channels: usize) {
        if channels > self.priv_channels {
            for (buf, &len) in self.priv_bufs.iter_mut().zip(&self.priv_lens) {
                buf.resize(channels * len, Complex32::ZERO);
            }
            self.priv_channels = channels;
        }
    }

    /// Restages the `(base, per_channel_len)` pointer cache into the
    /// privatized buffers. Reuses the vector's capacity — allocation-free
    /// after the first apply.
    pub(crate) fn refresh_priv_ptrs(&mut self) {
        self.priv_ptrs.clear();
        let lens = &self.priv_lens;
        self.priv_ptrs.extend(
            self.priv_bufs.iter_mut().zip(lens).map(|(b, &l)| (SendPtr(b.as_mut_ptr()), l)),
        );
    }
}

// ---------------------------------------------------------------------------
// InterpOp
// ---------------------------------------------------------------------------

/// The forward gather-convolution stage: interpolates off-grid sample
/// values from an (already transformed) oversampled grid. Shares the
/// preprocessing, kernel and window table with its sibling [`SpreadOp`] by
/// `Arc` — planning one trajectory once serves both directions.
pub struct InterpOp<const D: usize> {
    pub(crate) m: [usize; D],
    pub(crate) grid_len: usize,
    pub(crate) pre: Arc<Preprocess<D>>,
    pub(crate) kernel: Arc<InterpKernel>,
    pub(crate) wrad: f32,
    /// Samples per chunk of the dynamic gather loop.
    pub(crate) grain: usize,
    pub(crate) windows: Option<Arc<WindowTable<D>>>,
}

impl<const D: usize> InterpOp<D> {
    /// An interpolation operator over the same trajectory, kernel and
    /// window table as `spread` (cheap: shares the `Arc`s).
    pub fn from_spread(spread: &SpreadOp<D>, grain: usize) -> Self {
        InterpOp {
            m: spread.m,
            grid_len: spread.grid_len,
            pre: Arc::clone(&spread.pre),
            kernel: Arc::clone(&spread.kernel),
            wrad: spread.wrad,
            grain,
            windows: spread.windows.clone(),
        }
    }

    /// Plans a standalone interpolation operator (see [`SpreadOp::plan`]
    /// for the coordinate convention and panics).
    pub fn plan(m: [usize; D], coords: Vec<[f32; D]>, cfg: &NufftConfig, exec: &Executor) -> Self {
        Self::from_spread(&SpreadOp::plan(m, coords, cfg, exec), cfg.grain)
    }

    /// [`InterpOp::plan`] with kernel parameters derived from a
    /// relative-accuracy tolerance (see [`NufftConfig::with_tolerance`]).
    ///
    /// # Panics
    /// See [`SpreadOp::plan`]; additionally panics unless `0 < eps < 1`.
    pub fn plan_with_tolerance(
        m: [usize; D],
        coords: Vec<[f32; D]>,
        cfg: &NufftConfig,
        eps: f64,
        exec: &Executor,
    ) -> Self {
        Self::plan(m, coords, &(*cfg).with_tolerance(eps), exec)
    }

    /// Number of non-uniform samples this operator was planned for.
    pub fn num_samples(&self) -> usize {
        self.pre.coords.len()
    }

    /// Grid element count (`Π m_d`) — the required input buffer length.
    pub fn grid_len(&self) -> usize {
        self.grid_len
    }

    /// Gathers every sample's value from `grid`: `out[p]` receives the
    /// interpolation at trajectory point `p` (original caller order).
    /// Pure reads of `grid`; bitwise-deterministic at any thread count.
    ///
    /// # Panics
    /// Panics if buffer lengths don't match the operator.
    pub fn apply(&self, exec: &Executor, grid: &[Complex32], out: &mut [Complex32]) {
        assert_eq!(grid.len(), self.grid_len, "grid buffer length mismatch");
        assert_eq!(out.len(), self.num_samples(), "sample buffer length mismatch");
        let out_ptrs = [SendPtr(out.as_mut_ptr())];
        self.gather_ptrs(exec, core::slice::from_ref(&grid), &out_ptrs);
    }

    /// The multi-channel gather core: one Part 1 window fetch per sample,
    /// then a Part 2 gather per channel. Generic over the grid container so
    /// plan-owned `Vec` batches and borrowed slices both drive it without
    /// staging copies.
    pub(crate) fn gather_ptrs<G: AsRef<[Complex32]> + Sync>(
        &self,
        exec: &Executor,
        grids: &[G],
        out_ptrs: &[SendPtr<Complex32>],
    ) {
        let source = self.window_source();
        gather_driver(exec, self.grain, &self.pre, &source, &self.m, grids, out_ptrs);
    }

    pub(crate) fn window_source(&self) -> WindowSource<'_, D> {
        match &self.windows {
            Some(table) => WindowSource::Table(table),
            None => WindowSource::Fly {
                coords: &self.pre.coords,
                wrad: self.wrad,
                kernel: &self.kernel,
            },
        }
    }
}

// ---------------------------------------------------------------------------
// FftOp
// ---------------------------------------------------------------------------

/// The oversampled-FFT stage: an n-dimensional in-place FFT parallelized
/// as SIMD-width tiles of adjacent lines per axis, with the four-step
/// (sub-FFT + cache-blocked transpose) strategy on out-of-cache axes.
/// Owns the tile/grain decomposition, per-worker tile scratch and the
/// four-step `fs` intermediate buffer — applies are allocation-free.
pub struct FftOp {
    pub(crate) fft: FftNd,
    /// Plan-owned FFT tile/grain decomposition (hoisted out of per-call
    /// computation).
    pub(crate) tile_plan: TilePlan,
    /// Per-worker FFT tile scratch, sized once at plan build.
    pub(crate) scratch: WorkerLocal<Vec<Complex32>>,
    /// Four-step intermediate spectrum buffer (`fs`): one grid-sized region
    /// per four-step axis per concurrent channel, empty when every axis
    /// runs the recursive path.
    pub(crate) fs: Vec<Complex32>,
    pub(crate) grid_len: usize,
}

impl FftOp {
    /// Plans an FFT stage for `shape` under `strategy` (see
    /// [`FftStrategy`]), sized for `threads` workers.
    pub fn plan(shape: &[usize], strategy: FftStrategy, llc_budget: usize, threads: usize) -> Self {
        let fft = FftNd::with_strategy(shape, strategy, llc_budget);
        let tile_plan = TilePlan::new(&fft, threads);
        let tile_b = tile_plan.b;
        let scratch =
            WorkerLocal::new(threads, |_| vec![Complex32::ZERO; fft.batch_scratch_len(tile_b)]);
        // One grid-sized region **per four-step axis** (see
        // `FftNd::fs_slots`): the fused DAG lets a later axis's sub-FFT
        // shards start while an earlier axis's combine shards still read
        // their sub-spectra, so axes may not share a region.
        let grid_len = fft.len();
        let fs = vec![Complex32::ZERO; grid_len * fft.fs_slots()];
        FftOp { fft, tile_plan, scratch, fs, grid_len }
    }

    /// The transform extents.
    pub fn shape(&self) -> &[usize] {
        self.fft.shape()
    }

    /// Element count (`Π shape_d`) — the required buffer length.
    pub fn len(&self) -> usize {
        self.grid_len
    }

    /// Whether the transform is empty (never, for a planned op).
    pub fn is_empty(&self) -> bool {
        self.grid_len == 0
    }

    /// In-place n-dimensional FFT of `data`, unnormalized in both
    /// directions (so `Forward` then `Backward` scales by `len()`).
    ///
    /// # Panics
    /// Panics if `data.len() != self.len()`.
    pub fn apply(&mut self, exec: &Executor, data: &mut [Complex32], dir: Direction) {
        assert_eq!(data.len(), self.grid_len, "fft buffer length mismatch");
        self.apply_split(exec, data, dir);
    }

    /// Parallel n-dimensional FFT: SIMD-width tiles of adjacent lines per
    /// axis, sharded over the executor. The tile/grain decomposition comes
    /// from the plan-owned [`TilePlan`] and tile scratch from the op's
    /// per-worker arena — no computation or allocation at apply time.
    ///
    /// A four-step axis runs as two dispatches over finer shards — tile ×
    /// column-group sub-FFTs into `fs`, then tile × k-block combines back —
    /// with the join between them standing in for the fused graph's
    /// sub → combine edges. Returns the per-kind timing split (zeros on a
    /// recursive-only plan).
    pub(crate) fn apply_split(
        &mut self,
        exec: &Executor,
        data: &mut [Complex32],
        dir: Direction,
    ) -> FftSplit {
        let Self { fft, tile_plan: tp, scratch, fs, .. } = self;
        let base = SendPtr(data.as_mut_ptr());
        let b = tp.b;
        let mut split = FftSplit::default();
        for axis in 0..fft.shape().len() {
            let ap = tp.axes[axis];
            if let Some((colg, kbg)) = ap.shards {
                debug_assert!(fs.len() >= fft.len(), "fs scratch not sized for four-step");
                let fsp = SendPtr(fs.as_mut_ptr());
                let t0 = Instant::now();
                exec.parallel_for_aligned(ap.tiles * colg, ap.grain, tp.align, |range, w| {
                    // SAFETY: the executor guarantees worker `w` is the only
                    // thread using slot `w` during this dispatch.
                    let scratch = unsafe { scratch.get(w) };
                    for i in range {
                        // SAFETY: distinct (tile, column-group) shards read
                        // and write disjoint regions.
                        unsafe {
                            fft.fs_sub_pass_raw(
                                base.get(),
                                fsp.get(),
                                axis,
                                i / colg,
                                i % colg,
                                b,
                                scratch,
                                dir,
                            )
                        };
                    }
                });
                split.sub += t0.elapsed().as_secs_f64();
                let twiddle_ns = AtomicU64::new(0);
                let t0 = Instant::now();
                exec.parallel_for_aligned(ap.tiles * kbg, ap.grain, tp.align, |range, w| {
                    // SAFETY: as above.
                    let scratch = unsafe { scratch.get(w) };
                    let mut tw = 0.0;
                    for i in range {
                        // SAFETY: distinct (tile, k-block) shards touch
                        // disjoint regions; every sub pass completed at the
                        // join of the previous dispatch.
                        tw += unsafe {
                            fft.fs_combine_pass_raw(
                                fsp.get(),
                                base.get(),
                                axis,
                                i / kbg,
                                i % kbg,
                                b,
                                scratch,
                                dir,
                            )
                        };
                    }
                    twiddle_ns.fetch_add((tw * 1e9) as u64, Ordering::Relaxed);
                });
                split.transpose += t0.elapsed().as_secs_f64();
                split.twiddle += twiddle_ns.load(Ordering::Relaxed) as f64 * 1e-9;
                continue;
            }
            // Tile-chunk boundaries rounded to a full cache line of complex
            // elements keep two workers off the same line of line-starts.
            exec.parallel_for_aligned(ap.tiles, ap.grain, tp.align, |range, w| {
                // SAFETY: the executor guarantees worker `w` is the only
                // thread using slot `w` during this dispatch.
                let scratch = unsafe { scratch.get(w) };
                for tile in range {
                    // SAFETY: tiles of one axis are pairwise disjoint; the
                    // axes are processed with a barrier between them
                    // (parallel_for joins before returning).
                    unsafe { fft.transform_tile_raw(base.get(), axis, tile, b, scratch, dir) };
                }
            });
        }
        split
    }

    /// Grows the four-step `fs` intermediate buffer to `channels`
    /// concurrent copies of its per-axis slot set (no-op on recursive-only
    /// plans — the buffer stays empty — or when already large enough).
    pub(crate) fn ensure_channels(&mut self, channels: usize) {
        if self.fs.is_empty() {
            return;
        }
        let need = self.grid_len * self.fft.fs_slots() * channels;
        if self.fs.len() < need {
            self.fs.resize(need, Complex32::ZERO);
        }
    }
}

// ---------------------------------------------------------------------------
// DeconvOp
// ---------------------------------------------------------------------------

/// The roll-off correction stage: the centered embed of an `n`-extent
/// image into the `m`-extent oversampled grid scaled by the kernel's
/// inverse Fourier transform, and its exact adjoint (the scaled extract).
pub struct DeconvOp<const D: usize> {
    pub(crate) geo: Geometry<D>,
    pub(crate) scale: Vec<f32>,
}

impl<const D: usize> DeconvOp<D> {
    /// Plans a deconvolution stage from image extents and the stage
    /// geometry's kernel.
    pub fn plan(n: [usize; D], alpha: f64, kernel: &InterpKernel) -> Self {
        let geo = Geometry::new(n, alpha);
        let scale = build_scale(&geo, kernel);
        DeconvOp { geo, scale }
    }

    /// Problem geometry (image extents `n`, grid extents `m`).
    pub fn geometry(&self) -> &Geometry<D> {
        &self.geo
    }

    /// Zeroes `grid` and writes `image · scale` into its centered block.
    ///
    /// # Panics
    /// Panics if buffer lengths don't match the geometry.
    pub fn embed(&self, image: &[Complex32], grid: &mut [Complex32]) {
        assert_eq!(image.len(), self.geo.image_len(), "image length mismatch");
        assert_eq!(grid.len(), self.geo.grid_len(), "grid length mismatch");
        grid.fill(Complex32::ZERO);
        embed_scaled(&self.geo, image, &self.scale, grid);
    }

    /// Extracts the centered block of `grid` into `out`, multiplied by the
    /// same scale — the exact adjoint of [`DeconvOp::embed`].
    ///
    /// # Panics
    /// Panics if buffer lengths don't match the geometry.
    pub fn extract(&self, grid: &[Complex32], out: &mut [Complex32]) {
        assert_eq!(grid.len(), self.geo.grid_len(), "grid length mismatch");
        assert_eq!(out.len(), self.geo.image_len(), "image length mismatch");
        extract_scaled(&self.geo, grid, &self.scale, out);
    }
}

// ---------------------------------------------------------------------------
// Shared drivers
// ---------------------------------------------------------------------------

/// The unified gather (forward-convolution) driver: one Part 1 window
/// fetch per sample, then a Part 2 gather per channel — channel pairs
/// go through [`forward_gather2`], which shares one weight expansion
/// across both grids while staying bitwise-equal to two single gathers.
///
/// `grids[c]` is channel `c`'s oversampled spectrum; `out_ptrs[c]` its
/// output base pointer (written at permuted positions `order[i]`).
#[allow(clippy::too_many_arguments)]
fn gather_driver<const D: usize, G: AsRef<[Complex32]> + Sync>(
    exec: &Executor,
    grain: usize,
    pre: &Preprocess<D>,
    source: &WindowSource<'_, D>,
    m: &[usize; D],
    grids: &[G],
    out_ptrs: &[SendPtr<Complex32>],
) {
    assert_eq!(grids.len(), out_ptrs.len(), "channel count mismatch");
    let channels = grids.len();
    let order = &pre.order;
    // Storage order IS the traversal here: under `SortMode::TileMajor`
    // each chunk streams grid tiles; forward gathers are pure reads, so
    // the result is permutation-invariant (each write lands at the
    // original position `order[i]`) and no de-permutation pass is
    // needed — outputs are bitwise-identical across sort modes.
    exec.parallel_for_aligned(pre.coords.len(), grain, LANE_ALIGN, |range, _w| {
        let mut stage = [Window::EMPTY; D];
        for i in range {
            let win = source.at(i, &mut stage);
            let slot = order[i] as usize;
            let mut c = 0;
            while c + 2 <= channels {
                let (va, vb) = forward_gather2(grids[c].as_ref(), grids[c + 1].as_ref(), m, &win);
                // SAFETY: `order` is a permutation; each (c, i) writes a
                // distinct slot of channel c's output.
                unsafe {
                    *out_ptrs[c].get().add(slot) = va;
                    *out_ptrs[c + 1].get().add(slot) = vb;
                }
                c += 2;
            }
            if c < channels {
                let v = forward_gather(grids[c].as_ref(), m, &win);
                // SAFETY: as above.
                unsafe { *out_ptrs[c].get().add(slot) = v };
            }
        }
    });
}

/// The unified scatter (adjoint-convolution) driver: a single
/// task-graph traversal scatters every channel, with the selective
/// privatization protocol applied per channel — a privatized task
/// convolves into `channels` back-to-back copies of its halo region and
/// its decoupled reduction folds each copy into the matching grid.
///
/// At `channels == 1` this is exactly the historical single-operator
/// path; the batched operators are the same code with a longer channel
/// loop, so batch output is bitwise-identical to repeated single
/// applies.
///
/// Samples are visited in the **canonical tile-major order** via
/// [`Preprocess::visit`] regardless of sort mode, pinning the
/// floating-point accumulation order — sorted and unsorted plans
/// produce bitwise-identical grids (DESIGN.md §14).
#[allow(clippy::too_many_arguments)]
fn scatter_driver<const D: usize>(
    exec: &Executor,
    policy: QueuePolicy,
    priority: JobPriority,
    scratch: &mut GraphScratch,
    pre: &Preprocess<D>,
    source: &WindowSource<'_, D>,
    m: &[usize; D],
    grid_ptrs: &[SendPtr<Complex32>],
    grid_len: usize,
    priv_ptrs: &[(SendPtr<Complex32>, usize)],
    buf_of_task: &[u32],
    samples: &[&[Complex32]],
) {
    assert_eq!(grid_ptrs.len(), samples.len(), "channel count mismatch");
    let channels = grid_ptrs.len();
    let order = &pre.order;
    exec.run_graph_reuse_prio(&pre.graph, policy, priority, scratch, |t, phase, _w| {
        match phase {
            TaskPhase::Normal => {
                let mut stage = [Window::EMPTY; D];
                for vi in pre.ranges[t].clone() {
                    let i = pre.visit(vi);
                    let win = source.at(i, &mut stage);
                    let slot = order[i] as usize;
                    for (c, gp) in grid_ptrs.iter().enumerate() {
                        // SAFETY: the task graph serializes adjacent
                        // tasks; this task only touches its own halo box
                        // of each channel's grid.
                        let grid = unsafe { core::slice::from_raw_parts_mut(gp.get(), grid_len) };
                        adjoint_scatter(grid, m, &win, samples[c][slot]);
                    }
                }
            }
            TaskPhase::PrivateConvolve => {
                let region = pre.regions[t].expect("privatized task has region");
                let (base, clen) = priv_ptrs[buf_of_task[t] as usize];
                // SAFETY: each privatized task owns its buffer
                // exclusively; phases of one task never overlap. The
                // buffer holds ≥ `channels` region copies
                // (`ensure_priv_channels`).
                let buf_all =
                    unsafe { core::slice::from_raw_parts_mut(base.get(), channels * clen) };
                buf_all.fill(Complex32::ZERO);
                let mut stage = [Window::EMPTY; D];
                for vi in pre.ranges[t].clone() {
                    let i = pre.visit(vi);
                    let win = source.at(i, &mut stage);
                    let slot = order[i] as usize;
                    for c in 0..channels {
                        adjoint_scatter_local(
                            &mut buf_all[c * clen..(c + 1) * clen],
                            &region.origin,
                            &region.size,
                            &win,
                            samples[c][slot],
                        );
                    }
                }
            }
            TaskPhase::Reduce => {
                let region = pre.regions[t].expect("privatized task has region");
                let (base, clen) = priv_ptrs[buf_of_task[t] as usize];
                for (c, gp) in grid_ptrs.iter().enumerate() {
                    // SAFETY: reductions run under the same exclusion
                    // edges as normal tasks; the buffer was filled by
                    // this task's convolve phase which has completed.
                    let grid = unsafe { core::slice::from_raw_parts_mut(gp.get(), grid_len) };
                    let buf =
                        unsafe { core::slice::from_raw_parts(base.get().add(c * clen), clen) };
                    reduce_local(grid, m, buf, &region.origin, &region.size);
                }
            }
        }
    });
    // The scatter traversal is fixed at plan time, so its tile-revisit
    // count is a plan constant — stamp it into the freshly harvested
    // stats so locality is observable next to the timing log.
    scratch.stats_mut().tile_revisits = pre.canonical_revisits;
}
