//! Window-mode equality: a plan holding a precomputed Part 1 table must
//! produce **bitwise-identical** operator output to an on-the-fly plan —
//! at every ISA level, at every thread count, for all four operators.
//!
//! The table stores the exact `Window::compute` output and both sources
//! feed the identical Part 2 path, so equality here is by construction;
//! these tests are the tripwire that keeps it that way. The batched
//! operators additionally must match repeated single applies bit-for-bit
//! (they are the same driver with a longer channel loop, and the batched
//! adjoint runs the same selective-privatization protocol).

use nufft_core::{NufftConfig, NufftPlan, WindowMode};
use nufft_math::Complex32;
use nufft_simd::{detect_isa, set_isa_override, IsaLevel};
use std::sync::Mutex;

/// Serializes every test that applies operators: the ISA override is
/// process-global, so a concurrent test could flip the dispatch level
/// between two applies that are being compared bitwise.
static ISA_LOCK: Mutex<()> = Mutex::new(());

fn isa_guard() -> std::sync::MutexGuard<'static, ()> {
    ISA_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn traj2(count: usize) -> Vec<[f64; 2]> {
    (0..count)
        .map(|i| [((i as f64 * 0.618) % 1.0) - 0.5, ((i as f64 * 0.414) % 1.0) - 0.5])
        .collect()
}

fn traj3(count: usize) -> Vec<[f64; 3]> {
    (0..count)
        .map(|i| {
            [
                ((i as f64 * 0.618) % 1.0) - 0.5,
                ((i as f64 * 0.414) % 1.0) - 0.5,
                ((i as f64 * 0.732) % 1.0) - 0.5,
            ]
        })
        .collect()
}

fn signal(n: usize, phase: f32) -> Vec<Complex32> {
    (0..n)
        .map(|i| Complex32::new((i as f32 * 0.13 + phase).sin(), (i as f32 * 0.07).cos()))
        .collect()
}

fn assert_bits_eq(a: &[Complex32], b: &[Complex32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (p, q)) in a.iter().zip(b).enumerate() {
        assert!(
            p.re.to_bits() == q.re.to_bits() && p.im.to_bits() == q.im.to_bits(),
            "{what}: element {i} differs: {p:?} vs {q:?}"
        );
    }
}

fn cfg(threads: usize, mode: WindowMode) -> NufftConfig {
    NufftConfig {
        threads,
        w: 3.0,
        // Pin the task decomposition so the comparison varies only the
        // window source (and ISA / thread count), never the partitioning.
        partitions_per_dim: Some(4),
        window_mode: mode,
        ..NufftConfig::default()
    }
}

/// Applies all four operators with both window modes and asserts every
/// output pair is bit-identical. `channels = 3` exercises both the paired
/// and the remainder lane of the channel loop.
fn check_all_ops_match(threads: usize, label: &str) {
    let n = [16usize, 16];
    let traj = traj2(350);
    let img_len = 256;
    let k = traj.len();
    let channels = 3usize;

    let mut fly = NufftPlan::new(n, &traj, cfg(threads, WindowMode::OnTheFly));
    let mut pre = NufftPlan::new(n, &traj, cfg(threads, WindowMode::Precomputed));
    assert_eq!(fly.window_mode(), WindowMode::OnTheFly, "{label}");
    assert_eq!(pre.window_mode(), WindowMode::Precomputed, "{label}");

    let image = signal(img_len, 0.0);
    let samples = signal(k, 1.3);

    // forward
    let mut out_fly = vec![Complex32::ZERO; k];
    let mut out_pre = vec![Complex32::ZERO; k];
    fly.forward(&image, &mut out_fly);
    pre.forward(&image, &mut out_pre);
    assert_bits_eq(&out_fly, &out_pre, &format!("{label}: forward"));

    // adjoint
    let mut img_fly = vec![Complex32::ZERO; img_len];
    let mut img_pre = vec![Complex32::ZERO; img_len];
    fly.adjoint(&samples, &mut img_fly);
    pre.adjoint(&samples, &mut img_pre);
    assert_bits_eq(&img_fly, &img_pre, &format!("{label}: adjoint"));

    // forward_batch
    let images: Vec<Vec<Complex32>> = (0..channels).map(|c| signal(img_len, c as f32)).collect();
    let image_refs: Vec<&[Complex32]> = images.iter().map(|v| v.as_slice()).collect();
    let mut bout_fly = vec![vec![Complex32::ZERO; k]; channels];
    let mut bout_pre = vec![vec![Complex32::ZERO; k]; channels];
    {
        let mut refs: Vec<&mut [Complex32]> =
            bout_fly.iter_mut().map(|v| v.as_mut_slice()).collect();
        fly.forward_batch(&image_refs, &mut refs);
    }
    {
        let mut refs: Vec<&mut [Complex32]> =
            bout_pre.iter_mut().map(|v| v.as_mut_slice()).collect();
        pre.forward_batch(&image_refs, &mut refs);
    }
    for c in 0..channels {
        assert_bits_eq(&bout_fly[c], &bout_pre[c], &format!("{label}: forward_batch ch{c}"));
    }

    // adjoint_batch
    let datas: Vec<Vec<Complex32>> = (0..channels).map(|c| signal(k, 2.0 + c as f32)).collect();
    let data_refs: Vec<&[Complex32]> = datas.iter().map(|v| v.as_slice()).collect();
    let mut bimg_fly = vec![vec![Complex32::ZERO; img_len]; channels];
    let mut bimg_pre = vec![vec![Complex32::ZERO; img_len]; channels];
    {
        let mut refs: Vec<&mut [Complex32]> =
            bimg_fly.iter_mut().map(|v| v.as_mut_slice()).collect();
        fly.adjoint_batch(&data_refs, &mut refs);
    }
    {
        let mut refs: Vec<&mut [Complex32]> =
            bimg_pre.iter_mut().map(|v| v.as_mut_slice()).collect();
        pre.adjoint_batch(&data_refs, &mut refs);
    }
    for c in 0..channels {
        assert_bits_eq(&bimg_fly[c], &bimg_pre[c], &format!("{label}: adjoint_batch ch{c}"));
    }
}

#[test]
fn precomputed_matches_onthefly_bitwise_across_isa_and_threads() {
    let _guard = isa_guard();
    let detected = detect_isa();
    for isa in [IsaLevel::StrictScalar, IsaLevel::Scalar, IsaLevel::Sse2, IsaLevel::Avx2Fma] {
        if isa > detected {
            continue;
        }
        set_isa_override(isa).unwrap();
        for threads in [1usize, 2, 4] {
            check_all_ops_match(threads, &format!("isa={isa:?} threads={threads}"));
        }
    }
    set_isa_override(detected).unwrap();
}

#[test]
fn auto_mode_resolves_by_budget_and_stays_bitwise() {
    let _guard = isa_guard();
    let n = [16usize, 16];
    let traj = traj2(300);

    // A generous budget precomputes; a zero budget stays on the fly.
    let auto = NufftPlan::new(n, &traj, cfg(2, WindowMode::Auto(usize::MAX)));
    assert_eq!(auto.window_mode(), WindowMode::Precomputed);
    assert!(auto.window_table_bytes().unwrap() > 0);
    let tight = NufftPlan::new(n, &traj, cfg(2, WindowMode::Auto(0)));
    assert_eq!(tight.window_mode(), WindowMode::OnTheFly);
    assert!(tight.window_table_bytes().is_none());

    // And the auto-precomputed plan is bitwise-equal to on the fly.
    let mut auto = auto;
    let mut fly = NufftPlan::new(n, &traj, cfg(2, WindowMode::OnTheFly));
    let image = signal(256, 0.4);
    let mut out_a = vec![Complex32::ZERO; traj.len()];
    let mut out_f = vec![Complex32::ZERO; traj.len()];
    auto.forward(&image, &mut out_a);
    fly.forward(&image, &mut out_f);
    assert_bits_eq(&out_a, &out_f, "auto forward");
}

#[test]
fn set_window_mode_switches_source_bitwise() {
    let _guard = isa_guard();
    let n = [12usize, 12, 12];
    let traj = traj3(400);
    let mut plan = NufftPlan::new(n, &traj, cfg(2, WindowMode::OnTheFly));
    let samples = signal(traj.len(), 0.9);

    let mut img_fly = vec![Complex32::ZERO; 12 * 12 * 12];
    plan.adjoint(&samples, &mut img_fly);

    plan.set_window_mode(WindowMode::Precomputed);
    assert_eq!(plan.window_mode(), WindowMode::Precomputed);
    let mut img_pre = vec![Complex32::ZERO; 12 * 12 * 12];
    plan.adjoint(&samples, &mut img_pre);
    assert_bits_eq(&img_fly, &img_pre, "3D adjoint after mode switch");

    plan.set_window_mode(WindowMode::OnTheFly);
    assert_eq!(plan.window_mode(), WindowMode::OnTheFly);
    let mut img_back = vec![Complex32::ZERO; 12 * 12 * 12];
    plan.adjoint(&samples, &mut img_back);
    assert_bits_eq(&img_fly, &img_back, "3D adjoint after switching back");
}

#[test]
fn batch_matches_repeated_single_applies_bitwise() {
    let _guard = isa_guard();
    let n = [16usize, 16];
    let traj = traj2(320);
    let k = traj.len();
    let channels = 3usize;
    for mode in [WindowMode::OnTheFly, WindowMode::Precomputed] {
        let mut plan = NufftPlan::new(n, &traj, cfg(2, mode));

        // forward: batch vs loop of singles.
        let images: Vec<Vec<Complex32>> = (0..channels).map(|c| signal(256, c as f32)).collect();
        let mut want = Vec::new();
        for img in &images {
            let mut out = vec![Complex32::ZERO; k];
            plan.forward(img, &mut out);
            want.push(out);
        }
        let image_refs: Vec<&[Complex32]> = images.iter().map(|v| v.as_slice()).collect();
        let mut outs = vec![vec![Complex32::ZERO; k]; channels];
        {
            let mut refs: Vec<&mut [Complex32]> =
                outs.iter_mut().map(|v| v.as_mut_slice()).collect();
            plan.forward_batch(&image_refs, &mut refs);
        }
        for c in 0..channels {
            assert_bits_eq(&outs[c], &want[c], &format!("{mode:?}: forward batch-vs-single ch{c}"));
        }

        // adjoint: batch (privatized, like the single path) vs singles.
        let datas: Vec<Vec<Complex32>> = (0..channels).map(|c| signal(k, 4.0 + c as f32)).collect();
        let mut want = Vec::new();
        for y in &datas {
            let mut out = vec![Complex32::ZERO; 256];
            plan.adjoint(y, &mut out);
            want.push(out);
        }
        let data_refs: Vec<&[Complex32]> = datas.iter().map(|v| v.as_slice()).collect();
        let mut outs = vec![vec![Complex32::ZERO; 256]; channels];
        {
            let mut refs: Vec<&mut [Complex32]> =
                outs.iter_mut().map(|v| v.as_mut_slice()).collect();
            plan.adjoint_batch(&data_refs, &mut refs);
        }
        for c in 0..channels {
            assert_bits_eq(&outs[c], &want[c], &format!("{mode:?}: adjoint batch-vs-single ch{c}"));
        }
    }
}

#[test]
#[should_panic(expected = "MAX_TAPS")]
fn oversized_kernel_radius_is_rejected_at_construction() {
    // W = 9 needs 2⌈9⌉+1 = 19 taps > MAX_TAPS = 17: must fail loudly at
    // plan build, not via debug_assert deep in a worker.
    let traj = traj2(10);
    let _ = NufftPlan::new(
        [64usize, 64],
        &traj,
        NufftConfig { w: 9.0, ..cfg(1, WindowMode::OnTheFly) },
    );
}
