//! Sort-mode equality: a plan built with the tile-major bin sort must
//! produce **bitwise-identical** operator output to an unsorted plan — at
//! every ISA level, at every thread count, for all four operators, in both
//! exec modes.
//!
//! This is the tripwire for the determinism rule (DESIGN.md §14): the
//! adjoint scatter visits samples in the canonical tile-major order under
//! *every* [`SortMode`] (via the plan-time `scan` indirection when storage
//! is unsorted), and the forward gather is a pure per-sample read written
//! back at the caller's original position — so equality holds by
//! construction, and these tests keep it that way. The shuffled trajectory
//! is the adversarial input: maximal disorder, so any visit-order slip
//! shows up as a different floating-point accumulation immediately.

use nufft_core::{ExecMode, NufftConfig, NufftPlan, SortMode};
use nufft_math::Complex32;
use nufft_simd::{detect_isa, set_isa_override, IsaLevel};
use std::sync::Mutex;

/// Serializes every test that applies operators: the ISA override is
/// process-global, so a concurrent test could flip the dispatch level
/// between two applies that are being compared bitwise.
static ISA_LOCK: Mutex<()> = Mutex::new(());

fn isa_guard() -> std::sync::MutexGuard<'static, ()> {
    ISA_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn signal(n: usize, phase: f32) -> Vec<Complex32> {
    (0..n)
        .map(|i| Complex32::new((i as f32 * 0.13 + phase).sin(), (i as f32 * 0.07).cos()))
        .collect()
}

fn assert_bits_eq(a: &[Complex32], b: &[Complex32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (p, q)) in a.iter().zip(b).enumerate() {
        assert!(
            p.re.to_bits() == q.re.to_bits() && p.im.to_bits() == q.im.to_bits(),
            "{what}: element {i} differs: {p:?} vs {q:?}"
        );
    }
}

fn cfg(threads: usize, sort: SortMode, exec_mode: ExecMode) -> NufftConfig {
    NufftConfig {
        threads,
        w: 3.0,
        // Pin the task decomposition so the comparison varies only the
        // sample layout (and ISA / thread count), never the partitioning.
        partitions_per_dim: Some(4),
        sort,
        exec_mode,
        ..NufftConfig::default()
    }
}

/// Applies all four operators with both sort modes and asserts every
/// output pair is bit-identical. `channels = 3` exercises both the paired
/// and the remainder lane of the channel loop.
fn check_all_ops_match(traj: &[[f64; 2]], threads: usize, exec_mode: ExecMode, label: &str) {
    let n = [16usize, 16];
    let img_len = 256;
    let k = traj.len();
    let channels = 3usize;

    let mut unsorted = NufftPlan::new(n, traj, cfg(threads, SortMode::None, exec_mode));
    let mut sorted = NufftPlan::new(n, traj, cfg(threads, SortMode::TileMajor, exec_mode));
    assert_eq!(unsorted.sort_mode(), SortMode::None, "{label}");
    assert_eq!(sorted.sort_mode(), SortMode::TileMajor, "{label}");

    let image = signal(img_len, 0.0);
    let samples = signal(k, 1.3);

    // forward
    let mut out_u = vec![Complex32::ZERO; k];
    let mut out_s = vec![Complex32::ZERO; k];
    unsorted.forward(&image, &mut out_u);
    sorted.forward(&image, &mut out_s);
    assert_bits_eq(&out_u, &out_s, &format!("{label}: forward"));

    // adjoint
    let mut img_u = vec![Complex32::ZERO; img_len];
    let mut img_s = vec![Complex32::ZERO; img_len];
    unsorted.adjoint(&samples, &mut img_u);
    sorted.adjoint(&samples, &mut img_s);
    assert_bits_eq(&img_u, &img_s, &format!("{label}: adjoint"));

    // forward_batch
    let images: Vec<Vec<Complex32>> = (0..channels).map(|c| signal(img_len, c as f32)).collect();
    let image_refs: Vec<&[Complex32]> = images.iter().map(|v| v.as_slice()).collect();
    let mut bout_u = vec![vec![Complex32::ZERO; k]; channels];
    let mut bout_s = vec![vec![Complex32::ZERO; k]; channels];
    {
        let mut refs: Vec<&mut [Complex32]> = bout_u.iter_mut().map(|v| v.as_mut_slice()).collect();
        unsorted.forward_batch(&image_refs, &mut refs);
    }
    {
        let mut refs: Vec<&mut [Complex32]> = bout_s.iter_mut().map(|v| v.as_mut_slice()).collect();
        sorted.forward_batch(&image_refs, &mut refs);
    }
    for c in 0..channels {
        assert_bits_eq(&bout_u[c], &bout_s[c], &format!("{label}: forward_batch ch{c}"));
    }

    // adjoint_batch
    let datas: Vec<Vec<Complex32>> = (0..channels).map(|c| signal(k, 2.0 + c as f32)).collect();
    let data_refs: Vec<&[Complex32]> = datas.iter().map(|v| v.as_slice()).collect();
    let mut bimg_u = vec![vec![Complex32::ZERO; img_len]; channels];
    let mut bimg_s = vec![vec![Complex32::ZERO; img_len]; channels];
    {
        let mut refs: Vec<&mut [Complex32]> = bimg_u.iter_mut().map(|v| v.as_mut_slice()).collect();
        unsorted.adjoint_batch(&data_refs, &mut refs);
    }
    {
        let mut refs: Vec<&mut [Complex32]> = bimg_s.iter_mut().map(|v| v.as_mut_slice()).collect();
        sorted.adjoint_batch(&data_refs, &mut refs);
    }
    for c in 0..channels {
        assert_bits_eq(&bimg_u[c], &bimg_s[c], &format!("{label}: adjoint_batch ch{c}"));
    }
}

#[test]
fn sorted_matches_unsorted_bitwise_across_isa_threads_and_exec_modes() {
    let _guard = isa_guard();
    // The worst case the sort exists for: a shuffled random trajectory.
    let traj = nufft_traj::shuffled_2d(25, 14, 0.15, 11).points;
    let detected = detect_isa();
    for isa in [IsaLevel::StrictScalar, IsaLevel::Scalar, IsaLevel::Sse2, IsaLevel::Avx2Fma] {
        if isa > detected {
            continue;
        }
        set_isa_override(isa).unwrap();
        for threads in [1usize, 2, 4] {
            for exec_mode in [ExecMode::Fused, ExecMode::Phased] {
                check_all_ops_match(
                    &traj,
                    threads,
                    exec_mode,
                    &format!("isa={isa:?} threads={threads} {exec_mode:?}"),
                );
            }
        }
    }
    set_isa_override(detected).unwrap();
}

#[test]
fn auto_resolves_per_trajectory_and_stays_bitwise() {
    let _guard = isa_guard();
    let n = [16usize, 16];

    // Shuffled (disordered) → TileMajor; radial spokes (ordered) → None.
    let shuffled = nufft_traj::shuffled_2d(25, 12, 0.15, 3).points;
    let radial = nufft_traj::radial_2d(25, 12, 3).points;
    let auto_sh = NufftPlan::new(n, &shuffled, cfg(2, SortMode::Auto, ExecMode::Fused));
    assert_eq!(auto_sh.sort_mode(), SortMode::TileMajor, "shuffled should sort");
    let auto_ra = NufftPlan::new(n, &radial, cfg(2, SortMode::Auto, ExecMode::Fused));
    assert_eq!(auto_ra.sort_mode(), SortMode::None, "radial spokes should not");

    // And Auto output is bitwise-equal to both explicit modes.
    let image = signal(256, 0.4);
    let mut auto_sh = auto_sh;
    let mut none = NufftPlan::new(n, &shuffled, cfg(2, SortMode::None, ExecMode::Fused));
    let mut out_a = vec![Complex32::ZERO; shuffled.len()];
    let mut out_n = vec![Complex32::ZERO; shuffled.len()];
    auto_sh.forward(&image, &mut out_a);
    none.forward(&image, &mut out_n);
    assert_bits_eq(&out_a, &out_n, "auto forward vs explicit None");
}

#[test]
fn tile_revisits_expose_the_locality_win() {
    let _guard = isa_guard();
    let n = [32usize, 32];
    let traj = nufft_traj::shuffled_2d(40, 25, 0.15, 17).points;
    let sorted = NufftPlan::new(n, &traj, cfg(2, SortMode::TileMajor, ExecMode::Phased));
    let unsorted = NufftPlan::new(n, &traj, cfg(2, SortMode::None, ExecMode::Phased));
    // The observable: the shuffled walk re-enters tiles constantly, the
    // sorted walk streams them. The canonical (scatter) walk is shared.
    assert!(
        sorted.gather_tile_revisits() * 2 < unsorted.gather_tile_revisits(),
        "sorted {} vs unsorted {} revisits",
        sorted.gather_tile_revisits(),
        unsorted.gather_tile_revisits()
    );
    assert_eq!(sorted.scatter_tile_revisits(), unsorted.scatter_tile_revisits());

    // And it lands in the per-run stats of both exec modes.
    let samples = signal(traj.len(), 0.7);
    let mut img = vec![Complex32::ZERO; 32 * 32];
    for exec_mode in [ExecMode::Fused, ExecMode::Phased] {
        let mut plan = NufftPlan::new(n, &traj, cfg(2, SortMode::TileMajor, exec_mode));
        plan.adjoint(&samples, &mut img);
        let stats = plan.last_run_stats().expect("adjoint records stats");
        assert_eq!(stats.tile_revisits, plan.scatter_tile_revisits(), "{exec_mode:?}");
    }
}
