//! Kernel-family determinism matrix, run for each family (ES with its
//! Horner fast-eval path, Kaiser–Bessel with its LUT) over the full
//! StrictScalar/Scalar/SSE2/AVX2 × 1/2/4-thread × four-operator ×
//! Fused/Phased grid:
//!
//! * **operator outputs** are bitwise-identical across exec modes and
//!   thread schedules *at a fixed ISA level* — the repo's determinism
//!   contract (DESIGN.md §9/§14; Part 2 row convolution legitimately
//!   reassociates between ISA levels, so cross-ISA identity is not
//!   asserted at the operator level);
//! * **Part 1 windows** — where the new ES Horner evaluator actually
//!   dispatches per ISA (8-wide FMA on AVX2, fused scalar elsewhere) —
//!   are bitwise-identical *across* ISA levels for every kernel family,
//!   the stronger contract the Horner layer is built to keep;
//! * the `determinism.rs` cross-worker-count guarantee extends to the ES
//!   family in its 3D configuration.

use nufft_core::{ExecMode, KernelChoice, NufftConfig, NufftPlan};
use nufft_math::Complex32;
use nufft_simd::{detect_isa, set_isa_override, IsaLevel};
use std::sync::Mutex;

/// Serializes the tests: the ISA override is process-global.
static ISA_LOCK: Mutex<()> = Mutex::new(());

fn isa_guard() -> std::sync::MutexGuard<'static, ()> {
    ISA_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn signal(n: usize, phase: f32) -> Vec<Complex32> {
    (0..n)
        .map(|i| Complex32::new((i as f32 * 0.13 + phase).sin(), (i as f32 * 0.07).cos()))
        .collect()
}

fn assert_bits_eq(a: &[Complex32], b: &[Complex32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (p, q)) in a.iter().zip(b).enumerate() {
        assert!(
            p.re.to_bits() == q.re.to_bits() && p.im.to_bits() == q.im.to_bits(),
            "{what}: element {i} differs: {p:?} vs {q:?}"
        );
    }
}

fn cfg(family: KernelChoice, threads: usize, exec_mode: ExecMode) -> NufftConfig {
    NufftConfig {
        threads,
        // W = 3 (ns = 6): the ES kernel fits its Horner table here, so the
        // matrix genuinely exercises the dispatched fast path.
        w: 3.0,
        kernel: family,
        // Pin the task decomposition so only ISA / threads / exec vary.
        partitions_per_dim: Some(4),
        exec_mode,
        ..NufftConfig::default()
    }
}

/// One full application of all four operators; the plan is built *under*
/// the active ISA override so plan-time window work is covered too.
fn run_all_ops(
    traj: &[[f64; 2]],
    family: KernelChoice,
    threads: usize,
    exec_mode: ExecMode,
) -> [Vec<Complex32>; 4] {
    let n = [16usize, 16];
    let img_len = 256;
    let k = traj.len();
    let mut plan = NufftPlan::new(n, traj, cfg(family, threads, exec_mode));
    let grid_len = plan.grid_len();

    let image = signal(img_len, 0.0);
    let samples = signal(k, 1.3);
    let grid_in = signal(grid_len, 2.6);

    let mut fwd = vec![Complex32::ZERO; k];
    plan.forward(&image, &mut fwd);
    let mut adj = vec![Complex32::ZERO; img_len];
    plan.adjoint(&samples, &mut adj);
    let mut spread = vec![Complex32::ZERO; grid_len];
    plan.spread_only(&samples, &mut spread);
    let mut interp = vec![Complex32::ZERO; k];
    plan.interp_only(&grid_in, &mut interp);
    [fwd, adj, spread, interp]
}

const OPS: [&str; 4] = ["forward", "adjoint", "spread_only", "interp_only"];

#[test]
fn each_family_is_bitwise_stable_across_exec_modes_at_every_isa_and_thread_count() {
    let _guard = isa_guard();
    let traj = nufft_traj::shuffled_2d(25, 14, 0.15, 29).points;
    let detected = detect_isa();

    for family in [KernelChoice::EsKernel, KernelChoice::KaiserBessel] {
        for isa in [IsaLevel::StrictScalar, IsaLevel::Scalar, IsaLevel::Sse2, IsaLevel::Avx2Fma] {
            if isa > detected {
                continue;
            }
            set_isa_override(isa).unwrap();
            for threads in [1usize, 2, 4] {
                // Reference per (ISA, worker count): the fused graph.
                // (2D adjoint accumulation order is worker-count-dependent
                // by design — `tests/determinism.rs` pins the 3D
                // cross-worker guarantee, extended to ES below.)
                let want = run_all_ops(&traj, family, threads, ExecMode::Fused);
                let got = run_all_ops(&traj, family, threads, ExecMode::Phased);
                for (op, (g, w)) in OPS.iter().zip(got.iter().zip(want.iter())) {
                    assert_bits_eq(
                        g,
                        w,
                        &format!("{family:?} {op} isa={isa:?} threads={threads} Phased-vs-Fused"),
                    );
                }
            }
        }
    }
    set_isa_override(detected).unwrap();
}

/// The kernel layer's own cross-ISA contract: Part 1 windows — the one
/// place the ES Horner evaluator dispatches per ISA level — are
/// bitwise-identical at every level, for every family, over a dense sweep
/// of fractional coordinates. (Operator outputs may differ across ISA
/// because Part 2 reassociates; windows may not.)
#[test]
fn part1_windows_are_bitwise_identical_across_isa_levels() {
    use nufft_core::conv::Window;
    use nufft_core::kernel::InterpKernel;

    let _guard = isa_guard();
    let detected = detect_isa();
    for choice in [KernelChoice::EsKernel, KernelChoice::KaiserBessel, KernelChoice::Gaussian] {
        let kernel = InterpKernel::of(choice, 3.0, 2.0, 512);
        for step in 0..400 {
            let u = 3.0 + step as f32 * 0.0173;
            set_isa_override(IsaLevel::StrictScalar).unwrap();
            let want = Window::compute(u, 3.0, &kernel);
            for isa in [IsaLevel::Scalar, IsaLevel::Sse2, IsaLevel::Avx2Fma] {
                if isa > detected {
                    continue;
                }
                set_isa_override(isa).unwrap();
                let got = Window::compute(u, 3.0, &kernel);
                assert_eq!(got.start, want.start, "{choice:?} u={u} {isa:?}: start");
                assert_eq!(got.len, want.len, "{choice:?} u={u} {isa:?}: len");
                for i in 0..got.len {
                    assert_eq!(
                        got.w[i].to_bits(),
                        want.w[i].to_bits(),
                        "{choice:?} u={u} {isa:?}: tap {i}: {} vs {}",
                        got.w[i],
                        want.w[i]
                    );
                }
            }
        }
    }
    set_isa_override(detected).unwrap();
}

/// The `determinism.rs` cross-worker-count guarantee, extended to the ES
/// family: in the pinned-partition 3D configuration, the adjoint grid is
/// bitwise-identical at 1/2/4 workers even though Part 1 runs the
/// ISA-dispatched Horner evaluator on every worker.
#[test]
fn es_adjoint_is_bitwise_stable_across_worker_counts() {
    let _guard = isa_guard();
    let mut rng = nufft_testkit::Rng::seed_from_u64(42);
    let traj: Vec<[f64; 3]> =
        (0..400).map(|_| core::array::from_fn(|_| rng.gen_f64(0.0..1.0) - 0.5)).collect();
    let samples = nufft_testkit::Rng::seed_from_u64(42 ^ 0xFF).gen_c32_vec(400, 1.0);

    let grid = |threads: usize| {
        let cfg = NufftConfig {
            threads,
            w: 3.0,
            kernel: KernelChoice::EsKernel,
            partitions_per_dim: Some(4),
            ..NufftConfig::default()
        };
        let mut plan = NufftPlan::new([12, 12, 12], &traj, cfg);
        let mut out = vec![Complex32::ZERO; 12 * 12 * 12];
        plan.adjoint(&samples, &mut out);
        out
    };
    let reference = grid(1);
    for threads in [2usize, 4] {
        assert_bits_eq(&grid(threads), &reference, &format!("ES 3D adjoint threads={threads}"));
    }
}

/// Sanity cross-check: the two families are genuinely different kernels —
/// their outputs must *not* coincide (a copy-paste dispatch bug that sent
/// both families down one path would sail through the matrix above).
#[test]
fn families_produce_different_outputs() {
    let _guard = isa_guard();
    let traj = nufft_traj::shuffled_2d(25, 14, 0.15, 31).points;
    let es = run_all_ops(&traj, KernelChoice::EsKernel, 2, ExecMode::Fused);
    let kb = run_all_ops(&traj, KernelChoice::KaiserBessel, 2, ExecMode::Fused);
    for (op, (a, b)) in OPS.iter().zip(es.iter().zip(kb.iter())) {
        assert!(
            a.iter().zip(b.iter()).any(|(p, q)| p.re.to_bits() != q.re.to_bits()),
            "{op}: ES and KB outputs are identical — family dispatch is broken"
        );
    }
}
