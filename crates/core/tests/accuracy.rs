//! End-to-end NUFFT validation against the direct DTFT.
//!
//! The operator under test approximates
//! `F(ν) = Σ_{n ∈ [-N/2,N/2)^D} f[n] · e^{-2πi ν·n}`; its adjoint is the
//! exact conjugate transpose. These tests pin both properties and verify
//! that every scheduler/vectorization configuration computes the same
//! numbers.

use nufft_core::{NufftConfig, NufftPlan, SortMode};
use nufft_math::error::rel_l2_mixed;
use nufft_math::{Complex32, Complex64};
use nufft_parallel::graph::QueuePolicy;

/// Quasi-random trajectory in [-1/2, 1/2)^D via an additive recurrence.
fn qr_traj<const D: usize>(count: usize, seed: u64) -> Vec<[f64; D]> {
    const ALPHAS: [f64; 3] =
        [0.618_033_988_749_894_9, 0.414_213_562_373_095, 0.259_921_049_894_873_2];
    (0..count)
        .map(|i| {
            core::array::from_fn(|d| {
                let x = ((i as f64 + 1.0) * ALPHAS[d] + seed as f64 * 0.137) % 1.0;
                // Bias toward the center (center-dense like real datasets):
                // average of two uniforms is triangular on [0,1).
                let y = (x + ((i as f64 * ALPHAS[(d + 1) % 3]) % 1.0)) / 2.0;
                y - 0.5
            })
        })
        .collect()
}

fn demo_image(len: usize) -> Vec<Complex32> {
    (0..len)
        .map(|i| {
            let x = i as f32;
            Complex32::new((0.05 * x).sin() + 0.3, (0.03 * x).cos() * 0.5)
        })
        .collect()
}

/// Direct DTFT with centered indices — the oracle.
fn direct_forward<const D: usize>(
    image: &[Complex32],
    n: [usize; D],
    traj: &[[f64; D]],
) -> Vec<Complex64> {
    let mut strides = [1usize; D];
    for d in (0..D.saturating_sub(1)).rev() {
        strides[d] = strides[d + 1] * n[d + 1];
    }
    traj.iter()
        .map(|nu| {
            let mut acc = Complex64::ZERO;
            for (flat, &v) in image.iter().enumerate() {
                let mut phase = 0.0;
                let mut rem = flat;
                for d in 0..D {
                    let pos = rem / strides[d];
                    rem %= strides[d];
                    let centered = pos as f64 - (n[d] / 2) as f64;
                    phase += nu[d] * centered;
                }
                acc += v.to_f64() * Complex64::cis(-core::f64::consts::TAU * phase);
            }
            acc
        })
        .collect()
}

fn cfg(threads: usize, w: f64) -> NufftConfig {
    NufftConfig { threads, w, ..NufftConfig::default() }
}

#[test]
fn forward_matches_direct_dtft_1d() {
    let n = [64usize];
    let traj = qr_traj::<1>(120, 3);
    let image = demo_image(64);
    let mut plan = NufftPlan::new(n, &traj, cfg(1, 4.0));
    let mut got = vec![Complex32::ZERO; traj.len()];
    plan.forward(&image, &mut got);
    let want = direct_forward(&image, n, &traj);
    let err = rel_l2_mixed(&got, &want);
    assert!(err < 2e-4, "1D forward error {err}");
}

#[test]
fn forward_matches_direct_dtft_2d() {
    let n = [24usize, 24];
    let traj = qr_traj::<2>(300, 1);
    let image = demo_image(24 * 24);
    let mut plan = NufftPlan::new(n, &traj, cfg(2, 4.0));
    let mut got = vec![Complex32::ZERO; traj.len()];
    plan.forward(&image, &mut got);
    let want = direct_forward(&image, n, &traj);
    let err = rel_l2_mixed(&got, &want);
    assert!(err < 2e-4, "2D forward error {err}");
}

#[test]
fn forward_matches_direct_dtft_3d() {
    let n = [12usize, 12, 12];
    let traj = qr_traj::<3>(400, 7);
    let image = demo_image(12 * 12 * 12);
    let mut plan = NufftPlan::new(n, &traj, cfg(2, 4.0));
    let mut got = vec![Complex32::ZERO; traj.len()];
    plan.forward(&image, &mut got);
    let want = direct_forward(&image, n, &traj);
    let err = rel_l2_mixed(&got, &want);
    assert!(err < 3e-4, "3D forward error {err}");
}

#[test]
fn accuracy_improves_with_kernel_width() {
    let n = [32usize, 32];
    let traj = qr_traj::<2>(200, 5);
    let image = demo_image(32 * 32);
    let want = direct_forward(&image, n, &traj);
    let mut errs = Vec::new();
    for w in [2.0f64, 4.0, 6.0] {
        let mut plan = NufftPlan::new(n, &traj, cfg(1, w));
        let mut got = vec![Complex32::ZERO; traj.len()];
        plan.forward(&image, &mut got);
        errs.push(rel_l2_mixed(&got, &want));
    }
    // W=2 is coarser than W=4; W=6 saturates near f32 round-off, so only
    // require monotone non-degradation there.
    assert!(errs[0] > errs[1], "errors not improving: {errs:?}");
    assert!(errs[1] < 1e-3 && errs[2] < 1e-3, "{errs:?}");
}

#[test]
fn kaiser_bessel_beats_gaussian_at_equal_width() {
    // The literature result (and why the paper uses KB): at equal kernel
    // radius, Kaiser–Bessel with Beatty β is more accurate than the
    // Greengard–Lee Gaussian.
    let n = [32usize, 32];
    let traj = qr_traj::<2>(250, 13);
    let image = demo_image(32 * 32);
    let want = direct_forward(&image, n, &traj);
    let mut errs = Vec::new();
    for kernel in [nufft_core::KernelChoice::KaiserBessel, nufft_core::KernelChoice::Gaussian] {
        let c = NufftConfig { kernel, ..cfg(1, 4.0) };
        let mut plan = NufftPlan::new(n, &traj, c);
        let mut got = vec![Complex32::ZERO; traj.len()];
        plan.forward(&image, &mut got);
        errs.push(rel_l2_mixed(&got, &want));
    }
    let (kb, gauss) = (errs[0], errs[1]);
    assert!(kb < gauss, "KB ({kb}) should beat Gaussian ({gauss}) at W=4");
    // Both must still be usable kernels.
    assert!(gauss < 5e-3, "Gaussian error too large: {gauss}");
}

#[test]
fn gaussian_kernel_adjoint_is_still_exact() {
    // The adjointness property is structural — it must hold for any kernel.
    let n = [16usize, 16];
    let traj = qr_traj::<2>(120, 17);
    let x = demo_image(256);
    let y: Vec<Complex32> = (0..120).map(|i| Complex32::new((i as f32 * 0.9).sin(), 0.4)).collect();
    let c = NufftConfig { kernel: nufft_core::KernelChoice::Gaussian, ..cfg(2, 3.0) };
    let mut plan = NufftPlan::new(n, &traj, c);
    let mut ax = vec![Complex32::ZERO; 120];
    plan.forward(&x, &mut ax);
    let mut aty = vec![Complex32::ZERO; 256];
    plan.adjoint(&y, &mut aty);
    let dot = |a: &[Complex32], b: &[Complex32]| -> Complex64 {
        a.iter().zip(b).map(|(&p, &q)| p.to_f64().conj() * q.to_f64()).sum()
    };
    let lhs = dot(&ax, &y);
    let rhs = dot(&x, &aty);
    assert!((lhs - rhs).abs() / lhs.abs().max(1e-9) < 1e-4);
}

#[test]
fn adjoint_is_exact_conjugate_transpose() {
    // ⟨A x, y⟩ == ⟨x, A† y⟩ for random x (image), y (samples).
    let n = [16usize, 16];
    let traj = qr_traj::<2>(150, 11);
    let x = demo_image(256);
    let y: Vec<Complex32> =
        (0..150).map(|i| Complex32::new((i as f32 * 0.7).sin(), (i as f32 * 0.3).cos())).collect();
    let mut plan = NufftPlan::new(n, &traj, cfg(2, 3.0));

    let mut ax = vec![Complex32::ZERO; 150];
    plan.forward(&x, &mut ax);
    let mut aty = vec![Complex32::ZERO; 256];
    plan.adjoint(&y, &mut aty);

    let dot = |a: &[Complex32], b: &[Complex32]| -> Complex64 {
        a.iter().zip(b).map(|(&p, &q)| p.to_f64().conj() * q.to_f64()).sum()
    };
    let lhs = dot(&ax, &y);
    let rhs = dot(&x, &aty);
    let scale = lhs.abs().max(1e-9);
    assert!(
        (lhs - rhs).abs() / scale < 1e-4,
        "adjoint mismatch: ⟨Ax,y⟩ = {lhs:?} vs ⟨x,A†y⟩ = {rhs:?}"
    );
}

#[test]
fn every_configuration_computes_the_same_operator() {
    let n = [20usize, 20];
    let traj = qr_traj::<2>(500, 2);
    let image = demo_image(400);
    let samples: Vec<Complex32> =
        (0..500).map(|i| Complex32::new(1.0 / (1.0 + i as f32), (i as f32 * 0.13).sin())).collect();

    // Reference: single-thread, default everything.
    let mut reference_fwd = vec![Complex32::ZERO; 500];
    let mut reference_adj = vec![Complex32::ZERO; 400];
    {
        let mut plan = NufftPlan::new(n, &traj, cfg(1, 3.0));
        plan.forward(&image, &mut reference_fwd);
        plan.adjoint(&samples, &mut reference_adj);
    }

    let variants: Vec<(&str, NufftConfig)> = vec![
        ("4 threads", cfg(4, 3.0)),
        ("fifo", NufftConfig { policy: QueuePolicy::Fifo, ..cfg(3, 3.0) }),
        ("fixed partitions", NufftConfig { fixed_partitions: true, ..cfg(3, 3.0) }),
        ("no privatization", NufftConfig { privatization: false, ..cfg(3, 3.0) }),
        ("no sort", NufftConfig { sort: SortMode::None, ..cfg(3, 3.0) }),
        ("tile sort", NufftConfig { sort: SortMode::TileMajor, ..cfg(3, 3.0) }),
        ("explicit partitions", NufftConfig { partitions_per_dim: Some(6), ..cfg(4, 3.0) }),
    ];
    for (name, c) in variants {
        let mut plan = NufftPlan::new(n, &traj, c);
        let mut fwd = vec![Complex32::ZERO; 500];
        plan.forward(&image, &mut fwd);
        let mut adj = vec![Complex32::ZERO; 400];
        plan.adjoint(&samples, &mut adj);
        let ef = nufft_math::error::rel_l2_c32(&fwd, &reference_fwd);
        let ea = nufft_math::error::rel_l2_c32(&adj, &reference_adj);
        assert!(ef < 1e-5, "{name}: forward diverged by {ef}");
        assert!(ea < 1e-5, "{name}: adjoint diverged by {ea}");
    }
}

#[test]
fn scalar_and_simd_agree() {
    let n = [16usize, 16, 16];
    let traj = qr_traj::<3>(600, 9);
    let samples: Vec<Complex32> = (0..600).map(|i| Complex32::new((i as f32).cos(), 0.5)).collect();
    let mut adj_by_isa = Vec::new();
    let detected = nufft_simd::detect_isa();
    for isa in
        [nufft_simd::IsaLevel::Scalar, nufft_simd::IsaLevel::Sse2, nufft_simd::IsaLevel::Avx2Fma]
    {
        if isa > detected {
            continue;
        }
        nufft_simd::set_isa_override(isa).unwrap();
        let mut plan = NufftPlan::new(n, &traj, cfg(2, 4.0));
        let mut adj = vec![Complex32::ZERO; 16 * 16 * 16];
        plan.adjoint(&samples, &mut adj);
        adj_by_isa.push((isa, adj));
    }
    nufft_simd::set_isa_override(detected).unwrap();
    for (isa, adj) in &adj_by_isa[1..] {
        let e = nufft_math::error::rel_l2_c32(adj, &adj_by_isa[0].1);
        assert!(e < 1e-5, "{isa:?} diverged from scalar by {e}");
    }
}

#[test]
fn timers_and_stats_are_recorded() {
    let n = [16usize, 16];
    let traj = qr_traj::<2>(300, 4);
    let mut plan = NufftPlan::new(n, &traj, cfg(2, 2.0));
    let image = demo_image(256);
    let mut s = vec![Complex32::ZERO; 300];
    plan.forward(&image, &mut s);
    let ft = plan.forward_timers();
    assert!(ft.total > 0.0 && ft.fft > 0.0 && ft.conv > 0.0);
    let mut img = vec![Complex32::ZERO; 256];
    plan.adjoint(&s, &mut img);
    let at = plan.adjoint_timers();
    assert!(at.total >= at.conv);
    let stats = plan.last_run_stats().expect("adjoint records stats");
    assert_eq!(stats.worker_busy.len(), 2);
    assert!(plan.preprocess_seconds() > 0.0);
    assert!(plan.part1_seconds() > 0.0);
}

#[test]
fn zero_image_maps_to_zero_everything() {
    let n = [8usize, 8];
    let traj = qr_traj::<2>(50, 6);
    let mut plan = NufftPlan::new(n, &traj, cfg(1, 2.0));
    let image = vec![Complex32::ZERO; 64];
    let mut s = vec![Complex32::new(9.0, 9.0); 50];
    plan.forward(&image, &mut s);
    assert!(s.iter().all(|z| z.re == 0.0 && z.im == 0.0));
}

#[test]
fn single_sample_trajectory_works() {
    let n = [16usize];
    let traj = vec![[0.25f64]];
    let image = demo_image(16);
    let mut plan = NufftPlan::new(n, &traj, cfg(1, 2.0));
    let mut got = vec![Complex32::ZERO; 1];
    plan.forward(&image, &mut got);
    let want = direct_forward(&image, n, &traj);
    assert!((got[0].to_f64() - want[0]).abs() < 1e-3 * want[0].abs().max(1.0));
}

#[test]
fn dc_sample_equals_image_sum() {
    // F(0) = Σ f[n].
    let n = [12usize, 12];
    let traj = vec![[0.0f64, 0.0]];
    let image = demo_image(144);
    let mut plan = NufftPlan::new(n, &traj, cfg(1, 4.0));
    let mut got = vec![Complex32::ZERO; 1];
    plan.forward(&image, &mut got);
    let want: Complex64 = image.iter().map(|z| z.to_f64()).sum();
    let err = (got[0].to_f64() - want).abs() / want.abs();
    assert!(err < 1e-4, "DC mismatch: {:?} vs {want:?}", got[0]);
}
