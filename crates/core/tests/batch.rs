//! Batched (multichannel) operators must agree exactly with per-channel
//! application of the single-channel operators.

use nufft_core::{NufftConfig, NufftPlan};
use nufft_math::error::rel_l2_c32;
use nufft_math::Complex32;

fn traj2(count: usize) -> Vec<[f64; 2]> {
    (0..count)
        .map(|i| [((i as f64 * 0.618) % 1.0) - 0.5, ((i as f64 * 0.414) % 1.0) - 0.5])
        .collect()
}

fn channel_image(n: usize, c: usize) -> Vec<Complex32> {
    (0..n)
        .map(|i| Complex32::new((i as f32 * 0.1 + c as f32).sin(), (c as f32 * 0.5) - 0.2))
        .collect()
}

#[test]
fn forward_batch_matches_per_channel() {
    let n = [16usize, 16];
    let traj = traj2(200);
    let cfg = NufftConfig { threads: 2, w: 3.0, ..NufftConfig::default() };
    let mut plan = NufftPlan::new(n, &traj, cfg);
    let channels = 4usize;
    let images: Vec<Vec<Complex32>> = (0..channels).map(|c| channel_image(256, c)).collect();

    // Per-channel reference.
    let mut want = Vec::new();
    for img in &images {
        let mut out = vec![Complex32::ZERO; 200];
        plan.forward(img, &mut out);
        want.push(out);
    }

    // Batched.
    let image_refs: Vec<&[Complex32]> = images.iter().map(|v| v.as_slice()).collect();
    let mut outs: Vec<Vec<Complex32>> = vec![vec![Complex32::ZERO; 200]; channels];
    let mut out_refs: Vec<&mut [Complex32]> = outs.iter_mut().map(|v| v.as_mut_slice()).collect();
    plan.forward_batch(&image_refs, &mut out_refs);

    for c in 0..channels {
        let e = rel_l2_c32(&outs[c], &want[c]);
        assert!(e < 1e-6, "channel {c} forward mismatch: {e}");
    }
}

#[test]
fn adjoint_batch_matches_per_channel() {
    let n = [16usize, 16];
    let traj = traj2(300);
    let cfg = NufftConfig { threads: 3, w: 3.0, ..NufftConfig::default() };
    let mut plan = NufftPlan::new(n, &traj, cfg);
    let channels = 3usize;
    let data: Vec<Vec<Complex32>> = (0..channels)
        .map(|c| {
            (0..300)
                .map(|i| Complex32::new((i as f32 * 0.2 + c as f32).cos(), 0.1 * c as f32))
                .collect()
        })
        .collect();

    let mut want = Vec::new();
    for y in &data {
        let mut out = vec![Complex32::ZERO; 256];
        plan.adjoint(y, &mut out);
        want.push(out);
    }

    let data_refs: Vec<&[Complex32]> = data.iter().map(|v| v.as_slice()).collect();
    let mut outs: Vec<Vec<Complex32>> = vec![vec![Complex32::ZERO; 256]; channels];
    let mut out_refs: Vec<&mut [Complex32]> = outs.iter_mut().map(|v| v.as_mut_slice()).collect();
    plan.adjoint_batch(&data_refs, &mut out_refs);

    for c in 0..channels {
        let e = rel_l2_c32(&outs[c], &want[c]);
        assert!(e < 1e-5, "channel {c} adjoint mismatch: {e}");
    }
}

#[test]
fn empty_batch_is_a_noop() {
    let mut plan = NufftPlan::new(
        [8usize, 8],
        &traj2(20),
        NufftConfig { threads: 1, w: 2.0, ..NufftConfig::default() },
    );
    plan.forward_batch(&[], &mut []);
    plan.adjoint_batch(&[], &mut []);
}

#[test]
fn batch_reuses_across_calls() {
    // Growing then shrinking the channel count must work (grids cached).
    let n = [12usize, 12];
    let traj = traj2(80);
    let mut plan =
        NufftPlan::new(n, &traj, NufftConfig { threads: 2, w: 2.0, ..NufftConfig::default() });
    for &channels in &[1usize, 4, 2] {
        let images: Vec<Vec<Complex32>> = (0..channels).map(|c| channel_image(144, c)).collect();
        let image_refs: Vec<&[Complex32]> = images.iter().map(|v| v.as_slice()).collect();
        let mut outs: Vec<Vec<Complex32>> = vec![vec![Complex32::ZERO; 80]; channels];
        let mut out_refs: Vec<&mut [Complex32]> =
            outs.iter_mut().map(|v| v.as_mut_slice()).collect();
        plan.forward_batch(&image_refs, &mut out_refs);
        // Spot check against single-channel.
        let mut single = vec![Complex32::ZERO; 80];
        plan.forward(&images[channels - 1], &mut single);
        let e = rel_l2_c32(&outs[channels - 1], &single);
        assert!(e < 1e-6, "channels={channels}: {e}");
    }
}

#[test]
#[should_panic(expected = "channel count mismatch")]
fn mismatched_channel_counts_rejected() {
    let mut plan = NufftPlan::new(
        [8usize, 8],
        &traj2(10),
        NufftConfig { threads: 1, w: 2.0, ..NufftConfig::default() },
    );
    let img = vec![Complex32::ZERO; 64];
    let refs: Vec<&[Complex32]> = vec![&img];
    plan.forward_batch(&refs, &mut []);
}
