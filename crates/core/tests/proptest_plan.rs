//! Property tests over random NUFFT configurations: structural invariants
//! that must hold for any trajectory, kernel width, thread count and
//! scheduler toggles.

use nufft_core::partition::Partitions;
use nufft_core::{KernelChoice, NufftConfig, NufftPlan};
use nufft_math::{Complex32, Complex64};
use nufft_parallel::graph::QueuePolicy;
use proptest::prelude::*;

fn traj_strategy(max_pts: usize) -> impl Strategy<Value = Vec<[f64; 2]>> {
    proptest::collection::vec(
        (-0.5f64..0.499, -0.5f64..0.499).prop_map(|(a, b)| [a, b]),
        1..max_pts,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// ⟨Ax, y⟩ == ⟨x, A†y⟩ for arbitrary trajectories and configs.
    #[test]
    fn adjointness_holds_for_any_configuration(
        traj in traj_strategy(120),
        threads in 1usize..5,
        w2 in 2u32..5,
        privatization in any::<bool>(),
        fifo in any::<bool>(),
        gaussian in any::<bool>(),
        seed in any::<u32>(),
    ) {
        let n = [12usize, 12];
        let cfg = NufftConfig {
            threads,
            w: w2 as f64,
            privatization,
            policy: if fifo { QueuePolicy::Fifo } else { QueuePolicy::Priority },
            kernel: if gaussian { KernelChoice::Gaussian } else { KernelChoice::KaiserBessel },
            ..NufftConfig::default()
        };
        let mut plan = NufftPlan::new(n, &traj, cfg);
        let x: Vec<Complex32> = (0..144)
            .map(|i| {
                let v = (i as u32).wrapping_mul(seed | 1);
                Complex32::new((v % 100) as f32 / 50.0 - 1.0, (v % 77) as f32 / 38.0 - 1.0)
            })
            .collect();
        let y: Vec<Complex32> = (0..traj.len())
            .map(|i| {
                let v = (i as u32 + 13).wrapping_mul(seed | 1);
                Complex32::new((v % 90) as f32 / 45.0 - 1.0, (v % 71) as f32 / 35.0 - 1.0)
            })
            .collect();
        let mut ax = vec![Complex32::ZERO; traj.len()];
        plan.forward(&x, &mut ax);
        let mut aty = vec![Complex32::ZERO; 144];
        plan.adjoint(&y, &mut aty);
        let dot = |a: &[Complex32], b: &[Complex32]| -> Complex64 {
            a.iter().zip(b).map(|(&p, &q)| p.to_f64().conj() * q.to_f64()).sum()
        };
        let lhs = dot(&ax, &y);
        let rhs = dot(&x, &aty);
        let scale = lhs.abs().max(rhs.abs()).max(1e-6);
        prop_assert!(
            (lhs - rhs).abs() / scale < 1e-3,
            "adjoint mismatch: {lhs:?} vs {rhs:?} (cfg {cfg:?})"
        );
    }

    /// Linearity of the forward operator.
    #[test]
    fn forward_is_linear(traj in traj_strategy(60), a in -2.0f32..2.0) {
        let n = [10usize, 10];
        let cfg = NufftConfig { threads: 2, w: 2.0, ..NufftConfig::default() };
        let mut plan = NufftPlan::new(n, &traj, cfg);
        let x: Vec<Complex32> =
            (0..100).map(|i| Complex32::new((i as f32 * 0.3).sin(), 0.1)).collect();
        let y: Vec<Complex32> =
            (0..100).map(|i| Complex32::new(0.2, (i as f32 * 0.7).cos())).collect();
        let z: Vec<Complex32> = x.iter().zip(&y).map(|(&p, &q)| p + q.scale(a)).collect();
        let mut fx = vec![Complex32::ZERO; traj.len()];
        let mut fy = vec![Complex32::ZERO; traj.len()];
        let mut fz = vec![Complex32::ZERO; traj.len()];
        plan.forward(&x, &mut fx);
        plan.forward(&y, &mut fy);
        plan.forward(&z, &mut fz);
        for i in 0..traj.len() {
            let want = fx[i] + fy[i].scale(a);
            prop_assert!(
                (fz[i].re - want.re).abs() < 2e-2 && (fz[i].im - want.im).abs() < 2e-2,
                "nonlinear at {i}: {:?} vs {want:?}", fz[i]
            );
        }
    }

    /// Partition invariants for arbitrary coordinate clouds.
    #[test]
    fn partitions_always_satisfy_invariants(
        coords in proptest::collection::vec((0.0f32..64.0, 0.0f32..64.0).prop_map(|(a, b)| [a, b]), 1..300),
        p in 1usize..12,
        wc in 1usize..5,
    ) {
        let min_width = 2 * wc + 1;
        let parts = Partitions::variable(&coords, [64, 64], p, min_width);
        for d in 0..2 {
            let b = parts.bounds(d);
            // Boundaries ascend and tile [0, 64].
            prop_assert_eq!(b[0], 0);
            prop_assert_eq!(*b.last().unwrap(), 64);
            for w in b.windows(2) {
                prop_assert!(w[1] > w[0]);
            }
            // Cyclic-safety amendments.
            let count = b.len() - 1;
            prop_assert!(count == 1 || count % 2 == 0, "odd count {}", count);
            if count > 1 {
                prop_assert!(parts.min_width(d) >= min_width,
                    "width {} below minimum {}", parts.min_width(d), min_width);
            }
        }
        // Every coordinate locates into a cell that contains it.
        for c in &coords {
            let idx = parts.locate(c);
            let (start, end) = parts.cell(&idx);
            for d in 0..2 {
                prop_assert!(start[d] as f32 <= c[d] && c[d] < end[d] as f32);
            }
        }
    }

    /// The forward result must not depend on sample ordering in the input
    /// trajectory (internal reordering must be invisible).
    #[test]
    fn forward_is_permutation_equivariant(traj in traj_strategy(80), seed in any::<u64>()) {
        let n = [10usize, 10];
        let image: Vec<Complex32> =
            (0..100).map(|i| Complex32::new(1.0 / (1.0 + i as f32), 0.3)).collect();
        let cfg = NufftConfig { threads: 2, w: 2.0, ..NufftConfig::default() };

        let mut plan_a = NufftPlan::new(n, &traj, cfg);
        let mut out_a = vec![Complex32::ZERO; traj.len()];
        plan_a.forward(&image, &mut out_a);

        // Deterministic shuffle of the trajectory.
        let mut idx: Vec<usize> = (0..traj.len()).collect();
        let mut s = seed | 1;
        for i in (1..idx.len()).rev() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            idx.swap(i, (s as usize) % (i + 1));
        }
        let shuffled: Vec<[f64; 2]> = idx.iter().map(|&i| traj[i]).collect();
        let mut plan_b = NufftPlan::new(n, &shuffled, cfg);
        let mut out_b = vec![Complex32::ZERO; traj.len()];
        plan_b.forward(&image, &mut out_b);

        for (k, &i) in idx.iter().enumerate() {
            let (a, b) = (out_a[i], out_b[k]);
            prop_assert!(
                (a.re - b.re).abs() < 1e-3 && (a.im - b.im).abs() < 1e-3,
                "sample moved under permutation: {a:?} vs {b:?}"
            );
        }
    }
}
