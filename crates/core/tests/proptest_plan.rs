//! Property tests over random NUFFT configurations: structural invariants
//! that must hold for any trajectory, kernel width, thread count and
//! scheduler toggles. Runs on the `nufft-testkit` harness; a failure prints
//! a `NUFFT_PROP_SEED=...` replay seed.

use nufft_core::partition::Partitions;
use nufft_core::{KernelChoice, NufftConfig, NufftPlan};
use nufft_math::{Complex32, Complex64};
use nufft_parallel::graph::QueuePolicy;
use nufft_testkit::prop_check;
use nufft_testkit::rng::Rng;

fn random_traj(rng: &mut Rng, max_pts: usize) -> Vec<[f64; 2]> {
    let count = rng.gen_usize(1..max_pts);
    rng.gen_points::<2>(count, -0.5..0.499)
}

/// ⟨Ax, y⟩ == ⟨x, A†y⟩ for arbitrary trajectories and configs.
#[test]
fn adjointness_holds_for_any_configuration() {
    prop_check("adjointness_holds_for_any_configuration", 0xC0FE_0001, 24, |rng| {
        let traj = random_traj(rng, 120);
        let threads = rng.gen_usize(1..5);
        let w = rng.gen_usize(2..5) as f64;
        let privatization = rng.gen_bool();
        let fifo = rng.gen_bool();
        let gaussian = rng.gen_bool();
        let n = [12usize, 12];
        let cfg = NufftConfig {
            threads,
            w,
            privatization,
            policy: if fifo { QueuePolicy::Fifo } else { QueuePolicy::Priority },
            kernel: if gaussian { KernelChoice::Gaussian } else { KernelChoice::KaiserBessel },
            ..NufftConfig::default()
        };
        let mut plan = NufftPlan::new(n, &traj, cfg);
        let x = rng.gen_c32_vec(144, 1.0);
        let y = rng.gen_c32_vec(traj.len(), 1.0);
        let mut ax = vec![Complex32::ZERO; traj.len()];
        plan.forward(&x, &mut ax);
        let mut aty = vec![Complex32::ZERO; 144];
        plan.adjoint(&y, &mut aty);
        let dot = |a: &[Complex32], b: &[Complex32]| -> Complex64 {
            a.iter().zip(b).map(|(&p, &q)| p.to_f64().conj() * q.to_f64()).sum()
        };
        let lhs = dot(&ax, &y);
        let rhs = dot(&x, &aty);
        let scale = lhs.abs().max(rhs.abs()).max(1e-6);
        assert!(
            (lhs - rhs).abs() / scale < 1e-3,
            "adjoint mismatch: {lhs:?} vs {rhs:?} (cfg {cfg:?})"
        );
    });
}

/// Linearity of the forward operator.
#[test]
fn forward_is_linear() {
    prop_check("forward_is_linear", 0xC0FE_0002, 24, |rng| {
        let traj = random_traj(rng, 60);
        let a = rng.gen_f32(-2.0..2.0);
        let n = [10usize, 10];
        let cfg = NufftConfig { threads: 2, w: 2.0, ..NufftConfig::default() };
        let mut plan = NufftPlan::new(n, &traj, cfg);
        let x: Vec<Complex32> =
            (0..100).map(|i| Complex32::new((i as f32 * 0.3).sin(), 0.1)).collect();
        let y: Vec<Complex32> =
            (0..100).map(|i| Complex32::new(0.2, (i as f32 * 0.7).cos())).collect();
        let z: Vec<Complex32> = x.iter().zip(&y).map(|(&p, &q)| p + q.scale(a)).collect();
        let mut fx = vec![Complex32::ZERO; traj.len()];
        let mut fy = vec![Complex32::ZERO; traj.len()];
        let mut fz = vec![Complex32::ZERO; traj.len()];
        plan.forward(&x, &mut fx);
        plan.forward(&y, &mut fy);
        plan.forward(&z, &mut fz);
        for i in 0..traj.len() {
            let want = fx[i] + fy[i].scale(a);
            assert!(
                (fz[i].re - want.re).abs() < 2e-2 && (fz[i].im - want.im).abs() < 2e-2,
                "nonlinear at {i}: {:?} vs {want:?}",
                fz[i]
            );
        }
    });
}

/// Partition invariants for arbitrary coordinate clouds: boundaries ascend
/// and tile the grid, widths respect the cyclic-safety minimum, and every
/// coordinate locates into the cell that contains it (each sample assigned
/// exactly once).
#[test]
fn partitions_always_satisfy_invariants() {
    prop_check("partitions_always_satisfy_invariants", 0xC0FE_0003, 24, |rng| {
        let count = rng.gen_usize(1..300);
        let coords: Vec<[f32; 2]> =
            (0..count).map(|_| [rng.gen_f32(0.0..64.0), rng.gen_f32(0.0..64.0)]).collect();
        let p = rng.gen_usize(1..12);
        let wc = rng.gen_usize(1..5);
        let min_width = 2 * wc + 1;
        let parts = Partitions::variable(&coords, [64, 64], p, min_width);
        for d in 0..2 {
            let b = parts.bounds(d);
            // Boundaries ascend and tile [0, 64].
            assert_eq!(b[0], 0);
            assert_eq!(*b.last().unwrap(), 64);
            for w in b.windows(2) {
                assert!(w[1] > w[0], "non-ascending bounds {b:?}");
            }
            // Cyclic-safety amendments.
            let cells = b.len() - 1;
            assert!(cells == 1 || cells % 2 == 0, "odd count {cells}");
            if cells > 1 {
                assert!(
                    parts.min_width(d) >= min_width,
                    "width {} below minimum {min_width}",
                    parts.min_width(d)
                );
            }
        }
        // Every coordinate locates into a cell that contains it.
        for c in &coords {
            let idx = parts.locate(c);
            let (start, end) = parts.cell(&idx);
            for d in 0..2 {
                assert!(
                    start[d] as f32 <= c[d] && c[d] < end[d] as f32,
                    "coord {c:?} outside its cell [{start:?}, {end:?})"
                );
            }
        }
    });
}

/// The forward result must not depend on sample ordering in the input
/// trajectory (internal reordering must be invisible).
#[test]
fn forward_is_permutation_equivariant() {
    prop_check("forward_is_permutation_equivariant", 0xC0FE_0004, 24, |rng| {
        let traj = random_traj(rng, 80);
        let n = [10usize, 10];
        let image: Vec<Complex32> =
            (0..100).map(|i| Complex32::new(1.0 / (1.0 + i as f32), 0.3)).collect();
        let cfg = NufftConfig { threads: 2, w: 2.0, ..NufftConfig::default() };

        let mut plan_a = NufftPlan::new(n, &traj, cfg);
        let mut out_a = vec![Complex32::ZERO; traj.len()];
        plan_a.forward(&image, &mut out_a);

        // Deterministic Fisher–Yates shuffle of the trajectory.
        let mut idx: Vec<usize> = (0..traj.len()).collect();
        for i in (1..idx.len()).rev() {
            let j = rng.gen_usize(0..i + 1);
            idx.swap(i, j);
        }
        let shuffled: Vec<[f64; 2]> = idx.iter().map(|&i| traj[i]).collect();
        let mut plan_b = NufftPlan::new(n, &shuffled, cfg);
        let mut out_b = vec![Complex32::ZERO; traj.len()];
        plan_b.forward(&image, &mut out_b);

        for (k, &i) in idx.iter().enumerate() {
            let (a, b) = (out_a[i], out_b[k]);
            assert!(
                (a.re - b.re).abs() < 1e-3 && (a.im - b.im).abs() < 1e-3,
                "sample moved under permutation: {a:?} vs {b:?}"
            );
        }
    });
}
