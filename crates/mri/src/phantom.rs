//! Analytic ellipsoid phantoms.
//!
//! A Shepp–Logan-style numerical phantom: a handful of (possibly rotated)
//! ellipsoids with additive intensities, evaluated on the pixel grid.
//! Ground truth for every reconstruction experiment in the suite.

use nufft_math::Complex32;

/// One ellipse/ellipsoid: center, semi-axes, in-plane rotation, intensity.
#[derive(Clone, Copy, Debug)]
pub struct Ellipsoid {
    /// Center in normalized coordinates `[-1, 1]` per axis.
    pub center: [f64; 3],
    /// Semi-axes in the same normalized units.
    pub axes: [f64; 3],
    /// Rotation about the z-axis, radians.
    pub phi: f64,
    /// Additive intensity.
    pub intensity: f64,
}

/// The standard ten-ellipsoid arrangement (3D extension of Shepp–Logan,
/// Kak–Slaney intensities toned for floating point work).
pub fn shepp_logan_ellipsoids() -> Vec<Ellipsoid> {
    vec![
        Ellipsoid { center: [0.0, 0.0, 0.0], axes: [0.69, 0.92, 0.81], phi: 0.0, intensity: 1.0 },
        Ellipsoid {
            center: [0.0, -0.0184, 0.0],
            axes: [0.6624, 0.874, 0.78],
            phi: 0.0,
            intensity: -0.8,
        },
        Ellipsoid {
            center: [0.22, 0.0, 0.0],
            axes: [0.11, 0.31, 0.22],
            phi: -0.3141592653589793,
            intensity: -0.2,
        },
        Ellipsoid {
            center: [-0.22, 0.0, 0.0],
            axes: [0.16, 0.41, 0.28],
            phi: 0.3141592653589793,
            intensity: -0.2,
        },
        Ellipsoid {
            center: [0.0, 0.35, -0.15],
            axes: [0.21, 0.25, 0.41],
            phi: 0.0,
            intensity: 0.1,
        },
        Ellipsoid {
            center: [0.0, 0.1, 0.25],
            axes: [0.046, 0.046, 0.05],
            phi: 0.0,
            intensity: 0.1,
        },
        Ellipsoid {
            center: [0.0, -0.1, 0.25],
            axes: [0.046, 0.046, 0.05],
            phi: 0.0,
            intensity: 0.1,
        },
        Ellipsoid {
            center: [-0.08, -0.605, 0.0],
            axes: [0.046, 0.023, 0.05],
            phi: 0.0,
            intensity: 0.1,
        },
        Ellipsoid {
            center: [0.0, -0.606, 0.0],
            axes: [0.023, 0.023, 0.02],
            phi: 0.0,
            intensity: 0.1,
        },
        Ellipsoid {
            center: [0.06, -0.605, 0.0],
            axes: [0.023, 0.046, 0.02],
            phi: 0.0,
            intensity: 0.1,
        },
    ]
}

fn inside(e: &Ellipsoid, x: f64, y: f64, z: f64) -> bool {
    let (s, c) = e.phi.sin_cos();
    let dx = x - e.center[0];
    let dy = y - e.center[1];
    let dz = z - e.center[2];
    let rx = c * dx + s * dy;
    let ry = -s * dx + c * dy;
    (rx / e.axes[0]).powi(2) + (ry / e.axes[1]).powi(2) + (dz / e.axes[2]).powi(2) <= 1.0
}

/// Renders a 3D phantom of extent `n³` (real-valued, stored complex).
pub fn phantom_3d(n: usize) -> Vec<Complex32> {
    let ells = shepp_logan_ellipsoids();
    let mut out = vec![Complex32::ZERO; n * n * n];
    for ix in 0..n {
        let x = 2.0 * (ix as f64 + 0.5) / n as f64 - 1.0;
        for iy in 0..n {
            let y = 2.0 * (iy as f64 + 0.5) / n as f64 - 1.0;
            for iz in 0..n {
                let z = 2.0 * (iz as f64 + 0.5) / n as f64 - 1.0;
                let mut v = 0.0;
                for e in &ells {
                    if inside(e, x, y, z) {
                        v += e.intensity;
                    }
                }
                out[(ix * n + iy) * n + iz] = Complex32::new(v as f32, 0.0);
            }
        }
    }
    out
}

/// Renders a 2D phantom of extent `n²` (the central `z = 0` slab).
pub fn phantom_2d(n: usize) -> Vec<Complex32> {
    let ells = shepp_logan_ellipsoids();
    let mut out = vec![Complex32::ZERO; n * n];
    for ix in 0..n {
        let x = 2.0 * (ix as f64 + 0.5) / n as f64 - 1.0;
        for iy in 0..n {
            let y = 2.0 * (iy as f64 + 0.5) / n as f64 - 1.0;
            let mut v = 0.0;
            for e in &ells {
                if inside(e, x, y, 0.0) {
                    v += e.intensity;
                }
            }
            out[ix * n + iy] = Complex32::new(v as f32, 0.0);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phantom_has_expected_structure() {
        let n = 32;
        let p = phantom_2d(n);
        // Background outside the skull is zero.
        assert_eq!(p[0], Complex32::ZERO);
        assert_eq!(p[n - 1], Complex32::ZERO);
        // The brain interior (center) has the classic 0.2 level.
        let center = p[(n / 2) * n + n / 2];
        assert!((center.re - 0.2).abs() < 1e-6, "center = {center:?}");
        // Non-trivial content.
        let nonzero = p.iter().filter(|z| z.re != 0.0).count();
        assert!(nonzero > n * n / 4, "phantom too empty: {nonzero}");
    }

    #[test]
    fn phantom_3d_central_slice_resembles_2d() {
        let n = 16;
        let p3 = phantom_3d(n);
        let p2 = phantom_2d(n);
        // Compare the central z slab against the 2D phantom: identical
        // membership tests at z≈0 (grid offset makes z=+1/2 pixel, still
        // inside all central ellipsoids' z-extent).
        let mut agree = 0;
        for ix in 0..n {
            for iy in 0..n {
                let v3 = p3[(ix * n + iy) * n + n / 2].re;
                let v2 = p2[ix * n + iy].re;
                if (v3 - v2).abs() < 0.11 {
                    agree += 1;
                }
            }
        }
        assert!(agree as f64 > 0.9 * (n * n) as f64, "slices disagree: {agree}");
    }

    #[test]
    fn intensities_additive() {
        // Skull (1.0) minus brain (−0.8) = 0.2 ring structure exists: some
        // pixel must be near 1.0 (between skull and brain boundary).
        let p = phantom_2d(64);
        let max = p.iter().map(|z| z.re).fold(f32::MIN, f32::max);
        assert!((max - 1.0).abs() < 1e-6, "max {max}");
    }
}
