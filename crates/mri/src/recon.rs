//! Non-Cartesian reconstructions.
//!
//! * [`gridding_recon`] — the fast, non-iterative baseline the paper's
//!   intro contrasts against: density-compensate, one adjoint NUFFT,
//!   normalize. One NUFFT application total.
//! * [`IterativeRecon`] — CG-SENSE: solves
//!   `(Σ_c S_c† A† D A S_c + λI) x = Σ_c S_c† A† D y_c`
//!   with [`conjugate_gradient`], evaluating one forward + one adjoint
//!   NUFFT per coil per CG iteration. This is the workload whose runtime
//!   the paper's speedups unlock ("iterative multichannel reconstruction …
//!   in just over 3 minutes").

use crate::cg::{conjugate_gradient, CgReport};
use nufft_core::{NufftPlan, WindowMode};
use nufft_math::Complex32;

/// Window-table budget for iterative reconstruction: CG applies the same
/// operators dozens of times, so precomputing Part 1 pays for itself almost
/// immediately — but stay on the fly past this table size (256 MiB) rather
/// than blow the cache/memory budget on huge 3D trajectories.
const RECON_WINDOW_BUDGET: usize = 256 << 20;

/// Density-compensated gridding (adjoint) reconstruction.
///
/// `dcf` weights each k-space sample; the output is normalized by the total
/// grid gain `Π M_d` so intensities are comparable to the source image.
pub fn gridding_recon<const D: usize>(
    plan: &mut NufftPlan<D>,
    kspace: &[Complex32],
    dcf: &[f32],
) -> Vec<Complex32> {
    assert_eq!(kspace.len(), dcf.len(), "kspace/dcf length mismatch");
    let weighted: Vec<Complex32> = kspace.iter().zip(dcf).map(|(&y, &w)| y.scale(w)).collect();
    let mut image = vec![Complex32::ZERO; plan.image_len()];
    plan.adjoint(&weighted, &mut image);
    let gain = 1.0 / plan.geometry().grid_len() as f32;
    for z in &mut image {
        *z *= gain;
    }
    image
}

/// Result of an iterative reconstruction.
#[derive(Clone, Debug)]
pub struct ReconReport {
    /// The reconstructed image.
    pub image: Vec<Complex32>,
    /// CG convergence data.
    pub cg: CgReport,
    /// Total forward+adjoint NUFFT applications performed.
    pub nufft_calls: usize,
}

/// CG-SENSE iterative reconstruction over one shared trajectory.
pub struct IterativeRecon<'a, const D: usize> {
    plan: &'a mut NufftPlan<D>,
    /// Per-coil sensitivity maps (empty ⇒ single uniform coil).
    coils: Vec<Vec<Complex32>>,
    /// Per-sample density weights applied inside the normal operator.
    dcf: Vec<f32>,
    /// Tikhonov weight λ.
    pub lambda: f32,
}

impl<'a, const D: usize> IterativeRecon<'a, D> {
    /// Creates a reconstructor. Pass an empty `coils` vector for
    /// single-channel; `dcf` may be all-ones.
    pub fn new(
        plan: &'a mut NufftPlan<D>,
        coils: Vec<Vec<Complex32>>,
        dcf: Vec<f32>,
        lambda: f32,
    ) -> Self {
        let k = plan.num_samples();
        assert_eq!(dcf.len(), k, "dcf length mismatch");
        for (c, m) in coils.iter().enumerate() {
            assert_eq!(m.len(), plan.image_len(), "coil {c} map length mismatch");
        }
        // Iterative use re-applies the operators every CG step: amortize
        // Part 1 with a precomputed window table when it fits the budget.
        // Bitwise-neutral — only apply time changes (see `nufft-core`'s
        // window-mode equality tests).
        if plan.window_mode() == WindowMode::OnTheFly {
            plan.set_window_mode(WindowMode::Auto(RECON_WINDOW_BUDGET));
        }
        IterativeRecon { plan, coils, dcf, lambda }
    }

    /// Number of channels (1 when no coil maps were provided).
    pub fn num_coils(&self) -> usize {
        self.coils.len().max(1)
    }

    /// Reconstructs from per-coil k-space data (`data.len()` must equal
    /// [`IterativeRecon::num_coils`]).
    pub fn reconstruct(
        &mut self,
        data: &[Vec<Complex32>],
        max_iters: usize,
        tol: f64,
    ) -> ReconReport {
        let nc = self.num_coils();
        assert_eq!(data.len(), nc, "expected {nc} coils of data");
        let k = self.plan.num_samples();
        let img_len = self.plan.image_len();
        for (c, y) in data.iter().enumerate() {
            assert_eq!(y.len(), k, "coil {c} data length mismatch");
        }

        // Normalize the operator by the FFT gain so λ is scale-free-ish.
        let gain = 1.0 / self.plan.geometry().grid_len() as f32;
        let mut nufft_calls = 0usize;

        // b = Σ_c S_c† A† D y_c.
        let mut b = vec![Complex32::ZERO; img_len];
        {
            let mut tmp_img = vec![Complex32::ZERO; img_len];
            let mut weighted = vec![Complex32::ZERO; k];
            for c in 0..nc {
                for i in 0..k {
                    weighted[i] = data[c][i].scale(self.dcf[i]);
                }
                self.plan.adjoint(&weighted, &mut tmp_img);
                nufft_calls += 1;
                for i in 0..img_len {
                    let s = if self.coils.is_empty() {
                        Complex32::ONE
                    } else {
                        self.coils[c][i].conj()
                    };
                    b[i] += (s * tmp_img[i]).scale(gain);
                }
            }
        }

        // Normal operator closure. The multichannel case goes through the
        // batched operators: one Part 1 per sample shared across coils.
        let plan = &mut *self.plan;
        let coils = &self.coils;
        let dcf = &self.dcf;
        let mut coil_imgs: Vec<Vec<Complex32>> =
            (0..nc).map(|_| vec![Complex32::ZERO; img_len]).collect();
        let mut ksps: Vec<Vec<Complex32>> = (0..nc).map(|_| vec![Complex32::ZERO; k]).collect();
        let mut tmp_imgs: Vec<Vec<Complex32>> =
            (0..nc).map(|_| vec![Complex32::ZERO; img_len]).collect();
        let mut calls_in_op = 0usize;
        let mut x = vec![Complex32::ZERO; img_len];
        let report = conjugate_gradient(
            |input: &[Complex32], out: &mut [Complex32]| {
                for (c, ci) in coil_imgs.iter_mut().enumerate() {
                    for i in 0..img_len {
                        let s = if coils.is_empty() { Complex32::ONE } else { coils[c][i] };
                        ci[i] = s * input[i];
                    }
                }
                {
                    let img_refs: Vec<&[Complex32]> =
                        coil_imgs.iter().map(|v| v.as_slice()).collect();
                    let mut ksp_refs: Vec<&mut [Complex32]> =
                        ksps.iter_mut().map(|v| v.as_mut_slice()).collect();
                    plan.forward_batch(&img_refs, &mut ksp_refs);
                }
                for ksp in ksps.iter_mut() {
                    for (z, &w) in ksp.iter_mut().zip(dcf) {
                        *z = z.scale(w);
                    }
                }
                {
                    let ksp_refs: Vec<&[Complex32]> = ksps.iter().map(|v| v.as_slice()).collect();
                    let mut img_refs: Vec<&mut [Complex32]> =
                        tmp_imgs.iter_mut().map(|v| v.as_mut_slice()).collect();
                    plan.adjoint_batch(&ksp_refs, &mut img_refs);
                }
                calls_in_op += 2 * nc;
                out.fill(Complex32::ZERO);
                for (c, ti) in tmp_imgs.iter().enumerate() {
                    for i in 0..img_len {
                        let s = if coils.is_empty() { Complex32::ONE } else { coils[c][i].conj() };
                        out[i] += (s * ti[i]).scale(gain);
                    }
                }
            },
            &b,
            &mut x,
            self.lambda,
            max_iters,
            tol,
        );
        nufft_calls += calls_in_op;
        ReconReport { image: x, cg: report, nufft_calls }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coils::synthetic_coils;
    use crate::dcf::radial_dcf;
    use crate::phantom::phantom_2d;
    use nufft_core::NufftConfig;
    use nufft_math::error::rel_l2_c32;

    /// Radial-ish 2D trajectory (center-dense like real acquisitions).
    fn radial2(spokes: usize, per: usize) -> Vec<[f64; 2]> {
        let mut t = Vec::with_capacity(spokes * per);
        for s in 0..spokes {
            let ang = core::f64::consts::PI * s as f64 / spokes as f64;
            for j in 0..per {
                let r = (j as f64 + 0.5) / per as f64 - 0.5;
                t.push([(r * ang.cos()).clamp(-0.5, 0.4999), (r * ang.sin()).clamp(-0.5, 0.4999)]);
            }
        }
        t
    }

    fn cfg() -> NufftConfig {
        NufftConfig { threads: 2, w: 3.0, ..NufftConfig::default() }
    }

    /// Quasi-random trajectory covering the whole square band (radial
    /// leaves the spectral corners unsampled, which caps any solver's
    /// accuracy on a sharp phantom).
    fn fullband2(count: usize) -> Vec<[f64; 2]> {
        (0..count)
            .map(|i| {
                [
                    ((i as f64 + 1.0) * 0.618_033_988_749_894_9) % 1.0 - 0.5,
                    ((i as f64 + 1.0) * 0.414_213_562_373_095) % 1.0 - 0.5,
                ]
            })
            .collect()
    }

    #[test]
    fn iterative_beats_gridding_single_coil() {
        let n = 24usize;
        let truth = phantom_2d(n);
        let traj = fullband2(2 * n * n); // 2x oversampled, full band
        let mut plan = NufftPlan::new([n, n], &traj, cfg());

        // Simulate data with the forward model.
        let mut y = vec![Complex32::ZERO; traj.len()];
        plan.forward(&truth, &mut y);

        let dcf = vec![1.0f32; traj.len()]; // near-uniform density
        let grid_img = gridding_recon(&mut plan, &y, &dcf);

        let mut it = IterativeRecon::new(&mut plan, vec![], dcf.clone(), 1e-5);
        let rep = it.reconstruct(&[y.clone()], 30, 1e-10);

        let e_grid = rel_l2_c32(&grid_img, &truth);
        let e_iter = rel_l2_c32(&rep.image, &truth);
        assert!(e_iter < 0.5 * e_grid, "iterative ({e_iter}) should beat gridding ({e_grid})");
        assert!(e_iter < 0.05, "iterative recon too inaccurate: {e_iter}");
        assert!(rep.nufft_calls > 2);
    }

    #[test]
    fn multichannel_recovers_phantom() {
        let n = 16usize;
        let truth = phantom_2d(n);
        let traj = radial2(32, 32);
        let mut plan = NufftPlan::new([n, n], &traj, cfg());
        let coils = synthetic_coils::<2>(n, 4);

        // Simulate per-coil data.
        let mut data = Vec::new();
        for c in 0..4 {
            let weighted: Vec<Complex32> =
                truth.iter().zip(&coils[c]).map(|(&x, &s)| x * s).collect();
            let mut y = vec![Complex32::ZERO; traj.len()];
            plan.forward(&weighted, &mut y);
            data.push(y);
        }

        let dcf = radial_dcf(&traj);
        let mut it = IterativeRecon::new(&mut plan, coils, dcf, 1e-4);
        assert_eq!(it.num_coils(), 4);
        let rep = it.reconstruct(&data, 20, 1e-8);
        let e = rel_l2_c32(&rep.image, &truth);
        assert!(e < 0.1, "multichannel recon error {e}");
    }

    #[test]
    fn cg_residuals_shrink() {
        let n = 12usize;
        let truth = phantom_2d(n);
        let traj = radial2(24, 24);
        let mut plan = NufftPlan::new([n, n], &traj, cfg());
        let mut y = vec![Complex32::ZERO; traj.len()];
        plan.forward(&truth, &mut y);
        let dcf = vec![1.0f32; traj.len()];
        let mut it = IterativeRecon::new(&mut plan, vec![], dcf, 1e-3);
        let rep = it.reconstruct(&[y], 10, 1e-12);
        let res = &rep.cg.residuals;
        assert!(res.len() >= 3);
        assert!(res.last().unwrap() < &res[0]);
    }
}
