//! Sample density compensation functions (DCF).
//!
//! The adjoint NUFFT of unweighted data is blurred by the sampling density
//! (dense center → over-counted low frequencies). Gridding reconstructions
//! therefore weight each sample by (an estimate of) the inverse local
//! sampling density before the adjoint. Two estimators:
//!
//! * [`radial_dcf`] — the analytic `|ν|^{d-1}` ramp, exact for ideal radial
//!   sampling (Ram-Lak style);
//! * [`pipe_menon`] — the fixed-point iteration `w ← w / (A A† w)` of Pipe &
//!   Menon, which works for arbitrary trajectories and uses only forward +
//!   adjoint NUFFT applications.

use nufft_core::NufftPlan;
use nufft_math::Complex32;

/// Analytic radial ramp DCF: `w_p ∝ |ν_p|^{d-1}`, normalized to unit mean,
/// with the zero-radius sample given the weight of half a sample spacing.
pub fn radial_dcf<const D: usize>(traj: &[[f64; D]]) -> Vec<f32> {
    assert!(!traj.is_empty(), "empty trajectory");
    let mut w: Vec<f64> = traj
        .iter()
        .map(|p| {
            let r = p.iter().map(|&x| x * x).sum::<f64>().sqrt();
            r.powi(D as i32 - 1)
        })
        .collect();
    // Replace exact zeros with the smallest positive weight (the center
    // sample covers a tiny ball, not nothing).
    let min_pos = w.iter().copied().filter(|&x| x > 0.0).fold(f64::INFINITY, f64::min);
    let floor = if min_pos.is_finite() { min_pos * 0.5 } else { 1.0 };
    for x in &mut w {
        if *x == 0.0 {
            *x = floor;
        }
    }
    let mean = w.iter().sum::<f64>() / w.len() as f64;
    w.into_iter().map(|x| (x / mean) as f32).collect()
}

/// Pipe–Menon iterative DCF: repeats `w ← w / |A A†(w)|` so that the
/// composite gridding operator resolves a uniform spectrum to uniform
/// weights. `iterations` of 5–15 typically suffice.
///
/// Uses the plan's forward/adjoint pair, so it works for any trajectory the
/// plan was built for. Returns weights normalized to unit mean.
pub fn pipe_menon<const D: usize>(plan: &mut NufftPlan<D>, iterations: usize) -> Vec<f32> {
    let k = plan.num_samples();
    let img_len = plan.image_len();
    let mut w = vec![1.0f64; k];
    let mut samples = vec![Complex32::ZERO; k];
    let mut image = vec![Complex32::ZERO; img_len];
    let mut back = vec![Complex32::ZERO; k];
    for _ in 0..iterations {
        for (s, &wi) in samples.iter_mut().zip(&w) {
            *s = Complex32::new(wi as f32, 0.0);
        }
        plan.adjoint(&samples, &mut image);
        plan.forward(&image, &mut back);
        for (wi, b) in w.iter_mut().zip(&back) {
            let denom = b.to_f64().abs().max(1e-20);
            *wi /= denom;
        }
        // Renormalize each round for numeric headroom.
        let mean = w.iter().sum::<f64>() / k as f64;
        for wi in &mut w {
            *wi /= mean;
        }
    }
    w.into_iter().map(|x| x as f32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nufft_core::NufftConfig;

    #[test]
    fn radial_dcf_is_a_ramp() {
        let traj: Vec<[f64; 2]> = (0..10).map(|i| [i as f64 * 0.05, 0.0]).collect();
        let w = radial_dcf(&traj);
        // Monotone in radius (after the floored center).
        for i in 2..10 {
            assert!(w[i] > w[i - 1], "not increasing at {i}");
        }
        // Unit mean.
        let mean: f32 = w.iter().sum::<f32>() / 10.0;
        assert!((mean - 1.0).abs() < 1e-5);
    }

    #[test]
    fn radial_dcf_power_matches_dimension() {
        let p2 = radial_dcf::<2>(&[[0.1, 0.0], [0.2, 0.0]]);
        let p3 = radial_dcf::<3>(&[[0.1, 0.0, 0.0], [0.2, 0.0, 0.0]]);
        // 2D: linear ramp → ratio 2; 3D: quadratic → ratio 4.
        assert!((p2[1] / p2[0] - 2.0).abs() < 1e-5);
        assert!((p3[1] / p3[0] - 4.0).abs() < 1e-5);
    }

    #[test]
    fn pipe_menon_flattens_the_composite_response() {
        // On a center-dense trajectory, after Pipe–Menon the weighted
        // response |A A† w| should be much flatter than for uniform w.
        let traj: Vec<[f64; 2]> = (0..300)
            .map(|i| {
                let a = ((i as f64 * 0.618) % 1.0) - 0.5;
                let b = ((i as f64 * 0.414) % 1.0) - 0.5;
                [a * a * a * 4.0 * 0.499 / 0.5, b * b * b * 4.0 * 0.499 / 0.5]
            })
            .collect();
        let cfg = NufftConfig { threads: 1, w: 3.0, ..NufftConfig::default() };
        let mut plan = NufftPlan::new([24, 24], &traj, cfg);

        let flatness = |w: &[f32], plan: &mut NufftPlan<2>| -> f64 {
            let samples: Vec<Complex32> = w.iter().map(|&x| Complex32::new(x, 0.0)).collect();
            let mut img = vec![Complex32::ZERO; 24 * 24];
            plan.adjoint(&samples, &mut img);
            let mut back = vec![Complex32::ZERO; w.len()];
            plan.forward(&img, &mut back);
            let mags: Vec<f64> = back.iter().map(|z| z.to_f64().abs()).collect();
            let mean = mags.iter().sum::<f64>() / mags.len() as f64;
            let var = mags.iter().map(|m| (m - mean).powi(2)).sum::<f64>() / mags.len() as f64;
            var.sqrt() / mean // coefficient of variation
        };

        let uniform = vec![1.0f32; traj.len()];
        let cv_before = flatness(&uniform, &mut plan);
        let w = pipe_menon(&mut plan, 10);
        let cv_after = flatness(&w, &mut plan);
        assert!(
            cv_after < 0.5 * cv_before,
            "Pipe–Menon failed to flatten: {cv_after} vs {cv_before}"
        );
    }
}
