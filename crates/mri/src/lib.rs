//! Iterative non-Cartesian MRI reconstruction — the paper's motivating
//! application (§I: "iterative multichannel reconstruction of a
//! 240×240×240 image could execute in just over 3 minutes").
//!
//! Built entirely on [`nufft_core::NufftPlan`]:
//!
//! * [`phantom`] — analytic ellipsoid phantoms (Shepp–Logan-style) in 2D
//!   and 3D, the ground truth for reconstruction experiments;
//! * [`coils`] — synthetic receive-coil sensitivity maps for multichannel
//!   (SENSE-type) modeling;
//! * [`dcf`] — sample density compensation: analytic radial weights and the
//!   iterative Pipe–Menon refinement;
//! * [`cg`] — conjugate gradients on the (regularized) normal equations;
//! * [`recon`] — gridding (adjoint + DCF) and iterative CG-SENSE
//!   reconstructions, single- and multi-coil.

// Index-based loops below frequently address several parallel arrays
// at once; clippy's iterator suggestion would obscure that.
#![allow(clippy::needless_range_loop)]

pub mod cg;
pub mod coils;
pub mod dcf;
pub mod phantom;
pub mod recon;
pub mod toeplitz;

pub use recon::{gridding_recon, IterativeRecon, ReconReport};
pub use toeplitz::ToeplitzNormal;
