//! Synthetic receive-coil sensitivity maps.
//!
//! Real multichannel MRI data comes with per-coil spatial sensitivity
//! profiles; for the reproduction we synthesize the standard surrogate:
//! coils arranged on a circle around the FOV, each with a smooth
//! Gaussian-decay magnitude and a mild linear phase, normalized so that the
//! sum-of-squares across coils is 1 at every pixel (which makes CG-SENSE
//! with identity regularization well-conditioned).

use nufft_math::Complex32;

/// Generates `num_coils` sensitivity maps over an `n`-per-side image of
/// dimension `D` (2 or 3). Returns one map per coil, each of length `n^D`.
pub fn synthetic_coils<const D: usize>(n: usize, num_coils: usize) -> Vec<Vec<Complex32>> {
    assert!(num_coils >= 1, "need at least one coil");
    assert!(D == 2 || D == 3, "coil maps support 2D and 3D");
    let len = n.pow(D as u32);
    let mut maps: Vec<Vec<Complex32>> = Vec::with_capacity(num_coils);
    // Coil centers on a circle of radius 1.1 in normalized coordinates
    // (outside the FOV, like surface coils).
    for c in 0..num_coils {
        let angle = core::f64::consts::TAU * c as f64 / num_coils as f64;
        let cx = 1.1 * angle.cos();
        let cy = 1.1 * angle.sin();
        let mut map = vec![Complex32::ZERO; len];
        for (flat, v) in map.iter_mut().enumerate() {
            let (x, y, z) = unflatten_norm::<D>(flat, n);
            let d2 = (x - cx).powi(2) + (y - cy).powi(2) + z * z * 0.25;
            let mag = (-d2 / 1.8).exp();
            // Mild spatially varying phase so the problem is genuinely
            // complex.
            let phase = 0.5 * (x * angle.cos() + y * angle.sin());
            *v = nufft_math::Complex64::from_polar(mag, phase).to_f32();
        }
        maps.push(map);
    }
    // Sum-of-squares normalization.
    for flat in 0..len {
        let sos: f64 = maps.iter().map(|m| m[flat].to_f64().norm_sqr()).sum();
        let inv = 1.0 / sos.sqrt().max(1e-12);
        for m in &mut maps {
            m[flat] = (m[flat].to_f64().scale(inv)).to_f32();
        }
    }
    maps
}

fn unflatten_norm<const D: usize>(flat: usize, n: usize) -> (f64, f64, f64) {
    let norm = |i: usize| 2.0 * (i as f64 + 0.5) / n as f64 - 1.0;
    match D {
        2 => (norm(flat / n), norm(flat % n), 0.0),
        3 => {
            let iz = flat % n;
            let iy = (flat / n) % n;
            let ix = flat / (n * n);
            (norm(ix), norm(iy), norm(iz))
        }
        _ => unreachable!(),
    }
}

/// Sum-of-squares coil combination: `√(Σ_c |x_c|²)` per pixel.
pub fn sos_combine(images: &[Vec<Complex32>]) -> Vec<f32> {
    assert!(!images.is_empty(), "need at least one coil image");
    let len = images[0].len();
    (0..len)
        .map(|i| images.iter().map(|img| img[i].to_f64().norm_sqr()).sum::<f64>().sqrt() as f32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sos_is_unity_after_normalization() {
        let maps = synthetic_coils::<2>(16, 6);
        assert_eq!(maps.len(), 6);
        for flat in 0..256 {
            let sos: f64 = maps.iter().map(|m| m[flat].to_f64().norm_sqr()).sum();
            assert!((sos - 1.0).abs() < 1e-5, "SoS at {flat}: {sos}");
        }
    }

    #[test]
    fn coils_are_spatially_distinct() {
        let maps = synthetic_coils::<2>(16, 4);
        // Each coil is strongest near its own side of the FOV: the argmax
        // pixels must differ across coils.
        let argmax = |m: &Vec<Complex32>| {
            m.iter()
                .enumerate()
                .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
                .map(|(i, _)| i)
                .unwrap()
        };
        let peaks: Vec<usize> = maps.iter().map(argmax).collect();
        let mut unique = peaks.clone();
        unique.sort_unstable();
        unique.dedup();
        assert!(unique.len() >= 3, "coil peaks collapse: {peaks:?}");
    }

    #[test]
    fn three_d_maps_have_right_length() {
        let maps = synthetic_coils::<3>(8, 3);
        assert!(maps.iter().all(|m| m.len() == 512));
    }

    #[test]
    fn sos_combine_matches_manual() {
        let a = vec![Complex32::new(3.0, 0.0)];
        let b = vec![Complex32::new(0.0, 4.0)];
        let s = sos_combine(&[a, b]);
        assert!((s[0] - 5.0).abs() < 1e-6);
    }
}
