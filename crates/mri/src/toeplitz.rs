//! Toeplitz embedding of the NUFFT normal operator.
//!
//! Inside CG, only the composite `x ↦ A†DA x` is needed — and it is a
//! (weighted) *convolution* with the point-spread function
//! `T[k] = Σ_p w_p·e^{+2πi ν_p·k}`, `k ∈ (−N, N)^D`. Embedding `T` in a
//! circulant operator on a `2N` grid turns every CG iteration into two
//! `2N`-FFTs and a pointwise multiply — no convolution interpolation at
//! all, and no trajectory access after setup (Fessler et al.; the natural
//! fast path for the iterative reconstructions the paper motivates).
//!
//! Setup costs one adjoint NUFFT on a double-size plan; `apply` then
//! replaces a forward+adjoint pair.

use nufft_core::grid::{embed_scaled, extract_scaled, Geometry};
use nufft_core::{NufftConfig, NufftPlan};
use nufft_fft::shift::ifftshift;
use nufft_fft::FftNd;
use nufft_math::Complex32;

/// The circulant-embedded normal operator `x ↦ A†DA x`.
pub struct ToeplitzNormal<const D: usize> {
    /// Image extents `N`.
    n: [usize; D],
    /// Embedding geometry: image `N`, grid `2N` (reuses the wrap-embed
    /// convention of the NUFFT grid).
    geo: Geometry<D>,
    fft2: FftNd,
    /// Eigenvalues of the circulant on the `2N` grid (the DFT of the PSF).
    lambda: Vec<Complex32>,
    /// Unit scale array for embed/extract.
    ones: Vec<f32>,
    /// `2N` workspace.
    pad: Vec<Complex32>,
}

impl<const D: usize> ToeplitzNormal<D> {
    /// Builds the operator for image extents `n`, trajectory `traj`
    /// (ν ∈ [-1/2, 1/2)) and per-sample weights `weights` (the DCF; pass
    /// all-ones for the plain normal operator).
    ///
    /// `cfg` controls the internal double-size NUFFT used once during
    /// setup (its `alpha`/`w` set the PSF accuracy).
    ///
    /// # Panics
    /// Panics if `weights.len() != traj.len()`.
    pub fn new(n: [usize; D], traj: &[[f64; D]], weights: &[f32], cfg: NufftConfig) -> Self {
        assert_eq!(weights.len(), traj.len(), "weights/trajectory length mismatch");
        // PSF T[k] for k ∈ (−N, N)^D via one adjoint NUFFT on a 2N image.
        let n2: [usize; D] = core::array::from_fn(|d| 2 * n[d]);
        let mut psf_plan = NufftPlan::new(n2, traj, cfg);
        let w_samples: Vec<Complex32> = weights.iter().map(|&w| Complex32::new(w, 0.0)).collect();
        let mut t = vec![Complex32::ZERO; n2.iter().product()];
        psf_plan.adjoint(&w_samples, &mut t);

        // The adjoint returns T[k] at position k + N (centered layout on the
        // 2N array); rotating by N places T[0] at index 0 per dimension —
        // exactly the circulant kernel layout. Index N (= T[±N]) is never
        // referenced by the convolution (|i−j| ≤ N−1) so its value is
        // irrelevant.
        ifftshift(&mut t, &n2);
        let fft2 = FftNd::new(&n2);
        fft2.forward(&mut t);
        // Normalize the inverse transform into the eigenvalues so apply()
        // needs no extra scaling pass.
        let inv = 1.0 / t.len() as f32;
        for z in &mut t {
            *z *= inv;
        }

        let geo = Geometry { n, m: n2 };
        let ones = vec![1.0f32; n.iter().product()];
        let pad = vec![Complex32::ZERO; t.len()];
        ToeplitzNormal { n, geo, fft2, lambda: t, ones, pad }
    }

    /// Image extents.
    pub fn image_extents(&self) -> [usize; D] {
        self.n
    }

    /// Applies `out = A†DA x` via the circulant embedding (two `2N` FFTs).
    ///
    /// # Panics
    /// Panics on length mismatches.
    pub fn apply(&mut self, x: &[Complex32], out: &mut [Complex32]) {
        let img_len: usize = self.n.iter().product();
        assert_eq!(x.len(), img_len, "input length mismatch");
        assert_eq!(out.len(), img_len, "output length mismatch");
        self.pad.fill(Complex32::ZERO);
        embed_scaled(&self.geo, x, &self.ones, &mut self.pad);
        self.fft2.forward(&mut self.pad);
        for (z, &l) in self.pad.iter_mut().zip(&self.lambda) {
            *z *= l;
        }
        self.fft2.backward(&mut self.pad);
        extract_scaled(&self.geo, &self.pad, &self.ones, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nufft_math::error::rel_l2_c32;

    fn traj2(count: usize) -> Vec<[f64; 2]> {
        (0..count)
            .map(|i| [((i as f64 * 0.618) % 1.0) - 0.5, ((i as f64 * 0.414) % 1.0) - 0.5])
            .collect()
    }

    fn cfg() -> NufftConfig {
        NufftConfig { threads: 1, w: 4.0, ..NufftConfig::default() }
    }

    /// Explicit normal operator through the plan: A†(w ⊙ A x).
    fn explicit_normal(plan: &mut NufftPlan<2>, w: &[f32], x: &[Complex32], out: &mut [Complex32]) {
        let mut ksp = vec![Complex32::ZERO; plan.num_samples()];
        plan.forward(x, &mut ksp);
        for (z, &wi) in ksp.iter_mut().zip(w) {
            *z = z.scale(wi);
        }
        plan.adjoint(&ksp, out);
    }

    #[test]
    fn toeplitz_matches_explicit_normal_operator() {
        let n = [16usize, 16];
        let traj = traj2(300);
        let weights: Vec<f32> = (0..300).map(|i| 0.5 + (i % 7) as f32 * 0.2).collect();
        let x: Vec<Complex32> = (0..256)
            .map(|i| Complex32::new((i as f32 * 0.2).sin(), (i as f32 * 0.1).cos()))
            .collect();

        let mut plan = NufftPlan::new(n, &traj, cfg());
        let mut want = vec![Complex32::ZERO; 256];
        explicit_normal(&mut plan, &weights, &x, &mut want);

        let mut toep = ToeplitzNormal::new(n, &traj, &weights, cfg());
        let mut got = vec![Complex32::ZERO; 256];
        toep.apply(&x, &mut got);

        let err = rel_l2_c32(&got, &want);
        assert!(err < 2e-3, "Toeplitz vs explicit normal operator: {err}");
    }

    #[test]
    fn toeplitz_is_hermitian_and_psd() {
        let n = [12usize, 12];
        let traj = traj2(200);
        let weights = vec![1.0f32; 200];
        let mut toep = ToeplitzNormal::new(n, &traj, &weights, cfg());
        let a: Vec<Complex32> = (0..144).map(|i| Complex32::new((i as f32).sin(), 0.3)).collect();
        let b: Vec<Complex32> =
            (0..144).map(|i| Complex32::new(0.2, (i as f32 * 0.7).cos())).collect();
        let mut ta = vec![Complex32::ZERO; 144];
        let mut tb = vec![Complex32::ZERO; 144];
        toep.apply(&a, &mut ta);
        toep.apply(&b, &mut tb);
        let dot = |x: &[Complex32], y: &[Complex32]| -> nufft_math::Complex64 {
            x.iter().zip(y).map(|(&p, &q)| p.to_f64().conj() * q.to_f64()).sum()
        };
        // Hermitian: ⟨Ta, b⟩ == ⟨a, Tb⟩.
        let lhs = dot(&ta, &b);
        let rhs = dot(&a, &tb);
        assert!((lhs - rhs).abs() / lhs.abs().max(1e-9) < 1e-3, "{lhs:?} vs {rhs:?}");
        // PSD: ⟨Ta, a⟩ ≥ 0 (it equals ‖√w·A a‖²).
        let quad = dot(&ta, &a);
        assert!(quad.re > 0.0 && quad.im.abs() < 1e-3 * quad.re);
    }

    #[test]
    fn toeplitz_cg_solves_like_plan_cg() {
        // CG with the Toeplitz operator converges to the same solution as
        // CG with the explicit forward/adjoint pair.
        use crate::cg::conjugate_gradient;
        let n = [12usize, 12];
        let traj = traj2(400);
        let weights = vec![1.0f32; 400];
        let truth: Vec<Complex32> =
            (0..144).map(|i| Complex32::new((i % 13) as f32 * 0.1, 0.0)).collect();

        let mut plan = NufftPlan::new(n, &traj, cfg());
        let mut y = vec![Complex32::ZERO; 400];
        plan.forward(&truth, &mut y);
        let mut b = vec![Complex32::ZERO; 144];
        plan.adjoint(&y, &mut b);
        let gain = 1.0 / plan.geometry().grid_len() as f32;
        for z in &mut b {
            *z *= gain;
        }

        let mut toep = ToeplitzNormal::new(n, &traj, &weights, cfg());
        let grid_len: f32 = plan.geometry().grid_len() as f32;
        let mut x = vec![Complex32::ZERO; 144];
        let report = conjugate_gradient(
            |inp: &[Complex32], out: &mut [Complex32]| {
                toep.apply(inp, out);
                // Match the plan-based operator normalization (1/Πм).
                for z in out.iter_mut() {
                    *z = z.scale(1.0 / grid_len);
                }
            },
            &b,
            &mut x,
            1e-5,
            40,
            1e-9,
        );
        assert!(report.iterations > 1);
        let err = rel_l2_c32(&x, &truth);
        assert!(err < 0.05, "Toeplitz-CG recon error {err}");
    }
}
