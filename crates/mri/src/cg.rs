//! Conjugate gradients on the (regularized) normal equations.
//!
//! Solves `(N + λI)·x = b` for a Hermitian positive semi-definite operator
//! `N` given as a matrix-free closure — in this crate `N = A†DA` (single
//! coil) or `N = Σ_c S_c†A†DAS_c` (SENSE). Inner products accumulate in
//! `f64` ([`nufft_simd::dotc`]), which keeps iteration counts stable in
//! single precision.

use nufft_math::Complex32;
use nufft_simd::{dotc, sum_norm_sqr};

/// Convergence report of one CG solve.
#[derive(Clone, Debug)]
pub struct CgReport {
    /// Relative residual ‖r_k‖/‖b‖ after each completed iteration.
    pub residuals: Vec<f64>,
    /// Iterations actually performed.
    pub iterations: usize,
    /// True if the tolerance was met before the iteration cap.
    pub converged: bool,
}

/// Runs CG for `(op + λI)x = b`, starting from `x` (commonly zeros).
///
/// `op(input, output)` must apply the Hermitian PSD operator. Terminates at
/// `max_iters` or when the relative residual falls below `tol`.
///
/// # Panics
/// Panics if buffer lengths disagree.
pub fn conjugate_gradient<F>(
    mut op: F,
    b: &[Complex32],
    x: &mut [Complex32],
    lambda: f32,
    max_iters: usize,
    tol: f64,
) -> CgReport
where
    F: FnMut(&[Complex32], &mut [Complex32]),
{
    assert_eq!(b.len(), x.len(), "rhs/solution length mismatch");
    let n = b.len();
    let mut r = vec![Complex32::ZERO; n];
    let mut ap = vec![Complex32::ZERO; n];

    // r = b − (op + λI)x.
    op(x, &mut ap);
    for i in 0..n {
        r[i] = b[i] - ap[i] - x[i].scale(lambda);
    }
    let mut p = r.clone();
    let b_norm = sum_norm_sqr(b).sqrt().max(1e-30);
    let mut rs_old = sum_norm_sqr(&r);
    let mut residuals = Vec::with_capacity(max_iters);
    let mut converged = rs_old.sqrt() / b_norm <= tol;

    let mut it = 0;
    while it < max_iters && !converged {
        op(&p, &mut ap);
        for i in 0..n {
            ap[i] += p[i].scale(lambda);
        }
        let p_ap = dotc(&p, &ap).re;
        if p_ap <= 0.0 {
            // Numerical breakdown (operator not PSD at this precision).
            break;
        }
        let alpha = (rs_old / p_ap) as f32;
        for i in 0..n {
            x[i] += p[i].scale(alpha);
            r[i] -= ap[i].scale(alpha);
        }
        let rs_new = sum_norm_sqr(&r);
        let rel = rs_new.sqrt() / b_norm;
        residuals.push(rel);
        it += 1;
        if rel <= tol {
            converged = true;
            break;
        }
        let beta = (rs_new / rs_old) as f32;
        for i in 0..n {
            p[i] = r[i] + p[i].scale(beta);
        }
        rs_old = rs_new;
    }
    CgReport { residuals, iterations: it, converged }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense Hermitian PSD test operator `A†A` from a random-ish complex A.
    fn psd_op(n: usize) -> impl FnMut(&[Complex32], &mut [Complex32]) {
        let a: Vec<Complex32> = (0..n * n)
            .map(|i| {
                Complex32::new(
                    ((i * 37 % 101) as f32 / 101.0) - 0.5,
                    ((i * 53 % 97) as f32 / 97.0) - 0.5,
                )
            })
            .collect();
        move |x: &[Complex32], out: &mut [Complex32]| {
            // out = A† (A x).
            let mut ax = vec![Complex32::ZERO; n];
            for r in 0..n {
                let mut acc = Complex32::ZERO;
                for c in 0..n {
                    acc += a[r * n + c] * x[c];
                }
                ax[r] = acc;
            }
            for c in 0..n {
                let mut acc = Complex32::ZERO;
                for r in 0..n {
                    acc += a[r * n + c].conj() * ax[r];
                }
                out[c] = acc;
            }
        }
    }

    #[test]
    fn solves_small_psd_system() {
        let n = 12;
        let mut op = psd_op(n);
        // Build b = (A†A + λ)x* for a known x*.
        let x_true: Vec<Complex32> =
            (0..n).map(|i| Complex32::new(i as f32 * 0.3 - 1.0, 0.5 - i as f32 * 0.1)).collect();
        let lambda = 0.1f32;
        let mut b = vec![Complex32::ZERO; n];
        op(&x_true, &mut b);
        for i in 0..n {
            b[i] += x_true[i].scale(lambda);
        }
        let mut x = vec![Complex32::ZERO; n];
        let report = conjugate_gradient(&mut op, &b, &mut x, lambda, 200, 1e-7);
        assert!(report.converged, "CG did not converge: {:?}", report.residuals.last());
        let err = nufft_math::error::rel_l2_c32(&x, &x_true);
        assert!(err < 1e-4, "solution error {err}");
    }

    #[test]
    fn residuals_decrease_monotonically_overall() {
        let n = 16;
        let mut op = psd_op(n);
        let b: Vec<Complex32> =
            (0..n).map(|i| Complex32::new(1.0 / (i as f32 + 1.0), 0.2)).collect();
        let mut x = vec![Complex32::ZERO; n];
        let report = conjugate_gradient(&mut op, &b, &mut x, 0.05, 50, 1e-10);
        let first = report.residuals.first().copied().unwrap_or(1.0);
        let last = report.residuals.last().copied().unwrap_or(1.0);
        assert!(last < first, "no overall progress: {first} -> {last}");
    }

    #[test]
    fn identity_operator_converges_in_one_iteration() {
        let n = 8;
        let b: Vec<Complex32> = (0..n).map(|i| Complex32::new(i as f32, -1.0)).collect();
        let mut x = vec![Complex32::ZERO; n];
        let report = conjugate_gradient(
            |inp: &[Complex32], out: &mut [Complex32]| out.copy_from_slice(inp),
            &b,
            &mut x,
            0.0,
            10,
            1e-9,
        );
        assert!(report.iterations <= 2, "took {} iterations", report.iterations);
        let err = nufft_math::error::rel_l2_c32(&x, &b);
        assert!(err < 1e-5);
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let n = 6;
        let b = vec![Complex32::ZERO; n];
        let mut x = vec![Complex32::ZERO; n];
        let report = conjugate_gradient(
            |inp: &[Complex32], out: &mut [Complex32]| out.copy_from_slice(inp),
            &b,
            &mut x,
            0.0,
            10,
            1e-9,
        );
        assert!(report.converged);
        assert!(x.iter().all(|z| z.abs() == 0.0));
    }
}
